// `campaign`: Monte Carlo fault-injection campaigns over the simulated
// node (see src/campaign/). Emits the schema-stable bench::Report JSON
// (--json) plus a per-trial JSON-lines log (--jsonl), and prints
// per-kernel outcome rates with Wilson 95% intervals.
//
// Exit status: 0 on success, 1 if any trial's outcome was unclassified
// (its injected fault never materialized) -- the CI smoke gate.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "campaign/accumulator.hpp"
#include "campaign/campaign.hpp"
#include "campaign/exhaustive.hpp"
#include "campaignd/protocol.hpp"
#include "campaignd/shard.hpp"

namespace {

using abftecc::campaign::Accumulator;
using abftecc::campaign::CampaignOptions;
using abftecc::campaign::CampaignResult;
using abftecc::campaign::FaultKind;
using abftecc::campaign::Outcome;
using abftecc::campaign::Rate;
using abftecc::sim::Kernel;
using abftecc::sim::Strategy;

constexpr Kernel kAllKernels[] = {Kernel::kDgemm, Kernel::kCholesky,
                                  Kernel::kCg, Kernel::kHpl};

void print_usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --kernel <k>      dgemm | cholesky | cg | hpl | all (default dgemm)\n"
      "  --trials <n>      trials per kernel (default 256)\n"
      "  --threads <n>     worker threads (default: hardware concurrency)\n"
      "  --seed <n>        campaign seed; trial i uses seed^i (default 7)\n"
      "  --input-seed <n>  kernel-input seed shared by all trials\n"
      "  --strategy <s>    no_ecc | w_ck | p_ck_no | w_sd | p_sd_no |\n"
      "                    p_ck_sd (default p_ck_sd, the cooperative\n"
      "                    ABFT-under-SECDED design point)\n"
      "  --fault <f>       single_bit | double_bit | chip_kill\n"
      "  --faults <n>      faults per trial (default 1; >1 = fault storm)\n"
      "  --storm           sample sites over ALL live allocations, not just\n"
      "                    the ABFT-protected ranges\n"
      "  --ladder          enable the recovery escalation ladder\n"
      "  --forbid-panics   exit 1 if any trial ended in Os::panic (the\n"
      "                    escalation stress gate)\n"
      "  --tolerance <x>   max |error| vs golden still 'correct' (1e-6)\n"
      "  --latencies       measure per-trial recovery latency (first ECC\n"
      "                    interrupt -> first recovery event) and emit\n"
      "                    cycle histograms under the report's 'latency'\n"
      "                    key; cycle-derived, so the report is no longer\n"
      "                    byte-reproducible across heap layouts\n"
      "  --jsonl <path>    per-trial JSON-lines log\n"
      "  --lineage <path>  per-fault provenance ledger (JSON lines): every\n"
      "                    injected fault's stage chain from injection to\n"
      "                    terminal outcome, reconciled exactly against the\n"
      "                    outcome taxonomy (any orphaned or double-counted\n"
      "                    record exits 1); explore with tools/forensics.py.\n"
      "                    Event cycle stamps are heap-layout sensitive;\n"
      "                    everything else is seed-deterministic\n"
      "  --json <path>     schema-stable campaign report\n"
      "  --shards <n>      run trials in n forked worker PROCESSES with\n"
      "                    work-stealing chunk scheduling instead of the\n"
      "                    in-process thread pool; the per-trial JSONL and\n"
      "                    the report are byte-identical for any n\n"
      "  --chunk <n>       trials per work-stealing chunk (0 = auto)\n"
      "  --checkpoint <d>  (with --shards) persist Fletcher-64-verified\n"
      "                    progress checkpoints under <d>/<kernel>/ after\n"
      "                    every chunk; a killed sweep rerun with --resume\n"
      "                    replays the verified chunks byte-identically\n"
      "  --resume          allow --checkpoint to pick up existing progress\n"
      "                    (without it, a non-empty checkpoint is an error)\n"
      "  --aggregate <p>   write the merged campaign::Accumulator JSON (one\n"
      "                    object keyed by kernel slug); cycle sums inside\n"
      "                    share TrialOutcome's heap-layout caveat\n"
      "  --exhaustive      enumerate the FULL SECDED(72,64) fault space (72\n"
      "                    singles + 2556 doubles per word) instead of\n"
      "                    sampling; exact counts, exit 1 if any analytic\n"
      "                    guarantee is violated\n"
      "  --words <n>       exhaustive mode: 64-bit data words to sweep\n"
      "  --metrics-out <p> write an OpenMetrics text exposition of the final\n"
      "                    metrics registry (validated by tools/promcheck.py)\n"
      "                    and attach a 'telemetry' time-series section to\n"
      "                    --json; purely additive -- the per-trial JSONL and\n"
      "                    --aggregate output stay byte-identical (pass an\n"
      "                    empty path to keep the argv shape w/ telemetry off)\n"
      "plus the shared platform flags (--dgemm-dim, --cache-scale, ...);\n"
      "campaign defaults shrink the inputs so 256-trial sweeps stay fast.\n",
      prog);
}

bool parse_kernel(const char* v, std::vector<Kernel>& out) {
  if (std::strcmp(v, "all") == 0) {
    out.assign(std::begin(kAllKernels), std::end(kAllKernels));
    return true;
  }
  if (std::strcmp(v, "dgemm") == 0) return out = {Kernel::kDgemm}, true;
  if (std::strcmp(v, "cholesky") == 0) return out = {Kernel::kCholesky}, true;
  if (std::strcmp(v, "cg") == 0) return out = {Kernel::kCg}, true;
  if (std::strcmp(v, "hpl") == 0) return out = {Kernel::kHpl}, true;
  return false;
}

bool parse_strategy(const char* v, Strategy& out) {
  if (std::strcmp(v, "no_ecc") == 0) return out = Strategy::kNoEcc, true;
  if (std::strcmp(v, "w_ck") == 0) return out = Strategy::kWholeChipkill, true;
  if (std::strcmp(v, "p_ck_no") == 0)
    return out = Strategy::kPartialChipkillNoEcc, true;
  if (std::strcmp(v, "w_sd") == 0) return out = Strategy::kWholeSecded, true;
  if (std::strcmp(v, "p_sd_no") == 0)
    return out = Strategy::kPartialSecdedNoEcc, true;
  if (std::strcmp(v, "p_ck_sd") == 0)
    return out = Strategy::kPartialChipkillSecded, true;
  return false;
}

bool parse_fault(const char* v, FaultKind& out) {
  if (std::strcmp(v, "single_bit") == 0)
    return out = FaultKind::kSingleBit, true;
  if (std::strcmp(v, "double_bit") == 0)
    return out = FaultKind::kDoubleBit, true;
  if (std::strcmp(v, "chip_kill") == 0)
    return out = FaultKind::kChipKill, true;
  return false;
}

std::string kernel_slug(Kernel k) {
  switch (k) {
    case Kernel::kDgemm: return "dgemm";
    case Kernel::kCholesky: return "cholesky";
    case Kernel::kCg: return "cg";
    case Kernel::kHpl: return "hpl";
  }
  return "?";
}

void print_rates(const CampaignResult& r) {
  auto line = [](const char* name, const Rate& rate) {
    std::printf("  %-24s %6llu  %7.4f  [%.4f, %.4f]\n", name,
                static_cast<unsigned long long>(rate.count), rate.fraction,
                rate.wilson_lo, rate.wilson_hi);
  };
  std::printf("  %-24s %6s  %7s  %s\n", "outcome", "count", "frac",
              "wilson 95%");
  line("corrected", r.corrected);
  line("detected_uncorrected", r.detected_uncorrected);
  line("silent_data_corruption", r.silent_data_corruption);
  line("benign_masked", r.benign_masked);
  line("recovered_by_recompute", r.recovered_by_recompute);
  line("recovered_by_rollback", r.recovered_by_rollback);
  line("unrecoverable", r.unrecoverable);
  if (r.panicked_trials > 0)
    std::printf("  PANICKED trials: %llu\n",
                static_cast<unsigned long long>(r.panicked_trials));
  if (r.unclassified > 0)
    std::printf("  UNCLASSIFIED trials: %llu\n",
                static_cast<unsigned long long>(r.unclassified));
}

/// One kernel's entry of the report's "latency" section, read straight
/// off the merged Accumulator (identical for the in-process and sharded
/// paths): the interrupt-to-recovery cycle histogram over the fixed
/// geometric ladder plus the simulated run cost per outcome.
void write_latency_json(abftecc::obs::JsonWriter& w, const Accumulator& acc) {
  w.begin_object();
  w.field("trials", acc.trials());
  w.field("with_interrupt_to_recovery", acc.latency_count());
  w.key("interrupt_to_recovery_cycles");
  w.begin_object();
  w.field("count", acc.latency_count());
  w.field("sum", static_cast<double>(acc.latency_sum()));
  w.field("mean", acc.latency_count() == 0
                      ? 0.0
                      : static_cast<double>(acc.latency_sum()) /
                            static_cast<double>(acc.latency_count()));
  w.field("max", static_cast<double>(acc.latency_max()));
  w.key("bounds");
  w.begin_array();
  for (std::size_t i = 0; i < Accumulator::kLatencyBounds; ++i)
    w.value(Accumulator::latency_bound(i));
  w.end_array();
  w.key("buckets");
  w.begin_array();
  for (std::size_t i = 0; i < Accumulator::kLatencyBuckets; ++i)
    w.value(acc.latency_bucket(i));
  w.end_array();
  w.end_object();
  // Run cost per outcome: recovery tiers show up as longer simulated runs
  // (recompute/rollback trials pay their tier's cycles).
  w.key("cycles_by_outcome");
  w.begin_object();
  for (const Outcome o : abftecc::campaign::kAllOutcomes) {
    const Accumulator::OutcomeCost c = acc.cost(o);
    if (c.trials == 0) continue;
    w.key(to_string(o));
    w.begin_object();
    w.field("trials", c.trials);
    w.field("mean_cycles", static_cast<double>(c.sum_cycles) /
                               static_cast<double>(c.trials));
    w.field("max_cycles", static_cast<double>(c.max_cycles));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

/// One kernel's entry of the report's "lineage" section: the deterministic
/// reconciliation summary (counts only -- no cycle stamps), so the section
/// stays on the byte-determinism surface.
void write_lineage_json(abftecc::obs::JsonWriter& w,
                        const CampaignResult::LineageSummary& sum) {
  w.begin_object();
  w.field("ok", sum.ok);
  w.field("faults", sum.faults);
  w.field("orphans", sum.orphans);
  w.field("double_counted", sum.double_counted);
  w.field("exposed_dropped", sum.exposed_dropped);
  w.key("resolutions");
  w.begin_object();
  for (std::size_t i = 0; i < sum.resolutions.size(); ++i) {
    const auto stage = static_cast<abftecc::obs::LineageStage>(i);
    if (abftecc::obs::is_resolution(stage))
      w.field(abftecc::obs::to_string(stage), sum.resolutions[i]);
  }
  w.end_object();
  w.key("terminals");
  w.begin_object();
  for (std::size_t i = 0; i < abftecc::campaign::kAllOutcomes.size(); ++i)
    w.field(to_string(abftecc::campaign::kAllOutcomes[i]), sum.terminals[i]);
  w.end_object();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Kernel> kernels = {Kernel::kDgemm};
  CampaignOptions base;
  base.threads = std::max(1u, std::thread::hardware_concurrency());
  std::string jsonl_path;
  std::string lineage_path;
  std::string checkpoint_dir;
  std::string aggregate_path;
  std::uint64_t input_seed = 42;
  unsigned shards = 0;
  bool resume = false;
  bool exhaustive = false;
  std::uint64_t exhaustive_words = 16;
  bool strategy_given = false;
  bool forbid_panics = false;

  // Split argv: campaign-specific flags are consumed here, everything
  // else (--json/--trace/platform dims) is forwarded to bench::Report's
  // shared parser.
  std::vector<char*> fwd = {argv[0]};
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--kernel") == 0) {
      if (!parse_kernel(need_value(i), kernels)) {
        std::fprintf(stderr, "%s: unknown kernel '%s'\n", argv[0], argv[i + 1]);
        return 2;
      }
      ++i;
    } else if (std::strcmp(a, "--trials") == 0) {
      base.trials = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--threads") == 0) {
      base.threads =
          static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
      ++i;
    } else if (std::strcmp(a, "--seed") == 0) {
      base.campaign_seed = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--input-seed") == 0) {
      input_seed = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--strategy") == 0) {
      if (!parse_strategy(need_value(i), base.platform.strategy)) {
        std::fprintf(stderr, "%s: unknown strategy '%s'\n", argv[0],
                     argv[i + 1]);
        return 2;
      }
      strategy_given = true;
      ++i;
    } else if (std::strcmp(a, "--fault") == 0) {
      if (!parse_fault(need_value(i), base.fault.kind)) {
        std::fprintf(stderr, "%s: unknown fault kind '%s'\n", argv[0],
                     argv[i + 1]);
        return 2;
      }
      ++i;
    } else if (std::strcmp(a, "--faults") == 0) {
      base.fault.count = std::max(
          1u, static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10)));
      ++i;
    } else if (std::strcmp(a, "--storm") == 0) {
      base.fault.storm_all_ranges = true;
    } else if (std::strcmp(a, "--ladder") == 0) {
      base.platform.ladder = true;
    } else if (std::strcmp(a, "--forbid-panics") == 0) {
      forbid_panics = true;
    } else if (std::strcmp(a, "--tolerance") == 0) {
      base.tolerance = std::strtod(need_value(i), nullptr), ++i;
    } else if (std::strcmp(a, "--latencies") == 0) {
      base.measure_latency = true;
    } else if (std::strcmp(a, "--jsonl") == 0) {
      jsonl_path = need_value(i), ++i;
    } else if (std::strcmp(a, "--shards") == 0) {
      shards = static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
      ++i;
    } else if (std::strcmp(a, "--chunk") == 0) {
      base.chunk = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--checkpoint") == 0) {
      checkpoint_dir = need_value(i), ++i;
    } else if (std::strcmp(a, "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(a, "--aggregate") == 0) {
      aggregate_path = need_value(i), ++i;
    } else if (std::strcmp(a, "--exhaustive") == 0) {
      exhaustive = true;
    } else if (std::strcmp(a, "--words") == 0) {
      exhaustive_words = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--lineage") == 0) {
      lineage_path = need_value(i), ++i;
      base.lineage = true;
    } else if (std::strcmp(a, "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      fwd.push_back(argv[i]);
    }
  }

  if (exhaustive) {
    // Exhaustive SECDED(72,64) fault-space coverage: not a Monte-Carlo
    // sweep, so none of the platform/report machinery applies. Counts
    // are exact; exit status is the analytic-guarantee verdict.
    abftecc::campaign::exhaustive::Options ex;
    ex.words = exhaustive_words;
    ex.seed = base.campaign_seed;
    ex.threads = base.threads;
    std::printf("campaign --exhaustive: %llu word(s) x (%llu singles + %llu "
                "doubles), %u thread(s)\n",
                static_cast<unsigned long long>(ex.words),
                static_cast<unsigned long long>(
                    abftecc::campaign::exhaustive::kSinglesPerWord),
                static_cast<unsigned long long>(
                    abftecc::campaign::exhaustive::kDoublesPerWord),
                ex.threads);
    const abftecc::campaign::exhaustive::Result r =
        abftecc::campaign::exhaustive::run(ex);
    const std::string json = r.to_json();
    std::printf("%s\n", json.c_str());
    if (!aggregate_path.empty()) {
      std::FILE* f = std::fopen(aggregate_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                     aggregate_path.c_str());
        return 2;
      }
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
    if (!r.ok()) {
      std::fprintf(stderr,
                   "campaign: exhaustive SECDED enumeration violated the "
                   "analytic guarantees\n");
      return 1;
    }
    std::printf("exhaustive coverage OK: every single-bit fault corrected "
                "exactly, every double-bit fault detected\n");
    return 0;
  }

  // Campaign-friendly input sizes: a trial costs one full simulated run,
  // so the figure-scale defaults (320..640) would make 256-trial sweeps
  // take hours. Platform flags forwarded below still override these.
  if (!strategy_given)
    base.platform.strategy = Strategy::kPartialChipkillSecded;
  base.platform.dgemm_dim = 96;
  base.platform.cholesky_dim = 96;
  base.platform.cg_dim = 160;
  base.platform.cg_iterations = 3;
  base.platform.hpl_dim = 96;
  base.platform.seed = input_seed;

  abftecc::bench::Report report(static_cast<int>(fwd.size()), fwd.data(),
                                "Fault-injection campaign",
                                "Section 5 fault-injection methodology",
                                base.platform);
  base.platform.seed = input_seed;  // campaign flag wins over --seed leftovers

  // Telemetry plane (opt-in via --metrics-out): trial progress is recorded
  // as (time, trials-delta) points in a fixed static buffer while trials
  // run, then replayed through the registry + TelemetrySampler once the
  // last trial has finished. The recording path performs ZERO heap
  // allocation: cycle counts are sensitive to host heap layout, so any
  // mid-campaign malloc from the observer would move aggregate bytes.
  const bool telemetry = !report.cli().metrics_out_path.empty();
  abftecc::obs::TelemetrySampler sampler({240, 0.0});
  struct TelemetryPoint {
    double t;
    std::uint64_t delta;
  };
  static std::array<TelemetryPoint, 16384> telemetry_raw;  // BSS, not heap
  std::size_t telemetry_points = 0;
  std::uint64_t telemetry_pending = 0;  // deltas coalesced between points
  double telemetry_last_t = 0.0;
  const auto telemetry_epoch = std::chrono::steady_clock::now();

  std::FILE* jsonl = nullptr;
  if (!jsonl_path.empty()) {
    jsonl = std::fopen(jsonl_path.c_str(), "w");
    if (jsonl == nullptr) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   jsonl_path.c_str());
      return 2;
    }
  }
  std::FILE* lineage_file = nullptr;
  if (!lineage_path.empty()) {
    lineage_file = std::fopen(lineage_path.c_str(), "w");
    if (lineage_file == nullptr) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   lineage_path.c_str());
      return 2;
    }
  }

  std::printf("campaign: %zu trial(s)/kernel, %u thread(s), seed %llu, "
              "fault %s, strategy %s\n\n",
              base.trials, base.threads,
              static_cast<unsigned long long>(base.campaign_seed),
              std::string(to_string(base.fault.kind)).c_str(),
              std::string(abftecc::sim::spec(base.platform.strategy).label)
                  .c_str());

  // All golden runs happen up front, before any trial pool exists: golden
  // cycle counts are sensitive to host heap layout (anonymous workspace
  // pages map by host address), and the pre-pool main-thread allocation
  // history is the only one that is identical on every invocation.
  std::vector<abftecc::campaign::GoldenRun> goldens;
  goldens.reserve(kernels.size());
  for (const Kernel k : kernels) {
    CampaignOptions opt = base;
    opt.kernel = k;
    goldens.push_back(abftecc::campaign::run_golden(opt));
    std::printf("  [%s] golden run: %llu tap refs\n", kernel_slug(k).c_str(),
                static_cast<unsigned long long>(goldens.back().total_refs));
  }
  std::printf("\n");

  std::uint64_t total_unclassified = 0;
  std::uint64_t total_panicked = 0;
  std::uint64_t lineage_errors = 0;
  abftecc::obs::JsonWriter latency_json;
  if (base.measure_latency) latency_json.begin_object();
  abftecc::obs::JsonWriter lineage_json;
  if (base.lineage) lineage_json.begin_object();
  abftecc::obs::JsonWriter aggregate_json;
  if (!aggregate_path.empty()) aggregate_json.begin_object();
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const Kernel k = kernels[ki];
    CampaignOptions opt = base;
    opt.kernel = k;

    const auto t0 = std::chrono::steady_clock::now();
    std::size_t last_decile = 0;
    std::size_t last_done = 0;
    const auto progress = [&](std::size_t done, std::size_t total) {
      if (telemetry && done >= last_done) {
        telemetry_pending += done - last_done;
        last_done = done;
        const double t = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - telemetry_epoch)
                             .count();
        if (telemetry_points < telemetry_raw.size() &&
            (telemetry_points == 0 || t - telemetry_last_t >= 0.25)) {
          telemetry_raw[telemetry_points++] = {t, telemetry_pending};
          telemetry_pending = 0;
          telemetry_last_t = t;
        }
      }
      const std::size_t decile = total == 0 ? 10 : 10 * done / total;
      if (decile > last_decile) {
        last_decile = decile;
        std::printf("  [%s] %zu/%zu trials\n", kernel_slug(k).c_str(), done,
                    total);
        std::fflush(stdout);
      }
    };
    CampaignResult res;
    Accumulator acc(opt);
    abftecc::campaignd::ShardOutcome sharded;
    if (shards > 0) {
      // Multi-process path: forked workers steal trial chunks; the trial
      // JSONL and the report are byte-identical to the in-process path.
      abftecc::campaignd::ShardOptions so;
      so.shards = shards;
      if (!checkpoint_dir.empty()) {
        so.checkpoint_dir = checkpoint_dir + "/" + kernel_slug(k);
        abftecc::campaignd::JobSpec fp;
        fp.name.clear();
        fp.shards = 0;  // the shard count must not pin the checkpoint
        fp.options = opt;
        so.fingerprint = abftecc::campaignd::job_fingerprint(fp);
        if (!resume) {
          const std::string manifest = so.checkpoint_dir + "/manifest.json";
          if (std::FILE* mf = std::fopen(manifest.c_str(), "rb");
              mf != nullptr) {
            std::fclose(mf);
            std::fprintf(stderr,
                         "%s: checkpoint %s already exists; pass --resume to "
                         "continue it or remove the directory\n",
                         argv[0], so.checkpoint_dir.c_str());
            return 1;
          }
        }
      }
      so.progress = progress;
      sharded = abftecc::campaignd::run_sharded(opt, goldens[ki], so);
      if (!sharded.ok) {
        std::fprintf(stderr, "%s: sharded campaign failed: %s\n", argv[0],
                     sharded.error.c_str());
        return 1;
      }
      if (sharded.chunks_resumed > 0)
        std::printf("  [%s] resumed %llu of %llu chunk(s) from checkpoint\n",
                    kernel_slug(k).c_str(),
                    static_cast<unsigned long long>(sharded.chunks_resumed),
                    static_cast<unsigned long long>(sharded.chunks_total));
      acc = sharded.acc;
      res.options = opt;
      res.golden = goldens[ki].metrics;
      acc.finalize_into(res);
    } else {
      res = abftecc::campaign::run_campaign(opt, goldens[ki], progress);
      acc = Accumulator::of(opt, res.trials);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("%s: %zu trials in %.2fs wall (%.1f trials/s)\n",
                std::string(kernel_name(k)).c_str(), opt.trials, wall,
                static_cast<double>(opt.trials) / wall);
    print_rates(res);
    std::printf("\n");

    // Golden reference run, with the host-measured FT phase timers zeroed
    // so rerunning the same seed writes a byte-identical report.
    abftecc::sim::RunMetrics golden = res.golden;
    golden.ft.encode_seconds = 0.0;
    golden.ft.verify_seconds = 0.0;
    golden.ft.correct_seconds = 0.0;
    report.add_run("golden/" + std::string(kernel_name(k)), golden);

    const std::string slug = kernel_slug(k);
    auto rate_scalars = [&](const char* name, const Rate& r) {
      report.scalar(slug + "." + name + "_fraction", r.fraction);
      report.scalar(slug + "." + name + "_wilson_lo", r.wilson_lo);
      report.scalar(slug + "." + name + "_wilson_hi", r.wilson_hi);
    };
    rate_scalars("corrected", res.corrected);
    rate_scalars("detected_uncorrected", res.detected_uncorrected);
    rate_scalars("silent_data_corruption", res.silent_data_corruption);
    rate_scalars("benign_masked", res.benign_masked);
    rate_scalars("recovered_by_recompute", res.recovered_by_recompute);
    rate_scalars("recovered_by_rollback", res.recovered_by_rollback);
    rate_scalars("unrecoverable", res.unrecoverable);
    report.scalar(slug + ".trials", static_cast<double>(opt.trials));
    report.scalar(slug + ".unclassified",
                  static_cast<double>(res.unclassified));
    report.scalar(slug + ".panicked", static_cast<double>(res.panicked_trials));
    total_unclassified += res.unclassified;
    total_panicked += res.panicked_trials;

    if (base.measure_latency) {
      const std::uint64_t n = acc.latency_count();
      std::printf("  [%s] interrupt->recovery latency: %llu trial(s), mean "
                  "%.0f cycles\n",
                  slug.c_str(), static_cast<unsigned long long>(n),
                  n == 0 ? 0.0
                         : static_cast<double>(acc.latency_sum()) /
                               static_cast<double>(n));
      latency_json.key(slug);
      write_latency_json(latency_json, acc);
    }

    if (jsonl != nullptr) {
      if (shards > 0) {
        for (const std::string& line : sharded.trial_lines)
          std::fprintf(jsonl, "%s\n", line.c_str());
      } else {
        for (const auto& t : res.trials)
          abftecc::campaign::write_trial_jsonl(jsonl, opt, t);
      }
    }

    if (base.lineage) {
      if (lineage_file != nullptr) {
        if (shards > 0) {
          std::fputs(sharded.lineage_lines.c_str(), lineage_file);
        } else {
          for (const auto& t : res.trials)
            abftecc::campaign::write_lineage_jsonl(lineage_file, opt, t);
        }
      }
      const auto& lin = res.lineage;
      std::printf("  [%s] lineage: %llu fault record(s), %llu orphan(s), "
                  "%llu double-counted, %llu log drop(s) -- "
                  "reconciliation %s\n",
                  slug.c_str(), static_cast<unsigned long long>(lin.faults),
                  static_cast<unsigned long long>(lin.orphans),
                  static_cast<unsigned long long>(lin.double_counted),
                  static_cast<unsigned long long>(lin.exposed_dropped),
                  lin.ok ? "OK" : "FAILED");
      for (const std::string& e : lin.errors)
        std::fprintf(stderr, "  [%s] lineage error: %s\n", slug.c_str(),
                     e.c_str());
      lineage_errors += lin.errors.size();
      lineage_json.key(slug);
      write_lineage_json(lineage_json, res.lineage);
      report.scalar(slug + ".lineage_faults",
                    static_cast<double>(lin.faults));
      report.scalar(slug + ".lineage_orphans",
                    static_cast<double>(lin.orphans));
      report.scalar(slug + ".exposed_dropped",
                    static_cast<double>(lin.exposed_dropped));
    }

    if (!aggregate_path.empty()) {
      aggregate_json.key(slug);
      aggregate_json.raw(acc.to_json());
    }
  }

  if (base.measure_latency) {
    latency_json.end_object();
    report.section("latency", latency_json.take());
    report.note("latency",
                "cycle-derived recovery-latency histograms (--latencies); "
                "excluded from the byte-determinism surface");
  }
  if (base.lineage) {
    lineage_json.end_object();
    report.section("lineage", lineage_json.take());
    report.note("lineage",
                "per-fault provenance ledger reconciliation (--lineage); "
                "counts only, deterministic for a fixed seed");
  }

  if (telemetry) {
    // Replay the allocation-free recording into the registry now that the
    // last trial is done and heap layout no longer matters.
    auto& reg = abftecc::obs::default_registry();
    for (std::size_t i = 0; i < telemetry_points; ++i) {
      reg.counter("campaign.trials").add(telemetry_raw[i].delta);
      sampler.sample(reg, telemetry_raw[i].t);
    }
    reg.counter("campaign.trials").add(telemetry_pending);  // tail flush
    sampler.sample(reg, std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - telemetry_epoch)
                            .count());
    report.section("telemetry", sampler.to_json());
    report.note("telemetry",
                "timeseries-v1 trial-rate rings (--metrics-out); recorded "
                "allocation-free during the run, replayed after the last "
                "trial -- JSONL/aggregate outputs are byte-identical with "
                "telemetry off");
  }

  report.note("campaign_seed", std::to_string(base.campaign_seed));
  report.note("fault", std::string(to_string(base.fault.kind)));
  report.note("ft_phase_timers",
              "host wall-clock encode/verify/correct timers zeroed for "
              "deterministic reruns");

  if (jsonl != nullptr) {
    std::fclose(jsonl);
    std::printf("wrote per-trial JSON lines: %s\n", jsonl_path.c_str());
  }
  if (lineage_file != nullptr) {
    std::fclose(lineage_file);
    std::printf("wrote fault provenance ledger: %s\n", lineage_path.c_str());
  }
  if (!aggregate_path.empty()) {
    aggregate_json.end_object();
    std::FILE* f = std::fopen(aggregate_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s for writing\n", argv[0],
                   aggregate_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", aggregate_json.take().c_str());
    std::fclose(f);
    std::printf("wrote merged accumulator JSON: %s\n", aggregate_path.c_str());
  }
  if (lineage_errors > 0) {
    std::fprintf(stderr,
                 "campaign: lineage reconciliation FAILED with %llu "
                 "error(s) -- orphaned or double-counted fault records\n",
                 static_cast<unsigned long long>(lineage_errors));
    return 1;
  }
  if (total_unclassified > 0) {
    std::fprintf(stderr, "campaign: %llu unclassified trial(s)\n",
                 static_cast<unsigned long long>(total_unclassified));
    return 1;
  }
  if (forbid_panics && total_panicked > 0) {
    std::fprintf(stderr, "campaign: %llu panicked trial(s) (--forbid-panics)\n",
                 static_cast<unsigned long long>(total_panicked));
    return 1;
  }
  return 0;
}
