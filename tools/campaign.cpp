// `campaign`: Monte Carlo fault-injection campaigns over the simulated
// node (see src/campaign/). Emits the schema-stable bench::Report JSON
// (--json) plus a per-trial JSON-lines log (--jsonl), and prints
// per-kernel outcome rates with Wilson 95% intervals.
//
// Exit status: 0 on success, 1 if any trial's outcome was unclassified
// (its injected fault never materialized) -- the CI smoke gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.hpp"
#include "campaign/campaign.hpp"

namespace {

using abftecc::campaign::CampaignOptions;
using abftecc::campaign::CampaignResult;
using abftecc::campaign::FaultKind;
using abftecc::campaign::Outcome;
using abftecc::campaign::Rate;
using abftecc::sim::Kernel;
using abftecc::sim::Strategy;

constexpr Kernel kAllKernels[] = {Kernel::kDgemm, Kernel::kCholesky,
                                  Kernel::kCg, Kernel::kHpl};

void print_usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --kernel <k>      dgemm | cholesky | cg | hpl | all (default dgemm)\n"
      "  --trials <n>      trials per kernel (default 256)\n"
      "  --threads <n>     worker threads (default: hardware concurrency)\n"
      "  --seed <n>        campaign seed; trial i uses seed^i (default 7)\n"
      "  --input-seed <n>  kernel-input seed shared by all trials\n"
      "  --strategy <s>    no_ecc | w_ck | p_ck_no | w_sd | p_sd_no |\n"
      "                    p_ck_sd (default p_ck_sd, the cooperative\n"
      "                    ABFT-under-SECDED design point)\n"
      "  --fault <f>       single_bit | double_bit | chip_kill\n"
      "  --faults <n>      faults per trial (default 1; >1 = fault storm)\n"
      "  --storm           sample sites over ALL live allocations, not just\n"
      "                    the ABFT-protected ranges\n"
      "  --ladder          enable the recovery escalation ladder\n"
      "  --forbid-panics   exit 1 if any trial ended in Os::panic (the\n"
      "                    escalation stress gate)\n"
      "  --tolerance <x>   max |error| vs golden still 'correct' (1e-6)\n"
      "  --latencies       measure per-trial recovery latency (first ECC\n"
      "                    interrupt -> first recovery event) and emit\n"
      "                    cycle histograms under the report's 'latency'\n"
      "                    key; cycle-derived, so the report is no longer\n"
      "                    byte-reproducible across heap layouts\n"
      "  --jsonl <path>    per-trial JSON-lines log\n"
      "  --lineage <path>  per-fault provenance ledger (JSON lines): every\n"
      "                    injected fault's stage chain from injection to\n"
      "                    terminal outcome, reconciled exactly against the\n"
      "                    outcome taxonomy (any orphaned or double-counted\n"
      "                    record exits 1); explore with tools/forensics.py.\n"
      "                    Event cycle stamps are heap-layout sensitive;\n"
      "                    everything else is seed-deterministic\n"
      "  --json <path>     schema-stable campaign report\n"
      "plus the shared platform flags (--dgemm-dim, --cache-scale, ...);\n"
      "campaign defaults shrink the inputs so 256-trial sweeps stay fast.\n",
      prog);
}

bool parse_kernel(const char* v, std::vector<Kernel>& out) {
  if (std::strcmp(v, "all") == 0) {
    out.assign(std::begin(kAllKernels), std::end(kAllKernels));
    return true;
  }
  if (std::strcmp(v, "dgemm") == 0) return out = {Kernel::kDgemm}, true;
  if (std::strcmp(v, "cholesky") == 0) return out = {Kernel::kCholesky}, true;
  if (std::strcmp(v, "cg") == 0) return out = {Kernel::kCg}, true;
  if (std::strcmp(v, "hpl") == 0) return out = {Kernel::kHpl}, true;
  return false;
}

bool parse_strategy(const char* v, Strategy& out) {
  if (std::strcmp(v, "no_ecc") == 0) return out = Strategy::kNoEcc, true;
  if (std::strcmp(v, "w_ck") == 0) return out = Strategy::kWholeChipkill, true;
  if (std::strcmp(v, "p_ck_no") == 0)
    return out = Strategy::kPartialChipkillNoEcc, true;
  if (std::strcmp(v, "w_sd") == 0) return out = Strategy::kWholeSecded, true;
  if (std::strcmp(v, "p_sd_no") == 0)
    return out = Strategy::kPartialSecdedNoEcc, true;
  if (std::strcmp(v, "p_ck_sd") == 0)
    return out = Strategy::kPartialChipkillSecded, true;
  return false;
}

bool parse_fault(const char* v, FaultKind& out) {
  if (std::strcmp(v, "single_bit") == 0)
    return out = FaultKind::kSingleBit, true;
  if (std::strcmp(v, "double_bit") == 0)
    return out = FaultKind::kDoubleBit, true;
  if (std::strcmp(v, "chip_kill") == 0)
    return out = FaultKind::kChipKill, true;
  return false;
}

std::string kernel_slug(Kernel k) {
  switch (k) {
    case Kernel::kDgemm: return "dgemm";
    case Kernel::kCholesky: return "cholesky";
    case Kernel::kCg: return "cg";
    case Kernel::kHpl: return "hpl";
  }
  return "?";
}

void print_rates(const CampaignResult& r) {
  auto line = [](const char* name, const Rate& rate) {
    std::printf("  %-24s %6llu  %7.4f  [%.4f, %.4f]\n", name,
                static_cast<unsigned long long>(rate.count), rate.fraction,
                rate.wilson_lo, rate.wilson_hi);
  };
  std::printf("  %-24s %6s  %7s  %s\n", "outcome", "count", "frac",
              "wilson 95%");
  line("corrected", r.corrected);
  line("detected_uncorrected", r.detected_uncorrected);
  line("silent_data_corruption", r.silent_data_corruption);
  line("benign_masked", r.benign_masked);
  line("recovered_by_recompute", r.recovered_by_recompute);
  line("recovered_by_rollback", r.recovered_by_rollback);
  line("unrecoverable", r.unrecoverable);
  if (r.panicked_trials > 0)
    std::printf("  PANICKED trials: %llu\n",
                static_cast<unsigned long long>(r.panicked_trials));
  if (r.unclassified > 0)
    std::printf("  UNCLASSIFIED trials: %llu\n",
                static_cast<unsigned long long>(r.unclassified));
}

/// Aggregate the per-trial latency samples recorded under --latencies into
/// one kernel's entry of the report's "latency" section: an
/// interrupt-to-recovery cycle histogram (geometric buckets, fixed across
/// runs so shapes aggregate) plus the simulated run cost per outcome.
void write_latency_json(abftecc::obs::JsonWriter& w, const CampaignResult& r) {
  using abftecc::obs::Histogram;
  Histogram hist(Histogram::exponential_bounds(64.0, 2.0, 18));
  std::uint64_t with_latency = 0;
  for (const auto& t : r.trials) {
    if (t.interrupt_to_recovery_cycles < 0.0) continue;
    ++with_latency;
    hist.observe(t.interrupt_to_recovery_cycles);
  }
  w.begin_object();
  w.field("trials", static_cast<std::uint64_t>(r.trials.size()));
  w.field("with_interrupt_to_recovery", with_latency);
  w.key("interrupt_to_recovery_cycles");
  w.begin_object();
  w.field("count", hist.count());
  w.field("sum", hist.sum());
  w.field("mean", hist.mean());
  w.field("max", hist.max());
  w.key("bounds");
  w.begin_array();
  for (std::size_t i = 0; i + 1 < hist.num_buckets(); ++i)
    w.value(hist.upper_bound(i));
  w.end_array();
  w.key("buckets");
  w.begin_array();
  for (std::size_t i = 0; i < hist.num_buckets(); ++i)
    w.value(hist.bucket_count(i));
  w.end_array();
  w.end_object();
  // Run cost per outcome: recovery tiers show up as longer simulated runs
  // (recompute/rollback trials pay their tier's cycles).
  w.key("cycles_by_outcome");
  w.begin_object();
  for (const Outcome o : abftecc::campaign::kAllOutcomes) {
    std::uint64_t n = 0;
    double sum = 0.0;
    double mx = 0.0;
    for (const auto& t : r.trials) {
      if (t.outcome != o) continue;
      ++n;
      sum += static_cast<double>(t.cycles);
      mx = std::max(mx, static_cast<double>(t.cycles));
    }
    if (n == 0) continue;
    w.key(to_string(o));
    w.begin_object();
    w.field("trials", n);
    w.field("mean_cycles", sum / static_cast<double>(n));
    w.field("max_cycles", mx);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

/// One kernel's entry of the report's "lineage" section: the deterministic
/// reconciliation summary (counts only -- no cycle stamps), so the section
/// stays on the byte-determinism surface.
void write_lineage_json(abftecc::obs::JsonWriter& w, const CampaignResult& r) {
  const auto& sum = r.lineage;
  w.begin_object();
  w.field("ok", sum.ok);
  w.field("faults", sum.faults);
  w.field("orphans", sum.orphans);
  w.field("double_counted", sum.double_counted);
  w.field("exposed_dropped", sum.exposed_dropped);
  w.key("resolutions");
  w.begin_object();
  for (std::size_t i = 0; i < sum.resolutions.size(); ++i) {
    const auto stage = static_cast<abftecc::obs::LineageStage>(i);
    if (abftecc::obs::is_resolution(stage))
      w.field(abftecc::obs::to_string(stage), sum.resolutions[i]);
  }
  w.end_object();
  w.key("terminals");
  w.begin_object();
  for (std::size_t i = 0; i < abftecc::campaign::kAllOutcomes.size(); ++i)
    w.field(to_string(abftecc::campaign::kAllOutcomes[i]), sum.terminals[i]);
  w.end_object();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Kernel> kernels = {Kernel::kDgemm};
  CampaignOptions base;
  base.threads = std::max(1u, std::thread::hardware_concurrency());
  std::string jsonl_path;
  std::string lineage_path;
  std::uint64_t input_seed = 42;
  bool strategy_given = false;
  bool forbid_panics = false;

  // Split argv: campaign-specific flags are consumed here, everything
  // else (--json/--trace/platform dims) is forwarded to bench::Report's
  // shared parser.
  std::vector<char*> fwd = {argv[0]};
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--kernel") == 0) {
      if (!parse_kernel(need_value(i), kernels)) {
        std::fprintf(stderr, "%s: unknown kernel '%s'\n", argv[0], argv[i + 1]);
        return 2;
      }
      ++i;
    } else if (std::strcmp(a, "--trials") == 0) {
      base.trials = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--threads") == 0) {
      base.threads =
          static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10));
      ++i;
    } else if (std::strcmp(a, "--seed") == 0) {
      base.campaign_seed = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--input-seed") == 0) {
      input_seed = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--strategy") == 0) {
      if (!parse_strategy(need_value(i), base.platform.strategy)) {
        std::fprintf(stderr, "%s: unknown strategy '%s'\n", argv[0],
                     argv[i + 1]);
        return 2;
      }
      strategy_given = true;
      ++i;
    } else if (std::strcmp(a, "--fault") == 0) {
      if (!parse_fault(need_value(i), base.fault.kind)) {
        std::fprintf(stderr, "%s: unknown fault kind '%s'\n", argv[0],
                     argv[i + 1]);
        return 2;
      }
      ++i;
    } else if (std::strcmp(a, "--faults") == 0) {
      base.fault.count = std::max(
          1u, static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10)));
      ++i;
    } else if (std::strcmp(a, "--storm") == 0) {
      base.fault.storm_all_ranges = true;
    } else if (std::strcmp(a, "--ladder") == 0) {
      base.platform.ladder = true;
    } else if (std::strcmp(a, "--forbid-panics") == 0) {
      forbid_panics = true;
    } else if (std::strcmp(a, "--tolerance") == 0) {
      base.tolerance = std::strtod(need_value(i), nullptr), ++i;
    } else if (std::strcmp(a, "--latencies") == 0) {
      base.measure_latency = true;
    } else if (std::strcmp(a, "--jsonl") == 0) {
      jsonl_path = need_value(i), ++i;
    } else if (std::strcmp(a, "--lineage") == 0) {
      lineage_path = need_value(i), ++i;
      base.lineage = true;
    } else if (std::strcmp(a, "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      fwd.push_back(argv[i]);
    }
  }

  // Campaign-friendly input sizes: a trial costs one full simulated run,
  // so the figure-scale defaults (320..640) would make 256-trial sweeps
  // take hours. Platform flags forwarded below still override these.
  if (!strategy_given)
    base.platform.strategy = Strategy::kPartialChipkillSecded;
  base.platform.dgemm_dim = 96;
  base.platform.cholesky_dim = 96;
  base.platform.cg_dim = 160;
  base.platform.cg_iterations = 3;
  base.platform.hpl_dim = 96;
  base.platform.seed = input_seed;

  abftecc::bench::Report report(static_cast<int>(fwd.size()), fwd.data(),
                                "Fault-injection campaign",
                                "Section 5 fault-injection methodology",
                                base.platform);
  base.platform.seed = input_seed;  // campaign flag wins over --seed leftovers

  std::FILE* jsonl = nullptr;
  if (!jsonl_path.empty()) {
    jsonl = std::fopen(jsonl_path.c_str(), "w");
    if (jsonl == nullptr) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   jsonl_path.c_str());
      return 2;
    }
  }
  std::FILE* lineage_file = nullptr;
  if (!lineage_path.empty()) {
    lineage_file = std::fopen(lineage_path.c_str(), "w");
    if (lineage_file == nullptr) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   lineage_path.c_str());
      return 2;
    }
  }

  std::printf("campaign: %zu trial(s)/kernel, %u thread(s), seed %llu, "
              "fault %s, strategy %s\n\n",
              base.trials, base.threads,
              static_cast<unsigned long long>(base.campaign_seed),
              std::string(to_string(base.fault.kind)).c_str(),
              std::string(abftecc::sim::spec(base.platform.strategy).label)
                  .c_str());

  // All golden runs happen up front, before any trial pool exists: golden
  // cycle counts are sensitive to host heap layout (anonymous workspace
  // pages map by host address), and the pre-pool main-thread allocation
  // history is the only one that is identical on every invocation.
  std::vector<abftecc::campaign::GoldenRun> goldens;
  goldens.reserve(kernels.size());
  for (const Kernel k : kernels) {
    CampaignOptions opt = base;
    opt.kernel = k;
    goldens.push_back(abftecc::campaign::run_golden(opt));
    std::printf("  [%s] golden run: %llu tap refs\n", kernel_slug(k).c_str(),
                static_cast<unsigned long long>(goldens.back().total_refs));
  }
  std::printf("\n");

  std::uint64_t total_unclassified = 0;
  std::uint64_t total_panicked = 0;
  std::uint64_t lineage_errors = 0;
  abftecc::obs::JsonWriter latency_json;
  if (base.measure_latency) latency_json.begin_object();
  abftecc::obs::JsonWriter lineage_json;
  if (base.lineage) lineage_json.begin_object();
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const Kernel k = kernels[ki];
    CampaignOptions opt = base;
    opt.kernel = k;

    const auto t0 = std::chrono::steady_clock::now();
    std::size_t last_decile = 0;
    const CampaignResult res = abftecc::campaign::run_campaign(
        opt, goldens[ki], [&](std::size_t done, std::size_t total) {
          const std::size_t decile = 10 * done / total;
          if (decile > last_decile) {
            last_decile = decile;
            std::printf("  [%s] %zu/%zu trials\n", kernel_slug(k).c_str(),
                        done, total);
            std::fflush(stdout);
          }
        });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("%s: %zu trials in %.2fs wall (%.1f trials/s)\n",
                std::string(kernel_name(k)).c_str(), opt.trials, wall,
                static_cast<double>(opt.trials) / wall);
    print_rates(res);
    std::printf("\n");

    // Golden reference run, with the host-measured FT phase timers zeroed
    // so rerunning the same seed writes a byte-identical report.
    abftecc::sim::RunMetrics golden = res.golden;
    golden.ft.encode_seconds = 0.0;
    golden.ft.verify_seconds = 0.0;
    golden.ft.correct_seconds = 0.0;
    report.add_run("golden/" + std::string(kernel_name(k)), golden);

    const std::string slug = kernel_slug(k);
    auto rate_scalars = [&](const char* name, const Rate& r) {
      report.scalar(slug + "." + name + "_fraction", r.fraction);
      report.scalar(slug + "." + name + "_wilson_lo", r.wilson_lo);
      report.scalar(slug + "." + name + "_wilson_hi", r.wilson_hi);
    };
    rate_scalars("corrected", res.corrected);
    rate_scalars("detected_uncorrected", res.detected_uncorrected);
    rate_scalars("silent_data_corruption", res.silent_data_corruption);
    rate_scalars("benign_masked", res.benign_masked);
    rate_scalars("recovered_by_recompute", res.recovered_by_recompute);
    rate_scalars("recovered_by_rollback", res.recovered_by_rollback);
    rate_scalars("unrecoverable", res.unrecoverable);
    report.scalar(slug + ".trials", static_cast<double>(opt.trials));
    report.scalar(slug + ".unclassified",
                  static_cast<double>(res.unclassified));
    report.scalar(slug + ".panicked", static_cast<double>(res.panicked_trials));
    total_unclassified += res.unclassified;
    total_panicked += res.panicked_trials;

    if (base.measure_latency) {
      std::uint64_t n = 0;
      double sum = 0.0;
      for (const auto& t : res.trials)
        if (t.interrupt_to_recovery_cycles >= 0.0) {
          ++n;
          sum += t.interrupt_to_recovery_cycles;
        }
      std::printf("  [%s] interrupt->recovery latency: %llu trial(s), mean "
                  "%.0f cycles\n",
                  slug.c_str(), static_cast<unsigned long long>(n),
                  n == 0 ? 0.0 : sum / static_cast<double>(n));
      latency_json.key(slug);
      write_latency_json(latency_json, res);
    }

    if (jsonl != nullptr)
      for (const auto& t : res.trials)
        abftecc::campaign::write_trial_jsonl(jsonl, opt, t);

    if (base.lineage) {
      if (lineage_file != nullptr)
        for (const auto& t : res.trials)
          abftecc::campaign::write_lineage_jsonl(lineage_file, opt, t);
      const auto& lin = res.lineage;
      std::printf("  [%s] lineage: %llu fault record(s), %llu orphan(s), "
                  "%llu double-counted, %llu log drop(s) -- "
                  "reconciliation %s\n",
                  slug.c_str(), static_cast<unsigned long long>(lin.faults),
                  static_cast<unsigned long long>(lin.orphans),
                  static_cast<unsigned long long>(lin.double_counted),
                  static_cast<unsigned long long>(lin.exposed_dropped),
                  lin.ok ? "OK" : "FAILED");
      for (const std::string& e : lin.errors)
        std::fprintf(stderr, "  [%s] lineage error: %s\n", slug.c_str(),
                     e.c_str());
      lineage_errors += lin.errors.size();
      lineage_json.key(slug);
      write_lineage_json(lineage_json, res);
      report.scalar(slug + ".lineage_faults",
                    static_cast<double>(lin.faults));
      report.scalar(slug + ".lineage_orphans",
                    static_cast<double>(lin.orphans));
      report.scalar(slug + ".exposed_dropped",
                    static_cast<double>(lin.exposed_dropped));
    }
  }

  if (base.measure_latency) {
    latency_json.end_object();
    report.section("latency", latency_json.take());
    report.note("latency",
                "cycle-derived recovery-latency histograms (--latencies); "
                "excluded from the byte-determinism surface");
  }
  if (base.lineage) {
    lineage_json.end_object();
    report.section("lineage", lineage_json.take());
    report.note("lineage",
                "per-fault provenance ledger reconciliation (--lineage); "
                "counts only, deterministic for a fixed seed");
  }

  report.note("campaign_seed", std::to_string(base.campaign_seed));
  report.note("fault", std::string(to_string(base.fault.kind)));
  report.note("ft_phase_timers",
              "host wall-clock encode/verify/correct timers zeroed for "
              "deterministic reruns");

  if (jsonl != nullptr) {
    std::fclose(jsonl);
    std::printf("wrote per-trial JSON lines: %s\n", jsonl_path.c_str());
  }
  if (lineage_file != nullptr) {
    std::fclose(lineage_file);
    std::printf("wrote fault provenance ledger: %s\n", lineage_path.c_str());
  }
  if (lineage_errors > 0) {
    std::fprintf(stderr,
                 "campaign: lineage reconciliation FAILED with %llu "
                 "error(s) -- orphaned or double-counted fault records\n",
                 static_cast<unsigned long long>(lineage_errors));
    return 1;
  }
  if (total_unclassified > 0) {
    std::fprintf(stderr, "campaign: %llu unclassified trial(s)\n",
                 static_cast<unsigned long long>(total_unclassified));
    return 1;
  }
  if (forbid_panics && total_panicked > 0) {
    std::fprintf(stderr, "campaign: %llu panicked trial(s) (--forbid-panics)\n",
                 static_cast<unsigned long long>(total_panicked));
    return 1;
  }
  return 0;
}
