#!/usr/bin/env python3
"""Validator for the OpenMetrics text exposition the telemetry plane emits
(`--metrics-out` textfile dumps and `campaignctl metrics` scrapes).

Checks, per file:
  - line grammar: every non-comment line is `name{labels} value` with a
    valid metric name `[a-zA-Z_:][a-zA-Z0-9_:]*` and parseable value
  - every sample belongs to a family declared by a preceding `# TYPE`
    line, each family is declared at most once, and the sample suffix
    matches the declared type (counters end in `_total`; histograms use
    only `_bucket`/`_count`/`_sum`)
  - counter and histogram sample values are finite and non-negative
  - histogram buckets are cumulative (non-decreasing in `le` order per
    label set), carry a `+Inf` bucket, and `+Inf == _count`
  - the last line is exactly `# EOF`

Given MULTIPLE files (in scrape order), additionally checks monotonicity
across scrapes: counter samples and histogram `_count`/`_bucket` samples
never decrease for the same (name, labels) series.

Usage:
    python3 tools/promcheck.py dump1.prom [dump2.prom ...]

Exit status: 0 when every check passes, 1 on any violation, 2 on usage
errors. Violations are listed one per line as `file:line: message`.
"""
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name, optional {labels}, value -- labels parsed separately.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = ("counter", "gauge", "histogram")
HIST_SUFFIXES = ("_bucket", "_count", "_sum")


def parse_value(tok):
    if tok == "+Inf":
        return math.inf
    if tok == "-Inf":
        return -math.inf
    try:
        return float(tok)
    except ValueError:
        return None


def strip_suffix(name, families):
    """Resolve a sample name to its (family, suffix) under known families."""
    if name in families:
        return name, ""
    for suf in ("_total",) + HIST_SUFFIXES:
        if name.endswith(suf) and name[: -len(suf)] in families:
            return name[: -len(suf)], suf
    return None, None


def parse_labels(text, err):
    """`{a="b",c="d"}` -> sorted tuple of (name, value); None on garbage."""
    if not text:
        return ()
    body = text[1:-1]
    pairs = LABEL_RE.findall(body)
    # Reject junk the findall silently skipped.
    rebuilt = ",".join('%s="%s"' % (n, v) for n, v in pairs)
    if re.sub(r"\s", "", body) != rebuilt and body != rebuilt:
        err("malformed label set %r" % text)
        return None
    return tuple(sorted(pairs))


def check_file(path, cross_series):
    """Validate one exposition file; returns a list of violation strings.

    cross_series maps (family, suffix, labels) -> last value, shared
    across files to enforce cross-scrape monotonicity.
    """
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        return ["%s: cannot read: %s" % (path, e)]

    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("%s:%d: last line must be '# EOF'" % (path, len(lines)))

    families = {}  # name -> type
    # (family, labels) -> list of (le, value) for bucket cumulativity,
    # plus recorded _count per label set.
    buckets = {}
    counts = {}

    for i, line in enumerate(lines, 1):
        def err(msg, i=i):
            problems.append("%s:%d: %s" % (path, i, msg))

        if line == "# EOF":
            if i != len(lines):
                err("'# EOF' before end of file")
            continue
        if line.startswith("#"):
            m = re.match(r"^# TYPE ([^ ]+) ([^ ]+)$", line)
            if m is None:
                if not line.startswith(("# HELP ", "# UNIT ")):
                    err("unrecognized comment line %r" % line)
                continue
            name, typ = m.groups()
            if not NAME_RE.match(name):
                err("invalid family name %r" % name)
            if typ not in TYPES:
                err("unknown family type %r" % typ)
            if name in families:
                err("family %r declared twice" % name)
            families[name] = typ
            continue
        if not line.strip():
            err("blank line in exposition")
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            err("unparseable sample line %r" % line)
            continue
        name, label_text, value_tok = m.groups()
        value = parse_value(value_tok)
        if value is None:
            err("unparseable value %r" % value_tok)
            continue
        family, suffix = strip_suffix(name, families)
        if family is None:
            err("sample %r has no preceding # TYPE family" % name)
            continue
        typ = families[family]
        labels = parse_labels(label_text or "", err)
        if labels is None:
            continue

        if typ == "counter":
            if suffix != "_total":
                err("counter sample %r must use the _total suffix" % name)
            if not (value >= 0.0) or math.isinf(value) or math.isnan(value):
                err("counter %r value %s not finite/non-negative"
                    % (name, value_tok))
        elif typ == "gauge":
            if suffix != "":
                err("gauge sample %r must not carry a suffix" % name)
        else:  # histogram
            if suffix not in HIST_SUFFIXES:
                err("histogram sample %r must use _bucket/_count/_sum" % name)
                continue
            if suffix != "_sum" and (value < 0.0 or math.isnan(value)):
                err("histogram %r value %s negative/NaN" % (name, value_tok))
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    err("histogram bucket %r missing le label" % name)
                    continue
                le_v = parse_value(le.replace("\\\\", "\\"))
                if le_v is None:
                    err("histogram bucket %r has bad le=%r" % (name, le))
                    continue
                base = tuple(p for p in labels if p[0] != "le")
                buckets.setdefault((family, base), []).append((le_v, value, i))
                continue  # monotonicity tracked per (family, base, le) below
            if suffix == "_count":
                counts[(family, tuple(p for p in labels if p[0] != "le"))] = (
                    value, i)

        # Cross-scrape monotonicity for counter-like series.
        if typ == "counter" or (typ == "histogram" and suffix == "_count"):
            key = (family, suffix, labels)
            prev = cross_series.get(key)
            if prev is not None and value < prev:
                err("series %s%s%s went backwards across scrapes "
                    "(%g -> %g)" % (family, suffix, label_text or "",
                                    prev, value))
            cross_series[key] = value

    # Bucket invariants per histogram label set.
    for (family, base), rows in buckets.items():
        rows_sorted = sorted(rows, key=lambda r: r[0])
        prev_v = -1.0
        has_inf = False
        for le_v, v, ln in rows_sorted:
            if v < prev_v:
                problems.append(
                    "%s:%d: histogram %s buckets not cumulative at le=%g "
                    "(%g < %g)" % (path, ln, family, le_v, v, prev_v))
            prev_v = v
            if math.isinf(le_v) and le_v > 0:
                has_inf = True
                cnt = counts.get((family, base))
                if cnt is not None and v != cnt[0]:
                    problems.append(
                        "%s:%d: histogram %s +Inf bucket %g != _count %g"
                        % (path, ln, family, v, cnt[0]))
        if not has_inf:
            problems.append("%s: histogram %s label set %r lacks a +Inf "
                            "bucket" % (path, family, dict(base)))
        # Cross-scrape: bucket counts per (family, base, le) never decrease.
        for le_v, v, ln in rows_sorted:
            key = (family, "_bucket", base + (("le", repr(le_v)),))
            prev = cross_series.get(key)
            if prev is not None and v < prev:
                problems.append(
                    "%s:%d: histogram %s bucket le=%g went backwards across "
                    "scrapes (%g -> %g)" % (path, ln, family, le_v, prev, v))
            cross_series[key] = v

    return problems


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if len(argv) >= 2 else 2
    cross = {}
    problems = []
    for path in argv[1:]:
        problems.extend(check_file(path, cross))
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print("promcheck: %d violation(s) across %d file(s)"
              % (len(problems), len(argv) - 1), file=sys.stderr)
        return 1
    print("promcheck: OK (%d file(s))" % (len(argv) - 1))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
