// `campaignctl`: CLI client for the campaignd daemon (src/campaignd/).
//
//   campaignctl --socket S ping
//   campaignctl --socket S submit [job flags] [--wait]
//   campaignctl --socket S status | jobs
//   campaignctl --socket S wait <job-id>
//   campaignctl --socket S results <job-id>
//   campaignctl --socket S resume <job-id> [--wait]
//   campaignctl --socket S watch <job-id>
//   campaignctl --socket S metrics [--series]
//   campaignctl --socket S shutdown
//
// submit speaks the same campaign vocabulary as tools/campaign
// (--kernel/--trials/--seed/--fault/...) plus --shards for the worker
// process count and --exhaustive/--words for the exhaustive SECDED
// enumeration mode. Responses are printed as the daemon's JSON line.
//
// The telemetry plane (ISSUE 10): `watch` subscribes to a job's live
// event stream and renders trials/sec, outcome mix, worker heartbeats,
// and ETA (a redrawn status line on a tty, one line per event
// otherwise); `metrics` dumps the daemon's OpenMetrics exposition text
// (or the time-series rings JSON with --series).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaignd/client.hpp"
#include "obs/json.hpp"

namespace {

using abftecc::campaignd::Client;
using abftecc::campaignd::JobSpec;

void print_usage(const char* prog) {
  std::printf(
      "usage: %s --socket <path> <command> [args]\n"
      "commands:\n"
      "  ping                 liveness check\n"
      "  status               daemon + current job state\n"
      "  jobs                 list all jobs\n"
      "  submit [flags]       queue a job; prints the assigned id\n"
      "    --name <s>         client label (default 'campaign')\n"
      "    --kernel <k>       dgemm | cholesky | cg | hpl\n"
      "    --trials <n>       Monte-Carlo trials (default 256)\n"
      "    --shards <n>       worker processes (default: daemon's)\n"
      "    --chunk <n>        trials per work-stealing chunk (0 = auto)\n"
      "    --seed <n>         campaign seed\n"
      "    --input-seed <n>   kernel-input seed\n"
      "    --strategy <s>     no_ecc|w_ck|p_ck_no|w_sd|p_sd_no|p_ck_sd\n"
      "    --fault <f>        single_bit | double_bit | chip_kill\n"
      "    --faults <n>       faults per trial\n"
      "    --storm            sample sites over all live allocations\n"
      "    --ladder           enable the recovery escalation ladder\n"
      "    --lineage          per-fault provenance ledgers\n"
      "    --exhaustive       exhaustive SECDED(72,64) enumeration job\n"
      "    --words <n>        exhaustive mode: data words to sweep\n"
      "    --wait             block until the job finishes\n"
      "  wait <id>            block until a job finishes, print results\n"
      "  results <id>         print a job's results line\n"
      "  resume <id> [--wait] requeue an interrupted job (checkpoint replay)\n"
      "  watch <id>           live view: trials/sec, outcome mix, workers, ETA\n"
      "  metrics [--series]   OpenMetrics exposition (--series: rings JSON)\n"
      "  shutdown             stop the daemon (current job checkpoints)\n",
      prog);
}

int fail(const std::string& error) {
  std::fprintf(stderr, "campaignctl: %s\n", error.c_str());
  return 1;
}

/// Re-serialize a parsed JsonValue through the canonical writer (numbers
/// via %.17g, which keeps the rings' doubles exact and prints integral
/// values without a decimal point).
void write_value(abftecc::obs::JsonWriter& w,
                 const abftecc::obs::JsonValue& v) {
  if (v.is_bool()) {
    w.value(v.as_bool());
  } else if (v.is_number()) {
    w.value(v.as_double());
  } else if (v.is_string()) {
    w.value(v.as_string());
  } else if (v.is_array()) {
    w.begin_array();
    for (const auto& e : v.as_array()) write_value(w, e);
    w.end_array();
  } else if (v.is_object()) {
    w.begin_object();
    for (const auto& [key, member] : v.as_object()) {
      w.key(key);
      write_value(w, member);
    }
    w.end_object();
  } else {
    w.null();
  }
}

/// One human line for a subscribe event: progress, rate, ETA, outcome
/// mix, worker liveness.
std::string render_event(const abftecc::obs::JsonValue& v) {
  char buf[256];
  const auto done = static_cast<unsigned long long>(v.u64("trials_done"));
  const auto total = static_cast<unsigned long long>(v.u64("trials_total"));
  const double pct = total == 0 ? 100.0 : 100.0 * static_cast<double>(done) /
                                              static_cast<double>(total);
  std::snprintf(buf, sizeof(buf), "%s %-8s %llu/%llu (%5.1f%%) %8.1f trials/s",
                std::string(v.str("id")).c_str(),
                std::string(v.str("state")).c_str(), done, total, pct,
                v.num("trials_per_sec"));
  std::string line = buf;
  const double eta = v.num("eta_s", -1.0);
  if (eta >= 0.0) {
    std::snprintf(buf, sizeof(buf), " eta %.0fs", eta);
    line += buf;
  }
  if (const auto* workers = v.find("workers");
      workers != nullptr && workers->is_array()) {
    std::size_t busy = 0;
    for (const auto& w : workers->as_array()) {
      const auto* c = w.find("chunk");
      if (c != nullptr && c->as_i64(-1) >= 0) ++busy;
    }
    std::snprintf(buf, sizeof(buf), " workers %zu (%zu busy, %llu died)",
                  workers->as_array().size(), busy,
                  static_cast<unsigned long long>(v.u64("workers_died")));
    line += buf;
  }
  if (const auto* outcomes = v.find("outcomes");
      outcomes != nullptr && outcomes->is_object() &&
      !outcomes->as_object().empty()) {
    line += " |";
    for (const auto& [name, count] : outcomes->as_object()) {
      if (count.as_u64() == 0) continue;
      std::snprintf(buf, sizeof(buf), " %s %llu", name.c_str(),
                    static_cast<unsigned long long>(count.as_u64()));
      line += buf;
    }
  }
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (socket_path.empty() || args.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  const std::string cmd = args[0];

  Client client;
  std::string error;
  if (!client.connect(socket_path, &error)) return fail(error);

  if (cmd == "ping") {
    const auto v = client.ping_info(&error);
    if (!v.has_value()) return fail(error);
    // One-line daemon health summary (protocol v2 ping fields).
    std::printf(
        "ok %s pid %llu up %.1fs jobs %llu (%llu queued, %llu running, "
        "%llu done, %llu failed)\n",
        std::string(v->str("version", "campaignd/?")).c_str(),
        static_cast<unsigned long long>(v->u64("pid")), v->num("uptime_s"),
        static_cast<unsigned long long>(v->u64("jobs")),
        static_cast<unsigned long long>(v->u64("queued")),
        static_cast<unsigned long long>(v->u64("running")),
        static_cast<unsigned long long>(v->u64("done")),
        static_cast<unsigned long long>(v->u64("failed")));
    return 0;
  }

  if (cmd == "metrics") {
    const bool series =
        args.size() > 1 && std::strcmp(args[1], "--series") == 0;
    const auto v = client.metrics(&error);
    if (!v.has_value()) return fail(error);
    if (series) {
      const auto* s = v->find("series");
      if (s == nullptr) return fail("metrics response carried no series");
      abftecc::obs::JsonWriter w;
      write_value(w, *s);
      std::printf("%s\n", w.take().c_str());
    } else {
      std::fputs(std::string(v->str("exposition")).c_str(), stdout);
    }
    return 0;
  }

  if (cmd == "watch") {
    if (args.size() < 2) return fail("watch: missing job id");
    const bool tty = ::isatty(STDOUT_FILENO) != 0;
    const auto final_event = client.subscribe(
        args[1],
        [&](const abftecc::obs::JsonValue& ev) {
          const std::string line = render_event(ev);
          if (tty) {
            // Redraw in place; the final newline lands below.
            std::printf("\r\x1b[2K%s", line.c_str());
            std::fflush(stdout);
          } else {
            std::printf("%s\n", line.c_str());
          }
        },
        &error);
    if (tty) std::printf("\n");
    if (!final_event.has_value()) return fail(error);
    return final_event->str("state") == "done" ? 0 : 1;
  }

  if (cmd == "status" || cmd == "jobs") {
    const auto v = cmd == "status" ? client.status(&error)
                                   : client.jobs(&error);
    if (!v.has_value()) return fail(error);
    if (cmd == "status") {
      std::printf("jobs %llu queued %llu done %llu failed %llu\n",
                  static_cast<unsigned long long>(v->u64("jobs")),
                  static_cast<unsigned long long>(v->u64("queued")),
                  static_cast<unsigned long long>(v->u64("done")),
                  static_cast<unsigned long long>(v->u64("failed")));
      if (const auto* running = v->find("running");
          running != nullptr && running->is_object()) {
        std::printf("running %s (%llu/%llu trials)\n",
                    std::string(running->str("id")).c_str(),
                    static_cast<unsigned long long>(
                        running->u64("trials_done")),
                    static_cast<unsigned long long>(
                        running->u64("trials_total")));
      }
    } else {
      for (const auto& j : v->find("jobs")->as_array()) {
        std::printf("%s  %-12s %6llu/%llu  %s%s%s\n",
                    std::string(j.str("id")).c_str(),
                    std::string(j.str("state")).c_str(),
                    static_cast<unsigned long long>(j.u64("trials_done")),
                    static_cast<unsigned long long>(j.u64("trials_total")),
                    std::string(j.str("name")).c_str(),
                    j.find("error") != nullptr ? "  # " : "",
                    std::string(j.str("error")).c_str());
      }
    }
    return 0;
  }

  auto print_results = [](const abftecc::obs::JsonValue& v) {
    std::printf("id %s state %s trials %llu/%llu\n",
                std::string(v.str("id")).c_str(),
                std::string(v.str("state")).c_str(),
                static_cast<unsigned long long>(v.u64("trials_done")),
                static_cast<unsigned long long>(v.u64("trials_total")));
    if (const auto* err = v.find("error"); err != nullptr)
      std::printf("error %s\n", err->as_string().c_str());
    std::printf("trials_path %s\n", std::string(v.str("trials_path")).c_str());
    if (const auto* lp = v.find("lineage_path"); lp != nullptr)
      std::printf("lineage_path %s\n", lp->as_string().c_str());
    return v.str("state") == "done" ? 0 : 1;
  };

  if (cmd == "submit") {
    JobSpec spec;
    bool wait_for_it = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const char* a = args[i];
      auto need_value = [&]() -> const char* {
        if (i + 1 >= args.size()) {
          std::fprintf(stderr, "campaignctl: missing value for %s\n", a);
          std::exit(2);
        }
        return args[++i];
      };
      if (std::strcmp(a, "--name") == 0) {
        spec.name = need_value();
      } else if (std::strcmp(a, "--kernel") == 0) {
        const auto k = abftecc::campaignd::kernel_from_slug(need_value());
        if (!k.has_value()) return fail("unknown kernel slug");
        spec.options.kernel = *k;
      } else if (std::strcmp(a, "--trials") == 0) {
        spec.options.trials = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--shards") == 0) {
        spec.shards =
            static_cast<unsigned>(std::strtoul(need_value(), nullptr, 10));
      } else if (std::strcmp(a, "--chunk") == 0) {
        spec.options.chunk = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--seed") == 0) {
        spec.options.campaign_seed = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--input-seed") == 0) {
        spec.options.platform.seed = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--strategy") == 0) {
        const auto s = abftecc::campaignd::strategy_from_slug(need_value());
        if (!s.has_value()) return fail("unknown strategy slug");
        spec.options.platform.strategy = *s;
      } else if (std::strcmp(a, "--fault") == 0) {
        const auto f = abftecc::campaignd::fault_from_slug(need_value());
        if (!f.has_value()) return fail("unknown fault kind");
        spec.options.fault.kind = *f;
      } else if (std::strcmp(a, "--faults") == 0) {
        spec.options.fault.count =
            static_cast<unsigned>(std::strtoul(need_value(), nullptr, 10));
      } else if (std::strcmp(a, "--storm") == 0) {
        spec.options.fault.storm_all_ranges = true;
      } else if (std::strcmp(a, "--ladder") == 0) {
        spec.options.platform.ladder = true;
      } else if (std::strcmp(a, "--lineage") == 0) {
        spec.options.lineage = true;
      } else if (std::strcmp(a, "--exhaustive") == 0) {
        spec.exhaustive = true;
      } else if (std::strcmp(a, "--words") == 0) {
        spec.exhaustive_options.words =
            std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--wait") == 0) {
        wait_for_it = true;
      } else {
        return fail(std::string("unknown submit flag '") + a + "'");
      }
    }
    const auto id = client.submit(spec, &error);
    if (!id.has_value()) return fail(error);
    std::printf("%s\n", id->c_str());
    if (wait_for_it) {
      const auto v = client.wait(*id, &error);
      if (!v.has_value()) return fail(error);
      return print_results(*v);
    }
    return 0;
  }

  if (cmd == "wait" || cmd == "results") {
    if (args.size() < 2) return fail(cmd + ": missing job id");
    const auto v = cmd == "wait" ? client.wait(args[1], &error)
                                 : client.results(args[1], &error);
    if (!v.has_value()) return fail(error);
    return print_results(*v);
  }

  if (cmd == "resume") {
    if (args.size() < 2) return fail("resume: missing job id");
    const bool wait_for_it =
        args.size() > 2 && std::strcmp(args[2], "--wait") == 0;
    if (!client.resume(args[1], &error)) return fail(error);
    std::printf("%s queued\n", args[1]);
    if (wait_for_it) {
      const auto v = client.wait(args[1], &error);
      if (!v.has_value()) return fail(error);
      return print_results(*v);
    }
    return 0;
  }

  if (cmd == "shutdown") {
    if (!client.shutdown_daemon(&error)) return fail(error);
    std::printf("stopping\n");
    return 0;
  }

  print_usage(argv[0]);
  return 2;
}
