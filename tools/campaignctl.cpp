// `campaignctl`: CLI client for the campaignd daemon (src/campaignd/).
//
//   campaignctl --socket S ping
//   campaignctl --socket S submit [job flags] [--wait]
//   campaignctl --socket S status | jobs
//   campaignctl --socket S wait <job-id>
//   campaignctl --socket S results <job-id>
//   campaignctl --socket S resume <job-id> [--wait]
//   campaignctl --socket S shutdown
//
// submit speaks the same campaign vocabulary as tools/campaign
// (--kernel/--trials/--seed/--fault/...) plus --shards for the worker
// process count and --exhaustive/--words for the exhaustive SECDED
// enumeration mode. Responses are printed as the daemon's JSON line.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaignd/client.hpp"
#include "obs/json.hpp"

namespace {

using abftecc::campaignd::Client;
using abftecc::campaignd::JobSpec;

void print_usage(const char* prog) {
  std::printf(
      "usage: %s --socket <path> <command> [args]\n"
      "commands:\n"
      "  ping                 liveness check\n"
      "  status               daemon + current job state\n"
      "  jobs                 list all jobs\n"
      "  submit [flags]       queue a job; prints the assigned id\n"
      "    --name <s>         client label (default 'campaign')\n"
      "    --kernel <k>       dgemm | cholesky | cg | hpl\n"
      "    --trials <n>       Monte-Carlo trials (default 256)\n"
      "    --shards <n>       worker processes (default: daemon's)\n"
      "    --chunk <n>        trials per work-stealing chunk (0 = auto)\n"
      "    --seed <n>         campaign seed\n"
      "    --input-seed <n>   kernel-input seed\n"
      "    --strategy <s>     no_ecc|w_ck|p_ck_no|w_sd|p_sd_no|p_ck_sd\n"
      "    --fault <f>        single_bit | double_bit | chip_kill\n"
      "    --faults <n>       faults per trial\n"
      "    --storm            sample sites over all live allocations\n"
      "    --ladder           enable the recovery escalation ladder\n"
      "    --lineage          per-fault provenance ledgers\n"
      "    --exhaustive       exhaustive SECDED(72,64) enumeration job\n"
      "    --words <n>        exhaustive mode: data words to sweep\n"
      "    --wait             block until the job finishes\n"
      "  wait <id>            block until a job finishes, print results\n"
      "  results <id>         print a job's results line\n"
      "  resume <id> [--wait] requeue an interrupted job (checkpoint replay)\n"
      "  shutdown             stop the daemon (current job checkpoints)\n",
      prog);
}

int fail(const std::string& error) {
  std::fprintf(stderr, "campaignctl: %s\n", error.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (socket_path.empty() || args.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  const std::string cmd = args[0];

  Client client;
  std::string error;
  if (!client.connect(socket_path, &error)) return fail(error);

  if (cmd == "ping") {
    if (!client.ping(&error)) return fail(error);
    std::printf("ok\n");
    return 0;
  }

  if (cmd == "status" || cmd == "jobs") {
    const auto v = cmd == "status" ? client.status(&error)
                                   : client.jobs(&error);
    if (!v.has_value()) return fail(error);
    if (cmd == "status") {
      std::printf("jobs %llu queued %llu done %llu failed %llu\n",
                  static_cast<unsigned long long>(v->u64("jobs")),
                  static_cast<unsigned long long>(v->u64("queued")),
                  static_cast<unsigned long long>(v->u64("done")),
                  static_cast<unsigned long long>(v->u64("failed")));
      if (const auto* running = v->find("running");
          running != nullptr && running->is_object()) {
        std::printf("running %s (%llu/%llu trials)\n",
                    std::string(running->str("id")).c_str(),
                    static_cast<unsigned long long>(
                        running->u64("trials_done")),
                    static_cast<unsigned long long>(
                        running->u64("trials_total")));
      }
    } else {
      for (const auto& j : v->find("jobs")->as_array()) {
        std::printf("%s  %-12s %6llu/%llu  %s%s%s\n",
                    std::string(j.str("id")).c_str(),
                    std::string(j.str("state")).c_str(),
                    static_cast<unsigned long long>(j.u64("trials_done")),
                    static_cast<unsigned long long>(j.u64("trials_total")),
                    std::string(j.str("name")).c_str(),
                    j.find("error") != nullptr ? "  # " : "",
                    std::string(j.str("error")).c_str());
      }
    }
    return 0;
  }

  auto print_results = [](const abftecc::obs::JsonValue& v) {
    std::printf("id %s state %s trials %llu/%llu\n",
                std::string(v.str("id")).c_str(),
                std::string(v.str("state")).c_str(),
                static_cast<unsigned long long>(v.u64("trials_done")),
                static_cast<unsigned long long>(v.u64("trials_total")));
    if (const auto* err = v.find("error"); err != nullptr)
      std::printf("error %s\n", err->as_string().c_str());
    std::printf("trials_path %s\n", std::string(v.str("trials_path")).c_str());
    if (const auto* lp = v.find("lineage_path"); lp != nullptr)
      std::printf("lineage_path %s\n", lp->as_string().c_str());
    return v.str("state") == "done" ? 0 : 1;
  };

  if (cmd == "submit") {
    JobSpec spec;
    bool wait_for_it = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const char* a = args[i];
      auto need_value = [&]() -> const char* {
        if (i + 1 >= args.size()) {
          std::fprintf(stderr, "campaignctl: missing value for %s\n", a);
          std::exit(2);
        }
        return args[++i];
      };
      if (std::strcmp(a, "--name") == 0) {
        spec.name = need_value();
      } else if (std::strcmp(a, "--kernel") == 0) {
        const auto k = abftecc::campaignd::kernel_from_slug(need_value());
        if (!k.has_value()) return fail("unknown kernel slug");
        spec.options.kernel = *k;
      } else if (std::strcmp(a, "--trials") == 0) {
        spec.options.trials = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--shards") == 0) {
        spec.shards =
            static_cast<unsigned>(std::strtoul(need_value(), nullptr, 10));
      } else if (std::strcmp(a, "--chunk") == 0) {
        spec.options.chunk = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--seed") == 0) {
        spec.options.campaign_seed = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--input-seed") == 0) {
        spec.options.platform.seed = std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--strategy") == 0) {
        const auto s = abftecc::campaignd::strategy_from_slug(need_value());
        if (!s.has_value()) return fail("unknown strategy slug");
        spec.options.platform.strategy = *s;
      } else if (std::strcmp(a, "--fault") == 0) {
        const auto f = abftecc::campaignd::fault_from_slug(need_value());
        if (!f.has_value()) return fail("unknown fault kind");
        spec.options.fault.kind = *f;
      } else if (std::strcmp(a, "--faults") == 0) {
        spec.options.fault.count =
            static_cast<unsigned>(std::strtoul(need_value(), nullptr, 10));
      } else if (std::strcmp(a, "--storm") == 0) {
        spec.options.fault.storm_all_ranges = true;
      } else if (std::strcmp(a, "--ladder") == 0) {
        spec.options.platform.ladder = true;
      } else if (std::strcmp(a, "--lineage") == 0) {
        spec.options.lineage = true;
      } else if (std::strcmp(a, "--exhaustive") == 0) {
        spec.exhaustive = true;
      } else if (std::strcmp(a, "--words") == 0) {
        spec.exhaustive_options.words =
            std::strtoull(need_value(), nullptr, 10);
      } else if (std::strcmp(a, "--wait") == 0) {
        wait_for_it = true;
      } else {
        return fail(std::string("unknown submit flag '") + a + "'");
      }
    }
    const auto id = client.submit(spec, &error);
    if (!id.has_value()) return fail(error);
    std::printf("%s\n", id->c_str());
    if (wait_for_it) {
      const auto v = client.wait(*id, &error);
      if (!v.has_value()) return fail(error);
      return print_results(*v);
    }
    return 0;
  }

  if (cmd == "wait" || cmd == "results") {
    if (args.size() < 2) return fail(cmd + ": missing job id");
    const auto v = cmd == "wait" ? client.wait(args[1], &error)
                                 : client.results(args[1], &error);
    if (!v.has_value()) return fail(error);
    return print_results(*v);
  }

  if (cmd == "resume") {
    if (args.size() < 2) return fail("resume: missing job id");
    const bool wait_for_it =
        args.size() > 2 && std::strcmp(args[2], "--wait") == 0;
    if (!client.resume(args[1], &error)) return fail(error);
    std::printf("%s queued\n", args[1]);
    if (wait_for_it) {
      const auto v = client.wait(args[1], &error);
      if (!v.has_value()) return fail(error);
      return print_results(*v);
    }
    return 0;
  }

  if (cmd == "shutdown") {
    if (!client.shutdown_daemon(&error)) return fail(error);
    std::printf("stopping\n");
    return 0;
  }

  print_usage(argv[0]);
  return 2;
}
