#!/usr/bin/env python3
"""Perf-regression gate over the schema-v1 bench reports.

Runs a fixed suite of fast, deterministic bench binaries with --json,
distills each report to its stable performance surface (simulated cycles,
IPC, simulated seconds, energy, FT counters, derived scalars -- never host
wall-clock timers), and compares the result against the checked-in
baseline `BENCH_pr5.json` at the repo root with per-metric tolerances.

The tolerances absorb the one-cache-miss cycle wobble that host heap
layout can introduce (see TrialOutcome::sim_seconds in campaign.hpp);
anything beyond them -- in either direction -- fails the gate so the
baseline is only ever moved intentionally.

Usage:
    python3 tools/benchgate.py [--build-dir build]
    python3 tools/benchgate.py --update       # rewrite the baseline

The fresh snapshot is always written to <build-dir>/BENCH_pr5.json (CI
uploads it as an artifact); --update additionally installs it as the
repo-root baseline instead of comparing.

Exit status: 0 on success (or after --update), 1 if any metric moved
beyond tolerance or a metric appeared/disappeared, 2 on usage/run errors.
"""
import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_pr5.json")

# The gated suite: every entry must finish in seconds and produce a
# schema_version-1 --json report. fig3 exercises the phase profiler's
# attribution (and exits nonzero if the residual check fails), table4 the
# full four-kernel simulated platform, fault_model_thresholds the
# analytical fault model.
BENCHES = [
    "fig3_overhead_breakdown",
    "table4_access_classification",
    "fault_model_thresholds",
]

# The native fused-FT gate: ftgemm_native measures the fused FT-DGEMM
# against the unprotected native GEMM in wall-clock, so its numbers never
# enter the baseline snapshot (they move with the host); instead its
# overhead ratio at n=2048 is gated against an absolute ceiling. Hosts
# whose dispatch falls back to the scalar kernel skip the gate with a note
# (the ratio is meaningless as a SIMD-overhead claim there).
NATIVE_BENCH = "ftgemm_native"
NATIVE_SIMD_KERNEL = "avx2-fma"
FUSED_OVERHEAD_LIMIT = 0.10
FUSED_OVERHEAD_SCALAR = "overhead_ratio_2048"

# Relative tolerance per metric class; metrics not listed use DEFAULT_RTOL.
# A metric passes when |cand - base| <= max(rtol * |base|, ATOL).
DEFAULT_RTOL = 0.02
ATOL = 1e-9
RTOL = {
    # Instruction counts come from the tap stream, not timing: exact up to
    # floating-point control flow, so hold them much tighter than cycles.
    "instructions": 1e-3,
}

RUN_FIELDS = [
    ("cycles", lambda r: r["cycles"]),
    ("instructions", lambda r: r["instructions"]),
    ("ipc", lambda r: r["ipc"]),
    ("seconds", lambda r: r["seconds"]),
    ("memory_pj", lambda r: r["energy"]["memory_pj"]),
    ("system_pj", lambda r: r["energy"]["system_pj"]),
    ("errors_detected", lambda r: r["ft"]["errors_detected"]),
    ("errors_corrected", lambda r: r["ft"]["errors_corrected"]),
]


def die(msg):
    print(msg, file=sys.stderr)
    sys.exit(2)


def run_bench(build_dir, name, workdir):
    exe = os.path.join(build_dir, "bench", name)
    if not os.path.exists(exe):
        die(f"error: bench binary not found: {exe} (build the repo first)")
    out = os.path.join(workdir, f"benchgate_{name}.json")
    proc = subprocess.run([exe, "--json", out], stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        die(f"error: {name} exited with status {proc.returncode}")
    try:
        with open(out) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"error: {name}: cannot read report: {e}")
    if doc.get("schema_version") != 1:
        die(f"error: {name}: unsupported schema_version "
            f"{doc.get('schema_version')!r}")
    return doc


def distill(doc):
    """Reduce a bench report to its deterministic performance surface."""
    runs = {}
    for r in doc.get("runs", []):
        row = {}
        for field, get in RUN_FIELDS:
            try:
                row[field] = get(r)
            except KeyError:
                pass
        runs[r["label"]] = row
    return {
        "experiment": doc.get("experiment"),
        "config": doc.get("config"),
        "runs": runs,
        "scalars": doc.get("scalars", {}),
    }


def metric_rows(bench):
    """Flatten one distilled bench into (metric_path, value) pairs."""
    for label, row in sorted(bench["runs"].items()):
        for field, v in sorted(row.items()):
            yield f"runs[{label}].{field}", field, v
    for name, v in sorted(bench["scalars"].items()):
        yield f"scalars.{name}", name.rsplit(".", 1)[-1], v


def compare(baseline, candidate):
    flagged = []
    names = sorted(set(baseline["benches"]) | set(candidate["benches"]))
    for name in names:
        if name not in baseline["benches"]:
            flagged.append((name, "<bench>", None, None, "only in candidate"))
            continue
        if name not in candidate["benches"]:
            flagged.append((name, "<bench>", None, None, "only in baseline"))
            continue
        base = dict((p, (f, v)) for p, f, v in
                    metric_rows(baseline["benches"][name]))
        cand = dict((p, (f, v)) for p, f, v in
                    metric_rows(candidate["benches"][name]))
        for path in sorted(set(base) | set(cand)):
            if path not in cand:
                flagged.append((name, path, base[path][1], None,
                                "missing from candidate"))
                continue
            if path not in base:
                flagged.append((name, path, None, cand[path][1],
                                "not in baseline"))
                continue
            (field, vb), (_, vc) = base[path], cand[path]
            rtol = RTOL.get(field, DEFAULT_RTOL)
            if abs(vc - vb) > max(rtol * abs(vb), ATOL):
                rel = (vc - vb) / abs(vb) if vb else float("inf")
                flagged.append((name, path, vb, vc,
                                f"{rel:+.2%} (tol {rtol:.1%})"))
    return flagged


def gate_native_overhead(build_dir):
    """Run ftgemm_native and enforce the fused-FT overhead ceiling.

    Returns True on pass (or graceful skip), False on failure.
    """
    doc = run_bench(build_dir, NATIVE_BENCH, build_dir)
    simd = doc.get("notes", {}).get("simd_kernel")
    ratio = doc.get("scalars", {}).get(FUSED_OVERHEAD_SCALAR)
    if simd != NATIVE_SIMD_KERNEL:
        print(f"benchgate: native gate SKIPPED -- host dispatches "
              f"'{simd}', not '{NATIVE_SIMD_KERNEL}' "
              f"(measured {FUSED_OVERHEAD_SCALAR}="
              f"{ratio if ratio is not None else 'n/a'})")
        return True
    if not isinstance(ratio, (int, float)):
        print(f"benchgate: FAIL -- {NATIVE_BENCH} report carries no "
              f"numeric {FUSED_OVERHEAD_SCALAR}", file=sys.stderr)
        return False
    verdict = ratio < FUSED_OVERHEAD_LIMIT
    print(f"benchgate: native fused-FT overhead at 2048: {ratio:+.2%} "
          f"(limit {FUSED_OVERHEAD_LIMIT:.0%}) -- "
          f"{'OK' if verdict else 'FAIL'}")
    return verdict


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--baseline", default=BASELINE,
                    help="checked-in snapshot to gate against")
    ap.add_argument("--update", action="store_true",
                    help="write the fresh snapshot to the baseline path "
                         "instead of comparing")
    ap.add_argument("--skip-native", action="store_true",
                    help="skip the wall-clock ftgemm_native overhead gate")
    args = ap.parse_args()

    snapshot = {
        "schema_version": 1,
        "suite": "pr5-perf-gate",
        "benches": {name: distill(run_bench(args.build_dir, name,
                                            args.build_dir))
                    for name in BENCHES},
    }
    fresh_path = os.path.join(args.build_dir, "BENCH_pr5.json")
    with open(fresh_path, "w") as f:
        json.dump(snapshot, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"benchgate: wrote snapshot {fresh_path} "
          f"({len(BENCHES)} bench reports)")

    native_ok = True if args.skip_native else gate_native_overhead(
        args.build_dir)

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(snapshot, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"benchgate: baseline updated: {args.baseline}")
        return 0 if native_ok else 1

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"error: cannot read baseline {args.baseline}: {e} "
            f"(seed it with --update)")
    if baseline.get("schema_version") != 1:
        die(f"error: {args.baseline}: unsupported schema_version")

    flagged = compare(baseline, snapshot)
    if not native_ok:
        print("benchgate: native fused-FT overhead gate FAILED")
    if flagged:
        print(f"\n{'bench':<28} {'metric':<44} {'baseline':>14} "
              f"{'candidate':>14}  delta")
        for name, path, vb, vc, why in flagged:
            fb = f"{vb:.6g}" if isinstance(vb, (int, float)) else "-"
            fc = f"{vc:.6g}" if isinstance(vc, (int, float)) else "-"
            print(f"{name:<28} {path:<44} {fb:>14} {fc:>14}  {why}")
        print(f"\nbenchgate: {len(flagged)} metric(s) beyond tolerance vs "
              f"{args.baseline}")
        print("benchgate: if the change is intentional, refresh the "
              "baseline with: python3 tools/benchgate.py --update")
        return 1
    if not native_ok:
        return 1
    total = sum(len(list(metric_rows(b)))
                for b in snapshot["benches"].values())
    print(f"benchgate: OK -- {total} metrics within tolerance of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
