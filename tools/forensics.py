#!/usr/bin/env python3
"""Forensics over a campaign fault-provenance ledger (campaign --lineage).

The ledger is JSON lines with two record shapes per trial:
  * fault records ("fault" key): one per injected fault, carrying the
    fault's identity (kind, phys, bit), its hardware resolution, the
    sealed terminal outcome, and its inlined stage-event chain; and
  * trial records ("faults" key, no "fault"): the trial-scope summary
    (terminal label, fault count, OS log drops, recovery-tier events).

Event "cycle" fields are simulated-cycle stamps and are host-heap-layout
sensitive (see TrialOutcome::sim_seconds); every other field is
deterministic for a fixed campaign seed. Subcommands that print cycles
(timeline without --no-cycles, slowest) are therefore reproducible only
within one binary invocation; `canon` strips cycles so two runs of the
same seed can be byte-compared (the CI determinism gate).

Subcommands:
  timeline   per-fault stage timelines (--trial/--fault to filter)
  funnel     stage-transition counts (Sankey-style table)
  slowest    longest inject -> last-stage chains by cycle span
  orphans    fault records without a hardware resolution (exit 1 if any)
  reconcile  cross-check ledger terminal tallies against a campaign
             --json report (exit 1 on any mismatch)
  canon      cycle-stripped canonical ledger lines on stdout
  rates      bin fault injections (and per-terminal tallies) over the
             simulated-cycle axis into timeseries-v1 JSON -- the same
             shape the live TelemetrySampler emits, so downstream
             consumers read post-hoc lineage rates and live telemetry
             alike (cycle-derived, hence heap-layout sensitive)

Every subcommand accepts one or more ledger files and merges them --
the shard-per-file layout campaignd's workers stream -- after checking
that the shards partition the trial space: a (kernel, trial, fault)
fault key or (kernel, trial) trial key appearing in two files is a
hard error. Merged records are re-sorted by key so the output is
independent of the order the shard files are listed in.

Exit status: 0 on success, 1 when the subcommand found a violation
(orphans present, reconciliation mismatch), 2 on usage errors or
overlapping shard ledgers.
"""
import argparse
import json
import struct
import sys
from collections import Counter, defaultdict

KERNEL_SLUGS = {
    "FT-DGEMM": "dgemm",
    "FT-Cholesky": "cholesky",
    "FT-CG": "cg",
    "FT-HPL": "hpl",
}

OUTCOMES = [
    "corrected",
    "detected_uncorrected",
    "silent_data_corruption",
    "benign_masked",
    "recovered_by_recompute",
    "recovered_by_rollback",
    "unrecoverable",
]


def die(msg):
    print(msg, file=sys.stderr)
    sys.exit(2)


def load(path):
    """Parse the ledger into (fault_records, trial_records)."""
    faults, trials = [], []
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    die(f"error: {path}:{lineno}: bad JSON: {e}")
                (faults if "fault" in rec else trials).append(rec)
    except OSError as e:
        die(f"error: cannot read ledger: {e}")
    return faults, trials


def slug_of(kernel):
    return KERNEL_SLUGS.get(kernel, kernel.lower())


def fault_key(rec):
    return (rec["kernel"], rec["trial"], rec["fault"])


def load_many(paths):
    """Merge shard ledgers into one (fault_records, trial_records).

    Shards must partition the trial space: the same fault or trial key
    in two files means double-counted trials, so it is rejected rather
    than silently merged. Records are re-sorted by key so the merge is
    independent of the file listing order.
    """
    faults, trials = [], []
    fault_seen, trial_seen = {}, {}
    for path in paths:
        f, t = load(path)
        for rec in f:
            key = fault_key(rec)
            if key in fault_seen:
                die(f"error: {path}: fault record {key} already present in "
                    f"{fault_seen[key]} -- shard ledgers must partition the "
                    "trial space")
            fault_seen[key] = path
        for rec in t:
            key = (rec["kernel"], rec["trial"])
            if key in trial_seen:
                die(f"error: {path}: trial record {key} already present in "
                    f"{trial_seen[key]} -- shard ledgers must partition the "
                    "trial space")
            trial_seen[key] = path
        faults += f
        trials += t
    faults.sort(key=fault_key)
    trials.sort(key=lambda rec: (rec["kernel"], rec["trial"]))
    return faults, trials


def stage_chain(rec):
    return [e["stage"] for e in rec.get("events", [])]


def residual_of(event):
    """abft_corrected events carry the checksum residual as IEEE bits."""
    return struct.unpack("<d", struct.pack("<Q", event.get("a0", 0)))[0]


def cmd_timeline(args):
    faults, trials = load_many(args.ledgers)
    shown = 0
    by_trial = defaultdict(list)
    for t in trials:
        by_trial[(t["kernel"], t["trial"])] = t.get("events", [])
    for rec in faults:
        if args.trial is not None and rec["trial"] != args.trial:
            continue
        if args.fault is not None and rec["fault"] != args.fault:
            continue
        if shown >= args.limit:
            print(f"... (limit {args.limit}; narrow with --trial/--fault)")
            break
        shown += 1
        print(f"{rec['kernel']} trial {rec['trial']} fault #{rec['fault']}: "
              f"{rec['kind']} at phys {rec['phys']} bit {rec['bit']} -> "
              f"resolution {rec['resolution']}, terminal {rec['terminal']}")
        events = list(rec.get("events", []))
        # Trial-scope events (recovery tiers, seal) give chain context.
        events += by_trial.get((rec["kernel"], rec["trial"]), [])
        for e in events:
            cyc = "-" if args.no_cycles else str(e.get("cycle", 0))
            extra = ""
            if e["stage"] == "abft_located":
                extra = f"  structure={e['a0']} element={e['a1']}"
            elif e["stage"] == "abft_corrected":
                extra = f"  residual={residual_of(e):.6g}"
            elif e["stage"] in ("recovery_recompute", "recovery_rollback"):
                extra = f"  a0={e['a0']}"
            tag = f"  [{e['tag']}]" if e.get("tag") else ""
            print(f"    {cyc:>12}  {e['stage']:<28}{extra}{tag}")
    if shown == 0:
        print("no matching fault records")
    return 0


def cmd_funnel(args):
    faults, _ = load_many(args.ledgers)
    transitions = Counter()
    for rec in faults:
        chain = stage_chain(rec) + [f"terminal:{rec['terminal']}"]
        for a, b in zip(chain, chain[1:]):
            transitions[(a, b)] += 1
    if not transitions:
        print("empty ledger")
        return 0
    width = max(len(a) for a, _ in transitions) + 2
    print(f"{'from':<{width}} {'to':<34} {'faults':>8}")
    for (a, b), n in sorted(transitions.items(),
                            key=lambda kv: (-kv[1], kv[0])):
        print(f"{a:<{width}} {b:<34} {n:>8}")
    total = len(faults)
    print(f"\n{total} fault record(s), "
          f"{sum(transitions.values())} stage transition(s)")
    return 0


def cmd_slowest(args):
    faults, _ = load_many(args.ledgers)
    spans = []
    for rec in faults:
        cycles = [e.get("cycle", 0) for e in rec.get("events", [])]
        if len(cycles) < 2:
            continue
        spans.append((max(cycles) - min(cycles), rec))
    spans.sort(key=lambda s: (-s[0], fault_key(s[1])))
    if not spans:
        print("no multi-stage chains in ledger")
        return 0
    print(f"{'cycles':>12}  {'kernel':<12} {'trial':>5} {'fault':>5}  chain")
    for span, rec in spans[:args.limit]:
        chain = " -> ".join(stage_chain(rec))
        print(f"{span:>12}  {rec['kernel']:<12} {rec['trial']:>5} "
              f"{rec['fault']:>5}  {chain} => {rec['terminal']}")
    return 0


def cmd_orphans(args):
    faults, trials = load_many(args.ledgers)
    dropped_by_trial = {(t["kernel"], t["trial"]): t.get("exposed_dropped", 0)
                        for t in trials}
    bad = 0
    for rec in faults:
        problems = []
        if rec["resolution"] == "none" or rec["resolution_count"] == 0:
            problems.append("no hardware resolution (orphan)")
        elif rec["resolution_count"] > 1:
            problems.append(f"resolved {rec['resolution_count']} times "
                            "(double-count)")
        if not rec.get("terminal"):
            problems.append("no terminal outcome (trial not sealed)")
        if not problems:
            continue
        bad += 1
        note = ""
        if dropped_by_trial.get((rec["kernel"], rec["trial"]), 0) > 0:
            note = ("  [trial had OS log drops: likely dropped under "
                    "storm, not lost]")
        print(f"{rec['kernel']} trial {rec['trial']} fault #{rec['fault']} "
              f"({rec['kind']} at phys {rec['phys']}): "
              f"{'; '.join(problems)}{note}")
    if bad:
        print(f"\n{bad} problematic fault record(s)")
        return 1
    print(f"no orphans: {len(faults)} fault record(s) all resolved exactly "
          "once and sealed")
    return 0


def cmd_reconcile(args):
    faults, trials = load_many(args.ledgers)
    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"error: cannot read report: {e}")
    scalars = report.get("scalars", {})
    mismatches = 0

    def check(label, ledger_count, report_count):
        nonlocal mismatches
        ok = ledger_count == report_count
        if not ok or args.verbose:
            state = "OK" if ok else "MISMATCH"
            print(f"  {label:<44} ledger {ledger_count:>7}  "
                  f"report {report_count:>7}  {state}")
        if not ok:
            mismatches += 1

    terminals = Counter()
    for t in trials:
        terminals[(slug_of(t["kernel"]), t["terminal"])] += 1
    trial_totals = Counter(slug_of(t["kernel"]) for t in trials)
    fault_totals = Counter(slug_of(f["kernel"]) for f in faults)

    for slug in sorted(trial_totals):
        print(f"{slug}:")
        n = scalars.get(f"{slug}.trials")
        if n is None:
            die(f"error: report has no '{slug}.trials' scalar "
                "(not a campaign --json report?)")
        check("trials", trial_totals[slug], int(round(n)))
        for outcome in OUTCOMES:
            frac = scalars.get(f"{slug}.{outcome}_fraction")
            if frac is None:
                continue
            check(f"terminal '{outcome}'", terminals[(slug, outcome)],
                  int(round(frac * n)))
        # Cross-check the report's own lineage summary when present.
        lineage = report.get("lineage", {}).get(slug)
        if lineage is not None:
            check("fault records", fault_totals[slug], lineage["faults"])
            check("orphans",
                  sum(1 for f in faults
                      if slug_of(f["kernel"]) == slug
                      and f["resolution_count"] == 0),
                  lineage["orphans"])
    if mismatches:
        print(f"\nreconcile: FAILED -- {mismatches} mismatch(es) between "
              "ledger and report")
        return 1
    print(f"\nreconcile: OK -- {len(faults)} fault record(s) across "
          f"{len(trials)} trial(s) partition exactly into the report's "
          "outcome taxonomy")
    return 0


def cmd_canon(args):
    """Determinism surface: ledger lines minus the cycle stamps."""
    faults, trials = load_many(args.ledgers)
    out = sys.stdout

    def strip(rec):
        rec = dict(rec)
        rec["events"] = [{k: v for k, v in e.items() if k != "cycle"}
                         for e in rec.get("events", [])]
        return rec

    for rec in faults + trials:
        json.dump(strip(rec), out, sort_keys=True,
                  separators=(",", ":"))
        out.write("\n")
    return 0


def cmd_rates(args):
    """Per-interval fault/outcome rates in the TelemetrySampler's
    timeseries-v1 JSON shape: the cycle axis [0, max] is split into
    --bins equal intervals; each series point is [interval_start_cycle,
    events_in_interval] -- counter semantics (per-sample deltas), like
    the live rings."""
    faults, _ = load_many(args.ledgers)
    stamps = []  # (first_event_cycle, terminal)
    for rec in faults:
        cycles = [e.get("cycle", 0) for e in rec.get("events", [])]
        if not cycles:
            continue
        stamps.append((min(cycles), rec.get("terminal", "")))
    bins = max(1, args.bins)
    hi = max((c for c, _ in stamps), default=0)
    width = max(1, -(-(hi + 1) // bins))  # ceil so the max stamp fits

    def binned(predicate):
        counts = [0] * bins
        for cycle, terminal in stamps:
            if predicate(terminal):
                counts[min(cycle // width, bins - 1)] += 1
        return counts

    series = [("fault.injected", binned(lambda t: True))]
    for outcome in OUTCOMES:
        counts = binned(lambda t, o=outcome: t == o)
        if any(counts):
            series.append((f"fault.terminal.{outcome}", counts))

    doc = {
        "schema": "timeseries-v1",
        "samples": bins,
        "series": [
            {
                "name": name,
                "kind": "counter",
                "dropped": 0,
                "points": [[float(i * width), float(c)]
                           for i, c in enumerate(counts)],
            }
            for name, counts in series
        ],
    }
    json.dump(doc, sys.stdout, separators=(",", ":"))
    sys.stdout.write("\n")
    if not stamps:
        print("rates: ledger has no stamped fault events", file=sys.stderr)
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("timeline", help="per-fault stage timelines")
    p.add_argument("ledgers", nargs="+", metavar="ledger")
    p.add_argument("--trial", type=int)
    p.add_argument("--fault", type=int)
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--no-cycles", action="store_true",
                   help="suppress cycle stamps (deterministic output)")
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("funnel", help="stage-transition counts")
    p.add_argument("ledgers", nargs="+", metavar="ledger")
    p.set_defaults(fn=cmd_funnel)

    p = sub.add_parser("slowest", help="longest chains by cycle span")
    p.add_argument("ledgers", nargs="+", metavar="ledger")
    p.add_argument("-n", "--limit", type=int, default=10)
    p.set_defaults(fn=cmd_slowest)

    p = sub.add_parser("orphans", help="unresolved/double-counted records")
    p.add_argument("ledgers", nargs="+", metavar="ledger")
    p.set_defaults(fn=cmd_orphans)

    p = sub.add_parser("reconcile",
                       help="cross-check ledger vs campaign --json report")
    p.add_argument("ledgers", nargs="+", metavar="ledger")
    p.add_argument("--report", required=True)
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every check, not just mismatches")
    p.set_defaults(fn=cmd_reconcile)

    p = sub.add_parser("canon", help="cycle-stripped canonical lines")
    p.add_argument("ledgers", nargs="+", metavar="ledger")
    p.set_defaults(fn=cmd_canon)

    p = sub.add_parser("rates",
                       help="per-interval rates as timeseries-v1 JSON")
    p.add_argument("ledgers", nargs="+", metavar="ledger")
    p.add_argument("--bins", type=int, default=20,
                   help="intervals over the cycle axis (default 20)")
    p.set_defaults(fn=cmd_rates)

    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    # Die quietly when piped into `head` and the reader goes away.
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.stderr.close()
        sys.exit(0)
