// `campaignd`: the campaign-as-a-service daemon (see src/campaignd/).
// Binds a Unix-domain socket, accepts newline-delimited JSON job
// requests (submit/status/wait/results/resume/shutdown -- drive it with
// tools/campaignctl), and executes each job as a sharded multi-process
// sweep with Fletcher-64-verified progress checkpoints under its state
// directory. Kill it with SIGKILL mid-job and restart: the job reports
// interrupted and `campaignctl resume` re-runs it byte-identically from
// the surviving chunks.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaignd/server.hpp"

namespace {

abftecc::campaignd::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void print_usage(const char* prog) {
  std::printf(
      "usage: %s --socket <path> --state-dir <dir> [options]\n"
      "  --socket <path>     Unix-domain socket to listen on (required)\n"
      "  --state-dir <dir>   job spool + checkpoints (required); a daemon\n"
      "                      restarted over the same directory recovers its\n"
      "                      job table and offers interrupted jobs for\n"
      "                      resume\n"
      "  --shards <n>        default worker processes per job (default 2)\n"
      "SIGTERM/SIGINT stop gracefully after the current chunk; checkpoints\n"
      "make even SIGKILL safe.\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  abftecc::campaignd::ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--socket") == 0) {
      opt.socket_path = need_value();
    } else if (std::strcmp(a, "--state-dir") == 0) {
      opt.state_dir = need_value();
    } else if (std::strcmp(a, "--shards") == 0) {
      opt.default_shards = static_cast<unsigned>(
          std::strtoul(need_value(), nullptr, 10));
    } else if (std::strcmp(a, "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a);
      return 2;
    }
  }
  if (opt.socket_path.empty() || opt.state_dir.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  if (opt.default_shards == 0) opt.default_shards = 2;

  abftecc::campaignd::Server server(opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("campaignd: listening on %s (state %s, default shards %u)\n",
              opt.socket_path.c_str(), opt.state_dir.c_str(),
              opt.default_shards);
  std::fflush(stdout);
  const int rc = server.run();
  std::printf("campaignd: stopped\n");
  return rc;
}
