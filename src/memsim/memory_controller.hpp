// Memory controller with ABFT-directed flexible ECC (Section 3.1).
//
// Holds the paper's two register files:
//  * ECC registers -- 16 registers describing up to 8 physical address
//    ranges with a relaxed scheme; everything else uses the default
//    (strong) scheme.
//  * Error registers -- n = 6 slots recording fault sites
//    (chip/row/column) of ECC-uncorrectable errors; both are
//    "memory-mapped" in the sense that the OS layer reads them directly.
// Uncorrectable errors raise an interrupt delivered to a registered
// handler (the OS layer's ECC-error interrupt, Section 3.2.1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/units.hpp"
#include "ecc/scheme.hpp"
#include "memsim/address_map.hpp"

namespace abftecc::memsim {

/// One ECC register pair: [start, end) physical range and its scheme.
struct EccRange {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  ///< exclusive
  ecc::Scheme scheme = ecc::Scheme::kNone;
};

/// One error-register entry.
struct ErrorRecord {
  FaultSite site;
  std::uint64_t phys_addr = 0;
  Cycles cycle = 0;
  ecc::Scheme scheme = ecc::Scheme::kNone;
  bool valid = false;
};

class MemoryController {
 public:
  /// 16 ECC registers = 8 (start,end+scheme) ranges (Section 3.2.1).
  static constexpr unsigned kMaxRanges = 8;
  /// n = 6 error registers, chosen so >= n/2 error events fit within one
  /// ABFT error-examination period (Section 3.1).
  static constexpr unsigned kErrorRegisters = 6;

  using InterruptHandler = std::function<void(const ErrorRecord&)>;

  explicit MemoryController(ecc::Scheme default_scheme = ecc::Scheme::kChipkill)
      : default_scheme_(default_scheme) {}

  // --- ECC registers ------------------------------------------------------

  /// Program a relaxed-ECC range. Returns false when all 8 register pairs
  /// are in use (the caller may coalesce ranges, Section 3.2.1).
  bool set_range(const EccRange& range);

  /// Drop the range starting at `start` (free_ecc path). Returns false if
  /// no such range is programmed.
  bool clear_range(std::uint64_t start);

  /// Re-program the scheme of an existing range (assign_ecc path).
  bool reassign_range(std::uint64_t start, ecc::Scheme scheme);

  void set_default_scheme(ecc::Scheme s) { default_scheme_ = s; }
  [[nodiscard]] ecc::Scheme default_scheme() const { return default_scheme_; }

  /// Scheme enforced for a physical address: the matching range's, or the
  /// default. Checked by the MC on every request from the last-level cache.
  [[nodiscard]] ecc::Scheme scheme_for(std::uint64_t phys_addr) const;

  [[nodiscard]] unsigned ranges_in_use() const;
  [[nodiscard]] const std::array<std::optional<EccRange>, kMaxRanges>& ranges()
      const {
    return ranges_;
  }

  // --- Error registers & interrupts ---------------------------------------

  void set_interrupt_handler(InterruptHandler h) { handler_ = std::move(h); }

  /// Record a detected-uncorrectable error and raise the interrupt. When all
  /// n registers are full the oldest entry is overwritten (and counted as
  /// dropped -- the scenario the register count n is sized to avoid).
  void report_uncorrectable(const FaultSite& site, std::uint64_t phys_addr,
                            Cycles cycle, ecc::Scheme scheme);

  /// In-controller correction bookkeeping (Case 1 cost accounting).
  void note_corrected(ecc::Scheme scheme);

  [[nodiscard]] const std::array<ErrorRecord, kErrorRegisters>& error_registers()
      const {
    return errors_;
  }
  void clear_error_registers();

  [[nodiscard]] std::uint64_t corrected_count() const { return corrected_; }
  [[nodiscard]] std::uint64_t uncorrectable_count() const {
    return uncorrectable_;
  }
  [[nodiscard]] std::uint64_t dropped_error_records() const { return dropped_; }
  [[nodiscard]] Picojoules correction_energy_pj() const {
    return correction_energy_;
  }

 private:
  ecc::Scheme default_scheme_;
  std::array<std::optional<EccRange>, kMaxRanges> ranges_{};
  std::array<ErrorRecord, kErrorRegisters> errors_{};
  unsigned next_error_slot_ = 0;
  std::uint64_t corrected_ = 0;
  std::uint64_t uncorrectable_ = 0;
  std::uint64_t dropped_ = 0;
  Picojoules correction_energy_ = 0.0;
  InterruptHandler handler_;
};

}  // namespace abftecc::memsim
