#include "memsim/system.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace abftecc::memsim {

MemorySystem::MemorySystem(const SystemConfig& cfg, ecc::Scheme default_scheme,
                           Hooks hooks)
    : cfg_(cfg),
      map_(cfg.org, cfg.l2.line_bytes),
      l1_(cfg.l1),
      l2_(cfg.l2),
      dram_(cfg, map_),
      mc_(default_scheme),
      miss_stall_hist_(obs::default_registry().histogram(
          "memsim.demand_miss_stall_cycles",
          obs::Histogram::exponential_bounds(16.0, 2.0, 10))),
      queue_delay_hist_(obs::default_registry().histogram(
          "memsim.queue_delay_dram_cycles",
          obs::Histogram::exponential_bounds(1.0, 2.0, 10))),
      dram_access_none_(
          obs::default_registry().counter("memsim.dram_access.none")),
      dram_access_secded_(
          obs::default_registry().counter("memsim.dram_access.secded")),
      dram_access_chipkill_(
          obs::default_registry().counter("memsim.dram_access.chipkill")),
      hooks_(std::move(hooks)) {}

AccessShape MemorySystem::shape_at(std::uint64_t phys, ecc::Scheme s) const {
  if (hooks_.shape_override) {
    if (auto shape = hooks_.shape_override(phys, s)) return *shape;
  }
  return shape_for(s);
}

void MemorySystem::classify_energy(std::uint64_t line_addr, Picojoules pj) {
  stats_.dram_dynamic_pj += pj;
  if (hooks_.region_classifier && hooks_.region_classifier(line_addr))
    stats_.dram_dynamic_abft_pj += pj;
  else
    stats_.dram_dynamic_other_pj += pj;
}

void MemorySystem::dram_request(std::uint64_t line_addr, bool is_write,
                                bool blocking) {
  const ecc::Scheme scheme = mc_.scheme_for(line_addr);
  const AccessShape shape = shape_at(line_addr, scheme);
  const DramAddress da = map_.decompose(line_addr);
  const Cycles now = now_dram();
  const DramAccessResult res = dram_.issue(da, is_write, shape, now);
  classify_energy(line_addr, res.energy_pj);

  switch (scheme) {
    case ecc::Scheme::kNone: dram_access_none_.add(); break;
    case ecc::Scheme::kSecded: dram_access_secded_.add(); break;
    case ecc::Scheme::kChipkill: dram_access_chipkill_.add(); break;
  }
  // Queueing delay: how long the request waited for bank/bus resources
  // (0 on an idle channel).
  queue_delay_hist_.observe(
      res.start > now ? static_cast<double>(res.start - now) : 0.0);

  if (is_write) ++stats_.writebacks;
  // Fills apply pending faults through the decoder; writebacks clear them.
  if (hooks_.fill_hook) hooks_.fill_hook(line_addr, scheme, is_write);

  if (blocking) {
    const double stall_dram = static_cast<double>(res.completion - now);
    const std::uint64_t stall_cpu =
        static_cast<std::uint64_t>(stall_dram *
                                   cfg_.core.cpu_per_dram_cycle()) +
        kMcOverheadCpuCycles;
    miss_stall_hist_.observe(static_cast<double>(stall_cpu));
    obs::default_tracer().instant(obs::EventKind::kDemandMiss,
                                  stats_.cpu_cycles, line_addr, stall_cpu);
    stats_.cpu_cycles += stall_cpu;
    stats_.stall_cycles += stall_cpu;
  }
}

void MemorySystem::access(std::uint64_t phys_addr, AccessKind kind) {
  ++stats_.mem_refs;
  // One memory instruction plus its addressing/FP companion: the kernels
  // under study perform roughly one arithmetic op per operand touched.
  stats_.instructions += 2;
  stats_.cpu_cycles += 2;

  const bool is_write = kind != AccessKind::kRead;
  const std::uint64_t line =
      phys_addr / cfg_.l1.line_bytes * cfg_.l1.line_bytes;

  const CacheAccess a1 = l1_.access(line, is_write);
  if (a1.hit) return;

  stats_.cpu_cycles += cfg_.l2_latency_cycles;

  // L1 victim writeback into L2 (write-back L1).
  if (a1.evicted && a1.evicted_dirty) {
    const CacheAccess wb = l2_.access(a1.evicted_line_addr, true);
    if (!wb.hit) {
      // Writeback miss: allocate in L2, posted fill from DRAM.
      dram_request(a1.evicted_line_addr, false, /*blocking=*/false);
      if (wb.evicted && wb.evicted_dirty)
        dram_request(wb.evicted_line_addr, true, /*blocking=*/false);
    }
  }

  // Demand access reaches L2 as a read fill; dirtiness lives in L1 until
  // the line is written back.
  const CacheAccess a2 = l2_.access(line, false);
  if (a2.hit) return;

  ++stats_.demand_misses;
  if (hooks_.region_classifier && hooks_.region_classifier(line))
    ++stats_.demand_misses_abft;
  else
    ++stats_.demand_misses_other;

  if (a2.evicted && a2.evicted_dirty)
    dram_request(a2.evicted_line_addr, true, /*blocking=*/false);

  dram_request(line, false, /*blocking=*/true);
}

Picojoules MemorySystem::processor_energy_pj() const {
  const double ipc = std::min(stats_.ipc(), cfg_.core.peak_ipc);
  const double watts =
      cfg_.core.idle_socket_watts +
      (cfg_.core.max_socket_watts - cfg_.core.idle_socket_watts) *
          (ipc / cfg_.core.peak_ipc);
  return watts * elapsed_seconds() * kPicojoulesPerJoule;
}

void MemorySystem::reset_stats() {
  stats_ = {};
  l1_.reset_stats();
  l2_.reset_stats();
  dram_.reset_stats();
  // The obs registry aggregates the same quantities (miss histograms,
  // per-scheme access counters); a stats reset that left it running would
  // double-count the warm-up phase in every per-run report.
  obs::default_registry().reset();
}

}  // namespace abftecc::memsim
