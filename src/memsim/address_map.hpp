// Physical-address <-> DRAM-coordinate mapping.
//
// The scheme is line-interleaved: offset | channel | bank | column | rank |
// row, so streaming accesses rotate across channels and banks (maximizing
// parallelism) while successive lines on the same (channel,bank) advance the
// column within one row (preserving open-page hits). The inverse mapping is
// what Section 3.2.1 requires the OS to perform: converting a fault site
// reported by the memory controller back into a physical address.
#pragma once

#include <cstdint>

#include "memsim/config.hpp"

namespace abftecc::memsim {

/// Coordinates of one cache line in the DRAM system. `rank` is global
/// within the channel (dimm folded in: rank = dimm * ranks_per_dimm + r).
struct DramAddress {
  unsigned channel = 0;
  unsigned rank = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
  unsigned column = 0;  ///< line-sized column within the row

  friend bool operator==(const DramAddress&, const DramAddress&) = default;
};

/// A fault site as recorded by the MC's error registers (Section 3.1):
/// chip/row/column granularity, i.e. a DramAddress plus the failing chip.
struct FaultSite {
  DramAddress where;
  unsigned chip = 0;  ///< chip index within the rank
  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

class AddressMap {
 public:
  explicit AddressMap(const DramOrganization& org, unsigned line_bytes = 64);

  [[nodiscard]] DramAddress decompose(std::uint64_t phys_addr) const;
  [[nodiscard]] std::uint64_t compose(const DramAddress& da) const;

  [[nodiscard]] unsigned line_bytes() const { return line_bytes_; }
  [[nodiscard]] unsigned lines_per_row() const { return lines_per_row_; }
  [[nodiscard]] const DramOrganization& organization() const { return org_; }

 private:
  DramOrganization org_;
  unsigned line_bytes_;
  unsigned lines_per_row_;
  unsigned ranks_per_channel_;
};

}  // namespace abftecc::memsim
