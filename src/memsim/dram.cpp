#include "memsim/dram.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace abftecc::memsim {

DramSystem::DramSystem(const SystemConfig& cfg, const AddressMap& map)
    : cfg_(cfg),
      ranks_per_channel_(cfg.org.dimms_per_channel * cfg.org.ranks_per_dimm) {
  ABFTECC_REQUIRE(map.organization().channels == cfg.org.channels);
  ABFTECC_REQUIRE(cfg.org.channels % 2 == 0);  // lock-step pairing needs pairs
  banks_.resize(static_cast<std::size_t>(cfg.org.channels) *
                ranks_per_channel_ * cfg.org.banks_per_rank);
  bus_free_.resize(cfg.org.channels, 0);
}

std::size_t DramSystem::bank_index(unsigned channel, unsigned rank,
                                   unsigned bank) const {
  return (static_cast<std::size_t>(channel) * ranks_per_channel_ + rank) *
             cfg_.org.banks_per_rank +
         bank;
}

DramAccessResult DramSystem::issue(const DramAddress& da, bool is_write,
                                   const AccessShape& shape, Cycles now) {
  const DramTiming& t = cfg_.timing;
  const DramPower& p = cfg_.power;

  // Channels involved: the mapped one, plus its lock-step partner when the
  // shape spans two channels (chipkill).
  unsigned chans[2] = {da.channel, da.channel};
  unsigned nchan = 1;
  if (shape.channels_used == 2) {
    chans[1] = da.channel ^ 1u;
    nchan = 2;
  }

  // Earliest start: request arrival, all involved banks ready, all involved
  // buses free.
  Cycles start = now;
  for (unsigned c = 0; c < nchan; ++c) {
    const Bank& b = banks_[bank_index(chans[c], da.rank, da.bank)];
    start = std::max(start, b.ready);
    start = std::max(start, bus_free_[chans[c]]);
  }

  // Row-buffer outcome is decided by the primary bank; lock-step partners
  // mirror its row state by construction (same commands go to both).
  bool row_hit = false;
  Cycles command_latency = 0;
  Picojoules energy = 0.0;
  {
    const Bank& b = banks_[bank_index(chans[0], da.rank, da.bank)];
    row_hit = cfg_.row_policy == RowBufferPolicy::kOpenPage && b.row_valid &&
              b.open_row == da.row;
  }
  // Lock-step pairs pay a small scheduling-synchronization latency: both
  // channels' command buses must issue in unison.
  const Cycles sync = (nchan == 2) ? 1 : 0;
  if (row_hit) {
    ++stats_.row_hits;
    command_latency = t.tCL + sync;
  } else {
    ++stats_.row_misses;
    ++stats_.activates;
    bool needs_precharge = false;
    {
      const Bank& b = banks_[bank_index(chans[0], da.rank, da.bank)];
      needs_precharge =
          cfg_.row_policy == RowBufferPolicy::kOpenPage && b.row_valid;
    }
    command_latency = (needs_precharge ? t.tRP : 0) + t.tRCD + t.tCL + sync;
    energy += p.act_pre_pj_per_chip * shape.chips_activated;
  }

  const Cycles data_done = start + command_latency + shape.burst_cycles;

  // Burst + IO energy scales with chip-time: chips x (burst / full burst).
  const double chip_time =
      shape.chips_activated * (static_cast<double>(shape.burst_cycles) / 4.0);
  energy += (is_write ? p.write_pj_per_chip : p.read_pj_per_chip) * chip_time;
  energy += p.io_pj_per_chip * chip_time;

  // Commit resource updates.
  for (unsigned c = 0; c < nchan; ++c) {
    Bank& b = banks_[bank_index(chans[c], da.rank, da.bank)];
    b.ready = data_done + (is_write ? t.tWR : 0);
    if (cfg_.row_policy == RowBufferPolicy::kOpenPage) {
      b.open_row = da.row;
      b.row_valid = true;
    } else {
      b.row_valid = false;
      b.ready += t.tRP;  // auto-precharge
    }
    bus_free_[chans[c]] = data_done;
  }

  if (is_write)
    ++stats_.writes;
  else
    ++stats_.reads;

  return DramAccessResult{data_done, start, energy, row_hit};
}

Picojoules DramSystem::standby_energy_pj(double seconds) const {
  // Every powered chip pays background power; ECC chips stay powered even
  // when a region runs without ECC (they are "disabled or ignored",
  // Section 3.1), so standby is scheme-independent -- matching the paper's
  // observation that dynamic energy is the scheme-sensitive component.
  const double chips = cfg_.org.total_chips();
  const double mw = cfg_.power.standby_mw_per_chip * chips;
  return mw * 1e-3 * seconds * kPicojoulesPerJoule;
}

}  // namespace abftecc::memsim
