#include "memsim/cache.hpp"

#include "common/error.hpp"

namespace abftecc::memsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg), num_sets_(cfg.num_sets()) {
  ABFTECC_REQUIRE(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0);
  ABFTECC_REQUIRE(cfg.ways > 0);
  lines_.resize(num_sets_ * cfg.ways);
}

CacheAccess Cache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];

  Line* lru_line = base;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++tick_;
      line.dirty = line.dirty || is_write;
      ++stats_.hits;
      return CacheAccess{.hit = true};
    }
    if (!line.valid) {
      lru_line = &line;  // prefer an invalid slot outright
    } else if (lru_line->valid && line.lru < lru_line->lru) {
      lru_line = &line;
    }
  }

  ++stats_.misses;
  CacheAccess result;
  if (lru_line->valid) {
    ++stats_.evictions;
    result.evicted = true;
    result.evicted_dirty = lru_line->dirty;
    if (lru_line->dirty) ++stats_.dirty_evictions;
    result.evicted_line_addr =
        (lru_line->tag * num_sets_ + set) * cfg_.line_bytes;
  }
  lru_line->valid = true;
  lru_line->tag = tag;
  lru_line->dirty = is_write;
  lru_line->lru = ++tick_;
  return result;
}

bool Cache::invalidate(std::uint64_t addr) {
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.valid = false;
      return line.dirty;
    }
  }
  return false;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

}  // namespace abftecc::memsim
