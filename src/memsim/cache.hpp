// Set-associative write-back, write-allocate cache with true-LRU
// replacement; used for both the private L1 and the shared L2.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/config.hpp"

namespace abftecc::memsim {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// Result of one cache lookup (fill already performed on miss).
struct CacheAccess {
  bool hit = false;
  bool evicted = false;
  bool evicted_dirty = false;
  std::uint64_t evicted_line_addr = 0;  ///< line-aligned byte address
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Look up `addr`; on miss the line is allocated (victim reported).
  CacheAccess access(std::uint64_t addr, bool is_write);

  /// Invalidate a line if present (used for inclusive-hierarchy back
  /// invalidations). Returns true if it was present and dirty.
  bool invalidate(std::uint64_t addr);

  [[nodiscard]] bool contains(std::uint64_t addr) const;
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t addr) const {
    return (addr / cfg_.line_bytes) % num_sets_;
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const {
    return addr / cfg_.line_bytes / num_sets_;
  }

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::vector<Line> lines_;  ///< num_sets_ * ways, set-major
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace abftecc::memsim
