#include "memsim/config.hpp"

namespace abftecc::memsim {

SystemConfig SystemConfig::table3() {
  SystemConfig c;
  c.l1 = CacheConfig{16 * 1024, 4, 64, 1};
  c.l2 = CacheConfig{8 * 1024 * 1024, 16, 64, 1};
  c.capacity_bytes = 8ull * 1024 * 1024 * 1024;
  return c;
}

SystemConfig SystemConfig::scaled(unsigned factor) {
  SystemConfig c = table3();
  c.l1.size_bytes /= factor;
  if (c.l1.size_bytes < 2048) c.l1.size_bytes = 2048;
  // The L2 shrinks twice as hard as the inputs so the scaled runs keep the
  // paper's footprint >> LLC regime (3000^2 doubles vs 8MB there).
  c.l2.size_bytes /= 4 * factor;
  if (c.l2.size_bytes < 64 * 1024) c.l2.size_bytes = 64 * 1024;
  // Shrink the DRAM fleet with the problem: one dual-rank DIMM per channel
  // keeps bank parallelism while the standby floor scales with the smaller
  // simulated node.
  c.org.dimms_per_channel = 1;
  c.org.ranks_per_dimm = 2;
  c.power.standby_mw_per_chip = 3.0;
  // One task on one of the four cores: charge only that core's dynamic
  // share of the socket, keeping the memory:processor energy balance of
  // the paper's memory-heavy node (see DESIGN.md calibration notes).
  c.core.max_socket_watts = 8.0;
  c.core.idle_socket_watts = 2.5;
  // Keep enough rows/banks for realistic interleaving but shrink capacity so
  // the page allocator's tables stay small.
  c.capacity_bytes = 512ull * 1024 * 1024;
  return c;
}

}  // namespace abftecc::memsim
