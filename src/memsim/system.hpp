// Front end of the memory-system simulator: in-order core timing + L1/L2
// caches + memory controller + DDR3 engine + energy accounting.
//
// Timing model: the cores are in-order (Table 3), so memory stall time is
// additive -- total cycles = issued instructions (1 IPC base) + L2 hit
// latencies + DRAM read stalls. Demand reads block; dirty writebacks are
// posted, consuming DRAM bank/bus resources without stalling the core --
// which is how strong-ECC access shapes degrade performance: they keep
// channels busy longer and later demand reads queue behind them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/backend.hpp"
#include "common/units.hpp"
#include "ecc/scheme.hpp"
#include "memsim/address_map.hpp"
#include "memsim/cache.hpp"
#include "memsim/config.hpp"
#include "memsim/dram.hpp"
#include "memsim/memory_controller.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace abftecc::memsim {

enum class AccessKind : std::uint8_t { kRead, kWrite, kUpdate };

struct SystemStats {
  std::uint64_t instructions = 0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t stall_cycles = 0;  ///< cycles blocked on DRAM demand reads
  std::uint64_t mem_refs = 0;
  std::uint64_t demand_misses = 0;        ///< LLC (L2) demand misses
  std::uint64_t demand_misses_abft = 0;   ///< ... to ABFT-protected blocks
  std::uint64_t demand_misses_other = 0;  ///< ... to everything else
  std::uint64_t writebacks = 0;           ///< posted DRAM writes
  Picojoules dram_dynamic_pj = 0;
  Picojoules dram_dynamic_abft_pj = 0;   ///< dynamic energy on ABFT blocks
  Picojoules dram_dynamic_other_pj = 0;

  [[nodiscard]] double ipc() const {
    return cpu_cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cpu_cycles);
  }
};

/// Per-access shape override used by the DGMS baseline; returns nullopt to
/// use the scheme's default 64B shape.
using ShapeOverride =
    std::function<std::optional<AccessShape>(std::uint64_t phys_addr,
                                             ecc::Scheme scheme)>;

/// Cross-layer instrumentation points of the memory system, gathered into
/// one aggregate passed at construction (or edited through hooks()). The
/// layers install themselves here -- os::Os owns region_classifier,
/// fault::Injector chains itself onto fill_hook -- and harness code adds
/// its own observers on top.
struct Hooks {
  /// Classifier for Table 4 / energy attribution: true if the physical
  /// address belongs to an ABFT-protected structure.
  std::function<bool(std::uint64_t)> region_classifier;
  /// Called on every DRAM transfer with (line address, active scheme,
  /// is_write). The fault-injection layer applies pending errors through
  /// the scheme's decoder on fills, and discards pending errors on
  /// writebacks (the write overwrites the corrupted DRAM cells).
  std::function<void(std::uint64_t, ecc::Scheme, bool)> fill_hook;
  /// DGMS-style per-access granularity override.
  ShapeOverride shape_override;
};

class MemorySystem {
 public:
  MemorySystem(const SystemConfig& cfg,
               ecc::Scheme default_scheme = ecc::Scheme::kChipkill,
               Hooks hooks = {});

  /// One memory reference from the core. kUpdate is a read-modify-write of
  /// one location (single cache access that dirties the line).
  void access(std::uint64_t phys_addr, AccessKind kind);

  /// Account `n` non-memory instructions (1 cycle each, in-order).
  void execute(std::uint64_t n) {
    stats_.instructions += n;
    stats_.cpu_cycles += n;
  }

  // --- wiring -------------------------------------------------------------

  MemoryController& controller() { return mc_; }
  const MemoryController& controller() const { return mc_; }
  const AddressMap& address_map() const { return map_; }
  const SystemConfig& config() const { return cfg_; }
  DramSystem& dram() { return dram_; }

  /// The live hook set (see Hooks). Mutable so layers can chain onto an
  /// already-installed hook instead of silently replacing it.
  [[nodiscard]] Hooks& hooks() { return hooks_; }
  [[nodiscard]] const Hooks& hooks() const { return hooks_; }

  // --- results ------------------------------------------------------------

  [[nodiscard]] const SystemStats& stats() const { return stats_; }
  /// Monotone-counter snapshot for the phase profiler: sim::Session binds
  /// a PhaseProfiler sampler to this.
  [[nodiscard]] obs::CounterSample counter_sample() const {
    return {stats_.cpu_cycles, stats_.stall_cycles, stats_.instructions,
            stats_.dram_dynamic_pj};
  }
  [[nodiscard]] const CacheStats& l1_stats() const { return l1_.stats(); }
  [[nodiscard]] const CacheStats& l2_stats() const { return l2_.stats(); }
  [[nodiscard]] const DramStats& dram_stats() const { return dram_.stats(); }

  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(stats_.cpu_cycles) /
           (cfg_.core.clock_ghz * 1e9);
  }
  [[nodiscard]] Picojoules memory_dynamic_energy_pj() const {
    return stats_.dram_dynamic_pj;
  }
  [[nodiscard]] Picojoules memory_standby_energy_pj() const {
    return dram_.standby_energy_pj(elapsed_seconds());
  }
  [[nodiscard]] Picojoules memory_energy_pj() const {
    return memory_dynamic_energy_pj() + memory_standby_energy_pj();
  }
  /// IPC-based linear scaling of socket power (paper Section 5 methodology).
  [[nodiscard]] Picojoules processor_energy_pj() const;
  [[nodiscard]] Picojoules system_energy_pj() const {
    return memory_energy_pj() + processor_energy_pj();
  }

  void reset_stats();

  /// Backend adapter: the simulator's native time source as a TickClock
  /// (common/backend.hpp). One tick = one CPU cycle at the modeled
  /// frequency; deterministic across runs, unlike host steady_clock.
  [[nodiscard]] TickClock cycle_clock() const {
    return TickClock(
        this,
        [](const void* s) {
          return static_cast<const MemorySystem*>(s)->stats().cpu_cycles;
        },
        1.0 / (cfg_.core.clock_ghz * 1e9));
  }

 private:
  [[nodiscard]] Cycles now_dram() const {
    return static_cast<Cycles>(static_cast<double>(stats_.cpu_cycles) /
                               cfg_.core.cpu_per_dram_cycle());
  }
  [[nodiscard]] AccessShape shape_at(std::uint64_t phys, ecc::Scheme s) const;
  void dram_request(std::uint64_t line_addr, bool is_write, bool blocking);
  void classify_energy(std::uint64_t line_addr, Picojoules pj);

  SystemConfig cfg_;
  AddressMap map_;
  Cache l1_;
  Cache l2_;
  DramSystem dram_;
  MemoryController mc_;
  SystemStats stats_;
  // Cached instruments from obs::default_registry(): demand-miss round-trip
  // latency, controller queueing delay, and per-scheme DRAM access shapes.
  obs::Histogram& miss_stall_hist_;
  obs::Histogram& queue_delay_hist_;
  obs::Counter& dram_access_none_;
  obs::Counter& dram_access_secded_;
  obs::Counter& dram_access_chipkill_;
  Hooks hooks_;
  /// Fixed controller/queueing overhead added to every DRAM round trip.
  static constexpr unsigned kMcOverheadCpuCycles = 12;
};

}  // namespace abftecc::memsim
