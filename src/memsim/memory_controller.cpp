#include "memsim/memory_controller.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abftecc::memsim {

bool MemoryController::set_range(const EccRange& range) {
  ABFTECC_REQUIRE(range.start < range.end);
  for (auto& slot : ranges_) {
    if (!slot.has_value()) {
      slot = range;
      return true;
    }
  }
  return false;
}

bool MemoryController::clear_range(std::uint64_t start) {
  for (auto& slot : ranges_) {
    if (slot.has_value() && slot->start == start) {
      slot.reset();
      return true;
    }
  }
  return false;
}

bool MemoryController::reassign_range(std::uint64_t start, ecc::Scheme scheme) {
  for (auto& slot : ranges_) {
    if (slot.has_value() && slot->start == start) {
      slot->scheme = scheme;
      return true;
    }
  }
  return false;
}

ecc::Scheme MemoryController::scheme_for(std::uint64_t phys_addr) const {
  for (const auto& slot : ranges_) {
    if (slot.has_value() && phys_addr >= slot->start && phys_addr < slot->end)
      return slot->scheme;
  }
  return default_scheme_;
}

unsigned MemoryController::ranges_in_use() const {
  unsigned n = 0;
  for (const auto& slot : ranges_)
    if (slot.has_value()) ++n;
  return n;
}

void MemoryController::report_uncorrectable(const FaultSite& site,
                                            std::uint64_t phys_addr,
                                            Cycles cycle, ecc::Scheme scheme) {
  ++uncorrectable_;
  obs::default_registry().counter("mc.uncorrectable").add();
  obs::default_tracer().instant(obs::EventKind::kEccUncorrectable, cycle,
                                phys_addr, site.chip);
  ErrorRecord& slot = errors_[next_error_slot_];
  if (slot.valid) {
    ++dropped_;  // ring wrapped before the OS drained it
    obs::default_registry().counter("mc.error_records_dropped").add();
  }
  slot = ErrorRecord{site, phys_addr, cycle, scheme, true};
  next_error_slot_ = (next_error_slot_ + 1) % kErrorRegisters;
  if (handler_) handler_(slot);
}

void MemoryController::note_corrected(ecc::Scheme scheme) {
  ++corrected_;
  obs::default_registry().counter("mc.corrected").add();
  correction_energy_ += ecc::properties(scheme).correction_energy_pj;
}

void MemoryController::clear_error_registers() {
  for (auto& e : errors_) e.valid = false;
  next_error_slot_ = 0;
}

}  // namespace abftecc::memsim
