#include "memsim/address_map.hpp"

#include "common/error.hpp"

namespace abftecc::memsim {

AddressMap::AddressMap(const DramOrganization& org, unsigned line_bytes)
    : org_(org),
      line_bytes_(line_bytes),
      lines_per_row_(static_cast<unsigned>(org.row_bytes / line_bytes)),
      ranks_per_channel_(org.dimms_per_channel * org.ranks_per_dimm) {
  ABFTECC_REQUIRE(lines_per_row_ > 0);
}

DramAddress AddressMap::decompose(std::uint64_t phys_addr) const {
  std::uint64_t line = phys_addr / line_bytes_;
  DramAddress da;
  da.channel = static_cast<unsigned>(line % org_.channels);
  line /= org_.channels;
  da.bank = static_cast<unsigned>(line % org_.banks_per_rank);
  line /= org_.banks_per_rank;
  da.column = static_cast<unsigned>(line % lines_per_row_);
  line /= lines_per_row_;
  da.rank = static_cast<unsigned>(line % ranks_per_channel_);
  line /= ranks_per_channel_;
  da.row = line;
  return da;
}

std::uint64_t AddressMap::compose(const DramAddress& da) const {
  std::uint64_t line = da.row;
  line = line * ranks_per_channel_ + da.rank;
  line = line * lines_per_row_ + da.column;
  line = line * org_.banks_per_rank + da.bank;
  line = line * org_.channels + da.channel;
  return line * line_bytes_;
}

}  // namespace abftecc::memsim
