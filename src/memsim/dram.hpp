// DDR3 main-memory timing and energy engine (DRAMSim2 stand-in).
//
// Resource model: one open row + next-ready time per bank, one data-bus
// free time per channel. A request reserves its bank(s) and channel bus(es)
// for the command + burst duration; chipkill reserves BOTH channels of a
// lock-step pair, which is the mechanism behind the paper's observation
// that chipkill "forces prefetch ... fewer opportunities for rank-level
// parallelism" (Section 2.2). Open-page policy keeps rows open so column
// hits skip the ACT/PRE pair, which is what limits the dynamic-energy
// savings of partial ECC when locality is high (Section 5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "ecc/scheme.hpp"
#include "memsim/address_map.hpp"
#include "memsim/config.hpp"

namespace abftecc::memsim {

/// Geometry of one access as driven by the active ECC scheme (and, for the
/// DGMS baseline, by its dynamic-granularity decision).
struct AccessShape {
  unsigned channels_used = 1;  ///< 2 for chipkill lock-step
  unsigned chips_activated = 16;
  unsigned burst_cycles = 4;   ///< DRAM cycles of data transfer per channel
};

/// Default shape for a full 64B line under each scheme.
constexpr AccessShape shape_for(ecc::Scheme s) {
  switch (s) {
    case ecc::Scheme::kNone: return {1, 16, 4};
    case ecc::Scheme::kSecded: return {1, 18, 4};
    // 144-bit lock-step channel pair "reading/writing two 64-byte cache
    // lines at a time" (Section 2.2, DDR3 BL=8): twice the chips, both
    // buses held for a full burst, 128B moved for one useful line -- the
    // forced prefetch whose "extra bits in all the active DIMMs are
    // wasted" when locality is insufficient; we charge the energy and the
    // occupancy and, like the paper, give no fill benefit.
    case ecc::Scheme::kChipkill: return {2, 36, 4};
  }
  return {};
}

/// Sub-ranked 16-byte SECDED access used by the DGMS baseline (Section 5.3).
constexpr AccessShape dgms_fine_shape() { return {1, 5, 1}; }

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t activates = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;

  [[nodiscard]] double row_hit_rate() const {
    const auto total = row_hits + row_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(row_hits) /
                            static_cast<double>(total);
  }
};

struct DramAccessResult {
  Cycles completion = 0;   ///< DRAM cycle when the data burst finishes
  Cycles start = 0;        ///< DRAM cycle when the command began
  Picojoules energy_pj = 0;
  bool row_hit = false;
};

class DramSystem {
 public:
  DramSystem(const SystemConfig& cfg, const AddressMap& map);

  /// Issue one line access at DRAM-cycle `now`. Posted requests (writebacks)
  /// consume resources but the caller does not stall on them.
  DramAccessResult issue(const DramAddress& da, bool is_write,
                         const AccessShape& shape, Cycles now);

  [[nodiscard]] const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Background (standby) energy for `seconds` of wall-clock at this
  /// organization: every powered chip pays, whatever the ECC scheme.
  [[nodiscard]] Picojoules standby_energy_pj(double seconds) const;

 private:
  struct Bank {
    std::uint64_t open_row = 0;
    bool row_valid = false;
    Cycles ready = 0;
  };

  [[nodiscard]] std::size_t bank_index(unsigned channel, unsigned rank,
                                       unsigned bank) const;

  SystemConfig cfg_;
  unsigned ranks_per_channel_;
  std::vector<Bank> banks_;        ///< [channel][rank][bank]
  std::vector<Cycles> bus_free_;   ///< per channel
  DramStats stats_;
};

}  // namespace abftecc::memsim
