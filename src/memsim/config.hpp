// Simulation parameters (paper Table 3) and scaled-down presets.
//
// The paper simulates: 4 in-order cores x 4 threads @2GHz, 16KB 4-way
// private L1s, one shared 8MB 16-way L2, 64B lines, DDR3-667 x4 1.5V,
// 4 channels x 2 DIMMs x 4 ranks x 8 banks, 8GB, open-page row buffers.
// `table3()` reproduces those numbers; `scaled()` shrinks the caches in
// proportion to the smaller matrix inputs a software per-access simulator
// can afford, keeping the footprint/LLC ratio of the paper's runs (see
// DESIGN.md substitution table).
#pragma once

#include <cstddef>
#include <cstdint>

namespace abftecc::memsim {

struct CacheConfig {
  std::size_t size_bytes = 0;
  unsigned ways = 1;
  unsigned line_bytes = 64;
  unsigned hit_latency_cycles = 1;  ///< CPU cycles

  [[nodiscard]] std::size_t num_sets() const {
    return size_bytes / (static_cast<std::size_t>(ways) * line_bytes);
  }
};

/// DDR3 timing in DRAM clock cycles (DDR3-667: 667 MT/s, 333 MHz clock).
struct DramTiming {
  unsigned tCL = 5;    ///< CAS latency
  unsigned tRCD = 5;   ///< RAS-to-CAS
  unsigned tRP = 5;    ///< precharge
  unsigned tRAS = 15;  ///< row active minimum
  unsigned tBL = 4;    ///< data burst: 8 beats on a DDR bus = 4 clocks
  unsigned tWR = 5;    ///< write recovery
};

struct DramOrganization {
  unsigned channels = 4;
  unsigned dimms_per_channel = 2;
  unsigned ranks_per_dimm = 4;
  unsigned banks_per_rank = 8;
  /// Row-buffer (page) size per bank in bytes.
  std::size_t row_bytes = 8192;
  /// Per-rank x4 data chips (ECC chips are extra, see ecc::properties()).
  unsigned data_chips_per_rank = 16;
  unsigned ecc_chips_per_rank = 2;

  [[nodiscard]] unsigned total_ranks() const {
    return channels * dimms_per_channel * ranks_per_dimm;
  }
  [[nodiscard]] unsigned total_banks() const {
    return total_ranks() * banks_per_rank;
  }
  [[nodiscard]] unsigned total_chips() const {
    return total_ranks() * (data_chips_per_rank + ecc_chips_per_rank);
  }
};

enum class RowBufferPolicy : std::uint8_t { kOpenPage, kClosedPage };

/// Per-chip DDR3 x4 1.5V energy constants in the style of Micron TN-41-01:
/// dynamic energy is charged per operation per activated chip, background
/// power per powered chip per unit time.
struct DramPower {
  double act_pre_pj_per_chip = 1100.0;  ///< one ACT+PRE pair
  double read_pj_per_chip = 700.0;      ///< one 8-beat read burst
  double write_pj_per_chip = 800.0;     ///< one 8-beat write burst
  /// Output drivers plus on-die termination; on registered server DIMMs the
  /// termination network is a first-order energy term.
  double io_pj_per_chip = 600.0;
  double standby_mw_per_chip = 25.0;    ///< background (all powered chips)
};

struct CoreConfig {
  unsigned cores = 4;
  unsigned threads_per_core = 4;
  double clock_ghz = 2.0;
  /// DRAM command clock (DDR3-667 -> 333 MHz).
  double dram_clock_mhz = 333.0;
  /// CPU cycles per DRAM cycle, derived.
  [[nodiscard]] double cpu_per_dram_cycle() const {
    return clock_ghz * 1000.0 / dram_clock_mhz;
  }
  /// Peak power of the socket, scaled linearly by IPC as in the paper
  /// ("IPC-based linear scaling of ... a 45nm Intel Xeon").
  double max_socket_watts = 95.0;
  /// Floor of the linear IPC->power model (uncore + leakage).
  double idle_socket_watts = 30.0;
  /// IPC at which the socket reaches max power.
  double peak_ipc = 1.0;
};

struct SystemConfig {
  CoreConfig core;
  CacheConfig l1;
  CacheConfig l2;
  DramTiming timing;
  DramOrganization org;
  DramPower power;
  RowBufferPolicy row_policy = RowBufferPolicy::kOpenPage;
  std::size_t capacity_bytes = 0;
  std::size_t page_bytes = 4096;
  /// L2 hit latency (CPU cycles) charged on an L1 miss that hits L2.
  unsigned l2_latency_cycles = 8;
  /// Maximum posted (non-blocking) writebacks in flight per channel before
  /// reads start queueing behind them.
  unsigned writeback_queue_depth = 8;

  /// Paper Table 3 verbatim.
  static SystemConfig table3();

  /// Scaled preset for software simulation: same shape, caches shrunk by
  /// `factor` (e.g. 8 => 1MB L2) so proportionally smaller matrices exercise
  /// the same hierarchy levels.
  static SystemConfig scaled(unsigned factor = 8);
};

}  // namespace abftecc::memsim
