// Cache-line-level ECC processing.
//
// DRAM stores lines encoded; faults flip stored bits; the memory controller
// decodes on read. LineCodec reproduces that pipeline bit-accurately for one
// 64-byte line: it encodes the pre-fault line under the active scheme,
// applies the requested bit flips to the stored codewords, decodes, and
// reports what a real controller would -- with the line left in the state
// the application would observe (corrected, or still corrupted when the
// error exceeds the code's capability).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/scheme.hpp"

namespace abftecc::ecc {

inline constexpr std::size_t kLineBytes = 64;

/// One flipped bit in a stored line. Data bits are indexed 0..511 across the
/// 64 data bytes; check bits use a scheme-local index space (SECDED: 8 bits
/// per 64-bit word, 64 total; chipkill: 4 check symbols x 8 bits per
/// codeword, 64 total).
struct BitFlip {
  unsigned index = 0;
  bool in_check_bits = false;
};

struct LineResult {
  DecodeStatus status = DecodeStatus::kOk;
  /// Codewords that reported each status (a 64B line is 8 SECDED words or
  /// 2 chipkill codewords).
  unsigned corrected_words = 0;
  unsigned uncorrectable_words = 0;
  /// True if the post-decode data differs from the pre-fault data while the
  /// decoder reported success -- silent data corruption (possible with
  /// No_ECC always, and with mis-correcting multi-bit patterns otherwise).
  bool silent_corruption = false;
};

class LineCodec {
 public:
  /// Apply `flips` to the stored form of `line` under `scheme` and decode.
  /// `line` is updated to the post-decode data the application reads.
  static LineResult process_line(Scheme scheme,
                                 std::span<std::uint8_t> line,
                                 std::span<const BitFlip> flips);

  /// Kill one whole x4 chip for this line access (chipkill's design target):
  /// corrupts every bit the chip contributes. `chip` is 0..35 for chipkill,
  /// 0..17 for SECDED (x4: 4 data bits per beat => 4 adjacent bits per
  /// 64-bit word), 0..15 for No_ECC. XORs the chip's bits with `pattern`
  /// (nonzero low nibble).
  static LineResult kill_chip(Scheme scheme, std::span<std::uint8_t> line,
                              unsigned chip, std::uint8_t pattern = 0xF);

  /// The set of stored-bit flips a chip failure contributes under `scheme`
  /// (what kill_chip applies). Exposed so callers can merge several
  /// simultaneous faults on one line into a single decode.
  static std::vector<BitFlip> chip_flips(Scheme scheme, unsigned chip,
                                         std::uint8_t pattern = 0xF);
};

}  // namespace abftecc::ecc
