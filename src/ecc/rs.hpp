// Generalized single-symbol-correct / double-symbol-detect Reed-Solomon
// codes over GF(2^8), parameterized on code geometry.
//
// Chipkill-class memory protection assigns one RS symbol per DRAM chip, so
// the code length follows the DIMM geometry:
//   * x4 DRAM, 4-check-symbol code: RS(36, 32) -- two lock-step 72-bit
//     channels, 36 chips (Section 2.2, the paper's evaluation target);
//   * x8 DRAM, 3-check-symbol code: RS(19, 16) -- the 18.75% storage
//     overhead configuration the paper quotes for x8 chips.
// Both run in bounded-distance SSC-DSD mode: any corruption confined to
// one chip is corrected, any two-chip corruption is detected.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "ecc/gf256.hpp"
#include "ecc/scheme.hpp"

namespace abftecc::ecc {

template <unsigned NTotal, unsigned NCheck>
class RsCode {
  static_assert(NTotal <= Gf256::kGroupOrder, "RS length bound over GF(256)");
  static_assert(NCheck >= 3, "SSC-DSD needs minimum distance 4");
  static_assert(NCheck < NTotal);

 public:
  static constexpr unsigned kTotalSymbols = NTotal;
  static constexpr unsigned kCheckSymbols = NCheck;
  static constexpr unsigned kDataSymbols = NTotal - NCheck;

  /// A codeword: symbol i lives on chip i. Check symbols occupy positions
  /// [0, NCheck), data symbols the rest -- systematic encoding.
  using Codeword = std::array<std::uint8_t, kTotalSymbols>;

  /// Encode kDataSymbols data bytes into a codeword.
  static Codeword encode(std::span<const std::uint8_t> data) {
    ABFTECC_REQUIRE(data.size() == kDataSymbols);
    // Systematic: c(x) = d(x) x^NCheck + (d(x) x^NCheck mod g(x)).
    std::array<std::uint8_t, kCheckSymbols> rem{};
    for (unsigned i = kDataSymbols; i-- > 0;) {
      const std::uint8_t feedback =
          Gf256::add(data[i], rem[kCheckSymbols - 1]);
      for (unsigned j = kCheckSymbols; j-- > 0;) {
        const std::uint8_t low = (j == 0) ? 0 : rem[j - 1];
        rem[j] = Gf256::add(low, Gf256::mul(feedback, kGenerator[j]));
      }
    }
    Codeword cw{};
    for (unsigned j = 0; j < kCheckSymbols; ++j) cw[j] = rem[j];
    for (unsigned i = 0; i < kDataSymbols; ++i) cw[kCheckSymbols + i] = data[i];
    return cw;
  }

  /// Extract the data bytes back out of a codeword.
  static void extract(const Codeword& cw, std::span<std::uint8_t> data) {
    ABFTECC_REQUIRE(data.size() == kDataSymbols);
    for (unsigned i = 0; i < kDataSymbols; ++i) data[i] = cw[kCheckSymbols + i];
  }

  /// Decode in place: corrects any corruption confined to one symbol
  /// (`bad_symbol` reports which chip), detects multi-symbol corruption.
  static DecodeStatus decode(Codeword& cw, unsigned* bad_symbol = nullptr) {
    // S_r = c(alpha^r), Horner from the top coefficient.
    std::array<std::uint8_t, kCheckSymbols> s{};
    bool clean = true;
    for (unsigned r = 0; r < kCheckSymbols; ++r) {
      std::uint8_t acc = 0;
      const std::uint8_t x = Gf256::exp(r);
      for (unsigned i = kTotalSymbols; i-- > 0;)
        acc = Gf256::add(Gf256::mul(acc, x), cw[i]);
      s[r] = acc;
      if (acc != 0) clean = false;
    }
    if (clean) return DecodeStatus::kOk;

    // Single-symbol hypothesis: S_r = e * alpha^(r j) demands every
    // syndrome nonzero with a constant successive ratio alpha^j.
    for (const auto v : s)
      if (v == 0) return DecodeStatus::kDetectedUncorrectable;
    const std::uint8_t ratio = Gf256::div(s[1], s[0]);
    for (unsigned r = 2; r < kCheckSymbols; ++r)
      if (Gf256::div(s[r], s[r - 1]) != ratio)
        return DecodeStatus::kDetectedUncorrectable;
    const unsigned j = Gf256::log(ratio);
    if (j >= kTotalSymbols) return DecodeStatus::kDetectedUncorrectable;

    cw[j] = Gf256::add(cw[j], s[0]);
    if (bad_symbol != nullptr) *bad_symbol = j;
    return DecodeStatus::kCorrected;
  }

 private:
  /// g(x) = (x - a^0)(x - a^1)...(x - a^(NCheck-1)), monic.
  static constexpr std::array<std::uint8_t, NCheck + 1> build_generator() {
    std::array<std::uint8_t, NCheck + 1> g{};
    g[0] = 1;
    unsigned degree = 0;
    for (unsigned r = 0; r < NCheck; ++r) {
      const std::uint8_t root = Gf256::exp(r);
      ++degree;
      for (unsigned i = degree; i > 0; --i)
        g[i] = Gf256::add(g[i - 1], Gf256::mul(g[i], root));
      g[0] = Gf256::mul(g[0], root);
    }
    return g;
  }

  static constexpr std::array<std::uint8_t, NCheck + 1> kGenerator =
      build_generator();
};

/// x8 DRAM chipkill: 16 data chips + 3 check chips per beat, the 18.75%
/// storage-overhead configuration of Section 2.2.
using ChipkillX8 = RsCode<19, 3>;

}  // namespace abftecc::ecc
