// Hsiao (72,64) SECDED code: single-error-correct, double-error-detect.
//
// The classic odd-weight-column construction [Hsiao 1970] the paper cites:
// the parity-check matrix H has 72 distinct odd-weight 8-bit columns --
// the 8 weight-1 columns carry the check bits, and 56 weight-3 plus 8
// weight-5 columns carry the 64 data bits. Odd column weight makes every
// single-bit error produce an odd-parity syndrome and every double-bit
// error an even-parity (hence distinguishable) one.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "ecc/scheme.hpp"

namespace abftecc::ecc {

/// A (72,64) codeword: 64 data bits and 8 check bits kept separately.
struct SecdedWord {
  std::uint64_t data = 0;
  std::uint8_t check = 0;

  friend bool operator==(const SecdedWord&, const SecdedWord&) = default;
};

class Secded {
 public:
  static constexpr unsigned kDataBits = 64;
  static constexpr unsigned kCheckBits = 8;
  static constexpr unsigned kCodeBits = kDataBits + kCheckBits;

  /// Encode 64 data bits into a codeword.
  static SecdedWord encode(std::uint64_t data);

  /// Decode in place. On kCorrected the single flipped bit (data or check)
  /// has been repaired; on kDetectedUncorrectable the word is left as
  /// received. `flipped_bit` (0..63 data, 64..71 check) reports the
  /// corrected position when status == kCorrected.
  static DecodeStatus decode(SecdedWord& word,
                             unsigned* flipped_bit = nullptr);

  /// Flip one bit of a codeword (bit 0..63 = data, 64..71 = check); test and
  /// fault-injection helper.
  static void flip_bit(SecdedWord& word, unsigned bit);

  /// The 8-bit H column assigned to code bit `bit` (0..71). Exposed for
  /// tests that verify the odd-weight/distinctness construction.
  static std::uint8_t column(unsigned bit);

 private:
  static std::uint8_t syndrome(const SecdedWord& word);
};

}  // namespace abftecc::ecc
