#include "ecc/codec.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/error.hpp"
#include "ecc/chipkill.hpp"
#include "ecc/secded.hpp"

namespace abftecc::ecc {

namespace {

constexpr unsigned kWordsPerLine = 8;   // 8 x 64-bit SECDED words
constexpr unsigned kCwPerLine = 2;      // 2 x RS(36,32) chipkill codewords

std::uint64_t load_word(std::span<const std::uint8_t> line, unsigned w) {
  std::uint64_t v = 0;
  std::memcpy(&v, line.data() + w * 8, 8);
  return v;
}

void store_word(std::span<std::uint8_t> line, unsigned w, std::uint64_t v) {
  std::memcpy(line.data() + w * 8, &v, 8);
}

void merge(LineResult& agg, DecodeStatus st) {
  if (st == DecodeStatus::kCorrected) {
    ++agg.corrected_words;
    if (agg.status == DecodeStatus::kOk) agg.status = DecodeStatus::kCorrected;
  } else if (st == DecodeStatus::kDetectedUncorrectable) {
    ++agg.uncorrectable_words;
    agg.status = DecodeStatus::kDetectedUncorrectable;
  }
}

LineResult process_none(std::span<std::uint8_t> line,
                        std::span<const BitFlip> flips) {
  LineResult res;
  for (const auto& f : flips) {
    if (f.in_check_bits) continue;  // no check storage exists
    ABFTECC_REQUIRE(f.index < kLineBytes * 8);
    line[f.index / 8] ^= static_cast<std::uint8_t>(1u << (f.index % 8));
    res.silent_corruption = true;
  }
  return res;
}

LineResult process_secded(std::span<std::uint8_t> line,
                          std::span<const BitFlip> flips) {
  LineResult res;
  for (unsigned w = 0; w < kWordsPerLine; ++w) {
    const std::uint64_t original = load_word(line, w);
    SecdedWord cw = Secded::encode(original);
    bool touched = false;
    for (const auto& f : flips) {
      if (f.in_check_bits) {
        ABFTECC_REQUIRE(f.index < kWordsPerLine * Secded::kCheckBits);
        if (f.index / Secded::kCheckBits != w) continue;
        Secded::flip_bit(cw, Secded::kDataBits + f.index % Secded::kCheckBits);
      } else {
        ABFTECC_REQUIRE(f.index < kLineBytes * 8);
        if (f.index / Secded::kDataBits != w) continue;
        Secded::flip_bit(cw, f.index % Secded::kDataBits);
      }
      touched = true;
    }
    if (!touched) continue;
    const DecodeStatus st = Secded::decode(cw);
    merge(res, st);
    store_word(line, w, cw.data);
    if (st != DecodeStatus::kDetectedUncorrectable && cw.data != original)
      res.silent_corruption = true;
  }
  return res;
}

LineResult process_chipkill(std::span<std::uint8_t> line,
                            std::span<const BitFlip> flips) {
  LineResult res;
  for (unsigned c = 0; c < kCwPerLine; ++c) {
    std::array<std::uint8_t, Chipkill::kDataSymbols> original{};
    std::memcpy(original.data(), line.data() + c * Chipkill::kDataSymbols,
                Chipkill::kDataSymbols);
    Chipkill::Codeword cw = Chipkill::encode(original);
    bool touched = false;
    for (const auto& f : flips) {
      if (f.in_check_bits) {
        ABFTECC_REQUIRE(f.index < kCwPerLine * Chipkill::kCheckSymbols * 8);
        if (f.index / (Chipkill::kCheckSymbols * 8) != c) continue;
        const unsigned local = f.index % (Chipkill::kCheckSymbols * 8);
        cw[local / 8] ^= static_cast<std::uint8_t>(1u << (local % 8));
      } else {
        ABFTECC_REQUIRE(f.index < kLineBytes * 8);
        const unsigned byte = f.index / 8;
        if (byte / Chipkill::kDataSymbols != c) continue;
        const unsigned sym = Chipkill::kCheckSymbols + byte % Chipkill::kDataSymbols;
        cw[sym] ^= static_cast<std::uint8_t>(1u << (f.index % 8));
      }
      touched = true;
    }
    if (!touched) continue;
    const DecodeStatus st = Chipkill::decode(cw);
    merge(res, st);
    std::array<std::uint8_t, Chipkill::kDataSymbols> decoded{};
    Chipkill::extract(cw, decoded);
    std::memcpy(line.data() + c * Chipkill::kDataSymbols, decoded.data(),
                Chipkill::kDataSymbols);
    if (st != DecodeStatus::kDetectedUncorrectable && decoded != original)
      res.silent_corruption = true;
  }
  return res;
}

}  // namespace

LineResult LineCodec::process_line(Scheme scheme, std::span<std::uint8_t> line,
                                   std::span<const BitFlip> flips) {
  ABFTECC_REQUIRE(line.size() == kLineBytes);
  switch (scheme) {
    case Scheme::kNone: return process_none(line, flips);
    case Scheme::kSecded: return process_secded(line, flips);
    case Scheme::kChipkill: return process_chipkill(line, flips);
  }
  return {};
}

LineResult LineCodec::kill_chip(Scheme scheme, std::span<std::uint8_t> line,
                                unsigned chip, std::uint8_t pattern) {
  const std::vector<BitFlip> flips = chip_flips(scheme, chip, pattern);
  return process_line(scheme, line, flips);
}

std::vector<BitFlip> LineCodec::chip_flips(Scheme scheme, unsigned chip,
                                           std::uint8_t pattern) {
  ABFTECC_REQUIRE((pattern & 0xF) != 0);
  std::vector<BitFlip> flips;
  const std::uint8_t nib = pattern & 0xF;

  switch (scheme) {
    case Scheme::kNone: {
      // 16 data chips, 4 adjacent bits of every 64-bit word each.
      ABFTECC_REQUIRE(chip < 16);
      for (unsigned w = 0; w < kWordsPerLine; ++w)
        for (unsigned b = 0; b < 4; ++b)
          if (nib & (1u << b))
            flips.push_back({w * 64 + chip * 4 + b, false});
      break;
    }
    case Scheme::kSecded: {
      // 16 data chips + 2 check chips per 72-bit word.
      ABFTECC_REQUIRE(chip < 18);
      for (unsigned w = 0; w < kWordsPerLine; ++w)
        for (unsigned b = 0; b < 4; ++b) {
          if (!(nib & (1u << b))) continue;
          if (chip < 16)
            flips.push_back({w * 64 + chip * 4 + b, false});
          else
            flips.push_back({w * 8 + (chip - 16) * 4 + b, true});
        }
      break;
    }
    case Scheme::kChipkill: {
      // Chip == RS symbol. The chip's two nibbles form the 8-bit symbol, so
      // the kill pattern applies to both nibble transfers.
      ABFTECC_REQUIRE(chip < Chipkill::kTotalSymbols);
      const std::uint8_t byte_pattern =
          static_cast<std::uint8_t>(nib | (nib << 4));
      for (unsigned c = 0; c < kCwPerLine; ++c)
        for (unsigned b = 0; b < 8; ++b) {
          if (!(byte_pattern & (1u << b))) continue;
          if (chip < Chipkill::kCheckSymbols)
            flips.push_back({c * Chipkill::kCheckSymbols * 8 + chip * 8 + b, true});
          else
            flips.push_back(
                {(c * Chipkill::kDataSymbols + (chip - Chipkill::kCheckSymbols)) * 8 + b,
                 false});
        }
      break;
    }
  }
  return flips;
}

}  // namespace abftecc::ecc
