// Chipkill-correct for x4 DRAM: single-symbol-correct / double-symbol-
// detect Reed-Solomon RS(36, 32) over GF(2^8).
//
// Geometry follows Section 2.2 / Figure 2: two x4 DDR3 channels in
// lock-step form a 144-bit logical channel; a 64B cache line is carried by
// 36 chips (32 data + 4 ECC). Each chip contributes two 4-bit transfers
// per beat, paired into one 8-bit RS symbol per chip -- the standard x4
// chipkill construction. Run in bounded-distance SSC-DSD mode the code
// corrects any error confined to one chip and detects any error spanning
// two chips, whatever the bit patterns.
//
// The codec itself is the generalized RsCode (ecc/rs.hpp); the x8 variant
// the paper mentions is ecc::ChipkillX8.
#pragma once

#include "ecc/rs.hpp"

namespace abftecc::ecc {

using Chipkill = RsCode<36, 4>;

}  // namespace abftecc::ecc
