#include "ecc/secded.hpp"

#include <bit>

#include "common/error.hpp"

namespace abftecc::ecc {

namespace {

/// Build the 72 H-matrix columns: data bits first (56 weight-3 columns in
/// lexicographic order, then 8 weight-5 columns), check bits last (the 8
/// weight-1 identity columns, so the check half of H is I and encoding is
/// systematic).
struct Columns {
  std::array<std::uint8_t, Secded::kCodeBits> col{};
  /// syndrome value -> code bit position + 1 (0 = no column matches).
  std::array<std::uint8_t, 256> position{};
};

constexpr Columns build_columns() {
  Columns c{};
  unsigned n = 0;
  // All 56 weight-3 columns.
  for (unsigned a = 0; a < 8; ++a)
    for (unsigned b = a + 1; b < 8; ++b)
      for (unsigned d = b + 1; d < 8; ++d)
        c.col[n++] = static_cast<std::uint8_t>((1u << a) | (1u << b) | (1u << d));
  // 8 weight-5 columns: complement of weight-3 columns with a fixed pattern;
  // take the complements of the first 8 weight-3 columns, which are distinct
  // weight-5 vectors.
  for (unsigned i = 0; i < 8; ++i)
    c.col[n++] = static_cast<std::uint8_t>(~c.col[i] & 0xFF);
  // 8 weight-1 identity columns for the check bits.
  for (unsigned i = 0; i < 8; ++i) c.col[n++] = static_cast<std::uint8_t>(1u << i);

  for (unsigned bit = 0; bit < Secded::kCodeBits; ++bit)
    c.position[c.col[bit]] = static_cast<std::uint8_t>(bit + 1);
  return c;
}

constexpr Columns kColumns = build_columns();

}  // namespace

std::uint8_t Secded::column(unsigned bit) {
  ABFTECC_REQUIRE(bit < kCodeBits);
  return kColumns.col[bit];
}

SecdedWord Secded::encode(std::uint64_t data) {
  std::uint8_t check = 0;
  std::uint64_t d = data;
  while (d != 0) {
    const int bit = std::countr_zero(d);
    check ^= kColumns.col[static_cast<unsigned>(bit)];
    d &= d - 1;
  }
  return SecdedWord{data, check};
}

std::uint8_t Secded::syndrome(const SecdedWord& word) {
  // H * r: data columns XORed for each set data bit, check half of H is I.
  return static_cast<std::uint8_t>(encode(word.data).check ^ word.check);
}

DecodeStatus Secded::decode(SecdedWord& word, unsigned* flipped_bit) {
  const std::uint8_t s = syndrome(word);
  if (s == 0) return DecodeStatus::kOk;
  if (std::popcount(s) % 2 == 0) {
    // Even-weight nonzero syndrome: double-bit error signature.
    return DecodeStatus::kDetectedUncorrectable;
  }
  const unsigned pos_plus_1 = kColumns.position[s];
  if (pos_plus_1 == 0) {
    // Odd-weight syndrome matching no column: >=3 bit errors detected.
    return DecodeStatus::kDetectedUncorrectable;
  }
  const unsigned bit = pos_plus_1 - 1;
  flip_bit(word, bit);
  if (flipped_bit != nullptr) *flipped_bit = bit;
  return DecodeStatus::kCorrected;
}

void Secded::flip_bit(SecdedWord& word, unsigned bit) {
  ABFTECC_REQUIRE(bit < kCodeBits);
  if (bit < kDataBits) {
    word.data ^= (std::uint64_t{1} << bit);
  } else {
    word.check ^= static_cast<std::uint8_t>(1u << (bit - kDataBits));
  }
}

}  // namespace abftecc::ecc
