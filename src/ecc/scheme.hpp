// ECC scheme identifiers and their cost/reliability properties.
//
// The three protection levels of Section 3.1: chipkill-correct (strong),
// SECDED (weak), and no ECC. Property values follow the paper's Table 5
// (post-ECC failure rates) and Section 2.2 (channel/chip geometry and
// storage overheads for x4 DDR3 DIMMs).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"

namespace abftecc::ecc {

enum class Scheme : std::uint8_t {
  kNone = 0,     ///< 64-bit data path, ECC chips disabled
  kSecded = 1,   ///< Hsiao (72,64) per 64-bit word, one 72-bit channel
  kChipkill = 2  ///< SSC-DSD RS(36,32) over x4 chips, two channels lock-step
};

constexpr std::string_view to_string(Scheme s) {
  switch (s) {
    case Scheme::kNone: return "No_ECC";
    case Scheme::kSecded: return "SECDED";
    case Scheme::kChipkill: return "Chipkill";
  }
  return "?";
}

/// Static properties of one scheme as deployed on the Table 3 memory system.
struct SchemeProperties {
  Scheme scheme;
  /// x4 DRAM chips activated per 64B cache-line access.
  unsigned chips_per_access;
  /// Physical channels occupied per access (chipkill runs two in lock-step).
  unsigned channels_per_access;
  /// Bits moved per 64B line including ECC bits (overfetch factor source).
  unsigned bits_per_line;
  /// Fraction of DRAM capacity spent on ECC storage.
  double storage_overhead;
  /// Post-ECC uncorrected-error rate, Table 5 (FIT/Mbit).
  FitPerMbit residual_fit;
  /// Energy for one in-controller correction event (Section 4 Case 1:
  /// "less than 1 pJ" for strong ECC).
  Picojoules correction_energy_pj;
};

constexpr SchemeProperties properties(Scheme s) {
  switch (s) {
    case Scheme::kNone:
      return {Scheme::kNone, 16, 1, 512, 0.0, FitPerMbit{5000.0}, 0.0};
    case Scheme::kSecded:
      return {Scheme::kSecded, 18, 1, 576, 0.125, FitPerMbit{1300.0}, 0.5};
    case Scheme::kChipkill:
      return {Scheme::kChipkill, 36, 2, 576, 0.125, FitPerMbit{0.02}, 1.0};
  }
  return {Scheme::kNone, 16, 1, 512, 0.0, FitPerMbit{0.0}, 0.0};
}

/// Outcome of decoding one codeword.
enum class DecodeStatus : std::uint8_t {
  kOk,                     ///< syndrome clean
  kCorrected,              ///< error found and repaired in place
  kDetectedUncorrectable,  ///< error detected, beyond correction capability
};

}  // namespace abftecc::ecc
