// Low-overhead metrics registry (tentpole piece 1 of the observability
// subsystem): named counters, gauges, and fixed-bucket latency histograms
// with pluggable output sinks (pretty table, JSON, JSON-lines, CSV).
//
// Design constraints, in order:
//  * hot-path cost: an update is one add on a cached reference -- no name
//    lookup, no allocation, no lock (instruments are thread-confined:
//    every thread sees its own default_registry(), so parallel campaign
//    trials never share an instrument);
//  * stable identity: instruments live as long as the registry, so layers
//    cache `Counter&`/`Histogram&` at construction and update blindly;
//  * resettable values: `Registry::reset()` zeroes every instrument but
//    keeps the registrations, so per-run accounting (and the
//    MemorySystem::reset_stats() contract) works without re-wiring.
//
// Naming convention: dotted lower-case paths, `<layer>.<quantity>`, e.g.
// `memsim.demand_miss_stall_cycles`, `os.panics`, `fault.injected_flips`.
// The full taxonomy is listed in README.md ("Observability").
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace abftecc::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t d = 1) { value_ += d; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written level (occupancy, ratio, configuration knob).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket `i < bounds.size()` counts observations
/// with `v <= bounds[i]` (and `v > bounds[i-1]`); one implicit overflow
/// bucket catches the rest. Bounds are fixed at registration so repeated
/// runs aggregate into identical shapes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// Geometric bucket ladder: first, first*factor, ... (n bounds).
  static std::vector<double> exponential_bounds(double first, double factor,
                                                std::size_t n);

  void observe(double v) {
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++buckets_[i];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Number of buckets including the overflow bucket.
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  /// Inclusive upper bound of bucket `i`; +inf for the overflow bucket.
  [[nodiscard]] double upper_bound(std::size_t i) const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i];
  }

  void reset();

 private:
  std::vector<double> bounds_;       ///< sorted, strictly increasing
  std::vector<std::uint64_t> buckets_;  ///< bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Point-in-time copy of every instrument, for sinks and the bench report.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1
  };
  std::vector<HistogramRow> histograms;
};

/// Owner of named instruments. Registration is idempotent: asking for an
/// existing name returns the same instrument (histogram bounds are taken
/// from the first registration).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Zero every instrument's values; registrations (and cached references)
  /// stay valid.
  void reset();

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // --- sinks ---------------------------------------------------------------

  /// Human-readable table (alphabetical by name).
  void write_pretty(std::FILE* f) const;
  /// One JSON object per line: {"type":...,"name":...,...}.
  void write_json_lines(std::FILE* f) const;
  /// `name,kind,value` rows (histograms flattened to count/sum/max).
  void write_csv(std::FILE* f) const;
  /// One JSON object {"counters":{},"gauges":{},"histograms":{}}.
  [[nodiscard]] std::string to_json() const;

 private:
  // std::map with transparent comparison: deterministic iteration order
  // for the sinks, heterogeneous string_view lookup without temporaries.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Registry the simulation layers on this thread record into. Each thread
/// gets its own lazily-created instance (parallel campaign trials cannot
/// race on counters), and RegistryScope overrides it for a lexical scope.
Registry& default_registry();

/// RAII override of this thread's default_registry(): install `r`, restore
/// the previous binding on destruction. Scopes nest; destroy them LIFO.
/// sim::Session uses this to give each session private instruments.
class RegistryScope {
 public:
  explicit RegistryScope(Registry& r);
  ~RegistryScope();
  RegistryScope(const RegistryScope&) = delete;
  RegistryScope& operator=(const RegistryScope&) = delete;

 private:
  Registry* prev_;
};

}  // namespace abftecc::obs
