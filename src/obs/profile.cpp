#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abftecc::obs {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kTotal: return "total";
    case Phase::kCompute: return "compute";
    case Phase::kEncode: return "encode";
    case Phase::kVerify: return "verify";
    case Phase::kLocate: return "locate";
    case Phase::kCorrect: return "correct";
    case Phase::kRecompute: return "recompute";
    case Phase::kRollback: return "rollback";
    case Phase::kCheckpoint: return "checkpoint";
  }
  return "?";
}

void PhaseProfiler::start() {
  if (enabled_) return;
  nodes_.clear();
  stack_.clear();
  open_spans_.clear();
  spans_.clear();
  dropped_spans_ = 0;
  nodes_.push_back(PhaseNode{Phase::kTotal, -1, 0, 1, {}});
  stack_.push_back(0);
  last_ = sample();
  enabled_ = true;
}

void PhaseProfiler::stop() {
  if (!enabled_) return;
  while (stack_.size() > 1) exit();  // unbalanced scopes: close them
  attribute();
  enabled_ = false;
}

void PhaseProfiler::reset() {
  enabled_ = false;
  nodes_.clear();
  stack_.clear();
  open_spans_.clear();
  spans_.clear();
  dropped_spans_ = 0;
  last_ = CounterSample{};
}

void PhaseProfiler::attribute() {
  const CounterSample now = sample();
  nodes_[static_cast<std::size_t>(stack_.back())].self += now - last_;
  last_ = now;
}

int PhaseProfiler::child_of(int parent, Phase p) {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].parent == parent && nodes_[i].phase == p)
      return static_cast<int>(i);
  nodes_.push_back(
      PhaseNode{p, parent, nodes_[static_cast<std::size_t>(parent)].depth + 1,
                0, {}});
  return static_cast<int>(nodes_.size() - 1);
}

void PhaseProfiler::enter(Phase p) {
  if (!enabled_) return;
  attribute();
  const int node = child_of(stack_.back(), p);
  ++nodes_[static_cast<std::size_t>(node)].enters;
  stack_.push_back(node);
  open_spans_.push_back(OpenSpan{last_.cycles, p});
}

void PhaseProfiler::exit() {
  if (!enabled_) return;
  if (stack_.size() <= 1) return;  // unbalanced exit: ignore
  attribute();
  const OpenSpan open = open_spans_.back();
  open_spans_.pop_back();
  if (spans_.size() < span_capacity_) {
    spans_.push_back(PhaseSpan{
        open.start_cycles, last_.cycles - open.start_cycles, open.phase,
        static_cast<std::uint16_t>(stack_.size() - 1)});
  } else {
    ++dropped_spans_;
  }
  stack_.pop_back();
}

CounterSample PhaseProfiler::phase_total(Phase p) const {
  CounterSample out;
  for (const PhaseNode& n : nodes_)
    if (n.phase == p) out += n.self;
  return out;
}

CounterSample PhaseProfiler::total() const {
  CounterSample out;
  for (const PhaseNode& n : nodes_) out += n.self;
  return out;
}

namespace {

void sample_fields(JsonWriter& w, const CounterSample& s) {
  w.field("cycles", s.cycles);
  w.field("stall_cycles", s.stall_cycles);
  w.field("instructions", s.instructions);
  w.field("dram_dynamic_pj", s.dram_dynamic_pj);
}

constexpr Phase kAllPhases[kPhaseCount] = {
    Phase::kTotal,     Phase::kCompute,  Phase::kEncode,
    Phase::kVerify,    Phase::kLocate,   Phase::kCorrect,
    Phase::kRecompute, Phase::kRollback, Phase::kCheckpoint,
};

}  // namespace

std::string PhaseProfiler::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("phases").begin_object();
  for (Phase p : kAllPhases) {
    const CounterSample s = phase_total(p);
    // "total" (the root's unclaimed time) is always present; other phases
    // only when they ran, so reports stay compact.
    if (p != Phase::kTotal && s.cycles == 0 && s.instructions == 0) {
      bool entered = false;
      for (const PhaseNode& n : nodes_)
        if (n.phase == p && n.enters > 0) entered = true;
      if (!entered) continue;
    }
    w.key(phase_name(p)).begin_object();
    sample_fields(w, s);
    w.end_object();
  }
  w.end_object();
  w.key("tree").begin_array();
  for (const PhaseNode& n : nodes_) {
    w.begin_object();
    w.field("phase", phase_name(n.phase));
    w.field("parent", n.parent);
    w.field("depth", n.depth);
    w.field("enters", n.enters);
    sample_fields(w, n.self);
    w.end_object();
  }
  w.end_array();
  w.key("total").begin_object();
  sample_fields(w, total());
  w.end_object();
  w.field("spans", static_cast<std::uint64_t>(spans_.size()));
  w.field("spans_dropped", dropped_spans_);
  w.end_object();
  return w.take();
}

void PhaseProfiler::publish(Registry& r) const {
  for (Phase p : kAllPhases) {
    const CounterSample s = phase_total(p);
    const std::string base = "profile." + std::string(phase_name(p));
    if (p != Phase::kTotal && s.cycles == 0 && s.instructions == 0) continue;
    r.counter(base + ".cycles").add(s.cycles);
    r.counter(base + ".stall_cycles").add(s.stall_cycles);
    r.counter(base + ".instructions").add(s.instructions);
    r.gauge(base + ".dram_dynamic_pj").add(s.dram_dynamic_pj);
  }
}

namespace {

PhaseProfiler*& profiler_slot() {
  thread_local PhaseProfiler* slot = nullptr;
  return slot;
}

}  // namespace

PhaseProfiler& default_profiler() {
  if (PhaseProfiler* p = profiler_slot(); p != nullptr) return *p;
  thread_local PhaseProfiler owned;
  return owned;
}

ProfilerScope::ProfilerScope(PhaseProfiler& p) : prev_(profiler_slot()) {
  profiler_slot() = &p;
}

ProfilerScope::~ProfilerScope() { profiler_slot() = prev_; }

std::string merged_chrome_trace_json(const Tracer& tracer,
                                     const PhaseProfiler& prof) {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  // Lane labels so Perfetto shows layer names instead of bare tids.
  static constexpr std::string_view kLaneNames[] = {
      "fault layer (DRAM)", "memory controller", "OS",
      "ABFT runtime / recovery", "kernel trace phases", "profiler phases",
  };
  for (unsigned tid = 0; tid < 6; ++tid) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", tid);
    w.key("args").begin_object();
    w.field("name", kLaneNames[tid]);
    w.end_object();
    w.end_object();
  }
  std::vector<TraceEvent> events = tracer.snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });
  for (const TraceEvent& e : events) write_chrome_event(w, e);
  for (const PhaseSpan& s : prof.spans()) {
    w.begin_object();
    w.field("name", phase_name(s.phase));
    w.field("cat", "profile");
    w.field("ph", "X");
    w.field("ts", s.start_cycles);  // 1 simulated cycle == 1 microsecond
    w.field("dur", s.dur_cycles);
    w.field("pid", 1);
    w.field("tid", 5);
    w.key("args").begin_object();
    w.field("depth", static_cast<std::uint64_t>(s.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool write_merged_chrome_trace(const std::string& path, const Tracer& tracer,
                               const PhaseProfiler& prof) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = merged_chrome_trace_json(tracer, prof);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace abftecc::obs
