// Minimal JSON emission for the observability subsystem: a streaming
// writer (used by the metric sinks, the Chrome-trace exporter, and the
// bench reporter) and a strict validator (used by tests to assert the
// exported documents are well formed without an external parser).
//
// The writer produces canonical output: keys in the order written, doubles
// via %.17g (shortest round-trippable), non-finite doubles as the strings
// "NaN" / "Infinity" / "-Infinity" (JSON has no NaN/Inf literals; a string
// keeps the kind and sign where null would erase both).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace abftecc::obs {

/// Escape a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// Streaming JSON writer with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or a begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  /// Splice a pre-serialized JSON value verbatim (e.g. Registry::to_json()).
  JsonWriter& raw(std::string_view json);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  /// true = a value has already been written at this nesting level.
  std::vector<bool> have_value_{false};
  bool pending_key_ = false;
};

/// Strict recursive-descent check that `s` is one complete JSON value.
/// Returns true iff the whole input parses. No document is built: this is
/// the validator the test suite runs over exported traces and reports.
bool json_valid(std::string_view s);

}  // namespace abftecc::obs
