// JSON document parser companion to json.hpp's writer/validator: parses
// one complete JSON value into an owned tree (JsonValue). Built for the
// campaignd wire protocol and checkpoint files, whose documents are small
// (a job spec, a chunk record), so the representation favors fidelity and
// simplicity over speed:
//
//  * integer-looking numbers (no '.', no exponent) are kept as
//    uint64/int64 so 64-bit seeds and physical addresses round-trip
//    exactly (a double would lose bits above 2^53);
//  * objects preserve key order and use linear lookup;
//  * parsing is strict (same grammar json_valid accepts) with a depth cap.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace abftecc::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(bool b) : v_(b) {}
  explicit JsonValue(double d) : v_(d) {}
  explicit JsonValue(std::uint64_t u) : v_(u) {}
  explicit JsonValue(std::int64_t i) : v_(i) {}
  explicit JsonValue(std::string s) : v_(std::move(s)) {}
  explicit JsonValue(Array a) : v_(std::move(a)) {}
  explicit JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_) ||
           std::holds_alternative<std::uint64_t>(v_) ||
           std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    const bool* b = std::get_if<bool>(&v_);
    return b != nullptr ? *b : fallback;
  }
  /// Coerces any number alternative; the writer's non-finite string
  /// sentinels ("NaN"/"Infinity"/"-Infinity") map back to the matching
  /// double so non-finite values round-trip (see json.hpp).
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::string_view as_string_view(
      std::string_view fallback = {}) const {
    const std::string* s = std::get_if<std::string>(&v_);
    return s != nullptr ? std::string_view(*s) : fallback;
  }
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Typed member shorthands (fallback when the key is missing or the
  // member has a different type).
  [[nodiscard]] std::uint64_t u64(std::string_view key,
                                  std::uint64_t fallback = 0) const {
    const JsonValue* m = find(key);
    return m != nullptr ? m->as_u64(fallback) : fallback;
  }
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const {
    const JsonValue* m = find(key);
    return m != nullptr ? m->as_double(fallback) : fallback;
  }
  [[nodiscard]] bool boolean(std::string_view key,
                             bool fallback = false) const {
    const JsonValue* m = find(key);
    return m != nullptr ? m->as_bool(fallback) : fallback;
  }
  [[nodiscard]] std::string_view str(std::string_view key,
                                     std::string_view fallback = {}) const {
    const JsonValue* m = find(key);
    return m != nullptr ? m->as_string_view(fallback) : fallback;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::uint64_t, std::int64_t,
               std::string, Array, Object>
      v_;
};

/// Parse one complete JSON value (trailing whitespace allowed, anything
/// else after it is an error). Returns nullopt and fills `error` (when
/// given) with a position-annotated message on malformed input.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace abftecc::obs
