// Hierarchical phase profiler (observability tentpole, PR 5): RAII phase
// spans (PhaseScope) nest into a tree, and every enter/exit transition
// samples the simulated machine's counters (cycles, DRAM stalls,
// instructions, DRAM dynamic energy) and attributes the delta to the phase
// that was running. Attribution is SELF time: each counter tick lands in
// exactly one tree node, so the sum of self times over the whole tree
// equals the counters' total advance between start() and stop() exactly --
// no hand subtraction, no residual (the property fig3_overhead_breakdown
// asserts).
//
// Like the Registry and Tracer, the profiler is thread-confined:
// default_profiler() is per-thread, ProfilerScope overrides it for a
// lexical scope, and sim::Session installs a private one under
// Builder::private_observability(). Disabled (the default), a PhaseScope
// costs one predicted branch.
//
// The counter source is a pluggable Sampler so the profiler has no
// dependency on memsim; sim::Session binds it to the node's MemorySystem.
// Without a sampler all counter deltas are zero but the span log still
// records enter/exit nesting (useful for pure-software ABFT).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace abftecc::obs {

class Registry;
class Tracer;

/// Phase taxonomy of the cooperative ABFT pipeline. kTotal is the implicit
/// root: time between start() and stop() not claimed by any scope.
enum class Phase : std::uint8_t {
  kTotal,       ///< root: unattributed time (harness, allocation, ...)
  kCompute,     ///< the kernel's numerical work proper
  kEncode,      ///< checksum encode / freeze
  kVerify,      ///< checksum verification passes
  kLocate,      ///< runtime drain of the OS error log
  kCorrect,     ///< ABFT element correction (tier 1)
  kRecompute,   ///< bounded block recompute (tier 2)
  kRollback,    ///< checkpoint restore (tier 3)
  kCheckpoint,  ///< checkpoint commit
};

inline constexpr std::size_t kPhaseCount = 9;

[[nodiscard]] std::string_view phase_name(Phase p);

/// One point-in-time reading of the simulated machine's monotone counters.
struct CounterSample {
  std::uint64_t cycles = 0;        ///< simulated CPU cycles
  std::uint64_t stall_cycles = 0;  ///< cycles stalled on DRAM demand reads
  std::uint64_t instructions = 0;
  double dram_dynamic_pj = 0.0;    ///< DRAM dynamic energy

  CounterSample operator-(const CounterSample& o) const {
    return {cycles - o.cycles, stall_cycles - o.stall_cycles,
            instructions - o.instructions, dram_dynamic_pj - o.dram_dynamic_pj};
  }
  CounterSample& operator+=(const CounterSample& o) {
    cycles += o.cycles;
    stall_cycles += o.stall_cycles;
    instructions += o.instructions;
    dram_dynamic_pj += o.dram_dynamic_pj;
    return *this;
  }
};

/// Aggregated tree node: one (parent, phase) pair. `self` excludes time
/// spent in children -- sum self over all nodes to get the total.
struct PhaseNode {
  Phase phase = Phase::kTotal;
  int parent = -1;  ///< index into nodes(); -1 for the root
  int depth = 0;    ///< root is 0
  std::uint64_t enters = 0;
  CounterSample self;
};

/// One dynamic span, for the Chrome-trace timeline (bounded log).
struct PhaseSpan {
  std::uint64_t start_cycles = 0;
  std::uint64_t dur_cycles = 0;
  Phase phase = Phase::kTotal;
  std::uint16_t depth = 1;  ///< nesting depth below the root
};

class PhaseProfiler {
 public:
  using Sampler = std::function<CounterSample()>;
  static constexpr std::size_t kDefaultSpanCapacity = 4096;

  explicit PhaseProfiler(std::size_t span_capacity = kDefaultSpanCapacity)
      : span_capacity_(span_capacity) {}

  /// Bind the counter source (sim::Session points this at its
  /// MemorySystem). May be changed only while disabled.
  void set_sampler(Sampler s) { sampler_ = std::move(s); }

  /// Begin profiling: samples the counters into the root node. Idempotent.
  void start();
  /// Close every open span, attribute the final interval, and stop
  /// sampling. Results are stable after this. Idempotent.
  void stop();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Forget all attribution and spans; keeps the sampler. Implies stop().
  void reset();

  /// Hot path: called by PhaseScope. No-ops when disabled.
  void enter(Phase p);
  void exit();

  // --- results (read after stop()) ----------------------------------------

  /// The attribution tree in creation order; nodes()[0] is the root.
  [[nodiscard]] const std::vector<PhaseNode>& nodes() const { return nodes_; }
  /// Self time summed over every node with this phase.
  [[nodiscard]] CounterSample phase_total(Phase p) const;
  /// Counter advance between start() and stop() == sum of node self times.
  [[nodiscard]] CounterSample total() const;

  [[nodiscard]] const std::vector<PhaseSpan>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_spans_; }

  /// {"phases":{...per-phase self totals...},"tree":[...],"total":{...}}
  [[nodiscard]] std::string to_json() const;

  /// Write per-phase self totals into `r` as `profile.<phase>.cycles`,
  /// `.stall_cycles`, `.instructions` counters and `.dram_pj` gauges.
  void publish(Registry& r) const;

 private:
  /// Attribute counters since the last transition to the current node.
  void attribute();
  [[nodiscard]] CounterSample sample() const {
    return sampler_ ? sampler_() : CounterSample{};
  }
  int child_of(int parent, Phase p);

  Sampler sampler_;
  std::vector<PhaseNode> nodes_;
  std::vector<int> stack_;  ///< node indices; stack_[0] is the root
  struct OpenSpan {
    std::uint64_t start_cycles;
    Phase phase;
  };
  std::vector<OpenSpan> open_spans_;
  std::vector<PhaseSpan> spans_;
  std::size_t span_capacity_;
  std::uint64_t dropped_spans_ = 0;
  CounterSample last_;
  bool enabled_ = false;
};

/// Profiler the instrumented layers on this thread record into. Disabled
/// until a harness calls start(). Per-thread like default_registry().
PhaseProfiler& default_profiler();

/// RAII override of this thread's default_profiler(); same nesting
/// contract as RegistryScope / TracerScope.
class ProfilerScope {
 public:
  explicit ProfilerScope(PhaseProfiler& p);
  ~ProfilerScope();
  ProfilerScope(const ProfilerScope&) = delete;
  ProfilerScope& operator=(const ProfilerScope&) = delete;

 private:
  PhaseProfiler* prev_;
};

/// RAII phase span on this thread's default_profiler(). Branch-only when
/// the profiler is disabled.
class PhaseScope {
 public:
  explicit PhaseScope(Phase p) : active_(default_profiler().enabled()) {
    if (active_) default_profiler().enter(p);
  }
  ~PhaseScope() {
    if (active_) default_profiler().exit();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  bool active_;
};

/// Chrome trace_event document merging the tracer's events (lanes 0-4)
/// with the profiler's phase spans on their own lane (tid 5), plus
/// thread_name metadata so Perfetto labels the lanes. Either source may be
/// empty.
[[nodiscard]] std::string merged_chrome_trace_json(const Tracer& tracer,
                                                   const PhaseProfiler& prof);

/// Write merged_chrome_trace_json() to `path`; false on I/O failure.
bool write_merged_chrome_trace(const std::string& path, const Tracer& tracer,
                               const PhaseProfiler& prof);

}  // namespace abftecc::obs
