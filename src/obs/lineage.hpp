// Fault provenance ledger (PR-6 tentpole): per-fault causal lineage from
// injection to terminal outcome, recorded as typed stage events.
//
// Where the tracer (obs/trace.hpp) answers "what happened, in order?" for
// the whole run, the ledger answers "what happened to THIS fault?": every
// injected fault gets a lineage ID at its injection site, and each layer
// it passes through -- the ECC decode in the memory controller, the OS
// interrupt/expose/panic decision, the ABFT runtime's locate and the
// kernel's correction, the recovery ladder tier taken -- appends a stage
// event to its record. Layers attribute stages by physical cache line
// (addr / kLineBytes), so no lineage context has to be threaded through
// function signatures.
//
// Lifecycle contract (the reconciliation invariant, campaign-enforced):
//   * every fault record reaches EXACTLY ONE hardware resolution stage
//     (ecc_corrected / ecc_detected_uncorrectable / ecc_silent_miss /
//     writeback_cleared). Zero resolutions is an orphan, more than one is
//     a double-count; both are hard errors in campaign reconciliation.
//   * seal() stamps one terminal outcome label on the whole trial; across
//     a campaign the per-trial terminals must partition 1:1 into the
//     outcome taxonomy counts (campaign::reconcile_lineage checks this).
// One deliberate exception makes the ledger a cross-check on the
// simulator itself: a pending fault dropped because its line was never
// backed by an allocation is NOT resolved, so it surfaces as an orphan.
//
// Like the tracer, the ledger is thread-confined, OFF by default, and
// costs one predicted branch per record point when disabled -- and every
// record point sits on a fault/interrupt path, never on the memory-access
// hot path, so disabled runs are bench-identical (benchgate-enforced).
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace abftecc::obs {

/// Stage taxonomy along the cooperative HW/SW pipeline. Order follows the
/// causal chain; is_resolution() marks the hardware-resolution subset.
enum class LineageStage : std::uint8_t {
  kInject,           ///< fault created (a0=bit or chip, tag=kind)
  // hardware resolution (exactly one per fault)
  kEccCorrected,     ///< line decode fixed it in the controller (a0=words)
  kEccDetected,      ///< detected-uncorrectable, error register written
  kEccSilent,        ///< corruption passed the decode unnoticed
  kWritebackCleared, ///< dirty writeback overwrote it before any read
  // OS handling
  kEccInterrupt,     ///< MC interrupt entered the OS handler
  kExposed,          ///< published to the exposed-error log (a0=repeats)
  kLogDropped,       ///< exposed-log full, record dropped (storm overload)
  kEscalated,        ///< would-be panic absorbed by the recovery ladder
  kPanic,            ///< uncorrectable outside any coverage
  // ABFT runtime / kernels
  kAbftLocated,      ///< drain mapped it to (a0=structure, a1=element)
  kAbftCorrected,    ///< kernel checksum correction rewrote the element
  // recovery ladder (trial-scope: not tied to one fault's line)
  kRecompute,        ///< tier-2 block recompute (a0=attempt)
  kRollback,         ///< verified checkpoint restored (a0=epoch)
  kUnrecoverable,    ///< ladder exhausted
  kTerminal,         ///< trial sealed with its outcome label (tag=outcome)
};

[[nodiscard]] std::string_view to_string(LineageStage s);

/// True for the hardware-resolution stages every fault must reach once.
[[nodiscard]] constexpr bool is_resolution(LineageStage s) {
  return s == LineageStage::kEccCorrected ||
         s == LineageStage::kEccDetected ||
         s == LineageStage::kEccSilent ||
         s == LineageStage::kWritebackCleared;
}

/// One stage event. fault == 0 means trial-scope (recovery tier, seal).
struct LineageEvent {
  std::uint32_t fault = 0;  ///< 1-based lineage ID; 0 = trial-scope
  LineageStage stage = LineageStage::kInject;
  std::uint64_t cycle = 0;  ///< simulated CPU cycle (off the determinism
                            ///< surface, like TrialOutcome::cycles)
  std::uint64_t addr = 0;   ///< physical address, when the stage has one
  std::uint64_t a0 = 0;     ///< stage-specific argument (see LineageStage)
  std::uint64_t a1 = 0;
  const char* tag = nullptr;  ///< static-string label (kind, outcome, ...)
};

/// Per-fault summary row, updated as stage events arrive.
struct LineageFault {
  std::uint32_t id = 0;       ///< 1-based, dense per trial
  std::uint64_t phys = 0;     ///< injected physical byte address
  std::uint32_t bit = 0;      ///< bit-in-word (bit flips) or chip index
  const char* kind = "";      ///< "bit_flip" / "chip_kill" / "direct"
  LineageStage resolution = LineageStage::kInject;  ///< last resolution
  std::uint32_t resolution_count = 0;  ///< 0 = orphan, >1 = double-count
  bool exposed = false;       ///< reached the OS exposed-error log
  bool located = false;       ///< ABFT drain mapped it to an element
  std::string_view terminal;  ///< trial outcome label; empty until seal()
};

class LineageLedger {
 public:
  /// Attribution granularity: one DRAM/ECC line. Kept in sync with
  /// ecc::kLineBytes by a static_assert at the injection site (obs cannot
  /// depend on ecc).
  static constexpr std::uint64_t kLineBytes = 64;
  /// Event-stream safety cap per trial; overflow is counted, not fatal.
  static constexpr std::size_t kMaxEvents = 1u << 16;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Drop all records and reopen the ledger (terminal label cleared).
  void clear();

  /// Open a new fault record; returns its lineage ID (0 when disabled).
  std::uint32_t fault_injected(std::uint64_t phys, std::uint32_t bit,
                               const char* kind, std::uint64_t cycle);

  /// Apply a hardware-resolution stage to one fault by ID.
  void resolve_fault(std::uint32_t id, LineageStage s, std::uint64_t cycle,
                     std::uint64_t a0 = 0);

  /// Apply a hardware-resolution stage to every still-unresolved fault on
  /// the cache line containing `addr` (one line decode resolves all of a
  /// line's pending faults together; their IDs stay distinct).
  void resolve_line(std::uint64_t addr, LineageStage s, std::uint64_t cycle,
                    std::uint64_t a0 = 0);

  /// Append a non-resolution stage to every fault on `addr`'s line
  /// (interrupt, expose, drop, locate, correct, panic, escalate).
  void line_event(std::uint64_t addr, LineageStage s, std::uint64_t cycle,
                  std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                  const char* tag = nullptr);

  /// Append a trial-scope stage (recovery tier) under fault ID 0.
  void trial_event(LineageStage s, std::uint64_t cycle, std::uint64_t a0 = 0,
                   const char* tag = nullptr);

  /// Stamp the trial's terminal outcome label onto every fault record and
  /// append the kTerminal event. `outcome` must outlive the ledger
  /// (campaign passes the static to_string(Outcome) literals).
  void seal(std::string_view outcome);
  [[nodiscard]] bool sealed() const { return sealed_; }
  [[nodiscard]] std::string_view terminal() const { return terminal_; }

  [[nodiscard]] const std::vector<LineageFault>& faults() const {
    return faults_;
  }
  [[nodiscard]] const std::vector<LineageEvent>& events() const {
    return events_;
  }
  /// Faults with no hardware resolution (so far).
  [[nodiscard]] std::uint64_t orphans() const;
  /// Faults resolved more than once (always a bug somewhere).
  [[nodiscard]] std::uint64_t double_resolved() const;
  /// Events discarded after the kMaxEvents safety cap was hit.
  [[nodiscard]] std::uint64_t events_dropped() const {
    return events_dropped_;
  }

 private:
  static constexpr std::uint64_t line_of(std::uint64_t addr) {
    return addr / kLineBytes;
  }
  void push(const LineageEvent& e);

  bool enabled_ = false;
  bool sealed_ = false;
  std::string_view terminal_;
  std::vector<LineageFault> faults_;
  std::vector<LineageEvent> events_;
  std::uint64_t events_dropped_ = 0;
  /// line number -> lineage IDs of faults injected on that line.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_line_;
};

/// Ledger the instrumented layers on this thread record into. Disabled
/// until a campaign trial (or a test) enables it; per-thread and
/// overridable exactly like obs::default_tracer().
LineageLedger& default_lineage();

/// RAII override of this thread's default_lineage(); same LIFO nesting
/// contract as TracerScope / RegistryScope.
class LineageScope {
 public:
  explicit LineageScope(LineageLedger& l);
  ~LineageScope();
  LineageScope(const LineageScope&) = delete;
  LineageScope& operator=(const LineageScope&) = delete;

 private:
  LineageLedger* prev_;
};

}  // namespace abftecc::obs
