#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace abftecc::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  ABFTECC_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()));
  ABFTECC_REQUIRE(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t n) {
  ABFTECC_REQUIRE(first > 0.0 && factor > 1.0);
  std::vector<double> out;
  out.reserve(n);
  double b = first;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

double Histogram::upper_bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

void Registry::reset() {
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.max = h->max();
    for (std::size_t i = 0; i + 1 < h->num_buckets(); ++i)
      row.bounds.push_back(h->upper_bound(i));
    for (std::size_t i = 0; i < h->num_buckets(); ++i)
      row.buckets.push_back(h->bucket_count(i));
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void Registry::write_pretty(std::FILE* f) const {
  for (const auto& [name, c] : counters_)
    std::fprintf(f, "%-44s %20llu\n", name.c_str(),
                 static_cast<unsigned long long>(c->value()));
  for (const auto& [name, g] : gauges_)
    std::fprintf(f, "%-44s %20.6g\n", name.c_str(), g->value());
  for (const auto& [name, h] : histograms_) {
    std::fprintf(f, "%-44s count %llu mean %.3g max %.3g\n", name.c_str(),
                 static_cast<unsigned long long>(h->count()), h->mean(),
                 h->max());
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      if (h->bucket_count(i) == 0) continue;
      if (i + 1 < h->num_buckets())
        std::fprintf(f, "    le %-12.6g %llu\n", h->upper_bound(i),
                     static_cast<unsigned long long>(h->bucket_count(i)));
      else
        std::fprintf(f, "    le +inf        %llu\n",
                     static_cast<unsigned long long>(h->bucket_count(i)));
    }
  }
}

namespace {

void histogram_json(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.field("count", h.count());
  w.field("sum", h.sum());
  w.field("max", h.max());
  w.key("bounds").begin_array();
  for (std::size_t i = 0; i + 1 < h.num_buckets(); ++i)
    w.value(h.upper_bound(i));
  w.end_array();
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < h.num_buckets(); ++i) w.value(h.bucket_count(i));
  w.end_array();
  w.end_object();
}

}  // namespace

void Registry::write_json_lines(std::FILE* f) const {
  for (const auto& [name, c] : counters_) {
    JsonWriter w;
    w.begin_object()
        .field("type", "counter")
        .field("name", std::string_view(name))
        .field("value", c->value())
        .end_object();
    std::fprintf(f, "%s\n", w.str().c_str());
  }
  for (const auto& [name, g] : gauges_) {
    JsonWriter w;
    w.begin_object()
        .field("type", "gauge")
        .field("name", std::string_view(name))
        .field("value", g->value())
        .end_object();
    std::fprintf(f, "%s\n", w.str().c_str());
  }
  for (const auto& [name, h] : histograms_) {
    JsonWriter w;
    w.begin_object()
        .field("type", "histogram")
        .field("name", std::string_view(name));
    w.key("data");
    histogram_json(w, *h);
    w.end_object();
    std::fprintf(f, "%s\n", w.str().c_str());
  }
}

void Registry::write_csv(std::FILE* f) const {
  std::fprintf(f, "name,kind,value\n");
  for (const auto& [name, c] : counters_)
    std::fprintf(f, "%s,counter,%llu\n", name.c_str(),
                 static_cast<unsigned long long>(c->value()));
  for (const auto& [name, g] : gauges_)
    std::fprintf(f, "%s,gauge,%.17g\n", name.c_str(), g->value());
  for (const auto& [name, h] : histograms_) {
    std::fprintf(f, "%s.count,histogram,%llu\n", name.c_str(),
                 static_cast<unsigned long long>(h->count()));
    std::fprintf(f, "%s.sum,histogram,%.17g\n", name.c_str(), h->sum());
    std::fprintf(f, "%s.max,histogram,%.17g\n", name.c_str(), h->max());
  }
}

std::string Registry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_)
    w.field(std::string_view(name), c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_)
    w.field(std::string_view(name), g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    histogram_json(w, *h);
  }
  w.end_object();
  w.end_object();
  return w.take();
}

namespace {

Registry*& registry_slot() {
  thread_local Registry* slot = nullptr;
  return slot;
}

}  // namespace

Registry& default_registry() {
  if (Registry* r = registry_slot(); r != nullptr) return *r;
  thread_local Registry owned;
  return owned;
}

RegistryScope::RegistryScope(Registry& r) : prev_(registry_slot()) {
  registry_slot() = &r;
}

RegistryScope::~RegistryScope() { registry_slot() = prev_; }

}  // namespace abftecc::obs
