#include "obs/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace abftecc::obs {

namespace {

/// %.17g like the JSON writer: shortest round-trippable double.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------- rings --

TimeSeriesRing::TimeSeriesRing(std::size_t capacity)
    : buf_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesRing::push(double t, double v) {
  buf_[next_] = TsPoint{t, v};
  next_ = (next_ + 1) % buf_.size();
  if (size_ < buf_.size()) ++size_;
  ++pushed_;
}

TsPoint TimeSeriesRing::at(std::size_t i) const {
  assert(i < size_);
  // Oldest point sits at next_ once the ring has wrapped, at 0 before.
  const std::size_t oldest = size_ == buf_.size() ? next_ : 0;
  return buf_[(oldest + i) % buf_.size()];
}

// -------------------------------------------------------------- sampler --

TelemetrySampler::TelemetrySampler(TelemetryOptions opt) : opt_(opt) {
  if (opt_.capacity == 0) opt_.capacity = 1;
}

TelemetrySampler::Series& TelemetrySampler::series_for(std::string_view name,
                                                       SeriesKind kind) {
  for (Series& s : series_) {
    if (s.kind == kind && s.name == name) return s;
  }
  series_.push_back(Series{std::string(name), kind,
                           TimeSeriesRing(opt_.capacity), 0.0});
  return series_.back();
}

const TelemetrySampler::Series* TelemetrySampler::find(std::string_view name,
                                                       SeriesKind kind) const {
  for (const Series& s : series_) {
    if (s.kind == kind && s.name == name) return &s;
  }
  return nullptr;
}

bool TelemetrySampler::sample(const Registry& r, double t_s) {
  if (have_last_t_ && t_s - last_t_ < opt_.min_interval_s) return false;
  last_t_ = t_s;
  have_last_t_ = true;
  ++samples_;

  const MetricsSnapshot snap = r.snapshot();
  for (const auto& [name, value] : snap.counters) {
    Series& s = series_for(name, SeriesKind::kCounter);
    const auto v = static_cast<double>(value);
    s.ring.push(t_s, v - s.last);
    s.last = v;
  }
  for (const auto& [name, value] : snap.gauges) {
    Series& s = series_for(name, SeriesKind::kGauge);
    s.ring.push(t_s, value);
    s.last = value;
  }
  for (const MetricsSnapshot::HistogramRow& h : snap.histograms) {
    Series& c = series_for(h.name, SeriesKind::kHistogramCount);
    const auto count = static_cast<double>(h.count);
    c.ring.push(t_s, count - c.last);
    c.last = count;
    Series& s = series_for(h.name, SeriesKind::kHistogramSum);
    s.ring.push(t_s, h.sum - s.last);
    s.last = h.sum;
  }
  return true;
}

bool TelemetrySampler::sample(const Registry& r) {
  const std::uint64_t now = steady_now_ns();
  if (!have_clock_t0_) {
    clock_t0_ = now;
    have_clock_t0_ = true;
  }
  return sample(r, static_cast<double>(now - clock_t0_) * 1e-9);
}

std::string TelemetrySampler::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "timeseries-v1");
  w.field("samples", samples_);
  w.key("series").begin_array();
  for (const Series& s : series_) {
    w.begin_object();
    w.field("name", s.name);
    w.field("kind", to_string(s.kind));
    w.field("dropped",
            static_cast<std::uint64_t>(s.ring.total_pushed() - s.ring.size()));
    w.key("points").begin_array();
    for (std::size_t i = 0; i < s.ring.size(); ++i) {
      const TsPoint p = s.ring.at(i);
      w.begin_array().value(p.t).value(p.v).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

// ----------------------------------------------------- OpenMetrics text --

std::string openmetrics_name(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string openmetrics_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

constexpr std::string_view type_name(OpenMetricsWriter::Type t) {
  switch (t) {
    case OpenMetricsWriter::Type::kCounter: return "counter";
    case OpenMetricsWriter::Type::kGauge: return "gauge";
    case OpenMetricsWriter::Type::kHistogram: return "histogram";
  }
  return "?";
}

/// Exposition value formatting. +Inf spelling is the OpenMetrics one.
std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  return format_double(v);
}

}  // namespace

void OpenMetricsWriter::family(std::string_view name, Type t) {
  std::string n = openmetrics_name(name);
  assert(std::find(seen_.begin(), seen_.end(), n) == seen_.end() &&
         "exposition family opened twice");
  seen_.push_back(n);
  out_ += "# TYPE ";
  out_ += n;
  out_ += ' ';
  out_ += type_name(t);
  out_ += '\n';
  family_ = std::move(n);
  family_type_ = t;
}

void OpenMetricsWriter::sample(double value,
                               const std::vector<MetricLabel>& labels,
                               std::string_view suffix) {
  assert(!family_.empty() && "sample before family()");
  out_ += family_;
  if (suffix.empty() && family_type_ == Type::kCounter) suffix = "_total";
  out_ += suffix;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const MetricLabel& l : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += l.name;
      out_ += "=\"";
      out_ += openmetrics_escape(l.value);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
  out_ += format_value(value);
  out_ += '\n';
}

void OpenMetricsWriter::histogram(const std::vector<double>& bounds,
                                  const std::vector<std::uint64_t>& buckets,
                                  double sum,
                                  const std::vector<MetricLabel>& labels) {
  assert(family_type_ == Type::kHistogram);
  assert(buckets.size() == bounds.size() + 1);
  std::uint64_t cumulative = 0;
  std::vector<MetricLabel> with_le = labels;
  with_le.push_back(MetricLabel{"le", ""});
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += buckets[i];
    with_le.back().value = format_value(bounds[i]);
    sample(static_cast<double>(cumulative), with_le, "_bucket");
  }
  cumulative += buckets.back();
  with_le.back().value = "+Inf";
  sample(static_cast<double>(cumulative), with_le, "_bucket");
  sample(static_cast<double>(cumulative), labels, "_count");
  sample(sum, labels, "_sum");
}

void OpenMetricsWriter::snapshot(const MetricsSnapshot& snap,
                                 const std::vector<MetricLabel>& base_labels) {
  for (const auto& [name, value] : snap.counters) {
    family(name, Type::kCounter);
    sample(static_cast<double>(value), base_labels);
  }
  for (const auto& [name, value] : snap.gauges) {
    family(name, Type::kGauge);
    sample(value, base_labels);
  }
  for (const MetricsSnapshot::HistogramRow& h : snap.histograms) {
    family(h.name, Type::kHistogram);
    histogram(h.bounds, h.buckets, h.sum, base_labels);
  }
}

std::string OpenMetricsWriter::take() {
  out_ += "# EOF\n";
  family_.clear();
  seen_.clear();
  return std::move(out_);
}

}  // namespace abftecc::obs
