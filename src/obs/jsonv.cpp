#include "obs/jsonv.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace abftecc::obs {

namespace {

const std::string kEmptyString;
const JsonValue::Array kEmptyArray;
const JsonValue::Object kEmptyObject;

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  std::string err;

  bool fail(const std::string& msg) {
    if (err.empty())
      err = "json: byte " + std::to_string(i) + ": " + msg;
    return false;
  }

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return fail("bad literal");
    i += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (i >= s.size() || s[i] != '"') return fail("expected '\"'");
    ++i;
    out->clear();
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        ++i;
        continue;
      }
      if (++i >= s.size()) return fail("truncated escape");
      const char e = s[i++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (i + 4 > s.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8. Surrogate pairs: a high
          // surrogate must be followed by \uDC00..\uDFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (i + 6 > s.size() || s[i] != '\\' || s[i + 1] != 'u')
              return fail("unpaired high surrogate");
            i += 2;
            unsigned lo = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s[i++];
              lo <<= 4;
              if (h >= '0' && h <= '9')
                lo |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                lo |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                lo |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad hex digit in \\u escape");
            }
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = i;
    bool negative = false;
    bool integral = true;
    if (i < s.size() && s[i] == '-') {
      negative = true;
      ++i;
    }
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      return fail("bad number");
    if (s[i] == '0') {
      ++i;
    } else {
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (i < s.size() && s[i] == '.') {
      integral = false;
      ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        return fail("bad fraction");
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      integral = false;
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        return fail("bad exponent");
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    const std::string text(s.substr(start, i - start));
    errno = 0;
    if (integral) {
      char* end = nullptr;
      if (negative) {
        const long long v = std::strtoll(text.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          *out = JsonValue(static_cast<std::int64_t>(v));
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          *out = JsonValue(static_cast<std::uint64_t>(v));
          return true;
        }
      }
      errno = 0;  // integer overflow: fall through to double
    }
    *out = JsonValue(std::strtod(text.c_str(), nullptr));
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    switch (s[i]) {
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue();
        return true;
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue(false);
        return true;
      case '"': {
        std::string str;
        if (!parse_string(&str)) return false;
        *out = JsonValue(std::move(str));
        return true;
      }
      case '[': {
        ++i;
        JsonValue::Array arr;
        skip_ws();
        if (i < s.size() && s[i] == ']') {
          ++i;
          *out = JsonValue(std::move(arr));
          return true;
        }
        for (;;) {
          JsonValue elem;
          if (!parse_value(&elem, depth + 1)) return false;
          arr.push_back(std::move(elem));
          skip_ws();
          if (i >= s.size()) return fail("unterminated array");
          if (s[i] == ',') {
            ++i;
            continue;
          }
          if (s[i] == ']') {
            ++i;
            *out = JsonValue(std::move(arr));
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++i;
        JsonValue::Object obj;
        skip_ws();
        if (i < s.size() && s[i] == '}') {
          ++i;
          *out = JsonValue(std::move(obj));
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (i >= s.size() || s[i] != ':') return fail("expected ':'");
          ++i;
          JsonValue val;
          if (!parse_value(&val, depth + 1)) return false;
          obj.emplace_back(std::move(key), std::move(val));
          skip_ws();
          if (i >= s.size()) return fail("unterminated object");
          if (s[i] == ',') {
            ++i;
            continue;
          }
          if (s[i] == '}') {
            ++i;
            *out = JsonValue(std::move(obj));
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default: return parse_number(out);
    }
  }
};

}  // namespace

double JsonValue::as_double(double fallback) const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_))
    return static_cast<double>(*u);
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_))
    return static_cast<double>(*i);
  // JSON has no NaN/Inf literals, so JsonWriter emits non-finite doubles
  // as the strings "NaN"/"Infinity"/"-Infinity" (json.cpp). Map those
  // sentinels back so a non-finite value survives the round trip instead
  // of collapsing to the fallback.
  if (const std::string* s = std::get_if<std::string>(&v_)) {
    if (*s == "NaN") return std::numeric_limits<double>::quiet_NaN();
    if (*s == "Infinity") return std::numeric_limits<double>::infinity();
    if (*s == "-Infinity") return -std::numeric_limits<double>::infinity();
  }
  return fallback;
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) return *u;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_))
    return *i >= 0 ? static_cast<std::uint64_t>(*i) : fallback;
  if (const double* d = std::get_if<double>(&v_))
    return *d >= 0.0 ? static_cast<std::uint64_t>(*d) : fallback;
  return fallback;
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_))
    return *u <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max())
               ? static_cast<std::int64_t>(*u)
               : fallback;
  if (const double* d = std::get_if<double>(&v_))
    return static_cast<std::int64_t>(*d);
  return fallback;
}

const std::string& JsonValue::as_string() const {
  const std::string* s = std::get_if<std::string>(&v_);
  return s != nullptr ? *s : kEmptyString;
}

const JsonValue::Array& JsonValue::as_array() const {
  const Array* a = std::get_if<Array>(&v_);
  return a != nullptr ? *a : kEmptyArray;
}

const JsonValue::Object& JsonValue::as_object() const {
  const Object* o = std::get_if<Object>(&v_);
  return o != nullptr ? *o : kEmptyObject;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&v_);
  if (o == nullptr) return nullptr;
  for (const Member& m : *o)
    if (m.first == key) return &m.second;
  return nullptr;
}

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  Parser p{text};
  JsonValue v;
  if (!p.parse_value(&v, 0)) {
    if (error != nullptr) *error = p.err;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.i != text.size()) {
    if (error != nullptr)
      *error = "json: byte " + std::to_string(p.i) + ": trailing garbage";
    return std::nullopt;
  }
  return v;
}

}  // namespace abftecc::obs
