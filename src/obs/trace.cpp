#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace abftecc::obs {

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kFaultInject: return "fault.inject";
    case EventKind::kChipKillInject: return "fault.chip_kill";
    case EventKind::kFaultCleared: return "fault.cleared_by_writeback";
    case EventKind::kSilentCorruption: return "fault.silent_corruption";
    case EventKind::kEccCorrected: return "mc.ecc_corrected";
    case EventKind::kEccUncorrectable: return "mc.ecc_uncorrectable";
    case EventKind::kDemandMiss: return "memsim.demand_miss";
    case EventKind::kEccInterrupt: return "os.ecc_interrupt";
    case EventKind::kErrorExposed: return "os.error_exposed";
    case EventKind::kPanic: return "os.panic";
    case EventKind::kPageRetired: return "os.page_retired";
    case EventKind::kEscalated: return "os.escalated";
    case EventKind::kEccRepromoted: return "os.ecc_repromoted";
    case EventKind::kErrorsDrained: return "abft.errors_drained";
    case EventKind::kErrorLocated: return "abft.error_located";
    case EventKind::kVerify: return "abft.verify";
    case EventKind::kRecover: return "abft.recover";
    case EventKind::kEncode: return "abft.encode";
    case EventKind::kRecompute: return "recovery.recompute";
    case EventKind::kCheckpoint: return "recovery.checkpoint";
    case EventKind::kRollback: return "recovery.rollback";
  }
  return "?";
}

unsigned lane_of(EventKind k) {
  switch (k) {
    case EventKind::kFaultInject:
    case EventKind::kChipKillInject:
    case EventKind::kFaultCleared:
    case EventKind::kSilentCorruption:
      return 0;  // fault layer (DRAM cells)
    case EventKind::kEccCorrected:
    case EventKind::kEccUncorrectable:
    case EventKind::kDemandMiss:
      return 1;  // memory controller / memory system
    case EventKind::kEccInterrupt:
    case EventKind::kErrorExposed:
    case EventKind::kPanic:
    case EventKind::kPageRetired:
    case EventKind::kEscalated:
    case EventKind::kEccRepromoted:
      return 2;  // OS layer
    case EventKind::kErrorsDrained:
    case EventKind::kErrorLocated:
    case EventKind::kRecompute:
    case EventKind::kCheckpoint:
    case EventKind::kRollback:
      return 3;  // ABFT runtime / recovery ladder
    case EventKind::kVerify:
    case EventKind::kRecover:
    case EventKind::kEncode:
      return 4;  // FT kernel phases
  }
  return 5;
}

Tracer::Tracer(std::size_t capacity) { set_capacity(capacity); }

void Tracer::set_capacity(std::size_t capacity) {
  ABFTECC_REQUIRE(capacity > 0);
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  count_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

void Tracer::clear() {
  head_ = 0;
  count_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

void Tracer::push(const TraceEvent& e) {
  TraceEvent& slot = ring_[head_];
  if (count_ == ring_.size())
    ++dropped_;  // overwriting the oldest survivor
  else
    ++count_;
  slot = e;
  slot.seq = next_seq_++;
  head_ = (head_ + 1) % ring_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const std::size_t start =
      (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void write_chrome_event(JsonWriter& w, const TraceEvent& e) {
  w.begin_object();
  w.field("name",
          e.tag != nullptr ? std::string_view(e.tag) : to_string(e.kind));
  w.field("cat", to_string(e.kind));
  w.field("ph", is_phase(e.kind) ? "X" : "i");
  w.field("ts", e.ts);  // 1 simulated cycle == 1 trace microsecond
  if (is_phase(e.kind))
    w.field("dur", e.dur);
  else
    w.field("s", "g");  // instant scope: global
  w.field("pid", 1);
  w.field("tid", lane_of(e.kind));
  w.key("args").begin_object();
  w.field("seq", e.seq);
  if (e.addr != 0) w.field("phys_addr", e.addr);
  w.field("a0", e.a0);
  w.field("a1", e.a1);
  w.end_object();
  w.end_object();
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> events = snapshot();
  // Importers want a monotone timeline; phase events are recorded at phase
  // END with ts = start, so record order is not ts order.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const auto& e : events) write_chrome_event(w, e);
  w.end_array();
  w.end_object();
  return w.take();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

Tracer*& tracer_slot() {
  thread_local Tracer* slot = nullptr;
  return slot;
}

}  // namespace

Tracer& default_tracer() {
  if (Tracer* t = tracer_slot(); t != nullptr) return *t;
  thread_local Tracer owned;
  return owned;
}

TracerScope::TracerScope(Tracer& t) : prev_(tracer_slot()) {
  tracer_slot() = &t;
}

TracerScope::~TracerScope() { tracer_slot() = prev_; }

}  // namespace abftecc::obs
