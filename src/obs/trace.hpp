// Structured event tracer (tentpole piece 2): a bounded ring buffer of
// typed events timestamped in simulated CPU cycles, recording the whole
// cooperative pipeline -- fault injection in DRAM, ECC decode at the
// memory controller, the OS interrupt and expose/panic decision, the ABFT
// runtime drain, and each FT kernel's verify/recover phases.
//
// The tracer is OFF by default and costs one predicted branch per trace
// point when disabled (the acceptance bar: no measurable overhead on the
// micro_kernels suite). When enabled, recording is a bounded-memory ring
// write: the buffer never grows, old events are overwritten and counted
// in dropped().
//
// Export: Chrome trace_event JSON, loadable in chrome://tracing and
// Perfetto. One simulated cycle is written as one microsecond of trace
// time; each architectural layer gets its own tid lane.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace abftecc::obs {

class JsonWriter;

/// Event taxonomy across the cooperation path (README.md "Observability").
enum class EventKind : std::uint8_t {
  // fault layer
  kFaultInject,       ///< bit flip queued on a DRAM line (addr, a0=bit)
  kChipKillInject,    ///< chip failure queued (addr, a0=chip, a1=pattern)
  kFaultCleared,      ///< writeback overwrote pending corruption (addr)
  kSilentCorruption,  ///< corruption passed ECC undetected (addr)
  // memory controller
  kEccCorrected,      ///< in-controller correction (addr, a0=words)
  kEccUncorrectable,  ///< detected-uncorrectable, error register written
                      ///< (addr, a0=chip)
  // memory system
  kDemandMiss,        ///< LLC demand miss (addr, a0=stall cycles)
  // OS layer
  kEccInterrupt,      ///< MC interrupt entered the handler (addr)
  kErrorExposed,      ///< error published to the shared log (addr)
  kPanic,             ///< uncorrectable outside ABFT coverage (addr)
  kPageRetired,       ///< frame retired + allocation migrated (addr)
  kEscalated,         ///< would-be panic absorbed by the recovery ladder
  kEccRepromoted,     ///< region promoted back to the strong scheme (addr)
  // ABFT runtime / kernels
  kErrorsDrained,     ///< runtime drained the log (a0=errors located)
  kErrorLocated,      ///< one error mapped to (a0=structure, a1=element)
  kVerify,            ///< kernel verification phase (complete event)
  kRecover,           ///< kernel correction phase (complete event)
  kEncode,            ///< kernel checksum-encode phase (complete event)
  // recovery ladder
  kRecompute,         ///< tier-2 block recompute attempt (a0=attempt)
  kCheckpoint,        ///< checkpoint committed (a0=epoch)
  kRollback,          ///< verified checkpoint restored (a0=epoch)
};

[[nodiscard]] std::string_view to_string(EventKind k);

/// Perfetto lane (Chrome trace `tid`) per architectural layer.
[[nodiscard]] unsigned lane_of(EventKind k);

/// True for phases exported as Chrome 'X' (complete) events with a
/// duration; the rest are 'i' (instant) events.
[[nodiscard]] constexpr bool is_phase(EventKind k) {
  return k == EventKind::kVerify || k == EventKind::kRecover ||
         k == EventKind::kEncode;
}

/// Bit for `kind` in a Tracer kind mask.
[[nodiscard]] constexpr std::uint64_t kind_bit(EventKind k) {
  return std::uint64_t{1} << static_cast<unsigned>(k);
}

struct TraceEvent {
  std::uint64_t ts = 0;    ///< simulated CPU cycle of the event (phase start)
  std::uint64_t dur = 0;   ///< phase length in cycles; 0 for instants
  std::uint64_t addr = 0;  ///< physical address, when the event has one
  std::uint64_t a0 = 0;    ///< kind-specific argument (see EventKind)
  std::uint64_t a1 = 0;
  std::uint64_t seq = 0;   ///< global record order (ring survivor ordering)
  EventKind kind = EventKind::kFaultInject;
  const char* tag = nullptr;  ///< static-string label (e.g. kernel name)
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record only kinds whose kind_bit() is set (default: everything).
  /// Campaign latency measurement masks out kDemandMiss so the flood of
  /// miss instants cannot evict the interrupt/recovery events it scans
  /// the ring for.
  void set_mask(std::uint64_t mask) { mask_ = mask; }
  [[nodiscard]] std::uint64_t mask() const { return mask_; }

  /// Replace the ring (drops recorded events).
  void set_capacity(std::size_t capacity);
  void clear();

  void instant(EventKind kind, std::uint64_t ts, std::uint64_t addr = 0,
               std::uint64_t a0 = 0, std::uint64_t a1 = 0,
               const char* tag = nullptr) {
    if (!enabled_ || (mask_ & kind_bit(kind)) == 0) return;
    push(TraceEvent{ts, 0, addr, a0, a1, 0, kind, tag});
  }

  void complete(EventKind kind, const char* tag, std::uint64_t ts_start,
                std::uint64_t dur, std::uint64_t addr = 0,
                std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    if (!enabled_ || (mask_ & kind_bit(kind)) == 0) return;
    push(TraceEvent{ts_start, dur, addr, a0, a1, 0, kind, tag});
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Total events ever recorded (survivors + dropped).
  [[nodiscard]] std::uint64_t recorded() const { return next_seq_; }

  /// Surviving events in record order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON document ({"traceEvents":[...]}), events
  /// sorted by ts so importers see a monotonic timeline.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Write chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  void push(const TraceEvent& e);

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   ///< next write slot
  std::size_t count_ = 0;  ///< survivors (<= capacity)
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t mask_ = ~std::uint64_t{0};
  bool enabled_ = false;
};

/// Emit one TraceEvent as a Chrome trace_event object into an open array.
/// Shared by Tracer::chrome_trace_json() and the merged profiler exporter
/// (obs/profile.hpp) so both produce identical event encoding.
void write_chrome_event(JsonWriter& w, const TraceEvent& e);

/// Tracer the instrumented layers on this thread record into. Disabled
/// until something (a test, or a bench binary's --trace flag) enables it.
/// Per-thread like obs::default_registry(), and overridable the same way.
Tracer& default_tracer();

/// RAII override of this thread's default_tracer(); same nesting contract
/// as obs::RegistryScope.
class TracerScope {
 public:
  explicit TracerScope(Tracer& t);
  ~TracerScope();
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  Tracer* prev_;
};

}  // namespace abftecc::obs
