#include "obs/lineage.hpp"

namespace abftecc::obs {

std::string_view to_string(LineageStage s) {
  switch (s) {
    case LineageStage::kInject: return "inject";
    case LineageStage::kEccCorrected: return "ecc_corrected";
    case LineageStage::kEccDetected: return "ecc_detected_uncorrectable";
    case LineageStage::kEccSilent: return "ecc_silent_miss";
    case LineageStage::kWritebackCleared: return "writeback_cleared";
    case LineageStage::kEccInterrupt: return "os_interrupt";
    case LineageStage::kExposed: return "os_exposed";
    case LineageStage::kLogDropped: return "os_log_dropped";
    case LineageStage::kEscalated: return "os_escalated";
    case LineageStage::kPanic: return "os_panic";
    case LineageStage::kAbftLocated: return "abft_located";
    case LineageStage::kAbftCorrected: return "abft_corrected";
    case LineageStage::kRecompute: return "recovery_recompute";
    case LineageStage::kRollback: return "recovery_rollback";
    case LineageStage::kUnrecoverable: return "recovery_unrecoverable";
    case LineageStage::kTerminal: return "terminal";
  }
  return "?";
}

void LineageLedger::clear() {
  sealed_ = false;
  terminal_ = {};
  faults_.clear();
  events_.clear();
  events_dropped_ = 0;
  by_line_.clear();
}

void LineageLedger::push(const LineageEvent& e) {
  if (events_.size() >= kMaxEvents) {
    ++events_dropped_;
    return;
  }
  events_.push_back(e);
}

std::uint32_t LineageLedger::fault_injected(std::uint64_t phys,
                                            std::uint32_t bit,
                                            const char* kind,
                                            std::uint64_t cycle) {
  if (!enabled_) return 0;
  LineageFault f;
  f.id = static_cast<std::uint32_t>(faults_.size() + 1);
  f.phys = phys;
  f.bit = bit;
  f.kind = kind;
  faults_.push_back(f);
  by_line_[line_of(phys)].push_back(f.id);
  push(LineageEvent{f.id, LineageStage::kInject, cycle, phys, bit, 0, kind});
  return f.id;
}

void LineageLedger::resolve_fault(std::uint32_t id, LineageStage s,
                                  std::uint64_t cycle, std::uint64_t a0) {
  if (!enabled_ || id == 0 || id > faults_.size()) return;
  LineageFault& f = faults_[id - 1];
  f.resolution = s;
  ++f.resolution_count;
  push(LineageEvent{id, s, cycle, f.phys, a0, 0, nullptr});
}

void LineageLedger::resolve_line(std::uint64_t addr, LineageStage s,
                                 std::uint64_t cycle, std::uint64_t a0) {
  if (!enabled_) return;
  auto it = by_line_.find(line_of(addr));
  if (it == by_line_.end()) return;
  for (std::uint32_t id : it->second) {
    // A line decode resolves only the still-open faults on the line;
    // faults already cleared by writeback (then re-injected lines) keep
    // their first resolution.
    if (faults_[id - 1].resolution_count == 0)
      resolve_fault(id, s, cycle, a0);
  }
}

void LineageLedger::line_event(std::uint64_t addr, LineageStage s,
                               std::uint64_t cycle, std::uint64_t a0,
                               std::uint64_t a1, const char* tag) {
  if (!enabled_) return;
  auto it = by_line_.find(line_of(addr));
  if (it == by_line_.end()) return;
  for (std::uint32_t id : it->second) {
    LineageFault& f = faults_[id - 1];
    if (s == LineageStage::kExposed) f.exposed = true;
    if (s == LineageStage::kAbftLocated) f.located = true;
    push(LineageEvent{id, s, cycle, addr, a0, a1, tag});
  }
}

void LineageLedger::trial_event(LineageStage s, std::uint64_t cycle,
                                std::uint64_t a0, const char* tag) {
  if (!enabled_) return;
  push(LineageEvent{0, s, cycle, 0, a0, 0, tag});
}

void LineageLedger::seal(std::string_view outcome) {
  if (!enabled_) return;
  sealed_ = true;
  terminal_ = outcome;
  for (LineageFault& f : faults_) f.terminal = outcome;
  push(LineageEvent{0, LineageStage::kTerminal, 0, 0, 0, 0,
                    outcome.data()});
}

std::uint64_t LineageLedger::orphans() const {
  std::uint64_t n = 0;
  for (const LineageFault& f : faults_)
    if (f.resolution_count == 0) ++n;
  return n;
}

std::uint64_t LineageLedger::double_resolved() const {
  std::uint64_t n = 0;
  for (const LineageFault& f : faults_)
    if (f.resolution_count > 1) ++n;
  return n;
}

namespace {

LineageLedger*& lineage_slot() {
  thread_local LineageLedger* slot = nullptr;
  return slot;
}

}  // namespace

LineageLedger& default_lineage() {
  if (LineageLedger* l = lineage_slot(); l != nullptr) return *l;
  thread_local LineageLedger owned;
  return owned;
}

LineageScope::LineageScope(LineageLedger& l) : prev_(lineage_slot()) {
  lineage_slot() = &l;
}

LineageScope::~LineageScope() { lineage_slot() = prev_; }

}  // namespace abftecc::obs
