// Live telemetry plane (ISSUE 10), tentpole piece 1+2: a low-overhead
// time-series layer over obs::Registry and an OpenMetrics/Prometheus
// text-exposition writer.
//
// The time-series layer is periodic SAMPLING, not instrumentation: a
// TelemetrySampler reads a Registry snapshot at whatever cadence the
// caller drives it (campaignd samples between service passes, the bench
// reporter samples on progress callbacks) and appends one point per
// series into fixed-capacity ring buffers. Counters are recorded as
// per-sample DELTAS (so a point is "events since the previous sample" --
// divide by the time step for a rate), gauges as levels, histograms as
// count/sum deltas. Nothing here writes back into the registry and no
// instrument hot path changes, so telemetry stays off the campaign
// byte-determinism surface exactly like `--lineage`: enabling it cannot
// perturb a single trial outcome (CI cmp-gates this).
//
// The exposition writer renders a MetricsSnapshot (plus any ad-hoc
// families a server wants to add, e.g. campaignd's per-job gauges) as
// OpenMetrics text: `# TYPE` headers, `_total`-suffixed counters,
// cumulative `_bucket{le="..."}` histogram series closed by `_count` /
// `_sum`, proper metric-name sanitization (dotted registry names become
// underscore names) and label-value escaping, terminated by `# EOF`.
// tools/promcheck.py validates the grammar and the bucket invariants in
// CI.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace abftecc::obs {

// ---------------------------------------------------------------- rings --

/// One timestamped sample. `t` is seconds on the sampler's clock (host
/// steady-clock by default); `v` is a counter delta, gauge level, or
/// histogram count/sum delta depending on the series kind.
struct TsPoint {
  double t = 0.0;
  double v = 0.0;
};

/// Fixed-capacity ring of TsPoints. Push is O(1) with no allocation
/// after construction; once full, each push overwrites the oldest point.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(std::size_t capacity);

  void push(double t, double v);

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Points currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Total pushes over the ring's lifetime (>= size() once wrapped).
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }
  /// i = 0 is the OLDEST retained point, i = size()-1 the newest.
  [[nodiscard]] TsPoint at(std::size_t i) const;

 private:
  std::vector<TsPoint> buf_;
  std::size_t next_ = 0;  ///< slot the next push writes
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
};

// -------------------------------------------------------------- sampler --

enum class SeriesKind : std::uint8_t {
  kCounter,         ///< per-sample delta of a monotone counter
  kGauge,           ///< sampled level
  kHistogramCount,  ///< per-sample delta of a histogram's observation count
  kHistogramSum,    ///< per-sample delta of a histogram's value sum
};

constexpr std::string_view to_string(SeriesKind k) {
  switch (k) {
    case SeriesKind::kCounter: return "counter";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kHistogramCount: return "histogram_count";
    case SeriesKind::kHistogramSum: return "histogram_sum";
  }
  return "?";
}

struct TelemetryOptions {
  /// Points retained per series. 240 at a 1 s cadence = the last 4 min.
  std::size_t capacity = 240;
  /// sample() calls closer together than this are dropped (0 = keep all);
  /// lets callers drive sampling from a hot progress callback without
  /// flooding the rings.
  double min_interval_s = 0.0;
};

/// Samples counter deltas, gauge levels, and histogram count/sum deltas
/// from a Registry into per-series rings. Series are created on first
/// sight of an instrument name and keyed by (name, kind); instruments
/// that appear later simply start later. Not thread-safe by design --
/// the owner drives sample() from one thread, matching the registry's
/// own thread-confined contract.
class TelemetrySampler {
 public:
  struct Series {
    std::string name;
    SeriesKind kind;
    TimeSeriesRing ring;
    /// Last cumulative value seen (delta base for counter-like kinds).
    double last = 0.0;
  };

  explicit TelemetrySampler(TelemetryOptions opt = {});

  /// Take one sample at an explicit timestamp (seconds; must be
  /// non-decreasing across calls). Returns false when the sample was
  /// dropped by min_interval_s.
  bool sample(const Registry& r, double t_s);
  /// Convenience: timestamps from the host steady clock, relative to the
  /// first sample() call.
  bool sample(const Registry& r);

  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] const Series* find(std::string_view name,
                                   SeriesKind kind) const;
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

  /// Canonical time-series JSON (one line, no trailing newline):
  ///   {"schema":"timeseries-v1","series":[
  ///      {"name":...,"kind":...,"points":[[t,v],...]},...]}
  /// tools/forensics.py `rates` emits the same shape so downstream
  /// consumers read live telemetry and post-hoc lineage rates alike.
  [[nodiscard]] std::string to_json() const;

 private:
  Series& series_for(std::string_view name, SeriesKind kind);

  TelemetryOptions opt_;
  std::vector<Series> series_;
  std::uint64_t samples_ = 0;
  double last_t_ = 0.0;
  bool have_last_t_ = false;
  std::uint64_t clock_t0_ = 0;  ///< steady-clock origin for sample(r)
  bool have_clock_t0_ = false;
};

// ----------------------------------------------------- OpenMetrics text --

/// One exposition label. Values are escaped by the writer; names must be
/// valid label names already (the callers use literals).
struct MetricLabel {
  std::string name;
  std::string value;
};

/// Sanitize an instrument name into a valid OpenMetrics metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots (the registry's layer separator) and
/// any other invalid byte become '_'; a leading digit gets a '_' prefix.
[[nodiscard]] std::string openmetrics_name(std::string_view raw);

/// Escape a label value for inclusion in double quotes: backslash,
/// double-quote, and newline get backslash escapes.
[[nodiscard]] std::string openmetrics_escape(std::string_view raw);

/// Streaming OpenMetrics text writer. Families must be opened before
/// their samples (`# TYPE` line) and each family opened at most once --
/// the writer enforces both so malformed exposition is a programming
/// error here, not a scrape-time surprise.
class OpenMetricsWriter {
 public:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  /// Open a family: emits `# TYPE <sanitized(name)> <type>`.
  void family(std::string_view name, Type t);
  /// One sample in the open family. `suffix` is appended to the family
  /// name ("_total", "_bucket", "_count", "_sum"); counters get "_total"
  /// automatically when the caller passes no suffix.
  void sample(double value, const std::vector<MetricLabel>& labels = {},
              std::string_view suffix = {});
  /// Full histogram family body from inclusive-upper-bound buckets (the
  /// Registry shape): cumulative `_bucket{le=...}` lines including +Inf,
  /// then `_count` and `_sum`. `bounds` has one entry per finite bucket;
  /// `buckets` has bounds.size() + 1 entries (overflow last).
  void histogram(const std::vector<double>& bounds,
                 const std::vector<std::uint64_t>& buckets, double sum,
                 const std::vector<MetricLabel>& labels = {});

  /// Append every instrument of a snapshot, each as its own family with
  /// `base_labels` on every sample.
  void snapshot(const MetricsSnapshot& snap,
                const std::vector<MetricLabel>& base_labels = {});

  /// Terminate with `# EOF` and return the exposition text.
  [[nodiscard]] std::string take();

 private:
  std::string out_;
  std::string family_;  ///< sanitized name of the open family
  Type family_type_ = Type::kGauge;
  std::vector<std::string> seen_;  ///< families already opened
};

}  // namespace abftecc::obs
