#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace abftecc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the separator
  }
  if (have_value_.back()) out_ += ',';
  have_value_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  have_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  have_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  have_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  have_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (have_value_.back()) out_ += ',';
  have_value_.back() = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  // JSON has no NaN/Inf literals; emit them as strings so the kind and
  // sign survive the round trip (null would erase both).
  if (std::isnan(v)) return value("NaN");
  if (std::isinf(v)) return value(v > 0 ? "Infinity" : "-Infinity");
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

namespace {

/// Recursive-descent JSON acceptor over a string_view cursor.
struct Parser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool string() {
    if (!eat('"')) return false;
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (i >= s.size()) return false;
        const char e = s[i++];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k)
            if (i >= s.size() || !std::isxdigit(
                                     static_cast<unsigned char>(s[i++])))
              return false;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = i;
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else {
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (eat('.')) {
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    return i > start;
  }

  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (i >= s.size()) {
      ok = false;
    } else if (s[i] == '{') {
      ++i;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        while (true) {
          skip_ws();
          if (!string()) break;
          skip_ws();
          if (!eat(':')) break;
          if (!value()) break;
          skip_ws();
          if (eat('}')) {
            ok = true;
            break;
          }
          if (!eat(',')) break;
        }
      }
    } else if (s[i] == '[') {
      ++i;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        while (true) {
          if (!value()) break;
          skip_ws();
          if (eat(']')) {
            ok = true;
            break;
          }
          if (!eat(',')) break;
        }
      }
    } else if (s[i] == '"') {
      ok = string();
    } else if (s[i] == 't') {
      ok = literal("true");
    } else if (s[i] == 'f') {
      ok = literal("false");
    } else if (s[i] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(std::string_view s) {
  Parser p{s};
  if (!p.value()) return false;
  p.skip_ws();
  return p.i == s.size();
}

}  // namespace abftecc::obs
