// Analytical fault models of Section 4, Equations (2)-(8).
//
// These drive the scaling studies (Figures 8-9): given per-region failure
// rates (Table 5), memory capacities, node counts, and the measured
// performance/energy impact ratios of each ECC strategy, they predict error
// counts, ABFT recovery cost, and the MTTF thresholds below which ARE
// (ABFT + relaxed ECC) stops paying off against ASE (ABFT + strong ECC).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "ecc/scheme.hpp"

namespace abftecc::fault {

/// One memory region with homogeneous ECC protection (a term of Eq. (3)).
struct RegionSpec {
  double capacity_mbit = 0.0;  ///< mc_i
  FitPerMbit rate;             ///< fr_i (post-ECC, Table 5)
  double age_factor = 1.0;     ///< f_i(A)
};

/// Eq. (2): MTTF = 1 / (FR * MC_a * f(A) * N), in seconds.
double mttf_seconds(FitPerMbit rate, double capacity_mbit, double age_factor,
                    double nodes);

/// Eq. (3): heterogeneous-protection MTTF across regions, in seconds.
double mttf_hetero_seconds(std::span<const RegionSpec> regions, double nodes);

/// Eq. (4): N_e = T0 * (1 + tau) / MTTF_hetero.
double expected_errors(double t0_seconds, double tau, double mttf_seconds);

/// Eq. (5): T_c = N_e * t_c -- worst-case recovery time (one error per
/// recovery, conservatively).
double recovery_time_loss(double n_errors, double t_c_seconds);

/// Eq. (6): delta-T = T0 * (tau_ase - tau_are).
double performance_benefit(double t0_seconds, double tau_ase, double tau_are);

/// Eq. (7): MTTF threshold for net performance benefit:
/// MTTF_thr,t = t_c * (1 + tau_are) / (tau_ase - tau_are).
/// Requires tau_ase > tau_are (otherwise relaxing never helps).
double mttf_threshold_perf(double t_c_seconds, double tau_are, double tau_ase);

/// Energy analogue of Eq. (7): with per-error ABFT recovery energy e_c (J)
/// and per-run energy saving delta_e (J) over native time T0,
/// MTTF_thr,en = e_c * T0 * (1 + tau_are) / delta_e.
double mttf_threshold_energy(double e_c_joules, double t0_seconds,
                             double tau_are, double delta_e_joules);

/// Eq. (8): MTTF_thr = max(threshold_perf, threshold_energy).
double mttf_threshold(double thr_perf, double thr_energy);

/// Convenience: Table 5 rate for a scheme.
inline FitPerMbit table5_rate(ecc::Scheme s) {
  return ecc::properties(s).residual_fit;
}

}  // namespace abftecc::fault
