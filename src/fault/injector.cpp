#include "fault/injector.hpp"

#include <span>

#include "common/error.hpp"
#include "ecc/chipkill.hpp"
#include "obs/lineage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abftecc::fault {

namespace {
constexpr std::uint64_t kLine = ecc::kLineBytes;
std::uint64_t line_of(std::uint64_t phys) { return phys / kLine * kLine; }
// Lineage attributes stages to faults by cache line; the two constants
// must agree or attribution silently misses.
static_assert(obs::LineageLedger::kLineBytes == ecc::kLineBytes);
}  // namespace

Injector::Injector(memsim::MemorySystem& system, os::Os& os)
    : system_(system), os_(os),
      chained_hook_(std::move(system.hooks().fill_hook)) {
  // Chain: the injector decodes pending faults first, then any observer
  // that was already installed still sees the (now corrected) transfer.
  system_.hooks().fill_hook =
      [this](std::uint64_t line, ecc::Scheme scheme, bool is_write) {
        on_dram_transfer(line, scheme, is_write);
        if (chained_hook_) chained_hook_(line, scheme, is_write);
      };
}

Injector::~Injector() {
  system_.hooks().fill_hook = std::move(chained_hook_);
}

void Injector::inject_bit(std::uint64_t phys, unsigned bit) {
  ABFTECC_REQUIRE(bit < 8);
  const std::uint64_t line = line_of(phys);
  const unsigned bit_in_line =
      static_cast<unsigned>((phys - line) * 8 + bit);
  pending_[line].push_back(ecc::BitFlip{bit_in_line, false});
  ++stats_.injected_flips;
  obs::default_registry().counter("fault.injected_flips").add();
  obs::default_tracer().instant(obs::EventKind::kFaultInject,
                                system_.stats().cpu_cycles, phys, bit);
  obs::default_lineage().fault_injected(phys, bit, "bit_flip",
                                        system_.stats().cpu_cycles);
}

void Injector::inject_chip_kill(std::uint64_t phys, unsigned chip,
                                std::uint8_t pattern) {
  // Chip kills are applied directly at fill time through
  // LineCodec::kill_chip; encode the request as a sentinel flip entry
  // (index carries chip and pattern, check-bit flag marks the sentinel).
  const std::uint64_t line = line_of(phys);
  pending_[line].push_back(
      ecc::BitFlip{0x10000u | (chip << 8) | pattern, true});
  ++stats_.injected_chip_kills;
  obs::default_registry().counter("fault.injected_chip_kills").add();
  obs::default_tracer().instant(obs::EventKind::kChipKillInject,
                                system_.stats().cpu_cycles, phys, chip,
                                pattern);
  obs::default_lineage().fault_injected(phys, chip, "chip_kill",
                                        system_.stats().cpu_cycles);
}

bool Injector::corrupt_virtual_now(void* vaddr, unsigned bit) {
  ABFTECC_REQUIRE(bit < 8);
  auto* p = static_cast<std::uint8_t*>(vaddr);
  *p ^= static_cast<std::uint8_t>(1u << bit);
  ++stats_.injected_flips;
  ++stats_.silent_corruptions;
  obs::default_registry().counter("fault.injected_flips").add();
  obs::default_registry().counter("fault.silent_corruptions").add();
  const auto phys = os_.virt_to_phys(vaddr);
  obs::default_tracer().instant(obs::EventKind::kSilentCorruption,
                                system_.stats().cpu_cycles,
                                phys.value_or(0), bit);
  // Bypasses DRAM and ECC entirely: the fault is born already resolved
  // as a silent miss.
  auto& lineage = obs::default_lineage();
  const std::uint32_t id = lineage.fault_injected(
      phys.value_or(0), bit, "direct", system_.stats().cpu_cycles);
  lineage.resolve_fault(id, obs::LineageStage::kEccSilent,
                        system_.stats().cpu_cycles);
  return true;
}

void Injector::inject_uniform(std::uint64_t phys_start, std::uint64_t phys_end,
                              std::uint64_t count, Rng& rng) {
  ABFTECC_REQUIRE(phys_end > phys_start);
  const std::uint64_t bytes = phys_end - phys_start;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t phys = phys_start + rng.below(bytes);
    inject_bit(phys, static_cast<unsigned>(rng.below(8)));
  }
}

double Injector::expected_faults(std::uint64_t bytes, double seconds,
                                 FitPerMbit rate) {
  const double mbit = static_cast<double>(bytes) * 8.0 / 1e6;
  return rate.failures_per_second(mbit) * seconds;
}

unsigned Injector::chip_of_data_bit(ecc::Scheme scheme, unsigned bit_in_line) {
  switch (scheme) {
    case ecc::Scheme::kNone:
    case ecc::Scheme::kSecded:
      // x4 chips carry 4 adjacent bits of each 64-bit word.
      return (bit_in_line % 64) / 4;
    case ecc::Scheme::kChipkill: {
      // Chip == RS symbol: one byte per codeword half.
      const unsigned byte = bit_in_line / 8;
      return ecc::Chipkill::kCheckSymbols + byte % ecc::Chipkill::kDataSymbols;
    }
  }
  return 0;
}

void Injector::on_dram_transfer(std::uint64_t line_addr, ecc::Scheme scheme,
                                bool is_write) {
  const auto it = pending_.find(line_addr);
  if (it == pending_.end()) return;
  if (is_write) {
    // The writeback rewrites the DRAM cells: pending corruption is gone.
    stats_.cleared_by_writeback += it->second.size();
    obs::default_registry()
        .counter("fault.cleared_by_writeback")
        .add(it->second.size());
    obs::default_tracer().instant(obs::EventKind::kFaultCleared,
                                  system_.stats().cpu_cycles, line_addr,
                                  it->second.size());
    obs::default_lineage().resolve_line(
        line_addr, obs::LineageStage::kWritebackCleared,
        system_.stats().cpu_cycles, it->second.size());
    pending_.erase(it);
    return;
  }
  apply_line(line_addr, scheme);
}

void Injector::apply_line(std::uint64_t line_addr, ecc::Scheme scheme) {
  const auto it = pending_.find(line_addr);
  if (it == pending_.end()) return;
  const auto host = os_.phys_to_host(line_addr);
  if (!host.has_value()) {
    // Line not backed by a registered region (should not happen in a wired
    // simulation); drop the fault.
    pending_.erase(it);
    return;
  }
  std::span<std::uint8_t> line(reinterpret_cast<std::uint8_t*>(*host), kLine);

  // Expand sentinel chip-kill entries and merge everything pending on this
  // line into ONE decode: simultaneous faults hit the decoder together.
  std::vector<ecc::BitFlip> flips;
  unsigned first_bad_chip = 0;
  bool have_bad_chip = false;
  for (const auto& f : it->second) {
    if (f.in_check_bits && (f.index & 0x10000u)) {
      const unsigned chip = (f.index >> 8) & 0xFF;
      const auto pattern = static_cast<std::uint8_t>(f.index & 0xFF);
      const auto kf = ecc::LineCodec::chip_flips(scheme, chip, pattern);
      flips.insert(flips.end(), kf.begin(), kf.end());
      if (!have_bad_chip) {
        first_bad_chip = chip;
        have_bad_chip = true;
      }
    } else {
      flips.push_back(f);
      if (!have_bad_chip) {
        first_bad_chip = chip_of_data_bit(scheme, f.index);
        have_bad_chip = true;
      }
    }
  }
  const ecc::LineResult agg = ecc::LineCodec::process_line(scheme, line, flips);
  pending_.erase(it);

  // One decode resolves every fault pending on the line; lineage records
  // the aggregate line verdict with detected > silent > corrected
  // precedence (a mixed line is dominated by its worst word).
  {
    obs::LineageStage resolution = obs::LineageStage::kEccCorrected;
    if (agg.status == ecc::DecodeStatus::kDetectedUncorrectable)
      resolution = obs::LineageStage::kEccDetected;
    else if (agg.silent_corruption)
      resolution = obs::LineageStage::kEccSilent;
    obs::default_lineage().resolve_line(line_addr, resolution,
                                        system_.stats().cpu_cycles,
                                        agg.corrected_words);
  }

  auto& mc = system_.controller();
  if (agg.corrected_words > 0) {
    stats_.corrected_by_ecc += agg.corrected_words;
    obs::default_registry()
        .counter("fault.corrected_by_ecc")
        .add(agg.corrected_words);
    obs::default_tracer().instant(obs::EventKind::kEccCorrected,
                                  system_.stats().cpu_cycles, line_addr,
                                  agg.corrected_words);
    for (unsigned i = 0; i < agg.corrected_words; ++i)
      mc.note_corrected(scheme);
  }
  if (agg.silent_corruption) {
    ++stats_.silent_corruptions;
    obs::default_registry().counter("fault.silent_corruptions").add();
    obs::default_tracer().instant(obs::EventKind::kSilentCorruption,
                                  system_.stats().cpu_cycles, line_addr);
  }
  if (agg.status == ecc::DecodeStatus::kDetectedUncorrectable) {
    ++stats_.uncorrectable;
    memsim::FaultSite site;
    site.where = system_.address_map().decompose(line_addr);
    site.chip = first_bad_chip;
    mc.report_uncorrectable(site, line_addr, system_.stats().cpu_cycles,
                            scheme);
  }
}

void Injector::flush_pending() {
  // Snapshot keys first: apply_line mutates the map.
  std::vector<std::uint64_t> lines;
  lines.reserve(pending_.size());
  for (const auto& [line, _] : pending_) lines.push_back(line);
  for (const auto line : lines)
    apply_line(line, system_.controller().scheme_for(line));
}

}  // namespace abftecc::fault
