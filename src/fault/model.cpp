#include "fault/model.hpp"

#include <algorithm>

namespace abftecc::fault {

double mttf_seconds(FitPerMbit rate, double capacity_mbit, double age_factor,
                    double nodes) {
  ABFTECC_REQUIRE(capacity_mbit > 0.0 && nodes > 0.0 && age_factor > 0.0);
  const double per_second =
      rate.failures_per_second(capacity_mbit) * age_factor * nodes;
  ABFTECC_REQUIRE(per_second > 0.0);
  return 1.0 / per_second;
}

double mttf_hetero_seconds(std::span<const RegionSpec> regions, double nodes) {
  ABFTECC_REQUIRE(!regions.empty() && nodes > 0.0);
  double per_second = 0.0;
  for (const auto& r : regions)
    per_second +=
        r.rate.failures_per_second(r.capacity_mbit) * r.age_factor * nodes;
  ABFTECC_REQUIRE(per_second > 0.0);
  return 1.0 / per_second;
}

double expected_errors(double t0_seconds, double tau, double mttf) {
  ABFTECC_REQUIRE(mttf > 0.0);
  return t0_seconds * (1.0 + tau) / mttf;
}

double recovery_time_loss(double n_errors, double t_c_seconds) {
  return n_errors * t_c_seconds;
}

double performance_benefit(double t0_seconds, double tau_ase,
                           double tau_are) {
  return t0_seconds * (tau_ase - tau_are);
}

double mttf_threshold_perf(double t_c_seconds, double tau_are,
                           double tau_ase) {
  ABFTECC_REQUIRE(tau_ase > tau_are);
  return t_c_seconds * (1.0 + tau_are) / (tau_ase - tau_are);
}

double mttf_threshold_energy(double e_c_joules, double t0_seconds,
                             double tau_are, double delta_e_joules) {
  ABFTECC_REQUIRE(delta_e_joules > 0.0);
  return e_c_joules * t0_seconds * (1.0 + tau_are) / delta_e_joules;
}

double mttf_threshold(double thr_perf, double thr_energy) {
  return std::max(thr_perf, thr_energy);
}

}  // namespace abftecc::fault
