// Error-handling scenario classification (Section 4, Cases 1-4).
//
// Given whether the injected pattern is within strong ECC's correction
// capability and within ABFT's, classify the scenario and derive the
// recovery path + cost each of the two deployments (ARE = ABFT + relaxed
// ECC, ASE = ABFT + strong ECC) takes.
#pragma once

#include <string_view>

#include "common/units.hpp"

namespace abftecc::fault {

enum class Case {
  kCase1BothCorrect,   ///< strong ECC and ABFT can both correct
  kCase2AbftOnly,      ///< ABFT can, strong ECC cannot
  kCase3EccOnly,       ///< strong ECC can, ABFT cannot
  kCase4Neither,       ///< neither can: checkpoint/restart for both
};

constexpr Case classify(bool strong_ecc_correctable, bool abft_correctable) {
  if (strong_ecc_correctable)
    return abft_correctable ? Case::kCase1BothCorrect : Case::kCase3EccOnly;
  return abft_correctable ? Case::kCase2AbftOnly : Case::kCase4Neither;
}

constexpr std::string_view to_string(Case c) {
  switch (c) {
    case Case::kCase1BothCorrect: return "Case1(both ECC+ABFT correct)";
    case Case::kCase2AbftOnly: return "Case2(ABFT only)";
    case Case::kCase3EccOnly: return "Case3(ECC only)";
    case Case::kCase4Neither: return "Case4(neither)";
  }
  return "?";
}

/// How each deployment recovers in a given case.
enum class RecoveryPath {
  kEccInController,    ///< a few cycles, < ~1 pJ
  kAbftCorrection,     ///< checksum / invariant repair, up to hundreds of J
  kCheckpointRestart,  ///< fall back to the last checkpoint
  kNone,               ///< error never materialized for this deployment
};

struct CaseOutcome {
  RecoveryPath are;  ///< ABFT + relaxed ECC
  RecoveryPath ase;  ///< ABFT + strong ECC
};

/// The recovery paths of Section 4's discussion. For Case 2 the ASE path
/// depends on whether the platform exposes uncorrectable errors to the
/// application (`ase_exposes_errors`); legacy systems panic instead.
constexpr CaseOutcome outcome(Case c, bool ase_exposes_errors = false) {
  switch (c) {
    case Case::kCase1BothCorrect:
      return {RecoveryPath::kAbftCorrection, RecoveryPath::kEccInController};
    case Case::kCase2AbftOnly:
      return {RecoveryPath::kAbftCorrection,
              ase_exposes_errors ? RecoveryPath::kAbftCorrection
                                 : RecoveryPath::kCheckpointRestart};
    case Case::kCase3EccOnly:
      return {RecoveryPath::kCheckpointRestart,
              RecoveryPath::kEccInController};
    case Case::kCase4Neither:
      return {RecoveryPath::kCheckpointRestart,
              RecoveryPath::kCheckpointRestart};
  }
  return {RecoveryPath::kNone, RecoveryPath::kNone};
}

/// Representative recovery costs used by the end-to-end case bench: energy
/// per recovery event for each path, parameterized by problem scale for the
/// ABFT path (Section 4: "up to hundreds of Joules, depending on the input
/// numerical problem size").
struct RecoveryCosts {
  double ecc_pj = 1.0;
  double abft_joules = 0.0;
  double checkpoint_restart_joules = 0.0;

  [[nodiscard]] double joules(RecoveryPath p) const {
    switch (p) {
      case RecoveryPath::kEccInController: return ecc_pj / kPicojoulesPerJoule;
      case RecoveryPath::kAbftCorrection: return abft_joules;
      case RecoveryPath::kCheckpointRestart: return checkpoint_restart_joules;
      case RecoveryPath::kNone: return 0.0;
    }
    return 0.0;
  }
};

}  // namespace abftecc::fault
