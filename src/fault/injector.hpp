// BIFIT-style fault injector: place bit flips at specific times and data
// locations, or sample campaigns from Table 5 FIT rates.
//
// Faults live in DRAM: an injected flip stays pending on its cache line
// until the next DRAM fill of that line, at which point it passes through
// the active ECC scheme's decoder (ecc::LineCodec) -- corrected errors are
// absorbed by the controller, uncorrectable ones are recorded in the MC's
// error registers and raise the OS interrupt, and under No_ECC the
// corruption flows silently into the application data for ABFT to find.
// A writeback to a pending line overwrites the corrupted cells and clears
// the fault, exactly as on real hardware.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "memsim/system.hpp"
#include "os/os.hpp"

namespace abftecc::fault {

struct InjectorStats {
  std::uint64_t injected_flips = 0;
  std::uint64_t injected_chip_kills = 0;
  std::uint64_t corrected_by_ecc = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t silent_corruptions = 0;  ///< reached app data undetected by ECC
  std::uint64_t cleared_by_writeback = 0;
};

class Injector {
 public:
  /// Wires itself into `system`'s DRAM-transfer hook; `os` provides
  /// phys -> host translation so corruption lands in real application bytes.
  Injector(memsim::MemorySystem& system, os::Os& os);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Queue a single-bit flip at physical address `phys` (bit 0..7 within
  /// that byte). Takes effect on the next DRAM fill of the line.
  void inject_bit(std::uint64_t phys, unsigned bit);

  /// Queue a whole-chip failure for the line containing `phys` (the
  /// chipkill design point). `pattern` is the nibble corruption mask.
  void inject_chip_kill(std::uint64_t phys, unsigned chip,
                        std::uint8_t pattern = 0xF);

  /// Apply a bit flip to application data immediately, bypassing DRAM and
  /// ECC entirely (models an error while the line is cache-resident, and
  /// gives experiments a direct knob for "ABFT must find this").
  bool corrupt_virtual_now(void* vaddr, unsigned bit);

  /// Uniformly sample `count` single-bit faults over a physical range.
  void inject_uniform(std::uint64_t phys_start, std::uint64_t phys_end,
                      std::uint64_t count, Rng& rng);

  /// Expected raw-fault count for a region of `bytes` over `seconds`,
  /// given the region's pre-correction fault rate (FIT/Mbit).
  static double expected_faults(std::uint64_t bytes, double seconds,
                                FitPerMbit rate);

  [[nodiscard]] const InjectorStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending_lines() const { return pending_.size(); }

  /// Force all pending faults to be applied as if their lines were read
  /// now (used by tests and by scenarios that end with a flush).
  void flush_pending();

 private:
  void on_dram_transfer(std::uint64_t line_addr, ecc::Scheme scheme,
                        bool is_write);
  void apply_line(std::uint64_t line_addr, ecc::Scheme scheme);
  static unsigned chip_of_data_bit(ecc::Scheme scheme, unsigned bit_in_line);

  memsim::MemorySystem& system_;
  os::Os& os_;
  /// Fill hook that was installed before this injector; called after the
  /// injector's own handler and restored on destruction.
  std::function<void(std::uint64_t, ecc::Scheme, bool)> chained_hook_;
  std::unordered_map<std::uint64_t, std::vector<ecc::BitFlip>> pending_;
  InjectorStats stats_;
};

}  // namespace abftecc::fault
