// DGMS baseline (Yoon et al., ISCA'12) -- the state-of-the-art flexible
// ECC the paper compares against in Section 5.3.
//
// DGMS is ABFT-blind: it picks the ECC/access granularity per request from
// a spatial-pattern prediction. We model its prediction controller as a
// per-page saturating counter trained on miss-stream adjacency: accesses
// that walk neighbouring lines of a page train it towards coarse-grained
// (64B, chipkill over the lock-step channel pair); scattered accesses fall
// back to fine-grained sub-ranked 16B SECDED transfers. High-locality
// kernels (FT-DGEMM) therefore end up entirely on chipkill -- which is why
// the paper's Figure 10 shows DGMS matching W_CK there while the
// ABFT-directed scheme still relaxes ECC on the protected structures.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "memsim/dram.hpp"

namespace abftecc::sim {

class DgmsController {
 public:
  explicit DgmsController(std::uint64_t page_bytes = 4096)
      : page_bytes_(page_bytes) {}

  /// ShapeOverride hook for MemorySystem: decides the access granularity
  /// for one DRAM request and trains the predictor.
  std::optional<memsim::AccessShape> shape(std::uint64_t phys_addr,
                                           ecc::Scheme /*scheme*/) {
    const std::uint64_t page = phys_addr / page_bytes_;
    const std::uint64_t line = phys_addr / 64;
    PageState& st = pages_[page];
    if (st.seen) {
      const std::uint64_t d =
          line > st.last_line ? line - st.last_line : st.last_line - line;
      if (d <= 1) {
        if (st.counter < 3) ++st.counter;
      } else {
        if (st.counter > 0) --st.counter;
      }
    }
    st.seen = true;
    st.last_line = line;
    if (st.counter >= 2) {
      ++coarse_;
      return memsim::shape_for(ecc::Scheme::kChipkill);
    }
    ++fine_;
    return memsim::dgms_fine_shape();
  }

  [[nodiscard]] std::uint64_t coarse_accesses() const { return coarse_; }
  [[nodiscard]] std::uint64_t fine_accesses() const { return fine_; }

 private:
  struct PageState {
    std::uint64_t last_line = 0;
    int counter = 1;  ///< starts fine-grained; spatial hits train it up
    bool seen = false;
  };

  std::uint64_t page_bytes_;
  std::unordered_map<std::uint64_t, PageState> pages_;
  std::uint64_t coarse_ = 0;
  std::uint64_t fine_ = 0;
};

}  // namespace abftecc::sim
