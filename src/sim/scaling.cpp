#include "sim/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "fault/model.hpp"

namespace abftecc::sim {

Strategy ScalingStudy::baseline_for(Strategy partial) {
  switch (partial) {
    case Strategy::kPartialChipkillNoEcc:
    case Strategy::kPartialChipkillSecded:
      return Strategy::kWholeChipkill;
    case Strategy::kPartialSecdedNoEcc:
      return Strategy::kWholeSecded;
    default:
      return Strategy::kWholeChipkill;
  }
}

const RunMetrics& ScalingStudy::measured(Strategy s, std::size_t dim) {
  const auto key = std::make_pair(static_cast<int>(s), dim);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    PlatformOptions p = opt_.platform;
    p.strategy = s;
    it = cache_.emplace(key, run_cg_at_dim(dim, opt_.iterations, p)).first;
  }
  return it->second;
}

ScalePoint ScalingStudy::evaluate(Strategy partial, double processes,
                                  std::size_t dim) {
  const RunMetrics& part = measured(partial, dim);
  const RunMetrics& base = measured(baseline_for(partial), dim);

  // Scale the measured representative phase to a production solve. The
  // solve length follows the GLOBAL problem (weak scaling: fixed per
  // process; strong scaling: fixed total), so the iteration count is
  // anchored to base_dim for both modes; parallel efficiency degrades
  // with scale.
  const double phase_to_solve =
      opt_.production_iterations_per_dim *
      static_cast<double>(opt_.base_dim) /
      static_cast<double>(opt_.iterations);
  const double doublings =
      std::log2(std::max(processes / opt_.process_counts.front(), 1.0));
  const double efficiency =
      1.0 / (1.0 + opt_.efficiency_loss_per_doubling * doublings);

  const double t_run = part.seconds * phase_to_solve / efficiency;

  // Energy benefit: per-process saving x process count (Section 5.2's
  // definition -- system energy saved by relaxing ECC on ABFT data).
  const double per_proc_saving_j =
      joules(base.system_pj() - part.system_pj()) * phase_to_solve /
      efficiency;
  const double benefit_j = per_proc_saving_j * processes;

  // Expected errors needing ABFT recovery: errors in the relaxed region at
  // the relaxed scheme's Table 5 residual rate (everything else stays under
  // the strong scheme and is absorbed in-controller).
  const ecc::Scheme relaxed = spec(partial).abft_scheme;
  const double relaxed_mbit =
      static_cast<double>(part.abft_bytes) * 8.0 / 1e6;
  std::vector<fault::RegionSpec> regions{
      {relaxed_mbit, fault::table5_rate(relaxed), 1.0}};
  const double mttf = fault::mttf_hetero_seconds(regions, processes);
  const double tau_are =
      base.seconds > 0.0 ? part.seconds / base.seconds - 1.0 : 0.0;
  const double n_errors = fault::expected_errors(t_run, tau_are, mttf);

  // Energy of one ABFT recovery ~ one CG iteration on this problem size
  // (the invariant repair is a matvec + vector work), measured per process.
  const double e_recover_j =
      joules(part.system_pj()) / static_cast<double>(opt_.iterations);
  const double recovery_j = n_errors * e_recover_j;

  ScalePoint pt;
  pt.processes = processes;
  pt.energy_benefit_kj = benefit_j / 1e3;
  pt.recovery_cost_kj = recovery_j / 1e3;
  pt.expected_errors = n_errors;
  pt.mttf_hetero_seconds = mttf;
  return pt;
}

std::vector<ScalePoint> ScalingStudy::weak_scaling(Strategy partial) {
  std::vector<ScalePoint> out;
  out.reserve(opt_.process_counts.size());
  for (const double n : opt_.process_counts)
    out.push_back(evaluate(partial, n, opt_.base_dim));
  return out;
}

std::vector<ScalePoint> ScalingStudy::strong_scaling(Strategy partial) {
  std::vector<ScalePoint> out;
  out.reserve(opt_.process_counts.size());
  const double base_n = opt_.process_counts.front();
  for (const double n : opt_.process_counts) {
    // Memory per process ~ dim^2: strong scaling shrinks dim by sqrt.
    const double shrink = std::sqrt(n / base_n);
    auto dim = static_cast<std::size_t>(
        std::max(64.0, static_cast<double>(opt_.base_dim) / shrink));
    dim = (dim + 31) / 32 * 32;  // round for block friendliness
    out.push_back(evaluate(partial, n, dim));
  }
  return out;
}

}  // namespace abftecc::sim
