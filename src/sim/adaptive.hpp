// Adaptive resilience policy: the paper's concluding claim made executable
// ("the necessity and potential benefits of using a co-design and adaptive
// policy to direct end-to-end, overall resilience").
//
// The Section 4 analysis gives a deciding MTTF threshold (Eqs. 7-8) below
// which ARE (relaxed ECC + ABFT recovery) stops paying off. This policy
// watches the error rate an ABFT region actually experiences and walks its
// protection up or down the tier ladder (No_ECC <-> SECDED <-> chipkill)
// through the OS's assign_ecc -- the "runtime ECC transition" the
// architecture was built to allow. Hysteresis keeps it from flapping.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "fault/model.hpp"
#include "os/os.hpp"

namespace abftecc::sim {

class AdaptivePolicy {
 public:
  struct Options {
    /// One ABFT recovery: time and energy (measured or estimated).
    double t_c_seconds = 1.0;
    double e_c_joules = 50.0;
    /// Performance impact ratios of the relaxed vs strong deployments
    /// (tau in the Section 4 models).
    double tau_relaxed = 0.01;
    double tau_strong = 0.05;
    /// Native run time and per-run energy saving of relaxing (for the
    /// energy threshold).
    double t0_seconds = 3600.0;
    double delta_e_joules = 500.0;
    /// De-escalate only when the observed MTTF clears the threshold by
    /// this factor (hysteresis against flapping).
    double headroom = 4.0;
    /// Epochs of calm required before de-escalating.
    unsigned calm_epochs_to_relax = 3;
  };

  AdaptivePolicy(os::Os& os, void* region, ecc::Scheme initial, Options opt)
      : os_(os), region_(region), opt_(opt), current_(initial) {
    os_.assign_ecc(region_, current_);
  }

  /// Report one observation epoch: wall-clock covered and the number of
  /// errors ABFT had to recover in the region. Returns the scheme in force
  /// after the decision.
  ecc::Scheme on_epoch(double elapsed_seconds,
                       std::uint64_t abft_recoveries) {
    elapsed_ += elapsed_seconds;
    errors_ += abft_recoveries;

    const double thr = threshold();
    // Conservative observed MTTF: one phantom error keeps a quiet region
    // from reporting an infinite MTTF off zero samples.
    const double observed =
        elapsed_ / (static_cast<double>(errors_) + 1.0);

    if (abft_recoveries > 0 && observed < thr) {
      calm_epochs_ = 0;
      escalate();
    } else if (observed > thr * opt_.headroom) {
      if (++calm_epochs_ >= opt_.calm_epochs_to_relax) {
        calm_epochs_ = 0;
        deescalate();
      }
    } else {
      calm_epochs_ = 0;
    }
    return current_;
  }

  /// Eq. (8): the deciding MTTF threshold for this deployment.
  [[nodiscard]] double threshold() const {
    const double thr_perf = fault::mttf_threshold_perf(
        opt_.t_c_seconds, opt_.tau_relaxed, opt_.tau_strong);
    const double thr_energy = fault::mttf_threshold_energy(
        opt_.e_c_joules, opt_.t0_seconds, opt_.tau_relaxed,
        opt_.delta_e_joules);
    return fault::mttf_threshold(thr_perf, thr_energy);
  }

  [[nodiscard]] ecc::Scheme current() const { return current_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  [[nodiscard]] double observed_mttf() const {
    return elapsed_ / (static_cast<double>(errors_) + 1.0);
  }

 private:
  static constexpr std::array<ecc::Scheme, 3> kLadder = {
      ecc::Scheme::kNone, ecc::Scheme::kSecded, ecc::Scheme::kChipkill};

  [[nodiscard]] unsigned rung() const {
    for (unsigned i = 0; i < kLadder.size(); ++i)
      if (kLadder[i] == current_) return i;
    return 0;
  }

  void escalate() { set_rung(std::min<unsigned>(rung() + 1, 2)); }
  void deescalate() { set_rung(rung() == 0 ? 0 : rung() - 1); }

  void set_rung(unsigned r) {
    if (kLadder[r] == current_) return;
    current_ = kLadder[r];
    os_.assign_ecc(region_, current_);
    ++transitions_;
    // A new protection tier resets the observation window: the error rate
    // the region will now see is different.
    elapsed_ = 0.0;
    errors_ = 0;
  }

  os::Os& os_;
  void* region_;
  Options opt_;
  ecc::Scheme current_;
  double elapsed_ = 0.0;
  std::uint64_t errors_ = 0;
  unsigned calm_epochs_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace abftecc::sim
