#include "sim/platform.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "abft/ft_cg.hpp"
#include "abft/ft_cholesky.hpp"
#include "abft/ft_dgemm.hpp"
#include "abft/ft_hpl.hpp"
#include "abft/runtime.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "obs/trace.hpp"
#include "os/os.hpp"
#include "sim/dgms.hpp"
#include "sim/tap.hpp"

namespace abftecc::sim {

namespace {

void print_usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --json <path>          write a machine-readable report (JSON)\n"
      "  --trace <path>         write a Chrome trace_event JSON timeline\n"
      "  --trace-capacity <n>   event ring size (default 8192; raise so\n"
      "                         demand misses don't evict rare chain events)\n"
      "  --seed <n>             RNG seed for the generated inputs\n"
      "  --verify-period <n>    ABFT verification period (panels/iterations)\n"
      "  --cache-scale <n>      divide the Table 3 cache sizes by n\n"
      "  --dgemm-dim <n>        FT-DGEMM matrix dimension\n"
      "  --cholesky-dim <n>     FT-Cholesky matrix dimension\n"
      "  --cg-dim <n>           FT-CG system dimension\n"
      "  --cg-iters <n>         FT-CG iteration count\n"
      "  --hpl-dim <n>          FT-HPL matrix dimension\n"
      "  --hpl-procs <n>        FT-HPL simulated process count\n"
      "  --closed-page          use the closed-page row-buffer policy\n"
      "  --hw-assisted          enable hardware-assisted (simplified) verify\n"
      "  --help                 show this message\n",
      prog);
}

}  // namespace

CliReport parse_cli(int argc, char** argv, PlatformOptions& opt) {
  CliReport out;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto as_size = [&](int i) {
    return static_cast<std::size_t>(std::strtoull(need_value(i), nullptr, 10));
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      out.json_path = need_value(i), ++i;
    } else if (std::strcmp(a, "--trace") == 0) {
      out.trace_path = need_value(i), ++i;
      obs::default_tracer().enable();
    } else if (std::strcmp(a, "--trace-capacity") == 0) {
      obs::default_tracer().set_capacity(as_size(i)), ++i;
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--verify-period") == 0) {
      opt.verify_period = as_size(i), ++i;
    } else if (std::strcmp(a, "--cache-scale") == 0) {
      opt.cache_scale =
          static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10)),
      ++i;
    } else if (std::strcmp(a, "--dgemm-dim") == 0) {
      opt.dgemm_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--cholesky-dim") == 0) {
      opt.cholesky_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--cg-dim") == 0) {
      opt.cg_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--cg-iters") == 0) {
      opt.cg_iterations = as_size(i), ++i;
    } else if (std::strcmp(a, "--hpl-dim") == 0) {
      opt.hpl_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--hpl-procs") == 0) {
      opt.hpl_processes = as_size(i), ++i;
    } else if (std::strcmp(a, "--closed-page") == 0) {
      opt.row_policy = memsim::RowBufferPolicy::kClosedPage;
    } else if (std::strcmp(a, "--hw-assisted") == 0) {
      opt.hardware_assisted = true;
    } else if (std::strcmp(a, "--help") == 0) {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: ignoring unknown flag '%s'\n", argv[0], a);
    }
  }
  return out;
}

namespace {

/// One simulated node wired end to end.
struct Node {
  memsim::SystemConfig cfg;
  std::unique_ptr<memsim::MemorySystem> sys;
  std::unique_ptr<abftecc::os::Os> osl;
  std::unique_ptr<abft::Runtime> rt;
  std::unique_ptr<TapContext> ctx;
  std::shared_ptr<DgmsController> dgms;
  std::uint64_t abft_bytes = 0;
  std::uint64_t total_bytes = 0;

  explicit Node(const PlatformOptions& opt) {
    cfg = memsim::SystemConfig::scaled(opt.cache_scale);
    cfg.row_policy = opt.row_policy;
    sys = std::make_unique<memsim::MemorySystem>(
        cfg, spec(opt.strategy).default_scheme);
    osl = std::make_unique<abftecc::os::Os>(*sys);
    rt = std::make_unique<abft::Runtime>(osl.get());
    ctx = std::make_unique<TapContext>(*osl, *sys);
    if (opt.use_dgms) {
      dgms = std::make_shared<DgmsController>(cfg.page_bytes);
      auto predictor = dgms;
      sys->set_shape_override(
          [predictor](std::uint64_t phys, ecc::Scheme s) {
            return predictor->shape(phys, s);
          });
    }
  }

  MatrixView abft_matrix(std::size_t rows, std::size_t cols,
                         ecc::Scheme scheme, const char* name) {
    const std::size_t bytes = rows * cols * sizeof(double);
    void* p = osl->malloc_ecc(bytes, scheme, name, /*abft_protected=*/true);
    ABFTECC_REQUIRE(p != nullptr);
    abft_bytes += bytes;
    total_bytes += bytes;
    return MatrixView(static_cast<double*>(p), rows, cols, rows);
  }

  MatrixView plain_matrix(std::size_t rows, std::size_t cols,
                          const char* name) {
    const std::size_t bytes = rows * cols * sizeof(double);
    void* p = osl->malloc_plain(bytes, name);
    ABFTECC_REQUIRE(p != nullptr);
    total_bytes += bytes;
    return MatrixView(static_cast<double*>(p), rows, cols, rows);
  }

  std::span<double> abft_vector(std::size_t n, ecc::Scheme scheme,
                                const char* name) {
    auto m = abft_matrix(n, 1, scheme, name);
    return {m.data(), n};
  }
};

void copy_into(MatrixView dst, ConstMatrixView src) {
  ABFTECC_REQUIRE(dst.rows() == src.rows() && dst.cols() == src.cols());
  for (std::size_t j = 0; j < src.cols(); ++j)
    for (std::size_t i = 0; i < src.rows(); ++i) dst(i, j) = src(i, j);
}

RunMetrics collect(Kernel k, const PlatformOptions& opt, const Node& node,
                   const abft::FtStats& ft, abft::FtStatus status) {
  RunMetrics m;
  m.kernel = k;
  m.strategy = opt.strategy;
  m.sys = node.sys->stats();
  m.l1 = node.sys->l1_stats();
  m.l2 = node.sys->l2_stats();
  m.dram = node.sys->dram_stats();
  m.seconds = node.sys->elapsed_seconds();
  m.ipc = m.sys.ipc();
  m.mem_dynamic_pj = node.sys->memory_dynamic_energy_pj();
  m.mem_standby_pj = node.sys->memory_standby_energy_pj();
  m.processor_pj = node.sys->processor_energy_pj();
  m.mem_dynamic_abft_pj = m.sys.dram_dynamic_abft_pj;
  m.mem_dynamic_other_pj = m.sys.dram_dynamic_other_pj;
  m.refs_abft = node.ctx->refs_abft();
  m.refs_other = node.ctx->refs_other();
  m.ft = ft;
  m.status = status;
  m.abft_bytes = node.abft_bytes;
  m.total_bytes = node.total_bytes;
  return m;
}

abft::FtOptions ft_options(const PlatformOptions& opt) {
  abft::FtOptions fo;
  fo.verify_period = opt.verify_period;
  fo.hardware_assisted = opt.hardware_assisted;
  return fo;
}

RunMetrics run_dgemm(const PlatformOptions& opt) {
  Node node(opt);
  const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
  const std::size_t n = opt.dgemm_dim;
  Rng rng(opt.seed);
  Matrix a_host = Matrix::random(n, n, rng);
  Matrix b_host = Matrix::random(n, n, rng);

  // Inputs are consumed once during encoding and are not ABFT-protected.
  MatrixView a = node.plain_matrix(n, n, "dgemm.A");
  MatrixView b = node.plain_matrix(n, n, "dgemm.B");
  copy_into(a, a_host.view());
  copy_into(b, b_host.view());

  abft::FtDgemm::Buffers buf{
      node.abft_matrix(n + 1, n, abft_scheme, "dgemm.Ac"),
      node.abft_matrix(n, n + 1, abft_scheme, "dgemm.Br"),
      node.abft_matrix(n + 1, n + 1, abft_scheme, "dgemm.Cf")};
  abft::FtDgemm ft(ConstMatrixView(a), ConstMatrixView(b), buf,
                   ft_options(opt), node.rt.get());
  const abft::FtStatus st = ft.run(MemoryTap(*node.ctx));
  return collect(Kernel::kDgemm, opt, node, ft.stats(), st);
}

RunMetrics run_cholesky(const PlatformOptions& opt) {
  Node node(opt);
  const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
  const std::size_t n = opt.cholesky_dim;
  Rng rng(opt.seed);
  Matrix a_host = Matrix::random_spd(n, rng);

  MatrixView a = node.abft_matrix(n, n, abft_scheme, "cholesky.A");
  copy_into(a, a_host.view());
  MatrixView chk = node.abft_matrix(n, 2, abft_scheme, "cholesky.checksums");
  abft::FtCholesky::Buffers buf{a, chk.col(0), chk.col(1)};
  abft::FtCholesky ft(buf, ft_options(opt), node.rt.get());
  const abft::FtStatus st = ft.run(MemoryTap(*node.ctx));
  return collect(Kernel::kCholesky, opt, node, ft.stats(), st);
}

RunMetrics run_cg_impl(std::size_t dim, std::size_t iterations,
                       const PlatformOptions& opt) {
  Node node(opt);
  const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
  const std::size_t n = dim;
  Rng rng(opt.seed);
  linalg::LinearSystem sys = linalg::make_spd_system(n, rng);

  // FT-CG's ABFT region covers the vectors of Section 2.1 plus the static
  // operator matrix, protected by per-column checksums (see DESIGN.md).
  MatrixView a = node.abft_matrix(n, n, abft_scheme, "cg.A");
  copy_into(a, sys.a.view());
  MatrixView vecs = node.abft_matrix(n, 5, abft_scheme, "cg.vectors");
  std::span<double> b = node.abft_vector(n, abft_scheme, "cg.b");
  for (std::size_t i = 0; i < n; ++i) b[i] = sys.b[i];

  abft::FtCg::Buffers buf{vecs.col(0), vecs.col(1), vecs.col(2), vecs.col(3),
                          vecs.col(4)};
  vecs.fill(0.0);
  linalg::CgOptions cg_opt;
  cg_opt.max_iterations = iterations;
  cg_opt.tolerance = 1e-30;  // representative phase: run exactly N iterations
  abft::FtCg ft(a, b, buf, cg_opt, ft_options(opt), node.rt.get());
  const abft::FtCgResult res = ft.run(MemoryTap(*node.ctx));
  // A non-converged representative phase is the expected outcome here.
  const abft::FtStatus st = res.status == abft::FtStatus::kNumericalFailure
                                ? abft::FtStatus::kOk
                                : res.status;
  return collect(Kernel::kCg, opt, node, ft.stats(), st);
}

RunMetrics run_hpl(const PlatformOptions& opt) {
  Node node(opt);
  const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
  const std::size_t n = opt.hpl_dim;
  const std::size_t h = n / opt.hpl_processes;
  Rng rng(opt.seed);
  linalg::LinearSystem sys = linalg::make_general_system(n, rng);

  abft::FtHpl::Buffers buf{
      node.abft_matrix(n + h, n + 1, abft_scheme, "hpl.Ae"),
      node.abft_matrix(h, n + 1, abft_scheme, "hpl.Uc")};
  abft::FtHpl ft(sys.a.view(), sys.b, opt.hpl_processes, buf,
                 ft_options(opt), node.rt.get());
  const abft::FtStatus st = ft.factor(MemoryTap(*node.ctx));
  return collect(Kernel::kHpl, opt, node, ft.stats(), st);
}

}  // namespace

RunMetrics run_kernel(Kernel kernel, const PlatformOptions& opt) {
  switch (kernel) {
    case Kernel::kDgemm: return run_dgemm(opt);
    case Kernel::kCholesky: return run_cholesky(opt);
    case Kernel::kCg: return run_cg_impl(opt.cg_dim, opt.cg_iterations, opt);
    case Kernel::kHpl: return run_hpl(opt);
  }
  ABFTECC_REQUIRE(!"unknown kernel");
  return {};
}

RunMetrics run_cg_at_dim(std::size_t dim, std::size_t iterations,
                         const PlatformOptions& opt) {
  return run_cg_impl(dim, iterations, opt);
}

}  // namespace abftecc::sim
