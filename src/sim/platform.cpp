#include "sim/platform.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "abft/ft_cg.hpp"
#include "abft/ft_cholesky.hpp"
#include "abft/ft_dgemm.hpp"
#include "abft/ft_dgemm_fused.hpp"
#include "abft/ft_hpl.hpp"
#include "abft/runtime.hpp"
#include "sim/backend.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "linalg/generate.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "os/os.hpp"
#include "recovery/manager.hpp"
#include "sim/dgms.hpp"

namespace abftecc::sim {

namespace {

void print_usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --json <path>          write a machine-readable report (JSON)\n"
      "  --metrics-out <path>   write an OpenMetrics text exposition of the\n"
      "                         final metric registry (telemetry plane)\n"
      "  --trace <path>         write a Chrome trace_event JSON timeline\n"
      "  --chrome-trace <path>  write a merged Perfetto timeline (tracer\n"
      "                         events + profiler phase spans); enables\n"
      "                         tracing and phase profiling\n"
      "  --trace-capacity <n>   event ring size (default 8192; raise so\n"
      "                         demand misses don't evict rare chain events)\n"
      "  --seed <n>             RNG seed for the generated inputs\n"
      "  --verify-period <n>    ABFT verification period (panels/iterations)\n"
      "  --cache-scale <n>      divide the Table 3 cache sizes by n\n"
      "  --dgemm-dim <n>        FT-DGEMM matrix dimension\n"
      "  --cholesky-dim <n>     FT-Cholesky matrix dimension\n"
      "  --cg-dim <n>           FT-CG system dimension\n"
      "  --cg-iters <n>         FT-CG iteration count\n"
      "  --hpl-dim <n>          FT-HPL matrix dimension\n"
      "  --hpl-procs <n>        FT-HPL simulated process count\n"
      "  --backend <sim|native> kernel/memory backend: sim (instrumented\n"
      "                         memsim, default) or native (hardware speed,\n"
      "                         fused SIMD FT-DGEMM)\n"
      "  --closed-page          use the closed-page row-buffer policy\n"
      "  --hw-assisted          enable hardware-assisted (simplified) verify\n"
      "  --ladder               enable the recovery escalation ladder\n"
      "  --help                 show this message\n",
      prog);
}

void copy_into(MatrixView dst, ConstMatrixView src) {
  ABFTECC_REQUIRE(dst.rows() == src.rows() && dst.cols() == src.cols());
  for (std::size_t j = 0; j < src.cols(); ++j)
    for (std::size_t i = 0; i < src.rows(); ++i) dst(i, j) = src(i, j);
}

abft::FtOptions ft_options(const PlatformOptions& opt) {
  abft::FtOptions fo;
  fo.verify_period = opt.verify_period;
  fo.hardware_assisted = opt.hardware_assisted;
  return fo;
}

}  // namespace

void record_native_metrics(const NativeBackend::Counters& counters,
                           const abft::FtStats& ft) {
  obs::Registry& reg = obs::default_registry();
  reg.counter("native.touches").add(counters.touches);
  reg.counter("native.bytes_read").add(counters.bytes_read);
  reg.counter("native.bytes_written").add(counters.bytes_written);
  reg.counter("native.faults_injected").add(counters.faults_injected);
  reg.counter("abft.verifications").add(ft.verifications);
  reg.counter("abft.errors_detected").add(ft.errors_detected);
  reg.counter("abft.errors_corrected").add(ft.errors_corrected);
  reg.counter("abft.hw_notifications_used").add(ft.hw_notifications_used);
  reg.gauge("abft.encode_seconds").add(ft.encode_seconds);
  reg.gauge("abft.verify_seconds").add(ft.verify_seconds);
  reg.gauge("abft.correct_seconds").add(ft.correct_seconds);
}

CliReport parse_cli(int argc, char** argv, PlatformOptions& opt) {
  CliReport out;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto as_size = [&](int i) {
    return static_cast<std::size_t>(std::strtoull(need_value(i), nullptr, 10));
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      out.json_path = need_value(i), ++i;
    } else if (std::strcmp(a, "--metrics-out") == 0) {
      out.metrics_out_path = need_value(i), ++i;
    } else if (std::strcmp(a, "--trace") == 0) {
      out.trace_path = need_value(i), ++i;
      obs::default_tracer().enable();
    } else if (std::strcmp(a, "--chrome-trace") == 0) {
      out.chrome_trace_path = need_value(i), ++i;
      obs::default_tracer().enable();
      opt.profile = true;
    } else if (std::strcmp(a, "--trace-capacity") == 0) {
      obs::default_tracer().set_capacity(as_size(i)), ++i;
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(need_value(i), nullptr, 10), ++i;
    } else if (std::strcmp(a, "--verify-period") == 0) {
      opt.verify_period = as_size(i), ++i;
    } else if (std::strcmp(a, "--cache-scale") == 0) {
      opt.cache_scale =
          static_cast<unsigned>(std::strtoul(need_value(i), nullptr, 10)),
      ++i;
    } else if (std::strcmp(a, "--dgemm-dim") == 0) {
      opt.dgemm_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--cholesky-dim") == 0) {
      opt.cholesky_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--cg-dim") == 0) {
      opt.cg_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--cg-iters") == 0) {
      opt.cg_iterations = as_size(i), ++i;
    } else if (std::strcmp(a, "--hpl-dim") == 0) {
      opt.hpl_dim = as_size(i), ++i;
    } else if (std::strcmp(a, "--hpl-procs") == 0) {
      opt.hpl_processes = as_size(i), ++i;
    } else if (std::strcmp(a, "--backend") == 0) {
      const char* v = need_value(i);
      ++i;
      if (std::strcmp(v, "native") == 0) {
        opt.backend = BackendMode::kNative;
      } else if (std::strcmp(v, "sim") == 0) {
        opt.backend = BackendMode::kSimulated;
      } else {
        std::fprintf(stderr, "%s: unknown backend '%s' (want sim|native)\n",
                     argv[0], v);
        std::exit(2);
      }
    } else if (std::strcmp(a, "--closed-page") == 0) {
      opt.row_policy = memsim::RowBufferPolicy::kClosedPage;
    } else if (std::strcmp(a, "--hw-assisted") == 0) {
      opt.hardware_assisted = true;
    } else if (std::strcmp(a, "--ladder") == 0) {
      opt.ladder = true;
    } else if (std::strcmp(a, "--help") == 0) {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: ignoring unknown flag '%s'\n", argv[0], a);
    }
  }
  return out;
}

/// The wired node. Member order is load-bearing: the obs scopes precede
/// the MemorySystem so a private registry is already installed when the
/// system caches its instrument references, and the destructor tears the
/// layers down in reverse (Injector and Os unhook themselves while the
/// MemorySystem is still alive) before the scopes restore the thread's
/// previous obs bindings.
struct Session::Impl {
  PlatformOptions opt;
  std::unique_ptr<obs::Registry> own_registry;
  std::unique_ptr<obs::Tracer> own_tracer;
  std::optional<obs::RegistryScope> registry_scope;
  std::optional<obs::TracerScope> tracer_scope;
  memsim::SystemConfig cfg;
  std::shared_ptr<DgmsController> dgms;
  std::unique_ptr<memsim::MemorySystem> sys;
  std::unique_ptr<abftecc::os::Os> osl;
  std::unique_ptr<abft::Runtime> rt;
  std::unique_ptr<recovery::RecoveryManager> rm;
  std::unique_ptr<TapContext> ctx;
  std::unique_ptr<fault::Injector> inj;
  void* flusher = nullptr;  ///< lazily allocated flush_caches() buffer
  std::uint64_t abft_bytes = 0;
  std::uint64_t total_bytes = 0;
  std::vector<double> last_result;
  /// Native-mode backend: region registry + bulk-touch counters. Native
  /// runs allocate raw heap buffers (the simulated allocator's frame
  /// capacity is sized for scaled-down sim inputs, not dim-2048 payloads).
  NativeBackend native;
  /// Backend counter totals at the end of the previous native run, so
  /// collect_native records per-run deltas into the registry.
  NativeBackend::Counters native_seen;

  Impl(const PlatformOptions& o, memsim::Hooks hooks, bool private_obs)
      : opt(o) {
    if (private_obs) {
      own_registry = std::make_unique<obs::Registry>();
      own_tracer = std::make_unique<obs::Tracer>();
      registry_scope.emplace(*own_registry);
      tracer_scope.emplace(*own_tracer);
    }
    cfg = memsim::SystemConfig::scaled(opt.cache_scale);
    cfg.row_policy = opt.row_policy;
    if (opt.use_dgms) {
      dgms = std::make_shared<DgmsController>(cfg.page_bytes);
      auto predictor = dgms;
      hooks.shape_override = [predictor](std::uint64_t phys, ecc::Scheme s) {
        return predictor->shape(phys, s);
      };
    }
    sys = std::make_unique<memsim::MemorySystem>(
        cfg, spec(opt.strategy).default_scheme, std::move(hooks));
    osl = std::make_unique<abftecc::os::Os>(*sys);
    rt = std::make_unique<abft::Runtime>(osl.get());
    osl->set_exposed_log_capacity(opt.exposed_log_capacity);
    if (opt.repromote_threshold > 0)
      osl->set_repromote_threshold(opt.repromote_threshold);
    if (opt.ladder) {
      rm = std::make_unique<recovery::RecoveryManager>(opt.recovery,
                                                       osl.get());
      rt->set_recovery(rm.get());
      osl->set_escalation_handler(
          [m = rm.get()](const abftecc::os::ExposedError& e) {
            return m->on_unprotected_error(e.vaddr, e.region_base,
                                           e.region_size);
          });
    }
    ctx = std::make_unique<TapContext>(*osl, *sys);
    inj = std::make_unique<fault::Injector>(*sys, *osl);
    if (opt.profile) {
      // Rebind this thread's profiler to the fresh system and restart it:
      // a new MemorySystem's counters begin at zero, so attribution must
      // not straddle sessions.
      auto& prof = obs::default_profiler();
      prof.stop();
      prof.set_sampler([s = sys.get()] { return s->counter_sample(); });
      prof.start();
    }
  }

  ~Impl() {
    if (opt.profile) {
      // Final attribution while the sampled system is still alive; the
      // tree stays readable (Report exports it after the Session dies).
      auto& prof = obs::default_profiler();
      prof.stop();
      prof.set_sampler({});
    }
    // The escalation handler captures rm, which dies before osl.
    if (osl != nullptr) osl->set_escalation_handler(nullptr);
  }

  MatrixView abft_matrix(std::size_t rows, std::size_t cols,
                         ecc::Scheme scheme, const char* name) {
    const std::size_t bytes = rows * cols * sizeof(double);
    void* p = osl->malloc_ecc(bytes, scheme, name, /*abft_protected=*/true);
    ABFTECC_REQUIRE(p != nullptr);
    abft_bytes += bytes;
    total_bytes += bytes;
    return MatrixView(static_cast<double*>(p), rows, cols, rows);
  }

  MatrixView plain_matrix(std::size_t rows, std::size_t cols,
                          const char* name) {
    const std::size_t bytes = rows * cols * sizeof(double);
    void* p = osl->malloc_plain(bytes, name);
    ABFTECC_REQUIRE(p != nullptr);
    total_bytes += bytes;
    return MatrixView(static_cast<double*>(p), rows, cols, rows);
  }

  std::span<double> abft_vector(std::size_t n, ecc::Scheme scheme,
                                const char* name) {
    auto m = abft_matrix(n, 1, scheme, name);
    return {m.data(), n};
  }

  RunMetrics collect(Kernel k, const abft::FtStats& ft,
                     abft::FtStatus status) const {
    RunMetrics m;
    m.kernel = k;
    m.strategy = opt.strategy;
    m.sys = sys->stats();
    m.l1 = sys->l1_stats();
    m.l2 = sys->l2_stats();
    m.dram = sys->dram_stats();
    m.seconds = sys->elapsed_seconds();
    m.ipc = m.sys.ipc();
    m.mem_dynamic_pj = sys->memory_dynamic_energy_pj();
    m.mem_standby_pj = sys->memory_standby_energy_pj();
    m.processor_pj = sys->processor_energy_pj();
    m.mem_dynamic_abft_pj = m.sys.dram_dynamic_abft_pj;
    m.mem_dynamic_other_pj = m.sys.dram_dynamic_other_pj;
    m.refs_abft = ctx->refs_abft();
    m.refs_other = ctx->refs_other();
    m.ft = ft;
    m.status = status;
    m.abft_bytes = abft_bytes;
    m.total_bytes = total_bytes;
    if (rm != nullptr) {
      m.recovery = rm->stats();
      m.verdict = rm->verdict();
    }
    m.exposed_dropped = osl->exposed_dropped();
    return m;
  }

  void capture(ConstMatrixView v) {
    last_result.clear();
    last_result.reserve(v.rows() * v.cols());
    for (std::size_t i = 0; i < v.rows(); ++i)
      for (std::size_t j = 0; j < v.cols(); ++j)
        last_result.push_back(v(i, j));
  }

  void capture(std::span<const double> v) {
    last_result.assign(v.begin(), v.end());
  }

  /// Scoped native-backend region registration for one run's buffers.
  struct NativeRegion {
    NativeBackend* be;
    std::size_t id;
    NativeRegion(NativeBackend& b, MatrixView v, const char* name, bool abft)
        : be(&b),
          id(b.register_region(v.data(),
                              v.ld() * v.cols() * sizeof(double), name,
                              abft)) {}
    ~NativeRegion() { be->unregister_region(id); }
    NativeRegion(const NativeRegion&) = delete;
    NativeRegion& operator=(const NativeRegion&) = delete;
  };

  RunMetrics collect_native(Kernel k, const abft::FtStats& ft,
                            abft::FtStatus status, double seconds,
                            std::uint64_t abft_b, std::uint64_t total_b) {
    RunMetrics m;
    m.kernel = k;
    m.strategy = opt.strategy;
    m.backend = BackendMode::kNative;
    m.seconds = seconds;
    m.ft = ft;
    m.status = status;
    m.abft_bytes = abft_b;
    m.total_bytes = total_b;
    abft_bytes += abft_b;
    total_bytes += total_b;
    // Native runs feed the same registry schema as sim runs (telemetry
    // plane): bulk-touch byte counters as per-run deltas, FT counters
    // straight from the kernel's per-run stats.
    const NativeBackend::Counters& now = native.counters();
    NativeBackend::Counters delta;
    delta.touches = now.touches - native_seen.touches;
    delta.bytes_read = now.bytes_read - native_seen.bytes_read;
    delta.bytes_written = now.bytes_written - native_seen.bytes_written;
    delta.faults_injected = now.faults_injected - native_seen.faults_injected;
    native_seen = now;
    record_native_metrics(delta, ft);
    return m;
  }

  RunMetrics run_dgemm_native() {
    const std::size_t n = opt.dgemm_dim;
    Rng rng(opt.seed);
    Matrix a = Matrix::random(n, n, rng);
    Matrix b = Matrix::random(n, n, rng);
    Matrix c(n, n);
    NativeRegion ra(native, a.view(), "dgemm.A", false);
    NativeRegion rbr(native, b.view(), "dgemm.B", false);
    NativeRegion rc(native, c.view(), "dgemm.C", true);
    abft::FtDgemmFused::Options fopt;
    fopt.verify_period = opt.verify_period;
    abft::FtDgemmFused ft(a.view(), b.view(), c.view(), fopt);
    const TickClock wall;
    const std::uint64_t t0 = wall.now();
    const abft::FtStatus st = ft.run(native);
    const double seconds = wall.seconds_since(t0);
    capture(ft.result());
    return collect_native(Kernel::kDgemm, ft.stats(), st, seconds,
                          n * n * sizeof(double),
                          3 * n * n * sizeof(double));
  }

  RunMetrics run_cholesky_native() {
    const std::size_t n = opt.cholesky_dim;
    Rng rng(opt.seed);
    Matrix a = Matrix::random_spd(n, rng);
    Matrix chk(n, 2);
    NativeRegion ra(native, a.view(), "cholesky.A", true);
    NativeRegion rchk(native, chk.view(), "cholesky.checksums", true);
    abft::FtCholesky::Buffers buf{a.view(), chk.view().col(0),
                                  chk.view().col(1)};
    abft::FtCholesky ft(buf, ft_options(opt), /*runtime=*/nullptr);
    const TickClock wall;
    const std::uint64_t t0 = wall.now();
    const abft::FtStatus st = ft.run(native);
    const double seconds = wall.seconds_since(t0);
    capture(ConstMatrixView(a.view()));
    return collect_native(Kernel::kCholesky, ft.stats(), st, seconds,
                          (n * n + 2 * n) * sizeof(double),
                          (n * n + 2 * n) * sizeof(double));
  }

  RunMetrics run_cg_native(std::size_t dim, std::size_t iterations) {
    const std::size_t n = dim;
    Rng rng(opt.seed);
    linalg::LinearSystem lin = linalg::make_spd_system(n, rng);
    Matrix vecs(n, 5);
    vecs.view().fill(0.0);
    NativeRegion ra(native, lin.a.view(), "cg.A", true);
    NativeRegion rv(native, vecs.view(), "cg.vectors", true);
    abft::FtCg::Buffers buf{vecs.view().col(0), vecs.view().col(1),
                            vecs.view().col(2), vecs.view().col(3),
                            vecs.view().col(4)};
    linalg::CgOptions cg_opt;
    cg_opt.max_iterations = iterations;
    cg_opt.tolerance = 1e-30;  // representative phase: run exactly N iters
    abft::FtCg ft(lin.a.view(), lin.b, buf, cg_opt, ft_options(opt),
                  /*runtime=*/nullptr);
    const TickClock wall;
    const std::uint64_t t0 = wall.now();
    const abft::FtCgResult res = ft.run(native);
    const double seconds = wall.seconds_since(t0);
    const abft::FtStatus st = res.status == abft::FtStatus::kNumericalFailure
                                  ? abft::FtStatus::kOk
                                  : res.status;
    capture(std::span<const double>(vecs.view().col(0).data(), n));
    return collect_native(Kernel::kCg, ft.stats(), st, seconds,
                          (n * n + 6 * n) * sizeof(double),
                          (n * n + 6 * n) * sizeof(double));
  }

  RunMetrics run_hpl_native() {
    const std::size_t n = opt.hpl_dim;
    const std::size_t h = n / opt.hpl_processes;
    Rng rng(opt.seed);
    linalg::LinearSystem lin = linalg::make_general_system(n, rng);
    Matrix ae(n + h, n + 1), uc(h, n + 1);
    NativeRegion rae(native, ae.view(), "hpl.Ae", true);
    NativeRegion ruc(native, uc.view(), "hpl.Uc", true);
    abft::FtHpl::Buffers buf{ae.view(), uc.view()};
    abft::FtHpl ft(lin.a.view(), lin.b, opt.hpl_processes, buf,
                   ft_options(opt), /*runtime=*/nullptr);
    const TickClock wall;
    const std::uint64_t t0 = wall.now();
    const abft::FtStatus st = ft.factor(native);
    const double seconds = wall.seconds_since(t0);
    std::vector<double> x(n, 0.0);
    if (st != abft::FtStatus::kUncorrectable) ft.solve(x);
    last_result = std::move(x);
    const std::uint64_t bytes =
        ((n + h) * (n + 1) + h * (n + 1)) * sizeof(double);
    return collect_native(Kernel::kHpl, ft.stats(), st, seconds, bytes,
                          bytes);
  }

  RunMetrics run_dgemm() {
    const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
    const std::size_t n = opt.dgemm_dim;
    Rng rng(opt.seed);
    Matrix a_host = Matrix::random(n, n, rng);
    Matrix b_host = Matrix::random(n, n, rng);

    // Inputs are consumed once during encoding and are not ABFT-protected.
    MatrixView a = plain_matrix(n, n, "dgemm.A");
    MatrixView b = plain_matrix(n, n, "dgemm.B");
    copy_into(a, a_host.view());
    copy_into(b, b_host.view());

    abft::FtDgemm::Buffers buf{abft_matrix(n + 1, n, abft_scheme, "dgemm.Ac"),
                               abft_matrix(n, n + 1, abft_scheme, "dgemm.Br"),
                               abft_matrix(n + 1, n + 1, abft_scheme,
                                           "dgemm.Cf")};
    // Pristine-input checkpoint BEFORE the kernel exists: a fault hitting
    // the plain (non-ABFT) inputs escalates to a rollback demand, and this
    // epoch-0 snapshot is what makes that demand satisfiable.
    recovery::CheckpointStore::RangeId ida = 0, idb = 0;
    if (rm != nullptr) {
      ida = rm->store().track("dgemm.A", a.data(), n * n * sizeof(double));
      idb = rm->store().track("dgemm.B", b.data(), n * n * sizeof(double));
      rm->commit(0);
    }
    abft::FtDgemm ft(ConstMatrixView(a), ConstMatrixView(b), buf,
                     ft_options(opt), rt.get());
    obs::PhaseScope compute(obs::Phase::kCompute);
    SimBackend be(*ctx, *sys);
    const abft::FtStatus st = ft.run(be);
    if (rm != nullptr) {
      rm->store().untrack(ida);
      rm->store().untrack(idb);
    }
    capture(ft.result());
    return collect(Kernel::kDgemm, ft.stats(), st);
  }

  RunMetrics run_cholesky() {
    const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
    const std::size_t n = opt.cholesky_dim;
    Rng rng(opt.seed);
    Matrix a_host = Matrix::random_spd(n, rng);

    MatrixView a = abft_matrix(n, n, abft_scheme, "cholesky.A");
    copy_into(a, a_host.view());
    MatrixView chk = abft_matrix(n, 2, abft_scheme, "cholesky.checksums");
    abft::FtCholesky::Buffers buf{a, chk.col(0), chk.col(1)};
    abft::FtCholesky ft(buf, ft_options(opt), rt.get());
    obs::PhaseScope compute(obs::Phase::kCompute);
    SimBackend be(*ctx, *sys);
    const abft::FtStatus st = ft.run(be);
    capture(ConstMatrixView(a));
    return collect(Kernel::kCholesky, ft.stats(), st);
  }

  RunMetrics run_cg(std::size_t dim, std::size_t iterations) {
    const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
    const std::size_t n = dim;
    Rng rng(opt.seed);
    linalg::LinearSystem lin = linalg::make_spd_system(n, rng);

    // FT-CG's ABFT region covers the vectors of Section 2.1 plus the static
    // operator matrix, protected by per-column checksums (see DESIGN.md).
    MatrixView a = abft_matrix(n, n, abft_scheme, "cg.A");
    copy_into(a, lin.a.view());
    MatrixView vecs = abft_matrix(n, 5, abft_scheme, "cg.vectors");
    std::span<double> b = abft_vector(n, abft_scheme, "cg.b");
    for (std::size_t i = 0; i < n; ++i) b[i] = lin.b[i];

    abft::FtCg::Buffers buf{vecs.col(0), vecs.col(1), vecs.col(2),
                            vecs.col(3), vecs.col(4)};
    vecs.fill(0.0);
    linalg::CgOptions cg_opt;
    cg_opt.max_iterations = iterations;
    cg_opt.tolerance = 1e-30;  // representative phase: run exactly N iters
    abft::FtCg ft(a, b, buf, cg_opt, ft_options(opt), rt.get());
    obs::PhaseScope compute(obs::Phase::kCompute);
    SimBackend be(*ctx, *sys);
    const abft::FtCgResult res = ft.run(be);
    // A non-converged representative phase is the expected outcome here.
    const abft::FtStatus st = res.status == abft::FtStatus::kNumericalFailure
                                  ? abft::FtStatus::kOk
                                  : res.status;
    capture(std::span<const double>(vecs.col(0).data(), n));
    return collect(Kernel::kCg, ft.stats(), st);
  }

  RunMetrics run_hpl() {
    const ecc::Scheme abft_scheme = spec(opt.strategy).abft_scheme;
    const std::size_t n = opt.hpl_dim;
    const std::size_t h = n / opt.hpl_processes;
    Rng rng(opt.seed);
    linalg::LinearSystem lin = linalg::make_general_system(n, rng);

    abft::FtHpl::Buffers buf{abft_matrix(n + h, n + 1, abft_scheme, "hpl.Ae"),
                             abft_matrix(h, n + 1, abft_scheme, "hpl.Uc")};
    abft::FtHpl ft(lin.a.view(), lin.b, opt.hpl_processes, buf,
                   ft_options(opt), rt.get());
    obs::PhaseScope compute(obs::Phase::kCompute);
    SimBackend be(*ctx, *sys);
    const abft::FtStatus st = ft.factor(be);
    // Back-substitution result: the quantity campaigns compare. Untapped:
    // the representative (timed) phase is the factorization.
    std::vector<double> x(n, 0.0);
    if (st != abft::FtStatus::kUncorrectable) ft.solve(x);
    last_result = std::move(x);
    return collect(Kernel::kHpl, ft.stats(), st);
  }
};

Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

memsim::MemorySystem& Session::memory() { return *impl_->sys; }
abftecc::os::Os& Session::os() { return *impl_->osl; }
abft::Runtime& Session::runtime() { return *impl_->rt; }
recovery::RecoveryManager* Session::recovery() { return impl_->rm.get(); }
fault::Injector& Session::injector() { return *impl_->inj; }
TapContext& Session::tap_context() { return *impl_->ctx; }

obs::Registry& Session::metrics() {
  return impl_->own_registry ? *impl_->own_registry : obs::default_registry();
}

obs::Tracer& Session::tracer() {
  return impl_->own_tracer ? *impl_->own_tracer : obs::default_tracer();
}

obs::PhaseProfiler& Session::profiler() { return obs::default_profiler(); }

const PlatformOptions& Session::options() const { return impl_->opt; }

ecc::Scheme Session::abft_scheme() const {
  return spec(impl_->opt.strategy).abft_scheme;
}

MatrixView Session::abft_matrix(std::size_t rows, std::size_t cols,
                                const char* name) {
  return impl_->abft_matrix(rows, cols, abft_scheme(), name);
}

MatrixView Session::abft_matrix(std::size_t rows, std::size_t cols,
                                ecc::Scheme scheme, const char* name) {
  return impl_->abft_matrix(rows, cols, scheme, name);
}

MatrixView Session::plain_matrix(std::size_t rows, std::size_t cols,
                                 const char* name) {
  return impl_->plain_matrix(rows, cols, name);
}

std::span<double> Session::abft_vector(std::size_t n, const char* name) {
  return impl_->abft_vector(n, abft_scheme(), name);
}

std::span<double> Session::abft_vector(std::size_t n, ecc::Scheme scheme,
                                       const char* name) {
  return impl_->abft_vector(n, scheme, name);
}

std::uint64_t Session::abft_bytes() const { return impl_->abft_bytes; }
std::uint64_t Session::total_bytes() const { return impl_->total_bytes; }

void Session::flush_caches() {
  const std::size_t bytes = 4 * impl_->cfg.l2.size_bytes;
  if (impl_->flusher == nullptr) {
    impl_->flusher = impl_->osl->malloc_plain(bytes, "session.flush");
    ABFTECC_REQUIRE(impl_->flusher != nullptr);
  }
  const std::uint64_t phys = *impl_->osl->virt_to_phys(impl_->flusher);
  for (std::uint64_t off = 0; off < bytes; off += 64)
    impl_->sys->access(phys + off, memsim::AccessKind::kRead);
}

RunMetrics Session::run(Kernel kernel) {
  if (impl_->opt.backend == BackendMode::kNative) {
    switch (kernel) {
      case Kernel::kDgemm: return impl_->run_dgemm_native();
      case Kernel::kCholesky: return impl_->run_cholesky_native();
      case Kernel::kCg:
        return impl_->run_cg_native(impl_->opt.cg_dim,
                                    impl_->opt.cg_iterations);
      case Kernel::kHpl: return impl_->run_hpl_native();
    }
    ABFTECC_REQUIRE(!"unknown kernel");
    return {};
  }
  switch (kernel) {
    case Kernel::kDgemm: return impl_->run_dgemm();
    case Kernel::kCholesky: return impl_->run_cholesky();
    case Kernel::kCg:
      return impl_->run_cg(impl_->opt.cg_dim, impl_->opt.cg_iterations);
    case Kernel::kHpl: return impl_->run_hpl();
  }
  ABFTECC_REQUIRE(!"unknown kernel");
  return {};
}

RunMetrics Session::run_cg(std::size_t dim, std::size_t iterations) {
  if (impl_->opt.backend == BackendMode::kNative)
    return impl_->run_cg_native(dim, iterations);
  return impl_->run_cg(dim, iterations);
}

const std::vector<double>& Session::last_result() const {
  return impl_->last_result;
}

Session Session::Builder::build() {
  return Session(
      std::make_unique<Impl>(opt_, std::move(hooks_), private_obs_));
}

RunMetrics run_kernel(Kernel kernel, const PlatformOptions& opt) {
  return Session::Builder(opt).build().run(kernel);
}

RunMetrics run_cg_at_dim(std::size_t dim, std::size_t iterations,
                         const PlatformOptions& opt) {
  return Session::Builder(opt).build().run_cg(dim, iterations);
}

}  // namespace abftecc::sim
