// Evaluation platform (paper Figure 4): run one ABFT kernel on the
// simulated memory system under a chosen ECC strategy and collect every
// quantity the paper's figures report.
#pragma once

#include <cstdint>
#include <string>

#include "abft/common.hpp"
#include "common/units.hpp"
#include "memsim/config.hpp"
#include "memsim/system.hpp"
#include "sim/strategy.hpp"

namespace abftecc::sim {

enum class Kernel { kDgemm, kCholesky, kCg, kHpl };

constexpr std::string_view kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kDgemm: return "FT-DGEMM";
    case Kernel::kCholesky: return "FT-Cholesky";
    case Kernel::kCg: return "FT-CG";
    case Kernel::kHpl: return "FT-HPL";
  }
  return "?";
}

struct PlatformOptions {
  Strategy strategy = Strategy::kWholeChipkill;
  // Scaled-down inputs (see DESIGN.md): the paper's 3000/8192 dims shrink
  // together with the caches so footprint/LLC ratios stay comparable.
  std::size_t dgemm_dim = 320;
  std::size_t cholesky_dim = 448;
  std::size_t cg_dim = 640;
  std::size_t cg_iterations = 8;
  std::size_t hpl_dim = 320;
  std::size_t hpl_processes = 4;
  std::size_t verify_period = 4;
  bool hardware_assisted = false;
  bool use_dgms = false;  ///< DGMS baseline instead of ABFT-directed ECC
  std::uint64_t seed = 42;
  unsigned cache_scale = 8;
  memsim::RowBufferPolicy row_policy = memsim::RowBufferPolicy::kOpenPage;
};

struct RunMetrics {
  Kernel kernel{};
  Strategy strategy{};
  memsim::SystemStats sys;
  memsim::CacheStats l1, l2;
  memsim::DramStats dram;
  double seconds = 0.0;  ///< simulated wall-clock of the phase
  double ipc = 0.0;
  Picojoules mem_dynamic_pj = 0.0;
  Picojoules mem_standby_pj = 0.0;
  Picojoules processor_pj = 0.0;
  Picojoules mem_dynamic_abft_pj = 0.0;
  Picojoules mem_dynamic_other_pj = 0.0;
  std::uint64_t refs_abft = 0;   ///< tap-level references, Table 4
  std::uint64_t refs_other = 0;
  abft::FtStats ft;
  abft::FtStatus status = abft::FtStatus::kOk;
  /// Bytes of relaxed-ECC (ABFT-protected) and total allocated data.
  std::uint64_t abft_bytes = 0;
  std::uint64_t total_bytes = 0;

  [[nodiscard]] Picojoules memory_pj() const {
    return mem_dynamic_pj + mem_standby_pj;
  }
  [[nodiscard]] Picojoules system_pj() const {
    return memory_pj() + processor_pj;
  }
};

/// Output destinations requested on a bench binary's command line.
struct CliReport {
  std::string json_path;   ///< --json <path>: schema-stable machine report
  std::string trace_path;  ///< --trace <path>: Chrome trace_event JSON
};

/// Parse the common bench CLI flags shared by every experiment binary,
/// applying overrides to `opt` in place. Unknown flags warn and are
/// ignored so older scripts keep working; `--help` prints usage and
/// exits. `--trace` additionally enables the global tracer.
CliReport parse_cli(int argc, char** argv, PlatformOptions& opt);

/// Run `kernel` under `opt` on a fresh simulated node.
RunMetrics run_kernel(Kernel kernel, const PlatformOptions& opt);

/// FT-CG at an explicit dimension/iteration count (scaling studies).
RunMetrics run_cg_at_dim(std::size_t dim, std::size_t iterations,
                         const PlatformOptions& opt);

}  // namespace abftecc::sim
