// Evaluation platform (paper Figure 4): run one ABFT kernel on the
// simulated memory system under a chosen ECC strategy and collect every
// quantity the paper's figures report.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "abft/common.hpp"
#include "common/backend.hpp"
#include "common/matrix.hpp"
#include "common/units.hpp"
#include "memsim/config.hpp"
#include "memsim/system.hpp"
#include "recovery/types.hpp"
#include "sim/strategy.hpp"
#include "sim/tap.hpp"

namespace abftecc::abft {
class Runtime;
}
namespace abftecc::fault {
class Injector;
}
namespace abftecc::obs {
class PhaseProfiler;
class Tracer;
}
namespace abftecc::recovery {
class RecoveryManager;
}

namespace abftecc::sim {

enum class Kernel { kDgemm, kCholesky, kCg, kHpl };

constexpr std::string_view kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kDgemm: return "FT-DGEMM";
    case Kernel::kCholesky: return "FT-Cholesky";
    case Kernel::kCg: return "FT-CG";
    case Kernel::kHpl: return "FT-HPL";
  }
  return "?";
}

struct PlatformOptions {
  Strategy strategy = Strategy::kWholeChipkill;
  /// Kernel/memory backend (DESIGN.md section 10): kSimulated routes every
  /// reference through memsim (paper-faithful cycles/energy/ECC, the
  /// default); kNative runs the kernels at hardware speed on raw heap
  /// buffers -- FT-DGEMM switches to the fused SIMD kernel, counters
  /// degrade to bulk-touch byte totals, and `seconds` is host wall-clock.
  BackendMode backend = BackendMode::kSimulated;
  // Scaled-down inputs (see DESIGN.md): the paper's 3000/8192 dims shrink
  // together with the caches so footprint/LLC ratios stay comparable.
  std::size_t dgemm_dim = 320;
  std::size_t cholesky_dim = 448;
  std::size_t cg_dim = 640;
  std::size_t cg_iterations = 8;
  std::size_t hpl_dim = 320;
  std::size_t hpl_processes = 4;
  std::size_t verify_period = 4;
  bool hardware_assisted = false;
  bool use_dgms = false;  ///< DGMS baseline instead of ABFT-directed ECC
  std::uint64_t seed = 42;
  unsigned cache_scale = 8;
  memsim::RowBufferPolicy row_policy = memsim::RowBufferPolicy::kOpenPage;
  /// Recovery escalation ladder (DESIGN.md "Recovery escalation ladder").
  /// Off by default: existing experiments keep the historical
  /// kUncorrectable/panic behavior.
  bool ladder = false;
  recovery::RecoveryOptions recovery;
  /// Fault-storm hardening knobs forwarded to the Os.
  std::size_t exposed_log_capacity = 1024;
  unsigned repromote_threshold = 0;  ///< 0 = no ECC re-promotion
  /// Phase-attributed cycle profiling (obs/profile.hpp). When set, the
  /// Session binds this thread's default_profiler() to its MemorySystem
  /// and (re)starts it at construction; run() attributes the kernel's
  /// numerical work to Phase::kCompute and the instrumented ABFT/recovery
  /// scopes to their phases. --chrome-trace turns this on.
  bool profile = false;
};

struct RunMetrics {
  Kernel kernel{};
  Strategy strategy{};
  /// Which backend produced this run. Under kNative the sim-derived fields
  /// (sys/l1/l2/dram, energies, refs) stay zero and `seconds` is host
  /// wall-clock instead of simulated time.
  BackendMode backend = BackendMode::kSimulated;
  memsim::SystemStats sys;
  memsim::CacheStats l1, l2;
  memsim::DramStats dram;
  double seconds = 0.0;  ///< simulated wall-clock of the phase
  double ipc = 0.0;
  Picojoules mem_dynamic_pj = 0.0;
  Picojoules mem_standby_pj = 0.0;
  Picojoules processor_pj = 0.0;
  Picojoules mem_dynamic_abft_pj = 0.0;
  Picojoules mem_dynamic_other_pj = 0.0;
  std::uint64_t refs_abft = 0;   ///< tap-level references, Table 4
  std::uint64_t refs_other = 0;
  abft::FtStats ft;
  abft::FtStatus status = abft::FtStatus::kOk;
  /// Bytes of relaxed-ECC (ABFT-protected) and total allocated data.
  std::uint64_t abft_bytes = 0;
  std::uint64_t total_bytes = 0;
  /// Ladder accounting (all zeros when the ladder is off).
  recovery::RecoveryStats recovery;
  recovery::RecoveryVerdict verdict = recovery::RecoveryVerdict::kNotNeeded;
  /// Exposed-error log records the OS dropped because the log was full
  /// (PR-4 storm overload path); lineage analysis uses this to tell
  /// "dropped under storm" from "lost" when chasing orphans.
  std::uint64_t exposed_dropped = 0;

  [[nodiscard]] Picojoules memory_pj() const {
    return mem_dynamic_pj + mem_standby_pj;
  }
  [[nodiscard]] Picojoules system_pj() const {
    return memory_pj() + processor_pj;
  }
};

/// One fully wired simulated node behind a single facade (paper Figure 4):
/// MemorySystem -> Os -> abft::Runtime -> TapContext, with a
/// fault::Injector chained into the DRAM-transfer hook. Construct through
/// Session::Builder; every bench harness, example, and campaign trial goes
/// through here instead of hand-wiring the layers.
///
/// A Session is one node. run() may be called repeatedly (stats
/// accumulate, each run allocates fresh kernel buffers); harnesses that
/// want per-run isolation build a fresh Session per run, which is exactly
/// what the run_kernel() convenience wrapper does.
class Session {
 public:
  class Builder;

  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;

  // --- wired components ----------------------------------------------------

  [[nodiscard]] memsim::MemorySystem& memory();
  [[nodiscard]] os::Os& os();
  [[nodiscard]] abft::Runtime& runtime();
  /// The recovery ladder's policy engine; null unless options().ladder.
  [[nodiscard]] recovery::RecoveryManager* recovery();
  [[nodiscard]] fault::Injector& injector();
  [[nodiscard]] TapContext& tap_context();
  [[nodiscard]] MemoryTap tap() { return MemoryTap(tap_context()); }
  /// Instruments this session records into: the thread's defaults, or the
  /// session-private pair under Builder::private_observability().
  [[nodiscard]] obs::Registry& metrics();
  [[nodiscard]] obs::Tracer& tracer();
  /// This thread's phase profiler (started by the Session under
  /// options().profile; stop() it before reading attribution).
  [[nodiscard]] obs::PhaseProfiler& profiler();
  [[nodiscard]] const PlatformOptions& options() const;
  /// Scheme malloc_ecc assigns to ABFT-protected structures here
  /// (spec(strategy).abft_scheme).
  [[nodiscard]] ecc::Scheme abft_scheme() const;

  // --- allocation ----------------------------------------------------------

  /// ABFT-protected allocation under the strategy's relaxed scheme (or an
  /// explicit one); counted in abft_bytes()/total_bytes().
  MatrixView abft_matrix(std::size_t rows, std::size_t cols, const char* name);
  MatrixView abft_matrix(std::size_t rows, std::size_t cols,
                         ecc::Scheme scheme, const char* name);
  /// Plain allocation under the node's default (strong) scheme.
  MatrixView plain_matrix(std::size_t rows, std::size_t cols,
                          const char* name);
  std::span<double> abft_vector(std::size_t n, const char* name);
  std::span<double> abft_vector(std::size_t n, ecc::Scheme scheme,
                                const char* name);
  [[nodiscard]] std::uint64_t abft_bytes() const;
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Stream a scratch buffer 4x the LLC through the node so dirty kernel
  /// lines are written back to DRAM -- the standard idiom before injecting
  /// DRAM faults that must survive until the next fill.
  void flush_caches();

  // --- running kernels -----------------------------------------------------

  /// Generate the kernel's inputs from options().seed, allocate its ABFT
  /// buffers, and run it to completion on this node.
  RunMetrics run(Kernel kernel);
  /// FT-CG at an explicit dimension/iteration count (scaling studies).
  RunMetrics run_cg(std::size_t dim, std::size_t iterations);
  /// Logical output of the last run(): the row-major result matrix
  /// (FT-DGEMM), factored matrix (FT-Cholesky), or solution vector
  /// (FT-CG/FT-HPL). Fault campaigns compare this against a golden run.
  [[nodiscard]] const std::vector<double>& last_result() const;

 private:
  friend class Builder;
  struct Impl;
  explicit Session(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Builder-style front door: options -> build() -> run(Kernel) -> RunMetrics.
class Session::Builder {
 public:
  Builder() = default;
  explicit Builder(const PlatformOptions& opt) : opt_(opt) {}

  Builder& options(const PlatformOptions& o) {
    opt_ = o;
    return *this;
  }
  Builder& strategy(Strategy s) {
    opt_.strategy = s;
    return *this;
  }
  /// Select the kernel/memory backend (default kSimulated).
  Builder& backend(BackendMode m) {
    opt_.backend = m;
    return *this;
  }
  Builder& seed(std::uint64_t s) {
    opt_.seed = s;
    return *this;
  }
  Builder& verify_period(std::size_t p) {
    opt_.verify_period = p;
    return *this;
  }
  Builder& hardware_assisted(bool on = true) {
    opt_.hardware_assisted = on;
    return *this;
  }
  Builder& use_dgms(bool on = true) {
    opt_.use_dgms = on;
    return *this;
  }
  Builder& cache_scale(unsigned s) {
    opt_.cache_scale = s;
    return *this;
  }
  Builder& row_policy(memsim::RowBufferPolicy p) {
    opt_.row_policy = p;
    return *this;
  }
  /// Enable the recovery escalation ladder (checkpointed rollback, block
  /// recompute, OS escalation instead of panic).
  Builder& ladder(bool on = true) {
    opt_.ladder = on;
    return *this;
  }
  Builder& recovery(const recovery::RecoveryOptions& ro) {
    opt_.recovery = ro;
    return *this;
  }
  Builder& exposed_log_capacity(std::size_t cap) {
    opt_.exposed_log_capacity = cap;
    return *this;
  }
  Builder& repromote_threshold(unsigned n) {
    opt_.repromote_threshold = n;
    return *this;
  }
  /// Extra hooks merged into the node wiring. The injector chains itself
  /// after a fill_hook installed here; shape_override is taken verbatim
  /// unless use_dgms replaces it.
  Builder& hooks(memsim::Hooks h) {
    hooks_ = std::move(h);
    return *this;
  }
  /// Give the session its own Registry + Tracer, installed as this
  /// thread's obs defaults for the session's whole lifetime (stacked
  /// sessions on one thread must be destroyed LIFO). Campaign trials use
  /// this so parallel sessions never share instruments.
  Builder& private_observability(bool on = true) {
    private_obs_ = on;
    return *this;
  }

  [[nodiscard]] Session build();

 private:
  PlatformOptions opt_;
  memsim::Hooks hooks_;
  bool private_obs_ = false;
};

/// Output destinations requested on a bench binary's command line.
struct CliReport {
  std::string json_path;   ///< --json <path>: schema-stable machine report
  std::string trace_path;  ///< --trace <path>: Chrome trace_event JSON
  /// --chrome-trace <path>: merged timeline (tracer events + profiler
  /// phase spans, Perfetto-loadable). Implies tracing and profiling.
  std::string chrome_trace_path;
  /// --metrics-out <path>: OpenMetrics text exposition of this thread's
  /// default registry at report time (the telemetry plane's textfile
  /// mode; scrape-ready, passes tools/promcheck.py).
  std::string metrics_out_path;
};

/// Record one native-backend run's degraded instrumentation into this
/// thread's default registry, so native runs feed the same metric schema
/// (and telemetry plane) as simulated runs: `native.*` bulk-touch byte
/// counters plus the `abft.*` verify/detect/correct counters sim runs get
/// from the runtime. `counters` must be the DELTA attributable to the run
/// (Session tracks its backend's previous totals; benches with a fresh
/// NativeBackend per run can pass counters() directly).
void record_native_metrics(const NativeBackend::Counters& counters,
                           const abft::FtStats& ft);

/// Parse the common bench CLI flags shared by every experiment binary,
/// applying overrides to `opt` in place. Unknown flags warn and are
/// ignored so older scripts keep working; `--help` prints usage and
/// exits. `--trace` additionally enables the global tracer.
CliReport parse_cli(int argc, char** argv, PlatformOptions& opt);

/// Run `kernel` under `opt` on a fresh simulated node: a thin wrapper over
/// Session::Builder(opt).build().run(kernel).
RunMetrics run_kernel(Kernel kernel, const PlatformOptions& opt);

/// FT-CG at an explicit dimension/iteration count (scaling studies).
RunMetrics run_cg_at_dim(std::size_t dim, std::size_t iterations,
                         const PlatformOptions& opt);

}  // namespace abftecc::sim
