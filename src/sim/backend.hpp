// SimBackend: the simulated implementation of the MemBackend contract
// (common/backend.hpp). Wraps the existing TapContext so kernels running
// through the backend interface produce the *same per-element access
// stream* as the historical tap path -- cycles, energy, ECC interrupts and
// campaign determinism are untouched. The clock reads the memory system's
// cycle counter, so FtStats phase attribution in simulated mode is exact
// and deterministic instead of host wall-clock.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/backend.hpp"
#include "memsim/system.hpp"
#include "sim/tap.hpp"

namespace abftecc::sim {

class SimBackend {
 public:
  using Tap = MemoryTap;

  SimBackend(TapContext& ctx, const memsim::MemorySystem& system)
      : ctx_(&ctx), system_(&system) {}

  [[nodiscard]] Tap tap() const { return MemoryTap(*ctx_); }

  /// Simulated cycles; one tick = one CPU cycle at the modeled frequency.
  [[nodiscard]] TickClock clock() const { return system_->cycle_clock(); }

  [[nodiscard]] BackendMode mode() const { return BackendMode::kSimulated; }

  /// Bulk touch stays faithful: issue the range element-by-element at
  /// double granularity so cache/DRAM behavior matches a scalar loop.
  void touch(const void* p, std::size_t n, MemOp op) {
    const auto kind = op == MemOp::kRead    ? memsim::AccessKind::kRead
                      : op == MemOp::kWrite ? memsim::AccessKind::kWrite
                                            : memsim::AccessKind::kUpdate;
    const auto* c = static_cast<const char*>(p);
    std::size_t off = 0;
    for (; off + sizeof(double) <= n; off += sizeof(double))
      ctx_->issue(c + off, sizeof(double), kind);
    if (off < n) ctx_->issue(c + off, n - off, kind);
  }

  [[nodiscard]] TapContext& context() { return *ctx_; }

 private:
  TapContext* ctx_;
  const memsim::MemorySystem* system_;
};

static_assert(MemBackend<SimBackend>);

}  // namespace abftecc::sim
