// The six ECC strategies of the evaluation (Section 5.1).
//
// Each strategy names the scheme applied to data WITHOUT ABFT protection
// (the node default, enforced for every unregistered page) and the scheme
// malloc_ecc assigns to the ABFT-protected structures.
#pragma once

#include <array>
#include <string_view>

#include "ecc/scheme.hpp"

namespace abftecc::sim {

enum class Strategy {
  kNoEcc,                 ///< test 1: ABFT without any ECC
  kWholeChipkill,         ///< test 2 (W_CK): chipkill on all data
  kPartialChipkillNoEcc,  ///< test 3 (P_CK+No_ECC)
  kWholeSecded,           ///< test 4 (W_SD): SECDED on all data
  kPartialSecdedNoEcc,    ///< test 5 (P_SD+No_ECC)
  kPartialChipkillSecded  ///< test 6 (P_CK+P_SD)
};

inline constexpr std::array<Strategy, 6> kAllStrategies = {
    Strategy::kNoEcc,        Strategy::kWholeChipkill,
    Strategy::kPartialChipkillNoEcc, Strategy::kWholeSecded,
    Strategy::kPartialSecdedNoEcc,   Strategy::kPartialChipkillSecded};

struct StrategySpec {
  Strategy strategy;
  ecc::Scheme default_scheme;  ///< non-ABFT data
  ecc::Scheme abft_scheme;     ///< ABFT-protected data
  std::string_view label;      ///< paper's label
};

constexpr StrategySpec spec(Strategy s) {
  using ecc::Scheme;
  switch (s) {
    case Strategy::kNoEcc:
      return {s, Scheme::kNone, Scheme::kNone, "No_ECC"};
    case Strategy::kWholeChipkill:
      return {s, Scheme::kChipkill, Scheme::kChipkill, "W_CK"};
    case Strategy::kPartialChipkillNoEcc:
      return {s, Scheme::kChipkill, Scheme::kNone, "P_CK+No_ECC"};
    case Strategy::kWholeSecded:
      return {s, Scheme::kSecded, Scheme::kSecded, "W_SD"};
    case Strategy::kPartialSecdedNoEcc:
      return {s, Scheme::kSecded, Scheme::kNone, "P_SD+No_ECC"};
    case Strategy::kPartialChipkillSecded:
      return {s, Scheme::kChipkill, Scheme::kSecded, "P_CK+P_SD"};
  }
  return {s, Scheme::kNone, Scheme::kNone, "?"};
}

}  // namespace abftecc::sim
