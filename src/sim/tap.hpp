// MemoryTap: the sim-mode Tap policy (see common/tap.hpp).
//
// Every instrumented kernel reference is translated from its host (virtual)
// address to a simulated physical address and issued to the MemorySystem.
// Addresses inside Os-registered regions use the region's mapping;
// everything else (stack temporaries, std::vector workspaces) is assigned
// anonymous frames above the allocator's range -- those pages fall under
// the node's default (strong) ECC scheme and count as non-ABFT traffic,
// which is exactly how unregistered data behaves on the modeled machine.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "common/tap.hpp"
#include "memsim/system.hpp"
#include "os/os.hpp"

namespace abftecc::sim {

/// Shared state behind the copyable MemoryTap handles.
class TapContext {
 public:
  TapContext(os::Os& os, memsim::MemorySystem& system)
      : os_(os), system_(system), anon_base_(system.config().capacity_bytes),
        page_(system.config().page_bytes) {}

  void issue(const void* p, std::size_t bytes, memsim::AccessKind kind) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    // Fast path: same region as the previous reference.
    std::uint64_t phys;
    bool abft = false;
    if (last_ != nullptr && addr >= last_begin_ && addr < last_end_) {
      phys = last_phys_base_ + (addr - last_begin_);
      abft = last_abft_;
    } else if (const os::Region* r = os_.region_of(p); r != nullptr) {
      last_ = r;
      last_begin_ = reinterpret_cast<std::uintptr_t>(r->host_base);
      last_end_ = last_begin_ + r->size;
      last_phys_base_ = r->phys_base;
      last_abft_ = r->abft_protected;
      phys = r->phys_base + (addr - last_begin_);
      abft = r->abft_protected;
    } else {
      phys = anonymous_phys(addr);
    }
    if (abft)
      ++refs_abft_;
    else
      ++refs_other_;
    // A reference that straddles a line boundary touches both lines.
    system_.access(phys, kind);
    const std::uint64_t line = 64;
    if ((phys % line) + bytes > line)
      system_.access(phys + bytes - 1, kind);
    if (trigger_ && refs_abft_ + refs_other_ >= trigger_at_) {
      // One-shot: clear before firing so the callback may itself issue
      // accesses (fault materialization reads lines through the system).
      auto fn = std::move(trigger_);
      trigger_ = nullptr;
      fn();
    }
  }

  /// Fire `fn` exactly once, right after the `at`-th reference (1-based)
  /// issues. The campaign engine uses this to inject a fault at a
  /// deterministic point in the middle of a run; `at` past the run's total
  /// reference count never fires.
  void set_ref_trigger(std::uint64_t at, std::function<void()> fn) {
    trigger_at_ = at;
    trigger_ = std::move(fn);
  }

  [[nodiscard]] std::uint64_t refs_abft() const { return refs_abft_; }
  [[nodiscard]] std::uint64_t refs_other() const { return refs_other_; }

 private:
  std::uint64_t anonymous_phys(std::uintptr_t addr) {
    const std::uintptr_t host_page = addr / page_;
    auto [it, inserted] = anon_pages_.try_emplace(host_page, 0);
    if (inserted) it->second = anon_base_ + (anon_next_++) * page_;
    return it->second + addr % page_;
  }

  os::Os& os_;
  memsim::MemorySystem& system_;
  const os::Region* last_ = nullptr;
  std::uintptr_t last_begin_ = 0, last_end_ = 0;
  std::uint64_t last_phys_base_ = 0;
  bool last_abft_ = false;
  std::uint64_t anon_base_;
  std::uint64_t page_;
  std::uint64_t anon_next_ = 0;
  std::unordered_map<std::uintptr_t, std::uint64_t> anon_pages_;
  std::uint64_t refs_abft_ = 0;
  std::uint64_t refs_other_ = 0;
  std::uint64_t trigger_at_ = 0;
  std::function<void()> trigger_;
};

/// Copyable handle passed by value through the kernels.
class MemoryTap {
 public:
  explicit MemoryTap(TapContext& ctx) : ctx_(&ctx) {}

  void read(const void* p, std::size_t n = sizeof(double)) {
    ctx_->issue(p, n, memsim::AccessKind::kRead);
  }
  void write(const void* p, std::size_t n = sizeof(double)) {
    ctx_->issue(p, n, memsim::AccessKind::kWrite);
  }
  void update(const void* p, std::size_t n = sizeof(double)) {
    ctx_->issue(p, n, memsim::AccessKind::kUpdate);
  }

 private:
  TapContext* ctx_;
};

static_assert(MemTap<MemoryTap>);

}  // namespace abftecc::sim
