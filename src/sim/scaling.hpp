// Scaling studies with fault modeling (Section 5.2, Figures 8-9).
//
// Exactly the paper's methodology: measure a single FT-CG process on the
// simulator, then extrapolate energy benefit and ABFT recovery cost to
// large process counts analytically with the Section 4 fault models and
// Table 5 error rates. Energy benefit = system energy saved by relaxing
// ECC on the ABFT-protected data (baseline: W_CK for partial-chipkill
// schemes, W_SD for P_SD+No_ECC). Recovery cost = expected number of
// errors landing in the relaxed region x the energy of one ABFT recovery
// (~ one matvec / one CG iteration, measured). Strong scaling shrinks the
// per-process problem, which both erodes the benefit (more cache residency,
// fewer DRAM accesses to save on) and cheapens recovery -- reproducing the
// interior maximum of Figure 9.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "sim/platform.hpp"
#include "sim/strategy.hpp"

namespace abftecc::sim {

struct ScalePoint {
  double processes = 0;
  double energy_benefit_kj = 0.0;
  double recovery_cost_kj = 0.0;
  double expected_errors = 0.0;
  double mttf_hetero_seconds = 0.0;
};

struct ScalingOptions {
  /// Process counts to evaluate (paper: 100 .. 819200 weak, 100 .. 3200
  /// strong).
  std::vector<double> process_counts;
  /// Simulated per-process matrix dimension at the base scale.
  std::size_t base_dim = 640;
  std::size_t iterations = 4;
  /// Assumed full-solve iteration count multiplier: a production CG solve
  /// runs ~dim iterations, our simulated phase runs `iterations`.
  double production_iterations_per_dim = 1.0;
  /// Parallel-efficiency loss per doubling (workload characterization
  /// factor per [5, 37] in the paper).
  double efficiency_loss_per_doubling = 0.03;
  PlatformOptions platform;  ///< strategy is overridden per scheme
};

class ScalingStudy {
 public:
  explicit ScalingStudy(ScalingOptions opt) : opt_(std::move(opt)) {}

  /// Weak scaling: per-process problem fixed at base_dim.
  std::vector<ScalePoint> weak_scaling(Strategy partial_scheme);

  /// Strong scaling: total problem fixed at the base count's aggregate;
  /// per-process dimension shrinks as sqrt(base_processes / processes)
  /// (memory per process ~ dim^2).
  std::vector<ScalePoint> strong_scaling(Strategy partial_scheme);

  /// Whole-ECC baseline a partial scheme is compared against.
  static Strategy baseline_for(Strategy partial);

 private:
  ScalePoint evaluate(Strategy partial, double processes, std::size_t dim);
  const RunMetrics& measured(Strategy s, std::size_t dim);

  ScalingOptions opt_;
  std::map<std::pair<int, std::size_t>, RunMetrics> cache_;
};

}  // namespace abftecc::sim
