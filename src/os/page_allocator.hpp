// Physical page-frame allocator with per-page ECC type.
//
// malloc_ecc requires contiguous physical pages (Section 3.2.1) so one MC
// ECC register pair can describe the whole allocation; the ECC type is also
// recorded in the page structure so paging preserves protection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/scheme.hpp"

namespace abftecc::os {

struct PageFrame {
  bool in_use = false;
  bool retired = false;  ///< hard-fault frame, never allocated again
  ecc::Scheme ecc_type = ecc::Scheme::kChipkill;
};

class PageAllocator {
 public:
  PageAllocator(std::uint64_t capacity_bytes, std::uint64_t page_bytes);

  /// Allocate `count` physically-contiguous frames; returns the physical
  /// base address, or nullopt when no run is free (first-fit).
  std::optional<std::uint64_t> allocate_contiguous(std::uint64_t count,
                                                   ecc::Scheme ecc_type);

  /// Free `count` frames starting at `phys_base`.
  void free_range(std::uint64_t phys_base, std::uint64_t count);

  /// Update the recorded ECC type of a frame range (assign_ecc path).
  void set_ecc_type(std::uint64_t phys_base, std::uint64_t count,
                    ecc::Scheme ecc_type);

  /// Permanently retire the frame containing `phys_addr` (memory page
  /// retire, Section 3.1): it is freed if in use and never handed out
  /// again.
  void retire_frame(std::uint64_t phys_addr);

  [[nodiscard]] const PageFrame& frame_at(std::uint64_t phys_addr) const;
  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] std::uint64_t total_frames() const { return frames_.size(); }
  [[nodiscard]] std::uint64_t frames_in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t frames_retired() const { return retired_; }

 private:
  std::uint64_t page_bytes_;
  std::vector<PageFrame> frames_;
  std::uint64_t in_use_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t search_hint_ = 0;
};

}  // namespace abftecc::os
