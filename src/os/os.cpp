#include "os/os.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "obs/lineage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abftecc::os {

struct Os::Allocation {
  Region region;
  std::unique_ptr<std::byte[]> storage;
  unsigned uncorrectable_count = 0;  ///< feeds the re-promotion threshold
};

Os::Os(memsim::MemorySystem& system)
    : system_(system),
      pages_(system.config().capacity_bytes, system.config().page_bytes) {
  system_.controller().set_interrupt_handler(
      [this](const memsim::ErrorRecord& rec) { handle_ecc_interrupt(rec); });
  system_.hooks().region_classifier =
      [this](std::uint64_t phys) { return is_abft_protected_phys(phys); };
}

Os::~Os() {
  system_.controller().set_interrupt_handler(nullptr);
  system_.hooks().region_classifier = nullptr;
}

void* Os::allocate(std::size_t n, ecc::Scheme scheme, std::string name,
                   bool abft_protected, bool program_mc) {
  ABFTECC_REQUIRE(n > 0);
  const std::uint64_t page = pages_.page_bytes();
  const std::uint64_t frames = (n + page - 1) / page;

  const auto phys = pages_.allocate_contiguous(frames, scheme);
  if (!phys.has_value()) return nullptr;

  if (program_mc) {
    const memsim::EccRange range{*phys, *phys + frames * page, scheme};
    if (!system_.controller().set_range(range)) {
      // All 8 MC register pairs busy: the allocation cannot get relaxed
      // protection, so fail the call (the caller may coalesce ranges).
      pages_.free_range(*phys, frames);
      return nullptr;
    }
  }

  auto alloc = std::make_unique<Allocation>();
  alloc->storage = std::make_unique<std::byte[]>(frames * page);
  alloc->region = Region{alloc->storage.get(), static_cast<std::size_t>(frames * page),
                         *phys,   frames,      scheme,
                         abft_protected,       program_mc,
                         std::move(name)};
  void* ptr = alloc->storage.get();
  allocations_.push_back(std::move(alloc));
  return ptr;
}

void* Os::malloc_ecc(std::size_t n, ecc::Scheme scheme, std::string name,
                     bool abft_protected) {
  return allocate(n, scheme, std::move(name), abft_protected,
                  /*program_mc=*/true);
}

void* Os::malloc_plain(std::size_t n, std::string name) {
  return allocate(n, system_.controller().default_scheme(), std::move(name),
                  /*abft_protected=*/false, /*program_mc=*/false);
}

void Os::free_ecc(void* ptr) {
  for (auto it = allocations_.begin(); it != allocations_.end(); ++it) {
    if ((*it)->storage.get() == static_cast<std::byte*>(ptr)) {
      const Region& r = (*it)->region;
      if (r.mc_range_programmed)
        system_.controller().clear_range(r.phys_base);
      pages_.free_range(r.phys_base, r.frames);
      allocations_.erase(it);
      return;
    }
  }
  ABFTECC_REQUIRE(!"free_ecc of unknown pointer");
}

bool Os::assign_ecc(void* ptr, ecc::Scheme scheme) {
  for (auto& alloc : allocations_) {
    if (alloc->storage.get() == static_cast<std::byte*>(ptr)) {
      Region& r = alloc->region;
      pages_.set_ecc_type(r.phys_base, r.frames, scheme);
      if (r.mc_range_programmed &&
          !system_.controller().reassign_range(r.phys_base, scheme))
        return false;
      r.scheme = scheme;
      return true;
    }
  }
  return false;
}

const Region* Os::region_of(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  for (const auto& alloc : allocations_) {
    const Region& r = alloc->region;
    if (b >= r.host_base && b < r.host_base + r.size) return &r;
  }
  return nullptr;
}

const Region* Os::region_of_phys(std::uint64_t phys) const {
  for (const auto& alloc : allocations_) {
    const Region& r = alloc->region;
    if (phys >= r.phys_base && phys < r.phys_base + r.size) return &r;
  }
  return nullptr;
}

std::optional<std::uint64_t> Os::virt_to_phys(const void* p) const {
  const Region* r = region_of(p);
  if (r == nullptr) return std::nullopt;
  return r->phys_base + static_cast<std::uint64_t>(
                            static_cast<const std::byte*>(p) - r->host_base);
}

std::optional<const void*> Os::phys_to_virt(std::uint64_t phys) const {
  const Region* r = region_of_phys(phys);
  if (r == nullptr) return std::nullopt;
  return r->host_base + (phys - r->phys_base);
}

std::optional<std::byte*> Os::phys_to_host(std::uint64_t phys) {
  for (auto& alloc : allocations_) {
    Region& r = alloc->region;
    if (phys >= r.phys_base && phys < r.phys_base + r.size)
      return alloc->storage.get() + (phys - r.phys_base);
  }
  return std::nullopt;
}

bool Os::is_abft_protected_phys(std::uint64_t phys) const {
  const Region* r = region_of_phys(phys);
  return r != nullptr && r->abft_protected;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Os::abft_phys_ranges()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& a : allocations_) {
    const Region& r = a->region;
    if (r.abft_protected) out.emplace_back(r.phys_base, r.phys_base + r.size);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Os::all_phys_ranges()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& a : allocations_) {
    const Region& r = a->region;
    out.emplace_back(r.phys_base, r.phys_base + r.size);
  }
  return out;
}

bool Os::retire_and_migrate(const void* vaddr) {
  // Locate the owning allocation.
  Allocation* owner = nullptr;
  for (auto& alloc : allocations_) {
    const Region& r = alloc->region;
    const auto* b = static_cast<const std::byte*>(vaddr);
    if (b >= r.host_base && b < r.host_base + r.size) {
      owner = alloc.get();
      break;
    }
  }
  if (owner == nullptr) return false;
  Region& r = owner->region;
  const std::uint64_t page = pages_.page_bytes();
  const auto bad_phys =
      r.phys_base + static_cast<std::uint64_t>(
                        static_cast<const std::byte*>(vaddr) - r.host_base);

  // Fresh frames first, so a failed allocation leaves everything intact.
  const auto new_base = pages_.allocate_contiguous(r.frames, r.scheme);
  if (!new_base.has_value()) return false;

  // Charge the copy traffic: stream the allocation out of the old frames
  // and into the new ones (the data itself lives in host storage).
  for (std::uint64_t off = 0; off < r.frames * page; off += 64) {
    system_.access(r.phys_base + off, memsim::AccessKind::kRead);
    system_.access(*new_base + off, memsim::AccessKind::kWrite);
  }

  // Reprogram the MC range, retire the bad frame, release the others.
  if (r.mc_range_programmed) {
    system_.controller().clear_range(r.phys_base);
    system_.controller().set_range(
        {*new_base, *new_base + r.frames * page, r.scheme});
  }
  pages_.retire_frame(bad_phys);
  frame_fault_counts_.erase(bad_phys / page);
  pages_.free_range(r.phys_base, r.frames);
  r.phys_base = *new_base;
  ++migrations_;
  obs::default_registry().counter("os.migrations").add();
  obs::default_tracer().instant(obs::EventKind::kPageRetired,
                                system_.stats().cpu_cycles, bad_phys);
  return true;
}

void Os::handle_ecc_interrupt(const memsim::ErrorRecord& rec) {
  auto& registry = obs::default_registry();
  auto& tracer = obs::default_tracer();
  registry.counter("os.ecc_interrupts").add();
  tracer.instant(obs::EventKind::kEccInterrupt, rec.cycle, rec.phys_addr);
  obs::default_lineage().line_event(rec.phys_addr,
                                    obs::LineageStage::kEccInterrupt,
                                    rec.cycle);
  // Read the memory-mapped registers (rec carries their content), derive
  // the physical address from the fault site, and route.
  Allocation* owner = nullptr;
  for (auto& alloc : allocations_) {
    const Region& reg = alloc->region;
    if (rec.phys_addr >= reg.phys_base &&
        rec.phys_addr < reg.phys_base + reg.size) {
      owner = alloc.get();
      break;
    }
  }
  if (owner != nullptr) note_region_uncorrectable(*owner, rec.cycle);
  const Region* r = owner != nullptr ? &owner->region : nullptr;
  if (r == nullptr || !r->abft_protected) {
    // Not covered by ABFT. Offer the error to the recovery ladder first;
    // only when no handler absorbs it fall back to the conservative
    // strategy of existing systems -- panic (application-level restart).
    if (escalation_handler_) {
      ExposedError e;
      e.phys_addr = rec.phys_addr;
      e.site = rec.site;
      e.scheme = rec.scheme;
      e.cycle = rec.cycle;
      if (r != nullptr) {
        e.vaddr = r->host_base + (rec.phys_addr - r->phys_base);
        e.region_name = r->name;
        e.region_base = r->host_base;
        e.region_size = r->size;
      }
      if (escalation_handler_(e)) {
        ++escalations_;
        registry.counter("os.escalations").add();
        tracer.instant(obs::EventKind::kEscalated, rec.cycle, rec.phys_addr);
        obs::default_lineage().line_event(rec.phys_addr,
                                          obs::LineageStage::kEscalated,
                                          rec.cycle);
        return;
      }
    }
    ++panics_;
    registry.counter("os.panics").add();
    tracer.instant(obs::EventKind::kPanic, rec.cycle, rec.phys_addr);
    obs::default_lineage().line_event(rec.phys_addr,
                                      obs::LineageStage::kPanic, rec.cycle);
    return;
  }
  registry.counter("os.errors_exposed").add();
  tracer.instant(obs::EventKind::kErrorExposed, rec.cycle, rec.phys_addr);
  ExposedError e;
  e.vaddr = r->host_base + (rec.phys_addr - r->phys_base);
  e.phys_addr = rec.phys_addr;
  e.site = rec.site;
  e.scheme = rec.scheme;
  e.cycle = rec.cycle;
  e.region_name = r->name;
  const void* vaddr = e.vaddr;
  push_exposed(std::move(e));

  // Hard-fault heuristic: a frame accumulating uncorrectable errors is
  // pulled out of service and its allocation migrated to spare frames.
  if (auto_retire_threshold_ > 0) {
    const std::uint64_t frame = rec.phys_addr / pages_.page_bytes();
    if (++frame_fault_counts_[frame] >= auto_retire_threshold_)
      retire_and_migrate(vaddr);
  }
}

void Os::set_exposed_log_capacity(std::size_t cap) {
  ABFTECC_REQUIRE(cap > 0);
  exposed_capacity_ = cap;
  while (exposed_.size() > exposed_capacity_) {
    obs::default_lineage().line_event(exposed_.back().phys_addr,
                                      obs::LineageStage::kLogDropped,
                                      exposed_.back().cycle);
    exposed_.pop_back();
    ++exposed_dropped_;
    obs::default_registry().counter("os.exposed_dropped").add();
  }
}

void Os::push_exposed(ExposedError e) {
  if (exposed_.size() >= exposed_capacity_) {
    // Log full (fault storm): fold into an existing entry for the same
    // cache line if there is one -- the location information ABFT needs is
    // identical -- otherwise drop and count.
    const std::uint64_t line = e.phys_addr / 64;
    for (auto it = exposed_.rbegin(); it != exposed_.rend(); ++it) {
      if (it->phys_addr / 64 == line) {
        ++it->repeats;
        it->cycle = e.cycle;
        obs::default_lineage().line_event(e.phys_addr,
                                          obs::LineageStage::kExposed,
                                          e.cycle, it->repeats);
        return;
      }
    }
    ++exposed_dropped_;
    obs::default_registry().counter("os.exposed_dropped").add();
    obs::default_lineage().line_event(e.phys_addr,
                                      obs::LineageStage::kLogDropped,
                                      e.cycle);
    return;
  }
  obs::default_lineage().line_event(e.phys_addr, obs::LineageStage::kExposed,
                                    e.cycle);
  exposed_.push_back(std::move(e));
}

void Os::note_region_uncorrectable(Allocation& alloc, Cycles cycle) {
  ++alloc.uncorrectable_count;
  if (repromote_threshold_ == 0 ||
      alloc.uncorrectable_count < repromote_threshold_)
    return;
  Region& r = alloc.region;
  // Re-promotion is meaningful only for regions holding a relaxed scheme
  // in a programmed MC range; everything else already has the node's
  // default protection.
  if (r.scheme == ecc::Scheme::kChipkill || !r.mc_range_programmed) return;
  if (!assign_ecc(alloc.storage.get(), ecc::Scheme::kChipkill)) return;
  alloc.uncorrectable_count = 0;
  ++repromotions_;
  obs::default_registry().counter("os.ecc_repromotions").add();
  obs::default_tracer().instant(obs::EventKind::kEccRepromoted, cycle,
                                r.phys_base);
}

std::vector<ExposedError> Os::drain_exposed_errors() {
  std::vector<ExposedError> out(exposed_.begin(), exposed_.end());
  exposed_.clear();
  return out;
}

}  // namespace abftecc::os
