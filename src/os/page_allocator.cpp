#include "os/page_allocator.hpp"

#include "common/error.hpp"

namespace abftecc::os {

PageAllocator::PageAllocator(std::uint64_t capacity_bytes,
                             std::uint64_t page_bytes)
    : page_bytes_(page_bytes) {
  ABFTECC_REQUIRE(page_bytes > 0 && capacity_bytes % page_bytes == 0);
  frames_.resize(capacity_bytes / page_bytes);
}

std::optional<std::uint64_t> PageAllocator::allocate_contiguous(
    std::uint64_t count, ecc::Scheme ecc_type) {
  ABFTECC_REQUIRE(count > 0);
  if (count > frames_.size()) return std::nullopt;
  // First-fit with a rotating hint; two passes cover the wrap.
  for (int pass = 0; pass < 2; ++pass) {
    const std::uint64_t begin = pass == 0 ? search_hint_ : 0;
    const std::uint64_t end = pass == 0 ? frames_.size() : search_hint_;
    std::uint64_t run = 0;
    for (std::uint64_t i = begin; i + 1 <= end; ++i) {
      run = (frames_[i].in_use || frames_[i].retired) ? 0 : run + 1;
      if (run == count) {
        const std::uint64_t first = i + 1 - count;
        for (std::uint64_t f = first; f <= i; ++f) {
          frames_[f].in_use = true;
          frames_[f].ecc_type = ecc_type;
        }
        in_use_ += count;
        search_hint_ = (i + 1) % frames_.size();
        return first * page_bytes_;
      }
    }
  }
  return std::nullopt;
}

void PageAllocator::free_range(std::uint64_t phys_base, std::uint64_t count) {
  ABFTECC_REQUIRE(phys_base % page_bytes_ == 0);
  const std::uint64_t first = phys_base / page_bytes_;
  ABFTECC_REQUIRE(first + count <= frames_.size());
  for (std::uint64_t f = first; f < first + count; ++f) {
    if (frames_[f].retired) continue;  // already pulled out of service
    ABFTECC_REQUIRE(frames_[f].in_use);
    frames_[f].in_use = false;
    --in_use_;
  }
}

void PageAllocator::set_ecc_type(std::uint64_t phys_base, std::uint64_t count,
                                 ecc::Scheme ecc_type) {
  const std::uint64_t first = phys_base / page_bytes_;
  ABFTECC_REQUIRE(first + count <= frames_.size());
  for (std::uint64_t f = first; f < first + count; ++f) {
    ABFTECC_REQUIRE(frames_[f].in_use);
    frames_[f].ecc_type = ecc_type;
  }
}

void PageAllocator::retire_frame(std::uint64_t phys_addr) {
  const std::uint64_t f = phys_addr / page_bytes_;
  ABFTECC_REQUIRE(f < frames_.size());
  if (frames_[f].retired) return;
  if (frames_[f].in_use) {
    frames_[f].in_use = false;
    --in_use_;
  }
  frames_[f].retired = true;
  ++retired_;
}

const PageFrame& PageAllocator::frame_at(std::uint64_t phys_addr) const {
  const std::uint64_t f = phys_addr / page_bytes_;
  ABFTECC_REQUIRE(f < frames_.size());
  return frames_[f];
}

}  // namespace abftecc::os
