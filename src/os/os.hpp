// System-software layer (Section 3.2.1): ECC control APIs, virtual/physical
// translation, ECC-error interrupt handling, and sysfs-style error exposure.
//
// "Virtual addresses" are the host pointers the application actually uses;
// the Os maps each registered allocation onto physically-contiguous
// simulated frames and programs the memory controller's ECC registers for
// relaxed-ECC ranges. The MC's uncorrectable-error interrupt lands in
// handle_ecc_interrupt(), which reproduces the paper's flow: read the
// memory-mapped error registers, decide whether the corrupted data is
// ABFT-protected, and either expose the virtual address to the runtime or
// go to panic mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ecc/scheme.hpp"
#include "memsim/system.hpp"
#include "os/page_allocator.hpp"

namespace abftecc::os {

/// One entry of the kernel->user shared error log ("via sysfs in linux").
struct ExposedError {
  const void* vaddr = nullptr;      ///< corrupted virtual address
  std::uint64_t phys_addr = 0;
  memsim::FaultSite site;
  ecc::Scheme scheme = ecc::Scheme::kNone;
  Cycles cycle = 0;
  std::string region_name;
  /// Host span of the owning allocation (page-granular, so it can extend
  /// past the program-visible bytes); null/0 when the fault hit no
  /// registered region. The recovery ladder uses it to recognize faults
  /// in the slack of a checkpoint-covered allocation.
  const void* region_base = nullptr;
  std::size_t region_size = 0;
  /// Errors folded into this entry (same cache line) while the log was at
  /// capacity; 1 for a normally appended entry.
  unsigned repeats = 1;
};

/// A registered allocation: host (virtual) range -> physical range.
struct Region {
  const std::byte* host_base = nullptr;
  std::size_t size = 0;
  std::uint64_t phys_base = 0;
  std::uint64_t frames = 0;
  ecc::Scheme scheme = ecc::Scheme::kChipkill;
  bool abft_protected = false;
  bool mc_range_programmed = false;
  std::string name;
};

class Os {
 public:
  explicit Os(memsim::MemorySystem& system);
  ~Os();

  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // --- ECC control APIs (paper Section 3.2.1) -----------------------------

  /// void *malloc_ecc(size_t n, int ecc_type): contiguous physical pages
  /// with `scheme` set in the MC's ECC registers. `abft_protected` marks
  /// the region as covered by ABFT for interrupt routing and Table 4
  /// classification. Returns nullptr when frames or MC registers run out.
  void* malloc_ecc(std::size_t n, ecc::Scheme scheme,
                   std::string name = {}, bool abft_protected = true);

  /// void free_ecc(void *ptr): release memory, frames, and the MC range.
  void free_ecc(void* ptr);

  /// void assign_ecc(void *ptr, int ecc_type): retarget the ECC scheme of a
  /// live malloc_ecc allocation (dynamic refinement).
  bool assign_ecc(void* ptr, ecc::Scheme scheme);

  /// Plain allocation under the node's default (strong) scheme; no MC ECC
  /// register is consumed. Used for every structure ABFT does not cover.
  void* malloc_plain(std::size_t n, std::string name = {});

  // --- translation ---------------------------------------------------------

  [[nodiscard]] std::optional<std::uint64_t> virt_to_phys(const void* p) const;
  [[nodiscard]] std::optional<const void*> phys_to_virt(
      std::uint64_t phys) const;
  /// Writable host pointer for a physical address (fault-injection path).
  [[nodiscard]] std::optional<std::byte*> phys_to_host(std::uint64_t phys);
  [[nodiscard]] bool is_abft_protected_phys(std::uint64_t phys) const;
  [[nodiscard]] const Region* region_of(const void* p) const;
  [[nodiscard]] const Region* region_of_phys(std::uint64_t phys) const;

  /// Physical [begin, end) ranges of the live ABFT-protected allocations.
  /// Fault campaigns sample injection sites uniformly over these bytes.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  abft_phys_ranges() const;

  /// Physical ranges of ALL live allocations (ABFT-covered or not); fault
  /// storms sample over these so uncovered structures get hit too.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  all_phys_ranges() const;

  // --- interrupt handling & error exposure ---------------------------------

  /// Installed into the MC by the constructor; public so tests can deliver
  /// synthetic interrupts.
  void handle_ecc_interrupt(const memsim::ErrorRecord& rec);

  /// Drain the shared error log (ABFT's simplified verification reads this).
  [[nodiscard]] bool has_exposed_errors() const { return !exposed_.empty(); }
  std::vector<ExposedError> drain_exposed_errors();

  // --- fault-storm hardening -----------------------------------------------

  /// Bound the shared error log (a fixed-size kernel buffer in the real
  /// system; an unbounded deque would let a fault storm exhaust memory).
  /// At capacity a new error first tries to coalesce into an existing
  /// entry for the same cache line (bumping its `repeats`); otherwise it
  /// is dropped and counted in exposed_dropped().
  void set_exposed_log_capacity(std::size_t cap);
  [[nodiscard]] std::size_t exposed_log_capacity() const {
    return exposed_capacity_;
  }
  [[nodiscard]] std::uint64_t exposed_dropped() const {
    return exposed_dropped_;
  }

  /// Escalation hook consulted before panic: an uncorrectable error
  /// OUTSIDE ABFT coverage is offered to the recovery ladder first. A
  /// handler returning true absorbs the error (counted in escalations(),
  /// no panic); false or no handler keeps the historical panic.
  void set_escalation_handler(std::function<bool(const ExposedError&)> h) {
    escalation_handler_ = std::move(h);
  }
  [[nodiscard]] std::uint64_t escalations() const { return escalations_; }

  /// ECC re-promotion: a region accumulating this many uncorrectable
  /// errors is reassigned to chipkill via assign_ecc (the dynamic-ECC loop
  /// run backwards -- relaxed protection was a bad bet for that region).
  /// 0 disables (default).
  void set_repromote_threshold(unsigned n) { repromote_threshold_ = n; }
  [[nodiscard]] std::uint64_t repromotions() const { return repromotions_; }

  // --- page retirement & data migration (Section 3.1) ---------------------

  /// Retire the frame backing `vaddr` and migrate its whole allocation to
  /// fresh contiguous frames (hard-fault response: "invoke OS to remap
  /// data to the spare page frames"). The virtual address stays valid; the
  /// physical mapping and the MC's ECC range move. The copy traffic is
  /// charged to the memory system. Returns false if no spare contiguous
  /// run exists.
  bool retire_and_migrate(const void* vaddr);

  /// Frames whose uncorrectable-error count reaches this threshold are
  /// retired (with migration) automatically from the interrupt handler;
  /// 0 disables the automatic path (default).
  void set_auto_retire_threshold(unsigned n) { auto_retire_threshold_ = n; }

  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

  /// Panic mode: an uncorrectable error outside ABFT protection.
  [[nodiscard]] std::uint64_t panic_count() const { return panics_; }
  [[nodiscard]] bool panicked() const { return panics_ > 0; }
  void clear_panic() { panics_ = 0; }

  [[nodiscard]] PageAllocator& pages() { return pages_; }
  [[nodiscard]] memsim::MemorySystem& system() { return system_; }

 private:
  struct Allocation;
  void* allocate(std::size_t n, ecc::Scheme scheme, std::string name,
                 bool abft_protected, bool program_mc);
  void push_exposed(ExposedError e);
  void note_region_uncorrectable(Allocation& alloc, Cycles cycle);

  memsim::MemorySystem& system_;
  PageAllocator pages_;
  std::vector<std::unique_ptr<Allocation>> allocations_;
  std::deque<ExposedError> exposed_;
  std::size_t exposed_capacity_ = 1024;
  std::uint64_t exposed_dropped_ = 0;
  std::function<bool(const ExposedError&)> escalation_handler_;
  std::uint64_t escalations_ = 0;
  unsigned repromote_threshold_ = 0;
  std::uint64_t repromotions_ = 0;
  std::uint64_t panics_ = 0;
  unsigned auto_retire_threshold_ = 0;
  std::uint64_t migrations_ = 0;
  std::unordered_map<std::uint64_t, unsigned> frame_fault_counts_;
};

}  // namespace abftecc::os
