// FT-DGEMM with dual checksum vectors -- the "sophisticated checksum
// vectors" capability of Section 2.1 ("this ABFT algorithm can detect or
// correct multiple errors in each examining period").
//
// On top of the sum checksums of FtDgemm, every matrix carries a weighted
// checksum (weights w_i = i+1):
//     A^c = [A; e^T A; w^T A]        ((m+2) x k)
//     B^r = [B, B e, B w]            (k x (n+2))
// so the running product holds four residual families per verification:
// column sum + column weighted, row sum + row weighted. A single corrupted
// element is located from one column's (sum, weighted) pair alone; TWO
// errors in the same column are solved exactly from the 2x2 linear system
// their residuals form once the row set is known from the row residuals --
// which makes the classic uncorrectable pattern of the single-checksum
// code, the 2x2 equal-magnitude grid, fully correctable here.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "linalg/blas.hpp"

namespace abftecc::abft {

class FtDgemmDual {
 public:
  struct Buffers {
    MatrixView ac;  ///< (m+2) x k
    MatrixView br;  ///< k x (n+2)
    MatrixView cf;  ///< (m+2) x (n+2), zeroed by encode()
  };

  FtDgemmDual(ConstMatrixView a, ConstMatrixView b, Buffers buf,
              FtOptions opt = {}, Runtime* runtime = nullptr)
      : a_(a), b_(b), buf_(buf), opt_(opt), rt_(runtime) {
    ABFTECC_REQUIRE(a.cols() == b.rows());
    ABFTECC_REQUIRE(buf.ac.rows() == a.rows() + 2 && buf.ac.cols() == a.cols());
    ABFTECC_REQUIRE(buf.br.rows() == b.rows() && buf.br.cols() == b.cols() + 2);
    ABFTECC_REQUIRE(buf.cf.rows() == a.rows() + 2 &&
                    buf.cf.cols() == b.cols() + 2);
    if (rt_ != nullptr)
      struct_id_ = rt_->register_structure("ft_dgemm_dual.C", buf_.cf.data(),
                                           buf_.cf.ld() * buf_.cf.cols());
  }

  ~FtDgemmDual() {
    if (rt_ != nullptr) rt_->unregister_structure(struct_id_);
  }
  FtDgemmDual(const FtDgemmDual&) = delete;
  FtDgemmDual& operator=(const FtDgemmDual&) = delete;

  /// Run through a memory backend (common/backend.hpp): tap and FtStats
  /// time source both come from the backend.
  template <MemBackend B>
  FtStatus run(B& be) {
    clock_ = be.clock();
    return run(be.tap());
  }

  template <MemTap Tap = NullTap>
  FtStatus run(Tap tap = {}) {
    encode(tap);
    const std::size_t kk = a_.cols();
    std::size_t since_verify = 0;
    for (std::size_t k0 = 0; k0 < kk; k0 += linalg::kBlock) {
      const std::size_t klen = std::min(linalg::kBlock, kk - k0);
      linalg::gemm(1.0,
                   ConstMatrixView(buf_.ac.block(0, k0, buf_.ac.rows(), klen)),
                   ConstMatrixView(buf_.br.block(k0, 0, klen, buf_.br.cols())),
                   1.0, buf_.cf, tap);
      if (++since_verify >= opt_.verify_period) {
        since_verify = 0;
        if (verify_and_correct(tap) == FtStatus::kUncorrectable)
          return FtStatus::kUncorrectable;
      }
    }
    if (verify_and_correct(tap) == FtStatus::kUncorrectable)
      return FtStatus::kUncorrectable;
    return stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                       : FtStatus::kOk;
  }

  template <MemTap Tap = NullTap>
  FtStatus verify_and_correct(Tap tap = {}) {
    ++stats_.verifications;
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_dgemm_dual.verify");
    PhaseTimer t(stats_.verify_seconds, clock_);
    return full_verify(tap);
  }

  [[nodiscard]] ConstMatrixView result() const {
    return ConstMatrixView(buf_.cf).block(0, 0, a_.rows(), b_.cols());
  }
  [[nodiscard]] const FtStats& stats() const { return stats_; }

 private:
  template <MemTap Tap>
  void encode(Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_dgemm_dual.encode");
    const std::size_t m = a_.rows(), n = b_.cols(), kk = a_.cols();
    for (std::size_t j = 0; j < kk; ++j) {
      double s = 0.0, w = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        tap.read(&a_(i, j));
        tap.write(&buf_.ac(i, j));
        buf_.ac(i, j) = a_(i, j);
        s += a_(i, j);
        w += static_cast<double>(i + 1) * a_(i, j);
      }
      tap.write(&buf_.ac(m, j));
      tap.write(&buf_.ac(m + 1, j));
      buf_.ac(m, j) = s;
      buf_.ac(m + 1, j) = w;
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < kk; ++i) {
        tap.read(&b_(i, j));
        tap.write(&buf_.br(i, j));
        buf_.br(i, j) = b_(i, j);
      }
    }
    for (std::size_t i = 0; i < kk; ++i) {
      double s = 0.0, w = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        tap.read(&b_(i, j));
        s += b_(i, j);
        w += static_cast<double>(j + 1) * b_(i, j);
      }
      tap.write(&buf_.br(i, n));
      tap.write(&buf_.br(i, n + 1));
      buf_.br(i, n) = s;
      buf_.br(i, n + 1) = w;
    }
    buf_.cf.fill(0.0);
    scale_ = mean_abs(a_) * mean_abs(b_) * static_cast<double>(kk);
    if (scale_ == 0.0) scale_ = 1.0;
  }

  /// Residuals of one column j against both its checksum entries.
  struct ColResidual {
    double ds = 0.0;  ///< sum residual
    double dw = 0.0;  ///< weighted residual
  };

  template <MemTap Tap>
  ColResidual column_residual(std::size_t j, Tap tap) {
    const std::size_t m = a_.rows();
    double s = 0.0, w = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      tap.read(&buf_.cf(i, j));
      s += buf_.cf(i, j);
      w += static_cast<double>(i + 1) * buf_.cf(i, j);
    }
    tap.read(&buf_.cf(m, j));
    tap.read(&buf_.cf(m + 1, j));
    return {s - buf_.cf(m, j), w - buf_.cf(m + 1, j)};
  }

  template <MemTap Tap>
  FtStatus full_verify(Tap tap) {
    const std::size_t m = a_.rows(), n = b_.cols();
    const double threshold =
        opt_.tolerance * scale_ * std::sqrt(static_cast<double>(m));
    const double wthreshold = threshold * static_cast<double>(m);

    // Row-side sum residuals identify candidate rows.
    std::vector<std::size_t> bad_rows;
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        tap.read(&buf_.cf(i, j));
        s += buf_.cf(i, j);
      }
      tap.read(&buf_.cf(i, n));
      if (std::abs(s - buf_.cf(i, n)) > threshold) bad_rows.push_back(i);
    }

    bool corrected_any = false;
    std::size_t columns_fixed = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const ColResidual res = column_residual(j, tap);
      if (std::abs(res.ds) <= threshold && std::abs(res.dw) <= wthreshold)
        continue;
      ++stats_.errors_detected;
      PhaseTimer t(stats_.correct_seconds, clock_);
      ScopedPhase sp(rt_, obs::EventKind::kRecover, "ft_dgemm_dual.correct");

      // Hypothesis 1: a single error in this column. The weighted/sum
      // ratio locates a row, but an equal-magnitude error PAIR aliases to
      // a phantom single error at the midpoint row -- so the located row
      // must also be corroborated by the row-side residuals.
      bool single_consistent = false;
      long long row1 = -1;
      if (std::abs(res.ds) > threshold) {
        row1 = static_cast<long long>(std::llround(res.dw / res.ds - 1.0));
        single_consistent =
            row1 >= 0 && row1 < static_cast<long long>(m) &&
            std::abs(res.dw - res.ds * static_cast<double>(row1 + 1)) <=
                wthreshold;
      }
      const bool row1_flagged =
          single_consistent &&
          std::find(bad_rows.begin(), bad_rows.end(),
                    static_cast<std::size_t>(row1)) != bad_rows.end();
      if (row1_flagged) {
        tap.update(&buf_.cf(static_cast<std::size_t>(row1), j));
        buf_.cf(static_cast<std::size_t>(row1), j) -= res.ds;
        ++stats_.errors_corrected;
        corrected_any = true;
        ++columns_fixed;
        continue;
      }
      // Hypothesis 2: two errors, in the rows the row residuals flagged:
      //   d1 + d2            = ds
      //   (i1+1)d1 + (i2+1)d2 = dw
      if (bad_rows.size() == 2) {
        const double i1 = static_cast<double>(bad_rows[0] + 1);
        const double i2 = static_cast<double>(bad_rows[1] + 1);
        const double d2 = (res.dw - i1 * res.ds) / (i2 - i1);
        const double d1 = res.ds - d2;
        tap.update(&buf_.cf(bad_rows[0], j));
        tap.update(&buf_.cf(bad_rows[1], j));
        buf_.cf(bad_rows[0], j) -= d1;
        buf_.cf(bad_rows[1], j) -= d2;
        stats_.errors_corrected += 2;
        corrected_any = true;
        ++columns_fixed;
        continue;
      }
      // Hypothesis 3: only the column's checksum entries are corrupted
      // (no payload row flagged): refresh them.
      if (bad_rows.empty() && !single_consistent) {
        refresh_column_checksums(j, tap);
        ++stats_.errors_corrected;
        corrected_any = true;
        continue;
      }
      // Fallback: a consistent single location without row corroboration
      // (possible when the same row carries compensating errors in other
      // columns) -- accept only when the pair solver had no candidates.
      if (single_consistent && bad_rows.size() != 2) {
        tap.update(&buf_.cf(static_cast<std::size_t>(row1), j));
        buf_.cf(static_cast<std::size_t>(row1), j) -= res.ds;
        ++stats_.errors_corrected;
        corrected_any = true;
        ++columns_fixed;
        continue;
      }
      return FtStatus::kUncorrectable;
    }

    // Leftover bad rows with no bad column: corrupted row-checksum entries.
    if (columns_fixed == 0 && !bad_rows.empty()) {
      PhaseTimer t(stats_.correct_seconds, clock_);
      ScopedPhase sp(rt_, obs::EventKind::kRecover, "ft_dgemm_dual.correct");
      for (const std::size_t i : bad_rows) {
        refresh_row_checksums(i, tap);
        ++stats_.errors_detected;
        ++stats_.errors_corrected;
      }
      corrected_any = true;
    } else if (columns_fixed > 0 && !bad_rows.empty()) {
      // Row-side damage should have been cleared by the column fixes;
      // verify cheaply and refuse if anything still disagrees.
      for (const std::size_t i : bad_rows) {
        double s = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          tap.read(&buf_.cf(i, j));
          s += buf_.cf(i, j);
        }
        tap.read(&buf_.cf(i, n));
        if (std::abs(s - buf_.cf(i, n)) > threshold)
          return FtStatus::kUncorrectable;
      }
    }
    return corrected_any ? FtStatus::kCorrectedErrors : FtStatus::kOk;
  }

  template <MemTap Tap>
  void refresh_column_checksums(std::size_t j, Tap tap) {
    const std::size_t m = a_.rows();
    double s = 0.0, w = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      tap.read(&buf_.cf(i, j));
      s += buf_.cf(i, j);
      w += static_cast<double>(i + 1) * buf_.cf(i, j);
    }
    tap.write(&buf_.cf(m, j));
    tap.write(&buf_.cf(m + 1, j));
    buf_.cf(m, j) = s;
    buf_.cf(m + 1, j) = w;
  }

  template <MemTap Tap>
  void refresh_row_checksums(std::size_t i, Tap tap) {
    const std::size_t n = b_.cols();
    double s = 0.0, w = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      tap.read(&buf_.cf(i, j));
      s += buf_.cf(i, j);
      w += static_cast<double>(j + 1) * buf_.cf(i, j);
    }
    tap.write(&buf_.cf(i, n));
    tap.write(&buf_.cf(i, n + 1));
    buf_.cf(i, n) = s;
    buf_.cf(i, n + 1) = w;
  }

  ConstMatrixView a_, b_;
  Buffers buf_;
  FtOptions opt_;
  Runtime* rt_;
  /// FtStats time source: simulated cycles when the runtime has an Os
  /// attached, host steady_clock otherwise; run(backend) overrides it
  /// with the backend's clock.
  TickClock clock_ = rt_ != nullptr ? rt_->clock() : TickClock{};
  std::size_t struct_id_ = 0;
  double scale_ = 1.0;
  FtStats stats_;
};

}  // namespace abftecc::abft
