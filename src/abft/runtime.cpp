#include "abft/runtime.hpp"

#include "obs/lineage.hpp"
#include "obs/metrics.hpp"

namespace abftecc::abft {

std::size_t Runtime::register_structure(std::string name, const double* base,
                                        std::size_t elements) {
  structures_.push_back(Structure{std::move(name), base, elements, true});
  return structures_.size() - 1;
}

void Runtime::unregister_structure(std::size_t id) {
  if (id < structures_.size()) structures_[id].live = false;
}

std::vector<LocatedError> Runtime::drain_located_errors() {
  std::vector<LocatedError> out;
  if (os_ == nullptr) return out;
  obs::PhaseScope locate(obs::Phase::kLocate);
  auto& tracer = obs::default_tracer();
  const std::uint64_t now = os_->system().stats().cpu_cycles;
  for (const auto& e : os_->drain_exposed_errors()) {
    LocatedError le;
    le.structure_id = npos;
    const auto* addr = static_cast<const std::byte*>(e.vaddr);
    for (std::size_t id = 0; id < structures_.size(); ++id) {
      const Structure& s = structures_[id];
      if (!s.live) continue;
      const auto* base = reinterpret_cast<const std::byte*>(s.base);
      const auto* end = base + s.elements * sizeof(double);
      if (addr >= base && addr < end) {
        le.structure_id = id;
        le.structure_name = s.name;
        le.element_index =
            static_cast<std::size_t>(addr - base) / sizeof(double);
        break;
      }
    }
    tracer.instant(obs::EventKind::kErrorLocated, now, e.phys_addr,
                   le.structure_id, le.element_index);
    obs::default_lineage().line_event(e.phys_addr,
                                      obs::LineageStage::kAbftLocated, now,
                                      le.structure_id, le.element_index);
    out.push_back(std::move(le));
  }
  if (!out.empty()) {
    obs::default_registry().counter("abft.errors_located").add(out.size());
    tracer.instant(obs::EventKind::kErrorsDrained, now, 0, out.size());
  }
  return out;
}

}  // namespace abftecc::abft
