// Shared types for the ABFT kernels: status codes, phase timing (the
// checksum-vs-verification breakdown of Figure 3), and options.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/backend.hpp"

namespace abftecc::abft {

enum class FtStatus {
  kOk,                ///< finished; all detected errors corrected
  kCorrectedErrors,   ///< finished; >= 1 error was detected and corrected
  kUncorrectable,     ///< error pattern beyond ABFT capability: caller must
                      ///< fall back to checkpoint/restart
  kNumericalFailure,  ///< substrate breakdown (non-SPD, singular, divergence)
  kUnrecoverable,     ///< the whole recovery ladder (recompute + rollback)
                      ///< was exhausted; result must not be trusted
};

constexpr std::string_view to_string(FtStatus s) {
  switch (s) {
    case FtStatus::kOk: return "ok";
    case FtStatus::kCorrectedErrors: return "corrected_errors";
    case FtStatus::kUncorrectable: return "uncorrectable";
    case FtStatus::kNumericalFailure: return "numerical_failure";
    case FtStatus::kUnrecoverable: return "unrecoverable";
  }
  return "?";
}

/// Accumulated per-run ABFT accounting. Wall-clock phase timers feed the
/// Figure 3 overhead breakdown and the Table 1 simplified-verification
/// comparison; counters feed the error-handling experiments.
struct FtStats {
  double encode_seconds = 0.0;   ///< building + maintaining checksums
  double verify_seconds = 0.0;   ///< periodic verification passes
  double correct_seconds = 0.0;  ///< error correction work
  std::uint64_t verifications = 0;
  std::uint64_t errors_detected = 0;
  std::uint64_t errors_corrected = 0;
  std::uint64_t hw_notifications_used = 0;  ///< simplified-verification hits

  [[nodiscard]] double overhead_seconds() const {
    return encode_seconds + verify_seconds + correct_seconds;
  }
};

/// Scoped phase timer accumulating into an FtStats field. Reads the
/// backend's native time source (common/backend.hpp): simulated cycles in
/// simulated mode -- deterministic, immune to host scheduling noise -- and
/// host steady_clock in native mode or when no backend is attached.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& sink, TickClock clock = {})
      : sink_(sink), clock_(clock), start_(clock_.now()) {}
  ~PhaseTimer() { sink_ += clock_.seconds_since(start_); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& sink_;
  TickClock clock_;
  std::uint64_t start_;
};

/// Options common to the fail-continue kernels.
struct FtOptions {
  /// Verify every this many block iterations ("every few iterations of the
  /// computation", Section 2.1).
  std::size_t verify_period = 4;
  /// Use the cooperative hardware error-notification path instead of full
  /// checksum recomputation when no notification is pending (Section 3.2.2).
  bool hardware_assisted = false;
  /// Relative tolerance for checksum residual tests.
  double tolerance = 1e-8;
};

}  // namespace abftecc::abft
