// FT-Pred-CG: fault-tolerant preconditioned conjugate gradient for
// fail-continue errors (Section 2.1, after Chen's Online-ABFT).
//
// Unlike the checksum kernels, CG is protected by an algorithm-inherent
// invariant: at every iteration r = b - A x must hold (the paper's
// Equations (1) family). Every `verify_period` iterations the residual
// d = b - A x - r is recomputed (cost: one matvec). A nonzero d means some
// of r, p, q, x (or propagated M/rho damage) was corrupted; recovery sets
// r := b - A x (i.e. r += d), re-applies the preconditioner and restarts
// the search direction -- a valid CG state from the current x, so the
// solve converges even when x itself took the hit. The static right-hand
// side b is covered by a sum/weighted checksum pair and repaired directly,
// and so is the static operator matrix A (one sum + one weighted checksum
// per column, encoded once and verified each period), following standard
// FT-CG practice -- the operator carries the bulk of the memory traffic,
// so it is what relaxed ECC must cover to matter (see DESIGN.md).
// In cooperative mode the matvec check is skipped entirely while the OS
// error log is empty -- the largest simplified-verification win of Table 1.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "linalg/cg.hpp"

namespace abftecc::abft {

struct FtCgResult {
  linalg::CgResult cg;
  FtStatus status = FtStatus::kOk;
};

class FtCg {
 public:
  struct Buffers {
    std::span<double> x;
    std::span<double> r;
    std::span<double> z;
    std::span<double> p;
    std::span<double> q;
  };

  FtCg(MatrixView a, std::span<double> b, Buffers buf,
       linalg::CgOptions cg_opt = {}, FtOptions ft_opt = {},
       Runtime* runtime = nullptr)
      : a_(a), b_(b), buf_(buf), cg_opt_(cg_opt), opt_(ft_opt), rt_(runtime) {
    const std::size_t n = a.rows();
    ABFTECC_REQUIRE(a.cols() == n && b.size() == n);
    ABFTECC_REQUIRE(buf.x.size() == n && buf.r.size() == n &&
                    buf.z.size() == n && buf.p.size() == n &&
                    buf.q.size() == n);
    if (rt_ != nullptr) {
      ids_[0] = rt_->register_structure("ft_cg.x", buf.x.data(), n);
      ids_[1] = rt_->register_structure("ft_cg.r", buf.r.data(), n);
      ids_[2] = rt_->register_structure("ft_cg.p", buf.p.data(), n);
      ids_[3] = rt_->register_structure("ft_cg.q", buf.q.data(), n);
      ids_[4] = rt_->register_structure("ft_cg.b", b.data(), n);
      ids_[5] = rt_->register_structure("ft_cg.A", a.data(), a.ld() * n);
    }
  }

  ~FtCg() {
    if (rt_ != nullptr)
      for (const auto id : ids_) rt_->unregister_structure(id);
  }
  FtCg(const FtCg&) = delete;
  FtCg& operator=(const FtCg&) = delete;

  /// Run through a memory backend (common/backend.hpp): tap and FtStats
  /// time source both come from the backend.
  template <MemBackend B>
  FtCgResult run(B& be) {
    clock_ = be.clock();
    return run(be.tap());
  }

  template <MemTap Tap = NullTap>
  FtCgResult run(Tap tap = {}) {
    const std::size_t n = b_.size();
    linalg::JacobiPreconditioner m{ConstMatrixView(a_)};
    encode_b(tap);
    encode_a(tap);

    // r0 = b - A x0; z0 = M^-1 r0; p0 = z0.
    linalg::gemv(-1.0, a_, buf_.x, 0.0, buf_.r, tap);
    linalg::axpy(1.0, std::span<const double>(b_), buf_.r, tap);
    m.apply(buf_.r, buf_.z, tap);
    linalg::copy<Tap>(buf_.z, buf_.p, tap);
    double rho = linalg::dot<Tap>(buf_.r, buf_.z, tap);

    const double bnorm = linalg::nrm2<Tap>(std::span<const double>(b_), tap);
    const double threshold =
        cg_opt_.tolerance * (bnorm > 0.0 ? bnorm : 1.0);
    scale_ = bnorm > 0.0 ? bnorm / std::sqrt(static_cast<double>(n)) : 1.0;

    FtCgResult res;
    linalg::CgWorkspace w{buf_.r, buf_.z, buf_.p, buf_.q};
    std::size_t since_verify = 0;
    for (std::size_t it = 0; it < cg_opt_.max_iterations; ++it) {
      rho = linalg::pcg_iteration(a_, m, buf_.x, w, rho, tap);
      res.cg.iterations = it + 1;
      if (++since_verify >= opt_.verify_period) {
        since_verify = 0;
        const FtStatus st = verify_and_correct(m, rho, tap);
        if (st == FtStatus::kUncorrectable) {
          res.status = st;
          return res;
        }
      }
      res.cg.residual_norm =
          linalg::nrm2<Tap>(std::span<const double>(buf_.r), tap);
      if (res.cg.residual_norm <= threshold) {
        // Final guard: never report convergence off a corrupted state.
        const FtStatus st = verify_and_correct(m, rho, tap);
        if (st == FtStatus::kUncorrectable) {
          res.status = st;
          return res;
        }
        res.cg.residual_norm =
            linalg::nrm2<Tap>(std::span<const double>(buf_.r), tap);
        if (res.cg.residual_norm <= threshold) {
          res.cg.converged = true;
          break;
        }
      }
    }
    res.status = stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                             : FtStatus::kOk;
    if (!res.cg.converged && res.status == FtStatus::kOk)
      res.status = FtStatus::kNumericalFailure;
    return res;
  }

  [[nodiscard]] const FtStats& stats() const { return stats_; }

  /// Public for tests: one verification pass (rho is refreshed on repair).
  template <MemTap Tap = NullTap>
  FtStatus verify_and_correct(const linalg::JacobiPreconditioner& m,
                              double& rho, Tap tap = {}) {
    ++stats_.verifications;
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_cg.verify");
    if (opt_.hardware_assisted && rt_ != nullptr &&
        rt_->hardware_assisted_available()) {
      PhaseTimer t(stats_.verify_seconds, clock_);
      if (!rt_->errors_pending()) return FtStatus::kOk;
      rt_->drain_located_errors();  // locations noted; repair is uniform
      ++stats_.hw_notifications_used;
      ++stats_.errors_detected;
      PhaseTimer tc(stats_.correct_seconds);
      ScopedPhase recover(rt_, obs::EventKind::kRecover, "ft_cg.recover");
      repair(m, rho, tap);
      ++stats_.errors_corrected;
      return FtStatus::kCorrectedErrors;
    }
    PhaseTimer t(stats_.verify_seconds, clock_);
    return full_verify(m, rho, tap);
  }

 private:
  template <MemTap Tap>
  void encode_b(Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_cg.encode");
    b_sum_ = 0.0;
    b_weighted_ = 0.0;
    for (std::size_t i = 0; i < b_.size(); ++i) {
      tap.read(&b_[i]);
      b_sum_ += b_[i];
      b_weighted_ += static_cast<double>(i + 1) * b_[i];
    }
  }

  /// Encode the static column checksums of A (checksum-maintenance phase).
  template <MemTap Tap>
  void encode_a(Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_cg.encode");
    const std::size_t n = a_.cols();
    a_sum_.assign(n, 0.0);
    a_weighted_.assign(n, 0.0);
    column_checksums(ConstMatrixView(a_), a_sum_, a_weighted_, 0, tap);
  }

  /// Verify/repair A against its static checksums. Returns false on an
  /// unlocatable corruption.
  template <MemTap Tap>
  bool verify_a(Tap tap) {
    const double a_scale = scale_ > 0.0 ? scale_ : 1.0;
    const auto errors =
        verify_columns(ConstMatrixView(a_), a_sum_, a_weighted_,
                       opt_.tolerance, a_scale, 0, tap);
    if (errors.empty()) return true;
    PhaseTimer t(stats_.correct_seconds, clock_);
    ScopedPhase sp(rt_, obs::EventKind::kRecover, "ft_cg.correct");
    for (const auto& e : errors) {
      ++stats_.errors_detected;
      if (!e.locatable) return false;
      tap.update(&a_(e.row, e.column));
      a_(e.row, e.column) -= e.magnitude;
      ++stats_.errors_corrected;
    }
    return true;
  }

  /// Repair b from its static checksums; returns false on an unlocatable
  /// multi-element corruption.
  template <MemTap Tap>
  bool verify_b(Tap tap) {
    double s = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < b_.size(); ++i) {
      tap.read(&b_[i]);
      s += b_[i];
      wsum += static_cast<double>(i + 1) * b_[i];
    }
    const double threshold =
        opt_.tolerance * scale_ * static_cast<double>(b_.size());
    const double ds = s - b_sum_;
    if (std::abs(ds) <= threshold) return true;
    ++stats_.errors_detected;
    PhaseTimer t(stats_.correct_seconds, clock_);
    ScopedPhase sp(rt_, obs::EventKind::kRecover, "ft_cg.correct");
    const double dw = wsum - b_weighted_;
    const double row_f = dw / ds - 1.0;
    const auto row = static_cast<long long>(std::llround(row_f));
    if (row < 0 || row >= static_cast<long long>(b_.size()) ||
        std::abs(dw - ds * static_cast<double>(row + 1)) >
            threshold * static_cast<double>(b_.size()))
      return false;
    tap.update(&b_[static_cast<std::size_t>(row)]);
    b_[static_cast<std::size_t>(row)] -= ds;
    ++stats_.errors_corrected;
    return true;
  }

  /// Restore the invariant r = b - A x and restart the direction.
  template <MemTap Tap>
  void repair(const linalg::JacobiPreconditioner& m, double& rho, Tap tap) {
    // Non-finite x entries would poison the restart; zero them (CG then
    // reconverges from the perturbed iterate).
    for (std::size_t i = 0; i < buf_.x.size(); ++i) {
      tap.read(&buf_.x[i]);
      if (!std::isfinite(buf_.x[i])) {
        tap.write(&buf_.x[i]);
        buf_.x[i] = 0.0;
      }
    }
    linalg::gemv(-1.0, a_, buf_.x, 0.0, buf_.r, tap);
    linalg::axpy(1.0, std::span<const double>(b_), buf_.r, tap);
    m.apply(buf_.r, buf_.z, tap);
    linalg::copy<Tap>(buf_.z, buf_.p, tap);
    rho = linalg::dot<Tap>(buf_.r, buf_.z, tap);
  }

  template <MemTap Tap>
  FtStatus full_verify(const linalg::JacobiPreconditioner& m, double& rho,
                       Tap tap) {
    if (!verify_b(tap)) return FtStatus::kUncorrectable;
    // The operator is static, so its O(n^2) checksum scan runs on every
    // fourth verification only (Online-ABFT style lazy escalation); the
    // per-period cost stays near one matvec.
    bool a_was_repaired = false;
    if (++verifies_since_a_check_ >= kMatrixCheckInterval) {
      verifies_since_a_check_ = 0;
      const auto corrected_before = stats_.errors_corrected;
      if (!verify_a(tap)) return FtStatus::kUncorrectable;
      a_was_repaired = stats_.errors_corrected != corrected_before;
    }
    // d = b - A x - r; any corruption of r, q or x breaks it.
    std::vector<double> d(b_.size());
    linalg::gemv(-1.0, a_, buf_.x, 0.0, d, tap);
    linalg::axpy(1.0, std::span<const double>(b_), d, tap);
    linalg::axpy(-1.0, std::span<const double>(buf_.r), d, tap);
    double dmax = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i)
      dmax = std::max(dmax, std::abs(d[i]));
    const double threshold = opt_.tolerance * scale_;
    // Second invariant (the paper's Eq. (1) orthogonality family): the
    // exact recurrences give p^T r == rho at every iteration. Corruption
    // of p or z leaves r = b - A x intact (x and r absorb a wrong
    // direction consistently) but breaks this relation.
    const double pr = linalg::dot<Tap>(std::span<const double>(buf_.p),
                                       std::span<const double>(buf_.r), tap);
    const double pnorm =
        linalg::nrm2<Tap>(std::span<const double>(buf_.p), tap);
    const double rnorm =
        linalg::nrm2<Tap>(std::span<const double>(buf_.r), tap);
    const bool direction_ok =
        std::isfinite(pr) &&
        std::abs(pr - rho) <=
            1e-6 * (pnorm * rnorm + std::abs(rho)) + threshold;
    if (!a_was_repaired && direction_ok && std::isfinite(dmax) &&
        dmax <= threshold)
      return FtStatus::kOk;
    if (a_was_repaired) {
      // The operator was corrupted for some iterations: restart the
      // direction from the repaired A.
      PhaseTimer t(stats_.correct_seconds, clock_);
      ScopedPhase sp(rt_, obs::EventKind::kRecover, "ft_cg.correct");
      repair(m, rho, tap);
      return FtStatus::kCorrectedErrors;
    }
    ++stats_.errors_detected;
    PhaseTimer t(stats_.correct_seconds, clock_);
    ScopedPhase sp(rt_, obs::EventKind::kRecover, "ft_cg.correct");
    repair(m, rho, tap);
    ++stats_.errors_corrected;
    return FtStatus::kCorrectedErrors;
  }

  MatrixView a_;
  std::span<double> b_;
  Buffers buf_;
  linalg::CgOptions cg_opt_;
  FtOptions opt_;
  Runtime* rt_;
  /// FtStats time source: simulated cycles when the runtime has an Os
  /// attached, host steady_clock otherwise; run(backend) overrides it
  /// with the backend's clock.
  TickClock clock_ = rt_ != nullptr ? rt_->clock() : TickClock{};
  std::size_t ids_[6] = {};
  double b_sum_ = 0.0, b_weighted_ = 0.0;
  std::vector<double> a_sum_, a_weighted_;
  static constexpr std::size_t kMatrixCheckInterval = 4;
  std::size_t verifies_since_a_check_ = kMatrixCheckInterval - 1;
  double scale_ = 1.0;
  FtStats stats_;
};

}  // namespace abftecc::abft
