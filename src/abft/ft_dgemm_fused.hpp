// Fused FT-DGEMM: checksum maintenance and periodic verification woven into
// the blocked native GEMM instead of run as separate passes (the FT-GEMM
// design, arXiv 2305.02444 — see PAPERS.md).
//
// The classic FtDgemm encodes A and B into enlarged checksum copies and
// re-walks the whole product between k-blocks; at native speed those extra
// passes and the memory they drag through cache dominate. Here the payload
// matrices stay untouched and the checksum state is two side vectors,
//     cc[j] = expected column sums (e^T C),   cr[i] = expected row sums (C e),
// maintained incrementally from the *inputs* (cc += (e^T A_panel) B_panel,
// cr += A_panel (B_panel e)) — O((m+n)·k) extra FLOPs against the product's
// O(m·n·k). Verification is fused into the tile sweep: right after a verify
// group's last k-panel updates a C column block, while that block is still
// cache-hot, one read pass both checks the block's column sums and
// accumulates actual row sums; the row check closes at the group boundary.
// A single corrupted element shows up as a matching column/row residual pair
// and is repaired in place, exactly like the classic kernel's Case C.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "abft/common.hpp"
#include "common/backend.hpp"
#include "common/error.hpp"
#include "common/matrix.hpp"
#include "linalg/gemm_native.hpp"

namespace abftecc::abft {

struct FusedOptions {
  /// k-panels per verify group ("every few iterations", Section 2.1).
  std::size_t verify_period = 4;
  /// Relative tolerance for checksum residual tests.
  double tolerance = 1e-8;
  /// k-panel depth fed to the native GEMM per tile pass.
  std::size_t panel = 256;
  /// C column-block width of the fused compute+verify sweep. Wide enough
  /// that the sliced GEMM calls run at full-kernel speed (narrow blocks
  /// re-stream the A panel too often and cost ~10% at n=2048); the verify
  /// read still follows each block far warmer than a whole-matrix pass.
  std::size_t jblock = 512;
};

class FtDgemmFused {
 public:
  using Options = FusedOptions;

  /// Computes c <- a * b. `c` must be exactly a.rows() x b.cols(); no
  /// checksum-enlarged buffers exist in this kernel.
  FtDgemmFused(ConstMatrixView a, ConstMatrixView b, MatrixView c,
               Options opt = {})
      : a_(a), b_(b), c_(c), opt_(opt) {
    ABFTECC_REQUIRE(a.cols() == b.rows());
    ABFTECC_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols());
    ABFTECC_REQUIRE(opt_.verify_period > 0 && opt_.panel > 0 &&
                    opt_.jblock > 0);
  }

  /// Test hook: called after the verify group's panel updates have been
  /// applied to the C block starting at column `j0`, immediately *before*
  /// the fused verification of that block — i.e. between verify periods.
  /// Fault-injection tests flip a payload element here.
  void set_fault_hook(std::function<void(std::size_t group, std::size_t j0)> f) {
    fault_hook_ = std::move(f);
  }

  template <MemBackend B>
  FtStatus run(B& be) {
    clock_ = be.clock();
    const std::size_t m = a_.rows(), n = b_.cols(), kk = a_.cols();
    const std::size_t group_k = opt_.verify_period * opt_.panel;

    // --- encode: side checksum vectors, maintained from the inputs -------
    std::vector<double> sa(kk), rb(kk);  // e^T A  and  B e
    std::vector<double> cc(n, 0.0), cr(m, 0.0), racc(m, 0.0);
    {
      PhaseTimer t(stats_.encode_seconds, clock_);
      touch_matrix(be, a_, MemOp::kRead);
      touch_matrix(be, b_, MemOp::kRead);
      double asum = 0.0, bsum = 0.0;
      for (std::size_t k = 0; k < kk; ++k) {
        double s = 0.0;
        for (std::size_t i = 0; i < m; ++i) s += a_(i, k);
        sa[k] = s;
        for (std::size_t i = 0; i < m; ++i) asum += std::abs(a_(i, k));
      }
      for (std::size_t k = 0; k < kk; ++k) {
        double s = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          s += b_(k, j);
          bsum += std::abs(b_(k, j));
        }
        rb[k] = s;
      }
      c_.fill(0.0);
      scale_ = (asum / static_cast<double>(m * kk)) *
               (bsum / static_cast<double>(n * kk)) * static_cast<double>(kk);
      if (scale_ == 0.0) scale_ = 1.0;
    }
    const double threshold =
        opt_.tolerance * scale_ * std::sqrt(static_cast<double>(m));

    // --- fused compute + verify sweep ------------------------------------
    std::size_t group = 0;
    for (std::size_t kg = 0; kg < kk; kg += group_k, ++group) {
      const std::size_t glen = std::min(group_k, kk - kg);
      bad_cols_.clear();
      colres_.clear();
      std::fill(racc.begin(), racc.end(), 0.0);

      for (std::size_t j0 = 0; j0 < n; j0 += opt_.jblock) {
        const std::size_t jb = std::min(opt_.jblock, n - j0);
        MatrixView cblk = c_.block(0, j0, m, jb);
        // All of the group's k-panels hit this block back to back, so the
        // block stays resident for the verification read that follows.
        for (std::size_t k0 = kg; k0 < kg + glen; k0 += opt_.panel) {
          const std::size_t klen = std::min(opt_.panel, kg + glen - k0);
          linalg::gemm_native(
              1.0, ConstMatrixView(a_).block(0, k0, m, klen),
              ConstMatrixView(b_).block(k0, j0, klen, jb), 1.0, cblk);
        }
        touch_block(be, cblk, MemOp::kUpdate);
        {
          // Maintain the expected column sums from the inputs.
          PhaseTimer t(stats_.encode_seconds, clock_);
          for (std::size_t j = 0; j < jb; ++j) {
            double s = 0.0;
            for (std::size_t k = kg; k < kg + glen; ++k)
              s += sa[k] * b_(k, j0 + j);
            cc[j0 + j] += s;
          }
        }
        if (fault_hook_) fault_hook_(group, j0);
        // Fused verification: one read pass over the still-hot block checks
        // its column sums and accumulates the actual row sums.
        PhaseTimer t(stats_.verify_seconds, clock_);
        for (std::size_t j = 0; j < jb; ++j) {
          double s = 0.0;
          for (std::size_t i = 0; i < m; ++i) {
            const double v = cblk(i, j);
            s += v;
            racc[i] += v;
          }
          const double res = s - cc[j0 + j];
          if (std::abs(res) > threshold) {
            bad_cols_.push_back(j0 + j);
            colres_.push_back(res);
          }
        }
      }
      {
        // Expected row sums for the group, from the inputs.
        PhaseTimer t(stats_.encode_seconds, clock_);
        for (std::size_t k = kg; k < kg + glen; ++k) {
          const double w = rb[k];
          for (std::size_t i = 0; i < m; ++i) cr[i] += a_(i, k) * w;
        }
      }
      ++stats_.verifications;
      const FtStatus st = close_group(cr, racc, threshold, be);
      if (st == FtStatus::kUncorrectable) return st;
    }
    return stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                       : FtStatus::kOk;
  }

  [[nodiscard]] ConstMatrixView result() const { return ConstMatrixView(c_); }
  [[nodiscard]] const FtStats& stats() const { return stats_; }

 private:
  /// Bulk-announce a (possibly strided) matrix view to the backend.
  template <MemBackend B>
  static void touch_matrix(B& be, ConstMatrixView v, MemOp op) {
    if (v.ld() == v.rows()) {
      be.touch(v.data(), v.rows() * v.cols() * sizeof(double), op);
    } else {
      for (std::size_t j = 0; j < v.cols(); ++j)
        be.touch(&v(0, j), v.rows() * sizeof(double), op);
    }
  }
  template <MemBackend B>
  static void touch_block(B& be, MatrixView v, MemOp op) {
    touch_matrix(be, ConstMatrixView(v), op);
  }

  /// Close the verify group: row residuals, then pair row/column residuals
  /// and repair single errors in place (classic FtDgemm Case C, against the
  /// side vectors instead of an embedded checksum row/column).
  template <MemBackend B>
  FtStatus close_group(const std::vector<double>& cr,
                       const std::vector<double>& racc, double threshold,
                       B& be) {
    const std::size_t m = a_.rows();
    std::vector<std::size_t> bad_rows;
    std::vector<double> rowres;
    for (std::size_t i = 0; i < m; ++i) {
      const double res = racc[i] - cr[i];
      if (std::abs(res) > threshold) {
        bad_rows.push_back(i);
        rowres.push_back(res);
      }
    }
    if (bad_rows.empty() && bad_cols_.empty()) return FtStatus::kOk;
    PhaseTimer t(stats_.correct_seconds, clock_);
    stats_.errors_detected += std::max(bad_rows.size(), bad_cols_.size());
    if (bad_rows.size() != bad_cols_.size()) return FtStatus::kUncorrectable;
    // Pair each bad column with the unique bad row of matching residual.
    std::vector<bool> used(bad_rows.size(), false);
    for (std::size_t cidx = 0; cidx < bad_cols_.size(); ++cidx) {
      std::size_t match = bad_rows.size();
      for (std::size_t r = 0; r < bad_rows.size(); ++r) {
        if (used[r]) continue;
        if (std::abs(rowres[r] - colres_[cidx]) <= threshold) {
          if (match != bad_rows.size()) return FtStatus::kUncorrectable;
          match = r;
        }
      }
      if (match == bad_rows.size()) return FtStatus::kUncorrectable;
      used[match] = true;
      double& cell = c_(bad_rows[match], bad_cols_[cidx]);
      be.touch(&cell, sizeof(double), MemOp::kUpdate);
      cell -= colres_[cidx];
      ++stats_.errors_corrected;
    }
    return FtStatus::kCorrectedErrors;
  }

  ConstMatrixView a_, b_;
  MatrixView c_;
  Options opt_;
  double scale_ = 1.0;
  FtStats stats_;
  TickClock clock_;
  std::vector<std::size_t> bad_cols_;
  std::vector<double> colres_;
  std::function<void(std::size_t, std::size_t)> fault_hook_;
};

}  // namespace abftecc::abft
