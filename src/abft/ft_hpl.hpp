// FT-HPL: fault-tolerant LU / Linpack solver for fail-stop errors
// (Section 2.1, after Davies et al.).
//
// Layout models a 1D row-block distribution over `processes` MPI ranks:
// rank p owns original rows [p*h, (p+1)*h), h = n/processes. The encoded
// matrix is
//     Ae = [ A  b ]        (n rows; b rides along as column n, so forward
//          [ C  c ]         elimination is applied to it on the fly)
// with h checksum rows at the bottom: C(c,:) = sum over ranks of original
// row p*h + c. Checksum rows take part in the elimination as ordinary
// (never-pivoted) rows; the algebra then keeps each checksum row equal to
// the sum of its group's still-ACTIVE rows at every step. Rows frozen into
// U stop being updated, so a second, static checksum block U_C accumulates
// each row as it freezes (O(n) per row). A fail-stop failure of rank p at a
// block-iteration boundary is then fully recoverable:
//   * active lost rows   from C  minus the surviving active group members,
//   * frozen lost U rows from U_C minus the surviving frozen members.
// Pivot row swaps are global knowledge (HPL broadcasts them), tracked in a
// position <-> original-row mapping. The same active checksums double as a
// soft-error detector over the trailing matrix.
#pragma once

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "linalg/blas.hpp"

namespace abftecc::abft {

class FtHpl {
 public:
  struct Buffers {
    /// (n + h) x (n + 1) for fail-stop only, or (n + h + 2) x (n + 1) to
    /// additionally enable fail-continue soft-error correction: the two
    /// extra bottom rows carry the global sum / weighted checksums.
    MatrixView ae;
    MatrixView uc;  ///< h x (n + 1): static frozen-row checksums, zeroed
  };

  FtHpl(ConstMatrixView a, std::span<const double> b, std::size_t processes,
        Buffers buf, FtOptions opt = {}, Runtime* runtime = nullptr,
        std::size_t block = linalg::kBlock)
      : n_(a.rows()),
        nproc_(processes),
        h_(a.rows() / processes),
        buf_(buf),
        opt_(opt),
        rt_(runtime),
        nb_(block) {
    ABFTECC_REQUIRE(a.cols() == n_ && b.size() == n_);
    ABFTECC_REQUIRE(processes >= 2 && n_ % processes == 0);
    ABFTECC_REQUIRE(buf.ae.rows() == n_ + h_ || buf.ae.rows() == n_ + h_ + 2);
    soft_ = buf.ae.rows() == n_ + h_ + 2;
    ABFTECC_REQUIRE(buf.ae.cols() == n_ + 1);
    ABFTECC_REQUIRE(buf.uc.rows() == h_ && buf.uc.cols() == n_ + 1);
    encode(a, b);
    if (rt_ != nullptr)
      struct_id_ = rt_->register_structure("ft_hpl.Ae", buf_.ae.data(),
                                           buf_.ae.ld() * buf_.ae.cols());
  }

  ~FtHpl() {
    if (rt_ != nullptr) rt_->unregister_structure(struct_id_);
  }
  FtHpl(const FtHpl&) = delete;
  FtHpl& operator=(const FtHpl&) = delete;

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t rows_per_process() const { return h_; }
  [[nodiscard]] bool soft_correction_enabled() const { return soft_; }
  [[nodiscard]] std::size_t next_block() const { return next_k_; }
  [[nodiscard]] const FtStats& stats() const { return stats_; }

  /// Factor block-columns [next_block(), k_end). Returns kNumericalFailure
  /// on an exactly singular pivot column.
  template <MemTap Tap = NullTap>
  FtStatus factor_steps(std::size_t k_end, Tap tap = {}) {
    ABFTECC_REQUIRE(k_end <= n_ && k_end >= next_k_);
    std::size_t since_verify = 0;
    while (next_k_ < k_end) {
      const std::size_t k = next_k_;
      const std::size_t b = std::min(nb_, k_end - k);
      if (!panel(k, b, tap)) return FtStatus::kNumericalFailure;
      if (k + b < n_ + 1) {
        // U12 including the carried b column.
        linalg::trsm_left_lower_unit(
            ConstMatrixView(buf_.ae.block(k, k, b, b)),
            buf_.ae.block(k, k + b, b, n_ + 1 - k - b), tap);
      }
      freeze_rows(k, b, tap);
      if (k + b < n_ + 1 && k + b < total_rows()) {
        linalg::gemm(
            -1.0,
            ConstMatrixView(buf_.ae.block(k + b, k, total_rows() - k - b, b)),
            ConstMatrixView(buf_.ae.block(k, k + b, b, n_ + 1 - k - b)), 1.0,
            buf_.ae.block(k + b, k + b, total_rows() - k - b,
                          n_ + 1 - k - b),
            tap);
      }
      next_k_ = k + b;
      if (++since_verify >= opt_.verify_period) {
        since_verify = 0;
        if (verify_active(tap) == FtStatus::kUncorrectable)
          return FtStatus::kUncorrectable;
      }
    }
    return FtStatus::kOk;
  }

  /// Factor through a memory backend (common/backend.hpp): tap and FtStats
  /// time source both come from the backend.
  template <MemBackend B>
  FtStatus factor(B& be) {
    clock_ = be.clock();
    return factor(be.tap());
  }

  /// Full factorization.
  template <MemTap Tap = NullTap>
  FtStatus factor(Tap tap = {}) {
    const FtStatus st = factor_steps(n_, tap);
    if (st != FtStatus::kOk) return st;
    const FtStatus vst = verify_active(tap);
    if (vst == FtStatus::kUncorrectable) return vst;
    return stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                       : FtStatus::kOk;
  }

  /// Fail-stop: wipe every row owned by `process` (wherever pivoting moved
  /// it). Call at a block boundary, then recover_process().
  void simulate_failstop(std::size_t process) {
    ABFTECC_REQUIRE(process < nproc_);
    for (std::size_t o = process * h_; o < (process + 1) * h_; ++o) {
      const std::size_t pos = pos_of_orig_[o];
      for (std::size_t j = 0; j < n_ + 1; ++j) buf_.ae(pos, j) = 0.0;
    }
  }

  /// Rebuild the lost rank's rows from the two checksum blocks.
  template <MemTap Tap = NullTap>
  FtStatus recover_process(std::size_t process, Tap tap = {}) {
    ABFTECC_REQUIRE(process < nproc_);
    PhaseTimer t(stats_.correct_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kRecover, "ft_hpl.recover");
    const std::size_t k = next_k_;
    for (std::size_t o = process * h_; o < (process + 1) * h_; ++o) {
      const std::size_t c = o % h_;
      const std::size_t pos = pos_of_orig_[o];
      const bool frozen = pos < k;
      // Columns left of k in an active row are L multipliers from past
      // panels; they are not needed for the solve (b already carries the
      // eliminations), so active rows are rebuilt for columns >= k only.
      const std::size_t j0 = frozen ? 0 : k;
      for (std::size_t j = j0; j < n_ + 1; ++j) {
        double v;
        if (frozen) {
          tap.read(&buf_.uc(c, j));
          v = buf_.uc(c, j);
        } else {
          tap.read(&buf_.ae(n_ + c, j));
          v = buf_.ae(n_ + c, j);
        }
        for (std::size_t p2 = 0; p2 < nproc_; ++p2) {
          if (p2 == process) continue;
          const std::size_t o2 = p2 * h_ + c;
          const std::size_t pos2 = pos_of_orig_[o2];
          if ((pos2 < k) != frozen) continue;  // other member, other state
          tap.read(&buf_.ae(pos2, j));
          v -= buf_.ae(pos2, j);
        }
        tap.write(&buf_.ae(pos, j));
        buf_.ae(pos, j) = v;
      }
      ++stats_.errors_corrected;
    }
    ++stats_.errors_detected;
    return FtStatus::kCorrectedErrors;
  }

  /// Soft-error check: every group's active rows must sum to its checksum
  /// row over the trailing columns. Detection only (fail-stop is the
  /// kernel's recovery target); returns kUncorrectable on mismatch so the
  /// caller can fall back.
  template <MemTap Tap = NullTap>
  FtStatus verify_active(Tap tap = {}) {
    ++stats_.verifications;
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_hpl.verify");
    if (opt_.hardware_assisted && rt_ != nullptr &&
        rt_->hardware_assisted_available()) {
      PhaseTimer t(stats_.verify_seconds, clock_);
      if (!rt_->errors_pending()) return FtStatus::kOk;
      rt_->drain_located_errors();
      ++stats_.hw_notifications_used;
      ++stats_.errors_detected;
      return FtStatus::kUncorrectable;  // located but repair is fail-stop's
    }
    PhaseTimer t(stats_.verify_seconds, clock_);
    const std::size_t k = next_k_;
    const double threshold = opt_.tolerance * scale_ *
                             static_cast<double>(n_) *
                             static_cast<double>(nproc_);
    if (soft_) {
      // Fail-continue pass (FT-LU): one corrupted element per trailing
      // column is located from the global sum/weighted rows and repaired
      // before the group-checksum backstop below runs.
      const FtStatus st = soft_correct(k, threshold, tap);
      if (st == FtStatus::kUncorrectable) return st;
    }
    for (std::size_t c = 0; c < h_; ++c) {
      for (std::size_t j = k; j < n_ + 1; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < nproc_; ++p) {
          const std::size_t pos = pos_of_orig_[p * h_ + c];
          if (pos < k) continue;  // frozen rows left the running checksum
          tap.read(&buf_.ae(pos, j));
          s += buf_.ae(pos, j);
        }
        tap.read(&buf_.ae(n_ + c, j));
        if (std::abs(s - buf_.ae(n_ + c, j)) > threshold) {
          ++stats_.errors_detected;
          return FtStatus::kUncorrectable;
        }
      }
    }
    return FtStatus::kOk;
  }

  /// Back-substitution after factor(): U x = (forward-eliminated b).
  template <MemTap Tap = NullTap>
  void solve(std::span<double> x, Tap tap = {}) {
    ABFTECC_REQUIRE(x.size() == n_);
    for (std::size_t i = 0; i < n_; ++i) {
      tap.read(&buf_.ae(i, n_));
      x[i] = buf_.ae(i, n_);
    }
    linalg::trsv_upper(ConstMatrixView(buf_.ae).block(0, 0, n_, n_), x, tap);
  }

  [[nodiscard]] std::size_t position_of_original_row(std::size_t o) const {
    ABFTECC_REQUIRE(o < n_);
    return pos_of_orig_[o];
  }

 private:
  void encode(ConstMatrixView a, std::span<const double> b) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_hpl.encode");
    for (std::size_t j = 0; j < n_; ++j)
      for (std::size_t i = 0; i < n_; ++i) buf_.ae(i, j) = a(i, j);
    for (std::size_t i = 0; i < n_; ++i) buf_.ae(i, n_) = b[i];
    // Active checksum rows: C(c, :) = sum over ranks of row p*h + c.
    for (std::size_t c = 0; c < h_; ++c) {
      for (std::size_t j = 0; j < n_ + 1; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < nproc_; ++p) s += buf_.ae(p * h_ + c, j);
        buf_.ae(n_ + c, j) = s;
      }
    }
    if (soft_) {
      // Global sum / weighted checksum rows over all real rows; weights
      // are the ORIGINAL row ids + 1, so pivot swaps never perturb them.
      for (std::size_t j = 0; j < n_ + 1; ++j) {
        double sum = 0.0, wsum = 0.0;
        for (std::size_t i = 0; i < n_; ++i) {
          sum += buf_.ae(i, j);
          wsum += static_cast<double>(i + 1) * buf_.ae(i, j);
        }
        buf_.ae(n_ + h_, j) = sum;
        buf_.ae(n_ + h_ + 1, j) = wsum;
      }
    }
    buf_.uc.fill(0.0);
    pos_of_orig_.resize(n_);
    orig_of_pos_.resize(n_);
    std::iota(pos_of_orig_.begin(), pos_of_orig_.end(), std::size_t{0});
    std::iota(orig_of_pos_.begin(), orig_of_pos_.end(), std::size_t{0});
    scale_ = mean_abs(a);
    if (scale_ == 0.0) scale_ = 1.0;
  }

  /// Unblocked panel factorization of columns [k, k+b): pivot search over
  /// real rows only, full-width swaps, elimination over ALL rows below --
  /// including the checksum rows, which thereby maintain themselves.
  template <MemTap Tap>
  bool panel(std::size_t k, std::size_t b, Tap tap) {
    for (std::size_t j = k; j < k + b; ++j) {
      std::size_t p = j;
      double best = 0.0;
      for (std::size_t i = j; i < n_; ++i) {
        tap.read(&buf_.ae(i, j));
        const double v = std::abs(buf_.ae(i, j));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      if (best == 0.0) return false;
      if (p != j) {
        for (std::size_t col = 0; col < n_ + 1; ++col) {
          tap.update(&buf_.ae(j, col));
          tap.update(&buf_.ae(p, col));
          std::swap(buf_.ae(j, col), buf_.ae(p, col));
        }
        const std::size_t oj = orig_of_pos_[j], op = orig_of_pos_[p];
        std::swap(orig_of_pos_[j], orig_of_pos_[p]);
        pos_of_orig_[oj] = p;
        pos_of_orig_[op] = j;
      }
      piv_.push_back(p);
      tap.read(&buf_.ae(j, j));
      const double inv = 1.0 / buf_.ae(j, j);
      for (std::size_t i = j + 1; i < total_rows(); ++i) {
        tap.update(&buf_.ae(i, j));
        buf_.ae(i, j) *= inv;
      }
      for (std::size_t col = j + 1; col < k + b; ++col) {
        tap.read(&buf_.ae(j, col));
        const double u = buf_.ae(j, col);
        if (u == 0.0) continue;
        for (std::size_t i = j + 1; i < total_rows(); ++i) {
          tap.read(&buf_.ae(i, j));
          tap.update(&buf_.ae(i, col));
          buf_.ae(i, col) -= buf_.ae(i, j) * u;
        }
      }
    }
    return true;
  }

  /// Accumulate freshly frozen U rows into the static checksum block.
  template <MemTap Tap>
  void freeze_rows(std::size_t k, std::size_t b, Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_hpl.encode");
    for (std::size_t pos = k; pos < k + b; ++pos) {
      const std::size_t c = orig_of_pos_[pos] % h_;
      for (std::size_t j = 0; j < n_ + 1; ++j) {
        tap.read(&buf_.ae(pos, j));
        tap.update(&buf_.uc(c, j));
        buf_.uc(c, j) += buf_.ae(pos, j);
      }
    }
  }

  [[nodiscard]] std::size_t total_rows() const {
    return n_ + h_ + (soft_ ? 2 : 0);
  }

  /// FT-LU soft-error correction over the active trailing region, using
  /// the global checksum rows: residual sum locates the magnitude, the
  /// weighted/sum ratio the ORIGINAL row id (pivot-proof by construction).
  template <MemTap Tap>
  FtStatus soft_correct(std::size_t k, double threshold, Tap tap) {
    for (std::size_t j = k; j < n_ + 1; ++j) {
      double sum = 0.0, wsum = 0.0;
      for (std::size_t o = 0; o < n_; ++o) {
        const std::size_t pos = pos_of_orig_[o];
        if (pos < k) continue;  // frozen U rows left the running checksums
        tap.read(&buf_.ae(pos, j));
        sum += buf_.ae(pos, j);
        wsum += static_cast<double>(o + 1) * buf_.ae(pos, j);
      }
      tap.read(&buf_.ae(n_ + h_, j));
      tap.read(&buf_.ae(n_ + h_ + 1, j));
      const double ds = sum - buf_.ae(n_ + h_, j);
      if (std::abs(ds) <= threshold) continue;
      ++stats_.errors_detected;
      PhaseTimer t(stats_.correct_seconds, clock_);
      ScopedPhase sp(rt_, obs::EventKind::kRecover, "ft_hpl.correct");
      const double dw = wsum - buf_.ae(n_ + h_ + 1, j);
      const auto orig = static_cast<long long>(std::llround(dw / ds - 1.0));
      if (orig < 0 || orig >= static_cast<long long>(n_) ||
          std::abs(dw - ds * static_cast<double>(orig + 1)) >
              threshold * static_cast<double>(n_))
        return FtStatus::kUncorrectable;
      const std::size_t pos = pos_of_orig_[static_cast<std::size_t>(orig)];
      if (pos < k) return FtStatus::kUncorrectable;  // points at frozen row
      tap.update(&buf_.ae(pos, j));
      buf_.ae(pos, j) -= ds;
      ++stats_.errors_corrected;
    }
    return FtStatus::kOk;
  }

  std::size_t n_, nproc_, h_;
  Buffers buf_;
  FtOptions opt_;
  Runtime* rt_;
  /// FtStats time source: simulated cycles when the runtime has an Os
  /// attached, host steady_clock otherwise; run(backend) overrides it
  /// with the backend's clock.
  TickClock clock_ = rt_ != nullptr ? rt_->clock() : TickClock{};
  std::size_t nb_;
  std::size_t struct_id_ = 0;
  std::size_t next_k_ = 0;
  bool soft_ = false;
  double scale_ = 1.0;
  std::vector<std::size_t> pos_of_orig_, orig_of_pos_;
  std::vector<std::size_t> piv_;
  FtStats stats_;
};

}  // namespace abftecc::abft
