#include "abft/checksum.hpp"

namespace abftecc::abft {

double mean_abs(ConstMatrixView a) {
  if (a.rows() == 0 || a.cols() == 0) return 0.0;
  double s = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
  return s / (static_cast<double>(a.rows()) * static_cast<double>(a.cols()));
}

}  // namespace abftecc::abft
