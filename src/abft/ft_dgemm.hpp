// FT-DGEMM: fault-tolerant general matrix multiplication for fail-continue
// errors (Section 2.1, after Wu et al.).
//
// A and B are encoded with checksums,
//     A^c = [A; e^T A]          (extra column-checksum row)
//     B^r = [B, B e]            (extra row-checksum column)
// so the running product C^f = A^c B^r carries a full checksum relationship
// at every k-block boundary: each column of C sums to the checksum row and
// each row sums to the checksum column. Verification recomputes the sums
// every `verify_period` k-blocks; a corrupted element (i,j) shows up as
// matching row-i and column-j residuals and is repaired in place. In
// cooperative (hardware-assisted) mode the verification pass is replaced by
// a check of the OS-exposed error log (Section 3.2.2): when the hardware
// saw no error, no checksum is recomputed at all.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstring>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "linalg/blas.hpp"
#include "obs/lineage.hpp"
#include "recovery/manager.hpp"

namespace abftecc::abft {

class FtDgemm {
 public:
  /// Caller-provided (typically malloc_ecc-backed) buffers.
  struct Buffers {
    MatrixView ac;  ///< (m+1) x k
    MatrixView br;  ///< k x (n+1)
    MatrixView cf;  ///< (m+1) x (n+1), zeroed by encode()
  };

  FtDgemm(ConstMatrixView a, ConstMatrixView b, Buffers buf,
          FtOptions opt = {}, Runtime* runtime = nullptr)
      : a_(a), b_(b), buf_(buf), opt_(opt), rt_(runtime) {
    ABFTECC_REQUIRE(a.cols() == b.rows());
    ABFTECC_REQUIRE(buf.ac.rows() == a.rows() + 1 && buf.ac.cols() == a.cols());
    ABFTECC_REQUIRE(buf.br.rows() == b.rows() && buf.br.cols() == b.cols() + 1);
    ABFTECC_REQUIRE(buf.cf.rows() == a.rows() + 1 &&
                    buf.cf.cols() == b.cols() + 1);
    if (rt_ != nullptr)
      struct_id_ = rt_->register_structure("ft_dgemm.C", buf_.cf.data(),
                                           buf_.cf.ld() * buf_.cf.cols());
  }

  ~FtDgemm() {
    if (rt_ != nullptr) rt_->unregister_structure(struct_id_);
  }
  FtDgemm(const FtDgemm&) = delete;
  FtDgemm& operator=(const FtDgemm&) = delete;

  /// Run through a memory backend (common/backend.hpp): same algorithm,
  /// with the tap and the FtStats time source both supplied by the
  /// backend -- simulated cycles under SimBackend, steady_clock under
  /// NativeBackend.
  template <MemBackend B>
  FtStatus run(B& be) {
    clock_ = be.clock();
    return run(be.tap());
  }

  /// Full run: encode, multiply with periodic verification, final verify.
  /// With a RecoveryManager attached to the runtime the kernel walks the
  /// escalation ladder instead of surfacing kUncorrectable: per-block
  /// recompute from the plain inputs, then rollback to the last verified
  /// checkpoint (the ac/br/cf buffers are tracked for the duration of the
  /// run and committed after every clean verification), then
  /// kUnrecoverable.
  template <MemTap Tap = NullTap>
  FtStatus run(Tap tap = {}) {
    recovery::RecoveryManager* rm =
        rt_ != nullptr ? rt_->recovery() : nullptr;
    TrackedBuffers tracked;
    if (rm != nullptr) {
      rm->begin_run();
      tracked.attach(rm->store(), buf_);
    }
    encode(tap);
    if (rm != nullptr) {
      // A fault that hit the plain inputs during encode is invisible to the
      // product checksums but poisons every block. The OS escalation hook
      // raises the demand flag; restore the pristine input checkpoint the
      // caller committed before construction, then re-encode.
      if (rm->rollback_demanded()) {
        if (!rm->try_rollback() ||
            rm->rollback() != recovery::RestoreResult::kOk)
          return fail_unrecoverable(rm);
        encode(tap);
      }
      // Epoch 0: encoded-but-unmultiplied state, now covering ac/br/cf too.
      rm->commit(0);
    }
    const std::size_t kk = a_.cols();
    const std::size_t kb = linalg::kBlock;
    kdone_ = 0;
    std::size_t blocks_since_verify = 0;
    while (kdone_ < kk) {
      const std::size_t klen = std::min(kb, kk - kdone_);
      linalg::gemm(
          1.0, ConstMatrixView(buf_.ac.block(0, kdone_, buf_.ac.rows(), klen)),
          ConstMatrixView(buf_.br.block(kdone_, 0, klen, buf_.br.cols())), 1.0,
          buf_.cf, tap);
      kdone_ += klen;
      if (++blocks_since_verify >= opt_.verify_period || kdone_ == kk) {
        blocks_since_verify = 0;
        const FtStatus st = checked_verify(rm, tap);
        if (st == FtStatus::kUncorrectable || st == FtStatus::kUnrecoverable)
          return st;
      }
    }
    return stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                       : FtStatus::kOk;
  }

  /// One verification pass. In hardware-assisted mode this only consults
  /// the exposed error log unless a notification is pending.
  template <MemTap Tap = NullTap>
  FtStatus verify_and_correct(Tap tap = {}) {
    ++stats_.verifications;
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_dgemm.verify");
    if (opt_.hardware_assisted && rt_ != nullptr &&
        rt_->hardware_assisted_available()) {
      PhaseTimer t(stats_.verify_seconds, clock_);
      if (!rt_->errors_pending()) return FtStatus::kOk;
      return correct_from_notifications(tap);
    }
    PhaseTimer t(stats_.verify_seconds, clock_);
    return full_verify(tap);
  }

  /// The m x n payload block of the running product.
  [[nodiscard]] ConstMatrixView result() const {
    return ConstMatrixView(buf_.cf).block(0, 0, a_.rows(), b_.cols());
  }

  [[nodiscard]] const FtStats& stats() const { return stats_; }
  [[nodiscard]] const Buffers& buffers() const { return buf_; }

 private:
  /// RAII registration of the kernel buffers in the checkpoint store for
  /// the duration of one run().
  struct TrackedBuffers {
    recovery::CheckpointStore* store = nullptr;
    recovery::CheckpointStore::RangeId ids[3] = {};

    void attach(recovery::CheckpointStore& s, Buffers& b) {
      store = &s;
      ids[0] = s.track("ft_dgemm.ac", b.ac.data(),
                       b.ac.ld() * b.ac.cols() * sizeof(double));
      ids[1] = s.track("ft_dgemm.br", b.br.data(),
                       b.br.ld() * b.br.cols() * sizeof(double));
      ids[2] = s.track("ft_dgemm.cf", b.cf.data(),
                       b.cf.ld() * b.cf.cols() * sizeof(double));
    }
    ~TrackedBuffers() {
      if (store == nullptr) return;
      for (const auto id : ids) store->untrack(id);
    }
    TrackedBuffers() = default;
    TrackedBuffers(const TrackedBuffers&) = delete;
    TrackedBuffers& operator=(const TrackedBuffers&) = delete;
  };

  /// One ladder episode around a verification point. Loops until the state
  /// verifies clean or a tier budget runs out; every iteration either
  /// terminates or consumes recompute/rollback budget, so it is bounded.
  template <MemTap Tap>
  FtStatus checked_verify(recovery::RecoveryManager* rm, Tap tap) {
    bool recompute_pending = false;
    for (;;) {
      const FtStatus st = verify_and_correct(tap);
      if (rm == nullptr) return st;
      // An OS-demanded rollback overrides a clean checksum verdict: the
      // corruption sits outside ABFT's checksum space (tier 3 directly).
      if (rm->rollback_demanded()) {
        if (!attempt_rollback(rm)) return fail_unrecoverable(rm);
        recompute_pending = false;
        continue;
      }
      if (st != FtStatus::kUncorrectable) {
        if (recompute_pending) rm->recompute_succeeded();
        if (st == FtStatus::kOk || st == FtStatus::kCorrectedErrors)
          rm->checkpoint_tick(kdone_);
        return st;
      }
      // tier 2: regenerate the implicated rows/columns from the inputs.
      if (rm->try_recompute()) {
        recompute_from_inputs(tap);
        recompute_pending = true;
        continue;
      }
      // tier 3: rewind to the last verified checkpoint.
      if (attempt_rollback(rm)) {
        recompute_pending = false;
        continue;
      }
      return fail_unrecoverable(rm);  // tier 4
    }
  }

  /// Verified restore; on success rewinds the k-progress to the restored
  /// epoch so run() resumes from there.
  bool attempt_rollback(recovery::RecoveryManager* rm) {
    if (!rm->try_rollback()) return false;
    if (rm->rollback() != recovery::RestoreResult::kOk) return false;
    kdone_ = static_cast<std::size_t>(rm->store().epoch());
    return true;
  }

  FtStatus fail_unrecoverable(recovery::RecoveryManager* rm) {
    rm->mark_unrecoverable();
    return FtStatus::kUnrecoverable;
  }

  /// Lineage: record an abft_corrected stage on the fault(s) whose line
  /// holds the element just repaired. `residual` (the checksum delta the
  /// correction removed) travels as its raw IEEE-754 bits in a0.
  void note_correction(const void* element, double residual) {
    auto& lineage = obs::default_lineage();
    if (!lineage.enabled() || rt_ == nullptr || rt_->os() == nullptr) return;
    const auto phys = rt_->os()->virt_to_phys(element);
    if (!phys.has_value()) return;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &residual, sizeof(bits));
    lineage.line_event(*phys, obs::LineageStage::kAbftCorrected,
                       rt_->os()->system().stats().cpu_cycles, bits, 0,
                       "FT-DGEMM");
  }

  /// Tier 2: recompute every payload element of the rows/columns the last
  /// failed verification implicated, straight from the plain inputs
  /// (c(i,j) = sum_{k<kdone_} a(i,k) b(k,j)), then refresh the checksum
  /// entries those rows/columns feed. Heals corruption in ac/br as well:
  /// the recomputed values bypass the encoded copies entirely.
  template <MemTap Tap>
  void recompute_from_inputs(Tap tap) {
    PhaseTimer t(stats_.correct_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kRecover, "ft_dgemm.recompute",
                      obs::Phase::kRecompute);
    const std::size_t m = a_.rows(), n = b_.cols();
    std::vector<char> row_done(m, 0);
    for (const std::size_t i : last_bad_rows_) {
      row_done[i] = 1;
      for (std::size_t j = 0; j < n; ++j) recompute_cell(i, j, tap);
      refresh_checksum_entry(i, n, tap);
    }
    for (const std::size_t j : last_bad_cols_) {
      for (std::size_t i = 0; i < m; ++i)
        if (row_done[i] == 0) recompute_cell(i, j, tap);
      refresh_checksum_entry(m, j, tap);
    }
    // Column sums changed wherever a bad row crossed a clean column.
    for (const std::size_t i : last_bad_rows_) {
      (void)i;
      for (std::size_t j = 0; j < n; ++j) refresh_checksum_entry(m, j, tap);
      break;  // one full refresh covers every column
    }
  }

  template <MemTap Tap>
  void recompute_cell(std::size_t i, std::size_t j, Tap tap) {
    double s = 0.0;
    for (std::size_t k = 0; k < kdone_; ++k) {
      tap.read(&a_(i, k));
      tap.read(&b_(k, j));
      s += a_(i, k) * b_(k, j);
    }
    tap.write(&buf_.cf(i, j));
    buf_.cf(i, j) = s;
  }

  template <MemTap Tap>
  void encode(Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_dgemm.encode");
    const std::size_t m = a_.rows(), n = b_.cols(), kk = a_.cols();
    // A^c: copy A and append the column-sum row.
    for (std::size_t j = 0; j < kk; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        tap.read(&a_(i, j));
        tap.write(&buf_.ac(i, j));
        buf_.ac(i, j) = a_(i, j);
        s += a_(i, j);
      }
      tap.write(&buf_.ac(m, j));
      buf_.ac(m, j) = s;
    }
    // B^r: copy B and append the row-sum column.
    for (std::size_t i = 0; i < kk; ++i) {
      tap.write(&buf_.br(i, n));
      buf_.br(i, n) = 0.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < kk; ++i) {
        tap.read(&b_(i, j));
        tap.write(&buf_.br(i, j));
        buf_.br(i, j) = b_(i, j);
        tap.update(&buf_.br(i, n));
        buf_.br(i, n) += b_(i, j);
      }
    }
    buf_.cf.fill(0.0);
    scale_ = mean_abs(a_) * mean_abs(b_) * static_cast<double>(kk);
    if (scale_ == 0.0) scale_ = 1.0;
  }

  /// Repair elements named by the OS error log using one column scan each.
  template <MemTap Tap>
  FtStatus correct_from_notifications(Tap tap) {
    ScopedPhase phase(rt_, obs::EventKind::kRecover, "ft_dgemm.recover");
    const std::size_t m = a_.rows(), n = b_.cols();
    for (const auto& e : rt_->drain_located_errors()) {
      if (e.structure_id != struct_id_) continue;
      ++stats_.hw_notifications_used;
      ++stats_.errors_detected;
      const std::size_t i = e.element_index % buf_.cf.ld();
      const std::size_t j = e.element_index / buf_.cf.ld();
      if (i > m || j > n) continue;
      PhaseTimer t(stats_.correct_seconds, clock_);
      if (i == m || j == n) {
        // Corrupted checksum entry: recompute it from the payload.
        refresh_checksum_entry(i, j, tap);
        ++stats_.errors_corrected;
        note_correction(&buf_.cf(i, j), 0.0);
        continue;
      }
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        tap.read(&buf_.cf(r, j));
        s += buf_.cf(r, j);
      }
      tap.read(&buf_.cf(m, j));
      const double delta = s - buf_.cf(m, j);
      tap.update(&buf_.cf(i, j));
      buf_.cf(i, j) -= delta;
      ++stats_.errors_corrected;
      note_correction(&buf_.cf(i, j), delta);
    }
    return FtStatus::kOk;
  }

  template <MemTap Tap>
  void refresh_checksum_entry(std::size_t i, std::size_t j, Tap tap) {
    const std::size_t m = a_.rows(), n = b_.cols();
    if (i == m && j == n) {
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        tap.read(&buf_.cf(r, n));
        s += buf_.cf(r, n);
      }
      tap.write(&buf_.cf(m, n));
      buf_.cf(m, n) = s;
    } else if (i == m) {
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        tap.read(&buf_.cf(r, j));
        s += buf_.cf(r, j);
      }
      tap.write(&buf_.cf(m, j));
      buf_.cf(m, j) = s;
    } else {
      double s = 0.0;
      for (std::size_t c = 0; c < n; ++c) {
        tap.read(&buf_.cf(i, c));
        s += buf_.cf(i, c);
      }
      tap.write(&buf_.cf(i, n));
      buf_.cf(i, n) = s;
    }
  }

  /// Full checksum verification and correction over C^f.
  template <MemTap Tap>
  FtStatus full_verify(Tap tap) {
    const std::size_t m = a_.rows(), n = b_.cols();
    const double threshold =
        opt_.tolerance * scale_ * std::sqrt(static_cast<double>(m));

    std::vector<double> colres(n, 0.0), rowres(m, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        tap.read(&buf_.cf(i, j));
        s += buf_.cf(i, j);
      }
      tap.read(&buf_.cf(m, j));
      colres[j] = s - buf_.cf(m, j);
    }
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        tap.read(&buf_.cf(i, j));
        s += buf_.cf(i, j);
      }
      tap.read(&buf_.cf(i, n));
      rowres[i] = s - buf_.cf(i, n);
    }

    std::vector<std::size_t> bad_cols, bad_rows;
    for (std::size_t j = 0; j < n; ++j)
      if (std::abs(colres[j]) > threshold) bad_cols.push_back(j);
    for (std::size_t i = 0; i < m; ++i)
      if (std::abs(rowres[i]) > threshold) bad_rows.push_back(i);
    // Remember the implicated coordinates: a kUncorrectable verdict hands
    // them to the tier-2 recompute.
    last_bad_rows_ = bad_rows;
    last_bad_cols_ = bad_cols;
    if (bad_cols.empty() && bad_rows.empty()) return FtStatus::kOk;

    PhaseTimer t(stats_.correct_seconds, clock_);
    ScopedPhase recover(rt_, obs::EventKind::kRecover, "ft_dgemm.recover");
    stats_.errors_detected += std::max(bad_cols.size(), bad_rows.size());

    // Case A: one bad row, k bad columns -> all errors in that row.
    if (bad_rows.size() == 1 && !bad_cols.empty()) {
      const std::size_t i = bad_rows.front();
      for (const std::size_t j : bad_cols) {
        tap.update(&buf_.cf(i, j));
        buf_.cf(i, j) -= colres[j];
        ++stats_.errors_corrected;
        note_correction(&buf_.cf(i, j), colres[j]);
      }
      return FtStatus::kCorrectedErrors;
    }
    // Case B: one bad column, k bad rows -> all errors in that column.
    if (bad_cols.size() == 1 && !bad_rows.empty()) {
      const std::size_t j = bad_cols.front();
      for (const std::size_t i : bad_rows) {
        tap.update(&buf_.cf(i, j));
        buf_.cf(i, j) -= rowres[i];
        ++stats_.errors_corrected;
        note_correction(&buf_.cf(i, j), rowres[i]);
      }
      return FtStatus::kCorrectedErrors;
    }
    // Case C: residual magnitudes pair rows with columns uniquely.
    if (bad_rows.size() == bad_cols.size() && !bad_rows.empty()) {
      std::vector<bool> used(bad_rows.size(), false);
      for (const std::size_t j : bad_cols) {
        std::size_t match = bad_rows.size();
        for (std::size_t r = 0; r < bad_rows.size(); ++r) {
          if (used[r]) continue;
          if (std::abs(rowres[bad_rows[r]] - colres[j]) <= threshold) {
            if (match != bad_rows.size()) return FtStatus::kUncorrectable;
            match = r;
          }
        }
        if (match == bad_rows.size()) return FtStatus::kUncorrectable;
        used[match] = true;
        tap.update(&buf_.cf(bad_rows[match], j));
        buf_.cf(bad_rows[match], j) -= colres[j];
        ++stats_.errors_corrected;
        note_correction(&buf_.cf(bad_rows[match], j), colres[j]);
      }
      return FtStatus::kCorrectedErrors;
    }
    // Case D: a bad column with no bad row (or vice versa) means the
    // checksum entry itself is corrupted; refresh it.
    if (bad_rows.empty()) {
      for (const std::size_t j : bad_cols) {
        refresh_checksum_entry(m, j, tap);
        ++stats_.errors_corrected;
        note_correction(&buf_.cf(m, j), colres[j]);
      }
      return FtStatus::kCorrectedErrors;
    }
    if (bad_cols.empty()) {
      for (const std::size_t i : bad_rows) {
        refresh_checksum_entry(i, n, tap);
        ++stats_.errors_corrected;
        note_correction(&buf_.cf(i, n), rowres[i]);
      }
      return FtStatus::kCorrectedErrors;
    }
    return FtStatus::kUncorrectable;
  }

  ConstMatrixView a_, b_;
  Buffers buf_;
  FtOptions opt_;
  Runtime* rt_;
  /// FtStats time source: simulated cycles when the runtime has an Os
  /// attached, host steady_clock otherwise; run(backend) overrides it
  /// with the backend's clock.
  TickClock clock_ = rt_ != nullptr ? rt_->clock() : TickClock{};
  std::size_t struct_id_ = 0;
  double scale_ = 1.0;
  FtStats stats_;
  std::size_t kdone_ = 0;  ///< k columns accumulated into cf so far
  std::vector<std::size_t> last_bad_rows_, last_bad_cols_;
};

}  // namespace abftecc::abft
