// FT-DGEMM: fault-tolerant general matrix multiplication for fail-continue
// errors (Section 2.1, after Wu et al.).
//
// A and B are encoded with checksums,
//     A^c = [A; e^T A]          (extra column-checksum row)
//     B^r = [B, B e]            (extra row-checksum column)
// so the running product C^f = A^c B^r carries a full checksum relationship
// at every k-block boundary: each column of C sums to the checksum row and
// each row sums to the checksum column. Verification recomputes the sums
// every `verify_period` k-blocks; a corrupted element (i,j) shows up as
// matching row-i and column-j residuals and is repaired in place. In
// cooperative (hardware-assisted) mode the verification pass is replaced by
// a check of the OS-exposed error log (Section 3.2.2): when the hardware
// saw no error, no checksum is recomputed at all.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "linalg/blas.hpp"

namespace abftecc::abft {

class FtDgemm {
 public:
  /// Caller-provided (typically malloc_ecc-backed) buffers.
  struct Buffers {
    MatrixView ac;  ///< (m+1) x k
    MatrixView br;  ///< k x (n+1)
    MatrixView cf;  ///< (m+1) x (n+1), zeroed by encode()
  };

  FtDgemm(ConstMatrixView a, ConstMatrixView b, Buffers buf,
          FtOptions opt = {}, Runtime* runtime = nullptr)
      : a_(a), b_(b), buf_(buf), opt_(opt), rt_(runtime) {
    ABFTECC_REQUIRE(a.cols() == b.rows());
    ABFTECC_REQUIRE(buf.ac.rows() == a.rows() + 1 && buf.ac.cols() == a.cols());
    ABFTECC_REQUIRE(buf.br.rows() == b.rows() && buf.br.cols() == b.cols() + 1);
    ABFTECC_REQUIRE(buf.cf.rows() == a.rows() + 1 &&
                    buf.cf.cols() == b.cols() + 1);
    if (rt_ != nullptr)
      struct_id_ = rt_->register_structure("ft_dgemm.C", buf_.cf.data(),
                                           buf_.cf.ld() * buf_.cf.cols());
  }

  ~FtDgemm() {
    if (rt_ != nullptr) rt_->unregister_structure(struct_id_);
  }
  FtDgemm(const FtDgemm&) = delete;
  FtDgemm& operator=(const FtDgemm&) = delete;

  /// Full run: encode, multiply with periodic verification, final verify.
  template <MemTap Tap = NullTap>
  FtStatus run(Tap tap = {}) {
    encode(tap);
    const std::size_t kk = a_.cols();
    const std::size_t kb = linalg::kBlock;
    std::size_t blocks_since_verify = 0;
    for (std::size_t k0 = 0; k0 < kk; k0 += kb) {
      const std::size_t klen = std::min(kb, kk - k0);
      linalg::gemm(1.0,
                   ConstMatrixView(buf_.ac.block(0, k0, buf_.ac.rows(), klen)),
                   ConstMatrixView(buf_.br.block(k0, 0, klen, buf_.br.cols())),
                   1.0, buf_.cf, tap);
      if (++blocks_since_verify >= opt_.verify_period) {
        blocks_since_verify = 0;
        const FtStatus st = verify_and_correct(tap);
        if (st == FtStatus::kUncorrectable) return st;
      }
    }
    const FtStatus st = verify_and_correct(tap);
    if (st == FtStatus::kUncorrectable) return st;
    return stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                       : FtStatus::kOk;
  }

  /// One verification pass. In hardware-assisted mode this only consults
  /// the exposed error log unless a notification is pending.
  template <MemTap Tap = NullTap>
  FtStatus verify_and_correct(Tap tap = {}) {
    ++stats_.verifications;
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_dgemm.verify");
    if (opt_.hardware_assisted && rt_ != nullptr &&
        rt_->hardware_assisted_available()) {
      PhaseTimer t(stats_.verify_seconds);
      if (!rt_->errors_pending()) return FtStatus::kOk;
      return correct_from_notifications(tap);
    }
    PhaseTimer t(stats_.verify_seconds);
    return full_verify(tap);
  }

  /// The m x n payload block of the running product.
  [[nodiscard]] ConstMatrixView result() const {
    return ConstMatrixView(buf_.cf).block(0, 0, a_.rows(), b_.cols());
  }

  [[nodiscard]] const FtStats& stats() const { return stats_; }
  [[nodiscard]] const Buffers& buffers() const { return buf_; }

 private:
  template <MemTap Tap>
  void encode(Tap tap) {
    PhaseTimer t(stats_.encode_seconds);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_dgemm.encode");
    const std::size_t m = a_.rows(), n = b_.cols(), kk = a_.cols();
    // A^c: copy A and append the column-sum row.
    for (std::size_t j = 0; j < kk; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        tap.read(&a_(i, j));
        tap.write(&buf_.ac(i, j));
        buf_.ac(i, j) = a_(i, j);
        s += a_(i, j);
      }
      tap.write(&buf_.ac(m, j));
      buf_.ac(m, j) = s;
    }
    // B^r: copy B and append the row-sum column.
    for (std::size_t i = 0; i < kk; ++i) {
      tap.write(&buf_.br(i, n));
      buf_.br(i, n) = 0.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < kk; ++i) {
        tap.read(&b_(i, j));
        tap.write(&buf_.br(i, j));
        buf_.br(i, j) = b_(i, j);
        tap.update(&buf_.br(i, n));
        buf_.br(i, n) += b_(i, j);
      }
    }
    buf_.cf.fill(0.0);
    scale_ = mean_abs(a_) * mean_abs(b_) * static_cast<double>(kk);
    if (scale_ == 0.0) scale_ = 1.0;
  }

  /// Repair elements named by the OS error log using one column scan each.
  template <MemTap Tap>
  FtStatus correct_from_notifications(Tap tap) {
    ScopedPhase phase(rt_, obs::EventKind::kRecover, "ft_dgemm.recover");
    const std::size_t m = a_.rows(), n = b_.cols();
    for (const auto& e : rt_->drain_located_errors()) {
      if (e.structure_id != struct_id_) continue;
      ++stats_.hw_notifications_used;
      ++stats_.errors_detected;
      const std::size_t i = e.element_index % buf_.cf.ld();
      const std::size_t j = e.element_index / buf_.cf.ld();
      if (i > m || j > n) continue;
      PhaseTimer t(stats_.correct_seconds);
      if (i == m || j == n) {
        // Corrupted checksum entry: recompute it from the payload.
        refresh_checksum_entry(i, j, tap);
        ++stats_.errors_corrected;
        continue;
      }
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        tap.read(&buf_.cf(r, j));
        s += buf_.cf(r, j);
      }
      tap.read(&buf_.cf(m, j));
      const double delta = s - buf_.cf(m, j);
      tap.update(&buf_.cf(i, j));
      buf_.cf(i, j) -= delta;
      ++stats_.errors_corrected;
    }
    return FtStatus::kOk;
  }

  template <MemTap Tap>
  void refresh_checksum_entry(std::size_t i, std::size_t j, Tap tap) {
    const std::size_t m = a_.rows(), n = b_.cols();
    if (i == m && j == n) {
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        tap.read(&buf_.cf(r, n));
        s += buf_.cf(r, n);
      }
      tap.write(&buf_.cf(m, n));
      buf_.cf(m, n) = s;
    } else if (i == m) {
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        tap.read(&buf_.cf(r, j));
        s += buf_.cf(r, j);
      }
      tap.write(&buf_.cf(m, j));
      buf_.cf(m, j) = s;
    } else {
      double s = 0.0;
      for (std::size_t c = 0; c < n; ++c) {
        tap.read(&buf_.cf(i, c));
        s += buf_.cf(i, c);
      }
      tap.write(&buf_.cf(i, n));
      buf_.cf(i, n) = s;
    }
  }

  /// Full checksum verification and correction over C^f.
  template <MemTap Tap>
  FtStatus full_verify(Tap tap) {
    const std::size_t m = a_.rows(), n = b_.cols();
    const double threshold =
        opt_.tolerance * scale_ * std::sqrt(static_cast<double>(m));

    std::vector<double> colres(n, 0.0), rowres(m, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        tap.read(&buf_.cf(i, j));
        s += buf_.cf(i, j);
      }
      tap.read(&buf_.cf(m, j));
      colres[j] = s - buf_.cf(m, j);
    }
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        tap.read(&buf_.cf(i, j));
        s += buf_.cf(i, j);
      }
      tap.read(&buf_.cf(i, n));
      rowres[i] = s - buf_.cf(i, n);
    }

    std::vector<std::size_t> bad_cols, bad_rows;
    for (std::size_t j = 0; j < n; ++j)
      if (std::abs(colres[j]) > threshold) bad_cols.push_back(j);
    for (std::size_t i = 0; i < m; ++i)
      if (std::abs(rowres[i]) > threshold) bad_rows.push_back(i);
    if (bad_cols.empty() && bad_rows.empty()) return FtStatus::kOk;

    PhaseTimer t(stats_.correct_seconds);
    ScopedPhase recover(rt_, obs::EventKind::kRecover, "ft_dgemm.recover");
    stats_.errors_detected += std::max(bad_cols.size(), bad_rows.size());

    // Case A: one bad row, k bad columns -> all errors in that row.
    if (bad_rows.size() == 1 && !bad_cols.empty()) {
      const std::size_t i = bad_rows.front();
      for (const std::size_t j : bad_cols) {
        tap.update(&buf_.cf(i, j));
        buf_.cf(i, j) -= colres[j];
        ++stats_.errors_corrected;
      }
      return FtStatus::kCorrectedErrors;
    }
    // Case B: one bad column, k bad rows -> all errors in that column.
    if (bad_cols.size() == 1 && !bad_rows.empty()) {
      const std::size_t j = bad_cols.front();
      for (const std::size_t i : bad_rows) {
        tap.update(&buf_.cf(i, j));
        buf_.cf(i, j) -= rowres[i];
        ++stats_.errors_corrected;
      }
      return FtStatus::kCorrectedErrors;
    }
    // Case C: residual magnitudes pair rows with columns uniquely.
    if (bad_rows.size() == bad_cols.size() && !bad_rows.empty()) {
      std::vector<bool> used(bad_rows.size(), false);
      for (const std::size_t j : bad_cols) {
        std::size_t match = bad_rows.size();
        for (std::size_t r = 0; r < bad_rows.size(); ++r) {
          if (used[r]) continue;
          if (std::abs(rowres[bad_rows[r]] - colres[j]) <= threshold) {
            if (match != bad_rows.size()) return FtStatus::kUncorrectable;
            match = r;
          }
        }
        if (match == bad_rows.size()) return FtStatus::kUncorrectable;
        used[match] = true;
        tap.update(&buf_.cf(bad_rows[match], j));
        buf_.cf(bad_rows[match], j) -= colres[j];
        ++stats_.errors_corrected;
      }
      return FtStatus::kCorrectedErrors;
    }
    // Case D: a bad column with no bad row (or vice versa) means the
    // checksum entry itself is corrupted; refresh it.
    if (bad_rows.empty()) {
      for (const std::size_t j : bad_cols) {
        refresh_checksum_entry(m, j, tap);
        ++stats_.errors_corrected;
      }
      return FtStatus::kCorrectedErrors;
    }
    if (bad_cols.empty()) {
      for (const std::size_t i : bad_rows) {
        refresh_checksum_entry(i, n, tap);
        ++stats_.errors_corrected;
      }
      return FtStatus::kCorrectedErrors;
    }
    return FtStatus::kUncorrectable;
  }

  ConstMatrixView a_, b_;
  Buffers buf_;
  FtOptions opt_;
  Runtime* rt_;
  std::size_t struct_id_ = 0;
  double scale_ = 1.0;
  FtStats stats_;
};

}  // namespace abftecc::abft
