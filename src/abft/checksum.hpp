// Checksum primitives for the checksum-based ABFT kernels.
//
// Two checksum vectors are used throughout: the all-ones vector e (sum
// checksum, detects an error and gives its magnitude) and the weight vector
// w with w_i = i+1 (weighted checksum, locates the row). Together they
// detect and correct one error per column per verification, across any
// number of columns simultaneously -- the "sophisticated checksum vectors"
// capability of Section 2.1.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/tap.hpp"

namespace abftecc::abft {

/// Residual classification for one column (or row) checksum test.
struct ColumnError {
  std::size_t column = 0;
  std::size_t row = 0;       ///< located via the weighted checksum
  double magnitude = 0.0;    ///< value to subtract from the element
  bool locatable = false;    ///< weighted/sum ratio resolved to a valid row
};

/// Compute sum and weighted checksums of each column of `a` into `sum` and
/// `weighted` (both length a.cols()). Weights are w_i = i + 1 + row_offset.
template <MemTap Tap = NullTap>
void column_checksums(ConstMatrixView a, std::span<double> sum,
                      std::span<double> weighted, std::size_t row_offset = 0,
                      Tap tap = {}) {
  ABFTECC_REQUIRE(sum.size() == a.cols() && weighted.size() == a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0, w = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      tap.read(&a(i, j));
      s += a(i, j);
      w += static_cast<double>(i + 1 + row_offset) * a(i, j);
    }
    tap.write(&sum[j]);
    tap.write(&weighted[j]);
    sum[j] = s;
    weighted[j] = w;
  }
}

/// Compare freshly computed column checksums against maintained ones and
/// locate single-per-column errors. `scale` is a magnitude reference for
/// the relative tolerance (e.g. a norm of the matrix).
template <MemTap Tap = NullTap>
std::vector<ColumnError> verify_columns(ConstMatrixView a,
                                        std::span<const double> sum,
                                        std::span<const double> weighted,
                                        double tolerance, double scale,
                                        std::size_t row_offset = 0,
                                        Tap tap = {}) {
  ABFTECC_REQUIRE(sum.size() == a.cols() && weighted.size() == a.cols());
  std::vector<ColumnError> errors;
  const double threshold =
      tolerance * (scale > 0.0 ? scale : 1.0) *
      static_cast<double>(a.rows());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0, w = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      tap.read(&a(i, j));
      s += a(i, j);
      w += static_cast<double>(i + 1 + row_offset) * a(i, j);
    }
    tap.read(&sum[j]);
    tap.read(&weighted[j]);
    const double ds = s - sum[j];
    const double dw = w - weighted[j];
    if (std::abs(ds) <= threshold) continue;
    ColumnError e;
    e.column = j;
    e.magnitude = ds;
    // Row location: dw/ds = i + 1 + row_offset for a single error in row i.
    // A genuine single error also satisfies dw == ds * (i+1+offset) up to
    // rounding; multi-error coincidences fail that consistency test.
    const double row_f = dw / ds - 1.0 - static_cast<double>(row_offset);
    const auto row = static_cast<long long>(std::llround(row_f));
    if (row >= 0 && row < static_cast<long long>(a.rows()) &&
        std::abs(dw - ds * (static_cast<double>(row) + 1.0 +
                            static_cast<double>(row_offset))) <=
            threshold * static_cast<double>(a.rows())) {
      e.row = static_cast<std::size_t>(row);
      e.locatable = true;
    }
    errors.push_back(e);
  }
  return errors;
}

/// Norm-like scale of a view: mean absolute value (cheap, robust reference
/// for relative thresholds).
double mean_abs(ConstMatrixView a);

}  // namespace abftecc::abft
