// ABFT runtime: the software half of the cooperation (Section 3.2).
//
// The runtime records which application structures are ABFT-protected
// (their virtual address ranges, registered at allocation time), and turns
// the OS's exposed error log into (structure, element) coordinates for the
// kernels' simplified verification. Without an Os attached it degrades to
// pure software ABFT (the traditional, uncooperative deployment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/backend.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "os/os.hpp"

namespace abftecc::recovery {
class RecoveryManager;
}  // namespace abftecc::recovery

namespace abftecc::abft {

/// An error located to one element of a registered structure.
struct LocatedError {
  std::size_t structure_id = 0;
  std::string structure_name;
  std::size_t element_index = 0;  ///< index into the double array
};

class Runtime {
 public:
  /// `os` may be null: software-only ABFT with no hardware notification.
  explicit Runtime(os::Os* os = nullptr) : os_(os) {}

  [[nodiscard]] bool hardware_assisted_available() const {
    return os_ != nullptr;
  }

  /// Register a protected structure (called at the ABFT initial phase,
  /// after malloc_ecc). Returns the structure id.
  std::size_t register_structure(std::string name, const double* base,
                                 std::size_t elements);

  void unregister_structure(std::size_t id);

  /// Drain the OS error log and map each exposed virtual address onto a
  /// registered structure element. Errors outside registered structures
  /// are returned with structure_id == npos (the caller decides; in the
  /// full system the OS would already have panicked for those).
  std::vector<LocatedError> drain_located_errors();

  /// True if the OS currently has exposed errors pending (cheap check the
  /// kernels use to skip full verification, Section 3.2.2).
  [[nodiscard]] bool errors_pending() const {
    return os_ != nullptr && os_->has_exposed_errors();
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] os::Os* os() { return os_; }

  /// The platform's native time source (common/backend.hpp): simulated
  /// cycles when an Os -- and hence a MemorySystem -- is attached, host
  /// steady_clock otherwise. Kernels seed their FtStats phase timers from
  /// this so simulated-mode attribution is deterministic.
  [[nodiscard]] TickClock clock() const {
    return os_ != nullptr ? os_->system().cycle_clock() : TickClock{};
  }

  /// Attach the recovery escalation ladder (tiers 2-4). Kernels consult
  /// recovery() when plain ABFT correction fails; null (the default) keeps
  /// the historical behavior of surfacing kUncorrectable immediately.
  void set_recovery(recovery::RecoveryManager* rm) { recovery_ = rm; }
  [[nodiscard]] recovery::RecoveryManager* recovery() { return recovery_; }

 private:
  struct Structure {
    std::string name;
    const double* base = nullptr;
    std::size_t elements = 0;
    bool live = false;
  };

  os::Os* os_;
  recovery::RecoveryManager* recovery_ = nullptr;
  std::vector<Structure> structures_;
};

/// Profiler phase a kernel trace marker attributes to by default.
[[nodiscard]] constexpr obs::Phase phase_of(obs::EventKind k) {
  switch (k) {
    case obs::EventKind::kEncode: return obs::Phase::kEncode;
    case obs::EventKind::kVerify: return obs::Phase::kVerify;
    case obs::EventKind::kRecover: return obs::Phase::kCorrect;
    default: return obs::Phase::kCompute;
  }
}

/// Scoped marker for a kernel phase (verify / recover / encode): emits one
/// Chrome complete event spanning the phase in simulated cycles, and
/// enters the matching profiler phase (phase_of(kind), overridable for
/// sites like recompute that trace as kRecover but attribute separately).
/// With no attached Os (pure-software ABFT) there is no cycle clock and the
/// trace phase is recorded at ts 0 with zero duration; with both the tracer
/// and the profiler disabled (the default) construction and destruction are
/// branch-only.
class ScopedPhase {
 public:
  ScopedPhase(Runtime* rt, obs::EventKind kind, const char* tag)
      : ScopedPhase(rt, kind, tag, phase_of(kind)) {}

  ScopedPhase(Runtime* rt, obs::EventKind kind, const char* tag,
              obs::Phase phase)
      : rt_(rt),
        kind_(kind),
        tag_(tag),
        start_(obs::default_tracer().enabled() ? now() : 0),
        profiled_(phase) {}
  ~ScopedPhase() {
    auto& tracer = obs::default_tracer();
    if (!tracer.enabled()) return;
    const std::uint64_t end = now();
    tracer.complete(kind_, tag_, start_, end - start_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  [[nodiscard]] std::uint64_t now() const {
    return rt_ != nullptr && rt_->os() != nullptr
               ? rt_->os()->system().stats().cpu_cycles
               : 0;
  }

  Runtime* rt_;
  obs::EventKind kind_;
  const char* tag_;
  std::uint64_t start_;
  obs::PhaseScope profiled_;
};

}  // namespace abftecc::abft
