// FT-QR: fault-tolerant Householder QR factorization for fail-continue
// errors (the QR member of the ABFT family the paper cites [14]).
//
// QR is the cleanest checksum case of the dense factorizations: the
// algorithm applies ONLY left multiplications (orthogonal reflectors), and
// left multiplications commute with appending checksum COLUMNS --
//     Q^T [A, A e, A w] = [Q^T A, (Q^T A) e, (Q^T A) w],
// so the two appended columns (row sums and column-index-weighted row
// sums) remain exact checksums of every mathematical row at every step,
// with no maintenance code at all. The stored format splits each row into
// the live part (R entries for frozen rows, trailing entries otherwise)
// and the Householder-vector storage below the diagonal, which is outside
// the transformed matrix and therefore outside the invariant; verification
// sums the live range only. A single corrupted element per row is located
// from the (sum, weighted) residual pair and repaired in place between
// panels.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "linalg/qr.hpp"
#include "recovery/manager.hpp"

namespace abftecc::abft {

class FtQr {
 public:
  struct Buffers {
    MatrixView aw;           ///< m x (n+2): [A | A e | A w], factored in place
    std::span<double> tau;   ///< n reflector coefficients
  };

  /// `a` must stay valid for the kernel's lifetime: it is the recompute
  /// source of the recovery ladder's tier 2.
  FtQr(ConstMatrixView a, Buffers buf, FtOptions opt = {},
       Runtime* runtime = nullptr, std::size_t block = linalg::kBlock)
      : a_(a), m_(a.rows()), n_(a.cols()), buf_(buf), opt_(opt), rt_(runtime),
        nb_(block) {
    ABFTECC_REQUIRE(m_ >= n_);
    ABFTECC_REQUIRE(buf.aw.rows() == m_ && buf.aw.cols() == n_ + 2);
    ABFTECC_REQUIRE(buf.tau.size() == n_);
    encode(a);
    if (rt_ != nullptr)
      struct_id_ = rt_->register_structure("ft_qr.Aw", buf_.aw.data(),
                                           buf_.aw.ld() * buf_.aw.cols());
    if (recovery::RecoveryManager* rm = recovery_manager(); rm != nullptr) {
      rm->begin_run();
      track_ids_[0] = rm->store().track(
          "ft_qr.aw", buf_.aw.data(),
          buf_.aw.ld() * buf_.aw.cols() * sizeof(double));
      track_ids_[1] = rm->store().track("ft_qr.tau", buf_.tau.data(),
                                        buf_.tau.size() * sizeof(double));
      tracked_ = true;
      rm->commit(0);  // epoch 0: encoded, nothing factored yet
    }
  }

  ~FtQr() {
    if (tracked_) {
      recovery::CheckpointStore& s = recovery_manager()->store();
      s.untrack(track_ids_[0]);
      s.untrack(track_ids_[1]);
    }
    if (rt_ != nullptr) rt_->unregister_structure(struct_id_);
  }
  FtQr(const FtQr&) = delete;
  FtQr& operator=(const FtQr&) = delete;

  /// Factor panel block-columns up to `k_end`, verifying before each panel.
  /// With a RecoveryManager attached the verification point walks the
  /// escalation ladder: trailing-block recompute from the original input
  /// (replaying the stored reflectors), then rollback to the last verified
  /// panel-boundary checkpoint, then kUnrecoverable.
  template <MemTap Tap = NullTap>
  FtStatus factor_steps(std::size_t k_end, Tap tap = {}) {
    recovery::RecoveryManager* rm = recovery_manager();
    ABFTECC_REQUIRE(k_end <= n_ && k_end >= next_k_);
    while (next_k_ < k_end) {
      const FtStatus vst = checked_verify(rm, tap);
      if (vst == FtStatus::kUncorrectable || vst == FtStatus::kUnrecoverable)
        return vst;
      const std::size_t k = next_k_;
      const std::size_t b = std::min(nb_, k_end - k);
      // Factor panel columns [k, k+b), transforming everything to their
      // right -- the two checksum columns included.
      linalg::geqrf(buf_.aw.block(k, k, m_ - k, n_ + 2 - k),
                    buf_.tau.subspan(k, b), n_ + 2 - k - b, tap);
      next_k_ = k + b;
    }
    return FtStatus::kOk;
  }

  /// Factor through a memory backend (common/backend.hpp): tap and FtStats
  /// time source both come from the backend.
  template <MemBackend B>
  FtStatus factor(B& be) {
    clock_ = be.clock();
    return factor(be.tap());
  }

  /// Full factorization with a final verification pass.
  template <MemTap Tap = NullTap>
  FtStatus factor(Tap tap = {}) {
    const FtStatus st = factor_steps(n_, tap);
    if (st != FtStatus::kOk) return st;
    const FtStatus vst = checked_verify(recovery_manager(), tap);
    if (vst == FtStatus::kUncorrectable || vst == FtStatus::kUnrecoverable)
      return vst;
    return stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                       : FtStatus::kOk;
  }

  /// Verify every row's live range against its two checksum entries and
  /// repair single-per-row errors (public for tests and for callers that
  /// interleave their own work).
  template <MemTap Tap = NullTap>
  FtStatus verify_and_correct(Tap tap = {}) {
    ++stats_.verifications;
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_qr.verify");
    if (opt_.hardware_assisted && rt_ != nullptr &&
        rt_->hardware_assisted_available()) {
      PhaseTimer t(stats_.verify_seconds, clock_);
      if (!rt_->errors_pending()) return FtStatus::kOk;
      rt_->drain_located_errors();  // location known; full pass repairs
    }
    PhaseTimer t(stats_.verify_seconds, clock_);
    const double threshold =
        opt_.tolerance * scale_ * static_cast<double>(n_);
    const double wthreshold = threshold * static_cast<double>(n_);
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j0 = live_start(i);
      double s = 0.0, w = 0.0;
      for (std::size_t j = j0; j < n_; ++j) {
        tap.read(&buf_.aw(i, j));
        s += buf_.aw(i, j);
        w += static_cast<double>(j + 1) * buf_.aw(i, j);
      }
      tap.read(&buf_.aw(i, n_));
      tap.read(&buf_.aw(i, n_ + 1));
      const double ds = s - buf_.aw(i, n_);
      const double dw = w - buf_.aw(i, n_ + 1);
      const bool sum_bad = std::abs(ds) > threshold;
      const bool w_bad = std::abs(dw) > wthreshold;
      if (!sum_bad && !w_bad) continue;
      ++stats_.errors_detected;
      PhaseTimer tc(stats_.correct_seconds);
      if (sum_bad && !w_bad) {
        // Only the sum checksum entry disagrees: it is the corrupted one.
        tap.write(&buf_.aw(i, n_));
        buf_.aw(i, n_) = s;
        ++stats_.errors_corrected;
        continue;
      }
      if (!sum_bad && w_bad) {
        tap.write(&buf_.aw(i, n_ + 1));
        buf_.aw(i, n_ + 1) = w;
        ++stats_.errors_corrected;
        continue;
      }
      // Payload error: column = dw/ds - 1, consistency-checked.
      const auto col = static_cast<long long>(std::llround(dw / ds - 1.0));
      if (col < static_cast<long long>(j0) ||
          col >= static_cast<long long>(n_) ||
          std::abs(dw - ds * static_cast<double>(col + 1)) > wthreshold)
        return FtStatus::kUncorrectable;
      tap.update(&buf_.aw(i, static_cast<std::size_t>(col)));
      buf_.aw(i, static_cast<std::size_t>(col)) -= ds;
      ++stats_.errors_corrected;
    }
    return FtStatus::kOk;
  }

  /// Solve A x = b (or least squares for m > n) from the factored form.
  template <MemTap Tap = NullTap>
  void solve(std::span<const double> b, std::span<double> x, Tap tap = {}) {
    linalg::qr_solve(ConstMatrixView(buf_.aw), buf_.tau, b, x, 2, tap);
  }

  [[nodiscard]] const FtStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t next_block() const { return next_k_; }
  /// The R factor (upper triangle of the factored storage).
  [[nodiscard]] ConstMatrixView factored() const {
    return ConstMatrixView(buf_.aw);
  }

 private:
  /// First column of row i that belongs to the transformed matrix (R for
  /// frozen rows, trailing block otherwise); everything left of it stores
  /// Householder vectors.
  [[nodiscard]] std::size_t live_start(std::size_t i) const {
    return std::min(i, next_k_);
  }

  [[nodiscard]] recovery::RecoveryManager* recovery_manager() const {
    return rt_ != nullptr ? rt_->recovery() : nullptr;
  }

  /// One ladder episode around the pre-panel verification point. Bounded:
  /// every loop iteration either returns or consumes tier budget.
  template <MemTap Tap>
  FtStatus checked_verify(recovery::RecoveryManager* rm, Tap tap) {
    bool recompute_pending = false;
    for (;;) {
      const FtStatus st = verify_and_correct(tap);
      if (rm == nullptr) return st;
      // Corruption outside the checksum columns' reach (reflector storage,
      // untracked allocations) surfaces as an OS rollback demand and
      // overrides a clean checksum verdict.
      if (rm->rollback_demanded()) {
        if (!attempt_rollback(rm)) return fail_unrecoverable(rm);
        recompute_pending = false;
        continue;
      }
      if (st != FtStatus::kUncorrectable) {
        if (recompute_pending) rm->recompute_succeeded();
        if (st == FtStatus::kOk || st == FtStatus::kCorrectedErrors)
          rm->checkpoint_tick(next_k_);
        return st;
      }
      if (rm->try_recompute()) {  // tier 2
        recompute_trailing(tap);
        recompute_pending = true;
        continue;
      }
      if (attempt_rollback(rm)) {  // tier 3
        recompute_pending = false;
        continue;
      }
      return fail_unrecoverable(rm);  // tier 4
    }
  }

  /// Verified restore; rewinds the factorization to the restored
  /// panel-boundary epoch (aw and tau come back as one snapshot).
  bool attempt_rollback(recovery::RecoveryManager* rm) {
    if (!rm->try_rollback()) return false;
    if (rm->rollback() != recovery::RestoreResult::kOk) return false;
    next_k_ = static_cast<std::size_t>(rm->store().epoch());
    return true;
  }

  FtStatus fail_unrecoverable(recovery::RecoveryManager* rm) {
    rm->mark_unrecoverable();
    return FtStatus::kUnrecoverable;
  }

  /// Tier 2: regenerate the trailing block and both checksum columns from
  /// the ORIGINAL input by replaying the stored reflectors 0..next_k_-1.
  /// Valid because every column j >= next_k_ of the factored storage is
  /// exactly Q_{next_k_}^T applied to the original column (frozen R rows
  /// included); the Householder vectors below the diagonal are left alone.
  /// Requires intact reflector storage -- if that is what the fault hit,
  /// re-verification fails and the ladder escalates to rollback.
  template <MemTap Tap>
  void recompute_trailing(Tap tap) {
    PhaseTimer t(stats_.correct_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kRecover, "ft_qr.recompute",
                      obs::Phase::kRecompute);
    std::vector<double> tmp(m_);
    for (std::size_t j = next_k_; j < n_ + 2; ++j) {
      // Original column: payload, row sums, or weighted row sums.
      for (std::size_t i = 0; i < m_; ++i) {
        if (j < n_) {
          tap.read(&a_(i, j));
          tmp[i] = a_(i, j);
        } else {
          double s = 0.0;
          const bool weighted = j == n_ + 1;
          for (std::size_t c = 0; c < n_; ++c) {
            tap.read(&a_(i, c));
            s += (weighted ? static_cast<double>(c + 1) : 1.0) * a_(i, c);
          }
          tmp[i] = s;
        }
      }
      // Replay reflectors: v(k) = 1 implicit, essentials in aw below the
      // diagonal (same application order/convention as linalg::geqrf).
      for (std::size_t k = 0; k < next_k_; ++k) {
        double dot = tmp[k];
        for (std::size_t r = k + 1; r < m_; ++r) {
          tap.read(&buf_.aw(r, k));
          dot += buf_.aw(r, k) * tmp[r];
        }
        dot *= buf_.tau[k];
        tmp[k] -= dot;
        for (std::size_t r = k + 1; r < m_; ++r) tmp[r] -= dot * buf_.aw(r, k);
      }
      for (std::size_t i = 0; i < m_; ++i) {
        tap.write(&buf_.aw(i, j));
        buf_.aw(i, j) = tmp[i];
      }
    }
  }

  void encode(ConstMatrixView a) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_qr.encode");
    for (std::size_t i = 0; i < m_; ++i) {
      double s = 0.0, w = 0.0;
      for (std::size_t j = 0; j < n_; ++j) {
        buf_.aw(i, j) = a(i, j);
        s += a(i, j);
        w += static_cast<double>(j + 1) * a(i, j);
      }
      buf_.aw(i, n_) = s;
      buf_.aw(i, n_ + 1) = w;
    }
    scale_ = mean_abs(a);
    if (scale_ == 0.0) scale_ = 1.0;
  }

  ConstMatrixView a_;  ///< original input, the tier-2 recompute source
  std::size_t m_, n_;
  Buffers buf_;
  FtOptions opt_;
  Runtime* rt_;
  /// FtStats time source: simulated cycles when the runtime has an Os
  /// attached, host steady_clock otherwise; run(backend) overrides it
  /// with the backend's clock.
  TickClock clock_ = rt_ != nullptr ? rt_->clock() : TickClock{};
  std::size_t nb_;
  std::size_t struct_id_ = 0;
  std::size_t next_k_ = 0;
  double scale_ = 1.0;
  FtStats stats_;
  recovery::CheckpointStore::RangeId track_ids_[2] = {};
  bool tracked_ = false;
};

}  // namespace abftecc::abft
