// FT-Cholesky: fault-tolerant blocked right-looking Cholesky factorization
// for fail-continue errors (Section 2.1, after Wu et al.).
//
// Every stored column j carries two checksums over its lower-triangle part,
//   S(j) = sum_{i>=j} A(i,j)   and   W(j) = sum_{i>=j} (i+1) A(i,j),
// encoded once and then MAINTAINED through every step of the blocked
// algorithm rather than re-encoded (a re-encode would silently absorb any
// corruption in flight):
//   * the trailing update A22 -= L21 L21^T updates both rows with
//     O((n-k) b) suffix-sum work;
//   * the panel solve L21 = A21 L11^{-T} acts row-wise and linearly, so
//     the below-diagonal checksum components transform through the very
//     same triangular solve (on a 1 x b checksum row);
//   * the diagonal block's own contribution is recomputed after POTF2 and
//     the block is cross-checked against a saved copy (L11 L11^T == A11),
//     closing the only nonlinear step.
// Verification at the top of every block iteration re-sums ALL columns --
// finished L columns keep their finalized checksums, so the in-place
// factor stays protected to the end. A corrupted element produces a sum
// residual whose weighted/sum ratio locates the row: one error per column,
// across any number of columns, is corrected in place. In cooperative mode
// the verification consults the OS error log instead of recomputing sums.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "linalg/factor.hpp"

namespace abftecc::abft {

class FtCholesky {
 public:
  struct Buffers {
    MatrixView a;                ///< n x n, factored in place
    std::span<double> sum;       ///< n sum checksums
    std::span<double> weighted;  ///< n weighted checksums
  };

  explicit FtCholesky(Buffers buf, FtOptions opt = {},
                      Runtime* runtime = nullptr,
                      std::size_t block = linalg::kBlock)
      : buf_(buf), opt_(opt), rt_(runtime), nb_(block) {
    ABFTECC_REQUIRE(buf.a.rows() == buf.a.cols());
    ABFTECC_REQUIRE(buf.sum.size() == buf.a.cols() &&
                    buf.weighted.size() == buf.a.cols());
    if (rt_ != nullptr)
      struct_id_ = rt_->register_structure("ft_cholesky.A", buf_.a.data(),
                                           buf_.a.ld() * buf_.a.cols());
  }

  ~FtCholesky() {
    if (rt_ != nullptr) rt_->unregister_structure(struct_id_);
  }
  FtCholesky(const FtCholesky&) = delete;
  FtCholesky& operator=(const FtCholesky&) = delete;

  /// Run through a memory backend (common/backend.hpp): tap and FtStats
  /// time source both come from the backend.
  template <MemBackend B>
  FtStatus run(B& be) {
    clock_ = be.clock();
    return run(be.tap());
  }

  template <MemTap Tap = NullTap>
  FtStatus run(Tap tap = {}) {
    const std::size_t n = buf_.a.rows();
    scale_ = mean_abs(buf_.a);
    if (scale_ == 0.0) scale_ = 1.0;
    encode_all(tap);
    for (std::size_t k = 0; k < n; k += nb_) {
      const std::size_t b = std::min(nb_, n - k);
      // (0) verify every column against its maintained checksums.
      const FtStatus vst = verify_and_correct(k, tap);
      if (vst == FtStatus::kUncorrectable) return vst;

      // Split the panel checksums: the diagonal-block contribution goes
      // through the nonlinear POTF2 (recomputed below); the below-diagonal
      // part transforms linearly through the TRSM.
      split_out_diag_contribution(k, b, tap);

      // (1) factor the diagonal block, guarded by a saved copy.
      Matrix diag_copy(b, b);
      for (std::size_t j = 0; j < b; ++j)
        for (std::size_t i = j; i < b; ++i) {
          tap.read(&buf_.a(k + i, k + j));
          diag_copy(i, j) = buf_.a(k + i, k + j);
        }
      if (linalg::potf2(buf_.a.block(k, k, b, b), tap) !=
          linalg::FactorStatus::kOk)
        return FtStatus::kNumericalFailure;
      if (!verify_diag_factorization(k, b, diag_copy, tap))
        return FtStatus::kUncorrectable;

      if (k + b < n) {
        const std::size_t rest = n - k - b;
        // (2) panel solve L21 = A21 L11^{-T} -- applied to the matrix rows
        // and, identically, to the below-diagonal checksum rows.
        linalg::trsm_right_lower_trans(
            ConstMatrixView(buf_.a.block(k, k, b, b)),
            buf_.a.block(k + b, k, rest, b), tap);
        linalg::trsm_right_lower_trans(
            ConstMatrixView(buf_.a.block(k, k, b, b)),
            MatrixView(buf_.sum.data() + k, 1, b, 1), tap);
        linalg::trsm_right_lower_trans(
            ConstMatrixView(buf_.a.block(k, k, b, b)),
            MatrixView(buf_.weighted.data() + k, 1, b, 1), tap);
      }
      // Fold the recomputed (now final) diagonal contribution back in.
      add_back_diag_contribution(k, b, tap);

      if (k + b < n) {
        const std::size_t rest = n - k - b;
        // Verify the freshly produced panel BEFORE the trailing update
        // consumes it: a corrupted L21 element repaired now never
        // contaminates A22 (repairing it later would leave the propagated
        // damage behind).
        const FtStatus pst = verify_panel(k, b, tap);
        if (pst == FtStatus::kUncorrectable) return pst;
        // (3) update the checksum rows first (from the just-verified
        // panel), then the trailing matrix: corruption landing in L21
        // between the two passes makes data and checksums diverge and is
        // caught -- and per-column located -- at the next verification.
        maintain_checksums_through_update_pre(k + b, b, tap);
        linalg::syrk_lower_sub(
            ConstMatrixView(buf_.a.block(k + b, k, rest, b)),
            buf_.a.block(k + b, k + b, rest, rest), tap);
      }
    }
    // Final pass over the finished factor.
    const FtStatus vst = verify_and_correct(n, tap);
    if (vst == FtStatus::kUncorrectable) return vst;
    return stats_.errors_corrected > 0 ? FtStatus::kCorrectedErrors
                                       : FtStatus::kOk;
  }

  [[nodiscard]] const FtStats& stats() const { return stats_; }
  [[nodiscard]] ConstMatrixView factor() const {
    return ConstMatrixView(buf_.a);
  }

  /// Public for tests: verify/correct every column against its maintained
  /// checksums. `k` only selects the hardware-notification window.
  template <MemTap Tap = NullTap>
  FtStatus verify_and_correct(std::size_t k, Tap tap = {}) {
    ++stats_.verifications;
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_cholesky.verify");
    if (opt_.hardware_assisted && rt_ != nullptr &&
        rt_->hardware_assisted_available()) {
      PhaseTimer t(stats_.verify_seconds, clock_);
      if (!rt_->errors_pending()) return FtStatus::kOk;
      return correct_from_notifications(k, tap);
    }
    PhaseTimer t(stats_.verify_seconds, clock_);
    return full_verify(tap);
  }

 private:
  /// Initial encoding of S and W over the stored lower triangle.
  template <MemTap Tap>
  void encode_all(Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_cholesky.encode");
    const std::size_t n = buf_.a.rows();
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0, w = 0.0;
      for (std::size_t i = j; i < n; ++i) {
        tap.read(&buf_.a(i, j));
        s += buf_.a(i, j);
        w += static_cast<double>(i + 1) * buf_.a(i, j);
      }
      tap.write(&buf_.sum[j]);
      tap.write(&buf_.weighted[j]);
      buf_.sum[j] = s;
      buf_.weighted[j] = w;
    }
  }

  /// Subtract the diagonal-block rows' contribution from the panel
  /// columns' checksums, leaving only the below-diagonal component that
  /// the TRSM will transform.
  template <MemTap Tap>
  void split_out_diag_contribution(std::size_t k, std::size_t b, Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_cholesky.encode");
    for (std::size_t j = 0; j < b; ++j) {
      double s = 0.0, w = 0.0;
      for (std::size_t i = j; i < b; ++i) {
        tap.read(&buf_.a(k + i, k + j));
        s += buf_.a(k + i, k + j);
        w += static_cast<double>(k + i + 1) * buf_.a(k + i, k + j);
      }
      tap.update(&buf_.sum[k + j]);
      tap.update(&buf_.weighted[k + j]);
      buf_.sum[k + j] -= s;
      buf_.weighted[k + j] -= w;
    }
  }

  /// Recompute the (now final) diagonal-block contribution from L11 and
  /// fold it back into the panel checksums.
  template <MemTap Tap>
  void add_back_diag_contribution(std::size_t k, std::size_t b, Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_cholesky.encode");
    for (std::size_t j = 0; j < b; ++j) {
      double s = 0.0, w = 0.0;
      for (std::size_t i = j; i < b; ++i) {
        tap.read(&buf_.a(k + i, k + j));
        s += buf_.a(k + i, k + j);
        w += static_cast<double>(k + i + 1) * buf_.a(k + i, k + j);
      }
      tap.update(&buf_.sum[k + j]);
      tap.update(&buf_.weighted[k + j]);
      buf_.sum[k + j] += s;
      buf_.weighted[k + j] += w;
    }
  }

  /// Cross-check L11 L11^T against the saved pre-factor block: closes the
  /// window around the nonlinear POTF2 step.
  template <MemTap Tap>
  bool verify_diag_factorization(std::size_t k, std::size_t b,
                                 const Matrix& diag_copy, Tap tap) {
    PhaseTimer t(stats_.verify_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_cholesky.verify");
    const double threshold =
        opt_.tolerance * scale_ * static_cast<double>(buf_.a.rows());
    for (std::size_t j = 0; j < b; ++j)
      for (std::size_t i = j; i < b; ++i) {
        double s = 0.0;
        for (std::size_t c = 0; c <= j; ++c) {
          tap.read(&buf_.a(k + i, k + c));
          tap.read(&buf_.a(k + j, k + c));
          s += buf_.a(k + i, k + c) * buf_.a(k + j, k + c);
        }
        if (std::abs(s - diag_copy(i, j)) > threshold) {
          ++stats_.errors_detected;
          return false;
        }
      }
    return true;
  }

  /// Verify (and correct) only the panel columns [k, k+b) right after the
  /// panel completes -- O((n-k) b).
  template <MemTap Tap>
  FtStatus verify_panel(std::size_t k, std::size_t b, Tap tap) {
    PhaseTimer t(stats_.verify_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kVerify, "ft_cholesky.verify");
    const std::size_t n = buf_.a.rows();
    const double threshold =
        opt_.tolerance * scale_ * static_cast<double>(n);
    for (std::size_t j = k; j < k + b; ++j) {
      double s = 0.0, w = 0.0;
      for (std::size_t i = j; i < n; ++i) {
        tap.read(&buf_.a(i, j));
        s += buf_.a(i, j);
        w += static_cast<double>(i + 1) * buf_.a(i, j);
      }
      tap.read(&buf_.sum[j]);
      const double ds = s - buf_.sum[j];
      if (std::abs(ds) <= threshold) continue;
      ++stats_.errors_detected;
      PhaseTimer tc(stats_.correct_seconds);
      tap.read(&buf_.weighted[j]);
      const double dw = w - buf_.weighted[j];
      const auto row =
          static_cast<long long>(std::llround(dw / ds - 1.0));
      if (row < static_cast<long long>(j) ||
          row >= static_cast<long long>(n) ||
          std::abs(dw - ds * static_cast<double>(row + 1)) >
              threshold * static_cast<double>(n))
        return FtStatus::kUncorrectable;
      tap.update(&buf_.a(static_cast<std::size_t>(row), j));
      buf_.a(static_cast<std::size_t>(row), j) -= ds;
      ++stats_.errors_corrected;
    }
    return FtStatus::kOk;
  }

  /// Apply the trailing update's effect to S and W:
  /// S(j) -= sum_t L21(j,t) * suffix_{i>=j} L21(i,t), and the weighted
  /// analogue, walking each panel column bottom-up (O(rest * b)).
  template <MemTap Tap>
  void maintain_checksums_through_update_pre(std::size_t k2, std::size_t b,
                                             Tap tap) {
    PhaseTimer t(stats_.encode_seconds, clock_);
    ScopedPhase phase(rt_, obs::EventKind::kEncode, "ft_cholesky.encode");
    const std::size_t n = buf_.a.rows();
    const std::size_t rest = n - k2;
    ConstMatrixView l21 =
        ConstMatrixView(buf_.a).block(k2, k2 - b, rest, b);
    for (std::size_t tcol = 0; tcol < b; ++tcol) {
      double suffix = 0.0, wsuffix = 0.0;
      for (std::size_t j = rest; j-- > 0;) {
        tap.read(&l21(j, tcol));
        const double v = l21(j, tcol);
        suffix += v;
        wsuffix += static_cast<double>(k2 + j + 1) * v;
        tap.update(&buf_.sum[k2 + j]);
        tap.update(&buf_.weighted[k2 + j]);
        buf_.sum[k2 + j] -= v * suffix;
        buf_.weighted[k2 + j] -= v * wsuffix;
      }
    }
  }

  template <MemTap Tap>
  FtStatus full_verify(Tap tap) {
    const std::size_t n = buf_.a.rows();
    const double threshold =
        opt_.tolerance * scale_ * static_cast<double>(n);
    bool corrected_any = false;
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0, w = 0.0;
      for (std::size_t i = j; i < n; ++i) {
        tap.read(&buf_.a(i, j));
        s += buf_.a(i, j);
        w += static_cast<double>(i + 1) * buf_.a(i, j);
      }
      tap.read(&buf_.sum[j]);
      const double ds = s - buf_.sum[j];
      if (std::abs(ds) <= threshold) continue;
      ++stats_.errors_detected;
      PhaseTimer t(stats_.correct_seconds, clock_);
      ScopedPhase phase(rt_, obs::EventKind::kRecover, "ft_cholesky.correct");
      tap.read(&buf_.weighted[j]);
      const double dw = w - buf_.weighted[j];
      const double row_f = dw / ds - 1.0;
      const auto row = static_cast<long long>(std::llround(row_f));
      // A genuine single error satisfies dw == ds * (row+1) exactly (up to
      // rounding); coincidental near-integer ratios from multi-error
      // patterns fail this consistency test.
      if (row < static_cast<long long>(j) ||
          row >= static_cast<long long>(n) ||
          std::abs(dw - ds * static_cast<double>(row + 1)) >
              threshold * static_cast<double>(n))
        return FtStatus::kUncorrectable;
      tap.update(&buf_.a(static_cast<std::size_t>(row), j));
      buf_.a(static_cast<std::size_t>(row), j) -= ds;
      ++stats_.errors_corrected;
      corrected_any = true;
    }
    return corrected_any ? FtStatus::kCorrectedErrors : FtStatus::kOk;
  }

  template <MemTap Tap>
  FtStatus correct_from_notifications(std::size_t k, Tap tap) {
    ScopedPhase phase(rt_, obs::EventKind::kRecover, "ft_cholesky.recover");
    const std::size_t n = buf_.a.rows();
    for (const auto& e : rt_->drain_located_errors()) {
      if (e.structure_id != struct_id_) continue;
      ++stats_.hw_notifications_used;
      ++stats_.errors_detected;
      const std::size_t i = e.element_index % buf_.a.ld();
      const std::size_t j = e.element_index / buf_.a.ld();
      if (j >= n || i < j || i >= n) {
        // Outside the checksum-covered lower triangle: cannot repair.
        return FtStatus::kUncorrectable;
      }
      if (j >= k && j < k + nb_ && i < k + nb_) {
        // Inside the diagonal block mid-factorization: the checksum is
        // split; fall back to a full verification instead.
        return full_verify(tap);
      }
      PhaseTimer t(stats_.correct_seconds, clock_);
      double s = 0.0;
      for (std::size_t r = j; r < n; ++r) {
        tap.read(&buf_.a(r, j));
        s += buf_.a(r, j);
      }
      tap.read(&buf_.sum[j]);
      tap.update(&buf_.a(i, j));
      buf_.a(i, j) -= s - buf_.sum[j];
      ++stats_.errors_corrected;
    }
    return FtStatus::kOk;
  }

  Buffers buf_;
  FtOptions opt_;
  Runtime* rt_;
  /// FtStats time source: simulated cycles when the runtime has an Os
  /// attached, host steady_clock otherwise; run(backend) overrides it
  /// with the backend's clock.
  TickClock clock_ = rt_ != nullptr ? rt_->clock() : TickClock{};
  std::size_t nb_;
  std::size_t struct_id_ = 0;
  double scale_ = 1.0;
  FtStats stats_;
};

}  // namespace abftecc::abft
