#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "campaign/accumulator.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "os/os.hpp"

namespace abftecc::campaign {

const Rate& CampaignResult::rate(Outcome o) const {
  switch (o) {
    case Outcome::kCorrected: return corrected;
    case Outcome::kDetectedUncorrected: return detected_uncorrected;
    case Outcome::kSilentDataCorruption: return silent_data_corruption;
    case Outcome::kBenignMasked: return benign_masked;
    case Outcome::kRecoveredByRecompute: return recovered_by_recompute;
    case Outcome::kRecoveredByRollback: return recovered_by_rollback;
    case Outcome::kUnrecoverable: return unrecoverable;
  }
  return corrected;
}

Interval wilson_interval(std::uint64_t k, std::uint64_t n, double z) {
  if (n == 0) return {0.0, 1.0};
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(k) / nn;
  const double zz = z * z;
  const double denom = 1.0 + zz / nn;
  const double center = p + zz / (2.0 * nn);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / nn + zz / (4.0 * nn * nn));
  // Pin the exact endpoints: mathematically lo = 0 at k = 0 and hi = 1 at
  // k = n, but the quotient can round to 0.999... in floating point.
  return {k == 0 ? 0.0 : std::max(0.0, (center - margin) / denom),
          k == n ? 1.0 : std::min(1.0, (center + margin) / denom)};
}

Outcome classify(abft::FtStatus status, bool output_correct, bool panicked,
                 std::uint64_t errors_corrected, std::uint64_t recomputes,
                 std::uint64_t rollbacks) {
  // Any reported-but-unrepaired failure means checkpoint/restart: the
  // result is not trusted even if it happens to be numerically close.
  if (panicked) return Outcome::kDetectedUncorrected;
  // Graceful ladder exhaustion: still a failed run, but surfaced to the
  // caller as a status instead of a process-level panic.
  if (status == abft::FtStatus::kUnrecoverable) return Outcome::kUnrecoverable;
  if (status == abft::FtStatus::kUncorrectable ||
      status == abft::FtStatus::kNumericalFailure)
    return Outcome::kDetectedUncorrected;
  if (!output_correct) return Outcome::kSilentDataCorruption;
  // Correct result: the DEEPEST recovery tier that fired names the trial.
  if (rollbacks > 0) return Outcome::kRecoveredByRollback;
  if (recomputes > 0) return Outcome::kRecoveredByRecompute;
  return errors_corrected > 0 ? Outcome::kCorrected : Outcome::kBenignMasked;
}

TrialOutcome run_trial(const CampaignOptions& opt, const GoldenRun& golden,
                       std::uint32_t index) {
  TrialOutcome t;
  t.index = index;
  t.seed = opt.campaign_seed ^ index;
  Rng rng(t.seed);

  // The ledger scope must OUTLIVE the session (declared first): the
  // injector resolves still-pending faults during session teardown paths,
  // and scope destruction is LIFO like the session's own obs scopes.
  std::optional<obs::LineageLedger> ledger;
  std::optional<obs::LineageScope> ledger_scope;
  if (opt.lineage) {
    ledger.emplace();
    ledger->enable();
    ledger_scope.emplace(*ledger);
  }

  sim::Session s =
      sim::Session::Builder(opt.platform).private_observability().build();

  if (opt.measure_latency) {
    // The session's private tracer records the trial's timeline. Demand
    // misses are masked out so the bounded ring never evicts the handful
    // of fault/recovery events a latency scan needs.
    s.tracer().set_mask(~obs::kind_bit(obs::EventKind::kDemandMiss));
    s.tracer().enable();
  }

  // Injection times: `count` uniform points in the golden reference
  // stream (a storm when > 1). The trial replays the golden execution
  // exactly until the first fault lands, so the first index is always
  // reached; later ones fire by re-arming the one-shot trigger from
  // inside the callback, in ascending order.
  const unsigned nfaults = std::max(1u, opt.fault.count);
  std::vector<std::uint64_t> refs(nfaults);
  for (auto& r : refs) r = 1 + rng.below(golden.total_refs);
  std::sort(refs.begin(), refs.end());
  // The one-shot trigger needs strictly increasing refs: re-arming at a
  // reference the counter already passed would never fire.
  for (std::size_t i = 1; i < refs.size(); ++i)
    if (refs[i] <= refs[i - 1]) refs[i] = refs[i - 1] + 1;
  t.inject_ref = refs.front();

  std::size_t next_fault = 0;
  std::function<void()> fire = [&] {
    const auto ranges = opt.fault.storm_all_ranges
                            ? s.os().all_phys_ranges()
                            : s.os().abft_phys_ranges();
    const std::size_t fault_index = next_fault++;
    if (next_fault < refs.size())
      s.tap_context().set_ref_trigger(refs[next_fault], fire);
    std::uint64_t total = 0;
    for (const auto& [begin, end] : ranges) total += end - begin;
    if (total == 0) return;  // strategy with no matching allocations
    std::uint64_t off = rng.below(total);
    std::uint64_t phys = 0;
    for (const auto& [begin, end] : ranges) {
      const std::uint64_t len = end - begin;
      if (off < len) {
        phys = begin + off;
        break;
      }
      off -= len;
    }
    if (fault_index == 0) t.fault_phys = phys;
    auto& inj = s.injector();
    switch (opt.fault.kind) {
      case FaultKind::kSingleBit: {
        const auto bit = static_cast<unsigned>(rng.below(8));
        if (fault_index == 0) t.fault_bit = bit;
        inj.inject_bit(phys, bit);
        break;
      }
      case FaultKind::kDoubleBit: {
        // Two distinct flips in one 64-bit word.
        const std::uint64_t word = phys & ~std::uint64_t{7};
        const auto b1 = static_cast<unsigned>(rng.below(64));
        auto b2 = static_cast<unsigned>(rng.below(63));
        if (b2 >= b1) ++b2;
        inj.inject_bit(word + b1 / 8, b1 % 8);
        inj.inject_bit(word + b2 / 8, b2 % 8);
        if (fault_index == 0) t.fault_bit = b1;
        break;
      }
      case FaultKind::kChipKill: {
        const auto chip = static_cast<unsigned>(rng.below(16));
        if (fault_index == 0) t.fault_bit = chip;
        inj.inject_chip_kill(phys, chip, opt.fault.chip_pattern);
        break;
      }
    }
    // Materialize immediately, as if the corrupted line were read now:
    // the fault goes through the scheme's decoder instead of waiting for
    // a fill that might never come (or a writeback that would erase it).
    inj.flush_pending();
  };
  s.tap_context().set_ref_trigger(refs.front(), fire);

  const sim::RunMetrics m = s.run(opt.kernel);

  const std::vector<double>& result = s.last_result();
  double max_err = 0.0;
  bool comparable = result.size() == golden.result.size();
  for (std::size_t i = 0; comparable && i < result.size(); ++i) {
    const double d = std::fabs(result[i] - golden.result[i]);
    if (std::isnan(d) || d > max_err) max_err = d;
  }
  const bool correct = comparable && max_err <= opt.tolerance;

  const fault::InjectorStats& ist = s.injector().stats();
  t.injected = ist.injected_flips + ist.injected_chip_kills;
  t.exposed_dropped = s.os().exposed_dropped();
  t.ecc_corrected = ist.corrected_by_ecc;
  t.ecc_uncorrectable = ist.uncorrectable;
  t.silent_corruptions = ist.silent_corruptions;
  t.cleared_by_writeback = ist.cleared_by_writeback;
  t.materialized = ist.corrected_by_ecc + ist.uncorrectable +
                       ist.silent_corruptions + ist.cleared_by_writeback >
                   0;
  t.abft_detected = m.ft.errors_detected;
  t.abft_corrected = m.ft.errors_corrected;
  t.panicked = s.os().panicked();
  t.status = m.status;
  t.recomputes = m.recovery.recomputes;
  t.rollbacks = m.recovery.rollbacks;
  t.escalations = m.recovery.escalations;
  t.corrupted_checkpoints = m.recovery.corrupted_checkpoints;
  t.max_abs_error = max_err;
  t.sim_seconds = m.seconds;
  t.cycles = m.sys.cpu_cycles;
  if (opt.measure_latency) {
    // First OS ECC interrupt -> end of the first recovery-path event
    // recorded after it. Complete events (drain, correct, rollback) are
    // recorded at phase END, so snapshot order is completion order; their
    // span may have OPENED before the interrupt, hence end-time math.
    std::uint64_t intr = 0;
    bool have_intr = false;
    for (const obs::TraceEvent& e : s.tracer().snapshot()) {
      if (!have_intr) {
        if (e.kind == obs::EventKind::kEccInterrupt) {
          intr = e.ts;
          have_intr = true;
        }
        continue;
      }
      const bool recovery_event = e.kind == obs::EventKind::kErrorsDrained ||
                                  e.kind == obs::EventKind::kRecover ||
                                  e.kind == obs::EventKind::kRecompute ||
                                  e.kind == obs::EventKind::kRollback;
      if (!recovery_event) continue;
      const std::uint64_t end = e.ts + e.dur;
      if (end < intr) continue;
      t.interrupt_to_recovery_cycles = static_cast<double>(end - intr);
      break;
    }
  }
  t.outcome = classify(m.status, correct, t.panicked,
                       ist.corrected_by_ecc + m.ft.errors_corrected,
                       t.recomputes, t.rollbacks);
  if (ledger.has_value()) {
    ledger->seal(to_string(t.outcome));
    t.lineage_terminal = ledger->terminal();
    t.lineage_faults = ledger->faults();
    t.lineage_events = ledger->events();
  }
  return t;
}

std::size_t resolve_chunk(std::size_t chunk, std::size_t trials,
                          unsigned workers) {
  if (chunk > 0) return chunk;
  // Auto: ~8 chunks per worker so the tail stays balanced, capped so a
  // resumable sweep checkpoints at a useful granularity.
  const std::size_t w = std::max(1u, workers);
  const std::size_t auto_chunk = trials / (w * 8);
  return std::clamp<std::size_t>(auto_chunk, 1, 512);
}

GoldenRun run_golden(const CampaignOptions& opt) {
  GoldenRun golden;
  sim::Session g =
      sim::Session::Builder(opt.platform).private_observability().build();
  golden.metrics = g.run(opt.kernel);
  golden.total_refs = golden.metrics.refs_abft + golden.metrics.refs_other;
  golden.result = g.last_result();
  return golden;
}

CampaignResult run_campaign(const CampaignOptions& opt,
                            const GoldenRun& golden,
                            const Progress& progress) {
  ABFTECC_REQUIRE(opt.trials > 0);
  ABFTECC_REQUIRE(golden.total_refs > 0);
  CampaignResult out;
  out.options = opt;
  out.golden = golden.metrics;

  out.trials.resize(opt.trials);
  const unsigned nthreads = std::max(1u, opt.threads);
  const std::size_t chunk = resolve_chunk(opt.chunk, opt.trials, nthreads);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;
  // Chunked self-scheduling: workers claim `chunk` consecutive trial
  // indices per step (one atomic op per chunk instead of per trial).
  auto worker = [&] {
    for (;;) {
      const std::size_t base = next.fetch_add(chunk, std::memory_order_relaxed);
      if (base >= opt.trials) return;
      const std::size_t end = std::min(base + chunk, opt.trials);
      for (std::size_t i = base; i < end; ++i) {
        out.trials[i] = run_trial(opt, golden, static_cast<std::uint32_t>(i));
        const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mu);
          progress(d, opt.trials);
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (unsigned i = 1; i < nthreads; ++i) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (auto& th : pool) th.join();

  // All aggregate fields flow through the mergeable Accumulator -- the
  // same fold campaignd applies shard by shard, so a sharded sweep's
  // report cannot drift from a single-process one.
  Accumulator::of(opt, out.trials).finalize_into(out);
  return out;
}

CampaignResult run_campaign(const CampaignOptions& opt,
                            const Progress& progress) {
  return run_campaign(opt, run_golden(opt), progress);
}

void write_trial_jsonl(std::FILE* f, const CampaignOptions& opt,
                       const TrialOutcome& t) {
  std::fprintf(f, "%s\n", trial_jsonl_line(opt, t).c_str());
}

std::string trial_jsonl_line(const CampaignOptions& opt,
                             const TrialOutcome& t) {
  obs::JsonWriter w;
  w.begin_object()
      .field("trial", static_cast<std::uint64_t>(t.index))
      .field("seed", t.seed)
      .field("kernel", sim::kernel_name(opt.kernel))
      .field("strategy", sim::spec(opt.platform.strategy).label)
      .field("fault", to_string(opt.fault.kind))
      .field("faults", static_cast<std::uint64_t>(
                           std::max(1u, opt.fault.count)))
      .field("outcome", to_string(t.outcome))
      .field("status", abft::to_string(t.status))
      .field("inject_ref", t.inject_ref)
      .field("fault_phys", t.fault_phys)
      .field("fault_bit", t.fault_bit)
      .field("injected", t.injected)
      .field("ecc_corrected", t.ecc_corrected)
      .field("ecc_uncorrectable", t.ecc_uncorrectable)
      .field("silent_corruptions", t.silent_corruptions)
      .field("cleared_by_writeback", t.cleared_by_writeback)
      .field("exposed_dropped", t.exposed_dropped)
      .field("abft_detected", t.abft_detected)
      .field("abft_corrected", t.abft_corrected)
      .field("recomputes", t.recomputes)
      .field("rollbacks", t.rollbacks)
      .field("escalations", t.escalations)
      .field("corrupted_checkpoints", t.corrupted_checkpoints)
      .field("panicked", t.panicked)
      .field("materialized", t.materialized)
      .field("max_abs_error", t.max_abs_error)
      .end_object();
  return w.take();
}

CampaignResult::LineageSummary reconcile_lineage(const CampaignResult& result) {
  // Pure fold through the mergeable Accumulator: per-trial checks in
  // add(), the cross-trial partition invariant in lineage_summary().
  Accumulator acc(Accumulator::Config{/*lineage=*/true,
                                      result.options.measure_latency});
  for (const TrialOutcome& t : result.trials) acc.add(t);
  return acc.lineage_summary();
}

void write_lineage_jsonl(std::FILE* f, const CampaignOptions& opt,
                         const TrialOutcome& t) {
  std::fputs(lineage_jsonl_lines(opt, t).c_str(), f);
}

std::string lineage_jsonl_lines(const CampaignOptions& opt,
                                const TrialOutcome& t) {
  std::string out;
  const auto write_events = [](obs::JsonWriter& w,
                               const std::vector<obs::LineageEvent>& events,
                               std::uint32_t fault_id) {
    w.key("events").begin_array();
    for (const obs::LineageEvent& e : events) {
      if (e.fault != fault_id) continue;
      w.begin_object()
          .field("stage", obs::to_string(e.stage))
          .field("cycle", e.cycle)
          .field("addr", e.addr)
          .field("a0", e.a0)
          .field("a1", e.a1);
      if (e.tag != nullptr) w.field("tag", e.tag);
      w.end_object();
    }
    w.end_array();
  };
  for (const obs::LineageFault& fr : t.lineage_faults) {
    obs::JsonWriter w;
    w.begin_object()
        .field("trial", static_cast<std::uint64_t>(t.index))
        .field("kernel", sim::kernel_name(opt.kernel))
        .field("fault", static_cast<std::uint64_t>(fr.id))
        .field("kind", fr.kind)
        .field("phys", fr.phys)
        .field("bit", static_cast<std::uint64_t>(fr.bit))
        .field("resolution", fr.resolution_count > 0
                                 ? obs::to_string(fr.resolution)
                                 : std::string_view("none"))
        .field("resolution_count",
               static_cast<std::uint64_t>(fr.resolution_count))
        .field("exposed", fr.exposed)
        .field("located", fr.located)
        .field("terminal", fr.terminal);
    write_events(w, t.lineage_events, fr.id);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  obs::JsonWriter w;
  w.begin_object()
      .field("trial", static_cast<std::uint64_t>(t.index))
      .field("kernel", sim::kernel_name(opt.kernel))
      .field("terminal", t.lineage_terminal)
      .field("faults", static_cast<std::uint64_t>(t.lineage_faults.size()))
      .field("exposed_dropped", t.exposed_dropped);
  write_events(w, t.lineage_events, 0);
  w.end_object();
  out += w.str();
  out += '\n';
  return out;
}

}  // namespace abftecc::campaign
