#include "campaign/accumulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/jsonv.hpp"
#include "obs/lineage.hpp"

namespace abftecc::campaign {

namespace {

constexpr std::uint64_t kSchemaVersion = 1;

Rate make_rate(std::uint64_t count, std::uint64_t total) {
  Rate r;
  r.count = count;
  r.total = total;
  r.fraction =
      total == 0 ? 0.0
                 : static_cast<double>(count) / static_cast<double>(total);
  const Interval iv = wilson_interval(count, total);
  r.wilson_lo = iv.lo;
  r.wilson_hi = iv.hi;
  return r;
}

}  // namespace

double Accumulator::latency_bound(std::size_t i) {
  double b = kLatencyFirstBound;
  for (std::size_t k = 0; k < i; ++k) b *= kLatencyFactor;
  return b;
}

void Accumulator::add_error(std::string msg) {
  errors_.push_back(std::move(msg));
  normalize_errors();
}

void Accumulator::normalize_errors() {
  std::sort(errors_.begin(), errors_.end());
  errors_.erase(std::unique(errors_.begin(), errors_.end()), errors_.end());
  if (errors_.size() > kMaxErrors) errors_.resize(kMaxErrors);
}

void Accumulator::add(const TrialOutcome& t) {
  ++trials_;
  const auto oi = static_cast<std::size_t>(t.outcome);
  ++outcomes_[oi];
  if (!t.materialized) ++unclassified_;
  if (t.panicked) ++panicked_;
  injected_ += t.injected;
  exposed_dropped_ += t.exposed_dropped;
  if (t.max_abs_error > max_abs_error_ && !std::isnan(t.max_abs_error))
    max_abs_error_ = t.max_abs_error;
  ++costs_[oi].trials;
  costs_[oi].sum_cycles += t.cycles;
  costs_[oi].max_cycles = std::max(costs_[oi].max_cycles, t.cycles);

  if (config_.latency && t.interrupt_to_recovery_cycles >= 0.0) {
    const auto v =
        static_cast<std::uint64_t>(std::llround(t.interrupt_to_recovery_cycles));
    ++latency_count_;
    latency_sum_ += v;
    latency_max_ = std::max(latency_max_, v);
    std::size_t b = 0;
    while (b < kLatencyBounds &&
           static_cast<double>(v) > latency_bound(b))
      ++b;
    ++latency_buckets_[b];
  }

  if (!config_.lineage) return;

  // Per-trial reconciliation checks (the trial-local half of the keystone
  // invariant; the cross-trial partition check runs in lineage_summary()).
  const std::string_view expect = to_string(t.outcome);
  if (t.lineage_terminal != expect)
    add_error("trial " + std::to_string(t.index) + ": sealed terminal '" +
              std::string(t.lineage_terminal) + "' != classified outcome '" +
              std::string(expect) + "'");
  for (std::size_t i = 0; i < kAllOutcomes.size(); ++i)
    if (to_string(kAllOutcomes[i]) == t.lineage_terminal)
      ++lineage_terminals_[i];
  if (t.lineage_faults.size() != t.injected)
    add_error("trial " + std::to_string(t.index) + ": " +
              std::to_string(t.lineage_faults.size()) +
              " lineage records for " + std::to_string(t.injected) +
              " injected faults");
  for (const obs::LineageFault& f : t.lineage_faults) {
    ++lineage_faults_;
    if (f.resolution_count == 0) {
      ++lineage_orphans_;
      add_error("trial " + std::to_string(t.index) + " fault #" +
                std::to_string(f.id) + " (" + f.kind + " at phys " +
                std::to_string(f.phys) +
                "): no hardware resolution (orphan)");
    } else if (f.resolution_count > 1) {
      ++lineage_double_counted_;
      add_error("trial " + std::to_string(t.index) + " fault #" +
                std::to_string(f.id) + ": resolved " +
                std::to_string(f.resolution_count) + " times (double-count)");
    } else {
      ++lineage_resolutions_[static_cast<std::size_t>(f.resolution)];
    }
  }
}

void Accumulator::merge(const Accumulator& other) {
  ABFTECC_REQUIRE(config_.lineage == other.config_.lineage &&
                  config_.latency == other.config_.latency);
  trials_ += other.trials_;
  for (std::size_t i = 0; i < outcomes_.size(); ++i)
    outcomes_[i] += other.outcomes_[i];
  unclassified_ += other.unclassified_;
  panicked_ += other.panicked_;
  injected_ += other.injected_;
  exposed_dropped_ += other.exposed_dropped_;
  max_abs_error_ = std::max(max_abs_error_, other.max_abs_error_);
  for (std::size_t i = 0; i < costs_.size(); ++i) {
    costs_[i].trials += other.costs_[i].trials;
    costs_[i].sum_cycles += other.costs_[i].sum_cycles;
    costs_[i].max_cycles =
        std::max(costs_[i].max_cycles, other.costs_[i].max_cycles);
  }
  latency_count_ += other.latency_count_;
  latency_sum_ += other.latency_sum_;
  latency_max_ = std::max(latency_max_, other.latency_max_);
  for (std::size_t i = 0; i < latency_buckets_.size(); ++i)
    latency_buckets_[i] += other.latency_buckets_[i];
  lineage_faults_ += other.lineage_faults_;
  lineage_orphans_ += other.lineage_orphans_;
  lineage_double_counted_ += other.lineage_double_counted_;
  for (std::size_t i = 0; i < lineage_resolutions_.size(); ++i)
    lineage_resolutions_[i] += other.lineage_resolutions_[i];
  for (std::size_t i = 0; i < lineage_terminals_.size(); ++i)
    lineage_terminals_[i] += other.lineage_terminals_[i];
  errors_.insert(errors_.end(), other.errors_.begin(), other.errors_.end());
  normalize_errors();
}

Rate Accumulator::rate(Outcome o) const {
  return make_rate(outcomes_[static_cast<std::size_t>(o)], trials_);
}

CampaignResult::LineageSummary Accumulator::lineage_summary() const {
  CampaignResult::LineageSummary sum;
  sum.enabled = config_.lineage;
  sum.faults = lineage_faults_;
  sum.orphans = lineage_orphans_;
  sum.double_counted = lineage_double_counted_;
  sum.exposed_dropped = exposed_dropped_;
  sum.resolutions = lineage_resolutions_;
  sum.terminals = lineage_terminals_;
  sum.errors = errors_;
  // The partition invariant: sealed terminal counts must reproduce the
  // independently tallied outcome taxonomy, shard by shard and merged.
  for (std::size_t i = 0; i < kAllOutcomes.size(); ++i)
    if (lineage_terminals_[i] != outcomes_[i])
      sum.errors.push_back(
          std::string("terminal '") + std::string(to_string(kAllOutcomes[i])) +
          "': ledger counts " + std::to_string(lineage_terminals_[i]) +
          " trials, taxonomy counts " + std::to_string(outcomes_[i]));
  std::sort(sum.errors.begin(), sum.errors.end());
  sum.errors.erase(std::unique(sum.errors.begin(), sum.errors.end()),
                   sum.errors.end());
  if (sum.errors.size() > kMaxErrors) sum.errors.resize(kMaxErrors);
  sum.ok = sum.errors.empty();
  return sum;
}

void Accumulator::finalize_into(CampaignResult& result) const {
  result.corrected = rate(Outcome::kCorrected);
  result.detected_uncorrected = rate(Outcome::kDetectedUncorrected);
  result.silent_data_corruption = rate(Outcome::kSilentDataCorruption);
  result.benign_masked = rate(Outcome::kBenignMasked);
  result.recovered_by_recompute = rate(Outcome::kRecoveredByRecompute);
  result.recovered_by_rollback = rate(Outcome::kRecoveredByRollback);
  result.unrecoverable = rate(Outcome::kUnrecoverable);
  result.unclassified = unclassified_;
  result.panicked_trials = panicked_;
  if (config_.lineage) result.lineage = lineage_summary();
}

void Accumulator::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.field("schema", kSchemaVersion);
  w.field("lineage", config_.lineage);
  w.field("latency", config_.latency);
  w.field("trials", trials_);
  w.key("outcomes").begin_object();
  for (std::size_t i = 0; i < kAllOutcomes.size(); ++i)
    w.field(to_string(kAllOutcomes[i]), outcomes_[i]);
  w.end_object();
  w.field("unclassified", unclassified_);
  w.field("panicked", panicked_);
  w.field("injected", injected_);
  w.field("exposed_dropped", exposed_dropped_);
  w.field("max_abs_error", max_abs_error_);
  w.key("cycles_by_outcome").begin_object();
  for (std::size_t i = 0; i < kAllOutcomes.size(); ++i) {
    w.key(to_string(kAllOutcomes[i])).begin_object();
    w.field("trials", costs_[i].trials);
    w.field("sum_cycles", costs_[i].sum_cycles);
    w.field("max_cycles", costs_[i].max_cycles);
    w.end_object();
  }
  w.end_object();
  w.key("latency_hist").begin_object();
  w.field("count", latency_count_);
  w.field("sum", latency_sum_);
  w.field("max", latency_max_);
  w.key("buckets").begin_array();
  for (const std::uint64_t b : latency_buckets_) w.value(b);
  w.end_array();
  w.end_object();
  w.key("lineage_tallies").begin_object();
  w.field("faults", lineage_faults_);
  w.field("orphans", lineage_orphans_);
  w.field("double_counted", lineage_double_counted_);
  w.key("resolutions").begin_array();
  for (const std::uint64_t r : lineage_resolutions_) w.value(r);
  w.end_array();
  w.key("terminals").begin_array();
  for (const std::uint64_t t : lineage_terminals_) w.value(t);
  w.end_array();
  w.key("errors").begin_array();
  for (const std::string& e : errors_) w.value(e);
  w.end_array();
  w.end_object();
  w.end_object();
}

std::string Accumulator::to_json() const {
  obs::JsonWriter w;
  write_json(w);
  return w.take();
}

bool Accumulator::from_json(const obs::JsonValue& v, std::string* error) {
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!v.is_object()) return fail("accumulator: not a JSON object");
  if (v.u64("schema") != kSchemaVersion)
    return fail("accumulator: unknown schema version");
  *this = Accumulator(Config{v.boolean("lineage"), v.boolean("latency")});
  trials_ = v.u64("trials");
  const obs::JsonValue* outcomes = v.find("outcomes");
  if (outcomes == nullptr) return fail("accumulator: missing outcomes");
  for (std::size_t i = 0; i < kAllOutcomes.size(); ++i)
    outcomes_[i] = outcomes->u64(to_string(kAllOutcomes[i]));
  unclassified_ = v.u64("unclassified");
  panicked_ = v.u64("panicked");
  injected_ = v.u64("injected");
  exposed_dropped_ = v.u64("exposed_dropped");
  max_abs_error_ = v.num("max_abs_error");
  const obs::JsonValue* costs = v.find("cycles_by_outcome");
  if (costs == nullptr) return fail("accumulator: missing cycles_by_outcome");
  for (std::size_t i = 0; i < kAllOutcomes.size(); ++i) {
    const obs::JsonValue* c = costs->find(to_string(kAllOutcomes[i]));
    if (c == nullptr) return fail("accumulator: missing outcome cost");
    costs_[i].trials = c->u64("trials");
    costs_[i].sum_cycles = c->u64("sum_cycles");
    costs_[i].max_cycles = c->u64("max_cycles");
  }
  const obs::JsonValue* lat = v.find("latency_hist");
  if (lat == nullptr) return fail("accumulator: missing latency_hist");
  latency_count_ = lat->u64("count");
  latency_sum_ = lat->u64("sum");
  latency_max_ = lat->u64("max");
  const obs::JsonValue* buckets = lat->find("buckets");
  if (buckets == nullptr || !buckets->is_array() ||
      buckets->as_array().size() != kLatencyBuckets)
    return fail("accumulator: bad latency buckets");
  for (std::size_t i = 0; i < kLatencyBuckets; ++i)
    latency_buckets_[i] = buckets->as_array()[i].as_u64();
  const obs::JsonValue* lin = v.find("lineage_tallies");
  if (lin == nullptr) return fail("accumulator: missing lineage_tallies");
  lineage_faults_ = lin->u64("faults");
  lineage_orphans_ = lin->u64("orphans");
  lineage_double_counted_ = lin->u64("double_counted");
  const obs::JsonValue* res = lin->find("resolutions");
  if (res == nullptr || !res->is_array() ||
      res->as_array().size() != lineage_resolutions_.size())
    return fail("accumulator: bad resolutions");
  for (std::size_t i = 0; i < lineage_resolutions_.size(); ++i)
    lineage_resolutions_[i] = res->as_array()[i].as_u64();
  const obs::JsonValue* term = lin->find("terminals");
  if (term == nullptr || !term->is_array() ||
      term->as_array().size() != lineage_terminals_.size())
    return fail("accumulator: bad terminals");
  for (std::size_t i = 0; i < lineage_terminals_.size(); ++i)
    lineage_terminals_[i] = term->as_array()[i].as_u64();
  const obs::JsonValue* errs = lin->find("errors");
  if (errs == nullptr || !errs->is_array())
    return fail("accumulator: bad errors");
  errors_.clear();
  for (const obs::JsonValue& e : errs->as_array())
    errors_.push_back(e.as_string());
  normalize_errors();
  return true;
}

Accumulator Accumulator::of(const CampaignOptions& opt,
                            const std::vector<TrialOutcome>& trials) {
  Accumulator acc(opt);
  for (const TrialOutcome& t : trials) acc.add(t);
  return acc;
}

bool operator==(const Accumulator& a, const Accumulator& b) {
  return a.config_.lineage == b.config_.lineage &&
         a.config_.latency == b.config_.latency && a.trials_ == b.trials_ &&
         a.outcomes_ == b.outcomes_ && a.unclassified_ == b.unclassified_ &&
         a.panicked_ == b.panicked_ && a.injected_ == b.injected_ &&
         a.exposed_dropped_ == b.exposed_dropped_ &&
         a.max_abs_error_ == b.max_abs_error_ &&
         [&] {
           for (std::size_t i = 0; i < a.costs_.size(); ++i)
             if (a.costs_[i].trials != b.costs_[i].trials ||
                 a.costs_[i].sum_cycles != b.costs_[i].sum_cycles ||
                 a.costs_[i].max_cycles != b.costs_[i].max_cycles)
               return false;
           return true;
         }() &&
         a.latency_count_ == b.latency_count_ &&
         a.latency_sum_ == b.latency_sum_ &&
         a.latency_max_ == b.latency_max_ &&
         a.latency_buckets_ == b.latency_buckets_ &&
         a.lineage_faults_ == b.lineage_faults_ &&
         a.lineage_orphans_ == b.lineage_orphans_ &&
         a.lineage_double_counted_ == b.lineage_double_counted_ &&
         a.lineage_resolutions_ == b.lineage_resolutions_ &&
         a.lineage_terminals_ == b.lineage_terminals_ &&
         a.errors_ == b.errors_;
}

}  // namespace abftecc::campaign
