// Monte Carlo fault-injection campaign engine (paper Section 5 / BIFIT
// methodology): N independent trials of one (kernel, strategy,
// fault-scenario) triple, each on its own fully isolated simulated node
// (sim::Session with private observability), run on a std::thread pool.
//
// Determinism contract: trial i derives everything random from
// `campaign_seed ^ i` (xoshiro seeded through splitmix64, so the xor'd
// seeds are decorrelated), the kernel inputs come from the shared
// platform seed, and trials share no mutable state -- the same campaign
// seed therefore reproduces bit-identical per-trial outcomes regardless
// of thread count or scheduling.
//
// Each trial picks a uniformly random reference index in the golden run's
// tap stream and a uniformly random byte of the live ABFT-protected
// physical ranges, queues the scenario's fault there mid-run, and forces
// it to materialize through the ECC decoder immediately (as if the line
// were read), so every trial resolves through the real cooperative path:
// ECC correction, MC error registers + OS interrupt + runtime drain, or
// silent corruption left for ABFT. The outcome is judged against a
// fault-free golden run of the same configuration.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string_view>
#include <vector>

#include "abft/common.hpp"
#include "obs/lineage.hpp"
#include "sim/platform.hpp"

namespace abftecc::campaign {

/// Per-trial verdict (the paper's fault-injection taxonomy, extended with
/// the recovery ladder's tiers).
enum class Outcome : std::uint8_t {
  kCorrected,            ///< run finished correct and an error was corrected
                         ///< (by ECC or by ABFT)
  kDetectedUncorrected,  ///< the stack reported the fault but could not
                         ///< repair it (ABFT uncorrectable, kernel failure,
                         ///< or OS panic): checkpoint/restart territory
  kSilentDataCorruption, ///< wrong result, nothing detected anything
  kBenignMasked,         ///< correct result with no correction performed
                         ///< (fault overwritten or in dead data)
  kRecoveredByRecompute, ///< correct result, ladder tier 2 (block recompute
                         ///< from inputs) did the heavy lifting
  kRecoveredByRollback,  ///< correct result via a verified checkpoint
                         ///< restore (ladder tier 3)
  kUnrecoverable,        ///< ladder exhausted; surfaced gracefully to the
                         ///< caller instead of a panic
};

inline constexpr std::array<Outcome, 7> kAllOutcomes = {
    Outcome::kCorrected,            Outcome::kDetectedUncorrected,
    Outcome::kSilentDataCorruption, Outcome::kBenignMasked,
    Outcome::kRecoveredByRecompute, Outcome::kRecoveredByRollback,
    Outcome::kUnrecoverable};

constexpr std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kCorrected: return "corrected";
    case Outcome::kDetectedUncorrected: return "detected_uncorrected";
    case Outcome::kSilentDataCorruption: return "silent_data_corruption";
    case Outcome::kBenignMasked: return "benign_masked";
    case Outcome::kRecoveredByRecompute: return "recovered_by_recompute";
    case Outcome::kRecoveredByRollback: return "recovered_by_rollback";
    case Outcome::kUnrecoverable: return "unrecoverable";
  }
  return "?";
}

enum class FaultKind : std::uint8_t {
  kSingleBit,  ///< one DRAM bit flip (Table 5's dominant event)
  kDoubleBit,  ///< two flips in one 64-bit word: SECDED's guaranteed
               ///< detected-uncorrectable pattern
  kChipKill,   ///< whole-chip failure with a stuck-bit-line pattern
};

constexpr std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kSingleBit: return "single_bit";
    case FaultKind::kDoubleBit: return "double_bit";
    case FaultKind::kChipKill: return "chip_kill";
  }
  return "?";
}

struct FaultScenario {
  FaultKind kind = FaultKind::kSingleBit;
  /// Nibble corruption mask for kChipKill (0x3 = two stuck bit-lines).
  std::uint8_t chip_pattern = 0x3;
  /// Faults per trial (a storm when > 1), injected at independently
  /// sampled reference points of the golden stream.
  unsigned count = 1;
  /// Sample injection sites over ALL live allocations instead of only the
  /// ABFT-protected ranges, so plain structures (kernel inputs) get hit
  /// too -- the scenario that historically ended in Os::panic.
  bool storm_all_ranges = false;
};

struct CampaignOptions {
  sim::Kernel kernel = sim::Kernel::kDgemm;
  /// Shared per-trial node configuration. `platform.seed` seeds the kernel
  /// INPUTS and is identical across trials (one golden run serves all);
  /// per-trial randomness comes from campaign_seed instead.
  sim::PlatformOptions platform;
  FaultScenario fault;
  std::size_t trials = 256;
  unsigned threads = 1;
  std::uint64_t campaign_seed = 7;
  /// Max |element| deviation from the golden result still counted correct
  /// (ABFT checksum corrections reconstruct values to roundoff, not bits).
  double tolerance = 1e-6;
  /// Record per-trial recovery latency (first OS ECC interrupt to the end
  /// of the first recovery-path event) by running each trial's private
  /// tracer with demand misses masked out. Off by default: the measured
  /// cycles depend on host heap layout (see TrialOutcome::sim_seconds) and
  /// are therefore kept out of the byte-identical determinism surface.
  bool measure_latency = false;
  /// Trials claimed per scheduling step by the in-process pool (and the
  /// chunk granularity campaignd shards steal from each other). 0 = auto:
  /// scale with trials/threads so a million-trial sweep does not hammer
  /// one atomic counter per trial. Never affects per-trial outcomes --
  /// trial i derives everything from campaign_seed ^ i regardless of
  /// which worker ran it.
  std::size_t chunk = 0;
  /// Run each trial with a private fault provenance ledger
  /// (obs/lineage.hpp): every injected fault gets a lineage ID and its
  /// stage chain is kept on the TrialOutcome; run_campaign() then
  /// reconciles the ledgers against the outcome taxonomy
  /// (CampaignResult::lineage). Off by default; MUST NOT perturb trial
  /// outcomes (the CI smoke gate byte-compares trial JSONL with and
  /// without it). Event cycle stamps carry the usual sim_seconds caveat
  /// and stay off the byte-determinism surface.
  bool lineage = false;
};

/// Everything deterministic about one trial. Host wall-clock quantities
/// are deliberately excluded so identical seeds serialize identically.
struct TrialOutcome {
  std::uint32_t index = 0;
  std::uint64_t seed = 0;
  Outcome outcome = Outcome::kBenignMasked;
  abft::FtStatus status = abft::FtStatus::kOk;
  std::uint64_t inject_ref = 0;  ///< 1-based tap reference of the injection
  std::uint64_t fault_phys = 0;
  unsigned fault_bit = 0;  ///< bit for bit flips, chip for chip kills
  /// Faults the injector actually created (flips + chip kills); the
  /// lineage reconciliation requires one fault record for each.
  std::uint64_t injected = 0;
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_uncorrectable = 0;
  std::uint64_t silent_corruptions = 0;
  std::uint64_t cleared_by_writeback = 0;
  /// Exposed-error log records the OS dropped under storm overload
  /// (distinguishes "dropped" from "lost" in lineage orphan analysis).
  std::uint64_t exposed_dropped = 0;
  std::uint64_t abft_detected = 0;
  std::uint64_t abft_corrected = 0;
  bool panicked = false;
  /// Recovery-ladder accounting for the trial's run (zero, ladder off).
  std::uint64_t recomputes = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t escalations = 0;
  std::uint64_t corrupted_checkpoints = 0;
  /// The injected fault went through some resolution path (decode,
  /// silent corruption, or writeback clear). A false value means the
  /// injection was lost -- the campaign counts it as unclassified.
  bool materialized = false;
  double max_abs_error = 0.0;  ///< vs. the golden result
  /// Simulated time of the trial's run. NOT part of the determinism
  /// surface (and excluded from the JSONL): kernels with anonymous
  /// std::vector workspaces map those pages by host heap address, which
  /// varies with thread scheduling, so cycle counts can wobble by a cache
  /// miss or two. Outcome fields never depend on timing.
  double sim_seconds = 0.0;
  /// Total simulated cycles of the run; same caveat as sim_seconds.
  std::uint64_t cycles = 0;
  /// Cycles from the first OS ECC interrupt to the end of the first
  /// recovery-path event after it (log drain, ABFT correction, rollback).
  /// Negative when not measured (CampaignOptions::measure_latency off) or
  /// when no interrupt fired; same determinism caveat as sim_seconds.
  double interrupt_to_recovery_cycles = -1.0;
  /// Sealed provenance ledger of the trial (CampaignOptions::lineage);
  /// empty when lineage is off. Event cycle stamps share the sim_seconds
  /// caveat; everything else (IDs, stages, resolutions, terminal) is
  /// deterministic.
  std::vector<obs::LineageFault> lineage_faults;
  std::vector<obs::LineageEvent> lineage_events;
  std::string_view lineage_terminal;  ///< sealed outcome label; "" = off
};

/// A fraction of trials with its Wilson score interval.
struct Rate {
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  double fraction = 0.0;
  double wilson_lo = 0.0;
  double wilson_hi = 0.0;
};

struct CampaignResult {
  CampaignOptions options;
  sim::RunMetrics golden;  ///< the fault-free reference run
  std::vector<TrialOutcome> trials;  ///< indexed by trial
  Rate corrected;
  Rate detected_uncorrected;
  Rate silent_data_corruption;
  Rate benign_masked;
  Rate recovered_by_recompute;
  Rate recovered_by_rollback;
  Rate unrecoverable;
  /// Trials whose fault never materialized (see TrialOutcome); the CI
  /// smoke gate requires this to be zero.
  std::uint64_t unclassified = 0;
  /// Trials that ended in Os::panic; the escalation stress gate requires
  /// this to be zero with the ladder on.
  std::uint64_t panicked_trials = 0;
  /// Ledger reconciliation verdict (filled by run_campaign when
  /// options.lineage is set; see reconcile_lineage).
  struct LineageSummary {
    bool enabled = false;
    bool ok = false;
    std::uint64_t faults = 0;          ///< lineage records across all trials
    std::uint64_t orphans = 0;         ///< records without a resolution
    std::uint64_t double_counted = 0;  ///< records resolved more than once
    std::uint64_t exposed_dropped = 0; ///< OS log drops (storm overload)
    /// Resolutions by stage, indexed like LineageStage (only the
    /// is_resolution() slots are ever nonzero).
    std::array<std::uint64_t, 16> resolutions{};
    /// Per-trial terminal labels tallied by Outcome; the reconciliation
    /// invariant demands equality with the Rate counts.
    std::array<std::uint64_t, kAllOutcomes.size()> terminals{};
    std::vector<std::string> errors;  ///< human-readable hard errors
  };
  LineageSummary lineage;

  [[nodiscard]] const Rate& rate(Outcome o) const;
};

struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Wilson score interval for k successes in n trials at critical value z
/// (1.96 = 95%). Well-behaved at k = 0 and k = n, unlike the normal
/// approximation.
[[nodiscard]] Interval wilson_interval(std::uint64_t k, std::uint64_t n,
                                       double z = 1.96);

/// Pure classification rule applied to each trial (unit-testable).
/// `errors_corrected` is the sum of ECC- and ABFT-corrected errors;
/// `recomputes`/`rollbacks` are the trial's successful ladder recoveries.
/// Precedence: a panic or unrepaired failure dominates, then wrong output,
/// then rollback > recompute > element correction (the deepest tier that
/// fired names the outcome), then benign.
[[nodiscard]] Outcome classify(abft::FtStatus status, bool output_correct,
                               bool panicked, std::uint64_t errors_corrected,
                               std::uint64_t recomputes = 0,
                               std::uint64_t rollbacks = 0);

using Progress = std::function<void(std::size_t done, std::size_t total)>;

/// The fault-free reference run every trial is judged against.
struct GoldenRun {
  sim::RunMetrics metrics;
  std::vector<double> result;
  std::uint64_t total_refs = 0;
};

/// Resolve CampaignOptions::chunk: the actual trials-per-chunk the pool
/// and the campaignd shard supervisor use (>= 1, deterministic for fixed
/// options).
[[nodiscard]] std::size_t resolve_chunk(std::size_t chunk, std::size_t trials,
                                        unsigned workers);

/// Execute the fault-free reference run for `opt`. Callers running several
/// campaigns in one process should compute every golden run up front,
/// before any trial pool exists: golden cycle counts are sensitive to host
/// heap layout (see TrialOutcome::sim_seconds), and pre-pool main-thread
/// allocation history is the same on every invocation.
[[nodiscard]] GoldenRun run_golden(const CampaignOptions& opt);

/// Run ONE trial of the campaign: everything trial `index` needs is
/// derived from opt.campaign_seed ^ index plus the shared golden run, so
/// any worker (thread, forked shard process, resumed sweep) reproduces
/// bit-identical deterministic fields for the same index.
[[nodiscard]] TrialOutcome run_trial(const CampaignOptions& opt,
                                     const GoldenRun& golden,
                                     std::uint32_t index);

/// Run the campaign: options.trials independent trials against `golden`
/// on max(1, options.threads) threads. `progress` (optional) is invoked
/// under a lock after each finished trial.
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& opt,
                                          const GoldenRun& golden,
                                          const Progress& progress = {});

/// Convenience: run_golden + run_campaign in one call.
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& opt,
                                          const Progress& progress = {});

/// One JSON object per line, deterministic fields only (see TrialOutcome).
void write_trial_jsonl(std::FILE* f, const CampaignOptions& opt,
                       const TrialOutcome& t);

/// The same record as write_trial_jsonl, returned as one newline-free
/// string (the campaignd workers ship lines over a pipe instead of a
/// FILE*).
[[nodiscard]] std::string trial_jsonl_line(const CampaignOptions& opt,
                                           const TrialOutcome& t);

/// The keystone cross-check (ISSUE 6): verify that the per-trial ledgers
/// partition 1:1 into the outcome taxonomy -- every injected fault has
/// exactly one lineage record with exactly one hardware resolution, every
/// trial sealed with the outcome the classifier assigned, and the sealed
/// terminal counts equal the Rate counts computed by the independent
/// tallying code. Any orphaned or double-counted record is reported in
/// `errors` (and makes ok false). Pure function of `result`; run_campaign
/// calls it automatically when options.lineage is set.
[[nodiscard]] CampaignResult::LineageSummary reconcile_lineage(
    const CampaignResult& result);

/// Stream one trial's ledger as JSONL: one object per fault record (its
/// stage events inlined), then one trial-scope summary object. The
/// "cycle" fields are host-heap-layout sensitive (see TrialOutcome);
/// tools/forensics.py `canon` strips them for determinism diffing.
void write_lineage_jsonl(std::FILE* f, const CampaignOptions& opt,
                         const TrialOutcome& t);

/// write_lineage_jsonl's records as a string (each line '\n'-terminated;
/// empty when the trial has no ledger).
[[nodiscard]] std::string lineage_jsonl_lines(const CampaignOptions& opt,
                                              const TrialOutcome& t);

}  // namespace abftecc::campaign
