// Mergeable trial aggregation (ISSUE 7): the single fold every campaign
// consumer -- run_campaign's taxonomy rates, tools/campaign's latency
// section, the lineage reconciliation, and campaignd's sharded sweeps --
// goes through.
//
// Merge algebra: every piece of state is either an unsigned integer
// (counts, integer cycle sums) or a max, so merge() is associative AND
// commutative *bit-exactly*: shard partials can arrive and fold in any
// completion order and the finalized report bytes cannot change. Derived
// floating-point quantities (fractions, Wilson intervals, histogram
// means) are computed only at read time from the merged integers.
// Latency samples (interrupt_to_recovery_cycles) are integer-valued cycle
// deltas, so they are accumulated as std::uint64_t; the double-typed sums
// the report prints are exact for any total below 2^53.
//
// Serialization: to_json() is a canonical single-line JSON object and
// from_json() parses it back bit-exactly -- the campaignd worker->
// supervisor wire format and the checkpoint partial-accumulator format.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace abftecc::obs {
class JsonValue;
class JsonWriter;
}  // namespace abftecc::obs

namespace abftecc::campaign {

class Accumulator {
 public:
  /// Latency histogram geometry: the fixed geometric ladder the campaign
  /// report has always used (first bound 64 cycles, x2 per bucket, 18
  /// bounds + 1 overflow bucket). Fixed across runs so shapes merge.
  static constexpr double kLatencyFirstBound = 64.0;
  static constexpr double kLatencyFactor = 2.0;
  static constexpr std::size_t kLatencyBounds = 18;
  static constexpr std::size_t kLatencyBuckets = kLatencyBounds + 1;
  /// Hard cap on retained lineage error strings (matches the historical
  /// reconcile_lineage cap).
  static constexpr std::size_t kMaxErrors = 32;

  struct Config {
    bool lineage = false;  ///< per-trial ledgers are present and checked
    bool latency = false;  ///< interrupt->recovery samples are recorded
  };

  /// Per-outcome simulated-cycle cost (the report's cycles_by_outcome).
  struct OutcomeCost {
    std::uint64_t trials = 0;
    std::uint64_t sum_cycles = 0;
    std::uint64_t max_cycles = 0;
  };

  Accumulator() = default;
  explicit Accumulator(Config c) : config_(c) {}
  explicit Accumulator(const CampaignOptions& opt)
      : config_{opt.lineage, opt.measure_latency} {}

  [[nodiscard]] const Config& config() const { return config_; }

  /// Fold one finished trial.
  void add(const TrialOutcome& t);

  /// Fold another accumulator in. Associative and commutative bit-exactly;
  /// configs must agree (enforced).
  void merge(const Accumulator& other);

  // --- merged state --------------------------------------------------------

  [[nodiscard]] std::uint64_t trials() const { return trials_; }
  [[nodiscard]] std::uint64_t outcome_count(Outcome o) const {
    return outcomes_[static_cast<std::size_t>(o)];
  }
  [[nodiscard]] Rate rate(Outcome o) const;
  [[nodiscard]] std::uint64_t unclassified() const { return unclassified_; }
  [[nodiscard]] std::uint64_t panicked() const { return panicked_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t exposed_dropped() const {
    return exposed_dropped_;
  }
  [[nodiscard]] double max_abs_error() const { return max_abs_error_; }
  [[nodiscard]] OutcomeCost cost(Outcome o) const {
    return costs_[static_cast<std::size_t>(o)];
  }

  // Latency histogram (Config::latency): integer cycle samples over the
  // fixed geometric ladder.
  [[nodiscard]] std::uint64_t latency_count() const { return latency_count_; }
  [[nodiscard]] std::uint64_t latency_sum() const { return latency_sum_; }
  [[nodiscard]] std::uint64_t latency_max() const { return latency_max_; }
  [[nodiscard]] std::uint64_t latency_bucket(std::size_t i) const {
    return latency_buckets_[i];
  }
  /// Inclusive upper bound of latency bucket i (i < kLatencyBounds).
  [[nodiscard]] static double latency_bound(std::size_t i);

  /// Rebuild the reconciliation verdict from the merged lineage tallies:
  /// the per-trial checks recorded by add() plus the partition invariant
  /// (sealed terminal counts == classified outcome counts).
  [[nodiscard]] CampaignResult::LineageSummary lineage_summary() const;

  /// Fill a CampaignResult's aggregate fields (rates, unclassified,
  /// panicked, lineage summary) from this accumulator.
  void finalize_into(CampaignResult& result) const;

  // --- serialization -------------------------------------------------------

  /// Canonical single-line JSON object (no trailing newline).
  [[nodiscard]] std::string to_json() const;
  /// Emit into an enclosing writer as an object value.
  void write_json(obs::JsonWriter& w) const;
  /// Parse a to_json() document. Returns false and fills `error` on
  /// malformed or version-mismatched input.
  [[nodiscard]] bool from_json(const obs::JsonValue& v, std::string* error);
  [[nodiscard]] static Accumulator of(const CampaignOptions& opt,
                                      const std::vector<TrialOutcome>& trials);

  friend bool operator==(const Accumulator& a, const Accumulator& b);

 private:
  void add_error(std::string msg);
  /// Keep errors_ sorted/unique/capped so bytes cannot depend on merge
  /// order.
  void normalize_errors();

  Config config_;
  std::uint64_t trials_ = 0;
  std::array<std::uint64_t, kAllOutcomes.size()> outcomes_{};
  std::uint64_t unclassified_ = 0;
  std::uint64_t panicked_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t exposed_dropped_ = 0;
  double max_abs_error_ = 0.0;
  std::array<OutcomeCost, kAllOutcomes.size()> costs_{};

  std::uint64_t latency_count_ = 0;
  std::uint64_t latency_sum_ = 0;
  std::uint64_t latency_max_ = 0;
  std::array<std::uint64_t, kLatencyBuckets> latency_buckets_{};

  // Lineage tallies (Config::lineage).
  std::uint64_t lineage_faults_ = 0;
  std::uint64_t lineage_orphans_ = 0;
  std::uint64_t lineage_double_counted_ = 0;
  std::array<std::uint64_t, 16> lineage_resolutions_{};
  std::array<std::uint64_t, kAllOutcomes.size()> lineage_terminals_{};
  std::vector<std::string> errors_;
};

}  // namespace abftecc::campaign
