#include "campaign/exhaustive.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ecc/secded.hpp"
#include "obs/json.hpp"

namespace abftecc::campaign::exhaustive {

namespace {

constexpr std::uint64_t kFixedWords[] = {
    0x0000000000000000ULL,
    0xffffffffffffffffULL,
    0x5555555555555555ULL,
    0xaaaaaaaaaaaaaaaaULL,
};
constexpr std::uint64_t kFixedWordCount =
    sizeof(kFixedWords) / sizeof(kFixedWords[0]);

}  // namespace

void Counts::merge(const Counts& other) {
  singles_total += other.singles_total;
  singles_corrected_exact += other.singles_corrected_exact;
  singles_miscorrected += other.singles_miscorrected;
  singles_detected += other.singles_detected;
  singles_missed += other.singles_missed;
  doubles_total += other.doubles_total;
  doubles_detected += other.doubles_detected;
  doubles_miscorrected += other.doubles_miscorrected;
  doubles_missed += other.doubles_missed;
  doubles_mutated += other.doubles_mutated;
}

std::uint64_t word_at(const Options& opt, std::uint64_t i) {
  if (opt.include_fixed_patterns && i < kFixedWordCount) return kFixedWords[i];
  // Each index reseeds its own splitmix-expanded stream, so word i is a
  // pure function of (seed, i) regardless of sweep order or thread count.
  const std::uint64_t derived =
      opt.include_fixed_patterns ? i - kFixedWordCount : i;
  Rng rng(opt.seed ^ (0x9e6c63d0876a3f61ULL + derived));
  return rng();
}

Counts enumerate_word(std::uint64_t data) {
  using ecc::DecodeStatus;
  using ecc::Secded;
  using ecc::SecdedWord;

  Counts c;
  const SecdedWord clean = Secded::encode(data);

  for (unsigned bit = 0; bit < Secded::kCodeBits; ++bit) {
    SecdedWord w = clean;
    Secded::flip_bit(w, bit);
    unsigned reported = Secded::kCodeBits;  // sentinel: never a valid position
    const DecodeStatus status = Secded::decode(w, &reported);
    ++c.singles_total;
    switch (status) {
      case DecodeStatus::kCorrected:
        if (reported == bit && w == clean) {
          ++c.singles_corrected_exact;
        } else {
          ++c.singles_miscorrected;
        }
        break;
      case DecodeStatus::kDetectedUncorrectable:
        ++c.singles_detected;
        break;
      case DecodeStatus::kOk:
        ++c.singles_missed;
        break;
    }
  }

  for (unsigned a = 0; a < Secded::kCodeBits; ++a) {
    for (unsigned b = a + 1; b < Secded::kCodeBits; ++b) {
      SecdedWord w = clean;
      Secded::flip_bit(w, a);
      Secded::flip_bit(w, b);
      const SecdedWord received = w;
      const DecodeStatus status = Secded::decode(w);
      ++c.doubles_total;
      switch (status) {
        case DecodeStatus::kDetectedUncorrectable:
          if (w == received) {
            ++c.doubles_detected;
          } else {
            ++c.doubles_mutated;
          }
          break;
        case DecodeStatus::kCorrected:
          ++c.doubles_miscorrected;
          break;
        case DecodeStatus::kOk:
          ++c.doubles_missed;
          break;
      }
    }
  }
  return c;
}

bool Result::ok() const {
  const std::uint64_t words = options.words;
  return counts.singles_total == kSinglesPerWord * words &&
         counts.singles_corrected_exact == kSinglesPerWord * words &&
         counts.singles_miscorrected == 0 && counts.singles_detected == 0 &&
         counts.singles_missed == 0 &&
         counts.doubles_total == kDoublesPerWord * words &&
         counts.doubles_detected == kDoublesPerWord * words &&
         counts.doubles_miscorrected == 0 && counts.doubles_missed == 0 &&
         counts.doubles_mutated == 0;
}

std::string Result::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", std::uint64_t{1});
  w.field("mode", "exhaustive_secded_72_64");
  w.field("words", options.words);
  w.field("seed", options.seed);
  w.field("fixed_patterns", options.include_fixed_patterns);
  w.field("singles_per_word", kSinglesPerWord);
  w.field("doubles_per_word", kDoublesPerWord);
  w.key("singles").begin_object();
  w.field("total", counts.singles_total);
  w.field("corrected_exact", counts.singles_corrected_exact);
  w.field("miscorrected", counts.singles_miscorrected);
  w.field("detected", counts.singles_detected);
  w.field("missed", counts.singles_missed);
  w.end_object();
  w.key("doubles").begin_object();
  w.field("total", counts.doubles_total);
  w.field("detected", counts.doubles_detected);
  w.field("miscorrected", counts.doubles_miscorrected);
  w.field("missed", counts.doubles_missed);
  w.field("mutated", counts.doubles_mutated);
  w.end_object();
  w.field("ok", ok());
  w.end_object();
  return w.take();
}

Result run(const Options& opt,
           const std::function<void(std::uint64_t, std::uint64_t)>& progress,
           const std::function<bool()>& should_abort) {
  Result result;
  result.options = opt;

  const std::uint64_t total = opt.words;
  if (total == 0) return result;

  unsigned threads = opt.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, total));

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> done{0};
  std::atomic<bool> aborted{false};
  std::vector<Counts> partials(threads);
  std::mutex hooks_mu;

  auto worker = [&](unsigned id) {
    for (;;) {
      if (aborted.load(std::memory_order_relaxed)) return;
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      partials[id].merge(enumerate_word(word_at(opt, i)));
      const std::uint64_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
      // The hooks are shared caller state; serialize their invocation
      // (as campaign::run_campaign does for its progress callback) so a
      // stateful callback cannot data-race on a multi-threaded sweep.
      if (progress || should_abort) {
        const std::lock_guard<std::mutex> lock(hooks_mu);
        if (progress) progress(n, total);
        if (should_abort && should_abort())
          aborted.store(true, std::memory_order_relaxed);
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }

  result.aborted = aborted.load(std::memory_order_relaxed);
  // Pure uint64 adds: any merge order yields the same bits, so the pool's
  // completion order cannot leak into the result.
  for (const Counts& p : partials) result.counts.merge(p);
  return result;
}

}  // namespace abftecc::campaign::exhaustive
