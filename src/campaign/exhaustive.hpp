// Exhaustive SECDED(72,64) fault-space enumeration (ISSUE 7).
//
// Monte-Carlo campaigns sample the fault space; this mode *covers* it.
// For each 64-bit data word swept, every one of the 72 single-bit flip
// positions and every one of the C(72,2) = 2556 unordered double-bit flip
// patterns is injected into the encoded codeword and pushed through the
// Hsiao decoder. The tallies are exact counts -- no Wilson intervals, no
// sampling error -- and the analytic guarantees of the odd-weight-column
// construction become hard equalities:
//
//   singles: corrected_exact == 72 * words, everything else zero
//   doubles: detected       == 2556 * words, everything else zero
//
// Counts are plain uint64 sums, so per-thread (or per-shard) partials
// merge associatively in any order; single- and multi-threaded sweeps of
// the same Options are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace abftecc::campaign::exhaustive {

/// One fully-enumerated fault space: `words` data words x (72 singles +
/// 2556 doubles) patterns each.
struct Options {
  /// Number of distinct 64-bit data words to sweep the full pattern space
  /// over. Word i is derived deterministically from `seed` (with optional
  /// canonical fixed patterns first; see include_fixed_patterns).
  std::uint64_t words = 16;
  /// Seed for the word-derivation stream.
  std::uint64_t seed = 7;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 1;
  /// Prepend the canonical adversarial words (0, ~0, 0x5555..., 0xAAAA...)
  /// before seed-derived words. They count toward `words`.
  bool include_fixed_patterns = true;
};

/// Exact tallies over the enumerated space. Every field is an unsigned
/// count, so merge() is bit-exactly associative and commutative.
struct Counts {
  // -- single-bit flip space (72 per word) ---------------------------------
  std::uint64_t singles_total = 0;
  /// decode() returned kCorrected, reported the injected position, and the
  /// codeword was restored bit-exactly.
  std::uint64_t singles_corrected_exact = 0;
  /// kCorrected but the reported position or restored word was wrong.
  std::uint64_t singles_miscorrected = 0;
  /// kDetectedUncorrectable on a single-bit flip (over-detection).
  std::uint64_t singles_detected = 0;
  /// kOk on a single-bit flip (missed error).
  std::uint64_t singles_missed = 0;

  // -- double-bit flip space (C(72,2) = 2556 per word) ---------------------
  std::uint64_t doubles_total = 0;
  /// kDetectedUncorrectable with the word left untouched: the guarantee.
  std::uint64_t doubles_detected = 0;
  /// kCorrected on a double-bit flip (silent miscorrection).
  std::uint64_t doubles_miscorrected = 0;
  /// kOk on a double-bit flip (missed error).
  std::uint64_t doubles_missed = 0;
  /// Detected but the received word was modified before being handed back.
  std::uint64_t doubles_mutated = 0;

  void merge(const Counts& other);

  friend bool operator==(const Counts&, const Counts&) = default;
};

/// Per-word pattern-space sizes (fixed by the (72,64) geometry).
inline constexpr std::uint64_t kSinglesPerWord = 72;
inline constexpr std::uint64_t kDoublesPerWord = 72 * 71 / 2;  // 2556

struct Result {
  Options options;
  Counts counts;
  /// True iff `should_abort` stopped the sweep early; counts then cover
  /// only the words finished before the abort and must not be reported
  /// as a full enumeration.
  bool aborted = false;

  /// True iff the analytic SECDED guarantees held exactly over the whole
  /// enumerated space.
  [[nodiscard]] bool ok() const;

  /// Canonical single-line JSON object (no trailing newline); identical
  /// bytes for any thread count.
  [[nodiscard]] std::string to_json() const;
};

/// The 64-bit data word enumerated at index i (0-based) for these options.
/// Exposed so shards/tests can reproduce the sweep piecewise.
[[nodiscard]] std::uint64_t word_at(const Options& opt, std::uint64_t i);

/// Enumerate the full space for one data word.
[[nodiscard]] Counts enumerate_word(std::uint64_t data);

/// Run the sweep. `progress`, when set, is called after each finished word
/// with (words_done, words_total); `should_abort`, when set, is polled at
/// the same cadence and abandons the sweep (Result::aborted) on true.
/// Both hooks are serialized under one internal mutex, so stateful
/// callbacks need no locking of their own even on multi-threaded sweeps.
[[nodiscard]] Result run(
    const Options& opt,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress = {},
    const std::function<bool()>& should_abort = {});

}  // namespace abftecc::campaign::exhaustive
