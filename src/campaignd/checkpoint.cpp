#include "campaignd/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.hpp"
#include "obs/jsonv.hpp"
#include "recovery/types.hpp"

namespace abftecc::campaignd {

namespace {

constexpr std::uint64_t kSchema = 1;

std::uint64_t checksum(std::string_view payload) {
  return recovery::fletcher64(
      reinterpret_cast<const std::byte*>(payload.data()), payload.size());
}

std::string chunk_path(const std::string& dir, std::uint32_t id) {
  char name[32];
  std::snprintf(name, sizeof(name), "chunk-%06u.json", id);
  return dir + "/" + name;
}

}  // namespace

bool make_directories(const std::string& path, std::string* error) {
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() && prefix != "." && prefix != "..") {
      if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
        if (error != nullptr)
          *error = "mkdir " + prefix + ": " + std::strerror(errno);
        return false;
      }
    }
    if (i < path.size()) prefix.push_back('/');
  }
  return true;
}

bool atomic_write_file(const std::string& path, std::string_view payload,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) {
    if (error != nullptr) *error = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = "write " + tmp + ": " + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    if (error != nullptr) *error = "fsync " + tmp + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr)
      *error = "rename " + tmp + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

namespace {

/// atomic_write_file with the Fletcher-64 checksum trailer checkpoint
/// files carry (verified_read strips and checks it).
bool atomic_write(const std::string& path, std::string_view payload,
                  std::string* error) {
  char trailer[40];
  std::snprintf(trailer, sizeof(trailer), "\nfletcher64 %016" PRIx64 "\n",
                checksum(payload));
  std::string body(payload);
  body += trailer;
  return atomic_write_file(path, body, error);
}

/// Read a checkpoint file and verify its checksum trailer. Returns the
/// payload (without trailer); any mismatch is a hard error.
bool verified_read(const std::string& path, std::string* payload,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  std::string body;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    body.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    if (error != nullptr) *error = "read " + path + ": I/O error";
    return false;
  }
  // Trailer: "\nfletcher64 <16 hex>\n" appended to the payload.
  constexpr std::size_t kTrailer = 1 + 11 + 16 + 1;
  if (body.size() < kTrailer ||
      body.compare(body.size() - kTrailer, 12, "\nfletcher64 ") != 0 ||
      body.back() != '\n') {
    if (error != nullptr)
      *error = "checkpoint " + path + ": missing checksum trailer";
    return false;
  }
  const std::string hex = body.substr(body.size() - 17, 16);
  char* end = nullptr;
  const std::uint64_t expect = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + 16) {
    if (error != nullptr)
      *error = "checkpoint " + path + ": malformed checksum trailer";
    return false;
  }
  body.resize(body.size() - kTrailer);
  if (checksum(body) != expect) {
    if (error != nullptr)
      *error = "checkpoint " + path +
               ": Fletcher-64 mismatch (corrupted or tampered)";
    return false;
  }
  *payload = std::move(body);
  return true;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string chunk_to_json(const ChunkRecord& rec) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema);
  w.field("id", static_cast<std::uint64_t>(rec.id));
  w.field("begin", rec.begin);
  w.field("end", rec.end);
  w.key("acc");
  rec.acc.write_json(w);
  w.key("trials").begin_array();
  for (const std::string& line : rec.trial_lines) w.value(line);
  w.end_array();
  w.field("lineage", rec.lineage_lines);
  w.end_object();
  return w.take();
}

bool chunk_from_json(std::string_view text, ChunkRecord* rec,
                     std::string* error) {
  const auto v = obs::json_parse(text, error);
  if (!v.has_value()) return false;
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!v->is_object()) return fail("chunk record: not a JSON object");
  if (v->u64("schema") != kSchema)
    return fail("chunk record: unsupported schema version");
  ChunkRecord out;
  out.id = static_cast<std::uint32_t>(v->u64("id"));
  out.begin = v->u64("begin");
  out.end = v->u64("end");
  const obs::JsonValue* acc = v->find("acc");
  if (acc == nullptr) return fail("chunk record: missing 'acc'");
  if (!out.acc.from_json(*acc, error)) return false;
  const obs::JsonValue* trials = v->find("trials");
  if (trials == nullptr || !trials->is_array())
    return fail("chunk record: missing 'trials' array");
  out.trial_lines.reserve(trials->as_array().size());
  for (const obs::JsonValue& line : trials->as_array()) {
    if (!line.is_string()) return fail("chunk record: non-string trial line");
    out.trial_lines.push_back(line.as_string());
  }
  out.lineage_lines = std::string(v->str("lineage"));
  if (out.end < out.begin ||
      out.trial_lines.size() != out.end - out.begin ||
      out.acc.trials() != out.end - out.begin)
    return fail("chunk record: inconsistent trial range");
  *rec = std::move(out);
  return true;
}

bool CampaignCheckpoint::open(const std::string& dir, std::uint64_t fingerprint,
                              std::uint64_t chunks, std::uint64_t trials,
                              std::uint64_t chunk_size, std::string* error) {
  dir_ = dir;
  loaded_.clear();
  if (!make_directories(dir, error)) return false;

  const std::string manifest_path = dir + "/manifest.json";
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema);
  w.field("fingerprint", fingerprint);
  w.field("chunks", chunks);
  w.field("trials", trials);
  w.field("chunk_size", chunk_size);
  w.end_object();
  const std::string manifest = w.take();

  if (file_exists(manifest_path)) {
    std::string existing;
    if (!verified_read(manifest_path, &existing, error)) return false;
    if (existing != manifest) {
      if (error != nullptr)
        *error = "checkpoint " + dir +
                 ": manifest mismatch -- this directory belongs to a "
                 "different job or chunk geometry";
      return false;
    }
  } else if (!atomic_write(manifest_path, manifest, error)) {
    return false;
  }

  for (std::uint64_t id = 0; id < chunks; ++id) {
    const std::string path = chunk_path(dir, static_cast<std::uint32_t>(id));
    if (!file_exists(path)) continue;
    std::string payload;
    if (!verified_read(path, &payload, error)) return false;
    ChunkRecord rec;
    if (!chunk_from_json(payload, &rec, error)) return false;
    if (rec.id != id) {
      if (error != nullptr)
        *error = "checkpoint " + path + ": chunk id does not match filename";
      return false;
    }
    loaded_.emplace(rec.id, std::move(rec));
  }
  return true;
}

bool CampaignCheckpoint::store(const ChunkRecord& rec, std::string* error) {
  return atomic_write(chunk_path(dir_, rec.id), chunk_to_json(rec), error);
}

}  // namespace abftecc::campaignd
