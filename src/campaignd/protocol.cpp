#include "campaignd/protocol.hpp"

#include "obs/json.hpp"
#include "obs/jsonv.hpp"
#include "recovery/types.hpp"

namespace abftecc::campaignd {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

std::string_view row_policy_slug(memsim::RowBufferPolicy p) {
  return p == memsim::RowBufferPolicy::kClosedPage ? "closed_page"
                                                   : "open_page";
}

std::optional<memsim::RowBufferPolicy> row_policy_from_slug(
    std::string_view s) {
  if (s == "open_page") return memsim::RowBufferPolicy::kOpenPage;
  if (s == "closed_page") return memsim::RowBufferPolicy::kClosedPage;
  return std::nullopt;
}

}  // namespace

std::string_view kernel_slug(sim::Kernel k) {
  switch (k) {
    case sim::Kernel::kDgemm: return "dgemm";
    case sim::Kernel::kCholesky: return "cholesky";
    case sim::Kernel::kCg: return "cg";
    case sim::Kernel::kHpl: return "hpl";
  }
  return "?";
}

std::optional<sim::Kernel> kernel_from_slug(std::string_view s) {
  if (s == "dgemm") return sim::Kernel::kDgemm;
  if (s == "cholesky") return sim::Kernel::kCholesky;
  if (s == "cg") return sim::Kernel::kCg;
  if (s == "hpl") return sim::Kernel::kHpl;
  return std::nullopt;
}

std::string_view strategy_slug(sim::Strategy s) {
  switch (s) {
    case sim::Strategy::kNoEcc: return "no_ecc";
    case sim::Strategy::kWholeChipkill: return "w_ck";
    case sim::Strategy::kPartialChipkillNoEcc: return "p_ck_no";
    case sim::Strategy::kWholeSecded: return "w_sd";
    case sim::Strategy::kPartialSecdedNoEcc: return "p_sd_no";
    case sim::Strategy::kPartialChipkillSecded: return "p_ck_sd";
  }
  return "?";
}

std::optional<sim::Strategy> strategy_from_slug(std::string_view s) {
  if (s == "no_ecc") return sim::Strategy::kNoEcc;
  if (s == "w_ck") return sim::Strategy::kWholeChipkill;
  if (s == "p_ck_no") return sim::Strategy::kPartialChipkillNoEcc;
  if (s == "w_sd") return sim::Strategy::kWholeSecded;
  if (s == "p_sd_no") return sim::Strategy::kPartialSecdedNoEcc;
  if (s == "p_ck_sd") return sim::Strategy::kPartialChipkillSecded;
  return std::nullopt;
}

std::string_view fault_slug(campaign::FaultKind k) {
  return to_string(k);  // single_bit | double_bit | chip_kill
}

std::optional<campaign::FaultKind> fault_from_slug(std::string_view s) {
  if (s == "single_bit") return campaign::FaultKind::kSingleBit;
  if (s == "double_bit") return campaign::FaultKind::kDoubleBit;
  if (s == "chip_kill") return campaign::FaultKind::kChipKill;
  return std::nullopt;
}

campaign::CampaignOptions default_campaign_options() {
  campaign::CampaignOptions opt;
  opt.platform.strategy = sim::Strategy::kPartialChipkillSecded;
  opt.platform.dgemm_dim = 96;
  opt.platform.cholesky_dim = 96;
  opt.platform.cg_dim = 160;
  opt.platform.cg_iterations = 3;
  opt.platform.hpl_dim = 96;
  return opt;
}

void write_job_json(JsonWriter& w, const JobSpec& spec) {
  const campaign::CampaignOptions& o = spec.options;
  const sim::PlatformOptions& p = o.platform;
  w.begin_object();
  w.field("schema", kSchemaVersion);
  w.field("name", spec.name);
  w.field("shards", spec.shards);
  w.field("exhaustive", spec.exhaustive);
  w.key("exhaustive_options").begin_object();
  w.field("words", spec.exhaustive_options.words);
  w.field("seed", spec.exhaustive_options.seed);
  w.field("threads", spec.exhaustive_options.threads);
  w.field("fixed_patterns", spec.exhaustive_options.include_fixed_patterns);
  w.end_object();
  w.key("options").begin_object();
  w.field("kernel", kernel_slug(o.kernel));
  w.field("trials", static_cast<std::uint64_t>(o.trials));
  w.field("threads", o.threads);
  w.field("campaign_seed", o.campaign_seed);
  w.field("tolerance", o.tolerance);
  w.field("measure_latency", o.measure_latency);
  w.field("chunk", static_cast<std::uint64_t>(o.chunk));
  w.field("lineage", o.lineage);
  w.key("fault").begin_object();
  w.field("kind", fault_slug(o.fault.kind));
  w.field("chip_pattern", static_cast<std::uint64_t>(o.fault.chip_pattern));
  w.field("count", o.fault.count);
  w.field("storm_all_ranges", o.fault.storm_all_ranges);
  w.end_object();
  w.key("platform").begin_object();
  w.field("strategy", strategy_slug(p.strategy));
  w.field("dgemm_dim", static_cast<std::uint64_t>(p.dgemm_dim));
  w.field("cholesky_dim", static_cast<std::uint64_t>(p.cholesky_dim));
  w.field("cg_dim", static_cast<std::uint64_t>(p.cg_dim));
  w.field("cg_iterations", static_cast<std::uint64_t>(p.cg_iterations));
  w.field("hpl_dim", static_cast<std::uint64_t>(p.hpl_dim));
  w.field("hpl_processes", static_cast<std::uint64_t>(p.hpl_processes));
  w.field("verify_period", static_cast<std::uint64_t>(p.verify_period));
  w.field("hardware_assisted", p.hardware_assisted);
  w.field("use_dgms", p.use_dgms);
  w.field("seed", p.seed);
  w.field("cache_scale", p.cache_scale);
  w.field("row_policy", row_policy_slug(p.row_policy));
  w.field("ladder", p.ladder);
  w.field("exposed_log_capacity",
          static_cast<std::uint64_t>(p.exposed_log_capacity));
  w.field("repromote_threshold", p.repromote_threshold);
  w.key("recovery").begin_object();
  w.field("enable_recompute", p.recovery.enable_recompute);
  w.field("max_recompute_attempts", p.recovery.max_recompute_attempts);
  w.field("enable_rollback", p.recovery.enable_rollback);
  w.field("max_rollback_attempts", p.recovery.max_rollback_attempts);
  w.field("checkpoint_period",
          static_cast<std::uint64_t>(p.recovery.checkpoint_period));
  w.end_object();
  w.end_object();  // platform
  w.end_object();  // options
  w.end_object();
}

std::string job_to_json(const JobSpec& spec) {
  JsonWriter w;
  write_job_json(w, spec);
  return w.take();
}

bool job_from_json(const JsonValue& v, JobSpec* spec, std::string* error) {
  auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (!v.is_object()) return fail("job spec: not a JSON object");
  if (v.u64("schema") != kSchemaVersion)
    return fail("job spec: unsupported schema version");

  JobSpec out;
  out.name = std::string(v.str("name", out.name));
  out.shards = static_cast<unsigned>(v.u64("shards", out.shards));
  out.exhaustive = v.boolean("exhaustive", out.exhaustive);
  if (const JsonValue* e = v.find("exhaustive_options"); e != nullptr) {
    out.exhaustive_options.words = e->u64("words", out.exhaustive_options.words);
    out.exhaustive_options.seed = e->u64("seed", out.exhaustive_options.seed);
    out.exhaustive_options.threads =
        static_cast<unsigned>(e->u64("threads", out.exhaustive_options.threads));
    out.exhaustive_options.include_fixed_patterns = e->boolean(
        "fixed_patterns", out.exhaustive_options.include_fixed_patterns);
  }

  const JsonValue* o = v.find("options");
  if (o == nullptr || !o->is_object())
    return fail("job spec: missing 'options' object");
  campaign::CampaignOptions& opt = out.options;
  const auto kernel = kernel_from_slug(o->str("kernel", "dgemm"));
  if (!kernel.has_value()) return fail("job spec: unknown kernel slug");
  opt.kernel = *kernel;
  opt.trials = static_cast<std::size_t>(o->u64("trials", opt.trials));
  opt.threads = static_cast<unsigned>(o->u64("threads", opt.threads));
  opt.campaign_seed = o->u64("campaign_seed", opt.campaign_seed);
  opt.tolerance = o->num("tolerance", opt.tolerance);
  opt.measure_latency = o->boolean("measure_latency", opt.measure_latency);
  opt.chunk = static_cast<std::size_t>(o->u64("chunk", opt.chunk));
  opt.lineage = o->boolean("lineage", opt.lineage);

  if (const JsonValue* f = o->find("fault"); f != nullptr) {
    const auto kind = fault_from_slug(f->str("kind", "single_bit"));
    if (!kind.has_value()) return fail("job spec: unknown fault kind slug");
    opt.fault.kind = *kind;
    opt.fault.chip_pattern = static_cast<std::uint8_t>(
        f->u64("chip_pattern", opt.fault.chip_pattern));
    opt.fault.count = static_cast<unsigned>(f->u64("count", opt.fault.count));
    opt.fault.storm_all_ranges =
        f->boolean("storm_all_ranges", opt.fault.storm_all_ranges);
  }

  if (const JsonValue* p = o->find("platform"); p != nullptr) {
    sim::PlatformOptions& pf = opt.platform;
    const auto strategy = strategy_from_slug(p->str("strategy", "p_ck_sd"));
    if (!strategy.has_value()) return fail("job spec: unknown strategy slug");
    pf.strategy = *strategy;
    pf.dgemm_dim = static_cast<std::size_t>(p->u64("dgemm_dim", pf.dgemm_dim));
    pf.cholesky_dim =
        static_cast<std::size_t>(p->u64("cholesky_dim", pf.cholesky_dim));
    pf.cg_dim = static_cast<std::size_t>(p->u64("cg_dim", pf.cg_dim));
    pf.cg_iterations =
        static_cast<std::size_t>(p->u64("cg_iterations", pf.cg_iterations));
    pf.hpl_dim = static_cast<std::size_t>(p->u64("hpl_dim", pf.hpl_dim));
    pf.hpl_processes =
        static_cast<std::size_t>(p->u64("hpl_processes", pf.hpl_processes));
    pf.verify_period =
        static_cast<std::size_t>(p->u64("verify_period", pf.verify_period));
    pf.hardware_assisted =
        p->boolean("hardware_assisted", pf.hardware_assisted);
    pf.use_dgms = p->boolean("use_dgms", pf.use_dgms);
    pf.seed = p->u64("seed", pf.seed);
    pf.cache_scale = static_cast<unsigned>(p->u64("cache_scale",
                                                  pf.cache_scale));
    const auto policy = row_policy_from_slug(p->str("row_policy", "open_page"));
    if (!policy.has_value()) return fail("job spec: unknown row policy slug");
    pf.row_policy = *policy;
    pf.ladder = p->boolean("ladder", pf.ladder);
    pf.exposed_log_capacity = static_cast<std::size_t>(
        p->u64("exposed_log_capacity", pf.exposed_log_capacity));
    pf.repromote_threshold = static_cast<unsigned>(
        p->u64("repromote_threshold", pf.repromote_threshold));
    if (const JsonValue* r = p->find("recovery"); r != nullptr) {
      pf.recovery.enable_recompute =
          r->boolean("enable_recompute", pf.recovery.enable_recompute);
      pf.recovery.max_recompute_attempts = static_cast<unsigned>(r->u64(
          "max_recompute_attempts", pf.recovery.max_recompute_attempts));
      pf.recovery.enable_rollback =
          r->boolean("enable_rollback", pf.recovery.enable_rollback);
      pf.recovery.max_rollback_attempts = static_cast<unsigned>(
          r->u64("max_rollback_attempts", pf.recovery.max_rollback_attempts));
      pf.recovery.checkpoint_period = static_cast<std::size_t>(
          r->u64("checkpoint_period", pf.recovery.checkpoint_period));
    }
  }

  *spec = std::move(out);
  return true;
}

std::uint64_t job_fingerprint(const JobSpec& spec) {
  // The client label is presentation, not configuration: two submissions
  // that differ only in name may share a checkpoint.
  JobSpec canon = spec;
  canon.name.clear();
  const std::string bytes = job_to_json(canon);
  return recovery::fletcher64(reinterpret_cast<const std::byte*>(bytes.data()),
                              bytes.size());
}

}  // namespace abftecc::campaignd
