// Campaignd wire types (ISSUE 7): the job spec a client submits, its
// canonical JSON round-trip, and the slug tables shared by the daemon,
// the client library, and the CLIs.
//
// The protocol is newline-delimited JSON over a Unix-domain stream
// socket: one request object per line, one response object per line.
// JobSpec's serialization doubles as the daemon's durable spool format
// and (minus the name) the checkpoint fingerprint input, so it is
// canonical: fixed key order, integers emitted as integers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "campaign/campaign.hpp"
#include "campaign/exhaustive.hpp"

namespace abftecc::obs {
class JsonValue;
class JsonWriter;
}  // namespace abftecc::obs

namespace abftecc::campaignd {

/// Job-spec / spool / checkpoint schema version (the durable formats).
inline constexpr std::uint64_t kSchemaVersion = 1;

/// Request/response envelope version. Every request and every response
/// carries `"protocol": kProtocolVersion`; both sides reject a mismatched
/// (or, for responses, missing) value with a clear error instead of
/// guessing at unknown JSON. Bump when the envelope itself -- op names,
/// reply shapes -- changes incompatibly; kSchemaVersion covers the job
/// payload independently.
///
/// v2 (ISSUE 10): adds the live telemetry plane -- `metrics` (OpenMetrics
/// exposition + time-series rings) and `subscribe` (a stream of per-job
/// progress event lines ending in a `"done": true` line, the one op whose
/// reply is more than a single line), richer `ping` (version / uptime_s /
/// job counts). v1 requests are still *shaped* identically, but a v1
/// peer would not survive a subscribe stream, hence the bump.
inline constexpr std::uint64_t kProtocolVersion = 2;

/// Human-readable daemon version reported by `ping` (tracks the protocol
/// version; bump the minor for behavior-only server changes).
inline constexpr std::string_view kServerVersion = "campaignd/2.0";

// -- slug tables (stable CLI/wire names) ------------------------------------

[[nodiscard]] std::string_view kernel_slug(sim::Kernel k);
[[nodiscard]] std::optional<sim::Kernel> kernel_from_slug(std::string_view s);
[[nodiscard]] std::string_view strategy_slug(sim::Strategy s);
[[nodiscard]] std::optional<sim::Strategy> strategy_from_slug(
    std::string_view s);
[[nodiscard]] std::string_view fault_slug(campaign::FaultKind k);
[[nodiscard]] std::optional<campaign::FaultKind> fault_from_slug(
    std::string_view s);

/// The campaign-friendly platform defaults every campaign front end
/// (tools/campaign, campaignctl, the daemon) starts from: shrunken
/// kernel inputs so large sweeps stay fast (a trial costs one full
/// simulated run). Identical to the historical tools/campaign defaults.
[[nodiscard]] campaign::CampaignOptions default_campaign_options();

/// One batch of work a client submits to the daemon.
struct JobSpec {
  /// Client-chosen label (reported back in status lines); need not be
  /// unique -- the daemon assigns the job id.
  std::string name = "campaign";
  /// Monte-Carlo sweep configuration (ignored when exhaustive is set).
  campaign::CampaignOptions options = default_campaign_options();
  /// Worker processes to shard the trial range over.
  unsigned shards = 2;
  /// Run the exhaustive SECDED(72,64) enumeration instead of a
  /// Monte-Carlo sweep.
  bool exhaustive = false;
  campaign::exhaustive::Options exhaustive_options;
};

/// Canonical single-line JSON object for a JobSpec (no trailing newline).
[[nodiscard]] std::string job_to_json(const JobSpec& spec);
void write_job_json(obs::JsonWriter& w, const JobSpec& spec);

/// Parse job_to_json() output (tolerates missing optional members by
/// keeping defaults). Returns false and fills `error` on malformed or
/// version-mismatched input.
[[nodiscard]] bool job_from_json(const obs::JsonValue& v, JobSpec* spec,
                                 std::string* error);

/// Fletcher-64 fingerprint of everything that determines a job's results
/// (the canonical spec JSON minus the client label). A checkpoint written
/// under one fingerprint refuses to resume a job with another: resuming a
/// different sweep from foreign partials would corrupt it silently.
[[nodiscard]] std::uint64_t job_fingerprint(const JobSpec& spec);

}  // namespace abftecc::campaignd
