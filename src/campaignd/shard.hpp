// Multi-process sharded campaign execution (ISSUE 7).
//
// run_sharded() splits a job's trial range into chunks and runs them on
// `shards` forked worker PROCESSES (not threads): each worker inherits
// the golden run by fork(), executes one chunk at a time, and ships the
// finished ChunkRecord back over its socketpair as one JSON line.
// Scheduling is pure work-stealing self-scheduling -- workers pull the
// next pending chunk whenever they go idle, so a slow or killed shard
// never strands work: chunks in flight on a dead worker (EOF on its
// pipe) are put back on the queue and picked up by the survivors, and
// the dead slot is respawned while the respawn budget lasts.
//
// Determinism: trial i derives everything from campaign_seed ^ i, so
// WHICH worker runs a chunk cannot affect its bytes; the supervisor
// assembles per-trial output lines in chunk order, making the combined
// JSONL byte-identical for any shard count -- including shards=1 and the
// in-process thread pool of campaign::run_campaign.
//
// With ShardOptions::checkpoint_dir set, every finished chunk is
// persisted through CampaignCheckpoint before it is acknowledged, and a
// rerun over the same directory (resume after SIGKILL) replays verified
// chunks from disk instead of re-executing them -- byte-identical to the
// uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/accumulator.hpp"
#include "campaign/campaign.hpp"

namespace abftecc::campaignd {

/// One worker's liveness snapshot for a ShardPulse.
struct WorkerBeat {
  int pid = -1;
  /// Chunk id in flight on this worker, or -1 when idle.
  std::int64_t chunk = -1;
};

/// Supervisor heartbeat: emitted on every poll pass (~200 ms cadence) so
/// a live observer (campaignd's telemetry plane) can report worker
/// liveness and rescue/respawn counts without touching the result path.
struct ShardPulse {
  std::vector<WorkerBeat> workers;
  unsigned workers_spawned = 0;
  unsigned workers_died = 0;
  unsigned respawns_left = 0;
  std::uint64_t chunks_done = 0;
  std::uint64_t chunks_total = 0;
};

struct ShardOptions {
  /// Worker processes. 1 still forks (one worker) -- the output contract
  /// is identical for any value.
  unsigned shards = 2;
  /// Trials per chunk; 0 = campaign::resolve_chunk's auto size.
  std::size_t chunk = 0;
  /// Progress checkpoint directory; empty = no checkpointing.
  std::string checkpoint_dir;
  /// Job fingerprint stamped into the checkpoint manifest (see
  /// protocol.hpp); ignored when checkpoint_dir is empty.
  std::uint64_t fingerprint = 0;
  /// Respawn budget for dead workers across the whole sweep.
  unsigned max_respawns = 4;
  /// Invoked after each finished chunk with (trials_done, trials_total).
  campaign::Progress progress;
  /// Invoked after each finished chunk with the merged-so-far accumulator
  /// (read-only; live outcome-mix telemetry reads counts from it).
  std::function<void(const campaign::Accumulator&)> stats;
  /// Invoked on every supervisor poll pass with a liveness snapshot.
  std::function<void(const ShardPulse&)> pulse;
  /// Invoked on every supervisor poll pass (the daemon services its
  /// control socket here so clients get answered mid-job).
  std::function<void()> service;
  /// Polled between chunks; returning true abandons the sweep (finished
  /// chunks stay checkpointed, the ShardOutcome reports aborted).
  std::function<bool()> should_abort;
};

struct ShardOutcome {
  bool ok = false;
  bool aborted = false;
  std::string error;
  /// Merged over all chunks (completion order cannot change the bytes).
  campaign::Accumulator acc;
  /// One write_trial_jsonl line per trial, in trial-index order.
  std::vector<std::string> trial_lines;
  /// Concatenated lineage JSONL in trial-index order ('' if lineage off).
  std::string lineage_lines;
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_resumed = 0;   ///< replayed from the checkpoint
  std::uint64_t chunks_executed = 0;  ///< run by workers this invocation
  unsigned workers_spawned = 0;
  unsigned workers_died = 0;
};

/// Run `opt.trials` trials sharded over worker processes. The golden run
/// must be computed by the caller BEFORE this call (pre-fork, so every
/// worker inherits the identical reference; see campaign::run_golden).
[[nodiscard]] ShardOutcome run_sharded(const campaign::CampaignOptions& opt,
                                       const campaign::GoldenRun& golden,
                                       const ShardOptions& shard_opt);

}  // namespace abftecc::campaignd
