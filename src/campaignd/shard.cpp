#include "campaignd/shard.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>

#include "campaignd/checkpoint.hpp"

namespace abftecc::campaignd {

namespace {

/// Append all of `data` to `fd`, retrying on EINTR and suppressing
/// SIGPIPE (a dead worker must surface as an error, not kill us).
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking read of one '\n'-terminated line. Returns false on EOF/error.
bool read_line(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    if (c == '\n') return true;
    line->push_back(c);
  }
}

/// Worker process main loop: execute chunks the supervisor assigns until
/// it says exit (or hangs up). Never returns.
[[noreturn]] void worker_main(int fd, const campaign::CampaignOptions& opt,
                              const campaign::GoldenRun& golden) {
  std::string line;
  while (read_line(fd, &line)) {
    if (line == "exit") break;
    unsigned id = 0;
    unsigned long long begin = 0, end = 0;
    if (std::sscanf(line.c_str(), "chunk %u %llu %llu", &id, &begin, &end) !=
        3)
      break;
    ChunkRecord rec;
    rec.id = id;
    rec.begin = begin;
    rec.end = end;
    rec.acc = campaign::Accumulator(opt);
    rec.trial_lines.reserve(static_cast<std::size_t>(end - begin));
    for (unsigned long long i = begin; i < end; ++i) {
      const campaign::TrialOutcome t =
          campaign::run_trial(opt, golden, static_cast<std::uint32_t>(i));
      rec.acc.add(t);
      rec.trial_lines.push_back(campaign::trial_jsonl_line(opt, t));
      if (opt.lineage)
        rec.lineage_lines += campaign::lineage_jsonl_lines(opt, t);
    }
    std::string reply = chunk_to_json(rec);
    reply += '\n';
    if (!send_all(fd, reply)) break;
  }
  ::close(fd);
  std::_Exit(0);
}

struct Worker {
  pid_t pid = -1;
  int fd = -1;
  std::string inbuf;
  /// Chunk id in flight, or -1 when idle.
  std::int64_t chunk = -1;
};

}  // namespace

ShardOutcome run_sharded(const campaign::CampaignOptions& opt,
                         const campaign::GoldenRun& golden,
                         const ShardOptions& shard_opt) {
  ShardOutcome out;
  out.acc = campaign::Accumulator(opt);

  const unsigned shards = std::max(1u, shard_opt.shards);
  const std::size_t chunk_size = campaign::resolve_chunk(
      shard_opt.chunk != 0 ? shard_opt.chunk : opt.chunk, opt.trials, shards);
  const std::uint64_t trials = opt.trials;
  const std::uint64_t n_chunks =
      trials == 0 ? 0 : (trials + chunk_size - 1) / chunk_size;
  out.chunks_total = n_chunks;

  std::map<std::uint32_t, ChunkRecord> results;
  CampaignCheckpoint checkpoint;
  const bool use_checkpoint = !shard_opt.checkpoint_dir.empty();
  if (use_checkpoint) {
    if (!checkpoint.open(shard_opt.checkpoint_dir, shard_opt.fingerprint,
                         n_chunks, trials, chunk_size, &out.error))
      return out;
    for (const auto& [id, rec] : checkpoint.loaded()) {
      out.acc.merge(rec.acc);
      results.emplace(id, rec);
      ++out.chunks_resumed;
    }
  }

  std::deque<std::uint32_t> pending;
  for (std::uint64_t id = 0; id < n_chunks; ++id)
    if (results.find(static_cast<std::uint32_t>(id)) == results.end())
      pending.push_back(static_cast<std::uint32_t>(id));

  std::uint64_t trials_done = 0;
  for (const auto& [id, rec] : results) trials_done += rec.end - rec.begin;
  if (shard_opt.progress && trials_done > 0)
    shard_opt.progress(trials_done, trials);

  std::vector<Worker> workers;
  unsigned respawns_left = shard_opt.max_respawns;

  auto spawn = [&]() -> bool {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      out.error = std::string("socketpair: ") + std::strerror(errno);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      out.error = std::string("fork: ") + std::strerror(errno);
      ::close(sv[0]);
      ::close(sv[1]);
      return false;
    }
    if (pid == 0) {
      ::close(sv[0]);
      for (const Worker& w : workers)
        if (w.fd >= 0) ::close(w.fd);
      worker_main(sv[1], opt, golden);  // noreturn
    }
    ::close(sv[1]);
    Worker w;
    w.pid = pid;
    w.fd = sv[0];
    workers.push_back(w);
    ++out.workers_spawned;
    return true;
  };

  const unsigned initial =
      static_cast<unsigned>(std::min<std::uint64_t>(shards, pending.size()));
  for (unsigned i = 0; i < initial; ++i)
    if (!spawn()) return out;

  auto reap = [&](Worker& w) {
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    if (w.pid > 0) {
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
  };

  auto shutdown_workers = [&]() {
    for (Worker& w : workers)
      if (w.fd >= 0) send_all(w.fd, "exit\n");
    for (Worker& w : workers) reap(w);
    workers.clear();
  };

  auto finish_chunk = [&](ChunkRecord rec) {
    trials_done += rec.end - rec.begin;
    out.acc.merge(rec.acc);
    ++out.chunks_executed;
    results.emplace(rec.id, std::move(rec));
    if (shard_opt.progress) shard_opt.progress(trials_done, trials);
    if (shard_opt.stats) shard_opt.stats(out.acc);
  };

  auto send_pulse = [&]() {
    if (!shard_opt.pulse) return;
    ShardPulse p;
    p.workers.reserve(workers.size());
    for (const Worker& w : workers)
      if (w.fd >= 0) p.workers.push_back(WorkerBeat{w.pid, w.chunk});
    p.workers_spawned = out.workers_spawned;
    p.workers_died = out.workers_died;
    p.respawns_left = respawns_left;
    p.chunks_done = results.size();
    p.chunks_total = n_chunks;
    shard_opt.pulse(p);
  };

  while (results.size() < n_chunks) {
    if (shard_opt.should_abort && shard_opt.should_abort()) {
      out.aborted = true;
      shutdown_workers();
      out.error = "aborted";
      return out;
    }

    // Hand every idle worker the next pending chunk (dynamic
    // self-scheduling: this IS the work stealing -- a fast worker drains
    // chunks a slow one never claimed).
    for (Worker& w : workers) {
      if (w.fd < 0 || w.chunk >= 0 || pending.empty()) continue;
      const std::uint32_t id = pending.front();
      const std::uint64_t begin = static_cast<std::uint64_t>(id) * chunk_size;
      const std::uint64_t end = std::min<std::uint64_t>(begin + chunk_size,
                                                        trials);
      char cmd[64];
      std::snprintf(cmd, sizeof(cmd), "chunk %u %llu %llu\n", id,
                    static_cast<unsigned long long>(begin),
                    static_cast<unsigned long long>(end));
      if (!send_all(w.fd, cmd)) continue;  // dead: poll will report it
      pending.pop_front();
      w.chunk = id;
    }

    std::vector<pollfd> fds;
    fds.reserve(workers.size());
    for (const Worker& w : workers)
      if (w.fd >= 0) fds.push_back({w.fd, POLLIN, 0});
    if (fds.empty()) {
      out.error = "all workers dead with " + std::to_string(pending.size()) +
                  " chunk(s) pending and no respawn budget left";
      shutdown_workers();
      return out;
    }

    const int ready = ::poll(fds.data(), fds.size(), 200);
    send_pulse();
    if (shard_opt.service) shard_opt.service();
    if (ready < 0) {
      if (errno == EINTR) continue;
      out.error = std::string("poll: ") + std::strerror(errno);
      shutdown_workers();
      return out;
    }
    if (ready == 0) continue;

    for (const pollfd& p : fds) {
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      auto it = std::find_if(workers.begin(), workers.end(),
                             [&](const Worker& w) { return w.fd == p.fd; });
      if (it == workers.end()) continue;
      Worker& w = *it;

      // One read per poll pass: poll() is level-triggered, so any bytes
      // left in the socket re-arm POLLIN on the next pass (a drain loop
      // on a blocking fd could block on an exactly-buffer-sized read).
      char buf[1 << 16];
      const ssize_t n = ::read(w.fd, buf, sizeof(buf));
      if (n > 0) w.inbuf.append(buf, static_cast<std::size_t>(n));
      // Drain complete reply lines.
      std::size_t pos;
      while ((pos = w.inbuf.find('\n')) != std::string::npos) {
        const std::string line = w.inbuf.substr(0, pos);
        w.inbuf.erase(0, pos + 1);
        ChunkRecord rec;
        std::string err;
        if (!chunk_from_json(line, &rec, &err) ||
            static_cast<std::int64_t>(rec.id) != w.chunk) {
          out.error = "worker sent a malformed chunk record: " + err;
          shutdown_workers();
          return out;
        }
        if (use_checkpoint && !checkpoint.store(rec, &out.error)) {
          shutdown_workers();
          return out;
        }
        w.chunk = -1;
        finish_chunk(std::move(rec));
      }

      const bool dead = n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN);
      if (dead) {
        // Worker died (EOF before "exit"): its in-flight chunk goes back
        // on the queue for the survivors; respawn the slot while the
        // budget lasts.
        ++out.workers_died;
        if (w.chunk >= 0) {
          pending.push_front(static_cast<std::uint32_t>(w.chunk));
          w.chunk = -1;
        }
        reap(w);
        workers.erase(it);
        if (respawns_left > 0 && !pending.empty()) {
          --respawns_left;
          if (!spawn()) {
            shutdown_workers();
            return out;
          }
        }
        break;  // fds/workers changed; rebuild the poll set
      }
    }
  }

  shutdown_workers();

  // Assemble output lines in chunk (== trial-index) order; the
  // accumulator was merged in completion order, which its integer-only
  // algebra makes bit-identical to any other order.
  for (auto& [id, rec] : results) {
    for (std::string& line : rec.trial_lines)
      out.trial_lines.push_back(std::move(line));
    out.lineage_lines += rec.lineage_lines;
  }
  if (out.trial_lines.size() != trials) {
    out.error = "assembled " + std::to_string(out.trial_lines.size()) +
                " trial lines for " + std::to_string(trials) + " trials";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace abftecc::campaignd
