// Client side of the campaignd protocol (ISSUE 7): a thin blocking
// connection speaking one-JSON-line-per-request over the daemon's
// Unix-domain socket, with typed helpers for every op. Used by
// tools/campaignctl and the end-to-end tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "campaignd/protocol.hpp"
#include "obs/jsonv.hpp"

namespace abftecc::campaignd {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon's socket. Returns false and fills `error`.
  [[nodiscard]] bool connect(const std::string& socket_path,
                             std::string* error);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send one request line and block for its one response line. Returns
  /// nullopt (and fills `error`) on transport or parse failure; protocol
  /// failures come back as a parsed {"ok":false,...} object.
  [[nodiscard]] std::optional<obs::JsonValue> call(const std::string& request,
                                                   std::string* error);

  // Typed helpers; all return nullopt on failure and fill `error` with
  // either the transport failure or the daemon's "error" member.
  [[nodiscard]] bool ping(std::string* error);
  /// Like ping() but hands back the whole health object (version,
  /// uptime_s, job counts -- protocol v2).
  [[nodiscard]] std::optional<obs::JsonValue> ping_info(std::string* error);
  /// Fetch the telemetry plane: OpenMetrics exposition text plus the
  /// timeseries-v1 rings JSON ("exposition" / "series" members).
  [[nodiscard]] std::optional<obs::JsonValue> metrics(std::string* error);
  /// Stream live progress events for a job: `on_event` is invoked once
  /// per event line (including the final one); returns the final
  /// `"done": true` event, or nullopt on failure. Blocks until the job
  /// finishes.
  [[nodiscard]] std::optional<obs::JsonValue> subscribe(
      const std::string& id,
      const std::function<void(const obs::JsonValue&)>& on_event,
      std::string* error);
  /// Submit a job; returns the daemon-assigned job id.
  [[nodiscard]] std::optional<std::string> submit(const JobSpec& spec,
                                                  std::string* error);
  /// Requeue an interrupted/failed job to rerun from its checkpoint.
  [[nodiscard]] bool resume(const std::string& id, std::string* error);
  /// Block until the job completes; returns the results object.
  [[nodiscard]] std::optional<obs::JsonValue> wait(const std::string& id,
                                                   std::string* error);
  [[nodiscard]] std::optional<obs::JsonValue> results(const std::string& id,
                                                      std::string* error);
  [[nodiscard]] std::optional<obs::JsonValue> status(std::string* error);
  [[nodiscard]] std::optional<obs::JsonValue> jobs(std::string* error);
  [[nodiscard]] bool shutdown_daemon(std::string* error);

 private:
  [[nodiscard]] std::optional<obs::JsonValue> op_with_id(
      std::string_view op, const std::string& id, std::string* error);
  [[nodiscard]] bool send_all(const std::string& request, std::string* error);
  /// Block for one '\n'-terminated JSON line from the daemon.
  [[nodiscard]] std::optional<obs::JsonValue> read_json_line(
      std::string* error);

  int fd_ = -1;
};

}  // namespace abftecc::campaignd
