// Client side of the campaignd protocol (ISSUE 7): a thin blocking
// connection speaking one-JSON-line-per-request over the daemon's
// Unix-domain socket, with typed helpers for every op. Used by
// tools/campaignctl and the end-to-end tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "campaignd/protocol.hpp"
#include "obs/jsonv.hpp"

namespace abftecc::campaignd {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon's socket. Returns false and fills `error`.
  [[nodiscard]] bool connect(const std::string& socket_path,
                             std::string* error);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send one request line and block for its one response line. Returns
  /// nullopt (and fills `error`) on transport or parse failure; protocol
  /// failures come back as a parsed {"ok":false,...} object.
  [[nodiscard]] std::optional<obs::JsonValue> call(const std::string& request,
                                                   std::string* error);

  // Typed helpers; all return nullopt on failure and fill `error` with
  // either the transport failure or the daemon's "error" member.
  [[nodiscard]] bool ping(std::string* error);
  /// Submit a job; returns the daemon-assigned job id.
  [[nodiscard]] std::optional<std::string> submit(const JobSpec& spec,
                                                  std::string* error);
  /// Requeue an interrupted/failed job to rerun from its checkpoint.
  [[nodiscard]] bool resume(const std::string& id, std::string* error);
  /// Block until the job completes; returns the results object.
  [[nodiscard]] std::optional<obs::JsonValue> wait(const std::string& id,
                                                   std::string* error);
  [[nodiscard]] std::optional<obs::JsonValue> results(const std::string& id,
                                                      std::string* error);
  [[nodiscard]] std::optional<obs::JsonValue> status(std::string* error);
  [[nodiscard]] std::optional<obs::JsonValue> jobs(std::string* error);
  [[nodiscard]] bool shutdown_daemon(std::string* error);

 private:
  [[nodiscard]] std::optional<obs::JsonValue> op_with_id(
      std::string_view op, const std::string& id, std::string* error);

  int fd_ = -1;
};

}  // namespace abftecc::campaignd
