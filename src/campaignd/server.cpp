#include "campaignd/server.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "campaign/exhaustive.hpp"
#include "campaignd/checkpoint.hpp"
#include "obs/json.hpp"
#include "obs/jsonv.hpp"

namespace abftecc::campaignd {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool read_file(const std::string& path, std::string* content) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  content->clear();
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    content->append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

std::string_view Server::state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kInterrupted: return "interrupted";
  }
  return "?";
}

Server::~Server() {
  for (Connection& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opt_.socket_path.c_str());
  }
}

Server::Job* Server::find_job(std::string_view id) {
  for (Job& j : jobs_)
    if (j.id == id) return &j;
  return nullptr;
}

void Server::recover_spool(std::string* error) {
  const std::string jobs_dir = opt_.state_dir + "/jobs";
  DIR* d = ::opendir(jobs_dir.c_str());
  if (d == nullptr) return;  // fresh state dir
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("job-", 0) != 0) continue;
    Job job;
    job.id = name;
    job.dir = jobs_dir + "/" + name;
    std::string spec_text;
    if (!read_file(job.dir + "/spec.json", &spec_text)) continue;
    const auto spec_json = obs::json_parse(spec_text, error);
    if (!spec_json.has_value() ||
        !job_from_json(*spec_json, &job.spec, error))
      continue;  // unreadable spool entries are skipped, not fatal
    job.trials_total = job.spec.exhaustive
                           ? job.spec.exhaustive_options.words
                           : job.spec.options.trials;
    if (file_exists(job.dir + "/done.json") &&
        read_file(job.dir + "/aggregate.json", &job.aggregate)) {
      // Strip the trailing newline the output writer appends.
      while (!job.aggregate.empty() && job.aggregate.back() == '\n')
        job.aggregate.pop_back();
      job.state = JobState::kDone;
      job.trials_done = job.trials_total;
    } else {
      job.state = JobState::kInterrupted;
      job.error = "daemon stopped before the job finished; resume to rerun "
                  "from its checkpoint";
    }
    const unsigned num = static_cast<unsigned>(
        std::strtoul(name.c_str() + 4, nullptr, 10));
    next_job_ = std::max(next_job_, num + 1);
    jobs_.push_back(std::move(job));
  }
  ::closedir(d);
  std::sort(jobs_.begin(), jobs_.end(),
            [](const Job& a, const Job& b) { return a.id < b.id; });
}

bool Server::start(std::string* error) {
  if (!make_directories(opt_.state_dir + "/jobs", error)) return false;
  recover_spool(error);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr)
      *error = "socket path too long: " + opt_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr)
      *error = "bind " + opt_.socket_path + ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    if (error != nullptr)
      *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }

  // Telemetry plane: pre-register the daemon's instruments so every
  // exposition and every ring carries the full schema from the first
  // scrape, and start the uptime/sampling clocks.
  t0_ns_ = now_ns();
  sampler_ = obs::TelemetrySampler(
      obs::TelemetryOptions{opt_.sample_capacity, 0.0});
  metrics_.counter("campaignd.requests");
  metrics_.counter("campaignd.jobs_submitted");
  metrics_.counter("campaignd.jobs_completed");
  metrics_.counter("campaignd.jobs_failed");
  metrics_.counter("campaignd.trials");
  metrics_.counter("campaignd.workers_spawned");
  metrics_.counter("campaignd.workers_died");
  metrics_.gauge("campaignd.uptime_seconds");
  metrics_.gauge("campaignd.jobs_queued");
  metrics_.gauge("campaignd.jobs_running");
  metrics_.gauge("campaignd.workers_alive");
  metrics_.gauge("campaignd.trials_per_sec");
  metrics_.histogram("campaignd.job_seconds",
                     obs::Histogram::exponential_bounds(0.25, 2.0, 16));
  return true;
}

double Server::uptime_s() const {
  return t0_ns_ == 0 ? 0.0 : static_cast<double>(now_ns() - t0_ns_) * 1e-9;
}

void Server::update_gauges() {
  metrics_.gauge("campaignd.uptime_seconds").set(uptime_s());
  metrics_.gauge("campaignd.jobs_queued")
      .set(static_cast<double>(queue_.size()));
  metrics_.gauge("campaignd.jobs_running").set(running_.empty() ? 0.0 : 1.0);
  double alive = 0.0, rate = 0.0;
  if (const Job* j = running_.empty() ? nullptr : find_job(running_)) {
    alive = static_cast<double>(j->live.workers.size());
    rate = j->live.ewma_rate;
  }
  metrics_.gauge("campaignd.workers_alive").set(alive);
  metrics_.gauge("campaignd.trials_per_sec").set(rate);
}

void Server::sample_metrics() {
  const std::uint64_t now = now_ns();
  const auto interval_ns =
      static_cast<std::uint64_t>(opt_.sample_interval_s * 1e9);
  if (last_sample_ns_ != 0 && now - last_sample_ns_ < interval_ns) return;
  last_sample_ns_ = now;
  update_gauges();
  sampler_.sample(metrics_, static_cast<double>(now - t0_ns_) * 1e-9);
}

int Server::run() {
  while (!stop_) {
    if (!queue_.empty()) {
      run_next_job();
    } else {
      service_once(200);
    }
  }
  return 0;
}

void Server::accept_new() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error: nothing (more) to accept
    Connection c;
    c.fd = fd;
    conns_.push_back(std::move(c));
  }
}

void Server::service_once(int timeout_ms) {
  if (in_service_) return;
  in_service_ = true;
  sample_metrics();

  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const Connection& c : conns_) fds.push_back({c.fd, POLLIN, 0});

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) {
    in_service_ = false;
    return;
  }
  if ((fds[0].revents & POLLIN) != 0) accept_new();

  std::vector<int> closed;
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    auto it = std::find_if(conns_.begin(), conns_.end(), [&](const auto& c) {
      return c.fd == fds[i].fd;
    });
    if (it == conns_.end()) continue;
    char buf[1 << 14];
    const ssize_t n = ::read(it->fd, buf, sizeof(buf));
    if (n <= 0) {
      closed.push_back(it->fd);
      continue;
    }
    it->inbuf.append(buf, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = it->inbuf.find('\n')) != std::string::npos) {
      const std::string line = it->inbuf.substr(0, pos);
      it->inbuf.erase(0, pos + 1);
      if (!line.empty()) handle_line(*it, line);
    }
  }
  for (const int fd : closed) {
    ::close(fd);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [&](const auto& c) { return c.fd == fd; }),
                 conns_.end());
  }
  in_service_ = false;
}

void Server::send_line(int fd, const std::string& line) {
  std::string msg = line;
  msg += '\n';
  std::size_t off = 0;
  while (off < msg.size()) {
    const ssize_t n =
        ::send(fd, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone; its next read / our next poll cleans up
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::reply_error(Connection& conn, const std::string& msg) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("protocol", kProtocolVersion);
  w.field("ok", false);
  w.field("error", msg);
  w.end_object();
  send_line(conn.fd, w.take());
}

void Server::reply_results(int fd, const Job& job) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("protocol", kProtocolVersion);
  w.field("ok", true);
  w.field("id", job.id);
  w.field("name", job.spec.name);
  w.field("state", state_name(job.state));
  w.field("trials_done", job.trials_done);
  w.field("trials_total", job.trials_total);
  if (!job.error.empty()) w.field("error", job.error);
  w.key("aggregate");
  if (job.aggregate.empty()) {
    w.null();
  } else {
    w.raw(job.aggregate);
  }
  w.field("trials_path", job.dir + "/trials.jsonl");
  if (job.spec.options.lineage)
    w.field("lineage_path", job.dir + "/lineage.jsonl");
  w.end_object();
  send_line(fd, w.take());
}

void Server::notify_waiters(const Job& job) {
  for (Connection& c : conns_) {
    if (c.waiting_for != job.id) continue;
    c.waiting_for.clear();
    reply_results(c.fd, job);
  }
}

void Server::write_live(obs::JsonWriter& w, const Job& job) const {
  const Live& lv = job.live;
  w.field("id", job.id);
  w.field("name", job.spec.name);
  w.field("state", state_name(job.state));
  w.field("trials_done", job.trials_done);
  w.field("trials_total", job.trials_total);
  w.field("elapsed_s", lv.started_ns == 0
                           ? 0.0
                           : static_cast<double>(now_ns() - lv.started_ns) *
                                 1e-9);
  w.field("trials_per_sec", lv.ewma_rate);
  w.field("eta_s", lv.eta_s);
  w.key("outcomes").begin_object();
  if (lv.have_outcomes) {
    for (std::size_t i = 0; i < campaign::kAllOutcomes.size(); ++i)
      w.field(to_string(campaign::kAllOutcomes[i]), lv.outcomes[i]);
  }
  w.end_object();
  w.key("workers").begin_array();
  for (const WorkerBeat& b : lv.workers) {
    w.begin_object();
    w.field("pid", static_cast<std::int64_t>(b.pid));
    w.field("chunk", static_cast<std::int64_t>(b.chunk));
    w.end_object();
  }
  w.end_array();
  w.field("workers_spawned", lv.workers_spawned);
  w.field("workers_died", lv.workers_died);
  if (!job.error.empty()) w.field("error", job.error);
}

void Server::push_event(Job& job, bool final_event) {
  bool any = false;
  for (const Connection& c : conns_)
    if (c.subscribed_to == job.id) any = true;
  if (!any) return;
  const std::uint64_t now = now_ns();
  // Progress pushes are capped at ~5/s per job so a fast sweep cannot
  // firehose a slow subscriber; the final event always goes out.
  if (!final_event && now - job.live.last_push_ns < 200'000'000ULL) return;
  job.live.last_push_ns = now;

  obs::JsonWriter w;
  w.begin_object();
  w.field("protocol", kProtocolVersion);
  w.field("ok", true);
  w.field("event", final_event ? "done" : "progress");
  write_live(w, job);
  w.field("done", final_event);
  w.end_object();
  const std::string line = w.take();
  for (Connection& c : conns_) {
    if (c.subscribed_to != job.id) continue;
    send_line(c.fd, line);
    if (final_event) c.subscribed_to.clear();
  }
}

void Server::update_live_progress(Job& job, std::uint64_t done,
                                  std::uint64_t total) {
  Live& lv = job.live;
  const std::uint64_t now = now_ns();
  if (done > lv.last_done)
    metrics_.counter("campaignd.trials").add(done - lv.last_done);
  const double dt = static_cast<double>(now - lv.last_ns) * 1e-9;
  if (done > lv.last_done && dt > 0.0) {
    const double inst = static_cast<double>(done - lv.last_done) / dt;
    // EWMA over elapsed time (5 s constant), not over updates: chunked
    // progress arrives at an uneven cadence.
    const double alpha = 1.0 - std::exp(-dt / 5.0);
    lv.ewma_rate =
        lv.ewma_rate == 0.0 ? inst : lv.ewma_rate + alpha * (inst - lv.ewma_rate);
  }
  lv.last_ns = now;
  lv.last_done = done;
  job.trials_done = done;
  lv.eta_s = lv.ewma_rate > 0.0 && total >= done
                 ? static_cast<double>(total - done) / lv.ewma_rate
                 : -1.0;
  push_event(job, false);
}

std::string Server::exposition() {
  update_gauges();
  obs::OpenMetricsWriter om;
  om.snapshot(metrics_.snapshot());

  // Per-job families, one sample per job with a `job` label (plus
  // `outcome` for the outcome-mix family). Family names are disjoint
  // from the registry's `campaignd.*` instruments by the `_job_` infix.
  using Type = obs::OpenMetricsWriter::Type;
  auto job_labels = [](const Job& j) {
    return std::vector<obs::MetricLabel>{{"job", j.id}, {"name", j.spec.name}};
  };
  om.family("campaignd_job_trials_done", Type::kGauge);
  for (const Job& j : jobs_)
    om.sample(static_cast<double>(j.trials_done), job_labels(j));
  om.family("campaignd_job_trials_total", Type::kGauge);
  for (const Job& j : jobs_)
    om.sample(static_cast<double>(j.trials_total), job_labels(j));
  om.family("campaignd_job_state", Type::kGauge);
  for (const Job& j : jobs_) {
    auto labels = job_labels(j);
    labels.push_back({"state", std::string(state_name(j.state))});
    om.sample(1.0, labels);
  }
  om.family("campaignd_job_trials_per_sec", Type::kGauge);
  for (const Job& j : jobs_)
    om.sample(j.live.ewma_rate, job_labels(j));
  om.family("campaignd_job_eta_seconds", Type::kGauge);
  for (const Job& j : jobs_)
    om.sample(j.live.eta_s, job_labels(j));
  om.family("campaignd_job_workers_alive", Type::kGauge);
  for (const Job& j : jobs_)
    om.sample(static_cast<double>(j.live.workers.size()), job_labels(j));
  om.family("campaignd_job_workers_died", Type::kGauge);
  for (const Job& j : jobs_)
    om.sample(static_cast<double>(j.live.workers_died), job_labels(j));
  om.family("campaignd_job_outcome_trials", Type::kGauge);
  for (const Job& j : jobs_) {
    if (!j.live.have_outcomes) continue;
    for (std::size_t i = 0; i < campaign::kAllOutcomes.size(); ++i) {
      auto labels = job_labels(j);
      labels.push_back(
          {"outcome", std::string(to_string(campaign::kAllOutcomes[i]))});
      om.sample(static_cast<double>(j.live.outcomes[i]), labels);
    }
  }
  return om.take();
}

void Server::handle_line(Connection& conn, const std::string& line) {
  std::string perr;
  const auto v = obs::json_parse(line, &perr);
  if (!v.has_value()) {
    reply_error(conn, "malformed request: " + perr);
    return;
  }
  // Envelope version gate: a request that carries a protocol number we do
  // not speak gets a self-describing refusal instead of an op-level error
  // (or worse, a reply whose shape the peer cannot parse). Requests without
  // the field are served -- the response still carries our version, so the
  // client's own check closes the loop.
  if (const obs::JsonValue* p = v->find("protocol");
      p != nullptr && p->as_u64() != kProtocolVersion) {
    reply_error(conn, "protocol mismatch: daemon speaks protocol " +
                          std::to_string(kProtocolVersion) +
                          ", request carried protocol " +
                          std::to_string(p->as_u64()));
    return;
  }
  const std::string_view op = v->str("op");
  metrics_.counter("campaignd.requests").add(1);

  if (op == "ping") {
    std::uint64_t done = 0, failed = 0;
    for (const Job& j : jobs_) {
      done += j.state == JobState::kDone ? 1 : 0;
      failed += j.state == JobState::kFailed ? 1 : 0;
    }
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("op", "ping");
    w.field("schema", kSchemaVersion);
    w.field("version", kServerVersion);
    w.field("pid", static_cast<std::uint64_t>(::getpid()));
    w.field("uptime_s", uptime_s());
    w.field("jobs", static_cast<std::uint64_t>(jobs_.size()));
    w.field("queued", static_cast<std::uint64_t>(queue_.size()));
    w.field("running", static_cast<std::uint64_t>(running_.empty() ? 0 : 1));
    w.field("done", done);
    w.field("failed", failed);
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "metrics") {
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("op", "metrics");
    w.field("exposition", exposition());
    w.key("series").raw(sampler_.to_json());
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "subscribe") {
    Job* job = find_job(v->str("id"));
    if (job == nullptr) {
      reply_error(conn, "subscribe: unknown job id");
      return;
    }
    const bool terminal = job->state != JobState::kQueued &&
                          job->state != JobState::kRunning;
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("event", terminal ? "done" : "progress");
    write_live(w, *job);
    w.field("done", terminal);
    w.end_object();
    send_line(conn.fd, w.take());
    // Live jobs keep streaming: progress events until the final done
    // line detaches the subscription.
    if (!terminal) conn.subscribed_to = job->id;
    return;
  }

  if (op == "submit") {
    const obs::JsonValue* j = v->find("job");
    if (j == nullptr) {
      reply_error(conn, "submit: missing 'job'");
      return;
    }
    Job job;
    std::string err;
    if (!job_from_json(*j, &job.spec, &err)) {
      reply_error(conn, "submit: " + err);
      return;
    }
    if (job.spec.shards == 0) job.spec.shards = opt_.default_shards;
    char id[32];
    std::snprintf(id, sizeof(id), "job-%06u", next_job_++);
    job.id = id;
    job.dir = opt_.state_dir + "/jobs/" + job.id;
    job.trials_total = job.spec.exhaustive ? job.spec.exhaustive_options.words
                                           : job.spec.options.trials;
    std::string mkerr;
    if (!make_directories(job.dir, &mkerr) ||
        !atomic_write_file(job.dir + "/spec.json",
                           job_to_json(job.spec) + "\n", &mkerr)) {
      reply_error(conn, "submit: cannot spool job: " + mkerr);
      return;
    }
    queue_.push_back(job.id);
    jobs_.push_back(std::move(job));
    metrics_.counter("campaignd.jobs_submitted").add(1);
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("id", jobs_.back().id);
    w.field("state", "queued");
    w.field("queued", static_cast<std::uint64_t>(queue_.size()));
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "resume") {
    Job* job = find_job(v->str("id"));
    if (job == nullptr) {
      reply_error(conn, "resume: unknown job id");
      return;
    }
    if (job->state == JobState::kRunning || job->state == JobState::kQueued) {
      reply_error(conn, "resume: job is already " +
                            std::string(state_name(job->state)));
      return;
    }
    if (job->state == JobState::kDone) {
      reply_results(conn.fd, *job);  // nothing to redo; hand back results
      return;
    }
    job->state = JobState::kQueued;
    job->error.clear();
    queue_.push_back(job->id);
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("id", job->id);
    w.field("state", "queued");
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "status") {
    std::uint64_t done = 0, failed = 0;
    for (const Job& j : jobs_) {
      done += j.state == JobState::kDone ? 1 : 0;
      failed += j.state == JobState::kFailed ? 1 : 0;
    }
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("op", "status");
    w.field("pid", static_cast<std::uint64_t>(::getpid()));
    w.field("jobs", static_cast<std::uint64_t>(jobs_.size()));
    w.field("queued", static_cast<std::uint64_t>(queue_.size()));
    w.field("done", done);
    w.field("failed", failed);
    w.key("running");
    if (running_.empty()) {
      w.null();
    } else if (const Job* j = find_job(running_); j != nullptr) {
      w.begin_object();
      w.field("id", j->id);
      w.field("name", j->spec.name);
      w.field("trials_done", j->trials_done);
      w.field("trials_total", j->trials_total);
      w.end_object();
    } else {
      w.null();
    }
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "jobs") {
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.key("jobs").begin_array();
    for (const Job& j : jobs_) {
      w.begin_object();
      w.field("id", j.id);
      w.field("name", j.spec.name);
      w.field("state", state_name(j.state));
      w.field("trials_done", j.trials_done);
      w.field("trials_total", j.trials_total);
      if (!j.error.empty()) w.field("error", j.error);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "results") {
    const Job* job = find_job(v->str("id"));
    if (job == nullptr) {
      reply_error(conn, "results: unknown job id");
      return;
    }
    reply_results(conn.fd, *job);
    return;
  }

  if (op == "wait") {
    Job* job = find_job(v->str("id"));
    if (job == nullptr) {
      reply_error(conn, "wait: unknown job id");
      return;
    }
    if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
      conn.waiting_for = job->id;  // parked; answered at completion
      return;
    }
    reply_results(conn.fd, *job);
    return;
  }

  if (op == "shutdown") {
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("stopping", true);
    w.end_object();
    send_line(conn.fd, w.take());
    stop_ = true;
    return;
  }

  reply_error(conn, "unknown op '" + std::string(op) + "'");
}

bool Server::write_job_outputs(Job& job, const std::string& trials,
                               const std::string& lineage,
                               const std::string& aggregate) {
  std::string werr;
  if (!atomic_write_file(job.dir + "/trials.jsonl", trials, &werr) ||
      !atomic_write_file(job.dir + "/aggregate.json", aggregate + "\n",
                         &werr)) {
    job.error = "cannot write job outputs: " + werr;
    return false;
  }
  if (job.spec.options.lineage &&
      !atomic_write_file(job.dir + "/lineage.jsonl", lineage, &werr)) {
    job.error = "cannot write lineage output: " + werr;
    return false;
  }
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", kSchemaVersion);
  w.field("id", job.id);
  w.field("state", "done");
  w.end_object();
  // The done marker is written LAST, and every file (marker included)
  // goes through atomic_write_file's tmp+fsync+rename, so its presence
  // certifies every output above it is complete and durable -- whether
  // the interruption was a SIGKILL, a crash, or power loss.
  if (!atomic_write_file(job.dir + "/done.json", w.take() + "\n", &werr)) {
    job.error = "cannot write done marker: " + werr;
    return false;
  }
  job.aggregate = aggregate;
  return true;
}

void Server::run_campaign_job(Job& job) {
  // Golden runs happen on the supervisor's main thread before any worker
  // forks, so every worker inherits the identical reference run (see
  // campaign::run_golden's heap-layout note).
  const campaign::GoldenRun golden = campaign::run_golden(job.spec.options);

  ShardOptions shard_opt;
  shard_opt.shards = job.spec.shards;
  shard_opt.checkpoint_dir = job.dir + "/checkpoint";
  shard_opt.fingerprint = job_fingerprint(job.spec);
  shard_opt.progress = [&](std::size_t done, std::size_t total) {
    update_live_progress(job, done, total);
  };
  shard_opt.stats = [&](const campaign::Accumulator& acc) {
    for (std::size_t i = 0; i < campaign::kAllOutcomes.size(); ++i)
      job.live.outcomes[i] = acc.outcome_count(campaign::kAllOutcomes[i]);
    job.live.have_outcomes = true;
  };
  shard_opt.pulse = [&](const ShardPulse& p) {
    Live& lv = job.live;
    // Counter deltas first (pulse carries cumulative per-sweep counts).
    if (p.workers_spawned > lv.workers_spawned)
      metrics_.counter("campaignd.workers_spawned")
          .add(p.workers_spawned - lv.workers_spawned);
    if (p.workers_died > lv.workers_died)
      metrics_.counter("campaignd.workers_died")
          .add(p.workers_died - lv.workers_died);
    lv.workers = p.workers;
    lv.workers_spawned = p.workers_spawned;
    lv.workers_died = p.workers_died;
    push_event(job, false);
  };
  shard_opt.service = [this] { service_once(0); };
  shard_opt.should_abort = [this] { return stop_; };

  const ShardOutcome outcome = run_sharded(job.spec.options, golden,
                                           shard_opt);
  if (outcome.aborted) {
    job.state = JobState::kInterrupted;
    job.error = "interrupted by daemon shutdown; resume to continue from "
                "the checkpoint";
    return;
  }
  if (!outcome.ok) {
    job.state = JobState::kFailed;
    job.error = outcome.error;
    return;
  }
  std::string trials;
  for (const std::string& line : outcome.trial_lines) {
    trials += line;
    trials += '\n';
  }
  job.state = write_job_outputs(job, trials, outcome.lineage_lines,
                                outcome.acc.to_json())
                  ? JobState::kDone
                  : JobState::kFailed;
}

void Server::run_exhaustive_job(Job& job) {
  // The sweep runs on its own thread so the supervisor can keep
  // servicing the control socket (ping/status/submit/wait stay answered
  // mid-job, as for sharded jobs) and can translate request_stop into an
  // abort instead of grinding to the end.
  std::atomic<std::uint64_t> words_done{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> finished{false};
  campaign::exhaustive::Result r;
  std::thread sweep([&] {
    r = campaign::exhaustive::run(
        job.spec.exhaustive_options,
        [&](std::uint64_t done, std::uint64_t) {
          words_done.store(done, std::memory_order_relaxed);
        },
        [&] { return abort.load(std::memory_order_relaxed); });
    finished.store(true, std::memory_order_release);
  });
  while (!finished.load(std::memory_order_acquire)) {
    if (stop_) abort.store(true, std::memory_order_relaxed);
    service_once(50);
    update_live_progress(job, words_done.load(std::memory_order_relaxed),
                         job.trials_total);
  }
  sweep.join();
  job.trials_done = words_done.load(std::memory_order_relaxed);
  if (r.aborted) {
    job.state = JobState::kInterrupted;
    job.error = "interrupted by daemon shutdown; resume to rerun the sweep";
    return;
  }
  job.trials_done = r.options.words;
  if (!write_job_outputs(job, "", "", r.to_json())) {
    job.state = JobState::kFailed;
    return;
  }
  if (!r.ok()) {
    job.state = JobState::kFailed;
    job.error = "exhaustive SECDED enumeration violated the analytic "
                "guarantees (see aggregate.json)";
    return;
  }
  job.state = JobState::kDone;
}

void Server::run_next_job() {
  const std::string id = queue_.front();
  queue_.pop_front();
  Job* job = find_job(id);
  if (job == nullptr) return;
  job->state = JobState::kRunning;
  job->trials_done = 0;
  job->error.clear();
  job->live = Live{};
  job->live.started_ns = job->live.last_ns = now_ns();
  running_ = id;
  if (job->spec.exhaustive) {
    run_exhaustive_job(*job);
  } else {
    run_campaign_job(*job);
  }
  running_.clear();
  metrics_
      .counter(job->state == JobState::kDone ? "campaignd.jobs_completed"
                                             : "campaignd.jobs_failed")
      .add(1);
  metrics_.histogram("campaignd.job_seconds", {})
      .observe(static_cast<double>(now_ns() - job->live.started_ns) * 1e-9);
  notify_waiters(*job);
  push_event(*job, true);
}

}  // namespace abftecc::campaignd
