#include "campaignd/server.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "campaign/exhaustive.hpp"
#include "campaignd/checkpoint.hpp"
#include "campaignd/shard.hpp"
#include "obs/json.hpp"
#include "obs/jsonv.hpp"

namespace abftecc::campaignd {

namespace {

bool read_file(const std::string& path, std::string* content) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  content->clear();
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    content->append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

std::string_view Server::state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kInterrupted: return "interrupted";
  }
  return "?";
}

Server::~Server() {
  for (Connection& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opt_.socket_path.c_str());
  }
}

Server::Job* Server::find_job(std::string_view id) {
  for (Job& j : jobs_)
    if (j.id == id) return &j;
  return nullptr;
}

void Server::recover_spool(std::string* error) {
  const std::string jobs_dir = opt_.state_dir + "/jobs";
  DIR* d = ::opendir(jobs_dir.c_str());
  if (d == nullptr) return;  // fresh state dir
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("job-", 0) != 0) continue;
    Job job;
    job.id = name;
    job.dir = jobs_dir + "/" + name;
    std::string spec_text;
    if (!read_file(job.dir + "/spec.json", &spec_text)) continue;
    const auto spec_json = obs::json_parse(spec_text, error);
    if (!spec_json.has_value() ||
        !job_from_json(*spec_json, &job.spec, error))
      continue;  // unreadable spool entries are skipped, not fatal
    job.trials_total = job.spec.exhaustive
                           ? job.spec.exhaustive_options.words
                           : job.spec.options.trials;
    if (file_exists(job.dir + "/done.json") &&
        read_file(job.dir + "/aggregate.json", &job.aggregate)) {
      // Strip the trailing newline the output writer appends.
      while (!job.aggregate.empty() && job.aggregate.back() == '\n')
        job.aggregate.pop_back();
      job.state = JobState::kDone;
      job.trials_done = job.trials_total;
    } else {
      job.state = JobState::kInterrupted;
      job.error = "daemon stopped before the job finished; resume to rerun "
                  "from its checkpoint";
    }
    const unsigned num = static_cast<unsigned>(
        std::strtoul(name.c_str() + 4, nullptr, 10));
    next_job_ = std::max(next_job_, num + 1);
    jobs_.push_back(std::move(job));
  }
  ::closedir(d);
  std::sort(jobs_.begin(), jobs_.end(),
            [](const Job& a, const Job& b) { return a.id < b.id; });
}

bool Server::start(std::string* error) {
  if (!make_directories(opt_.state_dir + "/jobs", error)) return false;
  recover_spool(error);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr)
      *error = "socket path too long: " + opt_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr)
      *error = "bind " + opt_.socket_path + ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    if (error != nullptr)
      *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

int Server::run() {
  while (!stop_) {
    if (!queue_.empty()) {
      run_next_job();
    } else {
      service_once(200);
    }
  }
  return 0;
}

void Server::accept_new() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error: nothing (more) to accept
    Connection c;
    c.fd = fd;
    conns_.push_back(std::move(c));
  }
}

void Server::service_once(int timeout_ms) {
  if (in_service_) return;
  in_service_ = true;

  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const Connection& c : conns_) fds.push_back({c.fd, POLLIN, 0});

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) {
    in_service_ = false;
    return;
  }
  if ((fds[0].revents & POLLIN) != 0) accept_new();

  std::vector<int> closed;
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    auto it = std::find_if(conns_.begin(), conns_.end(), [&](const auto& c) {
      return c.fd == fds[i].fd;
    });
    if (it == conns_.end()) continue;
    char buf[1 << 14];
    const ssize_t n = ::read(it->fd, buf, sizeof(buf));
    if (n <= 0) {
      closed.push_back(it->fd);
      continue;
    }
    it->inbuf.append(buf, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = it->inbuf.find('\n')) != std::string::npos) {
      const std::string line = it->inbuf.substr(0, pos);
      it->inbuf.erase(0, pos + 1);
      if (!line.empty()) handle_line(*it, line);
    }
  }
  for (const int fd : closed) {
    ::close(fd);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [&](const auto& c) { return c.fd == fd; }),
                 conns_.end());
  }
  in_service_ = false;
}

void Server::send_line(int fd, const std::string& line) {
  std::string msg = line;
  msg += '\n';
  std::size_t off = 0;
  while (off < msg.size()) {
    const ssize_t n =
        ::send(fd, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone; its next read / our next poll cleans up
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::reply_error(Connection& conn, const std::string& msg) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("protocol", kProtocolVersion);
  w.field("ok", false);
  w.field("error", msg);
  w.end_object();
  send_line(conn.fd, w.take());
}

void Server::reply_results(int fd, const Job& job) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("protocol", kProtocolVersion);
  w.field("ok", true);
  w.field("id", job.id);
  w.field("name", job.spec.name);
  w.field("state", state_name(job.state));
  w.field("trials_done", job.trials_done);
  w.field("trials_total", job.trials_total);
  if (!job.error.empty()) w.field("error", job.error);
  w.key("aggregate");
  if (job.aggregate.empty()) {
    w.null();
  } else {
    w.raw(job.aggregate);
  }
  w.field("trials_path", job.dir + "/trials.jsonl");
  if (job.spec.options.lineage)
    w.field("lineage_path", job.dir + "/lineage.jsonl");
  w.end_object();
  send_line(fd, w.take());
}

void Server::notify_waiters(const Job& job) {
  for (Connection& c : conns_) {
    if (c.waiting_for != job.id) continue;
    c.waiting_for.clear();
    reply_results(c.fd, job);
  }
}

void Server::handle_line(Connection& conn, const std::string& line) {
  std::string perr;
  const auto v = obs::json_parse(line, &perr);
  if (!v.has_value()) {
    reply_error(conn, "malformed request: " + perr);
    return;
  }
  // Envelope version gate: a request that carries a protocol number we do
  // not speak gets a self-describing refusal instead of an op-level error
  // (or worse, a reply whose shape the peer cannot parse). Requests without
  // the field are served -- the response still carries our version, so the
  // client's own check closes the loop.
  if (const obs::JsonValue* p = v->find("protocol");
      p != nullptr && p->as_u64() != kProtocolVersion) {
    reply_error(conn, "protocol mismatch: daemon speaks protocol " +
                          std::to_string(kProtocolVersion) +
                          ", request carried protocol " +
                          std::to_string(p->as_u64()));
    return;
  }
  const std::string_view op = v->str("op");

  if (op == "ping") {
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("op", "ping");
    w.field("schema", kSchemaVersion);
    w.field("pid", static_cast<std::uint64_t>(::getpid()));
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "submit") {
    const obs::JsonValue* j = v->find("job");
    if (j == nullptr) {
      reply_error(conn, "submit: missing 'job'");
      return;
    }
    Job job;
    std::string err;
    if (!job_from_json(*j, &job.spec, &err)) {
      reply_error(conn, "submit: " + err);
      return;
    }
    if (job.spec.shards == 0) job.spec.shards = opt_.default_shards;
    char id[32];
    std::snprintf(id, sizeof(id), "job-%06u", next_job_++);
    job.id = id;
    job.dir = opt_.state_dir + "/jobs/" + job.id;
    job.trials_total = job.spec.exhaustive ? job.spec.exhaustive_options.words
                                           : job.spec.options.trials;
    std::string mkerr;
    if (!make_directories(job.dir, &mkerr) ||
        !atomic_write_file(job.dir + "/spec.json",
                           job_to_json(job.spec) + "\n", &mkerr)) {
      reply_error(conn, "submit: cannot spool job: " + mkerr);
      return;
    }
    queue_.push_back(job.id);
    jobs_.push_back(std::move(job));
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("id", jobs_.back().id);
    w.field("state", "queued");
    w.field("queued", static_cast<std::uint64_t>(queue_.size()));
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "resume") {
    Job* job = find_job(v->str("id"));
    if (job == nullptr) {
      reply_error(conn, "resume: unknown job id");
      return;
    }
    if (job->state == JobState::kRunning || job->state == JobState::kQueued) {
      reply_error(conn, "resume: job is already " +
                            std::string(state_name(job->state)));
      return;
    }
    if (job->state == JobState::kDone) {
      reply_results(conn.fd, *job);  // nothing to redo; hand back results
      return;
    }
    job->state = JobState::kQueued;
    job->error.clear();
    queue_.push_back(job->id);
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("id", job->id);
    w.field("state", "queued");
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "status") {
    std::uint64_t done = 0, failed = 0;
    for (const Job& j : jobs_) {
      done += j.state == JobState::kDone ? 1 : 0;
      failed += j.state == JobState::kFailed ? 1 : 0;
    }
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("op", "status");
    w.field("pid", static_cast<std::uint64_t>(::getpid()));
    w.field("jobs", static_cast<std::uint64_t>(jobs_.size()));
    w.field("queued", static_cast<std::uint64_t>(queue_.size()));
    w.field("done", done);
    w.field("failed", failed);
    w.key("running");
    if (running_.empty()) {
      w.null();
    } else if (const Job* j = find_job(running_); j != nullptr) {
      w.begin_object();
      w.field("id", j->id);
      w.field("name", j->spec.name);
      w.field("trials_done", j->trials_done);
      w.field("trials_total", j->trials_total);
      w.end_object();
    } else {
      w.null();
    }
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "jobs") {
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.key("jobs").begin_array();
    for (const Job& j : jobs_) {
      w.begin_object();
      w.field("id", j.id);
      w.field("name", j.spec.name);
      w.field("state", state_name(j.state));
      w.field("trials_done", j.trials_done);
      w.field("trials_total", j.trials_total);
      if (!j.error.empty()) w.field("error", j.error);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    send_line(conn.fd, w.take());
    return;
  }

  if (op == "results") {
    const Job* job = find_job(v->str("id"));
    if (job == nullptr) {
      reply_error(conn, "results: unknown job id");
      return;
    }
    reply_results(conn.fd, *job);
    return;
  }

  if (op == "wait") {
    Job* job = find_job(v->str("id"));
    if (job == nullptr) {
      reply_error(conn, "wait: unknown job id");
      return;
    }
    if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
      conn.waiting_for = job->id;  // parked; answered at completion
      return;
    }
    reply_results(conn.fd, *job);
    return;
  }

  if (op == "shutdown") {
    obs::JsonWriter w;
    w.begin_object();
    w.field("protocol", kProtocolVersion);
    w.field("ok", true);
    w.field("stopping", true);
    w.end_object();
    send_line(conn.fd, w.take());
    stop_ = true;
    return;
  }

  reply_error(conn, "unknown op '" + std::string(op) + "'");
}

bool Server::write_job_outputs(Job& job, const std::string& trials,
                               const std::string& lineage,
                               const std::string& aggregate) {
  std::string werr;
  if (!atomic_write_file(job.dir + "/trials.jsonl", trials, &werr) ||
      !atomic_write_file(job.dir + "/aggregate.json", aggregate + "\n",
                         &werr)) {
    job.error = "cannot write job outputs: " + werr;
    return false;
  }
  if (job.spec.options.lineage &&
      !atomic_write_file(job.dir + "/lineage.jsonl", lineage, &werr)) {
    job.error = "cannot write lineage output: " + werr;
    return false;
  }
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", kSchemaVersion);
  w.field("id", job.id);
  w.field("state", "done");
  w.end_object();
  // The done marker is written LAST, and every file (marker included)
  // goes through atomic_write_file's tmp+fsync+rename, so its presence
  // certifies every output above it is complete and durable -- whether
  // the interruption was a SIGKILL, a crash, or power loss.
  if (!atomic_write_file(job.dir + "/done.json", w.take() + "\n", &werr)) {
    job.error = "cannot write done marker: " + werr;
    return false;
  }
  job.aggregate = aggregate;
  return true;
}

void Server::run_campaign_job(Job& job) {
  // Golden runs happen on the supervisor's main thread before any worker
  // forks, so every worker inherits the identical reference run (see
  // campaign::run_golden's heap-layout note).
  const campaign::GoldenRun golden = campaign::run_golden(job.spec.options);

  ShardOptions shard_opt;
  shard_opt.shards = job.spec.shards;
  shard_opt.checkpoint_dir = job.dir + "/checkpoint";
  shard_opt.fingerprint = job_fingerprint(job.spec);
  shard_opt.progress = [&](std::size_t done, std::size_t) {
    job.trials_done = done;
  };
  shard_opt.service = [this] { service_once(0); };
  shard_opt.should_abort = [this] { return stop_; };

  const ShardOutcome outcome = run_sharded(job.spec.options, golden,
                                           shard_opt);
  if (outcome.aborted) {
    job.state = JobState::kInterrupted;
    job.error = "interrupted by daemon shutdown; resume to continue from "
                "the checkpoint";
    return;
  }
  if (!outcome.ok) {
    job.state = JobState::kFailed;
    job.error = outcome.error;
    return;
  }
  std::string trials;
  for (const std::string& line : outcome.trial_lines) {
    trials += line;
    trials += '\n';
  }
  job.state = write_job_outputs(job, trials, outcome.lineage_lines,
                                outcome.acc.to_json())
                  ? JobState::kDone
                  : JobState::kFailed;
}

void Server::run_exhaustive_job(Job& job) {
  // The sweep runs on its own thread so the supervisor can keep
  // servicing the control socket (ping/status/submit/wait stay answered
  // mid-job, as for sharded jobs) and can translate request_stop into an
  // abort instead of grinding to the end.
  std::atomic<std::uint64_t> words_done{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> finished{false};
  campaign::exhaustive::Result r;
  std::thread sweep([&] {
    r = campaign::exhaustive::run(
        job.spec.exhaustive_options,
        [&](std::uint64_t done, std::uint64_t) {
          words_done.store(done, std::memory_order_relaxed);
        },
        [&] { return abort.load(std::memory_order_relaxed); });
    finished.store(true, std::memory_order_release);
  });
  while (!finished.load(std::memory_order_acquire)) {
    if (stop_) abort.store(true, std::memory_order_relaxed);
    service_once(50);
    job.trials_done = words_done.load(std::memory_order_relaxed);
  }
  sweep.join();
  job.trials_done = words_done.load(std::memory_order_relaxed);
  if (r.aborted) {
    job.state = JobState::kInterrupted;
    job.error = "interrupted by daemon shutdown; resume to rerun the sweep";
    return;
  }
  job.trials_done = r.options.words;
  if (!write_job_outputs(job, "", "", r.to_json())) {
    job.state = JobState::kFailed;
    return;
  }
  if (!r.ok()) {
    job.state = JobState::kFailed;
    job.error = "exhaustive SECDED enumeration violated the analytic "
                "guarantees (see aggregate.json)";
    return;
  }
  job.state = JobState::kDone;
}

void Server::run_next_job() {
  const std::string id = queue_.front();
  queue_.pop_front();
  Job* job = find_job(id);
  if (job == nullptr) return;
  job->state = JobState::kRunning;
  job->trials_done = 0;
  job->error.clear();
  running_ = id;
  if (job->spec.exhaustive) {
    run_exhaustive_job(*job);
  } else {
    run_campaign_job(*job);
  }
  running_.clear();
  notify_waiters(*job);
}

}  // namespace abftecc::campaignd
