// The campaignd daemon core (ISSUE 7): a long-running, single-threaded
// server that accepts campaign job batches over a Unix-domain stream
// socket (one JSON request per line, one JSON response per line -- see
// protocol.hpp) and executes them one at a time through the sharded
// multi-process runner (shard.hpp).
//
// Control stays responsive DURING jobs: the shard supervisor's poll loop
// invokes the server's service pass between chunk completions, and an
// exhaustive sweep runs on its own thread while the supervisor services
// the socket, so ping/status/submit/wait round-trips keep working while
// a million-trial sweep runs.
//
// Durability: every job gets a spool directory under
// <state_dir>/jobs/<id>/ holding its spec (spec.json), its Fletcher-64
// verified progress checkpoint (checkpoint/), and -- once finished --
// its outputs (trials.jsonl, lineage.jsonl, aggregate.json) plus a
// done.json marker. A daemon killed with SIGKILL mid-job comes back up,
// reports the job as interrupted, and a `resume` request re-runs it
// replaying the verified chunks -- producing byte-identical results to
// an uninterrupted run.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "campaignd/protocol.hpp"
#include "campaignd/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace abftecc::campaignd {

struct ServerOptions {
  std::string socket_path;
  std::string state_dir;
  /// Shard count used when a submitted job asks for 0.
  unsigned default_shards = 2;
  /// Telemetry sampling cadence (time-series ring points); the rings keep
  /// `sample_capacity` points per series.
  double sample_interval_s = 1.0;
  std::size_t sample_capacity = 240;
};

class Server {
 public:
  explicit Server(ServerOptions opt) : opt_(std::move(opt)) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create the state directory, recover the job spool from a previous
  /// incarnation, bind and listen. Returns false and fills `error` on
  /// failure.
  [[nodiscard]] bool start(std::string* error);

  /// Serve until a shutdown request (or request_stop). Returns the
  /// process exit code.
  int run();

  /// Async-signal-safe stop flag (SIGTERM/SIGINT handler hook).
  void request_stop() { stop_ = true; }

  /// One non-blocking (timeout_ms = 0) or bounded service pass over the
  /// control socket: accept, read, answer. run() and the mid-job service
  /// callback both funnel through here.
  void service_once(int timeout_ms);

 private:
  enum class JobState : std::uint8_t {
    kQueued,
    kRunning,
    kDone,
    kFailed,
    kInterrupted,
  };
  static std::string_view state_name(JobState s);

  /// Live per-job telemetry the supervisor aggregates while a job runs.
  /// Derived from the result path (progress/stats/pulse callbacks), never
  /// feeding back into it -- resetting or dropping Live cannot change a
  /// single output byte.
  struct Live {
    std::uint64_t started_ns = 0;
    std::uint64_t last_ns = 0;       ///< last progress timestamp
    std::uint64_t last_done = 0;     ///< trials_done at last progress
    double ewma_rate = 0.0;          ///< trials/sec, ~5 s time constant
    double eta_s = -1.0;             ///< -1 until a rate exists
    bool have_outcomes = false;
    std::array<std::uint64_t, campaign::kAllOutcomes.size()> outcomes{};
    std::vector<WorkerBeat> workers;
    unsigned workers_spawned = 0;
    unsigned workers_died = 0;
    std::uint64_t last_push_ns = 0;  ///< subscriber push rate limiter
  };

  struct Job {
    std::string id;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::string dir;
    std::string error;
    std::uint64_t trials_done = 0;
    std::uint64_t trials_total = 0;
    std::string aggregate;  ///< canonical aggregate JSON once finished
    Live live;
  };

  struct Connection {
    int fd = -1;
    std::string inbuf;
    /// Job id a `wait` request parked this connection on ('' = none).
    std::string waiting_for;
    /// Job id a `subscribe` request attached this connection to ('' =
    /// none); progress events stream here until the job's done event.
    std::string subscribed_to;
  };

  [[nodiscard]] Job* find_job(std::string_view id);
  void recover_spool(std::string* error);
  void accept_new();
  [[nodiscard]] double uptime_s() const;
  /// Refresh daemon-level gauges and, when sample_interval_s elapsed,
  /// push one point per series into the telemetry rings.
  void sample_metrics();
  void update_gauges();
  /// Feed one (done, total) progress observation into a job's Live stats
  /// (EWMA trials/sec, ETA) and push a rate-limited subscriber event.
  void update_live_progress(Job& job, std::uint64_t done,
                            std::uint64_t total);
  /// Shared body of a subscribe/progress event line.
  void write_live(obs::JsonWriter& w, const Job& job) const;
  /// Stream one event line to every connection subscribed to `job`.
  /// Progress events are rate-limited (~5/s); the final event
  /// (`final_event` true) always goes out and detaches the subscribers.
  void push_event(Job& job, bool final_event);
  /// Render the full OpenMetrics exposition (registry + per-job families).
  [[nodiscard]] std::string exposition();
  void handle_line(Connection& conn, const std::string& line);
  void send_line(int fd, const std::string& line);
  void reply_error(Connection& conn, const std::string& msg);
  void reply_results(int fd, const Job& job);
  void notify_waiters(const Job& job);
  void run_next_job();
  void run_campaign_job(Job& job);
  void run_exhaustive_job(Job& job);
  [[nodiscard]] bool write_job_outputs(Job& job, const std::string& trials,
                                       const std::string& lineage,
                                       const std::string& aggregate);

  ServerOptions opt_;
  int listen_fd_ = -1;
  volatile bool stop_ = false;
  bool in_service_ = false;  ///< re-entrancy guard for the mid-job pass
  std::vector<Connection> conns_;
  /// Deque, NOT vector: the mid-job service pass can accept a `submit`
  /// (push_back) while run_next_job / the shard progress callback hold a
  /// reference to the running Job, so elements must stay pointer-stable
  /// under growth.
  std::deque<Job> jobs_;
  std::deque<std::string> queue_;  ///< FIFO of queued job ids
  std::string running_;            ///< id of the job executing now ('')
  unsigned next_job_ = 1;

  /// Daemon-level instruments + time-series rings (the telemetry plane).
  /// Private registry, NOT default_registry(): job execution must never
  /// share instruments with the daemon's own accounting.
  obs::Registry metrics_;
  obs::TelemetrySampler sampler_;
  std::uint64_t t0_ns_ = 0;          ///< start() timestamp (uptime origin)
  std::uint64_t last_sample_ns_ = 0;
};

}  // namespace abftecc::campaignd
