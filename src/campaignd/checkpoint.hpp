// Fletcher-64-verified sweep progress checkpoints (ISSUE 7).
//
// A sharded campaign's unit of durable progress is the chunk: a
// contiguous trial range one worker executed, carried as its partial
// Accumulator plus the verbatim per-trial JSONL (and lineage JSONL)
// lines. The supervisor persists every finished chunk to its own file
// under the checkpoint directory:
//
//   <dir>/manifest.json            job fingerprint + chunk geometry
//   <dir>/chunk-000042.json        payload line + "fletcher64 <hex>" line
//
// Writes are atomic (tmp file in the same directory, fsync, rename), so
// a SIGKILL at any instant leaves only whole verified chunks behind; the
// completed-chunk bitmap IS the set of files that exist and verify. On
// resume the loader re-checks every chunk's Fletcher-64 and refuses a
// mismatched manifest (different job fingerprint or chunk geometry) or a
// corrupted chunk file outright -- resuming from tampered partials must
// be an error, never a silent wrong total.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/accumulator.hpp"

namespace abftecc::campaignd {

/// mkdir -p: create `path` and any missing parents (EEXIST is success).
[[nodiscard]] bool make_directories(const std::string& path,
                                    std::string* error);

/// Write `payload` to `path` atomically and durably: a tmp file in the
/// same directory is fully written and fsync'd before rename() makes it
/// visible, so a crash or power loss at any instant leaves either the
/// old file or the complete new one -- never a truncated mix. No
/// checksum trailer is added (checkpoint files get one on top of this;
/// see CampaignCheckpoint).
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     std::string_view payload,
                                     std::string* error);

/// One finished chunk: trial range [begin, end), its partial accumulator,
/// and the exact output lines its trials produced.
struct ChunkRecord {
  std::uint32_t id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  campaign::Accumulator acc;
  /// One write_trial_jsonl line per trial, in trial order, no '\n'.
  std::vector<std::string> trial_lines;
  /// Concatenated write_lineage_jsonl lines ('\n'-terminated; empty when
  /// lineage is off).
  std::string lineage_lines;
};

/// Canonical single-line JSON for a ChunkRecord (no trailing newline).
[[nodiscard]] std::string chunk_to_json(const ChunkRecord& rec);
/// Parse chunk_to_json() output. Returns false and fills `error`.
[[nodiscard]] bool chunk_from_json(std::string_view text, ChunkRecord* rec,
                                   std::string* error);

/// On-disk progress checkpoint for one job's sweep.
class CampaignCheckpoint {
 public:
  /// Bind to `dir` for a job with this fingerprint and chunk geometry
  /// (chunk count and trials are stamped into the manifest). Creates the
  /// directory and manifest if absent; when a manifest already exists it
  /// must match exactly, and every chunk file present is loaded and
  /// Fletcher-64-verified. Any mismatch or corruption fails hard.
  [[nodiscard]] bool open(const std::string& dir, std::uint64_t fingerprint,
                          std::uint64_t chunks, std::uint64_t trials,
                          std::uint64_t chunk_size, std::string* error);

  /// Persist one finished chunk atomically (tmp + fsync + rename).
  [[nodiscard]] bool store(const ChunkRecord& rec, std::string* error);

  [[nodiscard]] bool has(std::uint32_t id) const {
    return loaded_.find(id) != loaded_.end();
  }
  /// Chunks recovered from disk by open() (resumed progress).
  [[nodiscard]] const std::map<std::uint32_t, ChunkRecord>& loaded() const {
    return loaded_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::map<std::uint32_t, ChunkRecord> loaded_;
};

}  // namespace abftecc::campaignd
