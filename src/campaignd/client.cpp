#include "campaignd/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/json.hpp"

namespace abftecc::campaignd {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "connect " + socket_path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

std::optional<obs::JsonValue> Client::call(const std::string& request,
                                           std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  std::string msg = request;
  msg += '\n';
  std::size_t off = 0;
  while (off < msg.size()) {
    const ssize_t n =
        ::send(fd_, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = std::string("send: ") + std::strerror(errno);
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::read(fd_, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = std::string("read: ") + std::strerror(errno);
      return std::nullopt;
    }
    if (n == 0) {
      if (error != nullptr) *error = "daemon closed the connection";
      return std::nullopt;
    }
    if (c == '\n') break;
    line.push_back(c);
  }
  std::string perr;
  auto v = obs::json_parse(line, &perr);
  if (!v.has_value() && error != nullptr)
    *error = "malformed response: " + perr;
  return v;
}

namespace {

/// Lift a parsed response into success/failure: nullopt + error text when
/// the daemon said {"ok":false}.
std::optional<obs::JsonValue> check_ok(std::optional<obs::JsonValue> v,
                                       std::string* error) {
  if (!v.has_value()) return std::nullopt;
  if (!v->boolean("ok")) {
    if (error != nullptr)
      *error = std::string(v->str("error", "request failed"));
    return std::nullopt;
  }
  return v;
}

}  // namespace

bool Client::ping(std::string* error) {
  return check_ok(call(R"({"op":"ping"})", error), error).has_value();
}

std::optional<std::string> Client::submit(const JobSpec& spec,
                                          std::string* error) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("op", "submit");
  w.key("job");
  write_job_json(w, spec);
  w.end_object();
  const auto v = check_ok(call(w.take(), error), error);
  if (!v.has_value()) return std::nullopt;
  const std::string_view id = v->str("id");
  if (id.empty()) {
    if (error != nullptr) *error = "submit response carried no job id";
    return std::nullopt;
  }
  return std::string(id);
}

std::optional<obs::JsonValue> Client::op_with_id(std::string_view op,
                                                 const std::string& id,
                                                 std::string* error) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("op", op);
  w.field("id", id);
  w.end_object();
  return check_ok(call(w.take(), error), error);
}

bool Client::resume(const std::string& id, std::string* error) {
  return op_with_id("resume", id, error).has_value();
}

std::optional<obs::JsonValue> Client::wait(const std::string& id,
                                           std::string* error) {
  return op_with_id("wait", id, error);
}

std::optional<obs::JsonValue> Client::results(const std::string& id,
                                              std::string* error) {
  return op_with_id("results", id, error);
}

std::optional<obs::JsonValue> Client::status(std::string* error) {
  return check_ok(call(R"({"op":"status"})", error), error);
}

std::optional<obs::JsonValue> Client::jobs(std::string* error) {
  return check_ok(call(R"({"op":"jobs"})", error), error);
}

bool Client::shutdown_daemon(std::string* error) {
  return check_ok(call(R"({"op":"shutdown"})", error), error).has_value();
}

}  // namespace abftecc::campaignd
