#include "campaignd/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/json.hpp"

namespace abftecc::campaignd {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "connect " + socket_path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::send_all(const std::string& request, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  std::string msg = request;
  msg += '\n';
  std::size_t off = 0;
  while (off < msg.size()) {
    const ssize_t n =
        ::send(fd_, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<obs::JsonValue> Client::read_json_line(std::string* error) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::read(fd_, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = std::string("read: ") + std::strerror(errno);
      return std::nullopt;
    }
    if (n == 0) {
      if (error != nullptr) *error = "daemon closed the connection";
      return std::nullopt;
    }
    if (c == '\n') break;
    line.push_back(c);
  }
  std::string perr;
  auto v = obs::json_parse(line, &perr);
  if (!v.has_value() && error != nullptr)
    *error = "malformed response: " + perr;
  return v;
}

std::optional<obs::JsonValue> Client::call(const std::string& request,
                                           std::string* error) {
  if (!send_all(request, error)) return std::nullopt;
  return read_json_line(error);
}

namespace {

/// Start a request envelope: `{"protocol":N,"op":<op>` with the object
/// left open for op-specific fields.
obs::JsonWriter make_request(std::string_view op) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("protocol", kProtocolVersion);
  w.field("op", op);
  return w;
}

/// Lift a parsed response into success/failure: nullopt + error text when
/// the envelope version is foreign or the daemon said {"ok":false}. The
/// protocol check runs first -- an {"ok":false} from a daemon we cannot
/// actually talk to is still a mismatch, not an op failure -- and treats a
/// missing field as version 0 (a pre-versioning daemon).
std::optional<obs::JsonValue> check_ok(std::optional<obs::JsonValue> v,
                                       std::string* error) {
  if (!v.has_value()) return std::nullopt;
  if (const std::uint64_t got = v->u64("protocol", 0);
      got != kProtocolVersion) {
    if (error != nullptr)
      *error = "protocol mismatch: daemon speaks protocol " +
               std::to_string(got) + ", this client speaks protocol " +
               std::to_string(kProtocolVersion) +
               " -- restart the daemon from the same build";
    return std::nullopt;
  }
  if (!v->boolean("ok")) {
    if (error != nullptr)
      *error = std::string(v->str("error", "request failed"));
    return std::nullopt;
  }
  return v;
}

/// Close and serialize a make_request() envelope with no extra fields.
std::string bare_request(std::string_view op) {
  obs::JsonWriter w = make_request(op);
  w.end_object();
  return w.take();
}

}  // namespace

bool Client::ping(std::string* error) {
  return check_ok(call(bare_request("ping"), error), error).has_value();
}

std::optional<obs::JsonValue> Client::ping_info(std::string* error) {
  return check_ok(call(bare_request("ping"), error), error);
}

std::optional<obs::JsonValue> Client::metrics(std::string* error) {
  return check_ok(call(bare_request("metrics"), error), error);
}

std::optional<obs::JsonValue> Client::subscribe(
    const std::string& id,
    const std::function<void(const obs::JsonValue&)>& on_event,
    std::string* error) {
  obs::JsonWriter w = make_request("subscribe");
  w.field("id", id);
  w.end_object();
  if (!send_all(w.take(), error)) return std::nullopt;
  for (;;) {
    auto v = check_ok(read_json_line(error), error);
    if (!v.has_value()) return std::nullopt;
    if (on_event) on_event(*v);
    if (v->boolean("done")) return v;
  }
}

std::optional<std::string> Client::submit(const JobSpec& spec,
                                          std::string* error) {
  obs::JsonWriter w = make_request("submit");
  w.key("job");
  write_job_json(w, spec);
  w.end_object();
  const auto v = check_ok(call(w.take(), error), error);
  if (!v.has_value()) return std::nullopt;
  const std::string_view id = v->str("id");
  if (id.empty()) {
    if (error != nullptr) *error = "submit response carried no job id";
    return std::nullopt;
  }
  return std::string(id);
}

std::optional<obs::JsonValue> Client::op_with_id(std::string_view op,
                                                 const std::string& id,
                                                 std::string* error) {
  obs::JsonWriter w = make_request(op);
  w.field("id", id);
  w.end_object();
  return check_ok(call(w.take(), error), error);
}

bool Client::resume(const std::string& id, std::string* error) {
  return op_with_id("resume", id, error).has_value();
}

std::optional<obs::JsonValue> Client::wait(const std::string& id,
                                           std::string* error) {
  return op_with_id("wait", id, error);
}

std::optional<obs::JsonValue> Client::results(const std::string& id,
                                              std::string* error) {
  return op_with_id("results", id, error);
}

std::optional<obs::JsonValue> Client::status(std::string* error) {
  return check_ok(call(bare_request("status"), error), error);
}

std::optional<obs::JsonValue> Client::jobs(std::string* error) {
  return check_ok(call(bare_request("jobs"), error), error);
}

bool Client::shutdown_daemon(std::string* error) {
  return check_ok(call(bare_request("shutdown"), error), error).has_value();
}

}  // namespace abftecc::campaignd
