// CheckpointStore: checksummed in-memory snapshots of registered host
// ranges, the rollback tier of the recovery ladder (paper Section 4,
// Case 4: "neither strong ECC nor ABFT can correct -> checkpoint/restart").
//
// Kernels (via the ABFT runtime) track the structures a rollback must
// restore and commit at self-chosen epochs -- for FT-DGEMM the k-block
// progress after a clean verification, for FT-QR the panel boundary. Every
// snapshot carries a Fletcher-64 checksum taken at commit time; restore()
// re-verifies all of them first and refuses to touch application data when
// any snapshot is corrupted, so a rotten checkpoint is detected, never
// restored.
//
// When constructed with an Os, commit/restore charge the copy traffic to
// the simulated memory system (one 64-byte line per read out / write back),
// mirroring how Os::retire_and_migrate accounts its migration copies. The
// snapshot side of the copy is modeled as checkpoint storage outside the
// node (uncharged). Host bytes are copied before the traffic is charged, so
// a fault materializing during the charge never leaks into the snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "os/os.hpp"
#include "recovery/types.hpp"

namespace abftecc::recovery {

enum class RestoreResult : std::uint8_t {
  kOk,            ///< every snapshot verified and was copied back
  kNoCheckpoint,  ///< commit() was never called for the live ranges
  kCorrupted,     ///< a checksum mismatched; nothing was restored
};

constexpr std::string_view to_string(RestoreResult r) {
  switch (r) {
    case RestoreResult::kOk: return "ok";
    case RestoreResult::kNoCheckpoint: return "no_checkpoint";
    case RestoreResult::kCorrupted: return "corrupted";
  }
  return "?";
}

class CheckpointStore {
 public:
  using RangeId = std::size_t;

  /// `os` may be null (no traffic accounting; unit tests use this).
  explicit CheckpointStore(os::Os* os = nullptr) : os_(os) {}

  /// Register a host range a future commit() snapshots and restore()
  /// rewrites. The range must stay valid until untrack().
  RangeId track(std::string name, void* data, std::size_t bytes);
  void untrack(RangeId id);

  /// True when `p` falls inside a live tracked range (the OS escalation
  /// handler asks this before absorbing an unprotected error).
  [[nodiscard]] bool covers(const void* p) const;

  /// True when any live tracked range intersects [base, base + size).
  /// The escalation path uses this with the owning allocation's host span:
  /// allocations are page-granular, so a fault can land in the slack past
  /// the tracked bytes -- dead data a rollback need not even restore.
  [[nodiscard]] bool intersects(const void* base, std::size_t size) const;

  /// Snapshot every live tracked range and stamp the checkpoint with
  /// `epoch` (a caller-chosen progress tag, e.g. the verified k-block).
  /// Only the latest checkpoint is kept: bounded memory.
  void commit(std::uint64_t epoch);

  /// Verify all snapshots, then copy them back. All-or-nothing: a single
  /// checksum mismatch restores nothing and returns kCorrupted.
  RestoreResult restore();

  [[nodiscard]] bool has_checkpoint() const { return has_checkpoint_; }
  /// Progress tag of the last commit().
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t tracked_ranges() const;
  [[nodiscard]] std::uint64_t commits() const { return commits_; }
  [[nodiscard]] std::uint64_t restores() const { return restores_; }
  [[nodiscard]] std::uint64_t corrupted_detected() const {
    return corrupted_detected_;
  }

  /// Mutable view of a range's snapshot storage. Exists so tests and the
  /// cooperative_recovery example can model checkpoint-storage corruption
  /// (flip a byte here, then watch restore() refuse); not a recovery API.
  [[nodiscard]] std::span<std::byte> snapshot_bytes(RangeId id);

 private:
  struct Tracked {
    std::string name;
    std::byte* data = nullptr;
    std::size_t bytes = 0;
    std::vector<std::byte> snap;
    std::uint64_t sum = 0;
    bool live = false;
    bool in_checkpoint = false;  ///< snapshotted by the last commit()
  };

  void charge(const Tracked& t, bool is_restore) const;

  os::Os* os_;
  std::vector<Tracked> ranges_;
  bool has_checkpoint_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t corrupted_detected_ = 0;
};

}  // namespace abftecc::recovery
