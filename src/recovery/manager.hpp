// RecoveryManager: the policy engine of the recovery escalation ladder.
//
// The ABFT runtime hands kernels a pointer to this object; when a kernel's
// location/correction fails (or the OS demands a rollback for corruption
// outside ABFT's checksum space), the kernel walks the ladder through the
// manager:
//
//   tier 1  ABFT element correction      (the kernel's own verify path)
//   tier 2  bounded per-block recompute  (try_recompute / recompute_*)
//   tier 3  checkpoint rollback          (try_rollback / rollback)
//   tier 4  RecoveryVerdict::kUnrecoverable surfaced to the caller
//
// The manager owns the CheckpointStore, the per-run attempt budgets, and
// the OS escalation hook that turns would-be panics on checkpoint-covered
// data into rollback demands.
#pragma once

#include <cstdint>

#include "obs/trace.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/types.hpp"

namespace abftecc::recovery {

class RecoveryManager {
 public:
  explicit RecoveryManager(RecoveryOptions opt = {}, os::Os* os = nullptr)
      : opt_(opt), os_(os), store_(os) {}

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  [[nodiscard]] CheckpointStore& store() { return store_; }
  [[nodiscard]] const RecoveryOptions& options() const { return opt_; }
  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }

  /// Reset the per-run attempt budgets and any stale rollback demand.
  /// Kernels call this at the top of run()/factor().
  void begin_run();

  // --- tier 2: per-block recompute ----------------------------------------

  /// True (and books an attempt) while the episode's recompute budget
  /// lasts. The budget refills after every recovered episode: recompute
  /// makes forward progress, so bounding it per episode terminates.
  bool try_recompute();
  /// The re-verification after a recompute came back clean.
  void recompute_succeeded();

  // --- tier 3: checkpoint rollback ----------------------------------------

  /// True (and books an attempt) while the run's rollback budget lasts.
  /// Never refilled within a run: a rollback revisits old work, and a
  /// persistent fault would otherwise keep the run from terminating.
  bool try_rollback();
  /// Verified restore through the store; clears the demand flag on
  /// success. kCorrupted / kNoCheckpoint leave application data untouched.
  RestoreResult rollback();

  // --- tier 4 ---------------------------------------------------------------

  void mark_unrecoverable();

  // --- checkpointing --------------------------------------------------------

  /// One clean verification passed at progress `epoch`; commits every
  /// options().checkpoint_period-th call.
  void checkpoint_tick(std::uint64_t epoch);
  /// Unconditional commit at a kernel-chosen epoch (e.g. post-encode).
  void commit(std::uint64_t epoch);

  // --- OS escalation --------------------------------------------------------

  /// Os::handle_ecc_interrupt calls this for uncorrectable errors OUTSIDE
  /// ABFT protection. When the corrupted address is checkpoint-covered --
  /// directly, or anywhere inside an owning allocation whose live bytes
  /// are tracked (allocations are page-granular; the slack is dead data)
  /// -- the manager demands a rollback and absorbs the error (no panic);
  /// callers poll rollback_demanded() at their verification points.
  bool on_unprotected_error(const void* vaddr,
                            const void* region_base = nullptr,
                            std::size_t region_size = 0);
  [[nodiscard]] bool rollback_demanded() const { return rollback_demanded_; }

  /// Verdict over everything this node ran (campaign classification).
  [[nodiscard]] RecoveryVerdict verdict() const;

 private:
  void trace(obs::EventKind kind, std::uint64_t a0 = 0) const;
  [[nodiscard]] std::uint64_t now() const;

  RecoveryOptions opt_;
  os::Os* os_;
  CheckpointStore store_;
  RecoveryStats stats_;
  unsigned episode_recomputes_ = 0;
  unsigned run_rollbacks_ = 0;
  std::size_t clean_verifies_ = 0;
  bool rollback_demanded_ = false;
};

}  // namespace abftecc::recovery
