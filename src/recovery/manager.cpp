#include "recovery/manager.hpp"

#include "obs/lineage.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace abftecc::recovery {

void RecoveryManager::trace(obs::EventKind kind, std::uint64_t a0) const {
  auto& tracer = obs::default_tracer();
  if (!tracer.enabled()) return;
  const std::uint64_t now =
      os_ != nullptr ? os_->system().stats().cpu_cycles : 0;
  tracer.instant(kind, now, 0, a0);
}

std::uint64_t RecoveryManager::now() const {
  return os_ != nullptr ? os_->system().stats().cpu_cycles : 0;
}

void RecoveryManager::begin_run() {
  episode_recomputes_ = 0;
  run_rollbacks_ = 0;
  clean_verifies_ = 0;
  rollback_demanded_ = false;
}

bool RecoveryManager::try_recompute() {
  if (!opt_.enable_recompute ||
      episode_recomputes_ >= opt_.max_recompute_attempts)
    return false;
  ++episode_recomputes_;
  ++stats_.recompute_attempts;
  trace(obs::EventKind::kRecompute, episode_recomputes_);
  obs::default_lineage().trial_event(obs::LineageStage::kRecompute, now(),
                                     episode_recomputes_);
  return true;
}

void RecoveryManager::recompute_succeeded() {
  ++stats_.recomputes;
  episode_recomputes_ = 0;  // forward progress: refill the episode budget
  obs::default_registry().counter("recovery.recomputes").add();
}

bool RecoveryManager::try_rollback() {
  if (!opt_.enable_rollback || run_rollbacks_ >= opt_.max_rollback_attempts)
    return false;
  ++run_rollbacks_;
  ++stats_.rollback_attempts;
  return true;
}

RestoreResult RecoveryManager::rollback() {
  obs::PhaseScope phase(obs::Phase::kRollback);
  const RestoreResult r = store_.restore();
  if (r == RestoreResult::kOk) {
    ++stats_.rollbacks;
    rollback_demanded_ = false;
    trace(obs::EventKind::kRollback, store_.epoch());
    obs::default_registry().counter("recovery.rollbacks").add();
    obs::default_lineage().trial_event(obs::LineageStage::kRollback, now(),
                                       store_.epoch());
  } else if (r == RestoreResult::kCorrupted) {
    ++stats_.corrupted_checkpoints;
  }
  return r;
}

void RecoveryManager::mark_unrecoverable() {
  ++stats_.unrecoverable;
  obs::default_registry().counter("recovery.unrecoverable").add();
  obs::default_lineage().trial_event(obs::LineageStage::kUnrecoverable,
                                     now());
}

void RecoveryManager::checkpoint_tick(std::uint64_t epoch) {
  if (++clean_verifies_ < opt_.checkpoint_period) return;
  clean_verifies_ = 0;
  commit(epoch);
}

void RecoveryManager::commit(std::uint64_t epoch) {
  obs::PhaseScope phase(obs::Phase::kCheckpoint);
  store_.commit(epoch);
  ++stats_.checkpoints;
  trace(obs::EventKind::kCheckpoint, epoch);
}

bool RecoveryManager::on_unprotected_error(const void* vaddr,
                                           const void* region_base,
                                           std::size_t region_size) {
  // Absorbable when the fault hit tracked bytes directly, or landed in the
  // page slack of an allocation whose live bytes are tracked (the slack is
  // dead data; the rollback restores everything the program can read).
  const bool covered =
      (vaddr != nullptr && store_.covers(vaddr)) ||
      (region_base != nullptr && store_.intersects(region_base, region_size));
  if (!covered) return false;
  rollback_demanded_ = true;
  ++stats_.escalations;
  obs::default_registry().counter("recovery.escalations").add();
  trace(obs::EventKind::kEscalated);
  return true;
}

RecoveryVerdict RecoveryManager::verdict() const {
  if (stats_.unrecoverable > 0) return RecoveryVerdict::kUnrecoverable;
  if (stats_.rollbacks > 0) return RecoveryVerdict::kRecoveredByRollback;
  if (stats_.recomputes > 0) return RecoveryVerdict::kRecoveredByRecompute;
  return RecoveryVerdict::kNotNeeded;
}

}  // namespace abftecc::recovery
