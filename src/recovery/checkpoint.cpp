#include "recovery/checkpoint.hpp"

#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace abftecc::recovery {

CheckpointStore::RangeId CheckpointStore::track(std::string name, void* data,
                                                std::size_t bytes) {
  ABFTECC_REQUIRE(data != nullptr && bytes > 0);
  Tracked t;
  t.name = std::move(name);
  t.data = static_cast<std::byte*>(data);
  t.bytes = bytes;
  t.live = true;
  ranges_.push_back(std::move(t));
  return ranges_.size() - 1;
}

void CheckpointStore::untrack(RangeId id) {
  if (id < ranges_.size()) {
    ranges_[id].live = false;
    ranges_[id].in_checkpoint = false;
    ranges_[id].snap.clear();
    ranges_[id].snap.shrink_to_fit();
  }
}

bool CheckpointStore::covers(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  for (const Tracked& t : ranges_)
    if (t.live && b >= t.data && b < t.data + t.bytes) return true;
  return false;
}

bool CheckpointStore::intersects(const void* base, std::size_t size) const {
  const auto* lo = static_cast<const std::byte*>(base);
  const auto* hi = lo + size;
  for (const Tracked& t : ranges_)
    if (t.live && t.data < hi && lo < t.data + t.bytes) return true;
  return false;
}

std::size_t CheckpointStore::tracked_ranges() const {
  std::size_t n = 0;
  for (const Tracked& t : ranges_)
    if (t.live) ++n;
  return n;
}

void CheckpointStore::charge(const Tracked& t, bool is_restore) const {
  if (os_ == nullptr) return;
  const auto phys = os_->virt_to_phys(t.data);
  if (!phys.has_value()) return;  // not an Os-backed range (workspace, test)
  const memsim::AccessKind kind =
      is_restore ? memsim::AccessKind::kWrite : memsim::AccessKind::kRead;
  for (std::uint64_t off = 0; off < t.bytes; off += 64)
    os_->system().access(*phys + off, kind);
}

void CheckpointStore::commit(std::uint64_t epoch) {
  for (Tracked& t : ranges_) {
    if (!t.live) continue;
    t.snap.assign(t.data, t.data + t.bytes);
    t.sum = fletcher64(t.snap.data(), t.snap.size());
    t.in_checkpoint = true;
    // Copy first, charge second: a fault that materializes while the copy
    // traffic streams through the memory system corrupts host data only,
    // never the snapshot just taken.
    charge(t, /*is_restore=*/false);
  }
  has_checkpoint_ = true;
  epoch_ = epoch;
  ++commits_;
  obs::default_registry().counter("recovery.checkpoints").add();
}

RestoreResult CheckpointStore::restore() {
  if (!has_checkpoint_) return RestoreResult::kNoCheckpoint;
  bool any = false;
  // Verification pass first: all-or-nothing, so a corrupted snapshot never
  // overwrites application data (not even partially).
  for (const Tracked& t : ranges_) {
    if (!t.live || !t.in_checkpoint) continue;
    any = true;
    if (fletcher64(t.snap.data(), t.snap.size()) != t.sum) {
      ++corrupted_detected_;
      obs::default_registry().counter("recovery.corrupted_checkpoints").add();
      return RestoreResult::kCorrupted;
    }
  }
  if (!any) return RestoreResult::kNoCheckpoint;
  for (Tracked& t : ranges_) {
    if (!t.live || !t.in_checkpoint) continue;
    std::memcpy(t.data, t.snap.data(), t.bytes);
    charge(t, /*is_restore=*/true);
  }
  ++restores_;
  obs::default_registry().counter("recovery.restores").add();
  return RestoreResult::kOk;
}

std::span<std::byte> CheckpointStore::snapshot_bytes(RangeId id) {
  ABFTECC_REQUIRE(id < ranges_.size());
  return {ranges_[id].snap.data(), ranges_[id].snap.size()};
}

}  // namespace abftecc::recovery
