// Shared types of the recovery escalation ladder (DESIGN.md "Recovery
// escalation ladder"): options, accounting, the final per-run verdict, and
// the Fletcher-style checksum that guards checkpoint snapshots.
//
// This header is dependency-free so sim::PlatformOptions and
// campaign::TrialOutcome can embed the types without pulling the OS layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace abftecc::recovery {

/// How a run that needed more than plain ABFT correction ended.
enum class RecoveryVerdict : std::uint8_t {
  kNotNeeded,             ///< tier 1 (ABFT element correction) sufficed
  kRecoveredByRecompute,  ///< tier 2: a block was regenerated from inputs
  kRecoveredByRollback,   ///< tier 3: restored from a verified checkpoint
  kUnrecoverable,         ///< tier 4: ladder exhausted; result not trusted
};

constexpr std::string_view to_string(RecoveryVerdict v) {
  switch (v) {
    case RecoveryVerdict::kNotNeeded: return "not_needed";
    case RecoveryVerdict::kRecoveredByRecompute:
      return "recovered_by_recompute";
    case RecoveryVerdict::kRecoveredByRollback:
      return "recovered_by_rollback";
    case RecoveryVerdict::kUnrecoverable: return "unrecoverable";
  }
  return "?";
}

/// Ladder configuration. Attempt bounds are per kernel run: recompute
/// attempts reset after each successfully recovered episode (progress was
/// made), rollback attempts never do (a rollback revisits old work, so an
/// unbounded fault keeps the run from terminating otherwise).
struct RecoveryOptions {
  bool enable_recompute = true;
  unsigned max_recompute_attempts = 2;
  bool enable_rollback = true;
  unsigned max_rollback_attempts = 2;
  /// Commit a checkpoint every this many clean verification passes.
  std::size_t checkpoint_period = 1;
};

/// Cumulative ladder accounting for one simulated node (all runs).
struct RecoveryStats {
  std::uint64_t recompute_attempts = 0;
  std::uint64_t recomputes = 0;  ///< attempts whose re-verification passed
  std::uint64_t rollback_attempts = 0;
  std::uint64_t rollbacks = 0;  ///< verified restores actually performed
  std::uint64_t checkpoints = 0;
  std::uint64_t corrupted_checkpoints = 0;  ///< checksum vetoed a restore
  /// Uncorrectable errors outside ABFT coverage absorbed by the ladder
  /// (each would have been an Os::panic without it).
  std::uint64_t escalations = 0;
  std::uint64_t unrecoverable = 0;
};

/// Fletcher-64 over bytes (two running 32-bit sums, modulo 2^32 - 1).
/// Guards checkpoint snapshots: a corrupted snapshot must be detected
/// before it is restored, never after.
[[nodiscard]] inline std::uint64_t fletcher64(const std::byte* data,
                                              std::size_t n) {
  constexpr std::uint64_t kMod = 0xFFFFFFFFull;
  std::uint64_t s1 = 0, s2 = 0;
  std::size_t i = 0;
  while (i < n) {
    // Accumulate in blocks small enough that the 64-bit sums cannot wrap
    // before the modulo reduction.
    const std::size_t block = i + 5000 < n ? i + 5000 : n;
    for (; i < block; ++i) {
      s1 += std::to_integer<std::uint64_t>(data[i]) + 1;  // +1: length-aware
      s2 += s1;
    }
    s1 %= kMod;
    s2 %= kMod;
  }
  return (s2 << 32) | s1;
}

}  // namespace abftecc::recovery
