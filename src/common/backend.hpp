// Memory-backend policy: the kernel <-> memory boundary, one level above
// the per-element Tap (common/tap.hpp).
//
// A MemBackend bundles three things a kernel needs from the platform it
// runs on:
//   1. a Tap for per-element instrumentation (sim mode issues every
//      reference into memsim; native mode compiles taps away),
//   2. a TickClock -- the backend's *native* time source, so FtStats phase
//      timers read simulated cycles in simulated mode and steady_clock in
//      native mode instead of always polling host wall-clock,
//   3. bulk `touch` + region registration, the degraded instrumentation
//      native mode keeps: kernels announce whole panels/tiles instead of
//      scalars, and fault injection poisons registered regions in place.
//
// MemBackend and MemTap are deliberately disjoint concepts (a tap has no
// `tap()`/`clock()`, a backend has no `read(p,n)`), so kernels can offer
// `run(Backend&)` and `run(Tap)` overloads side by side without ambiguity.
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/tap.hpp"

namespace abftecc {

enum class BackendMode : std::uint8_t {
  kSimulated,  ///< instrumented memsim path: cycles/energy/ECC authoritative
  kNative,     ///< hardware speed: region-level fault visibility only
};

constexpr std::string_view to_string(BackendMode m) {
  return m == BackendMode::kSimulated ? "sim" : "native";
}

/// Bulk-touch classification (mirrors memsim::AccessKind without pulling
/// the simulator headers into common/).
enum class MemOp : std::uint8_t { kRead, kWrite, kUpdate };

/// Type-erased monotone time source. Default-constructed it reads host
/// steady_clock nanoseconds; a simulated backend points it at the memory
/// system's cycle counter so phase attribution is deterministic and
/// immune to host scheduling noise.
class TickClock {
 public:
  /// Host wall clock: steady_clock nanoseconds.
  TickClock() = default;

  /// Custom source: `now_fn(ctx)` returns monotone ticks worth
  /// `seconds_per_tick` seconds each. `ctx` must outlive the clock.
  TickClock(const void* ctx, std::uint64_t (*now_fn)(const void*),
            double seconds_per_tick)
      : ctx_(ctx), now_(now_fn), seconds_per_tick_(seconds_per_tick) {}

  [[nodiscard]] std::uint64_t now() const {
    if (now_ != nullptr) return now_(ctx_);
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  [[nodiscard]] double seconds_per_tick() const { return seconds_per_tick_; }

  /// Seconds elapsed since a previous `now()` sample.
  [[nodiscard]] double seconds_since(std::uint64_t start) const {
    return static_cast<double>(now() - start) * seconds_per_tick_;
  }

 private:
  const void* ctx_ = nullptr;
  std::uint64_t (*now_)(const void*) = nullptr;
  double seconds_per_tick_ = 1e-9;
};

/// The backend contract (DESIGN.md section 10). `Tap` names the per-element
/// tap type handed to the inner loops; `touch` is the bulk path used where
/// per-element reporting would defeat native speed.
template <typename B>
concept MemBackend = requires(B& b, const void* p, std::size_t n, MemOp op) {
  typename B::Tap;
  requires MemTap<typename B::Tap>;
  { b.tap() } -> MemTap;
  { b.clock() } -> std::same_as<TickClock>;
  { b.mode() } -> std::same_as<BackendMode>;
  { b.touch(p, n, op) } -> std::same_as<void>;
};

/// Native backend: raw typed spans at hardware speed. Instrumentation
/// degrades to byte counters per bulk touch, and fault injection degrades
/// to in-place bit poisoning of registered regions -- there is no ECC
/// model between the kernel and its memory, which is exactly the software
/// half of the paper's cooperative scheme running on real silicon.
class NativeBackend {
 public:
  using Tap = NullTap;

  struct Region {
    void* base = nullptr;
    std::size_t size = 0;
    std::string name;
    bool abft_protected = false;
  };

  struct Counters {
    std::uint64_t touches = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t faults_injected = 0;
  };

  [[nodiscard]] Tap tap() const { return {}; }
  [[nodiscard]] TickClock clock() const { return {}; }
  [[nodiscard]] BackendMode mode() const { return BackendMode::kNative; }

  void touch(const void*, std::size_t n, MemOp op) {
    ++counters_.touches;
    switch (op) {
      case MemOp::kRead: counters_.bytes_read += n; break;
      case MemOp::kWrite: counters_.bytes_written += n; break;
      case MemOp::kUpdate:
        counters_.bytes_read += n;
        counters_.bytes_written += n;
        break;
    }
  }

  // --- region registry -----------------------------------------------------

  /// Register a buffer for fault-injection visibility. Returns a region id;
  /// id 0 is never used.
  std::size_t register_region(void* base, std::size_t size, std::string name,
                              bool abft_protected) {
    regions_.push_back(
        Region{base, size, std::move(name), abft_protected});
    return regions_.size();  // 1-based
  }

  void unregister_region(std::size_t id) {
    if (id == 0 || id > regions_.size()) return;
    regions_[id - 1] = Region{};
  }

  [[nodiscard]] const Region* region_of(const void* p) const {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    for (const Region& r : regions_) {
      if (r.base == nullptr) continue;
      const auto base = reinterpret_cast<std::uintptr_t>(r.base);
      if (addr >= base && addr < base + r.size) return &r;
    }
    return nullptr;
  }

  /// Flip one bit of a registered region in place -- the native analogue of
  /// a DRAM fault escaping weak ECC. Returns false for an out-of-range
  /// target.
  bool poison_bit(std::size_t id, std::size_t byte_offset, unsigned bit) {
    if (id == 0 || id > regions_.size() || bit > 7) return false;
    Region& r = regions_[id - 1];
    if (r.base == nullptr || byte_offset >= r.size) return false;
    static_cast<unsigned char*>(r.base)[byte_offset] ^=
        static_cast<unsigned char>(1u << bit);
    ++counters_.faults_injected;
    return true;
  }

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }

 private:
  std::vector<Region> regions_;
  Counters counters_;
};

static_assert(MemBackend<NativeBackend>);
static_assert(!MemBackend<NullTap>);
static_assert(!MemTap<NativeBackend>);

}  // namespace abftecc
