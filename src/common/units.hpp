// Physical-unit conventions used throughout the simulator.
//
// Everything that crosses a module boundary is in the base unit named here;
// keeping a single convention avoids the nJ-vs-pJ class of silent bugs.
#pragma once

#include <cstdint>

namespace abftecc {

/// Energies are accumulated in picojoules (double): a full kernel run is
/// ~1e12 pJ, far inside double's exact-integer range.
using Picojoules = double;

/// Times inside the memory simulator are DRAM-clock cycles (uint64) and are
/// converted to seconds only at reporting boundaries.
using Cycles = std::uint64_t;

constexpr double kPicojoulesPerJoule = 1e12;

inline double joules(Picojoules pj) { return pj / kPicojoulesPerJoule; }

/// Failure rates follow the paper's Table 5 convention:
/// FIT = failures per 1e9 device-hours, quoted per Mbit of memory.
struct FitPerMbit {
  double value = 0.0;

  /// Failures per second for `mbit` megabits of memory at this rate.
  [[nodiscard]] double failures_per_second(double mbit) const {
    constexpr double kSecondsPerBillionHours = 1e9 * 3600.0;
    return value * mbit / kSecondsPerBillionHours;
  }
};

}  // namespace abftecc
