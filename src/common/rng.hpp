// Deterministic, splittable PRNG (xoshiro256**) used by every test, bench and
// fault-injection campaign so runs are reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace abftecc {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain algorithm),
/// seeded through splitmix64 so any 64-bit seed gives a full-period state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derive an independent child stream (for per-worker determinism).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace abftecc
