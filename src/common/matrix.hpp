// Dense column-major matrices and non-owning views.
//
// Column-major (LAPACK convention) because the linalg substrate implements
// blocked BLAS/LAPACK-style kernels and the ABFT checksum relationships in
// the paper are expressed per matrix column/row.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace abftecc {

/// Non-owning mutable view of a column-major matrix block.
/// `ld` is the leading dimension (stride between columns), >= rows.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, std::size_t rows, std::size_t cols, std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    ABFTECC_REQUIRE(ld >= rows || (rows == 0 && cols == 0));
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t ld() const { return ld_; }
  [[nodiscard]] double* data() const { return data_; }

  double& operator()(std::size_t i, std::size_t j) const {
    return data_[j * ld_ + i];
  }

  /// Sub-block [r0, r0+nr) x [c0, c0+nc) sharing storage.
  [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0,
                                 std::size_t nr, std::size_t nc) const {
    ABFTECC_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_);
    return MatrixView(data_ + c0 * ld_ + r0, nr, nc, ld_);
  }

  /// Column j as a contiguous span.
  [[nodiscard]] std::span<double> col(std::size_t j) const {
    ABFTECC_REQUIRE(j < cols_);
    return {data_ + j * ld_, rows_};
  }

  void fill(double v) const {
    for (std::size_t j = 0; j < cols_; ++j)
      for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v;
  }

 private:
  double* data_ = nullptr;
  std::size_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Non-owning read-only view; implicitly constructible from MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    ABFTECC_REQUIRE(ld >= rows || (rows == 0 && cols == 0));
  }
  ConstMatrixView(const MatrixView& m)  // NOLINT(google-explicit-constructor)
      : ConstMatrixView(m.data(), m.rows(), m.cols(), m.ld()) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t ld() const { return ld_; }
  [[nodiscard]] const double* data() const { return data_; }

  const double& operator()(std::size_t i, std::size_t j) const {
    return data_[j * ld_ + i];
  }

  [[nodiscard]] ConstMatrixView block(std::size_t r0, std::size_t c0,
                                      std::size_t nr, std::size_t nc) const {
    ABFTECC_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_);
    return ConstMatrixView(data_ + c0 * ld_ + r0, nr, nc, ld_);
  }

  [[nodiscard]] std::span<const double> col(std::size_t j) const {
    ABFTECC_REQUIRE(j < cols_);
    return {data_ + j * ld_, rows_};
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Owning column-major matrix. Storage is a plain std::vector so ownership
/// and lifetime follow normal RAII; ECC-managed buffers use MatrixView over
/// os::malloc_ecc memory instead.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), storage_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t ld() const { return rows_; }

  double& operator()(std::size_t i, std::size_t j) {
    return storage_[j * rows_ + i];
  }
  const double& operator()(std::size_t i, std::size_t j) const {
    return storage_[j * rows_ + i];
  }

  [[nodiscard]] MatrixView view() {
    return MatrixView(storage_.data(), rows_, cols_, rows_);
  }
  [[nodiscard]] ConstMatrixView view() const {
    return ConstMatrixView(storage_.data(), rows_, cols_, rows_);
  }
  [[nodiscard]] MatrixView block(std::size_t r0, std::size_t c0,
                                 std::size_t nr, std::size_t nc) {
    return view().block(r0, c0, nr, nc);
  }

  [[nodiscard]] double* data() { return storage_.data(); }
  [[nodiscard]] const double* data() const { return storage_.data(); }
  [[nodiscard]] std::size_t size() const { return storage_.size(); }

  static Matrix identity(std::size_t n);
  /// Entries i.i.d. uniform in [lo, hi).
  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng,
                       double lo = -1.0, double hi = 1.0);
  /// Symmetric positive-definite: R*R^T + n*I from a random R.
  static Matrix random_spd(std::size_t n, Rng& rng);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> storage_;
};

/// Max-norm distance between two equally-sized views (used by tests).
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// Frobenius norm.
double frobenius_norm(ConstMatrixView a);

}  // namespace abftecc
