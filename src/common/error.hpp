// Lightweight status/contract utilities shared across abftecc.
//
// Module-boundary APIs report expected failure modes (uncorrectable codeword,
// exhausted frames, non-convergence) through status enums or std::optional;
// exceptions are reserved for programming errors caught by ABFTECC_REQUIRE.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <stdexcept>
#include <string>

namespace abftecc {

/// Thrown on contract violations (programming errors), never on expected
/// runtime outcomes such as an uncorrectable ECC word.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr,
                                        const std::source_location& loc) {
  throw ContractViolation(std::string("contract violated: ") + expr + " at " +
                          loc.file_name() + ":" + std::to_string(loc.line()));
}
}  // namespace detail

/// Precondition check that stays on in release builds: simulator correctness
/// depends on these holding, and the cost is negligible off the hot path.
#define ABFTECC_REQUIRE(expr)                                        \
  do {                                                               \
    if (!(expr)) [[unlikely]] {                                      \
      ::abftecc::detail::require_failed(                             \
          #expr, ::std::source_location::current());                 \
    }                                                                \
  } while (0)

}  // namespace abftecc
