// Memory-tap policy: how numerical kernels expose their load/store stream.
//
// The paper instruments binaries with Pin and feeds the resulting address
// stream into McSim/DRAMSim2. We substitute source-level instrumentation:
// every kernel in src/linalg and src/abft is a template over a Tap policy and
// reports each access to managed data through it. With the default NullTap
// all calls compile to nothing, so the uninstrumented kernels run at full
// speed; with sim::MemoryTap the same single source of truth drives the
// cache + DRAM timing simulation (no separate trace generator to drift).
#pragma once

#include <concepts>
#include <cstddef>

namespace abftecc {

/// A Tap receives the kernel's memory references in program order.
/// `read` / `write` are plain loads/stores; `update` is a read-modify-write
/// of the same location (one dirty line, two references).
template <typename T>
concept MemTap = requires(T tap, const void* p, std::size_t n) {
  { tap.read(p, n) } -> std::same_as<void>;
  { tap.write(p, n) } -> std::same_as<void>;
  { tap.update(p, n) } -> std::same_as<void>;
};

/// Zero-cost default: instrumentation disappears entirely.
struct NullTap {
  static constexpr bool is_null = true;
  void read(const void*, std::size_t = sizeof(double)) {}
  void write(const void*, std::size_t = sizeof(double)) {}
  void update(const void*, std::size_t = sizeof(double)) {}
};

static_assert(MemTap<NullTap>);

}  // namespace abftecc
