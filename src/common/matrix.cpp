#include "common/matrix.hpp"

#include <cmath>

namespace abftecc {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i) m(i, j) = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::random_spd(std::size_t n, Rng& rng) {
  Matrix r = random(n, n, rng);
  Matrix a(n, n);
  // A = R R^T + n I ensures eigenvalues >= n - ||R R^T|| margin; diagonal
  // dominance keeps Cholesky well-conditioned for any seed.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i <= j; ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += r(i, k) * r(j, k);
      a(i, j) = s;
      a(j, i) = s;
    }
    a(j, j) += static_cast<double>(n);
  }
  return a;
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  ABFTECC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

double frobenius_norm(ConstMatrixView a) {
  double s = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

}  // namespace abftecc
