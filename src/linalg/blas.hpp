// From-scratch BLAS subset (levels 1-3), templated on a memory Tap.
//
// These are the substrate kernels the ABFT algorithms wrap. They are written
// for clarity and instrumentability rather than peak FLOPS: cache-blocked
// loops in the natural column-major order, with every reference to matrix /
// vector data reported through the Tap (see common/tap.hpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <type_traits>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/tap.hpp"

namespace abftecc::linalg {

/// Cache-block edge for level-3 kernels. 64x64 doubles = 32 KiB per tile,
/// sized so two tiles fit in a modest L2 slice both on the host and in the
/// simulated hierarchy.
inline constexpr std::size_t kBlock = 64;

// ---------------------------------------------------------------------------
// Level 1
// ---------------------------------------------------------------------------

/// dot <- x . y
template <MemTap Tap = NullTap>
double dot(std::span<const double> x, std::span<const double> y,
           Tap tap = {}) {
  ABFTECC_REQUIRE(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    tap.read(&x[i]);
    tap.read(&y[i]);
    s += x[i] * y[i];
  }
  return s;
}

/// y <- alpha * x + y
template <MemTap Tap = NullTap>
void axpy(double alpha, std::span<const double> x, std::span<double> y,
          Tap tap = {}) {
  ABFTECC_REQUIRE(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    tap.read(&x[i]);
    tap.update(&y[i]);
    y[i] += alpha * x[i];
  }
}

/// x <- alpha * x
template <MemTap Tap = NullTap>
void scal(double alpha, std::span<double> x, Tap tap = {}) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    tap.update(&x[i]);
    x[i] *= alpha;
  }
}

/// y <- x
template <MemTap Tap = NullTap>
void copy(std::span<const double> x, std::span<double> y, Tap tap = {}) {
  ABFTECC_REQUIRE(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    tap.read(&x[i]);
    tap.write(&y[i]);
    y[i] = x[i];
  }
}

/// Euclidean norm, with scaling against overflow.
template <MemTap Tap = NullTap>
double nrm2(std::span<const double> x, Tap tap = {}) {
  double scale = 0.0, ssq = 1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    tap.read(&x[i]);
    const double v = std::abs(x[i]);
    if (v == 0.0) continue;
    if (scale < v) {
      ssq = 1.0 + ssq * (scale / v) * (scale / v);
      scale = v;
    } else {
      ssq += (v / scale) * (v / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

/// Index of the element of maximum absolute value (0 if empty).
template <MemTap Tap = NullTap>
std::size_t iamax(std::span<const double> x, Tap tap = {}) {
  std::size_t best = 0;
  double best_v = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    tap.read(&x[i]);
    const double v = std::abs(x[i]);
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Level 2
// ---------------------------------------------------------------------------

/// y <- alpha * A x + beta * y
template <MemTap Tap = NullTap>
void gemv(double alpha, ConstMatrixView a, std::span<const double> x,
          double beta, std::span<double> y, Tap tap = {}) {
  ABFTECC_REQUIRE(x.size() == a.cols() && y.size() == a.rows());
  for (std::size_t i = 0; i < y.size(); ++i) {
    tap.update(&y[i]);
    y[i] *= beta;
  }
  // Column-sweep order: streams A once, exactly the access pattern a
  // column-major matvec produces.
  for (std::size_t j = 0; j < a.cols(); ++j) {
    tap.read(&x[j]);
    const double xj = alpha * x[j];
    if (xj == 0.0) continue;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      tap.read(&a(i, j));
      tap.update(&y[i]);
      y[i] += a(i, j) * xj;
    }
  }
}

/// y <- alpha * A^T x + beta * y
template <MemTap Tap = NullTap>
void gemv_t(double alpha, ConstMatrixView a, std::span<const double> x,
            double beta, std::span<double> y, Tap tap = {}) {
  ABFTECC_REQUIRE(x.size() == a.rows() && y.size() == a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      tap.read(&a(i, j));
      tap.read(&x[i]);
      s += a(i, j) * x[i];
    }
    tap.update(&y[j]);
    y[j] = alpha * s + beta * y[j];
  }
}

/// Rank-1 update A <- A + alpha * x y^T
template <MemTap Tap = NullTap>
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         MatrixView a, Tap tap = {}) {
  ABFTECC_REQUIRE(x.size() == a.rows() && y.size() == a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    tap.read(&y[j]);
    const double yj = alpha * y[j];
    if (yj == 0.0) continue;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      tap.read(&x[i]);
      tap.update(&a(i, j));
      a(i, j) += x[i] * yj;
    }
  }
}

// ---------------------------------------------------------------------------
// Level 3
// ---------------------------------------------------------------------------

namespace detail {

/// One register tile of gemm: C[tile] += A[:,kb] * B[kb,:]. Kept separate so
/// gemm below reads as pure blocking structure.
template <MemTap Tap>
void gemm_tile(ConstMatrixView a, ConstMatrixView b, MatrixView c, Tap& tap) {
  for (std::size_t j = 0; j < c.cols(); ++j) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      tap.read(&b(k, j));
      const double bkj = b(k, j);
      if (bkj == 0.0) continue;
      for (std::size_t i = 0; i < c.rows(); ++i) {
        tap.read(&a(i, k));
        tap.update(&c(i, j));
        c(i, j) += a(i, k) * bkj;
      }
    }
  }
}

}  // namespace detail

/// C <- alpha * A B + beta * C  (no transposes; callers lay data out to fit).
template <MemTap Tap = NullTap>
void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c, Tap tap = {}) {
  ABFTECC_REQUIRE(a.rows() == c.rows() && b.cols() == c.cols() &&
                  a.cols() == b.rows());
  for (std::size_t j = 0; j < c.cols(); ++j) {
    for (std::size_t i = 0; i < c.rows(); ++i) {
      tap.update(&c(i, j));
      c(i, j) *= beta;
    }
  }
  if (alpha == 0.0) return;
  const std::size_t m = c.rows(), n = c.cols(), kk = a.cols();
#if defined(_OPENMP)
  // Uninstrumented runs parallelize over independent C column panels; the
  // instrumented (simulation) path stays sequential so the access stream
  // keeps program order.
  if constexpr (std::is_same_v<Tap, NullTap>) {
    if (n >= 2 * kBlock && m * n * kk >= (std::size_t{1} << 21)) {
#pragma omp parallel for schedule(static)
      for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
        const std::size_t jb = std::min(kBlock, n - j0);
        for (std::size_t k0 = 0; k0 < kk; k0 += kBlock) {
          const std::size_t kb = std::min(kBlock, kk - k0);
          for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
            const std::size_t ib = std::min(kBlock, m - i0);
            auto at = a.block(i0, k0, ib, kb);
            auto bt = b.block(k0, j0, kb, jb);
            auto ct = c.block(i0, j0, ib, jb);
            for (std::size_t j = 0; j < ct.cols(); ++j) {
              for (std::size_t k = 0; k < at.cols(); ++k) {
                const double bkj = alpha * bt(k, j);
                if (bkj == 0.0) continue;
                for (std::size_t i = 0; i < ct.rows(); ++i)
                  ct(i, j) += at(i, k) * bkj;
              }
            }
          }
        }
      }
      return;
    }
  }
#endif
  for (std::size_t k0 = 0; k0 < kk; k0 += kBlock) {
    const std::size_t kb = std::min(kBlock, kk - k0);
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
      const std::size_t ib = std::min(kBlock, m - i0);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
        const std::size_t jb = std::min(kBlock, n - j0);
        // alpha is folded by scaling B's contribution once per tile column
        // would change the access stream; instead pre-scale via a==1 fast
        // path and fall back to an alpha-aware tile.
        if (alpha == 1.0) {
          detail::gemm_tile(a.block(i0, k0, ib, kb), b.block(k0, j0, kb, jb),
                            c.block(i0, j0, ib, jb), tap);
        } else {
          auto at = a.block(i0, k0, ib, kb);
          auto bt = b.block(k0, j0, kb, jb);
          auto ct = c.block(i0, j0, ib, jb);
          for (std::size_t j = 0; j < ct.cols(); ++j) {
            for (std::size_t k = 0; k < at.cols(); ++k) {
              tap.read(&bt(k, j));
              const double bkj = alpha * bt(k, j);
              if (bkj == 0.0) continue;
              for (std::size_t i = 0; i < ct.rows(); ++i) {
                tap.read(&at(i, k));
                tap.update(&ct(i, j));
                ct(i, j) += at(i, k) * bkj;
              }
            }
          }
        }
      }
    }
  }
}

/// C <- C - A * A^T restricted to the lower triangle (blocked SYRK used by
/// the trailing update of Cholesky).
template <MemTap Tap = NullTap>
void syrk_lower_sub(ConstMatrixView a, MatrixView c, Tap tap = {}) {
  ABFTECC_REQUIRE(a.rows() == c.rows() && c.rows() == c.cols());
  const std::size_t n = c.rows(), kk = a.cols();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < kk; ++k) {
      tap.read(&a(j, k));
      const double ajk = a(j, k);
      if (ajk == 0.0) continue;
      for (std::size_t i = j; i < n; ++i) {
        tap.read(&a(i, k));
        tap.update(&c(i, j));
        c(i, j) -= a(i, k) * ajk;
      }
    }
  }
}

/// Solve X * L^T = B in place (right side, lower-triangular L transposed,
/// non-unit diagonal): the panel update of right-looking Cholesky.
template <MemTap Tap = NullTap>
void trsm_right_lower_trans(ConstMatrixView l, MatrixView b, Tap tap = {}) {
  ABFTECC_REQUIRE(l.rows() == l.cols() && b.cols() == l.rows());
  const std::size_t m = b.rows(), n = b.cols();
  for (std::size_t j = 0; j < n; ++j) {
    tap.read(&l(j, j));
    const double inv = 1.0 / l(j, j);
    for (std::size_t i = 0; i < m; ++i) {
      tap.update(&b(i, j));
      b(i, j) *= inv;
    }
    for (std::size_t k = j + 1; k < n; ++k) {
      tap.read(&l(k, j));
      const double lkj = l(k, j);
      if (lkj == 0.0) continue;
      for (std::size_t i = 0; i < m; ++i) {
        tap.read(&b(i, j));
        tap.update(&b(i, k));
        b(i, k) -= b(i, j) * lkj;
      }
    }
  }
}

/// Solve L * X = B in place (left side, lower-triangular, unit diagonal):
/// the U12 update of blocked LU.
template <MemTap Tap = NullTap>
void trsm_left_lower_unit(ConstMatrixView l, MatrixView b, Tap tap = {}) {
  ABFTECC_REQUIRE(l.rows() == l.cols() && b.rows() == l.rows());
  const std::size_t m = b.rows(), n = b.cols();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      tap.read(&b(k, j));
      const double bkj = b(k, j);
      if (bkj == 0.0) continue;
      for (std::size_t i = k + 1; i < m; ++i) {
        tap.read(&l(i, k));
        tap.update(&b(i, j));
        b(i, j) -= l(i, k) * bkj;
      }
    }
  }
}

/// Solve L * x = b in place for a vector (forward substitution, non-unit).
template <MemTap Tap = NullTap>
void trsv_lower(ConstMatrixView l, std::span<double> x, Tap tap = {}) {
  ABFTECC_REQUIRE(l.rows() == l.cols() && x.size() == l.rows());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    tap.read(&x[i]);
    for (std::size_t k = 0; k < i; ++k) {
      tap.read(&l(i, k));
      tap.read(&x[k]);
      s -= l(i, k) * x[k];
    }
    tap.read(&l(i, i));
    tap.write(&x[i]);
    x[i] = s / l(i, i);
  }
}

/// Solve U * x = b in place (backward substitution, non-unit), where U is
/// stored in the upper triangle of `u`.
template <MemTap Tap = NullTap>
void trsv_upper(ConstMatrixView u, std::span<double> x, Tap tap = {}) {
  ABFTECC_REQUIRE(u.rows() == u.cols() && x.size() == u.rows());
  const std::size_t n = x.size();
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    tap.read(&x[ii]);
    for (std::size_t k = ii + 1; k < n; ++k) {
      tap.read(&u(ii, k));
      tap.read(&x[k]);
      s -= u(ii, k) * x[k];
    }
    tap.read(&u(ii, ii));
    tap.write(&x[ii]);
    x[ii] = s / u(ii, ii);
  }
}

/// Solve L^T * x = b in place where L is lower triangular (used after
/// Cholesky: L L^T x = b).
template <MemTap Tap = NullTap>
void trsv_lower_trans(ConstMatrixView l, std::span<double> x, Tap tap = {}) {
  ABFTECC_REQUIRE(l.rows() == l.cols() && x.size() == l.rows());
  const std::size_t n = x.size();
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    tap.read(&x[ii]);
    for (std::size_t k = ii + 1; k < n; ++k) {
      tap.read(&l(k, ii));
      tap.read(&x[k]);
      s -= l(k, ii) * x[k];
    }
    tap.read(&l(ii, ii));
    tap.write(&x[ii]);
    x[ii] = s / l(ii, ii);
  }
}

}  // namespace abftecc::linalg
