// Blocked dense factorizations: right-looking Cholesky (POTRF) and LU with
// partial pivoting (GETRF), the regular algorithms FT-Cholesky / FT-HPL wrap.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/blas.hpp"

namespace abftecc::linalg {

enum class FactorStatus {
  kOk,
  kNotPositiveDefinite,  ///< Cholesky hit a non-positive pivot.
  kSingular,             ///< LU hit an exactly-zero pivot column.
};

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

/// Unblocked lower Cholesky of a small square block, in place.
template <MemTap Tap = NullTap>
FactorStatus potf2(MatrixView a, Tap tap = {}) {
  ABFTECC_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    tap.read(&a(j, j));
    for (std::size_t k = 0; k < j; ++k) {
      tap.read(&a(j, k));
      d -= a(j, k) * a(j, k);
    }
    if (d <= 0.0 || !std::isfinite(d)) return FactorStatus::kNotPositiveDefinite;
    const double ljj = std::sqrt(d);
    tap.write(&a(j, j));
    a(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      tap.read(&a(i, j));
      for (std::size_t k = 0; k < j; ++k) {
        tap.read(&a(i, k));
        tap.read(&a(j, k));
        s -= a(i, k) * a(j, k);
      }
      tap.write(&a(i, j));
      a(i, j) = s * inv;
    }
  }
  return FactorStatus::kOk;
}

/// Blocked right-looking lower Cholesky, in place: A = L L^T, L overwrites
/// the lower triangle (the strictly-upper triangle is left untouched).
/// This is the 4-step loop of the paper's Section 2.1.
template <MemTap Tap = NullTap>
FactorStatus potrf(MatrixView a, std::size_t nb = kBlock, Tap tap = {}) {
  ABFTECC_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; k += nb) {
    const std::size_t b = std::min(nb, n - k);
    // (1) factor the diagonal block A11 = L11 L11^T
    if (auto st = potf2(a.block(k, k, b, b), tap); st != FactorStatus::kOk)
      return st;
    if (k + b < n) {
      const std::size_t rest = n - k - b;
      // (2) panel solve: L21 = A21 L11^{-T}
      trsm_right_lower_trans(ConstMatrixView(a.block(k, k, b, b)),
                             a.block(k + b, k, rest, b), tap);
      // (3) trailing update: A22 -= L21 L21^T (lower triangle only)
      syrk_lower_sub(ConstMatrixView(a.block(k + b, k, rest, b)),
                     a.block(k + b, k + b, rest, rest), tap);
    }
    // (4) recurse on the trailing matrix == continue the loop.
  }
  return FactorStatus::kOk;
}

// ---------------------------------------------------------------------------
// LU with partial pivoting
// ---------------------------------------------------------------------------

/// Swap rows r1 and r2 across columns [c0, c1).
template <MemTap Tap = NullTap>
void swap_rows(MatrixView a, std::size_t r1, std::size_t r2, std::size_t c0,
               std::size_t c1, Tap tap = {}) {
  if (r1 == r2) return;
  for (std::size_t j = c0; j < c1; ++j) {
    tap.update(&a(r1, j));
    tap.update(&a(r2, j));
    std::swap(a(r1, j), a(r2, j));
  }
}

/// Unblocked LU with partial pivoting on an m x n panel (m >= n), in place.
/// piv[j] (global row index offset r0) records the row swapped into row j.
template <MemTap Tap = NullTap>
FactorStatus getf2(MatrixView a, std::size_t r0, std::vector<std::size_t>& piv,
                   Tap tap = {}) {
  const std::size_t m = a.rows(), n = a.cols();
  ABFTECC_REQUIRE(m >= n);
  for (std::size_t j = 0; j < n; ++j) {
    // Pivot search down column j.
    std::size_t p = j;
    double best = std::abs(a(j, j));
    for (std::size_t i = j; i < m; ++i) {
      tap.read(&a(i, j));
      const double v = std::abs(a(i, j));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv.push_back(r0 + p);
    if (best == 0.0) return FactorStatus::kSingular;
    swap_rows(a, j, p, 0, n, tap);
    tap.read(&a(j, j));
    const double inv = 1.0 / a(j, j);
    for (std::size_t i = j + 1; i < m; ++i) {
      tap.update(&a(i, j));
      a(i, j) *= inv;
    }
    // Rank-1 update of the trailing panel columns.
    for (std::size_t k = j + 1; k < n; ++k) {
      tap.read(&a(j, k));
      const double ajk = a(j, k);
      if (ajk == 0.0) continue;
      for (std::size_t i = j + 1; i < m; ++i) {
        tap.read(&a(i, j));
        tap.update(&a(i, k));
        a(i, k) -= a(i, j) * ajk;
      }
    }
  }
  return FactorStatus::kOk;
}

/// Blocked LU with partial pivoting, in place: P A = L U. `piv` holds, for
/// each column j, the global row swapped with row j (LAPACK ipiv semantics).
template <MemTap Tap = NullTap>
FactorStatus getrf(MatrixView a, std::vector<std::size_t>& piv,
                   std::size_t nb = kBlock, Tap tap = {}) {
  const std::size_t m = a.rows(), n = a.cols();
  piv.clear();
  piv.reserve(std::min(m, n));
  for (std::size_t k = 0; k < std::min(m, n); k += nb) {
    const std::size_t b = std::min(nb, std::min(m, n) - k);
    // Panel factorization with pivot search over the full remaining height.
    const std::size_t piv_base = piv.size();
    if (auto st = getf2(a.block(k, k, m - k, b), k, piv, tap);
        st != FactorStatus::kOk)
      return st;
    // Apply the panel's row swaps to the columns left and right of it.
    for (std::size_t j = 0; j < b; ++j) {
      const std::size_t global = piv[piv_base + j];
      swap_rows(a, k + j, global, 0, k, tap);
      swap_rows(a, k + j, global, k + b, n, tap);
    }
    if (k + b < n) {
      // U12 = L11^{-1} A12.
      trsm_left_lower_unit(ConstMatrixView(a.block(k, k, b, b)),
                           a.block(k, k + b, b, n - k - b), tap);
      if (k + b < m) {
        // A22 -= L21 U12.
        gemm(-1.0, ConstMatrixView(a.block(k + b, k, m - k - b, b)),
             ConstMatrixView(a.block(k, k + b, b, n - k - b)), 1.0,
             a.block(k + b, k + b, m - k - b, n - k - b), tap);
      }
    }
  }
  return FactorStatus::kOk;
}

/// Apply recorded pivots to a right-hand side vector (forward order).
inline void apply_pivots(std::span<double> x,
                         std::span<const std::size_t> piv) {
  for (std::size_t j = 0; j < piv.size(); ++j) std::swap(x[j], x[piv[j]]);
}

/// Solve A x = b given the in-place LU factorization of A and its pivots.
/// x is overwritten from b.
template <MemTap Tap = NullTap>
void lu_solve(ConstMatrixView lu, std::span<const std::size_t> piv,
              std::span<double> x, Tap tap = {}) {
  apply_pivots(x, piv);
  // L has a unit diagonal stored implicitly.
  const std::size_t n = x.size();
  for (std::size_t j = 0; j < n; ++j) {
    tap.read(&x[j]);
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::size_t i = j + 1; i < n; ++i) {
      tap.read(&lu(i, j));
      tap.update(&x[i]);
      x[i] -= lu(i, j) * xj;
    }
  }
  trsv_upper(lu, x, tap);
}

}  // namespace abftecc::linalg
