#include "linalg/gemm_native.hpp"

#include "linalg/blas.hpp"

namespace abftecc::linalg {

namespace detail {

void gemm_native_scalar(double alpha, ConstMatrixView a, ConstMatrixView b,
                        double beta, MatrixView c) {
  // The Tap-templated blocked kernel with NullTap is already the scalar
  // blocked GEMM: instrumentation compiles to nothing.
  gemm(alpha, a, b, beta, c, NullTap{});
}

}  // namespace detail

bool native_simd_available() {
#ifdef ABFTECC_HAVE_AVX2_TU
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

const char* native_kernel_name() {
  return native_simd_available() ? "avx2-fma" : "scalar-blocked";
}

void gemm_native(double alpha, ConstMatrixView a, ConstMatrixView b,
                 double beta, MatrixView c) {
#ifdef ABFTECC_HAVE_AVX2_TU
  if (native_simd_available()) {
    detail::gemm_native_avx2(alpha, a, b, beta, c);
    return;
  }
#endif
  detail::gemm_native_scalar(alpha, a, b, beta, c);
}

}  // namespace abftecc::linalg
