// Householder QR factorization (GEQRF-style, in place) and the implicit-Q
// application needed to solve with it.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "linalg/blas.hpp"

namespace abftecc::linalg {

/// Householder QR of an m x n matrix (m >= n), in place: the upper triangle
/// becomes R, the essential parts of the Householder vectors v_j (with the
/// LAPACK convention v_j(j) = 1 implicit) are stored below the diagonal,
/// and tau holds the reflector coefficients. `extra` columns at the right
/// of `a` (e.g. appended checksum columns) are transformed along with the
/// matrix but never factored.
template <MemTap Tap = NullTap>
void geqrf(MatrixView a, std::span<double> tau, std::size_t extra = 0,
           Tap tap = {}) {
  const std::size_t m = a.rows();
  ABFTECC_REQUIRE(a.cols() >= extra);
  const std::size_t n = a.cols() - extra;
  ABFTECC_REQUIRE(m >= n && tau.size() == n);

  for (std::size_t j = 0; j < n; ++j) {
    // Build the reflector from column j below (and including) the diagonal.
    double norm_sq = 0.0;
    for (std::size_t i = j; i < m; ++i) {
      tap.read(&a(i, j));
      norm_sq += a(i, j) * a(i, j);
    }
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      tau[j] = 0.0;
      continue;
    }
    tap.read(&a(j, j));
    const double alpha = a(j, j);
    const double beta = alpha >= 0.0 ? -norm : norm;
    const double v0 = alpha - beta;  // un-normalized head of v
    // tau = (beta - alpha) / beta with the v(j)=1 convention.
    tau[j] = (beta - alpha) / beta;
    const double inv_v0 = 1.0 / v0;
    for (std::size_t i = j + 1; i < m; ++i) {
      tap.update(&a(i, j));
      a(i, j) *= inv_v0;  // store essential part of v
    }
    tap.write(&a(j, j));
    a(j, j) = beta;  // R(j,j)

    // Apply (I - tau v v^T) to the remaining columns, checksum columns
    // included.
    for (std::size_t c = j + 1; c < n + extra; ++c) {
      tap.read(&a(j, c));
      double s = a(j, c);  // v(j) = 1
      for (std::size_t i = j + 1; i < m; ++i) {
        tap.read(&a(i, j));
        tap.read(&a(i, c));
        s += a(i, j) * a(i, c);
      }
      s *= tau[j];
      tap.update(&a(j, c));
      a(j, c) -= s;
      for (std::size_t i = j + 1; i < m; ++i) {
        tap.read(&a(i, j));
        tap.update(&a(i, c));
        a(i, c) -= s * a(i, j);
      }
    }
  }
}

/// y <- Q^T y for the implicit Q of a geqrf-factored matrix.
template <MemTap Tap = NullTap>
void apply_qt(ConstMatrixView a, std::span<const double> tau,
              std::span<double> y, std::size_t extra = 0, Tap tap = {}) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols() - extra;
  ABFTECC_REQUIRE(y.size() == m && tau.size() == n);
  for (std::size_t j = 0; j < n; ++j) {
    if (tau[j] == 0.0) continue;
    tap.read(&y[j]);
    double s = y[j];
    for (std::size_t i = j + 1; i < m; ++i) {
      tap.read(&a(i, j));
      tap.read(&y[i]);
      s += a(i, j) * y[i];
    }
    s *= tau[j];
    tap.update(&y[j]);
    y[j] -= s;
    for (std::size_t i = j + 1; i < m; ++i) {
      tap.read(&a(i, j));
      tap.update(&y[i]);
      y[i] -= s * a(i, j);
    }
  }
}

/// Least-squares / square solve after geqrf: x = R^-1 (Q^T b)[0..n).
template <MemTap Tap = NullTap>
void qr_solve(ConstMatrixView a, std::span<const double> tau,
              std::span<const double> b, std::span<double> x,
              std::size_t extra = 0, Tap tap = {}) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols() - extra;
  ABFTECC_REQUIRE(b.size() == m && x.size() == n);
  std::vector<double> qtb(b.begin(), b.end());
  apply_qt(a, tau, qtb, extra, tap);
  for (std::size_t i = 0; i < n; ++i) x[i] = qtb[i];
  trsv_upper(a.block(0, 0, n, n), x, tap);
}

}  // namespace abftecc::linalg
