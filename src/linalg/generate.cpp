#include "linalg/generate.hpp"

#include "linalg/blas.hpp"

namespace abftecc::linalg {

namespace {

std::vector<double> random_vector(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

}  // namespace

LinearSystem make_spd_system(std::size_t n, Rng& rng) {
  LinearSystem sys;
  sys.a = Matrix::random_spd(n, rng);
  sys.x_true = random_vector(n, rng);
  sys.b.assign(n, 0.0);
  gemv(1.0, sys.a.view(), sys.x_true, 0.0, sys.b);
  return sys;
}

LinearSystem make_general_system(std::size_t n, Rng& rng) {
  LinearSystem sys;
  sys.a = Matrix::random(n, n, rng);
  // Diagonal dominance keeps LU with partial pivoting well away from
  // breakdown for every seed used by tests and benches.
  for (std::size_t i = 0; i < n; ++i)
    sys.a(i, i) += static_cast<double>(n);
  sys.x_true = random_vector(n, rng);
  sys.b.assign(n, 0.0);
  gemv(1.0, sys.a.view(), sys.x_true, 0.0, sys.b);
  return sys;
}

}  // namespace abftecc::linalg
