// Native-speed blocked DGEMM for the NativeBackend path (common/backend.hpp).
//
// Unlike the Tap-templated linalg::gemm, these kernels never report
// per-element references -- they exist to run at hardware speed. The AVX2+FMA
// variant lives in its own translation unit compiled with -mavx2 -mfma and is
// selected at runtime with __builtin_cpu_supports, so one binary serves both
// ISAs; hosts without AVX2 fall back to the scalar blocked kernel.
#pragma once

#include "common/matrix.hpp"

namespace abftecc::linalg {

/// True when the AVX2+FMA microkernel was built in AND the running CPU
/// supports it.
[[nodiscard]] bool native_simd_available();

/// Human-readable name of the kernel gemm_native dispatches to:
/// "avx2-fma" or "scalar-blocked". Bench reports carry this so CI on
/// non-AVX2 hosts can skip SIMD-specific expectations.
[[nodiscard]] const char* native_kernel_name();

/// c <- alpha * a * b + beta * c (column-major, views may be sub-blocks).
void gemm_native(double alpha, ConstMatrixView a, ConstMatrixView b,
                 double beta, MatrixView c);

namespace detail {
void gemm_native_scalar(double alpha, ConstMatrixView a, ConstMatrixView b,
                        double beta, MatrixView c);
#ifdef ABFTECC_HAVE_AVX2_TU
void gemm_native_avx2(double alpha, ConstMatrixView a, ConstMatrixView b,
                      double beta, MatrixView c);
#endif
}  // namespace detail

}  // namespace abftecc::linalg
