// Preconditioned conjugate gradient (Figure 1 of the paper), templated on a
// memory Tap so the same source drives both numerics and simulation.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "linalg/blas.hpp"

namespace abftecc::linalg {

/// Result of a CG solve.
struct CgResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

/// Options controlling the iteration.
struct CgOptions {
  std::size_t max_iterations = 1000;
  double tolerance = 1e-10;  ///< on ||r|| / ||b||
};

/// Jacobi (diagonal) preconditioner M = diag(A): the M of the paper's
/// Figure 1 line 7, solved trivially per element.
class JacobiPreconditioner {
 public:
  explicit JacobiPreconditioner(ConstMatrixView a) : inv_diag_(a.rows()) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double d = a(i, i);
      inv_diag_[i] = (d != 0.0) ? 1.0 / d : 1.0;
    }
  }

  template <MemTap Tap = NullTap>
  void apply(std::span<const double> r, std::span<double> z,
             Tap tap = {}) const {
    ABFTECC_REQUIRE(r.size() == z.size() && z.size() == inv_diag_.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      tap.read(&r[i]);
      tap.read(&inv_diag_[i]);
      tap.write(&z[i]);
      z[i] = r[i] * inv_diag_[i];
    }
  }

  [[nodiscard]] std::span<const double> inverse_diagonal() const {
    return inv_diag_;
  }

 private:
  std::vector<double> inv_diag_;
};

/// Working vectors for PCG; exposed so the ABFT wrapper can place them in
/// ECC-managed memory and register them with the runtime.
struct CgWorkspace {
  std::span<double> r;  ///< residual
  std::span<double> z;  ///< preconditioned residual
  std::span<double> p;  ///< search direction
  std::span<double> q;  ///< A p
};

/// One iteration of PCG (lines 3-10 of Figure 1). Returns the updated rho.
/// Exposed at this granularity because FT-CG verifies invariants between
/// iterations and the simulator runs "a few representative iterations".
template <MemTap Tap = NullTap>
double pcg_iteration(ConstMatrixView a, const JacobiPreconditioner& m,
                     std::span<double> x, CgWorkspace w, double rho,
                     Tap tap = {}) {
  gemv(1.0, a, w.p, 0.0, w.q, tap);                    // q = A p
  const double pq = dot<Tap>(w.p, w.q, tap);
  const double alpha = rho / pq;
  axpy(alpha, w.p, x, tap);                            // x += alpha p
  axpy(-alpha, w.q, w.r, tap);                         // r -= alpha q
  m.apply(w.r, w.z, tap);                              // M z = r
  const double rho_next = dot<Tap>(w.r, w.z, tap);
  const double beta = rho_next / rho;
  for (std::size_t i = 0; i < w.p.size(); ++i) {       // p = z + beta p
    tap.read(&w.z[i]);
    tap.update(&w.p[i]);
    w.p[i] = w.z[i] + beta * w.p[i];
  }
  return rho_next;
}

/// Full PCG solve of A x = b with Jacobi preconditioning.
template <MemTap Tap = NullTap>
CgResult pcg_solve(ConstMatrixView a, std::span<const double> b,
                   std::span<double> x, const CgOptions& opt = {},
                   Tap tap = {}) {
  const std::size_t n = b.size();
  ABFTECC_REQUIRE(a.rows() == n && a.cols() == n && x.size() == n);
  std::vector<double> r(n), z(n), p(n), q(n);
  JacobiPreconditioner m(a);

  // r0 = b - A x0
  gemv(-1.0, a, x, 0.0, r, tap);
  axpy(1.0, b, r, tap);
  m.apply(r, z, tap);
  copy<Tap>(z, p, tap);
  double rho = dot<Tap>(r, z, tap);

  const double bnorm = nrm2<Tap>(b, tap);
  const double threshold = opt.tolerance * (bnorm > 0.0 ? bnorm : 1.0);

  CgResult res;
  res.residual_norm = nrm2<Tap>(std::span<const double>(r), tap);
  if (res.residual_norm <= threshold) {
    res.converged = true;  // initial guess already solves the system
    return res;
  }
  CgWorkspace w{r, z, p, q};
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    rho = pcg_iteration(a, m, x, w, rho, tap);
    res.iterations = it + 1;
    res.residual_norm = nrm2<Tap>(std::span<const double>(r), tap);
    if (res.residual_norm <= threshold) {
      res.converged = true;
      break;
    }
  }
  return res;
}

}  // namespace abftecc::linalg
