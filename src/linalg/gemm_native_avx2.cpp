// AVX2+FMA blocked DGEMM microkernel. This TU is the only one compiled with
// -mavx2 -mfma; it must only be entered through gemm_native()'s runtime
// dispatch (see gemm_native.cpp), never called directly on a host without
// the ISA.
#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "linalg/gemm_native.hpp"

namespace abftecc::linalg::detail {

namespace {

// Register tile: 8 rows x 4 columns of C held in 8 ymm accumulators.
// Column-major storage makes the row direction contiguous, so the two
// 4-wide loads per (k, column-quad) step are unit stride.
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 4;
// k-panel depth per register-tile pass: bounds the B broadcast working set
// and keeps the A panel resident in L1/L2 across the j sweep.
constexpr std::size_t kKc = 256;

/// C(i0..i0+7, j0..j0+3) += A(i0..i0+7, k0..k0+klen) * B(k0.., j0..j0+3)
inline void micro_8x4(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                      std::size_t i0, std::size_t j0, std::size_t k0,
                      std::size_t klen, double alpha) {
  __m256d acc[2][kNr];
  for (auto& row : acc)
    for (auto& v : row) v = _mm256_setzero_pd();
  for (std::size_t k = k0; k < k0 + klen; ++k) {
    const __m256d a0 = _mm256_loadu_pd(&a(i0, k));
    const __m256d a1 = _mm256_loadu_pd(&a(i0 + 4, k));
    for (std::size_t jj = 0; jj < kNr; ++jj) {
      const __m256d bv = _mm256_broadcast_sd(&b(k, j0 + jj));
      acc[0][jj] = _mm256_fmadd_pd(a0, bv, acc[0][jj]);
      acc[1][jj] = _mm256_fmadd_pd(a1, bv, acc[1][jj]);
    }
  }
  const __m256d av = _mm256_set1_pd(alpha);
  for (std::size_t jj = 0; jj < kNr; ++jj) {
    double* c0 = &c(i0, j0 + jj);
    _mm256_storeu_pd(c0, _mm256_fmadd_pd(av, acc[0][jj],
                                         _mm256_loadu_pd(c0)));
    _mm256_storeu_pd(c0 + 4, _mm256_fmadd_pd(av, acc[1][jj],
                                             _mm256_loadu_pd(c0 + 4)));
  }
}

/// Scalar edge: C(i, j) += alpha * A(i, k0..) * B(k0.., j) over any shape.
inline void edge(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                 std::size_t i_begin, std::size_t i_end, std::size_t j_begin,
                 std::size_t j_end, std::size_t k0, std::size_t klen,
                 double alpha) {
  for (std::size_t j = j_begin; j < j_end; ++j)
    for (std::size_t i = i_begin; i < i_end; ++i) {
      double s = 0.0;
      for (std::size_t k = k0; k < k0 + klen; ++k) s += a(i, k) * b(k, j);
      c(i, j) += alpha * s;
    }
}

}  // namespace

void gemm_native_avx2(double alpha, ConstMatrixView a, ConstMatrixView b,
                      double beta, MatrixView c) {
  const std::size_t m = c.rows(), n = c.cols(), kk = a.cols();
  if (beta != 1.0) {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < m; ++i) c(i, j) *= beta;
  }
  const std::size_t m8 = m - m % kMr;
  const std::size_t n4 = n - n % kNr;
  for (std::size_t k0 = 0; k0 < kk; k0 += kKc) {
    const std::size_t klen = std::min(kKc, kk - k0);
    for (std::size_t j0 = 0; j0 < n4; j0 += kNr)
      for (std::size_t i0 = 0; i0 < m8; i0 += kMr)
        micro_8x4(a, b, c, i0, j0, k0, klen, alpha);
    // Remainder rows and columns.
    edge(a, b, c, m8, m, 0, n4, k0, klen, alpha);
    edge(a, b, c, 0, m, n4, n, k0, klen, alpha);
  }
}

}  // namespace abftecc::linalg::detail
