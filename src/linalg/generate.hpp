// Workload generators for the evaluation kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace abftecc::linalg {

/// A dense linear system A x = b with a known solution x_true.
struct LinearSystem {
  Matrix a;
  std::vector<double> b;
  std::vector<double> x_true;
};

/// SPD system for CG / Cholesky with a uniformly random true solution.
LinearSystem make_spd_system(std::size_t n, Rng& rng);

/// General (diagonally dominant, hence nonsingular) system for LU / HPL.
LinearSystem make_general_system(std::size_t n, Rng& rng);

}  // namespace abftecc::linalg
