// Scaling advisor: the Section 4 decision rule as a tool.
//
// Given a deployment (nodes, memory per node, ABFT recovery cost, the
// measured performance/energy impact of strong vs relaxed ECC), computes
// the Eq. (7)-(8) MTTF thresholds and the machine's achieved MTTF at the
// Table 5 rates, then recommends ARE (relax ECC on ABFT data) or ASE
// (keep strong ECC everywhere).
//
//   build/examples/scaling_advisor [nodes] [GB-per-node]
#include <cstdio>
#include <cstdlib>

#include "fault/model.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::fault;

  const double nodes = argc > 1 ? std::atof(argv[1]) : 1024.0;
  const double gb_per_node = argc > 2 ? std::atof(argv[2]) : 8.0;

  // Deployment assumptions (edit to taste).
  const double t0_seconds = 3600.0;       // native run time
  const double tau_ase = 0.05;            // strong-ECC slowdown
  const double tau_are = 0.005;           // relaxed-ECC slowdown
  const double t_c_seconds = 2.0;         // one ABFT recovery
  const double e_c_joules = 50.0;         // energy of one ABFT recovery
  const double delta_e_joules = 400.0 * nodes;  // per-run energy saving
  const double abft_fraction = 0.6;       // share of memory under ABFT

  std::printf("deployment: %.0f nodes x %.0f GB, ABFT covers %.0f%% of "
              "memory\n\n",
              nodes, gb_per_node, abft_fraction * 100);

  const double thr_t = mttf_threshold_perf(t_c_seconds, tau_are, tau_ase);
  const double thr_e =
      mttf_threshold_energy(e_c_joules, t0_seconds, tau_are, delta_e_joules);
  const double thr = mttf_threshold(thr_t, thr_e);
  std::printf("Eq.(7) performance threshold: MTTF_thr,t  = %.3g s\n", thr_t);
  std::printf("       energy threshold:      MTTF_thr,en = %.3g s\n", thr_e);
  std::printf("Eq.(8) deciding threshold:    MTTF_thr    = %.3g s\n\n", thr);

  const double mbit_per_node = gb_per_node * 1024 * 1024 * 1024 * 8 / 1e6;
  std::printf("%-34s %-14s %-10s\n", "ABFT-region protection", "MTTF_hetero",
              "verdict");
  for (const auto relaxed :
       {ecc::Scheme::kNone, ecc::Scheme::kSecded, ecc::Scheme::kChipkill}) {
    // Heterogeneous node: ABFT region relaxed, remainder chipkill (Eq. 3).
    std::vector<RegionSpec> regions{
        {mbit_per_node * abft_fraction, table5_rate(relaxed), 1.0},
        {mbit_per_node * (1 - abft_fraction),
         table5_rate(ecc::Scheme::kChipkill), 1.0}};
    const double mttf = mttf_hetero_seconds(regions, nodes);
    const bool deploy_are = mttf > thr;
    std::printf("%-34s %-14.4g %s\n",
                std::string("ABFT + ").append(ecc::to_string(relaxed)).c_str(),
                mttf,
                relaxed == ecc::Scheme::kChipkill
                    ? "(that IS ASE)"
                    : (deploy_are ? "ARE pays off" : "stay with ASE"));
  }
  std::printf(
      "\nExpected errors per run at each setting (Eq. 4), for context:\n");
  for (const auto relaxed : {ecc::Scheme::kNone, ecc::Scheme::kSecded}) {
    std::vector<RegionSpec> regions{
        {mbit_per_node * abft_fraction, table5_rate(relaxed), 1.0},
        {mbit_per_node * (1 - abft_fraction),
         table5_rate(ecc::Scheme::kChipkill), 1.0}};
    const double mttf = mttf_hetero_seconds(regions, nodes);
    std::printf("  ABFT + %-9s N_e = %.3g over a %.0f s run\n",
                std::string(ecc::to_string(relaxed)).c_str(),
                expected_errors(t0_seconds, tau_are, mttf), t0_seconds);
  }
  return 0;
}
