// The paper's headline flow, end to end on the simulated node:
//
//   1. ABFT allocates its data with malloc_ecc -> the OS maps contiguous
//      frames and programs the memory controller's ECC registers so the
//      region runs under *relaxed* ECC (SECDED) while the rest of the node
//      keeps chipkill.
//   2. A DRAM chip fails under an ABFT-protected cache line.
//   3. On the next fill the SECDED decoder detects but cannot correct;
//      the MC records the fault site in its error registers and raises an
//      interrupt.
//   4. The OS handler reads the memory-mapped registers, derives the
//      physical address, sees the page is ABFT-protected, and exposes the
//      *virtual* address through the kernel/user shared log (sysfs-style)
//      instead of panicking.
//   5. The ABFT runtime maps the address to a matrix element and FT-DGEMM
//      repairs exactly that element from one column checksum -- the
//      "simplified verification" of Section 3.2.2.
//
//   build/examples/cooperative_recovery
#include <cstdio>

#include "abft/ft_dgemm.hpp"
#include "abft/runtime.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace abftecc;
  constexpr std::size_t n = 96;

  // A node behind the Session facade: memory system (chipkill default),
  // OS, ABFT runtime, tap, injector -- wired as P_CK+P_SD, the paper's
  // cooperative design point.
  sim::Session s = sim::Session::Builder()
                       .strategy(sim::Strategy::kPartialChipkillSecded)
                       .hardware_assisted()
                       .build();

  std::printf("[1] malloc_ecc: ABFT structures under SECDED, rest chipkill\n");
  abft::FtDgemm::Buffers buf{s.abft_matrix(n + 1, n, "Ac"),
                             s.abft_matrix(n, n + 1, "Br"),
                             s.abft_matrix(n + 1, n + 1, "Cf")};
  std::printf("    MC ECC registers in use: %u of %u\n",
              s.memory().controller().ranges_in_use(),
              memsim::MemoryController::kMaxRanges);

  Rng rng(11);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtOptions opt;
  opt.hardware_assisted = true;  // Section 3.2.2 cooperative mode
  abft::FtDgemm ft(a.view(), b.view(), buf, opt, &s.runtime());
  sim::MemoryTap tap = s.tap();
  ft.run(tap);
  std::printf("    multiply finished (%llu hw-checks, no errors)\n",
              static_cast<unsigned long long>(ft.stats().verifications));

  // Push the result to DRAM so the fault lands in memory, not a cache.
  s.flush_caches();

  std::printf("[2] chip failure under C(5,7)'s cache line (2 stuck DQ lines)\n");
  double* victim = &buf.cf(5, 7);
  const auto vphys = *s.os().virt_to_phys(victim);
  s.injector().inject_chip_kill(vphys, 4, 0x3);

  std::printf("[3] application touches the line -> SECDED detects, cannot "
              "correct\n");
  s.memory().access(vphys, memsim::AccessKind::kRead);
  std::printf("    MC: %llu uncorrectable, error registers hold the fault "
              "site\n",
              static_cast<unsigned long long>(
                  s.memory().controller().uncorrectable_count()));

  std::printf("[4] OS interrupt handler: ABFT page -> expose, don't panic "
              "(panics: %llu)\n",
              static_cast<unsigned long long>(s.os().panic_count()));

  std::printf("[5] ABFT simplified verification repairs the element\n");
  const abft::FtStatus st = ft.verify_and_correct(tap);
  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  const double err = max_abs_diff(ft.result(), ref.view());
  std::printf("    status: %s, notifications used: %llu, max error vs plain "
              "gemm: %.3g\n",
              st == abft::FtStatus::kOk ? "ok" : "corrected",
              static_cast<unsigned long long>(
                  ft.stats().hw_notifications_used),
              err);
  std::printf("%s\n", err < 1e-8 ? "cooperative recovery: SUCCESS"
                                 : "cooperative recovery: FAILED");
  return err < 1e-8 ? 0 : 1;
}
