// The paper's headline flow, end to end on the simulated node:
//
//   1. ABFT allocates its data with malloc_ecc -> the OS maps contiguous
//      frames and programs the memory controller's ECC registers so the
//      region runs under *relaxed* ECC (SECDED) while the rest of the node
//      keeps chipkill.
//   2. A DRAM chip fails under an ABFT-protected cache line.
//   3. On the next fill the SECDED decoder detects but cannot correct;
//      the MC records the fault site in its error registers and raises an
//      interrupt.
//   4. The OS handler reads the memory-mapped registers, derives the
//      physical address, sees the page is ABFT-protected, and exposes the
//      *virtual* address through the kernel/user shared log (sysfs-style)
//      instead of panicking.
//   5. The ABFT runtime maps the address to a matrix element and FT-DGEMM
//      repairs exactly that element from one column checksum -- the
//      "simplified verification" of Section 3.2.2.
//
// Then the recovery escalation ladder for the faults steps 1-5 cannot
// absorb (paper Section 4, Case 4):
//
//   6. A multi-error pattern ABFT cannot locate -> tier 2: the damaged
//      blocks are recomputed from the pristine inputs.
//   7. An uncorrectable error OUTSIDE ABFT's checksum space -> the OS
//      offers it to the ladder instead of panicking; the manager demands
//      a rollback to the last checksummed checkpoint and restores it.
//   8. A checkpoint whose storage itself rotted -> the Fletcher-64
//      verification refuses the restore; the corruption is detected,
//      never copied back over live data.
//
//   build/examples/cooperative_recovery
#include <cstdio>

#include <string>

#include "abft/ft_dgemm.hpp"
#include "abft/runtime.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"
#include "recovery/manager.hpp"
#include "sim/platform.hpp"

int main() {
  using namespace abftecc;
  constexpr std::size_t n = 96;

  // A node behind the Session facade: memory system (chipkill default),
  // OS, ABFT runtime, tap, injector -- wired as P_CK+P_SD, the paper's
  // cooperative design point.
  sim::Session s = sim::Session::Builder()
                       .strategy(sim::Strategy::kPartialChipkillSecded)
                       .hardware_assisted()
                       .build();

  std::printf("[1] malloc_ecc: ABFT structures under SECDED, rest chipkill\n");
  abft::FtDgemm::Buffers buf{s.abft_matrix(n + 1, n, "Ac"),
                             s.abft_matrix(n, n + 1, "Br"),
                             s.abft_matrix(n + 1, n + 1, "Cf")};
  std::printf("    MC ECC registers in use: %u of %u\n",
              s.memory().controller().ranges_in_use(),
              memsim::MemoryController::kMaxRanges);

  Rng rng(11);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtOptions opt;
  opt.hardware_assisted = true;  // Section 3.2.2 cooperative mode
  abft::FtDgemm ft(a.view(), b.view(), buf, opt, &s.runtime());
  sim::MemoryTap tap = s.tap();
  ft.run(tap);
  std::printf("    multiply finished (%llu hw-checks, no errors)\n",
              static_cast<unsigned long long>(ft.stats().verifications));

  // Push the result to DRAM so the fault lands in memory, not a cache.
  s.flush_caches();

  std::printf("[2] chip failure under C(5,7)'s cache line (2 stuck DQ lines)\n");
  double* victim = &buf.cf(5, 7);
  const auto vphys = *s.os().virt_to_phys(victim);
  s.injector().inject_chip_kill(vphys, 4, 0x3);

  std::printf("[3] application touches the line -> SECDED detects, cannot "
              "correct\n");
  s.memory().access(vphys, memsim::AccessKind::kRead);
  std::printf("    MC: %llu uncorrectable, error registers hold the fault "
              "site\n",
              static_cast<unsigned long long>(
                  s.memory().controller().uncorrectable_count()));

  std::printf("[4] OS interrupt handler: ABFT page -> expose, don't panic "
              "(panics: %llu)\n",
              static_cast<unsigned long long>(s.os().panic_count()));

  std::printf("[5] ABFT simplified verification repairs the element\n");
  const abft::FtStatus st = ft.verify_and_correct(tap);
  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  const double err = max_abs_diff(ft.result(), ref.view());
  std::printf("    status: %s, notifications used: %llu, max error vs plain "
              "gemm: %.3g\n",
              st == abft::FtStatus::kOk ? "ok" : "corrected",
              static_cast<unsigned long long>(
                  ft.stats().hw_notifications_used),
              err);
  std::printf("%s\n", err < 1e-8 ? "cooperative recovery: SUCCESS"
                                 : "cooperative recovery: FAILED");
  if (err >= 1e-8) return 1;

  // --- the escalation ladder (Case 4) ------------------------------------

  std::printf("\n[6] ladder tier 2: ambiguous 2x2 error grid mid-multiply\n");
  sim::Session s2 = sim::Session::Builder()
                        .strategy(sim::Strategy::kPartialChipkillSecded)
                        .ladder()
                        .build();
  recovery::RecoveryManager* rm = s2.recovery();
  abft::FtDgemm::Buffers buf2{s2.abft_matrix(n + 1, n, "Ac2"),
                              s2.abft_matrix(n, n + 1, "Br2"),
                              s2.abft_matrix(n + 1, n + 1, "Cf2")};
  Rng rng2(12);
  Matrix a2 = Matrix::random(n, n, rng2), b2 = Matrix::random(n, n, rng2);
  abft::FtDgemm ft2(a2.view(), b2.view(), buf2, {}, &s2.runtime());
  // Four equal hits forming a grid: row/column residual pairing is
  // ambiguous, so plain ABFT correction refuses (Case 4) and the ladder's
  // block recompute from the pristine inputs takes over.
  s2.tap_context().set_ref_trigger(120000, [&] {
    buf2.cf(10, 20) += 1000.0;
    buf2.cf(10, 30) += 1000.0;
    buf2.cf(40, 20) += 1000.0;
    buf2.cf(40, 30) += 1000.0;
  });
  const abft::FtStatus st2 = ft2.run(s2.tap());
  Matrix ref2(n, n);
  linalg::gemm(1.0, a2.view(), b2.view(), 0.0, ref2.view());
  const double err2 = max_abs_diff(ft2.result(), ref2.view());
  std::printf("    status: %s, block recomputes: %llu, max error: %.3g\n",
              std::string(to_string(st2)).c_str(),
              static_cast<unsigned long long>(rm->stats().recomputes), err2);

  std::printf("[7] ladder tier 3: uncorrectable OUTSIDE ABFT -> rollback, "
              "not panic\n");
  // A plain (chipkill) scratch region, checkpointed by the ladder.
  MatrixView scratch = s2.plain_matrix(16, 16, "solver.state");
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j) scratch(i, j) = 1.0;
  const auto sid = rm->store().track("solver.state", scratch.data(),
                                     16 * 16 * sizeof(double));
  rm->commit(1);
  // Two flips in different bytes of one word: two chipkill symbols, the
  // guaranteed detected-uncorrectable pattern for the default scheme.
  const auto sphys = *s2.os().virt_to_phys(scratch.data());
  s2.flush_caches();
  s2.injector().inject_bit(sphys, 3);
  s2.injector().inject_bit(sphys + 3, 5);
  s2.memory().access(sphys, memsim::AccessKind::kRead);
  std::printf("    panics: %llu, escalations: %llu, rollback demanded: %s\n",
              static_cast<unsigned long long>(s2.os().panic_count()),
              static_cast<unsigned long long>(s2.os().escalations()),
              rm->rollback_demanded() ? "yes" : "no");
  bool ok7 = s2.os().panic_count() == 0 && rm->rollback_demanded();
  if (ok7 && rm->try_rollback() &&
      rm->rollback() == recovery::RestoreResult::kOk) {
    ok7 = scratch(0, 0) == 1.0;
    std::printf("    restored from checkpoint, corrupted word healed: %s\n",
                ok7 ? "yes" : "no");
  } else {
    ok7 = false;
  }

  std::printf("[8] a rotten checkpoint is detected, never restored\n");
  rm->commit(2);
  rm->store().snapshot_bytes(sid)[17] ^= std::byte{0x20};  // storage decay
  scratch(2, 2) = -4.0;  // live corruption a restore would want to undo
  const recovery::RestoreResult rr = rm->store().restore();
  const bool ok8 =
      rr == recovery::RestoreResult::kCorrupted && scratch(2, 2) == -4.0;
  std::printf("    restore(): %s, live data untouched: %s\n",
              std::string(to_string(rr)).c_str(),
              scratch(2, 2) == -4.0 ? "yes" : "no");
  rm->store().untrack(sid);

  const bool ladder_ok = err2 < 1e-6 && rm->stats().recomputes > 0 &&
                         ok7 && ok8;
  std::printf("%s\n", ladder_ok ? "escalation ladder: SUCCESS"
                                : "escalation ladder: FAILED");
  return ladder_ok ? 0 : 1;
}
