// The paper's headline flow, end to end on the simulated node:
//
//   1. ABFT allocates its data with malloc_ecc -> the OS maps contiguous
//      frames and programs the memory controller's ECC registers so the
//      region runs under *relaxed* ECC (SECDED) while the rest of the node
//      keeps chipkill.
//   2. A DRAM chip fails under an ABFT-protected cache line.
//   3. On the next fill the SECDED decoder detects but cannot correct;
//      the MC records the fault site in its error registers and raises an
//      interrupt.
//   4. The OS handler reads the memory-mapped registers, derives the
//      physical address, sees the page is ABFT-protected, and exposes the
//      *virtual* address through the kernel/user shared log (sysfs-style)
//      instead of panicking.
//   5. The ABFT runtime maps the address to a matrix element and FT-DGEMM
//      repairs exactly that element from one column checksum -- the
//      "simplified verification" of Section 3.2.2.
//
//   build/examples/cooperative_recovery
#include <cstdio>

#include "abft/ft_dgemm.hpp"
#include "abft/runtime.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"
#include "sim/tap.hpp"

int main() {
  using namespace abftecc;
  constexpr std::size_t n = 96;

  // A node: memory system (chipkill default), OS, ABFT runtime, injector.
  memsim::MemorySystem sys(memsim::SystemConfig::scaled(8),
                           ecc::Scheme::kChipkill);
  os::Os os(sys);
  abft::Runtime runtime(&os);
  sim::TapContext tap_ctx(os, sys);
  fault::Injector injector(sys, os);

  std::printf("[1] malloc_ecc: ABFT structures under SECDED, rest chipkill\n");
  auto alloc = [&](std::size_t r, std::size_t c, const char* name) {
    void* p = os.malloc_ecc(r * c * sizeof(double), ecc::Scheme::kSecded,
                            name, /*abft_protected=*/true);
    return MatrixView(static_cast<double*>(p), r, c, r);
  };
  abft::FtDgemm::Buffers buf{alloc(n + 1, n, "Ac"), alloc(n, n + 1, "Br"),
                             alloc(n + 1, n + 1, "Cf")};
  std::printf("    MC ECC registers in use: %u of %u\n",
              sys.controller().ranges_in_use(),
              memsim::MemoryController::kMaxRanges);

  Rng rng(11);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtOptions opt;
  opt.hardware_assisted = true;  // Section 3.2.2 cooperative mode
  abft::FtDgemm ft(a.view(), b.view(), buf, opt, &runtime);
  sim::MemoryTap tap(tap_ctx);
  ft.run(tap);
  std::printf("    multiply finished (%llu hw-checks, no errors)\n",
              static_cast<unsigned long long>(ft.stats().verifications));

  // Push the result to DRAM so the fault lands in memory, not a cache.
  void* flusher = os.malloc_plain(4 * sys.config().l2.size_bytes, "flush");
  const auto fphys = *os.virt_to_phys(flusher);
  for (std::uint64_t off = 0; off < 4 * sys.config().l2.size_bytes; off += 64)
    sys.access(fphys + off, memsim::AccessKind::kRead);

  std::printf("[2] chip failure under C(5,7)'s cache line (2 stuck DQ lines)\n");
  double* victim = &buf.cf(5, 7);
  const auto vphys = *os.virt_to_phys(victim);
  injector.inject_chip_kill(vphys, 4, 0x3);

  std::printf("[3] application touches the line -> SECDED detects, cannot "
              "correct\n");
  sys.access(vphys, memsim::AccessKind::kRead);
  std::printf("    MC: %llu uncorrectable, error registers hold the fault "
              "site\n",
              static_cast<unsigned long long>(
                  sys.controller().uncorrectable_count()));

  std::printf("[4] OS interrupt handler: ABFT page -> expose, don't panic "
              "(panics: %llu)\n",
              static_cast<unsigned long long>(os.panic_count()));

  std::printf("[5] ABFT simplified verification repairs the element\n");
  const abft::FtStatus st = ft.verify_and_correct(tap);
  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  const double err = max_abs_diff(ft.result(), ref.view());
  std::printf("    status: %s, notifications used: %llu, max error vs plain "
              "gemm: %.3g\n",
              st == abft::FtStatus::kOk ? "ok" : "corrected",
              static_cast<unsigned long long>(
                  ft.stats().hw_notifications_used),
              err);
  std::printf("%s\n", err < 1e-8 ? "cooperative recovery: SUCCESS"
                                 : "cooperative recovery: FAILED");
  return err < 1e-8 ? 0 : 1;
}
