// Quickstart: fault-tolerant matrix multiply in a dozen lines.
//
// Multiplies two matrices with FT-DGEMM, flips a bit in the running result
// mid-way through (as a memory error would), and shows ABFT detecting,
// locating and repairing it -- no simulator required: the kernels are
// plain C++ you can call from any application.
//
//   build/examples/quickstart
#include <cstdio>

#include "abft/ft_dgemm.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"

int main() {
  using namespace abftecc;
  constexpr std::size_t n = 128;

  // 1. Some input data.
  Rng rng(2024);
  Matrix a = Matrix::random(n, n, rng);
  Matrix b = Matrix::random(n, n, rng);

  // 2. Buffers for the encoded operands: A gets a checksum row, B a
  //    checksum column, and the product carries both.
  Matrix ac(n + 1, n), br(n, n + 1), cf(n + 1, n + 1);
  abft::FtDgemm ft(a.view(), b.view(), {ac.view(), br.view(), cf.view()});

  // 3. Multiply. (Verification runs periodically inside.)
  if (ft.run() != abft::FtStatus::kOk) {
    std::printf("unexpected ABFT status\n");
    return 1;
  }
  std::printf("clean multiply done: %llu verifications, 0 errors\n",
              static_cast<unsigned long long>(ft.stats().verifications));

  // 4. Simulate a memory error striking the result...
  cf(37, 91) += 1e6;
  std::printf("injected: C(37,91) += 1e6\n");

  // 5. ...and let ABFT repair it from the checksum relationship.
  const abft::FtStatus st = ft.verify_and_correct();
  std::printf("verification: %s, %llu error(s) corrected\n",
              st == abft::FtStatus::kCorrectedErrors ? "corrected" : "clean",
              static_cast<unsigned long long>(ft.stats().errors_corrected));

  // 6. Check against a plain multiply.
  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  const double err = max_abs_diff(ft.result(), ref.view());
  std::printf("max |FT-DGEMM - plain gemm| = %.3g  ->  %s\n", err,
              err < 1e-8 ? "OK" : "MISMATCH");
  return err < 1e-8 ? 0 : 1;
}
