// Solving linear systems fault-tolerantly with the two solver kernels:
//
//   * FT-CG: an SPD system survives a corrupted residual vector mid-solve
//     (fail-continue soft error) via the invariant check r = b - A x.
//   * FT-HPL: a dense LU solve survives losing an entire "process" --
//     a quarter of the matrix rows -- mid-factorization (fail-stop),
//     rebuilt from the checksum rows carried through the elimination.
//
//   build/examples/ft_solver
#include <cstdio>
#include <vector>

#include "abft/ft_cg.hpp"
#include "abft/ft_hpl.hpp"
#include "linalg/generate.hpp"

namespace {

bool demo_ft_cg() {
  using namespace abftecc;
  std::printf("--- FT-CG: soft error in the residual vector ---\n");
  const std::size_t n = 256;
  Rng rng(5);
  linalg::LinearSystem sys = linalg::make_spd_system(n, rng);

  std::vector<double> b = sys.b, x(n, 0.0), r(n), z(n), p(n), q(n);
  linalg::CgOptions copt;
  copt.max_iterations = 4 * n;
  copt.tolerance = 1e-11;

  // A tap that corrupts r[100] after 1M memory references (mid-solve).
  // Taps are passed by value through the kernels, so the state lives
  // behind pointers.
  struct CorruptOnce {
    double* target;
    std::uint64_t* count;
    void read(const void*, std::size_t = 8) { tick(); }
    void write(const void*, std::size_t = 8) { tick(); }
    void update(const void*, std::size_t = 8) { tick(); }
    void tick() {
      if (++*count == 1'000'000) {
        *target += 1e8;
        std::printf("  [fault] r[100] += 1e8 at reference #%llu\n",
                    static_cast<unsigned long long>(*count));
      }
    }
  };
  abft::FtCg ft(sys.a.view(), b, {x, r, z, p, q}, copt);
  std::uint64_t refs = 0;
  CorruptOnce tap{&r[100], &refs};
  const abft::FtCgResult res = ft.run(tap);

  double err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(x[i] - sys.x_true[i]));
  std::printf("  converged=%d in %llu iterations, %llu error(s) corrected, "
              "max |x - x_true| = %.3g\n",
              res.cg.converged,
              static_cast<unsigned long long>(res.cg.iterations),
              static_cast<unsigned long long>(ft.stats().errors_corrected),
              err);
  return res.cg.converged && err < 1e-6;
}

bool demo_ft_hpl() {
  using namespace abftecc;
  std::printf("--- FT-HPL: fail-stop loss of one process ---\n");
  const std::size_t n = 256, procs = 4;
  Rng rng(6);
  linalg::LinearSystem sys = linalg::make_general_system(n, rng);

  const std::size_t h = n / procs;
  Matrix ae(n + h, n + 1), uc(h, n + 1);
  abft::FtHpl ft(sys.a.view(), sys.b, procs, {ae.view(), uc.view()});

  // Factor half-way, then "process 2 dies" taking its rows with it.
  ft.factor_steps(n / 2);
  std::printf("  factored %zu of %zu columns; killing process 2 (%zu rows)\n",
              ft.next_block(), n, h);
  ft.simulate_failstop(2);
  if (ft.recover_process(2) != abft::FtStatus::kCorrectedErrors) {
    std::printf("  recovery failed\n");
    return false;
  }
  std::printf("  recovered all %zu rows from the checksum relationships\n", h);
  if (ft.factor_steps(n) != abft::FtStatus::kOk) return false;

  std::vector<double> x(n);
  ft.solve(x);
  double err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(x[i] - sys.x_true[i]));
  std::printf("  solve finished: max |x - x_true| = %.3g\n", err);
  return err < 1e-6;
}

}  // namespace

int main() {
  const bool cg_ok = demo_ft_cg();
  const bool hpl_ok = demo_ft_hpl();
  std::printf("%s\n", cg_ok && hpl_ok ? "both solves survived their faults"
                                      : "FAILURE");
  return cg_ok && hpl_ok ? 0 : 1;
}
