// ECC explorer: what each memory-protection level can and cannot do, shown
// on real codewords -- the hardware half of the paper's trade-off.
//
//   build/examples/ecc_explorer
#include <cstdio>

#include "common/rng.hpp"
#include "ecc/chipkill.hpp"
#include "ecc/codec.hpp"
#include "ecc/secded.hpp"

namespace {

const char* name(abftecc::ecc::DecodeStatus s) {
  using abftecc::ecc::DecodeStatus;
  switch (s) {
    case DecodeStatus::kOk: return "clean";
    case DecodeStatus::kCorrected: return "CORRECTED";
    case DecodeStatus::kDetectedUncorrectable: return "DETECTED-UNCORRECTABLE";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace abftecc;
  using namespace abftecc::ecc;
  Rng rng(99);

  std::printf("=== SECDED (72,64): Hsiao odd-weight-column code ===\n");
  const std::uint64_t data = rng();
  {
    SecdedWord w = Secded::encode(data);
    std::printf("encode(%016llx) -> check byte %02x\n",
                static_cast<unsigned long long>(data), w.check);
    Secded::flip_bit(w, 17);
    unsigned fixed = 0;
    const auto st = Secded::decode(w, &fixed);
    std::printf("1-bit flip  (bit 17): %s at bit %u, data restored: %s\n",
                name(st), fixed, w.data == data ? "yes" : "no");
  }
  {
    SecdedWord w = Secded::encode(data);
    Secded::flip_bit(w, 17);
    Secded::flip_bit(w, 44);
    std::printf("2-bit flip  (17,44):  %s\n", name(Secded::decode(w)));
  }

  std::printf("\n=== Chipkill: RS(36,32) over GF(256), SSC-DSD ===\n");
  std::array<std::uint8_t, Chipkill::kDataSymbols> payload{};
  for (auto& v : payload) v = static_cast<std::uint8_t>(rng.below(256));
  {
    auto cw = Chipkill::encode(payload);
    cw[11] ^= 0xFF;  // an entire x4 chip returns garbage
    unsigned chip = 0;
    const auto st = Chipkill::decode(cw, &chip);
    std::array<std::uint8_t, Chipkill::kDataSymbols> out{};
    Chipkill::extract(cw, out);
    std::printf("whole-chip garbage (chip 11): %s at chip %u, data restored: "
                "%s\n",
                name(st), chip, out == payload ? "yes" : "no");
  }
  {
    auto cw = Chipkill::encode(payload);
    cw[3] ^= 0x01;
    cw[29] ^= 0x80;
    std::printf("two chips corrupted:          %s\n",
                name(Chipkill::decode(cw)));
  }

  std::printf("\n=== Whole cache lines through each scheme ===\n");
  std::printf("%-26s %-12s %-12s %-12s\n", "injected pattern", "No_ECC",
              "SECDED", "Chipkill");
  struct Pattern {
    const char* label;
    std::vector<BitFlip> flips;
    unsigned kill_chip = ~0u;
  };
  const Pattern patterns[] = {
      {"1 bit", {{100, false}}},
      {"2 bits, same word", {{3, false}, {40, false}}},
      {"2 bits, different words", {{3, false}, {100, false}}},
      {"whole x4 chip", {}, 3},
  };
  for (const auto& pat : patterns) {
    std::printf("%-26s", pat.label);
    for (const auto scheme :
         {Scheme::kNone, Scheme::kSecded, Scheme::kChipkill}) {
      std::array<std::uint8_t, kLineBytes> line{};
      for (auto& v : line) v = static_cast<std::uint8_t>(rng.below(256));
      const auto before = line;
      const LineResult res =
          pat.kill_chip != ~0u
              ? LineCodec::kill_chip(scheme, line, pat.kill_chip % 16)
              : LineCodec::process_line(scheme, line, pat.flips);
      const char* verdict =
          res.silent_corruption
              ? "SILENT!"
              : (res.status == DecodeStatus::kOk && line == before ? "clean"
                 : res.status == DecodeStatus::kCorrected ? "corrected"
                                                          : "detected");
      std::printf(" %-12s", verdict);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThis asymmetry is the paper's opportunity: where ABFT already "
      "guards the data, the expensive scheme is redundant.\n");
  return 0;
}
