// Command-line driver for the evaluation platform: run any ABFT kernel
// under any ECC strategy and print the full metric set -- the quickest way
// to explore the design space beyond the paper's figures.
//
//   build/examples/simulate [kernel] [strategy] [dim] [options...]
//     kernel   : dgemm | cholesky | cg | hpl          (default dgemm)
//     strategy : no_ecc | w_ck | p_ck | w_sd | p_sd | p_ck_sd  (default w_ck)
//     dim      : problem dimension                     (default per kernel)
//     options  : hw (hardware-assisted verification), dgms, closed (page),
//                native (run the kernel at hardware speed on the
//                NativeBackend: wall-clock + byte counters, no simulator)
//
//   e.g.  build/examples/simulate cg p_ck_sd 512 hw
//         build/examples/simulate dgemm no_ecc 1024 native
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/platform.hpp"

namespace {

using namespace abftecc;
using namespace abftecc::sim;

Kernel parse_kernel(const char* s) {
  if (!std::strcmp(s, "dgemm")) return Kernel::kDgemm;
  if (!std::strcmp(s, "cholesky")) return Kernel::kCholesky;
  if (!std::strcmp(s, "cg")) return Kernel::kCg;
  if (!std::strcmp(s, "hpl")) return Kernel::kHpl;
  std::fprintf(stderr, "unknown kernel '%s'\n", s);
  std::exit(2);
}

Strategy parse_strategy(const char* s) {
  if (!std::strcmp(s, "no_ecc")) return Strategy::kNoEcc;
  if (!std::strcmp(s, "w_ck")) return Strategy::kWholeChipkill;
  if (!std::strcmp(s, "p_ck")) return Strategy::kPartialChipkillNoEcc;
  if (!std::strcmp(s, "w_sd")) return Strategy::kWholeSecded;
  if (!std::strcmp(s, "p_sd")) return Strategy::kPartialSecdedNoEcc;
  if (!std::strcmp(s, "p_ck_sd")) return Strategy::kPartialChipkillSecded;
  std::fprintf(stderr, "unknown strategy '%s'\n", s);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Kernel kernel = Kernel::kDgemm;
  PlatformOptions opt;
  if (argc > 1) kernel = parse_kernel(argv[1]);
  if (argc > 2) opt.strategy = parse_strategy(argv[2]);
  if (argc > 3) {
    const auto dim = static_cast<std::size_t>(std::atoll(argv[3]));
    opt.dgemm_dim = opt.cholesky_dim = opt.cg_dim = opt.hpl_dim = dim;
  }
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "hw")) opt.hardware_assisted = true;
    else if (!std::strcmp(argv[i], "dgms")) opt.use_dgms = true;
    else if (!std::strcmp(argv[i], "closed"))
      opt.row_policy = memsim::RowBufferPolicy::kClosedPage;
    else if (!std::strcmp(argv[i], "native"))
      opt.backend = BackendMode::kNative;
  }

  const RunMetrics m = run_kernel(kernel, opt);

  if (m.backend == BackendMode::kNative) {
    // Native mode has no simulated memory system: report what the
    // NativeBackend actually measures -- wall-clock and bulk byte
    // counters -- plus the software FT outcome.
    std::printf("%s on the native backend (software-only ABFT)\n",
                std::string(kernel_name(kernel)).c_str());
    std::printf("  wall-clock time       %.4f ms\n", m.seconds * 1e3);
    std::printf("  ABFT bytes touched    %llu of %llu total\n",
                static_cast<unsigned long long>(m.abft_bytes),
                static_cast<unsigned long long>(m.total_bytes));
    std::printf("  ABFT: %llu verifications, %llu detected, %llu corrected\n",
                static_cast<unsigned long long>(m.ft.verifications),
                static_cast<unsigned long long>(m.ft.errors_detected),
                static_cast<unsigned long long>(m.ft.errors_corrected));
    return 0;
  }

  std::printf("%s under %s%s%s\n", std::string(kernel_name(kernel)).c_str(),
              std::string(spec(opt.strategy).label).c_str(),
              opt.hardware_assisted ? " +hw-assist" : "",
              opt.use_dgms ? " +DGMS" : "");
  std::printf("  simulated time        %.4f ms   (IPC %.3f)\n",
              m.seconds * 1e3, m.ipc);
  std::printf("  instructions          %llu   mem refs %llu\n",
              static_cast<unsigned long long>(m.sys.instructions),
              static_cast<unsigned long long>(m.sys.mem_refs));
  std::printf("  L1 miss rate          %.2f%%   L2 miss rate %.2f%%\n",
              m.l1.miss_rate() * 100, m.l2.miss_rate() * 100);
  std::printf("  DRAM row-hit rate     %.2f%%   writebacks %llu\n",
              m.dram.row_hit_rate() * 100,
              static_cast<unsigned long long>(m.sys.writebacks));
  std::printf("  memory energy         %.4f J  (dynamic %.4f, standby %.4f)\n",
              joules(m.memory_pj()), joules(m.mem_dynamic_pj),
              joules(m.mem_standby_pj));
  std::printf("  processor energy      %.4f J\n", joules(m.processor_pj));
  std::printf("  system energy         %.4f J\n", joules(m.system_pj()));
  std::printf("  refs w/ ABFT          %llu   w/o %llu\n",
              static_cast<unsigned long long>(m.refs_abft),
              static_cast<unsigned long long>(m.refs_other));
  std::printf("  ABFT: %llu verifications, %llu detected, %llu corrected, "
              "%llu hw notifications\n",
              static_cast<unsigned long long>(m.ft.verifications),
              static_cast<unsigned long long>(m.ft.errors_detected),
              static_cast<unsigned long long>(m.ft.errors_corrected),
              static_cast<unsigned long long>(m.ft.hw_notifications_used));
  return 0;
}
