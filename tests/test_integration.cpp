// Integration tests across the full stack: ABFT kernels running on the
// simulated memory system, DRAM fault injection flowing through ECC decode,
// MC error registers, the OS interrupt and the ABFT runtime -- the paper's
// cooperative pipeline -- plus the evaluation platform and scaling engine.
#include <gtest/gtest.h>

#include <memory>

#include "abft/ft_dgemm.hpp"
#include "abft/runtime.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"
#include "sim/platform.hpp"
#include "sim/scaling.hpp"
#include "sim/tap.hpp"

namespace abftecc {
namespace {

using sim::Kernel;
using sim::PlatformOptions;
using sim::Strategy;

/// A fully wired node for hand-driven experiments.
struct Rig {
  memsim::MemorySystem sys;
  os::Os os;
  abft::Runtime rt;
  sim::TapContext ctx;
  fault::Injector inj;
  explicit Rig(ecc::Scheme default_scheme = ecc::Scheme::kChipkill)
      : sys(memsim::SystemConfig::scaled(8), default_scheme),
        os(sys),
        rt(&os),
        ctx(os, sys),
        inj(sys, os) {}

  MatrixView matrix(std::size_t r, std::size_t c, ecc::Scheme s,
                    const char* name) {
    void* p = os.malloc_ecc(r * c * sizeof(double), s, name, true);
    EXPECT_NE(p, nullptr);
    return MatrixView(static_cast<double*>(p), r, c, r);
  }
};

TEST(Cooperative, AbftCorrectsSilentDramErrorUnderNoEcc) {
  // The headline flow for relaxed ECC: a DRAM bit flip in a No_ECC region
  // reaches the application silently; full ABFT verification finds and
  // repairs it from the checksum relationship.
  Rig rig;
  const std::size_t n = 64;
  Rng rng(1);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtDgemm::Buffers buf{
      rig.matrix(n + 1, n, ecc::Scheme::kNone, "Ac"),
      rig.matrix(n, n + 1, ecc::Scheme::kNone, "Br"),
      rig.matrix(n + 1, n + 1, ecc::Scheme::kNone, "Cf")};
  abft::FtDgemm ft(a.view(), b.view(), buf, {}, &rig.rt);
  sim::MemoryTap tap(rig.ctx);
  ASSERT_EQ(ft.run(tap), abft::FtStatus::kOk);

  // Push the result out of the caches (dirty writebacks overwrite DRAM),
  // then corrupt the line in DRAM and re-read through verification.
  void* flusher = rig.os.malloc_plain(4 * rig.sys.config().l2.size_bytes, "flush");
  auto fphys = *rig.os.virt_to_phys(flusher);
  for (std::uint64_t off = 0; off < 4 * rig.sys.config().l2.size_bytes;
       off += 64)
    rig.sys.access(fphys + off, memsim::AccessKind::kRead);

  double* victim = &buf.cf(20, 30);
  const auto vphys = rig.os.virt_to_phys(victim);
  ASSERT_TRUE(vphys.has_value());
  rig.inj.inject_bit(*vphys + 6, 3);  // high-order mantissa/exponent bits

  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  const auto st = ft.verify_and_correct(tap);
  EXPECT_EQ(st, abft::FtStatus::kCorrectedErrors);
  EXPECT_GE(rig.inj.stats().silent_corruptions, 1u);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-7);
}

TEST(Cooperative, HardwareNotificationDrivesSimplifiedVerification) {
  // SECDED-protected ABFT region hit by a whole-chip failure: ECC detects
  // but cannot correct, the MC records the fault site, the OS maps it to a
  // virtual address, and the kernel repairs exactly that element without
  // recomputing any checksum.
  Rig rig;
  const std::size_t n = 64;
  Rng rng(2);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtOptions opt;
  opt.hardware_assisted = true;
  abft::FtDgemm::Buffers buf{
      rig.matrix(n + 1, n, ecc::Scheme::kSecded, "Ac"),
      rig.matrix(n, n + 1, ecc::Scheme::kSecded, "Br"),
      rig.matrix(n + 1, n + 1, ecc::Scheme::kSecded, "Cf")};
  abft::FtDgemm ft(a.view(), b.view(), buf, opt, &rig.rt);
  sim::MemoryTap tap(rig.ctx);
  ASSERT_EQ(ft.run(tap), abft::FtStatus::kOk);

  // Flush, then kill a chip under the line holding cf(5, 7).
  void* flusher = rig.os.malloc_plain(4 * rig.sys.config().l2.size_bytes, "flush");
  auto fphys = *rig.os.virt_to_phys(flusher);
  for (std::uint64_t off = 0; off < 4 * rig.sys.config().l2.size_bytes;
       off += 64)
    rig.sys.access(fphys + off, memsim::AccessKind::kRead);

  double* victim = &buf.cf(5, 7);
  const auto vphys = rig.os.virt_to_phys(victim);
  // Two stuck bit-lines in the chip: a 2-bit-per-word pattern SECDED is
  // guaranteed to detect but cannot correct.
  rig.inj.inject_chip_kill(*vphys, 4, 0x3);
  // Touch the line so the fill decodes, fails, and raises the interrupt.
  rig.sys.access(*vphys, memsim::AccessKind::kRead);
  ASSERT_TRUE(rig.rt.errors_pending());

  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  EXPECT_EQ(ft.verify_and_correct(tap), abft::FtStatus::kOk);
  EXPECT_GE(ft.stats().hw_notifications_used, 1u);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-7);
}

TEST(Cooperative, HardwareAssistedSkipsWorkWhenNoErrorPending) {
  Rig rig;
  const std::size_t n = 64;
  Rng rng(3);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtOptions hw;
  hw.hardware_assisted = true;
  abft::FtDgemm::Buffers buf{
      rig.matrix(n + 1, n, ecc::Scheme::kSecded, "Ac"),
      rig.matrix(n, n + 1, ecc::Scheme::kSecded, "Br"),
      rig.matrix(n + 1, n + 1, ecc::Scheme::kSecded, "Cf")};
  abft::FtDgemm ft(a.view(), b.view(), buf, hw, &rig.rt);
  ASSERT_EQ(ft.run(sim::MemoryTap(rig.ctx)), abft::FtStatus::kOk);
  // Same kernel without hardware assist does strictly more verify work.
  Rig rig2;
  abft::FtDgemm::Buffers buf2{
      rig2.matrix(n + 1, n, ecc::Scheme::kSecded, "Ac"),
      rig2.matrix(n, n + 1, ecc::Scheme::kSecded, "Br"),
      rig2.matrix(n + 1, n + 1, ecc::Scheme::kSecded, "Cf")};
  abft::FtDgemm full(a.view(), b.view(), buf2, {}, &rig2.rt);
  ASSERT_EQ(full.run(sim::MemoryTap(rig2.ctx)), abft::FtStatus::kOk);
  EXPECT_LT(rig.sys.stats().mem_refs, rig2.sys.stats().mem_refs);
}

// --- Evaluation platform -----------------------------------------------------

PlatformOptions small_opts(Strategy s) {
  PlatformOptions o;
  o.strategy = s;
  o.dgemm_dim = 96;
  o.cholesky_dim = 96;
  o.cg_dim = 160;
  o.cg_iterations = 3;
  o.hpl_dim = 96;
  return o;
}

TEST(Platform, AllKernelsRunUnderAllStrategies) {
  for (const auto strat :
       {Strategy::kNoEcc, Strategy::kWholeChipkill,
        Strategy::kPartialChipkillSecded}) {
    for (const auto kernel : {Kernel::kDgemm, Kernel::kCholesky, Kernel::kCg,
                              Kernel::kHpl}) {
      const auto m = sim::run_kernel(kernel, small_opts(strat));
      EXPECT_NE(m.status, abft::FtStatus::kUncorrectable);
      EXPECT_GT(m.sys.mem_refs, 0u) << sim::kernel_name(kernel);
      EXPECT_GT(m.mem_dynamic_pj, 0.0);
      EXPECT_GT(m.seconds, 0.0);
      EXPECT_GT(m.refs_abft, 0u);
      EXPECT_GT(m.abft_bytes, 0u);
    }
  }
}

TEST(Platform, WholeChipkillCostsMoreMemoryEnergyThanNoEcc) {
  for (const auto kernel : {Kernel::kDgemm, Kernel::kCg}) {
    const auto none = sim::run_kernel(kernel, small_opts(Strategy::kNoEcc));
    const auto ck =
        sim::run_kernel(kernel, small_opts(Strategy::kWholeChipkill));
    EXPECT_GT(ck.memory_pj(), none.memory_pj()) << sim::kernel_name(kernel);
    EXPECT_LE(ck.ipc, none.ipc * 1.001);
  }
}

TEST(Platform, PartialChipkillRecoversMostOfTheGap) {
  const auto none = sim::run_kernel(Kernel::kDgemm, small_opts(Strategy::kNoEcc));
  const auto whole =
      sim::run_kernel(Kernel::kDgemm, small_opts(Strategy::kWholeChipkill));
  const auto partial = sim::run_kernel(
      Kernel::kDgemm, small_opts(Strategy::kPartialChipkillNoEcc));
  EXPECT_LT(partial.mem_dynamic_pj, whole.mem_dynamic_pj);
  EXPECT_GE(partial.mem_dynamic_pj, none.mem_dynamic_pj * 0.99);
}

TEST(Platform, RefsClassificationDominatedByAbftDataForDgemm) {
  const auto m = sim::run_kernel(Kernel::kDgemm, small_opts(Strategy::kNoEcc));
  // FT-DGEMM touches the encoded matrices almost exclusively (Table 4's
  // ratio of 654 at paper scale).
  EXPECT_GT(m.refs_abft, 10 * m.refs_other);
}

TEST(Platform, DgmsRunsAndPredictsCoarseForDgemm) {
  PlatformOptions o = small_opts(Strategy::kPartialChipkillSecded);
  o.use_dgms = true;
  const auto dgms = sim::run_kernel(Kernel::kDgemm, o);
  const auto ours =
      sim::run_kernel(Kernel::kDgemm, small_opts(Strategy::kPartialChipkillSecded));
  // ABFT-blind DGMS spends more memory energy than ABFT-directed ECC.
  EXPECT_GT(dgms.mem_dynamic_pj, ours.mem_dynamic_pj);
}

TEST(Platform, HardwareAssistReducesSimulatedWork) {
  PlatformOptions hw = small_opts(Strategy::kWholeChipkill);
  hw.hardware_assisted = true;
  const auto assisted = sim::run_kernel(Kernel::kDgemm, hw);
  const auto full =
      sim::run_kernel(Kernel::kDgemm, small_opts(Strategy::kWholeChipkill));
  EXPECT_LT(assisted.sys.mem_refs, full.sys.mem_refs);
  EXPECT_LT(assisted.seconds, full.seconds);
}

// --- Scaling engine ----------------------------------------------------------

TEST(Scaling, WeakScalingBenefitAndCostGrowWithScale) {
  sim::ScalingOptions opt;
  opt.process_counts = {100, 800, 6400};
  opt.base_dim = 448;  // operator larger than the scaled L2: real traffic
  opt.iterations = 3;
  opt.platform = small_opts(Strategy::kPartialChipkillNoEcc);
  sim::ScalingStudy study(opt);
  const auto points = study.weak_scaling(Strategy::kPartialChipkillNoEcc);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].energy_benefit_kj, points[i - 1].energy_benefit_kj);
    EXPECT_GT(points[i].recovery_cost_kj, points[i - 1].recovery_cost_kj);
    EXPECT_LT(points[i].mttf_hetero_seconds,
              points[i - 1].mttf_hetero_seconds);
  }
  // Benefit dominates recovery cost (Section 5.2's conclusion).
  for (const auto& p : points)
    EXPECT_GT(p.energy_benefit_kj, p.recovery_cost_kj);
}

TEST(Scaling, SecdedOnAbftDataCutsRecoveryCost) {
  sim::ScalingOptions opt;
  opt.process_counts = {800};
  opt.base_dim = 448;
  opt.iterations = 3;
  opt.platform = small_opts(Strategy::kPartialChipkillNoEcc);
  sim::ScalingStudy study(opt);
  const auto no_ecc = study.weak_scaling(Strategy::kPartialChipkillNoEcc);
  const auto secded = study.weak_scaling(Strategy::kPartialChipkillSecded);
  // P_CK+P_SD: fewer errors reach ABFT (1300 vs 5000 FIT/Mbit).
  EXPECT_LT(secded[0].expected_errors, no_ecc[0].expected_errors);
  EXPECT_LT(secded[0].recovery_cost_kj, no_ecc[0].recovery_cost_kj);
}

TEST(Scaling, StrongScalingShrinksPerProcessRecoveryCost) {
  sim::ScalingOptions opt;
  opt.process_counts = {100, 400, 1600};
  opt.base_dim = 192;
  opt.iterations = 3;
  opt.platform = small_opts(Strategy::kPartialChipkillNoEcc);
  sim::ScalingStudy study(opt);
  const auto pts = study.strong_scaling(Strategy::kPartialChipkillNoEcc);
  ASSERT_EQ(pts.size(), 3u);
  // Recovery per error gets cheaper; expected errors per process shrink
  // too, so total recovery cost must not blow up with scale.
  EXPECT_LT(pts[2].recovery_cost_kj / pts[2].processes,
            pts[0].recovery_cost_kj / pts[0].processes * 1.01);
}

}  // namespace
}  // namespace abftecc
