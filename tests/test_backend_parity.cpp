// Backend parity: every kernel, run fault-free through the redesigned
// MemBackend boundary, produces bit-identical results under NativeBackend
// and SimBackend. The two modes differ in instrumentation and time source
// only -- the arithmetic path is shared -- so anything short of equal
// bytes is a backend leaking into the numerics.
#include <gtest/gtest.h>

#include <cstring>

#include "abft/ft_cg.hpp"
#include "abft/ft_cholesky.hpp"
#include "abft/ft_dgemm.hpp"
#include "abft/ft_dgemm_dual.hpp"
#include "abft/ft_hpl.hpp"
#include "abft/ft_qr.hpp"
#include "common/backend.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "memsim/system.hpp"
#include "os/os.hpp"
#include "sim/backend.hpp"
#include "sim/tap.hpp"

namespace abftecc::abft {
namespace {

/// A fresh simulated node per run: MemorySystem -> Os -> TapContext, the
/// same wiring sim::Session uses, without the session's kernel plumbing.
struct SimRig {
  memsim::MemorySystem sys;
  os::Os os;
  sim::TapContext ctx;
  sim::SimBackend be;
  SimRig()
      : sys(memsim::SystemConfig::scaled(8), ecc::Scheme::kChipkill),
        os(sys),
        ctx(os, sys),
        be(ctx, sys) {}
};

::testing::AssertionResult bits_equal(ConstMatrixView x, ConstMatrixView y) {
  if (x.rows() != y.rows() || x.cols() != y.cols())
    return ::testing::AssertionFailure() << "shape mismatch";
  for (std::size_t j = 0; j < x.cols(); ++j)
    for (std::size_t i = 0; i < x.rows(); ++i)
      if (std::memcmp(&x(i, j), &y(i, j), sizeof(double)) != 0)
        return ::testing::AssertionFailure()
               << "bit mismatch at (" << i << "," << j << "): " << x(i, j)
               << " vs " << y(i, j);
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult bits_equal(const std::vector<double>& x,
                                      const std::vector<double>& y) {
  if (x.size() != y.size())
    return ::testing::AssertionFailure() << "length mismatch";
  if (std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) != 0)
    return ::testing::AssertionFailure() << "vector bits differ";
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------- dgemm --

struct DgemmFix {
  Matrix a, b, ac, br, cf;
  DgemmFix(std::size_t pad, std::uint64_t seed)
      : a(48, 56),
        b(56, 40),
        ac(48 + pad, 56),
        br(56, 40 + pad),
        cf(48 + pad, 40 + pad) {
    Rng rng(seed);
    a = Matrix::random(48, 56, rng);
    b = Matrix::random(56, 40, rng);
  }
};

TEST(BackendParity, FtDgemmNativeMatchesSimBitForBit) {
  DgemmFix nat(1, 7), sim(1, 7);
  NativeBackend nbe;
  FtDgemm nft(nat.a.view(), nat.b.view(),
              {nat.ac.view(), nat.br.view(), nat.cf.view()});
  ASSERT_EQ(nft.run(nbe), FtStatus::kOk);

  SimRig rig;
  FtDgemm sft(sim.a.view(), sim.b.view(),
              {sim.ac.view(), sim.br.view(), sim.cf.view()});
  ASSERT_EQ(sft.run(rig.be), FtStatus::kOk);

  EXPECT_TRUE(bits_equal(nat.cf.view(), sim.cf.view()));
  // Sim mode issued the kernel's references into memsim; native did not.
  EXPECT_GT(rig.sys.stats().mem_refs, 0u);
}

TEST(BackendParity, FtDgemmDualNativeMatchesSimBitForBit) {
  DgemmFix nat(2, 8), sim(2, 8);
  NativeBackend nbe;
  FtDgemmDual nft(nat.a.view(), nat.b.view(),
                  {nat.ac.view(), nat.br.view(), nat.cf.view()});
  ASSERT_EQ(nft.run(nbe), FtStatus::kOk);

  SimRig rig;
  FtDgemmDual sft(sim.a.view(), sim.b.view(),
                  {sim.ac.view(), sim.br.view(), sim.cf.view()});
  ASSERT_EQ(sft.run(rig.be), FtStatus::kOk);

  EXPECT_TRUE(bits_equal(nat.cf.view(), sim.cf.view()));
}

// ------------------------------------------------------------- cholesky --

TEST(BackendParity, FtCholeskyNativeMatchesSimBitForBit) {
  const std::size_t n = 48;
  Rng r1(9), r2(9);
  Matrix an = Matrix::random_spd(n, r1), as = Matrix::random_spd(n, r2);
  std::vector<double> sn(n), wn(n), ss(n), ws(n);

  NativeBackend nbe;
  FtCholesky nft({an.view(), sn, wn}, {}, nullptr, 16);
  ASSERT_EQ(nft.run(nbe), FtStatus::kOk);

  SimRig rig;
  FtCholesky sft({as.view(), ss, ws}, {}, nullptr, 16);
  ASSERT_EQ(sft.run(rig.be), FtStatus::kOk);

  EXPECT_TRUE(bits_equal(an.view(), as.view()));
  EXPECT_TRUE(bits_equal(sn, ss));
  EXPECT_TRUE(bits_equal(wn, ws));
}

// ------------------------------------------------------------------- cg --

TEST(BackendParity, FtCgNativeMatchesSimBitForBit) {
  const std::size_t n = 64;
  Rng r1(10), r2(10);
  linalg::LinearSystem sysn = linalg::make_spd_system(n, r1);
  linalg::LinearSystem syss = linalg::make_spd_system(n, r2);
  std::vector<double> xn(n, 0.0), rn(n, 0.0), zn(n, 0.0), pn(n, 0.0),
      qn(n, 0.0);
  std::vector<double> xs(n, 0.0), rs(n, 0.0), zs(n, 0.0), ps(n, 0.0),
      qs(n, 0.0);
  linalg::CgOptions opt;
  opt.max_iterations = 4 * n;
  opt.tolerance = 1e-12;

  NativeBackend nbe;
  FtCg nft(sysn.a.view(), sysn.b, {xn, rn, zn, pn, qn}, opt);
  const FtCgResult rnat = nft.run(nbe);
  ASSERT_TRUE(rnat.cg.converged);

  SimRig rig;
  FtCg sft(syss.a.view(), syss.b, {xs, rs, zs, ps, qs}, opt);
  const FtCgResult rsim = sft.run(rig.be);
  ASSERT_TRUE(rsim.cg.converged);

  EXPECT_EQ(rnat.cg.iterations, rsim.cg.iterations);
  EXPECT_TRUE(bits_equal(xn, xs));
}

// ------------------------------------------------------------------ hpl --

TEST(BackendParity, FtHplNativeMatchesSimBitForBit) {
  const std::size_t n = 64, procs = 4, h = n / procs;
  Rng r1(11), r2(11);
  linalg::LinearSystem sysn = linalg::make_general_system(n, r1);
  linalg::LinearSystem syss = linalg::make_general_system(n, r2);
  Matrix aen(n + h, n + 1), ucn(h, n + 1), aes(n + h, n + 1), ucs(h, n + 1);

  NativeBackend nbe;
  FtHpl nft(sysn.a.view(), sysn.b, procs, {aen.view(), ucn.view()}, {},
            nullptr, 16);
  ASSERT_EQ(nft.factor(nbe), FtStatus::kOk);
  std::vector<double> xn(n);
  nft.solve(xn);

  SimRig rig;
  FtHpl sft(syss.a.view(), syss.b, procs, {aes.view(), ucs.view()}, {},
            nullptr, 16);
  ASSERT_EQ(sft.factor(rig.be), FtStatus::kOk);
  std::vector<double> xs(n);
  sft.solve(xs);

  EXPECT_TRUE(bits_equal(aen.view(), aes.view()));
  EXPECT_TRUE(bits_equal(xn, xs));
}

// ------------------------------------------------------------------- qr --

TEST(BackendParity, FtQrNativeMatchesSimBitForBit) {
  const std::size_t m = 48, n = 48;
  Rng r1(12), r2(12);
  Matrix an = Matrix::random(m, n, r1), as = Matrix::random(m, n, r2);
  for (std::size_t i = 0; i < n; ++i) {
    an(i, i) += static_cast<double>(n);
    as(i, i) += static_cast<double>(n);
  }
  Matrix awn(m, n + 2), aws(m, n + 2);
  std::vector<double> taun(n, 0.0), taus(n, 0.0);

  NativeBackend nbe;
  FtQr nft(an.view(), {awn.view(), taun}, {}, nullptr, 16);
  ASSERT_EQ(nft.factor(nbe), FtStatus::kOk);

  SimRig rig;
  FtQr sft(as.view(), {aws.view(), taus}, {}, nullptr, 16);
  ASSERT_EQ(sft.factor(rig.be), FtStatus::kOk);

  EXPECT_TRUE(bits_equal(awn.view(), aws.view()));
  EXPECT_TRUE(bits_equal(taun, taus));
}

// ------------------------------------------------- native instrumentation --

TEST(NativeBackend, RegionRegistryAndPoisonBit) {
  NativeBackend be;
  std::vector<double> buf(8, 1.0);
  const std::size_t id =
      be.register_region(buf.data(), buf.size() * sizeof(double), "buf",
                         /*abft_protected=*/true);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(be.region_of(&buf[3])->name, "buf");
  EXPECT_EQ(be.region_of(buf.data() + buf.size()), nullptr);

  // Poison flips exactly one bit in place and counts the injection.
  ASSERT_TRUE(be.poison_bit(id, 2 * sizeof(double) + 6, 4));
  EXPECT_NE(buf[2], 1.0);
  ASSERT_TRUE(be.poison_bit(id, 2 * sizeof(double) + 6, 4));
  EXPECT_EQ(buf[2], 1.0);  // same bit again restores the value
  EXPECT_EQ(be.counters().faults_injected, 2u);
  EXPECT_FALSE(be.poison_bit(id, buf.size() * sizeof(double), 0));
  EXPECT_FALSE(be.poison_bit(id, 0, 8));

  be.unregister_region(id);
  EXPECT_EQ(be.region_of(buf.data()), nullptr);
}

TEST(NativeBackend, TouchAccumulatesByteCounters) {
  NativeBackend be;
  double x[4] = {};
  be.touch(x, sizeof(x), MemOp::kRead);
  be.touch(x, sizeof(x), MemOp::kWrite);
  be.touch(x, sizeof(x), MemOp::kUpdate);
  EXPECT_EQ(be.counters().touches, 3u);
  EXPECT_EQ(be.counters().bytes_read, 2 * sizeof(x));
  EXPECT_EQ(be.counters().bytes_written, 2 * sizeof(x));
}

}  // namespace
}  // namespace abftecc::abft
