// Tests for the system-software layer: page allocation, the three ECC
// control APIs, translation, interrupt routing and panic behaviour.
#include <gtest/gtest.h>

#include "memsim/system.hpp"
#include "os/os.hpp"
#include "os/page_allocator.hpp"

namespace abftecc::os {
namespace {

TEST(PageAllocator, AllocatesContiguousRuns) {
  PageAllocator pa(64 * 4096, 4096);
  const auto a = pa.allocate_contiguous(4, ecc::Scheme::kNone);
  ASSERT_TRUE(a.has_value());
  const auto b = pa.allocate_contiguous(4, ecc::Scheme::kSecded);
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(pa.frames_in_use(), 8u);
  EXPECT_EQ(pa.frame_at(*a).ecc_type, ecc::Scheme::kNone);
  EXPECT_EQ(pa.frame_at(*b).ecc_type, ecc::Scheme::kSecded);
}

TEST(PageAllocator, ExhaustionReturnsNullopt) {
  PageAllocator pa(4 * 4096, 4096);
  EXPECT_TRUE(pa.allocate_contiguous(4, ecc::Scheme::kNone).has_value());
  EXPECT_FALSE(pa.allocate_contiguous(1, ecc::Scheme::kNone).has_value());
}

TEST(PageAllocator, FreeMakesRoomAndFirstFitReusesIt) {
  PageAllocator pa(8 * 4096, 4096);
  const auto a = pa.allocate_contiguous(4, ecc::Scheme::kNone);
  const auto b = pa.allocate_contiguous(4, ecc::Scheme::kNone);
  ASSERT_TRUE(a && b);
  pa.free_range(*a, 4);
  const auto c = pa.allocate_contiguous(4, ecc::Scheme::kNone);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *a);
}

TEST(PageAllocator, FragmentationBlocksLargeRuns) {
  PageAllocator pa(8 * 4096, 4096);
  auto a = pa.allocate_contiguous(3, ecc::Scheme::kNone);
  auto b = pa.allocate_contiguous(2, ecc::Scheme::kNone);
  auto c = pa.allocate_contiguous(3, ecc::Scheme::kNone);
  ASSERT_TRUE(a && b && c);
  pa.free_range(*a, 3);
  pa.free_range(*c, 3);
  // 6 frames free but split 3+3: a 4-frame run must fail.
  EXPECT_FALSE(pa.allocate_contiguous(4, ecc::Scheme::kNone).has_value());
  EXPECT_TRUE(pa.allocate_contiguous(3, ecc::Scheme::kNone).has_value());
}

TEST(PageAllocator, SetEccTypeUpdatesFrames) {
  PageAllocator pa(8 * 4096, 4096);
  const auto a = pa.allocate_contiguous(2, ecc::Scheme::kNone);
  ASSERT_TRUE(a.has_value());
  pa.set_ecc_type(*a, 2, ecc::Scheme::kChipkill);
  EXPECT_EQ(pa.frame_at(*a + 4096).ecc_type, ecc::Scheme::kChipkill);
}

class OsTest : public ::testing::Test {
 protected:
  OsTest()
      : sys_(memsim::SystemConfig::scaled(8), ecc::Scheme::kChipkill),
        os_(sys_) {}
  memsim::MemorySystem sys_;
  Os os_;
};

TEST_F(OsTest, MallocEccProgramsControllerRange) {
  void* p = os_.malloc_ecc(10000, ecc::Scheme::kNone, "m");
  ASSERT_NE(p, nullptr);
  const auto phys = os_.virt_to_phys(p);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(sys_.controller().scheme_for(*phys), ecc::Scheme::kNone);
  EXPECT_EQ(sys_.controller().ranges_in_use(), 1u);
  os_.free_ecc(p);
  EXPECT_EQ(sys_.controller().ranges_in_use(), 0u);
}

TEST_F(OsTest, MallocPlainUsesDefaultScheme) {
  void* p = os_.malloc_plain(4096, "plain");
  ASSERT_NE(p, nullptr);
  const auto phys = os_.virt_to_phys(p);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(sys_.controller().scheme_for(*phys), ecc::Scheme::kChipkill);
  EXPECT_EQ(sys_.controller().ranges_in_use(), 0u);
}

TEST_F(OsTest, TranslationRoundTrips) {
  auto* p = static_cast<std::byte*>(os_.malloc_ecc(8192, ecc::Scheme::kSecded));
  ASSERT_NE(p, nullptr);
  const auto phys = os_.virt_to_phys(p + 5000);
  ASSERT_TRUE(phys.has_value());
  const auto back = os_.phys_to_virt(*phys);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p + 5000);
}

TEST_F(OsTest, UnknownPointerDoesNotTranslate) {
  int local = 0;
  EXPECT_FALSE(os_.virt_to_phys(&local).has_value());
  EXPECT_FALSE(os_.phys_to_virt(1ull << 40).has_value());
}

TEST_F(OsTest, AssignEccRetargetsScheme) {
  void* p = os_.malloc_ecc(4096, ecc::Scheme::kNone);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(os_.assign_ecc(p, ecc::Scheme::kSecded));
  const auto phys = os_.virt_to_phys(p);
  EXPECT_EQ(sys_.controller().scheme_for(*phys), ecc::Scheme::kSecded);
  EXPECT_EQ(os_.pages().frame_at(*phys).ecc_type, ecc::Scheme::kSecded);
  int local = 0;
  EXPECT_FALSE(os_.assign_ecc(&local, ecc::Scheme::kNone));
}

TEST_F(OsTest, MallocEccFailsWhenControllerRegistersExhausted) {
  std::vector<void*> ptrs;
  for (int i = 0; i < 8; ++i) {
    void* p = os_.malloc_ecc(4096, ecc::Scheme::kNone);
    ASSERT_NE(p, nullptr) << i;
    ptrs.push_back(p);
  }
  EXPECT_EQ(os_.malloc_ecc(4096, ecc::Scheme::kNone), nullptr);
  // Frames were not leaked by the failed attempt.
  const auto used = os_.pages().frames_in_use();
  os_.free_ecc(ptrs.back());
  EXPECT_EQ(os_.pages().frames_in_use(), used - 1);
  EXPECT_NE(os_.malloc_ecc(4096, ecc::Scheme::kNone), nullptr);
}

TEST_F(OsTest, InterruptOnAbftRegionExposesVirtualAddress) {
  auto* p = static_cast<std::byte*>(
      os_.malloc_ecc(8192, ecc::Scheme::kNone, "matrix", true));
  ASSERT_NE(p, nullptr);
  const auto phys = os_.virt_to_phys(p + 640);
  memsim::ErrorRecord rec;
  rec.phys_addr = *phys;
  rec.scheme = ecc::Scheme::kNone;
  rec.valid = true;
  os_.handle_ecc_interrupt(rec);
  ASSERT_TRUE(os_.has_exposed_errors());
  const auto errors = os_.drain_exposed_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].vaddr, p + 640);
  EXPECT_EQ(errors[0].region_name, "matrix");
  EXPECT_FALSE(os_.panicked());
  EXPECT_FALSE(os_.has_exposed_errors());
}

TEST_F(OsTest, InterruptOutsideAbftRegionPanics) {
  void* p = os_.malloc_plain(4096, "kernel-data");
  const auto phys = os_.virt_to_phys(p);
  memsim::ErrorRecord rec;
  rec.phys_addr = *phys;
  rec.valid = true;
  os_.handle_ecc_interrupt(rec);
  EXPECT_TRUE(os_.panicked());
  EXPECT_EQ(os_.panic_count(), 1u);
  EXPECT_FALSE(os_.has_exposed_errors());
  os_.clear_panic();
  EXPECT_FALSE(os_.panicked());
}

TEST_F(OsTest, InterruptViaControllerPathEndToEnd) {
  // Reported through the MC (as the fault layer does), not directly.
  auto* p = static_cast<std::byte*>(
      os_.malloc_ecc(4096, ecc::Scheme::kNone, "abft-data", true));
  const auto phys = os_.virt_to_phys(p);
  memsim::FaultSite site;
  sys_.controller().report_uncorrectable(site, *phys, 123,
                                         ecc::Scheme::kNone);
  ASSERT_TRUE(os_.has_exposed_errors());
  EXPECT_EQ(os_.drain_exposed_errors()[0].vaddr, p);
}

TEST_F(OsTest, RegionOfFindsOwnerAndRespectsBounds) {
  auto* p = static_cast<std::byte*>(os_.malloc_ecc(4096, ecc::Scheme::kNone));
  const Region* r = os_.region_of(p + 100);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->abft_protected);
  EXPECT_EQ(os_.region_of(p + (1 << 20)), nullptr);
}

// --- fault-storm hardening ---------------------------------------------------

TEST_F(OsTest, ExposedLogCapBoundsMemoryUnderStorm) {
  auto* p = static_cast<std::byte*>(
      os_.malloc_ecc(64 * 4096, ecc::Scheme::kNone, "big", true));
  ASSERT_NE(p, nullptr);
  os_.set_exposed_log_capacity(4);
  EXPECT_EQ(os_.exposed_log_capacity(), 4u);
  // A storm of 12 uncorrectable errors on 12 distinct cache lines: the
  // log must stay bounded at the cap, the overflow counted, not crashed.
  for (int i = 0; i < 12; ++i) {
    memsim::ErrorRecord rec;
    rec.phys_addr = *os_.virt_to_phys(p + 4096 * i);
    rec.scheme = ecc::Scheme::kNone;
    rec.valid = true;
    os_.handle_ecc_interrupt(rec);
  }
  const auto errors = os_.drain_exposed_errors();
  EXPECT_EQ(errors.size(), 4u);
  EXPECT_EQ(os_.exposed_dropped(), 8u);
  EXPECT_FALSE(os_.panicked());
}

TEST_F(OsTest, ExposedLogAtCapacityCoalescesSameCacheLine) {
  auto* p = static_cast<std::byte*>(
      os_.malloc_ecc(16 * 4096, ecc::Scheme::kNone, "big", true));
  ASSERT_NE(p, nullptr);
  os_.set_exposed_log_capacity(2);
  auto fire = [&](std::size_t off, Cycles cycle) {
    memsim::ErrorRecord rec;
    rec.phys_addr = *os_.virt_to_phys(p + off);
    rec.scheme = ecc::Scheme::kNone;
    rec.cycle = cycle;
    rec.valid = true;
    os_.handle_ecc_interrupt(rec);
  };
  fire(0, 10);
  fire(4096, 20);
  // At capacity: a repeat of line 0 folds into the existing entry (the
  // location ABFT needs is identical) instead of being dropped.
  fire(8, 30);
  const auto errors = os_.drain_exposed_errors();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].repeats, 2u);
  EXPECT_EQ(errors[0].cycle, 30u);
  EXPECT_EQ(errors[1].repeats, 1u);
  EXPECT_EQ(os_.exposed_dropped(), 0u);
}

TEST_F(OsTest, ShrinkingCapacityDropsNewestEntries) {
  auto* p = static_cast<std::byte*>(
      os_.malloc_ecc(16 * 4096, ecc::Scheme::kNone, "big", true));
  for (int i = 0; i < 4; ++i) {
    memsim::ErrorRecord rec;
    rec.phys_addr = *os_.virt_to_phys(p + 4096 * i);
    rec.scheme = ecc::Scheme::kNone;
    rec.valid = true;
    os_.handle_ecc_interrupt(rec);
  }
  os_.set_exposed_log_capacity(2);
  // Drop-newest: the earliest errors (what ABFT verification wants first)
  // survive the shrink.
  const auto errors = os_.drain_exposed_errors();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].vaddr, p);
  EXPECT_EQ(errors[1].vaddr, p + 4096);
  EXPECT_EQ(os_.exposed_dropped(), 2u);
}

TEST_F(OsTest, EscalationHandlerAbsorbsWouldBePanic) {
  void* p = os_.malloc_plain(4096, "kernel-data");
  const auto phys = os_.virt_to_phys(p);
  ExposedError seen;
  os_.set_escalation_handler([&](const ExposedError& e) {
    seen = e;
    return true;
  });
  memsim::ErrorRecord rec;
  rec.phys_addr = *phys;
  rec.valid = true;
  os_.handle_ecc_interrupt(rec);
  EXPECT_FALSE(os_.panicked());
  EXPECT_EQ(os_.escalations(), 1u);
  EXPECT_EQ(seen.vaddr, p);
  EXPECT_EQ(seen.region_name, "kernel-data");
  EXPECT_EQ(seen.region_base, p);

  // A refusing handler keeps the historical panic.
  os_.set_escalation_handler([](const ExposedError&) { return false; });
  os_.handle_ecc_interrupt(rec);
  EXPECT_TRUE(os_.panicked());
  EXPECT_EQ(os_.escalations(), 1u);
}

TEST_F(OsTest, RepromotionRestoresChipkillAfterThreshold) {
  auto* p = static_cast<std::byte*>(
      os_.malloc_ecc(8192, ecc::Scheme::kSecded, "relaxed", true));
  ASSERT_NE(p, nullptr);
  os_.set_repromote_threshold(3);
  const auto phys = os_.virt_to_phys(p);
  memsim::ErrorRecord rec;
  rec.phys_addr = *phys;
  rec.scheme = ecc::Scheme::kSecded;
  rec.valid = true;
  os_.handle_ecc_interrupt(rec);
  os_.handle_ecc_interrupt(rec);
  EXPECT_EQ(os_.repromotions(), 0u);
  EXPECT_EQ(sys_.controller().scheme_for(*phys), ecc::Scheme::kSecded);
  // Third uncorrectable in the region crosses the threshold: the region
  // goes back to full chipkill (ECC re-promotion).
  os_.handle_ecc_interrupt(rec);
  EXPECT_EQ(os_.repromotions(), 1u);
  EXPECT_EQ(sys_.controller().scheme_for(*phys), ecc::Scheme::kChipkill);
  EXPECT_EQ(os_.pages().frame_at(*phys).ecc_type, ecc::Scheme::kChipkill);
}

TEST_F(OsTest, PhysToHostGivesWritableBytes) {
  auto* p = static_cast<std::byte*>(os_.malloc_ecc(4096, ecc::Scheme::kNone));
  p[7] = std::byte{0x5A};
  const auto phys = os_.virt_to_phys(p);
  auto host = os_.phys_to_host(*phys);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ((*host)[7], std::byte{0x5A});
  (*host)[7] = std::byte{0xA5};
  EXPECT_EQ(p[7], std::byte{0xA5});
}

}  // namespace
}  // namespace abftecc::os
