#!/usr/bin/env python3
"""Unit tests for bench/compare_runs.py (stdlib only, run via ctest).

The satellite requirement under test: reports carrying custom top-level
sections the tool does not know about (the campaign's "lineage" and
"latency" sections) must be compared normally -- noted, never a schema
error -- so a report diff keeps working as the schema grows sections.
"""
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SPEC = importlib.util.spec_from_file_location(
    "compare_runs", os.path.join(REPO, "bench", "compare_runs.py"))
compare_runs = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(compare_runs)


def report(cycles=1000, scalars=None, extra=None):
    doc = {
        "schema_version": 1,
        "experiment": "unit-test",
        "paper_ref": "none",
        "config": None,
        "runs": [{
            "label": "run-a",
            "cycles": cycles,
            "ipc": 1.5,
            "seconds": 0.25,
            "energy": {"memory_pj": 10.0, "system_pj": 20.0},
            "ft": {"errors_corrected": 3},
        }],
        "scalars": scalars or {},
        "notes": {},
        "metrics": {},
        "profile": None,
    }
    doc.update(extra or {})
    return doc


class CompareRuns(unittest.TestCase):
    def run_tool(self, base, cand, argv=()):
        """Invoke compare_runs.main() on two report dicts; return
        (exit_status, captured_stdout)."""
        with tempfile.TemporaryDirectory() as d:
            paths = []
            for name, doc in (("base.json", base), ("cand.json", cand)):
                p = os.path.join(d, name)
                with open(p, "w") as f:
                    json.dump(doc, f)
                paths.append(p)
            old_argv = sys.argv
            sys.argv = ["compare_runs.py", *paths, *argv]
            out = io.StringIO()
            try:
                with redirect_stdout(out):
                    status = compare_runs.main()
            finally:
                sys.argv = old_argv
            return status, out.getvalue()

    def test_identical_reports_compare_clean(self):
        status, out = self.run_tool(report(), report())
        self.assertEqual(status, 0)
        self.assertIn("no differences", out)

    def test_regression_beyond_threshold_is_flagged(self):
        status, out = self.run_tool(report(cycles=1000), report(cycles=1100))
        self.assertEqual(status, 1)
        self.assertIn("cycles", out)

    def test_unknown_sections_are_noted_and_ignored(self):
        # A candidate report grown a "lineage" section (and a "latency"
        # histogram) still compares clean against an older baseline.
        cand = report(extra={
            "lineage": {"dgemm": {"ok": True, "faults": 12}},
            "latency": {"histogram": [1, 2, 3]},
        })
        status, out = self.run_tool(report(), cand)
        self.assertEqual(status, 0)
        self.assertIn("ignoring unknown section(s): latency, lineage", out)

    def test_unknown_sections_do_not_mask_real_regressions(self):
        cand = report(cycles=2000, extra={"lineage": {}})
        status, _ = self.run_tool(report(cycles=1000), cand)
        self.assertEqual(status, 1)

    def test_scalar_drift_is_flagged(self):
        status, out = self.run_tool(
            report(scalars={"dgemm.trials": 64.0}),
            report(scalars={"dgemm.trials": 32.0}))
        self.assertEqual(status, 1)
        self.assertIn("dgemm.trials", out)

    def test_missing_runs_key_is_tolerated(self):
        base = report()
        del base["runs"]
        status, out = self.run_tool(base, report())
        # The candidate-only run is reported as a difference, not a crash.
        self.assertEqual(status, 1)
        self.assertIn("run only in candidate", out)


if __name__ == "__main__":
    unittest.main()
