// Tests for the sim layer: MemoryTap translation (regions, line straddles,
// anonymous pages), strategy specs, and the DGMS spatial predictor.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "memsim/system.hpp"
#include "obs/metrics.hpp"
#include "os/os.hpp"
#include "sim/dgms.hpp"
#include "sim/platform.hpp"
#include "sim/strategy.hpp"
#include "sim/tap.hpp"

namespace abftecc::sim {
namespace {

struct Rig {
  memsim::MemorySystem sys;
  os::Os os;
  TapContext ctx;
  Rig()
      : sys(memsim::SystemConfig::scaled(8), ecc::Scheme::kChipkill),
        os(sys),
        ctx(os, sys) {}
};

TEST(MemoryTapTest, RegisteredRegionTranslatesToItsFrames) {
  Rig rig;
  auto* p = static_cast<double*>(
      rig.os.malloc_ecc(4096, ecc::Scheme::kNone, "m", true));
  MemoryTap tap(rig.ctx);
  tap.read(p);
  // The access must land on the region's physical page and be classified
  // as ABFT (fill hook sees the relaxed scheme).
  EXPECT_EQ(rig.ctx.refs_abft(), 1u);
  EXPECT_EQ(rig.ctx.refs_other(), 0u);
  EXPECT_EQ(rig.sys.stats().mem_refs, 1u);
}

TEST(MemoryTapTest, UnregisteredDataGoesToAnonymousFrames) {
  Rig rig;
  std::vector<double> local(64);
  MemoryTap tap(rig.ctx);
  tap.read(&local[0]);
  tap.read(&local[1]);
  EXPECT_EQ(rig.ctx.refs_other(), 2u);
  EXPECT_EQ(rig.ctx.refs_abft(), 0u);
  // Anonymous frames live above the allocator's capacity: default scheme.
  EXPECT_EQ(rig.sys.stats().demand_misses_other,
            rig.sys.stats().demand_misses);
}

TEST(MemoryTapTest, AnonymousPagesAreStable) {
  // Two references to the same host page map to the same simulated frame:
  // the second hits the cache.
  Rig rig;
  std::vector<double> local(8);
  MemoryTap tap(rig.ctx);
  tap.read(&local[0]);
  const auto misses = rig.sys.stats().demand_misses;
  tap.read(&local[0]);
  EXPECT_EQ(rig.sys.stats().demand_misses, misses);
}

TEST(MemoryTapTest, StraddlingReferenceTouchesBothLines) {
  Rig rig;
  auto* p = static_cast<std::uint8_t*>(
      rig.os.malloc_ecc(4096, ecc::Scheme::kNone, "m", true));
  MemoryTap tap(rig.ctx);
  tap.read(p + 60, 8);  // crosses the 64B boundary
  EXPECT_EQ(rig.sys.stats().mem_refs, 2u);
}

TEST(MemoryTapTest, CopiedHandlesShareState) {
  Rig rig;
  std::vector<double> local(4);
  MemoryTap tap(rig.ctx);
  MemoryTap copy = tap;
  tap.read(&local[0]);
  copy.read(&local[1]);
  EXPECT_EQ(rig.ctx.refs_other(), 2u);
}

TEST(StrategySpec, MatchesPaperDefinitions) {
  EXPECT_EQ(spec(Strategy::kNoEcc).default_scheme, ecc::Scheme::kNone);
  EXPECT_EQ(spec(Strategy::kWholeChipkill).abft_scheme,
            ecc::Scheme::kChipkill);
  EXPECT_EQ(spec(Strategy::kPartialChipkillNoEcc).default_scheme,
            ecc::Scheme::kChipkill);
  EXPECT_EQ(spec(Strategy::kPartialChipkillNoEcc).abft_scheme,
            ecc::Scheme::kNone);
  EXPECT_EQ(spec(Strategy::kPartialChipkillSecded).abft_scheme,
            ecc::Scheme::kSecded);
  EXPECT_EQ(spec(Strategy::kPartialSecdedNoEcc).default_scheme,
            ecc::Scheme::kSecded);
  for (const auto s : kAllStrategies)
    EXPECT_FALSE(spec(s).label.empty());
}

TEST(Dgms, SequentialStreamTrainsCoarse) {
  DgmsController dgms;
  std::uint64_t coarse_at_end = 0;
  for (std::uint64_t line = 0; line < 64; ++line) {
    const auto shape = dgms.shape(line * 64, ecc::Scheme::kChipkill);
    ASSERT_TRUE(shape.has_value());
    if (line == 63) coarse_at_end = shape->channels_used;
  }
  EXPECT_EQ(coarse_at_end, 2u);  // chipkill lock-step
  EXPECT_GT(dgms.coarse_accesses(), dgms.fine_accesses());
}

TEST(Dgms, ScatteredAccessesStayFine) {
  DgmsController dgms;
  Rng rng(5);
  unsigned fine = 0;
  for (int i = 0; i < 200; ++i) {
    // Random lines within one page: adjacency is rare.
    const std::uint64_t line = rng.below(64);
    const auto shape = dgms.shape(line * 64, ecc::Scheme::kChipkill);
    if (shape->channels_used == 1) ++fine;
  }
  EXPECT_GT(fine, 100u);
}

TEST(Dgms, PerPageIndependence) {
  DgmsController dgms;
  // Train page 0 coarse.
  for (std::uint64_t line = 0; line < 32; ++line)
    dgms.shape(line * 64, ecc::Scheme::kChipkill);
  // A fresh page starts fine-grained.
  const auto shape = dgms.shape(1 << 20, ecc::Scheme::kChipkill);
  EXPECT_EQ(shape->channels_used, 1u);
  EXPECT_EQ(shape->chips_activated, 5u);
}

// ------------------------------------------------------------- session --

TEST(Session, BuilderWiresTheWholeNode) {
  Session s = Session::Builder()
                  .strategy(Strategy::kPartialChipkillSecded)
                  .seed(9)
                  .build();
  EXPECT_EQ(s.options().strategy, Strategy::kPartialChipkillSecded);
  EXPECT_EQ(s.options().seed, 9u);
  EXPECT_EQ(s.abft_scheme(), ecc::Scheme::kSecded);

  // Allocation flows through the OS and is byte-accounted.
  MatrixView m = s.abft_matrix(16, 16, "m");
  EXPECT_NE(m.data(), nullptr);
  EXPECT_GE(s.abft_bytes(), 16u * 16u * sizeof(double));
  EXPECT_GE(s.total_bytes(), s.abft_bytes());
  EXPECT_TRUE(s.os().virt_to_phys(m.data()).has_value());

  // The injector is wired into the memory system's fill path.
  s.injector().inject_bit(*s.os().virt_to_phys(m.data()), 0);
  s.injector().flush_pending();
  EXPECT_EQ(s.injector().stats().corrected_by_ecc, 1u);
}

TEST(Session, RunProducesMetricsAndResult) {
  PlatformOptions opt;
  opt.strategy = Strategy::kPartialChipkillSecded;
  opt.dgemm_dim = 32;
  Session s = Session::Builder(opt).build();
  const RunMetrics m = s.run(Kernel::kDgemm);
  EXPECT_EQ(m.kernel, Kernel::kDgemm);
  EXPECT_EQ(m.status, abft::FtStatus::kOk);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_GT(m.refs_abft, 0u);
  EXPECT_EQ(s.last_result().size(), 32u * 32u);
}

TEST(Session, RunKernelWrapperMatchesExplicitSession) {
  PlatformOptions opt;
  opt.strategy = Strategy::kWholeSecded;
  opt.dgemm_dim = 32;
  const RunMetrics a = run_kernel(Kernel::kDgemm, opt);
  const RunMetrics b = Session::Builder(opt).build().run(Kernel::kDgemm);
  EXPECT_EQ(a.sys.instructions, b.sys.instructions);
  EXPECT_EQ(a.refs_abft, b.refs_abft);
  EXPECT_EQ(a.refs_other, b.refs_other);
  EXPECT_EQ(a.ft.verifications, b.ft.verifications);
}

TEST(Session, PrivateObservabilityKeepsThreadDefaultsClean) {
  obs::Registry& outer = obs::default_registry();
  const auto before = outer.counter("memsim.dram_access.secded").value();
  {
    Session s = Session::Builder()
                    .strategy(Strategy::kWholeSecded)
                    .private_observability()
                    .build();
    // Inside the session's lifetime the thread default IS the private one.
    EXPECT_EQ(&obs::default_registry(), &s.metrics());
    MatrixView m = s.abft_matrix(16, 16, "m");
    for (std::size_t i = 0; i < 16; ++i)
      s.memory().access(*s.os().virt_to_phys(&m(i, 0)),
                        memsim::AccessKind::kRead);
    EXPECT_GT(s.metrics().counter("memsim.dram_access.secded").value(), 0u);
  }
  EXPECT_EQ(&obs::default_registry(), &outer);
  EXPECT_EQ(outer.counter("memsim.dram_access.secded").value(), before);
}

}  // namespace
}  // namespace abftecc::sim
