// Property-style randomized sweeps over the ABFT kernels: for many seeds
// and injection sites, detection + correction must restore the exact
// result (or the kernel must refuse with kUncorrectable -- never report a
// silently wrong answer).
#include <gtest/gtest.h>

#include "abft/ft_cg.hpp"
#include "abft/ft_cholesky.hpp"
#include "abft/ft_dgemm.hpp"
#include "abft/ft_hpl.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace abftecc::abft {
namespace {

// A tap that fires one additive corruption at a pseudo-random reference.
struct RandomCorruptTap {
  double* target;
  double delta;
  std::uint64_t* counter;
  std::uint64_t fire_at;
  void read(const void*, std::size_t = 8) { tick(); }
  void write(const void*, std::size_t = 8) { tick(); }
  void update(const void*, std::size_t = 8) { tick(); }
  void tick() {
    if (++*counter == fire_at) *target += delta;
  }
};

class DgemmRandomInjection : public ::testing::TestWithParam<int> {};

TEST_P(DgemmRandomInjection, NeverReturnsSilentlyWrongResult) {
  const int seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 80;
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  Matrix ac(n + 1, n), br(n, n + 1), cf(n + 1, n + 1);
  FtDgemm ft(a.view(), b.view(), {ac.view(), br.view(), cf.view()});

  // Random target inside the payload, random magnitude, random firing point.
  const std::size_t i = rng.below(n), j = rng.below(n);
  const double delta = rng.uniform(0.5, 100.0) * (rng.below(2) ? 1 : -1);
  std::uint64_t counter = 0;
  RandomCorruptTap tap{&cf(i, j), delta, &counter,
                       200000 + rng.below(1500000)};
  const FtStatus st = ft.run(tap);
  ASSERT_NE(st, FtStatus::kNumericalFailure);
  if (st != FtStatus::kUncorrectable) {
    Matrix ref(n, n);
    linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
    EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-6)
        << "seed " << seed << " target (" << i << "," << j << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DgemmRandomInjection,
                         ::testing::Range(0, 24));

class CholeskyRandomInjection : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRandomInjection, CorrectsOrRefuses) {
  const int seed = GetParam();
  Rng rng(1000 + seed);
  const std::size_t n = 96;
  Matrix a = Matrix::random_spd(n, rng);
  Matrix orig = a;
  std::vector<double> sum(n), weighted(n);
  FtCholesky ft({a.view(), sum, weighted}, {}, nullptr, 32);

  // Target strictly below the diagonal so it lies in the checksummed
  // triangle for at least part of the run.
  const std::size_t j = rng.below(n - 1);
  const std::size_t i = j + 1 + rng.below(n - j - 1);
  std::uint64_t counter = 0;
  RandomCorruptTap tap{&a(i, j), rng.uniform(10.0, 200.0), &counter,
                       50000 + rng.below(400000)};
  const FtStatus st = ft.run(tap);
  if (st == FtStatus::kOk || st == FtStatus::kCorrectedErrors) {
    for (std::size_t jj = 0; jj < n; ++jj)
      for (std::size_t ii = jj; ii < n; ++ii) {
        double s = 0.0;
        for (std::size_t k = 0; k <= jj; ++k) s += a(ii, k) * a(jj, k);
        ASSERT_NEAR(s, orig(ii, jj), 1e-5)
            << "seed " << seed << " at (" << ii << "," << jj << ")";
      }
  }
  // kUncorrectable and kNumericalFailure are acceptable refusals: the
  // corruption may strike after a column left the protected window or
  // poison a pivot.
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyRandomInjection,
                         ::testing::Range(0, 16));

class CgRandomInjection : public ::testing::TestWithParam<int> {};

TEST_P(CgRandomInjection, ConvergesToTrueSolutionDespiteFault) {
  const int seed = GetParam();
  Rng rng(2000 + seed);
  const std::size_t n = 128;
  linalg::LinearSystem sys = linalg::make_spd_system(n, rng);
  std::vector<double> b = sys.b, x(n, 0.0), r(n), z(n), p(n), q(n);
  linalg::CgOptions copt;
  copt.max_iterations = 6 * n;
  copt.tolerance = 1e-11;
  FtCg ft(sys.a.view(), b, {x, r, z, p, q}, copt);

  std::vector<std::span<double>> targets{x, r, p, q, b};
  auto& victim = targets[rng.below(targets.size())];
  std::uint64_t counter = 0;
  RandomCorruptTap tap{&victim[rng.below(n)],
                       rng.uniform(1e3, 1e7) * (rng.below(2) ? 1 : -1),
                       &counter, 300000 + rng.below(1200000)};
  const FtCgResult res = ft.run(tap);
  ASSERT_TRUE(res.cg.converged) << "seed " << seed;
  double err = 0;
  for (std::size_t ii = 0; ii < n; ++ii)
    err = std::max(err, std::abs(x[ii] - sys.x_true[ii]));
  EXPECT_LT(err, 1e-6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgRandomInjection, ::testing::Range(0, 20));

class HplRandomFailure : public ::testing::TestWithParam<int> {};

TEST_P(HplRandomFailure, AnyProcessAnyBoundaryRecovers) {
  const int seed = GetParam();
  Rng rng(3000 + seed);
  const std::size_t n = 128, procs = 4;
  linalg::LinearSystem sys = linalg::make_general_system(n, rng);
  Matrix ae(n + n / procs, n + 1), uc(n / procs, n + 1);
  FtHpl ft(sys.a.view(), sys.b, procs, {ae.view(), uc.view()}, {}, nullptr,
           32);
  const std::size_t boundary = 32 * rng.below(n / 32 + 1);
  const std::size_t victim = rng.below(procs);
  ASSERT_EQ(ft.factor_steps(boundary), FtStatus::kOk);
  ft.simulate_failstop(victim);
  ASSERT_EQ(ft.recover_process(victim), FtStatus::kCorrectedErrors);
  ASSERT_EQ(ft.factor_steps(n), FtStatus::kOk);
  std::vector<double> x(n);
  ft.solve(x);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(x[i], sys.x_true[i], 1e-6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HplRandomFailure, ::testing::Range(0, 16));

}  // namespace
}  // namespace abftecc::abft
