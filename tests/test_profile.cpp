// Phase profiler (obs/profile.hpp): self-time attribution exactness, the
// phase tree, span recording, thread-default plumbing, and the merged
// Chrome trace exporter.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"

namespace abftecc::obs {
namespace {

/// Profiler driven by a hand-cranked counter clock.
struct Clocked {
  PhaseProfiler prof;
  std::uint64_t cycles = 0;
  std::uint64_t stalls = 0;

  Clocked() {
    prof.set_sampler([this] {
      return CounterSample{cycles, stalls, cycles / 2,
                           static_cast<double>(cycles) * 0.25};
    });
    prof.start();
  }
};

TEST(Profile, SelfTimeAttributionIsExactAcrossNesting) {
  Clocked c;
  c.cycles = 10;                      // 10 cycles before any phase -> total
  c.prof.enter(Phase::kCompute);
  c.cycles = 40;                      // 30 cycles of compute self
  c.prof.enter(Phase::kEncode);
  c.cycles = 100;                     // 60 cycles of encode (nested)
  c.prof.exit();
  c.cycles = 110;                     // 10 more compute self
  c.prof.exit();
  c.cycles = 115;                     // 5 trailing root cycles
  c.prof.stop();

  EXPECT_EQ(c.prof.phase_total(Phase::kTotal).cycles, 15u);
  EXPECT_EQ(c.prof.phase_total(Phase::kCompute).cycles, 40u);
  EXPECT_EQ(c.prof.phase_total(Phase::kEncode).cycles, 60u);
  // Exactness by construction: every cycle lands in exactly one node, so
  // the phase sum equals the counter advance with zero residual.
  EXPECT_EQ(c.prof.total().cycles, 115u);
  EXPECT_EQ(c.prof.total().instructions, 115u / 2);
}

TEST(Profile, PhaseTreeRecordsParentageAndEnterCounts) {
  Clocked c;
  for (int i = 0; i < 3; ++i) {
    c.prof.enter(Phase::kVerify);
    c.cycles += 7;
    c.prof.exit();
  }
  c.prof.enter(Phase::kVerify);
  c.prof.enter(Phase::kCorrect);  // nested under verify, not a new root
  c.cycles += 2;
  c.prof.exit();
  c.prof.exit();
  c.prof.stop();

  const auto& nodes = c.prof.nodes();
  ASSERT_EQ(nodes.size(), 3u);  // root, verify, verify/correct
  EXPECT_EQ(nodes[0].phase, Phase::kTotal);
  EXPECT_EQ(nodes[1].phase, Phase::kVerify);
  EXPECT_EQ(nodes[1].parent, 0);
  EXPECT_EQ(nodes[1].enters, 4u);  // repeated entries reuse the node
  EXPECT_EQ(nodes[2].phase, Phase::kCorrect);
  EXPECT_EQ(nodes[2].parent, 1);
  EXPECT_EQ(nodes[2].depth, 2);
}

TEST(Profile, SpansCarryDepthAndRespectCapacity) {
  PhaseProfiler prof(/*span_capacity=*/2);
  std::uint64_t clock = 0;
  prof.set_sampler([&] { return CounterSample{clock, 0, 0, 0.0}; });
  prof.start();
  for (int i = 0; i < 4; ++i) {
    prof.enter(Phase::kEncode);
    clock += 5;
    prof.exit();
  }
  prof.stop();
  ASSERT_EQ(prof.spans().size(), 2u);  // capacity bound
  EXPECT_EQ(prof.dropped_spans(), 2u);
  EXPECT_EQ(prof.spans()[0].phase, Phase::kEncode);
  EXPECT_EQ(prof.spans()[0].dur_cycles, 5u);
  EXPECT_EQ(prof.spans()[0].depth, 1u);
  // Attribution is unaffected by span drops.
  EXPECT_EQ(prof.phase_total(Phase::kEncode).cycles, 20u);
}

TEST(Profile, StopClosesUnbalancedScopesAndDisables) {
  Clocked c;
  c.prof.enter(Phase::kCompute);
  c.prof.enter(Phase::kEncode);
  c.cycles = 50;
  c.prof.stop();  // two scopes still open
  EXPECT_FALSE(c.prof.enabled());
  EXPECT_EQ(c.prof.total().cycles, 50u);
  const std::uint64_t before = c.prof.total().cycles;
  c.cycles = 90;
  c.prof.enter(Phase::kVerify);  // no-op while stopped
  c.prof.exit();
  EXPECT_EQ(c.prof.total().cycles, before);
}

TEST(Profile, ProfilerScopeOverridesThreadDefaultForPhaseScope) {
  PhaseProfiler mine;
  std::uint64_t clock = 0;
  mine.set_sampler([&] { return CounterSample{clock, 0, 0, 0.0}; });
  mine.start();
  {
    ProfilerScope scope(mine);
    EXPECT_EQ(&default_profiler(), &mine);
    PhaseScope span(Phase::kRollback);
    clock = 33;
  }
  mine.stop();
  EXPECT_NE(&default_profiler(), &mine);
  EXPECT_EQ(mine.phase_total(Phase::kRollback).cycles, 33u);
}

TEST(Profile, ToJsonIsValidAndSkipsPhasesThatNeverRan) {
  Clocked c;
  c.prof.enter(Phase::kCheckpoint);
  c.cycles = 12;
  c.prof.exit();
  c.prof.stop();
  const std::string doc = c.prof.to_json();
  EXPECT_TRUE(json_valid(doc));
  EXPECT_NE(doc.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(doc.find("\"total\""), std::string::npos);
  EXPECT_EQ(doc.find("\"rollback\""), std::string::npos);  // never entered
}

TEST(Profile, MergedChromeTraceIsValidAndCarriesBothSources) {
  Tracer tracer(64);
  tracer.enable();
  tracer.instant(EventKind::kEccInterrupt, 5, 0x1000);
  Clocked c;
  c.prof.enter(Phase::kVerify);
  c.cycles = 20;
  c.prof.exit();
  c.prof.stop();
  const std::string doc = merged_chrome_trace_json(tracer, c.prof);
  EXPECT_TRUE(json_valid(doc));
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("profiler phases"), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"profile\""), std::string::npos);
  EXPECT_NE(doc.find("ecc_interrupt"), std::string::npos);
}

TEST(Profile, SessionAttributesEveryCycleWithZeroResidual) {
  // The acceptance criterion behind fig3: on a real simulated run the
  // phase sum must equal the session's total simulated cycles (the 0.1%
  // budget is satisfied exactly).
  sim::PlatformOptions opt;
  opt.dgemm_dim = 64;
  opt.verify_period = 1;
  opt.profile = true;
  sim::Session s = sim::Session::Builder(opt).build();
  const sim::RunMetrics m = s.run(sim::Kernel::kDgemm);
  PhaseProfiler& prof = s.profiler();
  prof.stop();
  EXPECT_EQ(prof.total().cycles, m.sys.cpu_cycles);
  EXPECT_EQ(prof.total().instructions, m.sys.instructions);
  EXPECT_GT(prof.phase_total(Phase::kCompute).cycles, 0u);
  EXPECT_GT(prof.phase_total(Phase::kEncode).cycles, 0u);
  EXPECT_GT(prof.phase_total(Phase::kVerify).cycles, 0u);

  // publish() lands the attribution in a registry under profile.*.
  Registry reg;
  prof.publish(reg);
  EXPECT_EQ(reg.counter("profile.compute.cycles").value(),
            prof.phase_total(Phase::kCompute).cycles);
}

TEST(Profile, BackToBackSessionsRestartAttributionCleanly) {
  // Each Session's MemorySystem starts at cycle 0; the Session must
  // rebind+restart the thread profiler so the second run never sees a
  // counter regression (uint64 delta underflow).
  sim::PlatformOptions opt;
  opt.dgemm_dim = 48;
  opt.profile = true;
  std::uint64_t first = 0;
  {
    sim::Session s = sim::Session::Builder(opt).build();
    s.run(sim::Kernel::kDgemm);
    s.profiler().stop();
    first = s.profiler().total().cycles;
  }
  {
    sim::Session s = sim::Session::Builder(opt).build();
    const sim::RunMetrics m = s.run(sim::Kernel::kDgemm);
    s.profiler().stop();
    EXPECT_EQ(s.profiler().total().cycles, m.sys.cpu_cycles);
    EXPECT_LT(s.profiler().total().cycles, first * 2);  // not accumulated
  }
}

}  // namespace
}  // namespace abftecc::obs
