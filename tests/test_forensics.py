#!/usr/bin/env python3
"""Unit tests for tools/forensics.py (stdlib only, run via ctest).

Exercises the ledger parser, the funnel/orphan logic, reconciliation
against a campaign report (including deliberate mismatches), and the
canon subcommand's cycle-stripping -- on a synthetic two-trial ledger, so
the tests do not need the simulator built. The CI smoke job runs the same
subcommands against a real campaign ledger.
"""
import importlib.util
import io
import json
import os
import struct
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SPEC = importlib.util.spec_from_file_location(
    "forensics", os.path.join(REPO, "tools", "forensics.py"))
forensics = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(forensics)


def fault(trial, fid, stages, terminal, resolution, count=1, phys=0x1000):
    return {
        "trial": trial, "kernel": "FT-DGEMM", "fault": fid,
        "kind": "bit_flip", "phys": phys, "bit": 3,
        "resolution": resolution, "resolution_count": count,
        "exposed": "os_exposed" in stages, "located": False,
        "terminal": terminal,
        "events": [{"fault": fid, "stage": s, "cycle": 100 + i,
                    "addr": phys, "a0": 0, "a1": 0} for i, s in
                   enumerate(stages)],
    }


def trial(tid, terminal, faults, dropped=0):
    return {"trial": tid, "kernel": "FT-DGEMM", "terminal": terminal,
            "faults": faults, "exposed_dropped": dropped,
            "events": [{"fault": 0, "stage": "terminal", "cycle": 900,
                        "addr": 0, "a0": 0, "a1": 0, "tag": terminal}]}


LEDGER = [
    fault(0, 1, ["inject", "ecc_corrected"], "corrected", "ecc_corrected"),
    fault(1, 1, ["inject", "ecc_detected_uncorrectable", "os_interrupt",
                 "os_exposed"], "recovered_by_rollback",
          "ecc_detected_uncorrectable"),
    trial(0, "corrected", 1),
    trial(1, "recovered_by_rollback", 1),
]

REPORT = {
    "schema_version": 1,
    "scalars": {
        "dgemm.trials": 2.0,
        "dgemm.corrected_fraction": 0.5,
        "dgemm.recovered_by_rollback_fraction": 0.5,
        "dgemm.silent_data_corruption_fraction": 0.0,
    },
    "lineage": {"dgemm": {"ok": True, "faults": 2, "orphans": 0}},
}


class ForensicsTest(unittest.TestCase):
    def write(self, d, name, doc_lines):
        p = os.path.join(d, name)
        with open(p, "w") as f:
            if isinstance(doc_lines, list):
                for rec in doc_lines:
                    f.write(json.dumps(rec) + "\n")
            else:
                json.dump(doc_lines, f)
        return p

    def run_cli(self, *argv):
        old = sys.argv
        sys.argv = ["forensics.py", *argv]
        out = io.StringIO()
        try:
            with redirect_stdout(out):
                status = forensics.main()
        finally:
            sys.argv = old
        return status, out.getvalue()

    def test_load_splits_fault_and_trial_records(self):
        with tempfile.TemporaryDirectory() as d:
            faults, trials = forensics.load(self.write(d, "l.jsonl", LEDGER))
        self.assertEqual(len(faults), 2)
        self.assertEqual(len(trials), 2)

    def test_funnel_counts_transitions_into_terminal(self):
        with tempfile.TemporaryDirectory() as d:
            status, out = self.run_cli(
                "funnel", self.write(d, "l.jsonl", LEDGER))
        self.assertEqual(status, 0)
        self.assertIn("inject", out)
        self.assertIn("terminal:recovered_by_rollback", out)
        self.assertIn("2 fault record(s)", out)

    def test_orphans_clean_ledger_exits_zero(self):
        with tempfile.TemporaryDirectory() as d:
            status, out = self.run_cli(
                "orphans", self.write(d, "l.jsonl", LEDGER))
        self.assertEqual(status, 0)
        self.assertIn("no orphans", out)

    def test_orphans_flags_unresolved_and_double_counted(self):
        bad = [fault(0, 1, ["inject"], "corrected", "none", count=0),
               fault(0, 2, ["inject", "ecc_corrected"], "corrected",
                     "ecc_corrected", count=2),
               trial(0, "corrected", 2, dropped=1)]
        with tempfile.TemporaryDirectory() as d:
            status, out = self.run_cli(
                "orphans", self.write(d, "l.jsonl", bad))
        self.assertEqual(status, 1)
        self.assertIn("orphan", out)
        self.assertIn("double-count", out)
        # Storm context: drops are called out so orphan-chasing starts at
        # the right place.
        self.assertIn("OS log drops", out)

    def test_reconcile_matches_report(self):
        with tempfile.TemporaryDirectory() as d:
            status, out = self.run_cli(
                "reconcile", self.write(d, "l.jsonl", LEDGER),
                "--report", self.write(d, "r.json", REPORT))
        self.assertEqual(status, 0)
        self.assertIn("reconcile: OK", out)

    def test_reconcile_detects_terminal_mismatch(self):
        report = json.loads(json.dumps(REPORT))
        report["scalars"]["dgemm.corrected_fraction"] = 1.0
        report["scalars"]["dgemm.recovered_by_rollback_fraction"] = 0.0
        with tempfile.TemporaryDirectory() as d:
            status, out = self.run_cli(
                "reconcile", self.write(d, "l.jsonl", LEDGER),
                "--report", self.write(d, "r.json", report))
        self.assertEqual(status, 1)
        self.assertIn("MISMATCH", out)

    def test_reconcile_detects_missing_fault_records(self):
        report = json.loads(json.dumps(REPORT))
        report["lineage"]["dgemm"]["faults"] = 3
        with tempfile.TemporaryDirectory() as d:
            status, out = self.run_cli(
                "reconcile", self.write(d, "l.jsonl", LEDGER),
                "--report", self.write(d, "r.json", report))
        self.assertEqual(status, 1)
        self.assertIn("fault records", out)

    def test_canon_strips_cycles_and_is_stable(self):
        with tempfile.TemporaryDirectory() as d:
            p = self.write(d, "l.jsonl", LEDGER)
            status, out = self.run_cli("canon", p)
        self.assertEqual(status, 0)
        self.assertNotIn('"cycle"', out)
        # Still one canonical line per ledger record, all stages intact.
        self.assertEqual(len(out.strip().splitlines()), len(LEDGER))
        self.assertIn("ecc_detected_uncorrectable", out)

    def test_timeline_decodes_abft_residual_bits(self):
        residual = 0.03125
        bits = struct.unpack("<Q", struct.pack("<d", residual))[0]
        rec = fault(0, 1, ["inject", "ecc_detected_uncorrectable"],
                    "corrected", "ecc_detected_uncorrectable")
        rec["events"].append({"fault": 1, "stage": "abft_corrected",
                              "cycle": 500, "addr": 0x1000,
                              "a0": bits, "a1": 0})
        with tempfile.TemporaryDirectory() as d:
            status, out = self.run_cli(
                "timeline", self.write(d, "l.jsonl", [rec]), "--no-cycles")
        self.assertEqual(status, 0)
        self.assertIn("residual=0.03125", out)

    def test_merge_shard_ledgers_is_order_independent(self):
        shard0 = [LEDGER[0], LEDGER[2]]  # trial 0's fault + trial record
        shard1 = [LEDGER[1], LEDGER[3]]
        with tempfile.TemporaryDirectory() as d:
            whole = self.write(d, "all.jsonl", LEDGER)
            p0 = self.write(d, "s0.jsonl", shard0)
            p1 = self.write(d, "s1.jsonl", shard1)
            _, out_whole = self.run_cli("canon", whole)
            status, out_fwd = self.run_cli("canon", p0, p1)
            _, out_rev = self.run_cli("canon", p1, p0)
        self.assertEqual(status, 0)
        self.assertEqual(out_fwd, out_rev)
        self.assertEqual(out_fwd, out_whole)

    def test_merge_reconciles_split_shards_against_report(self):
        with tempfile.TemporaryDirectory() as d:
            p0 = self.write(d, "s0.jsonl", [LEDGER[0], LEDGER[2]])
            p1 = self.write(d, "s1.jsonl", [LEDGER[1], LEDGER[3]])
            status, out = self.run_cli(
                "reconcile", p0, p1, "--report",
                self.write(d, "r.json", REPORT))
        self.assertEqual(status, 0)
        self.assertIn("reconcile: OK", out)

    def test_merge_rejects_duplicate_fault_keys(self):
        with tempfile.TemporaryDirectory() as d:
            whole = self.write(d, "all.jsonl", LEDGER)
            overlap = self.write(d, "dup.jsonl", [LEDGER[0]])
            with self.assertRaises(SystemExit) as ctx:
                self.run_cli("canon", whole, overlap)
        self.assertEqual(ctx.exception.code, 2)

    def test_merge_rejects_duplicate_trial_keys(self):
        with tempfile.TemporaryDirectory() as d:
            p0 = self.write(d, "s0.jsonl", [LEDGER[2]])
            p1 = self.write(d, "s1.jsonl", [LEDGER[3], LEDGER[2]])
            with self.assertRaises(SystemExit) as ctx:
                self.run_cli("orphans", p0, p1)
        self.assertEqual(ctx.exception.code, 2)

    def test_kernel_slugs_cover_all_four_kernels(self):
        self.assertEqual(forensics.slug_of("FT-DGEMM"), "dgemm")
        self.assertEqual(forensics.slug_of("FT-Cholesky"), "cholesky")
        self.assertEqual(forensics.slug_of("FT-CG"), "cg")
        self.assertEqual(forensics.slug_of("FT-HPL"), "hpl")


if __name__ == "__main__":
    unittest.main()
