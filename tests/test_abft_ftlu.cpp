// FT-LU: fail-continue soft-error CORRECTION on the pivoted LU (the
// two-extra-checksum-row mode of FtHpl), including coexistence with the
// fail-stop recovery machinery.
#include <gtest/gtest.h>

#include "abft/ft_hpl.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace abftecc::abft {
namespace {

struct Fix {
  linalg::LinearSystem sys;
  Matrix ae, uc;
  std::size_t n, procs, h;
  Fix(std::size_t n_, std::size_t procs_, std::uint64_t seed)
      : n(n_), procs(procs_), h(n_ / procs_) {
    Rng rng(seed);
    sys = linalg::make_general_system(n, rng);
    ae = Matrix(n + h + 2, n + 1);  // +2: global sum/weighted rows
    uc = Matrix(h, n + 1);
  }
  FtHpl::Buffers buffers() { return {ae.view(), uc.view()}; }
  void expect_solution(FtHpl& ft, double tol = 1e-6) {
    std::vector<double> x(n);
    ft.solve(x);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(x[i], sys.x_true[i], tol) << i;
  }
};

TEST(FtLu, SoftModeDetectedFromBufferShape) {
  Fix s(64, 4, 1);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  EXPECT_TRUE(ft.soft_correction_enabled());
  EXPECT_EQ(ft.factor(), FtStatus::kOk);
  s.expect_solution(ft);
}

TEST(FtLu, TrailingSoftErrorCorrectedNotJustDetected) {
  Fix s(96, 4, 2);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(32), FtStatus::kOk);
  // Corrupt an element of the active trailing matrix.
  s.ae(70, 80) += 50.0;
  EXPECT_EQ(ft.verify_active(), FtStatus::kOk);  // repaired in place
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  ASSERT_EQ(ft.factor_steps(96), FtStatus::kOk);
  s.expect_solution(ft);
}

TEST(FtLu, ErrorSurvivesPivotingViaOriginalRowWeights) {
  // Factor far enough that rows have been swapped, then corrupt: the
  // weighted checksum must still locate the right (current) position.
  Fix s(128, 4, 3);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(64), FtStatus::kOk);
  // Pick a definitely-active position.
  std::size_t pos = 64;
  s.ae(pos + 10, 100) -= 123.0;
  EXPECT_EQ(ft.verify_active(), FtStatus::kOk);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  ASSERT_EQ(ft.factor_steps(128), FtStatus::kOk);
  s.expect_solution(ft);
}

TEST(FtLu, ErrorsInMultipleColumnsAllCorrected) {
  Fix s(96, 4, 4);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(32), FtStatus::kOk);
  s.ae(50, 40) += 9.0;
  s.ae(61, 55) -= 4.0;
  s.ae(88, 96) += 2.5;  // the carried b column
  EXPECT_EQ(ft.verify_active(), FtStatus::kOk);
  EXPECT_GE(ft.stats().errors_corrected, 3u);
  ASSERT_EQ(ft.factor_steps(96), FtStatus::kOk);
  s.expect_solution(ft);
}

TEST(FtLu, TwoErrorsSameColumnRefused) {
  Fix s(96, 4, 5);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(32), FtStatus::kOk);
  s.ae(50, 40) += 9.0;
  s.ae(70, 40) += 5.0;
  EXPECT_EQ(ft.verify_active(), FtStatus::kUncorrectable);
}

TEST(FtLu, CorruptionDuringFactorizationCaughtByPeriodicVerify) {
  struct CorruptingTap {
    double* target;
    std::uint64_t* counter;
    std::uint64_t fire_at;
    void read(const void*, std::size_t = 8) { tick(); }
    void write(const void*, std::size_t = 8) { tick(); }
    void update(const void*, std::size_t = 8) { tick(); }
    void tick() {
      if (++*counter == fire_at) *target += 300.0;
    }
  };
  Fix s(128, 4, 6);
  FtOptions opt;
  opt.verify_period = 1;
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), opt, nullptr, 32);
  std::uint64_t counter = 0;
  // Deep trailing element, hit during the first panel's trailing update.
  CorruptingTap tap{&s.ae(120, 110), &counter, 120000};
  const FtStatus st = ft.factor(tap);
  ASSERT_TRUE(st == FtStatus::kOk || st == FtStatus::kCorrectedErrors);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  s.expect_solution(ft, 1e-5);
}

TEST(FtLu, FailStopRecoveryStillWorksInSoftMode) {
  Fix s(96, 4, 7);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(64), FtStatus::kOk);
  ft.simulate_failstop(1);
  EXPECT_EQ(ft.recover_process(1), FtStatus::kCorrectedErrors);
  ASSERT_EQ(ft.factor_steps(96), FtStatus::kOk);
  s.expect_solution(ft);
}

TEST(FtLu, SoftThenFailStopInOneRun) {
  Fix s(128, 4, 8);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(32), FtStatus::kOk);
  s.ae(90, 70) += 17.0;  // soft error...
  EXPECT_EQ(ft.verify_active(), FtStatus::kOk);
  ASSERT_EQ(ft.factor_steps(64), FtStatus::kOk);
  ft.simulate_failstop(3);  // ...then a process loss
  EXPECT_EQ(ft.recover_process(3), FtStatus::kCorrectedErrors);
  ASSERT_EQ(ft.factor_steps(128), FtStatus::kOk);
  s.expect_solution(ft);
}

class FtLuRandomSoftErrors : public ::testing::TestWithParam<int> {};

TEST_P(FtLuRandomSoftErrors, CorrectsOrRefusesAcrossSeeds) {
  const int seed = GetParam();
  Rng rng(4000 + seed);
  Fix s(96, 4, 500 + seed);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  const std::size_t boundary = 32 * (1 + rng.below(2));
  ASSERT_EQ(ft.factor_steps(boundary), FtStatus::kOk);
  // Corrupt a random active element in a random trailing column.
  const std::size_t pos = boundary + rng.below(96 - boundary);
  const std::size_t j = boundary + rng.below(97 - boundary);
  s.ae(pos, j) += rng.uniform(5.0, 500.0);
  const FtStatus st = ft.verify_active();
  ASSERT_NE(st, FtStatus::kNumericalFailure);
  if (st != FtStatus::kUncorrectable) {
    ASSERT_EQ(ft.factor_steps(96), FtStatus::kOk);
    s.expect_solution(ft, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtLuRandomSoftErrors, ::testing::Range(0, 16));

}  // namespace
}  // namespace abftecc::abft
