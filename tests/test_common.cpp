// Unit tests for common: Rng, Matrix/views, units, contracts.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace abftecc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BelowNeverReachesBound) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m(3, 2);
  m(1, 0) = 7.0;
  m(0, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m.data()[1], 7.0);
  EXPECT_DOUBLE_EQ(m.data()[3], 9.0);
}

TEST(Matrix, BlockViewSharesStorage) {
  Matrix m(4, 4);
  auto blk = m.block(1, 1, 2, 2);
  blk(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 42.0);
  EXPECT_EQ(blk.ld(), 4u);
}

TEST(Matrix, ColSpanIsContiguousColumn) {
  Matrix m(3, 3);
  m(0, 2) = 1.0;
  m(2, 2) = 3.0;
  auto col = m.view().col(2);
  EXPECT_DOUBLE_EQ(col[0], 1.0);
  EXPECT_DOUBLE_EQ(col[2], 3.0);
}

TEST(Matrix, RandomSpdIsSymmetricAndDiagonallyHeavy) {
  Rng rng(3);
  Matrix a = Matrix::random_spd(16, rng);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j)
      EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
    EXPECT_GT(a(i, i), 0.0);
  }
}

TEST(Matrix, MaxAbsDiffAndFrobenius) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 3.0;
  b(0, 0) = 1.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 4.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(a.view()), 5.0);
}

TEST(MatrixView, BlockOutOfRangeViolatesContract) {
  Matrix m(3, 3);
  EXPECT_THROW(static_cast<void>(m.view().block(2, 2, 2, 2)),
               ContractViolation);
}

TEST(Units, FitConversion) {
  // 1e9 FIT/Mbit over 1 Mbit = 1 failure per hour.
  FitPerMbit rate{1e9};
  EXPECT_NEAR(rate.failures_per_second(1.0) * 3600.0, 1.0, 1e-12);
}

TEST(Units, JoulesFromPicojoules) {
  EXPECT_DOUBLE_EQ(joules(2.5e12), 2.5);
}

}  // namespace
}  // namespace abftecc
