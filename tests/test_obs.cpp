// Tests for the observability subsystem: JSON emission/validation, the
// metrics registry, the event tracer ring, and an end-to-end check that a
// single injected DRAM fault leaves the full cooperative chain -- inject,
// ECC decode, OS interrupt, error exposure, ABFT recovery -- in the trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "abft/ft_dgemm.hpp"
#include "abft/runtime.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "obs/json.hpp"
#include "obs/jsonv.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "os/os.hpp"
#include "sim/tap.hpp"

namespace abftecc::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, WriterProducesValidNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "histo \"quoted\"\nline");
  w.field("count", std::uint64_t{42});
  w.field("mean", 1.5);
  w.field("enabled", true);
  w.key("buckets");
  w.begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nothing");
  w.null();
  w.end_object();
  EXPECT_TRUE(json_valid(w.str()));
  EXPECT_NE(w.str().find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(w.str().find("\\n"), std::string::npos);
}

TEST(Json, ValidatorRejectsMalformedInput) {
  EXPECT_TRUE(json_valid("{\"a\": [1, 2.5e3, null, true, \"x\"]}"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("1 2"));
  EXPECT_FALSE(json_valid("{\"a\" 1}"));
  EXPECT_FALSE(json_valid("nul"));
}

TEST(Json, NonFiniteDoublesEmitNamedStrings) {
  // NaN/Inf have no JSON number form; emitting them as named strings keeps
  // the document parseable while preserving the kind and the sign.
  JsonWriter w;
  w.begin_object()
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .field("pinf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("finite", 2.5)
      .end_object();
  EXPECT_TRUE(json_valid(w.str()));
  EXPECT_NE(w.str().find("\"nan\":\"NaN\""), std::string::npos);
  EXPECT_NE(w.str().find("\"pinf\":\"Infinity\""), std::string::npos);
  EXPECT_NE(w.str().find("\"ninf\":\"-Infinity\""), std::string::npos);
  EXPECT_NE(w.str().find("\"finite\":2.5"), std::string::npos);
}

TEST(Json, NonFiniteStringSentinelsParseBackToDoubles) {
  // The reader half of the contract above: the named strings the writer
  // emits for NaN/Inf must map back to the doubles they stand for, or a
  // non-finite value silently collapses to the fallback on any
  // serialize/parse round trip (e.g. a checkpointed accumulator).
  JsonWriter w;
  w.begin_object()
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .field("pinf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("plain", std::string("Infinite"))
      .end_object();
  std::string error;
  const auto v = json_parse(w.str(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_TRUE(std::isnan(v->num("nan")));
  EXPECT_EQ(v->num("pinf"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(v->num("ninf"), -std::numeric_limits<double>::infinity());
  // Only the exact sentinels map; other strings still hit the fallback.
  EXPECT_EQ(v->num("plain", -1.0), -1.0);
}

TEST(Json, EscapingHandlesControlAndBoundaryCharacters) {
  const std::string nasty = std::string("a\x01z") + '\0' + "\x1f\\\"\t\r\n";
  JsonWriter w;
  w.begin_object().field("s", nasty).end_object();
  EXPECT_TRUE(json_valid(w.str()));
  EXPECT_NE(w.str().find("\\u0001"), std::string::npos);
  EXPECT_NE(w.str().find("\\u0000"), std::string::npos);
  EXPECT_NE(w.str().find("\\u001f"), std::string::npos);
  EXPECT_NE(w.str().find("\\\\"), std::string::npos);
  EXPECT_NE(w.str().find("\\\""), std::string::npos);
  EXPECT_NE(w.str().find("\\t"), std::string::npos);
  EXPECT_NE(w.str().find("\\r"), std::string::npos);
  EXPECT_NE(w.str().find("\\n"), std::string::npos);
  // Round-trip sanity: no raw control bytes survive in the output.
  for (const char c : w.str())
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Json, RawSplicesPreSerializedValue) {
  JsonWriter inner;
  inner.begin_object().field("x", 1).end_object();
  JsonWriter w;
  w.begin_object().key("nested").raw(inner.str()).field("y", 2).end_object();
  EXPECT_TRUE(json_valid(w.str()));
  EXPECT_EQ(w.str(), "{\"nested\":{\"x\":1},\"y\":2}");
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow
  h.observe(0.5);  // <= 1        -> bucket 0
  h.observe(1.0);  // == bound 0  -> bucket 0 (le semantics)
  h.observe(1.5);  //              -> bucket 1
  h.observe(2.0);  // == bound 1  -> bucket 1
  h.observe(4.0);  // == bound 2  -> bucket 2
  h.observe(4.5);  // > last      -> overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.max(), 4.5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.5);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

TEST(Metrics, ExponentialBoundsBuildGeometricLadder) {
  const auto bounds = Histogram::exponential_bounds(16.0, 2.0, 10);
  ASSERT_EQ(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 16.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 16.0 * 512.0);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(Metrics, RegistryResetZeroesValuesButKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("test.counter");
  Gauge& g = reg.gauge("test.gauge");
  Histogram& h = reg.histogram("test.histo", {10.0});
  c.add(5);
  g.set(3.5);
  h.observe(7.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  // Cached references stay live and re-registration returns the same
  // instrument.
  c.add(2);
  EXPECT_EQ(reg.counter("test.counter").value(), 2u);
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(&reg.histogram("test.histo", {}), &h);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Metrics, HistogramOverflowBucketAccounting) {
  Histogram h({8.0});
  ASSERT_EQ(h.num_buckets(), 2u);  // 1 bound + overflow
  h.observe(8.0);           // == bound -> bucket 0 (le semantics)
  h.observe(8.0000001);     // just past the last bound -> overflow
  h.observe(1e12);          // far overflow
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.count(), 3u);  // overflow observations still count/sum/max
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0 + 8.0000001 + 1e12);
  EXPECT_TRUE(std::isinf(h.upper_bound(1)));
  h.reset();
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.count(), 0u);
  // A histogram with no bounds is a single overflow bucket: everything
  // lands there but the moments still accumulate.
  Histogram bare((std::vector<double>()));
  ASSERT_EQ(bare.num_buckets(), 1u);
  bare.observe(-3.0);
  bare.observe(42.0);
  EXPECT_EQ(bare.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(bare.max(), 42.0);
  EXPECT_TRUE(std::isinf(bare.upper_bound(0)));
}

TEST(Metrics, RegistryResetPreservesRegistrationsAfterProfilerPublish) {
  // A profiler run publishes profile.* instruments into a registry;
  // reset() must zero them without forgetting the registrations, so the
  // next publish lands in the same instruments.
  PhaseProfiler prof;
  std::uint64_t clock = 0;
  prof.set_sampler([&] {
    return CounterSample{clock, clock / 10, 2 * clock,
                         static_cast<double>(clock)};
  });
  prof.start();
  clock = 100;
  prof.enter(Phase::kEncode);
  clock = 250;
  prof.exit();
  prof.stop();

  Registry reg;
  prof.publish(reg);
  const std::size_t registered = reg.size();
  EXPECT_GT(registered, 0u);
  EXPECT_EQ(reg.counter("profile.encode.cycles").value(), 150u);
  EXPECT_EQ(reg.counter("profile.total.cycles").value(), 100u);

  reg.reset();
  EXPECT_EQ(reg.size(), registered);  // registrations survive
  EXPECT_EQ(reg.counter("profile.encode.cycles").value(), 0u);
  EXPECT_EQ(reg.size(), registered);  // lookups above did not re-register

  prof.publish(reg);  // a fresh publish repopulates the same instruments
  EXPECT_EQ(reg.size(), registered);
  EXPECT_EQ(reg.counter("profile.encode.cycles").value(), 150u);
  EXPECT_EQ(reg.counter("profile.encode.instructions").value(), 300u);
}

TEST(Metrics, SnapshotAndJsonSinkAreWellFormed) {
  Registry reg;
  reg.counter("a.hits").add(3);
  reg.gauge("b.level").set(0.25);
  reg.histogram("c.lat", {1.0, 2.0}).observe(1.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "a.hits");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets.size(), 3u);
  EXPECT_TRUE(json_valid(reg.to_json()));
}

// -------------------------------------------------------------- tracer --

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer t(8);
  t.instant(EventKind::kFaultInject, 1, 0x40);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(Trace, RingWrapsOverwritingOldestAndCountsDrops) {
  Tracer t(4);
  t.enable();
  for (std::uint64_t i = 0; i < 10; ++i)
    t.instant(EventKind::kDemandMiss, 100 + i, 64 * i);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are the newest four, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].ts, 106 + i);
  }
}

std::vector<long long> extract_ts(const std::string& json) {
  std::vector<long long> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::strtoll(json.c_str() + pos, nullptr, 10));
  }
  return out;
}

TEST(Trace, ChromeTraceJsonIsValidAndMonotonic) {
  Tracer t(64);
  t.enable();
  // Record deliberately out of ts order: export must sort.
  t.instant(EventKind::kEccInterrupt, 500, 0x1000);
  t.complete(EventKind::kVerify, "ft_test.verify", 120, 30);
  t.instant(EventKind::kFaultInject, 100, 0x1000, 3);
  t.complete(EventKind::kRecover, "ft_test.recover", 400, 50, 0x1000);
  const std::string json = t.chrome_trace_json();
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fault.inject\""), std::string::npos);
  EXPECT_NE(json.find("\"ft_test.recover\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  const auto ts = extract_ts(json);
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

TEST(Trace, SetCapacityResizesAndClears) {
  Tracer t(4);
  t.enable();
  t.instant(EventKind::kPanic, 1);
  t.set_capacity(16);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), 16u);
  t.instant(EventKind::kPanic, 2);
  EXPECT_EQ(t.size(), 1u);
}

// -------------------------------------------------- end-to-end chain --

bool has_kind(const std::vector<TraceEvent>& events, EventKind k) {
  return std::any_of(events.begin(), events.end(),
                     [&](const TraceEvent& e) { return e.kind == k; });
}

std::uint64_t line_of_kind(const std::vector<TraceEvent>& events,
                           EventKind k) {
  for (const auto& e : events)
    if (e.kind == k) return e.addr / 64;
  return ~std::uint64_t{0};
}

TEST(ObsIntegration, InjectedFaultLeavesFullCooperativeChainInTrace) {
  auto& tracer = default_tracer();
  auto& reg = default_registry();
  tracer.set_capacity(1 << 15);
  tracer.enable();
  reg.reset();

  memsim::MemorySystem sys(memsim::SystemConfig::scaled(8),
                           ecc::Scheme::kChipkill);
  os::Os osl(sys);
  abft::Runtime rt(&osl);
  sim::TapContext ctx(osl, sys);
  fault::Injector inj(sys, osl);

  const std::size_t n = 32;
  Rng rng(11);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  auto alloc = [&](std::size_t r, std::size_t c, const char* name) {
    void* p = osl.malloc_ecc(r * c * sizeof(double), ecc::Scheme::kSecded,
                             name, /*abft_protected=*/true);
    return MatrixView(static_cast<double*>(p), r, c, r);
  };
  abft::FtDgemm::Buffers buf{alloc(n + 1, n, "Ac"), alloc(n, n + 1, "Br"),
                             alloc(n + 1, n + 1, "Cf")};
  abft::FtOptions fo;
  fo.hardware_assisted = true;
  abft::FtDgemm ft(a.view(), b.view(), buf, fo, &rt);
  ASSERT_EQ(ft.run(sim::MemoryTap(ctx)), abft::FtStatus::kOk);

  // Push the result out of the caches so the injected DRAM corruption is
  // what the next read decodes.
  void* flush = osl.malloc_plain(4 * sys.config().l2.size_bytes, "flush");
  const auto fp = *osl.virt_to_phys(flush);
  for (std::uint64_t o = 0; o < 4 * sys.config().l2.size_bytes; o += 64)
    sys.access(fp + o, memsim::AccessKind::kRead);
  osl.free_ecc(flush);
  tracer.clear();  // keep only the fault chain in the ring

  // A double-bit flip in one SECDED word: detected but uncorrectable at
  // the controller, well inside ABFT's single-element repair capability.
  const std::uint64_t phys = *osl.virt_to_phys(&buf.cf(3, 4));
  inj.inject_bit(phys, 0);
  inj.inject_bit(phys + 1, 1);
  sys.access(phys, memsim::AccessKind::kRead);  // decode -> interrupt

  const abft::FtStatus st = ft.verify_and_correct(sim::MemoryTap(ctx));
  EXPECT_NE(st, abft::FtStatus::kUncorrectable);
  EXPECT_GE(ft.stats().hw_notifications_used, 1u);
  EXPECT_GE(ft.stats().errors_corrected, 1u);

  const auto events = tracer.snapshot();
  EXPECT_TRUE(has_kind(events, EventKind::kFaultInject));
  EXPECT_TRUE(has_kind(events, EventKind::kEccUncorrectable));
  EXPECT_TRUE(has_kind(events, EventKind::kEccInterrupt));
  EXPECT_TRUE(has_kind(events, EventKind::kErrorExposed));
  EXPECT_TRUE(has_kind(events, EventKind::kErrorsDrained));
  EXPECT_TRUE(has_kind(events, EventKind::kErrorLocated));
  EXPECT_TRUE(has_kind(events, EventKind::kVerify));
  EXPECT_TRUE(has_kind(events, EventKind::kRecover));

  // Every stage of the chain names the same cache line.
  const std::uint64_t line = phys / 64;
  EXPECT_EQ(line_of_kind(events, EventKind::kFaultInject), line);
  EXPECT_EQ(line_of_kind(events, EventKind::kEccUncorrectable), line);
  EXPECT_EQ(line_of_kind(events, EventKind::kEccInterrupt), line);
  EXPECT_EQ(line_of_kind(events, EventKind::kErrorExposed), line);

  // The chain also shows up in the metrics registry.
  EXPECT_GE(reg.counter("fault.injected_flips").value(), 2u);
  EXPECT_GE(reg.counter("mc.uncorrectable").value(), 1u);
  EXPECT_GE(reg.counter("os.ecc_interrupts").value(), 1u);
  EXPECT_GE(reg.counter("os.errors_exposed").value(), 1u);
  EXPECT_GE(reg.counter("abft.errors_located").value(), 1u);

  // And the exported timeline is a valid, monotonic Chrome trace.
  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(json_valid(json));
  const auto ts = extract_ts(json);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));

  tracer.enable(false);
  tracer.clear();
  reg.reset();
}

// ----------------------------------------------------- thread confinement --

// Regression for the campaign engine: default_registry() hands each thread
// its own instance, so concurrent sessions never race (or even see) each
// other's counters.
TEST(Metrics, DefaultRegistryIsPerThread) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrements = 10000;
  std::vector<std::thread> pool;
  std::vector<std::uint64_t> observed(kThreads, 0);
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&observed, t] {
      auto& c = default_registry().counter("test.thread_local");
      for (std::uint64_t i = 0; i < kIncrements; ++i) c.add();
      observed[static_cast<std::size_t>(t)] = c.value();
    });
  for (auto& th : pool) th.join();
  // Every thread saw exactly its own increments -- no cross-talk, no torn
  // counts -- and none of them leaked into this thread's registry.
  for (const std::uint64_t v : observed) EXPECT_EQ(v, kIncrements);
  EXPECT_EQ(default_registry().counter("test.thread_local").value(), 0u);
}

TEST(Metrics, RegistryScopeOverridesAndRestoresThreadDefault) {
  Registry& before = default_registry();
  Registry mine;
  {
    RegistryScope scope(mine);
    EXPECT_EQ(&default_registry(), &mine);
    Registry inner;
    {
      RegistryScope nested(inner);
      EXPECT_EQ(&default_registry(), &inner);
    }
    EXPECT_EQ(&default_registry(), &mine);  // LIFO restore
  }
  EXPECT_EQ(&default_registry(), &before);
}

TEST(Trace, TracerScopeOverridesAndRestoresThreadDefault) {
  Tracer& before = default_tracer();
  Tracer mine;
  {
    TracerScope scope(mine);
    EXPECT_EQ(&default_tracer(), &mine);
  }
  EXPECT_EQ(&default_tracer(), &before);
}

TEST(Trace, KindMaskDropsFilteredEventsBeforeTheRing) {
  // The campaign's latency scans mask kDemandMiss so the handful of
  // fault/recovery events can never be evicted by miss instants.
  Tracer t(4);
  t.enable();
  t.set_mask(~kind_bit(EventKind::kDemandMiss));
  for (std::uint64_t i = 0; i < 100; ++i)
    t.instant(EventKind::kDemandMiss, i, 0x40);
  t.instant(EventKind::kEccInterrupt, 200, 0x80);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kEccInterrupt);
  EXPECT_EQ(t.dropped(), 0u);  // masked events are not "drops"
  t.set_mask(~std::uint64_t{0});
  t.instant(EventKind::kDemandMiss, 300, 0x40);
  EXPECT_EQ(t.snapshot().size(), 2u);  // unmasked records again
}

}  // namespace
}  // namespace abftecc::obs
