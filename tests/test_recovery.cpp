// Recovery escalation ladder: Fletcher-64 snapshot checksums, the
// CheckpointStore commit/restore contract (a corrupted checkpoint is
// detected and never restored), the RecoveryManager's attempt budgets and
// OS escalation policy, and the full in-kernel ladder walks of FT-DGEMM
// and FT-QR (tier-2 recompute and tier-3 rollback, including graceful
// kUnrecoverable when every tier is exhausted).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "abft/ft_dgemm.hpp"
#include "abft/ft_qr.hpp"
#include "abft/runtime.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/manager.hpp"
#include "recovery/types.hpp"

namespace abftecc::recovery {
namespace {

// ----------------------------------------------------------- fletcher64 --

TEST(Fletcher64, SensitiveToAnySingleBit) {
  std::vector<std::byte> buf(4096, std::byte{0x5A});
  const std::uint64_t clean = fletcher64(buf.data(), buf.size());
  for (const std::size_t at : {std::size_t{0}, std::size_t{17},
                               std::size_t{4000}, buf.size() - 1}) {
    buf[at] ^= std::byte{0x01};
    EXPECT_NE(fletcher64(buf.data(), buf.size()), clean) << at;
    buf[at] ^= std::byte{0x01};
  }
  EXPECT_EQ(fletcher64(buf.data(), buf.size()), clean);
}

TEST(Fletcher64, LengthAwareOverZeroBytes) {
  // Plain Fletcher sums ignore trailing zeros; the +1 bias must not.
  const std::byte z[2] = {std::byte{0}, std::byte{0}};
  EXPECT_NE(fletcher64(z, 1), fletcher64(z, 2));
  EXPECT_NE(fletcher64(z, 0), fletcher64(z, 1));
}

TEST(Fletcher64, OrderSensitive) {
  const std::byte ab[2] = {std::byte{1}, std::byte{2}};
  const std::byte ba[2] = {std::byte{2}, std::byte{1}};
  EXPECT_NE(fletcher64(ab, 2), fletcher64(ba, 2));
}

// ------------------------------------------------------- CheckpointStore --

TEST(CheckpointStore, CommitRestoreRoundTrip) {
  std::vector<double> data(257, 1.5);
  CheckpointStore store;
  const auto id = store.track("data", data.data(),
                              data.size() * sizeof(double));
  EXPECT_TRUE(store.covers(&data[100]));
  EXPECT_FALSE(store.covers(&store));
  store.commit(3);
  EXPECT_TRUE(store.has_checkpoint());
  EXPECT_EQ(store.epoch(), 3u);

  for (auto& v : data) v = -7.0;  // corruption after the commit
  ASSERT_EQ(store.restore(), RestoreResult::kOk);
  for (const double v : data) EXPECT_EQ(v, 1.5);
  EXPECT_EQ(store.restores(), 1u);
  store.untrack(id);
  EXPECT_EQ(store.tracked_ranges(), 0u);
}

TEST(CheckpointStore, RestoreWithoutCommitRefuses) {
  std::vector<double> data(16, 2.0);
  CheckpointStore store;
  store.track("data", data.data(), data.size() * sizeof(double));
  EXPECT_EQ(store.restore(), RestoreResult::kNoCheckpoint);
  for (const double v : data) EXPECT_EQ(v, 2.0);
}

TEST(CheckpointStore, CorruptedSnapshotDetectedAndNeverRestored) {
  std::vector<double> data(64, 4.0);
  CheckpointStore store;
  const auto id = store.track("data", data.data(),
                              data.size() * sizeof(double));
  store.commit(1);

  // Rot in checkpoint storage itself, then corruption of the live data.
  store.snapshot_bytes(id)[11] ^= std::byte{0x40};
  data[5] = -1.0;

  EXPECT_EQ(store.restore(), RestoreResult::kCorrupted);
  // All-or-nothing: the live data is exactly as it was before restore().
  EXPECT_EQ(data[5], -1.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 5) {
      EXPECT_EQ(data[i], 4.0) << i;
    }
  }
  EXPECT_EQ(store.corrupted_detected(), 1u);
  EXPECT_EQ(store.restores(), 0u);
}

TEST(CheckpointStore, AllOrNothingAcrossRanges) {
  std::vector<double> a(32, 1.0), b(32, 2.0);
  CheckpointStore store;
  const auto ida = store.track("a", a.data(), a.size() * sizeof(double));
  store.track("b", b.data(), b.size() * sizeof(double));
  store.commit(1);
  store.snapshot_bytes(ida)[0] ^= std::byte{0xFF};
  a[0] = b[0] = -9.0;
  // One bad snapshot poisons the whole restore -- b is NOT restored either.
  EXPECT_EQ(store.restore(), RestoreResult::kCorrupted);
  EXPECT_EQ(a[0], -9.0);
  EXPECT_EQ(b[0], -9.0);
}

TEST(CheckpointStore, IntersectsSeesPageSlackNeighborhood) {
  std::vector<double> data(128, 0.0);
  CheckpointStore store;
  store.track("data", data.data(), data.size() * sizeof(double));
  const auto* base = reinterpret_cast<const std::byte*>(data.data());
  // An allocation span that starts inside the tracked range and extends
  // past it (page-granular slack) intersects; a disjoint span does not.
  EXPECT_TRUE(store.intersects(base + 64, 4096));
  EXPECT_FALSE(store.intersects(base + 128 * sizeof(double), 4096));
}

// ------------------------------------------------------- RecoveryManager --

TEST(RecoveryManager, RecomputeBudgetIsPerEpisodeAndRefills) {
  RecoveryOptions opt;
  opt.max_recompute_attempts = 2;
  RecoveryManager rm(opt);
  rm.begin_run();
  EXPECT_TRUE(rm.try_recompute());
  EXPECT_TRUE(rm.try_recompute());
  EXPECT_FALSE(rm.try_recompute());
  // A recovered episode refills the budget: recompute makes forward
  // progress, so the per-episode bound still terminates.
  rm.recompute_succeeded();
  EXPECT_TRUE(rm.try_recompute());
  EXPECT_EQ(rm.stats().recomputes, 1u);
  EXPECT_EQ(rm.stats().recompute_attempts, 3u);
  EXPECT_EQ(rm.verdict(), RecoveryVerdict::kRecoveredByRecompute);
}

TEST(RecoveryManager, RollbackBudgetIsPerRunAndNeverRefills) {
  RecoveryOptions opt;
  opt.max_rollback_attempts = 2;
  RecoveryManager rm(opt);
  rm.begin_run();
  EXPECT_TRUE(rm.try_rollback());
  EXPECT_TRUE(rm.try_rollback());
  EXPECT_FALSE(rm.try_rollback());
  rm.recompute_succeeded();  // refills recompute only
  EXPECT_FALSE(rm.try_rollback());
  // begin_run resets it (fresh kernel invocation).
  rm.begin_run();
  EXPECT_TRUE(rm.try_rollback());
}

TEST(RecoveryManager, DisabledTiersNeverGrantAttempts) {
  RecoveryOptions opt;
  opt.enable_recompute = false;
  opt.enable_rollback = false;
  RecoveryManager rm(opt);
  rm.begin_run();
  EXPECT_FALSE(rm.try_recompute());
  EXPECT_FALSE(rm.try_rollback());
}

TEST(RecoveryManager, EscalationAbsorbedOnlyWhenCheckpointCovered) {
  std::vector<double> data(64, 0.0);
  RecoveryManager rm;
  rm.begin_run();
  rm.store().track("data", data.data(), data.size() * sizeof(double));

  double stranger = 0.0;
  EXPECT_FALSE(rm.on_unprotected_error(&stranger));
  EXPECT_FALSE(rm.rollback_demanded());

  EXPECT_TRUE(rm.on_unprotected_error(&data[10]));
  EXPECT_TRUE(rm.rollback_demanded());
  EXPECT_EQ(rm.stats().escalations, 1u);
}

TEST(RecoveryManager, EscalationAbsorbsPageSlackOfTrackedAllocation) {
  // A fault past the tracked bytes but inside the owning (page-granular)
  // allocation is dead data: absorbable via the region span.
  std::vector<double> data(64, 0.0);
  RecoveryManager rm;
  rm.begin_run();
  rm.store().track("data", data.data(), 64 * sizeof(double) / 2);
  const void* tail = &data[40];  // past the tracked half
  EXPECT_FALSE(rm.on_unprotected_error(tail));
  EXPECT_TRUE(rm.on_unprotected_error(tail, data.data(),
                                      data.size() * sizeof(double)));
  EXPECT_TRUE(rm.rollback_demanded());
}

TEST(RecoveryManager, RollbackClearsDemandAndCorruptionIsCounted) {
  std::vector<double> data(64, 3.0);
  RecoveryManager rm;
  rm.begin_run();
  const auto id =
      rm.store().track("data", data.data(), data.size() * sizeof(double));
  rm.commit(1);
  ASSERT_TRUE(rm.on_unprotected_error(&data[0]));
  ASSERT_TRUE(rm.try_rollback());
  EXPECT_EQ(rm.rollback(), RestoreResult::kOk);
  EXPECT_FALSE(rm.rollback_demanded());
  EXPECT_EQ(rm.stats().rollbacks, 1u);
  EXPECT_EQ(rm.verdict(), RecoveryVerdict::kRecoveredByRollback);

  // Second escalation against a now-corrupted snapshot: detected, demand
  // NOT cleared, nothing restored.
  rm.store().snapshot_bytes(id)[3] ^= std::byte{0x10};
  ASSERT_TRUE(rm.on_unprotected_error(&data[0]));
  ASSERT_TRUE(rm.try_rollback());
  data[7] = -5.0;
  EXPECT_EQ(rm.rollback(), RestoreResult::kCorrupted);
  EXPECT_TRUE(rm.rollback_demanded());
  EXPECT_EQ(data[7], -5.0);
  EXPECT_EQ(rm.stats().corrupted_checkpoints, 1u);
}

TEST(RecoveryManager, UnrecoverableDominatesVerdict) {
  RecoveryManager rm;
  rm.begin_run();
  EXPECT_EQ(rm.verdict(), RecoveryVerdict::kNotNeeded);
  rm.mark_unrecoverable();
  EXPECT_EQ(rm.verdict(), RecoveryVerdict::kUnrecoverable);
}

// ------------------------------------------------ FT-DGEMM ladder walks --

/// Tap that applies a batch of additive corruptions at one reference
/// count: the multi-error patterns plain ABFT correction must refuse.
struct GridCorruptingTap {
  std::vector<double*> targets;
  std::uint64_t* counter;
  std::uint64_t fire_at;
  void read(const void*, std::size_t = 8) { tick(); }
  void write(const void*, std::size_t = 8) { tick(); }
  void update(const void*, std::size_t = 8) { tick(); }
  void tick() {
    if (++*counter == fire_at)
      for (double* t : targets) *t += 1000.0;
  }
};

struct DgemmFix {
  Matrix a, b, ac, br, cf;
  explicit DgemmFix(std::size_t n, std::uint64_t seed)
      : a(n, n), b(n, n), ac(n + 1, n), br(n, n + 1), cf(n + 1, n + 1) {
    Rng rng(seed);
    a = Matrix::random(n, n, rng);
    b = Matrix::random(n, n, rng);
  }
  abft::FtDgemm::Buffers buffers() { return {ac.view(), br.view(), cf.view()}; }
  Matrix reference() {
    Matrix c(a.rows(), b.cols());
    linalg::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    return c;
  }
};

TEST(LadderDgemm, AmbiguousGridHealedByTier2Recompute) {
  DgemmFix s(64, 11);
  abft::Runtime rt;
  RecoveryManager rm;
  rt.set_recovery(&rm);
  abft::FtDgemm ft(s.a.view(), s.b.view(), s.buffers(), {}, &rt);

  // A 2x2 equal-magnitude grid mid-run: unlocatable by checksum pairing
  // (paper Case 4), so plain correction returns kUncorrectable and the
  // ladder's block recompute from the pristine inputs must take over.
  std::uint64_t counter = 0;
  GridCorruptingTap tap{{&s.cf(10, 20), &s.cf(10, 30), &s.cf(40, 20),
                         &s.cf(40, 30)},
                        &counter,
                        120000};
  const abft::FtStatus st = ft.run(tap);
  EXPECT_TRUE(st == abft::FtStatus::kOk ||
              st == abft::FtStatus::kCorrectedErrors)
      << to_string(st);
  EXPECT_GE(rm.stats().recomputes, 1u);
  EXPECT_EQ(rm.stats().rollbacks, 0u);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-6);
}

TEST(LadderDgemm, RecomputeDisabledFallsThroughToRollback) {
  DgemmFix s(64, 12);
  abft::Runtime rt;
  RecoveryOptions opt;
  opt.enable_recompute = false;
  RecoveryManager rm(opt);
  rt.set_recovery(&rm);
  abft::FtDgemm ft(s.a.view(), s.b.view(), s.buffers(), {}, &rt);

  std::uint64_t counter = 0;
  GridCorruptingTap tap{{&s.cf(5, 6), &s.cf(5, 26), &s.cf(45, 6),
                         &s.cf(45, 26)},
                        &counter,
                        120000};
  const abft::FtStatus st = ft.run(tap);
  // The corrupting tap is one-shot, so the replay from the rolled-back
  // epoch is clean and the run completes correctly.
  EXPECT_TRUE(st == abft::FtStatus::kOk ||
              st == abft::FtStatus::kCorrectedErrors)
      << to_string(st);
  EXPECT_GE(rm.stats().rollbacks, 1u);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-6);
}

TEST(LadderDgemm, ExhaustedLadderSurfacesUnrecoverableNotPanic) {
  DgemmFix s(64, 13);
  abft::Runtime rt;
  RecoveryOptions opt;
  opt.enable_recompute = false;
  opt.enable_rollback = false;
  RecoveryManager rm(opt);
  rt.set_recovery(&rm);
  abft::FtDgemm ft(s.a.view(), s.b.view(), s.buffers(), {}, &rt);

  std::uint64_t counter = 0;
  GridCorruptingTap tap{{&s.cf(10, 20), &s.cf(10, 30), &s.cf(40, 20),
                         &s.cf(40, 30)},
                        &counter,
                        120000};
  EXPECT_EQ(ft.run(tap), abft::FtStatus::kUnrecoverable);
  EXPECT_EQ(rm.verdict(), RecoveryVerdict::kUnrecoverable);
  EXPECT_EQ(rm.stats().unrecoverable, 1u);
}

// --------------------------------------------------- FT-QR ladder walks --

struct QrFix {
  Matrix a, aw;
  std::vector<double> tau;
  QrFix(std::size_t m, std::size_t n, std::uint64_t seed)
      : a(m, n), aw(m, n + 2), tau(n, 0.0) {
    Rng rng(seed);
    a = Matrix::random(m, n, rng);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  }
  abft::FtQr::Buffers buffers() { return {aw.view(), tau}; }
};

TEST(LadderQr, SameRowPairHealedByTrailingRecompute) {
  QrFix s(64, 64, 14);
  abft::Runtime rt;
  RecoveryManager rm;
  rt.set_recovery(&rm);
  abft::FtQr ft(s.a.view(), s.buffers(), {}, &rt, 16);

  // Two errors in one trailing row: refused by per-row correction, healed
  // by regenerating the trailing columns from the original matrix.
  std::uint64_t counter = 0;
  GridCorruptingTap tap{{&s.aw(50, 40), &s.aw(50, 55)}, &counter, 100000};
  const abft::FtStatus st = ft.factor(tap);
  EXPECT_TRUE(st == abft::FtStatus::kOk ||
              st == abft::FtStatus::kCorrectedErrors)
      << to_string(st);
  EXPECT_GE(rm.stats().recomputes, 1u);

  // The factorization still solves the system.
  Rng rng(15);
  std::vector<double> x_true(64), rhs(64, 0.0), x(64);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = 0; j < 64; ++j) rhs[i] += s.a(i, j) * x_true[j];
  ft.solve(rhs, x);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(LadderQr, RecomputeDisabledFallsThroughToRollback) {
  QrFix s(64, 64, 16);
  abft::Runtime rt;
  RecoveryOptions opt;
  opt.enable_recompute = false;
  RecoveryManager rm(opt);
  rt.set_recovery(&rm);
  abft::FtQr ft(s.a.view(), s.buffers(), {}, &rt, 16);

  std::uint64_t counter = 0;
  GridCorruptingTap tap{{&s.aw(50, 40), &s.aw(50, 55)}, &counter, 100000};
  const abft::FtStatus st = ft.factor(tap);
  EXPECT_TRUE(st == abft::FtStatus::kOk ||
              st == abft::FtStatus::kCorrectedErrors)
      << to_string(st);
  EXPECT_GE(rm.stats().rollbacks, 1u);

  Rng rng(17);
  std::vector<double> x_true(64), rhs(64, 0.0), x(64);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = 0; j < 64; ++j) rhs[i] += s.a(i, j) * x_true[j];
  ft.solve(rhs, x);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

}  // namespace
}  // namespace abftecc::recovery
