// Bit-level tests for the ECC substrate: GF(256) field axioms, exhaustive
// SECDED single/double-bit behaviour, chipkill symbol correction, and the
// cache-line codec end to end.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/rng.hpp"
#include "ecc/chipkill.hpp"
#include "ecc/codec.hpp"
#include "ecc/gf256.hpp"
#include "ecc/scheme.hpp"
#include "ecc/secded.hpp"

namespace abftecc::ecc {
namespace {

using G = Gf256;

TEST(Gf256, AdditionIsXorAndSelfInverse) {
  EXPECT_EQ(G::add(0x57, 0x83), 0x57 ^ 0x83);
  for (unsigned a = 0; a < 256; ++a)
    EXPECT_EQ(G::add(static_cast<G::Elem>(a), static_cast<G::Elem>(a)), 0);
}

TEST(Gf256, MultiplicationIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(G::mul(static_cast<G::Elem>(a), 1), a);
    EXPECT_EQ(G::mul(static_cast<G::Elem>(a), 0), 0);
  }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a)
    EXPECT_EQ(G::mul(static_cast<G::Elem>(a), G::inv(static_cast<G::Elem>(a))), 1)
        << a;
}

TEST(Gf256, MultiplicationAssociativeOnSample) {
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<G::Elem>(rng.below(256));
    const auto b = static_cast<G::Elem>(rng.below(256));
    const auto c = static_cast<G::Elem>(rng.below(256));
    EXPECT_EQ(G::mul(G::mul(a, b), c), G::mul(a, G::mul(b, c)));
    EXPECT_EQ(G::mul(a, G::add(b, c)), G::add(G::mul(a, b), G::mul(a, c)));
  }
}

TEST(Gf256, ExpLogRoundTrip) {
  for (unsigned i = 0; i < G::kGroupOrder; ++i)
    EXPECT_EQ(G::log(G::exp(i)), i);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  G::Elem acc = 1;
  const G::Elem a = 0x1D;
  for (unsigned n = 0; n < 300; ++n) {
    EXPECT_EQ(G::pow(a, n), acc);
    acc = G::mul(acc, a);
  }
}

// --- SECDED ---------------------------------------------------------------

TEST(Secded, ColumnsAreDistinctAndOddWeight) {
  std::set<std::uint8_t> seen;
  for (unsigned bit = 0; bit < Secded::kCodeBits; ++bit) {
    const std::uint8_t col = Secded::column(bit);
    EXPECT_EQ(__builtin_popcount(col) % 2, 1) << bit;
    EXPECT_TRUE(seen.insert(col).second) << "duplicate column " << bit;
  }
}

TEST(Secded, CleanWordDecodesOk) {
  Rng rng(2);
  for (int t = 0; t < 100; ++t) {
    SecdedWord w = Secded::encode(rng());
    EXPECT_EQ(Secded::decode(w), DecodeStatus::kOk);
  }
}

TEST(Secded, EverySingleBitErrorIsCorrected) {
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    const std::uint64_t data = rng();
    for (unsigned bit = 0; bit < Secded::kCodeBits; ++bit) {
      SecdedWord w = Secded::encode(data);
      Secded::flip_bit(w, bit);
      unsigned fixed = 999;
      EXPECT_EQ(Secded::decode(w, &fixed), DecodeStatus::kCorrected);
      EXPECT_EQ(fixed, bit);
      EXPECT_EQ(w.data, data);
    }
  }
}

TEST(Secded, EveryDoubleBitErrorIsDetected) {
  Rng rng(4);
  const std::uint64_t data = rng();
  for (unsigned b1 = 0; b1 < Secded::kCodeBits; ++b1) {
    for (unsigned b2 = b1 + 1; b2 < Secded::kCodeBits; ++b2) {
      SecdedWord w = Secded::encode(data);
      Secded::flip_bit(w, b1);
      Secded::flip_bit(w, b2);
      EXPECT_EQ(Secded::decode(w), DecodeStatus::kDetectedUncorrectable)
          << b1 << "," << b2;
    }
  }
}

TEST(Secded, TripleBitErrorNeverSilentlyAccepted) {
  // 3-bit errors may mis-correct (fundamental SECDED limit) but must never
  // decode as kOk.
  Rng rng(5);
  for (int t = 0; t < 500; ++t) {
    SecdedWord w = Secded::encode(rng());
    std::set<unsigned> bits;
    while (bits.size() < 3) bits.insert(static_cast<unsigned>(rng.below(72)));
    for (const unsigned b : bits) Secded::flip_bit(w, b);
    EXPECT_NE(Secded::decode(w), DecodeStatus::kOk);
  }
}

// --- Chipkill ---------------------------------------------------------------

std::array<std::uint8_t, Chipkill::kDataSymbols> random_data(Rng& rng) {
  std::array<std::uint8_t, Chipkill::kDataSymbols> d{};
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.below(256));
  return d;
}

TEST(Chipkill, EncodeExtractRoundTrip) {
  Rng rng(6);
  const auto data = random_data(rng);
  const auto cw = Chipkill::encode(data);
  std::array<std::uint8_t, Chipkill::kDataSymbols> out{};
  Chipkill::extract(cw, out);
  EXPECT_EQ(out, data);
}

TEST(Chipkill, CleanWordDecodesOk) {
  Rng rng(7);
  auto cw = Chipkill::encode(random_data(rng));
  EXPECT_EQ(Chipkill::decode(cw), DecodeStatus::kOk);
}

TEST(Chipkill, EverySingleSymbolErrorIsCorrected) {
  Rng rng(8);
  const auto data = random_data(rng);
  for (unsigned sym = 0; sym < Chipkill::kTotalSymbols; ++sym) {
    for (unsigned pattern = 1; pattern < 256; pattern += 37) {
      auto cw = Chipkill::encode(data);
      cw[sym] ^= static_cast<std::uint8_t>(pattern);
      unsigned bad = 999;
      EXPECT_EQ(Chipkill::decode(cw, &bad), DecodeStatus::kCorrected);
      EXPECT_EQ(bad, sym);
      std::array<std::uint8_t, Chipkill::kDataSymbols> out{};
      Chipkill::extract(cw, out);
      EXPECT_EQ(out, data);
    }
  }
}

TEST(Chipkill, DoubleSymbolErrorsAreDetected) {
  Rng rng(9);
  const auto data = random_data(rng);
  for (int t = 0; t < 2000; ++t) {
    auto cw = Chipkill::encode(data);
    unsigned s1 = static_cast<unsigned>(rng.below(Chipkill::kTotalSymbols));
    unsigned s2;
    do {
      s2 = static_cast<unsigned>(rng.below(Chipkill::kTotalSymbols));
    } while (s2 == s1);
    cw[s1] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    cw[s2] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(Chipkill::decode(cw), DecodeStatus::kDetectedUncorrectable);
  }
}

// --- Scheme properties -------------------------------------------------------

TEST(Scheme, PropertiesMatchTable5AndGeometry) {
  EXPECT_DOUBLE_EQ(properties(Scheme::kNone).residual_fit.value, 5000.0);
  EXPECT_DOUBLE_EQ(properties(Scheme::kSecded).residual_fit.value, 1300.0);
  EXPECT_DOUBLE_EQ(properties(Scheme::kChipkill).residual_fit.value, 0.02);
  EXPECT_EQ(properties(Scheme::kChipkill).channels_per_access, 2u);
  EXPECT_EQ(properties(Scheme::kChipkill).chips_per_access, 36u);
  EXPECT_EQ(properties(Scheme::kSecded).chips_per_access, 18u);
  EXPECT_DOUBLE_EQ(properties(Scheme::kSecded).storage_overhead, 0.125);
}

// --- Line codec ---------------------------------------------------------------

std::array<std::uint8_t, kLineBytes> random_line(Rng& rng) {
  std::array<std::uint8_t, kLineBytes> line{};
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.below(256));
  return line;
}

TEST(LineCodec, NoEccLeavesCorruptionSilently) {
  Rng rng(10);
  auto line = random_line(rng);
  const auto orig = line;
  const BitFlip flip{137, false};
  const auto res = LineCodec::process_line(Scheme::kNone, line, {&flip, 1});
  EXPECT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_TRUE(res.silent_corruption);
  EXPECT_NE(line, orig);
}

TEST(LineCodec, SecdedCorrectsSingleBitPerWord) {
  Rng rng(11);
  auto line = random_line(rng);
  const auto orig = line;
  // One flip in each of the 8 words: all corrected independently.
  std::vector<BitFlip> flips;
  for (unsigned w = 0; w < 8; ++w) flips.push_back({w * 64 + w * 3, false});
  const auto res = LineCodec::process_line(Scheme::kSecded, line, flips);
  EXPECT_EQ(res.status, DecodeStatus::kCorrected);
  EXPECT_EQ(res.corrected_words, 8u);
  EXPECT_FALSE(res.silent_corruption);
  EXPECT_EQ(line, orig);
}

TEST(LineCodec, SecdedDetectsDoubleBitInWord) {
  Rng rng(12);
  auto line = random_line(rng);
  const std::vector<BitFlip> flips = {{3, false}, {40, false}};
  const auto res = LineCodec::process_line(Scheme::kSecded, line, flips);
  EXPECT_EQ(res.status, DecodeStatus::kDetectedUncorrectable);
  EXPECT_EQ(res.uncorrectable_words, 1u);
}

TEST(LineCodec, SecdedCheckBitFlipCorrectedWithoutDataDamage) {
  Rng rng(13);
  auto line = random_line(rng);
  const auto orig = line;
  const BitFlip flip{17, true};  // check bit of word 2
  const auto res = LineCodec::process_line(Scheme::kSecded, line, {&flip, 1});
  EXPECT_EQ(res.status, DecodeStatus::kCorrected);
  EXPECT_EQ(line, orig);
}

TEST(LineCodec, ChipkillCorrectsMultiBitWithinOneChip) {
  Rng rng(14);
  auto line = random_line(rng);
  const auto orig = line;
  // 5 flips, all within data byte 7 (one chip's symbol).
  std::vector<BitFlip> flips;
  for (unsigned b : {56u, 57u, 59u, 61u, 63u}) flips.push_back({7 * 8 + b % 8, false});
  const auto res = LineCodec::process_line(Scheme::kChipkill, line, flips);
  EXPECT_EQ(res.status, DecodeStatus::kCorrected);
  EXPECT_EQ(line, orig);
}

TEST(LineCodec, ChipkillDetectsTwoChipCorruption) {
  Rng rng(15);
  auto line = random_line(rng);
  const std::vector<BitFlip> flips = {{0, false}, {80, false}};  // bytes 0, 10
  const auto res = LineCodec::process_line(Scheme::kChipkill, line, flips);
  EXPECT_EQ(res.status, DecodeStatus::kDetectedUncorrectable);
}

TEST(LineCodec, ChipkillSurvivesWholeChipKill) {
  Rng rng(16);
  for (unsigned chip = 0; chip < Chipkill::kTotalSymbols; chip += 5) {
    auto line = random_line(rng);
    const auto orig = line;
    const auto res = LineCodec::kill_chip(Scheme::kChipkill, line, chip, 0xF);
    EXPECT_EQ(res.status, DecodeStatus::kCorrected) << chip;
    EXPECT_EQ(line, orig);
    EXPECT_FALSE(res.silent_corruption);
  }
}

TEST(LineCodec, SecdedDiesOnWholeChipKill) {
  // A full x4 chip failure corrupts 4 bits of every word: beyond SECDED.
  Rng rng(17);
  auto line = random_line(rng);
  const auto res = LineCodec::kill_chip(Scheme::kSecded, line, 3, 0xF);
  EXPECT_EQ(res.status, DecodeStatus::kDetectedUncorrectable);
  EXPECT_EQ(res.uncorrectable_words, 8u);
}

TEST(LineCodec, SecdedCorrectsSingleBitChipPattern) {
  // Pattern 0x1 = one stuck bit line in the chip: 1 bit per word, corrected.
  Rng rng(18);
  auto line = random_line(rng);
  const auto orig = line;
  const auto res = LineCodec::kill_chip(Scheme::kSecded, line, 9, 0x1);
  EXPECT_EQ(res.status, DecodeStatus::kCorrected);
  EXPECT_EQ(res.corrected_words, 8u);
  EXPECT_EQ(line, orig);
}

TEST(LineCodec, NoEccChipKillIsSilent) {
  Rng rng(19);
  auto line = random_line(rng);
  const auto orig = line;
  const auto res = LineCodec::kill_chip(Scheme::kNone, line, 2, 0xF);
  EXPECT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_TRUE(res.silent_corruption);
  EXPECT_NE(line, orig);
}

}  // namespace
}  // namespace abftecc::ecc
