// Generalized RS codec: x8 chipkill (RS(19,16)) and cross-geometry
// properties shared with the x4 instantiation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/rs.hpp"

namespace abftecc::ecc {
namespace {

template <typename Code>
typename Code::Codeword random_codeword(Rng& rng) {
  std::array<std::uint8_t, Code::kDataSymbols> d{};
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.below(256));
  return Code::encode(d);
}

TEST(ChipkillX8, Geometry) {
  EXPECT_EQ(ChipkillX8::kTotalSymbols, 19u);
  EXPECT_EQ(ChipkillX8::kDataSymbols, 16u);
  // 3 check chips per 16 data chips = the paper's 18.75% overhead.
  EXPECT_NEAR(static_cast<double>(ChipkillX8::kCheckSymbols) /
                  ChipkillX8::kDataSymbols,
              0.1875, 1e-12);
}

TEST(ChipkillX8, EncodeExtractRoundTrip) {
  Rng rng(1);
  std::array<std::uint8_t, ChipkillX8::kDataSymbols> d{};
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.below(256));
  const auto cw = ChipkillX8::encode(d);
  std::array<std::uint8_t, ChipkillX8::kDataSymbols> out{};
  ChipkillX8::extract(cw, out);
  EXPECT_EQ(out, d);
  auto copy = cw;
  EXPECT_EQ(ChipkillX8::decode(copy), DecodeStatus::kOk);
}

TEST(ChipkillX8, EverySingleSymbolErrorCorrected) {
  Rng rng(2);
  const auto cw = random_codeword<ChipkillX8>(rng);
  for (unsigned sym = 0; sym < ChipkillX8::kTotalSymbols; ++sym) {
    for (unsigned pattern = 1; pattern < 256; pattern += 29) {
      auto c = cw;
      c[sym] ^= static_cast<std::uint8_t>(pattern);
      unsigned bad = 999;
      ASSERT_EQ(ChipkillX8::decode(c, &bad), DecodeStatus::kCorrected);
      EXPECT_EQ(bad, sym);
      EXPECT_EQ(c, cw);
    }
  }
}

TEST(ChipkillX8, DoubleSymbolErrorsDetected) {
  Rng rng(3);
  const auto cw = random_codeword<ChipkillX8>(rng);
  for (int t = 0; t < 2000; ++t) {
    auto c = cw;
    const unsigned s1 =
        static_cast<unsigned>(rng.below(ChipkillX8::kTotalSymbols));
    unsigned s2;
    do {
      s2 = static_cast<unsigned>(rng.below(ChipkillX8::kTotalSymbols));
    } while (s2 == s1);
    c[s1] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    c[s2] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(ChipkillX8::decode(c), DecodeStatus::kDetectedUncorrectable);
  }
}

// Cross-geometry property sweep over several instantiations.
template <typename Code>
void exercise_code(std::uint64_t seed) {
  Rng rng(seed);
  const auto cw = random_codeword<Code>(rng);
  // Clean decode.
  auto c = cw;
  ASSERT_EQ(Code::decode(c), DecodeStatus::kOk);
  // Single-symbol random errors corrected, 200 samples.
  for (int t = 0; t < 200; ++t) {
    c = cw;
    const auto sym = static_cast<unsigned>(rng.below(Code::kTotalSymbols));
    c[sym] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    ASSERT_EQ(Code::decode(c), DecodeStatus::kCorrected);
    ASSERT_EQ(c, cw);
  }
  // Double-symbol errors detected, 200 samples.
  for (int t = 0; t < 200; ++t) {
    c = cw;
    const auto s1 = static_cast<unsigned>(rng.below(Code::kTotalSymbols));
    const auto s2 =
        (s1 + 1 + static_cast<unsigned>(rng.below(Code::kTotalSymbols - 1))) %
        Code::kTotalSymbols;
    c[s1] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    c[s2] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    ASSERT_EQ(Code::decode(c), DecodeStatus::kDetectedUncorrectable);
  }
}

TEST(RsCode, X4ChipkillGeometryProperties) { exercise_code<RsCode<36, 4>>(10); }
TEST(RsCode, X8ChipkillGeometryProperties) { exercise_code<RsCode<19, 3>>(11); }
TEST(RsCode, WideSymbolCode) { exercise_code<RsCode<72, 4>>(12); }
TEST(RsCode, MinimalSscDsdCode) { exercise_code<RsCode<8, 3>>(13); }

}  // namespace
}  // namespace abftecc::ecc
