// FT-DGEMM: result correctness, error detection/correction across injected
// patterns, checksum-entry self-repair, and capability limits.
#include <gtest/gtest.h>

#include "abft/ft_dgemm.hpp"
#include "abft/runtime.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "recovery/manager.hpp"

namespace abftecc::abft {
namespace {

struct Fix {
  Matrix a, b, ac, br, cf;
  Fix(std::size_t m, std::size_t n, std::size_t k, std::uint64_t seed)
      : a(m, k), b(k, n), ac(m + 1, k), br(k, n + 1), cf(m + 1, n + 1) {
    Rng rng(seed);
    a = Matrix::random(m, k, rng);
    b = Matrix::random(k, n, rng);
  }
  FtDgemm::Buffers buffers() {
    return {ac.view(), br.view(), cf.view()};
  }
  Matrix reference() {
    Matrix c(a.rows(), b.cols());
    linalg::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    return c;
  }
};

TEST(FtDgemm, CleanRunMatchesPlainGemm) {
  Fix s(96, 80, 112, 1);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  EXPECT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-9);
  EXPECT_EQ(ft.stats().errors_detected, 0u);
  EXPECT_GT(ft.stats().verifications, 0u);
}

TEST(FtDgemm, ChecksumInvariantHoldsAfterRun) {
  Fix s(64, 64, 64, 2);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  // Column sums of the payload equal the checksum row.
  for (std::size_t j = 0; j < 64; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < 64; ++i) sum += s.cf(i, j);
    EXPECT_NEAR(sum, s.cf(64, j), 1e-8);
  }
  for (std::size_t i = 0; i < 64; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 64; ++j) sum += s.cf(i, j);
    EXPECT_NEAR(sum, s.cf(i, 64), 1e-8);
  }
}

TEST(FtDgemm, SingleErrorDetectedAndCorrected) {
  Fix s(64, 64, 64, 3);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  // Run clean, then corrupt and invoke verification directly.
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(17, 23) += 5.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
  EXPECT_EQ(ft.stats().errors_corrected, 1u);
}

TEST(FtDgemm, MultipleErrorsSameRowCorrected) {
  Fix s(64, 64, 64, 4);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(9, 3) += 2.0;
  s.cf(9, 40) -= 7.0;
  s.cf(9, 63) += 1.5;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemm, MultipleErrorsSameColumnCorrected) {
  Fix s(64, 64, 64, 5);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(5, 31) += 4.0;
  s.cf(44, 31) -= 2.5;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemm, DistinctRowColErrorsPairedByMagnitude) {
  Fix s(64, 64, 64, 6);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(7, 11) += 3.0;
  s.cf(50, 60) -= 9.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemm, CorruptedChecksumRowEntryRepaired) {
  Fix s(64, 64, 64, 7);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  s.cf(64, 20) += 11.0;  // checksum row itself corrupted
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  double sum = 0.0;
  for (std::size_t i = 0; i < 64; ++i) sum += s.cf(i, 20);
  EXPECT_NEAR(sum, s.cf(64, 20), 1e-8);
}

TEST(FtDgemm, ErrorDuringAccumulationCorrectedByPeriodicVerify) {
  // Corrupt mid-run through a tap that fires once at a chosen reference
  // count -- simulates a fail-continue soft error between verifications.
  struct CorruptingTap {
    double* target;
    std::uint64_t* counter;
    std::uint64_t fire_at;
    void read(const void*, std::size_t = 8) { tick(); }
    void write(const void*, std::size_t = 8) { tick(); }
    void update(const void*, std::size_t = 8) { tick(); }
    void tick() {
      if (++*counter == fire_at) *target += 1000.0;
    }
  };
  Fix s(96, 96, 192, 8);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.cf(33, 44), &counter, 2000000};
  const FtStatus st = ft.run(tap);
  EXPECT_EQ(st, FtStatus::kCorrectedErrors);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-7);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
}

TEST(FtDgemm, AmbiguousGridPatternReportedUncorrectable) {
  // 2x2 grid of equal-magnitude errors cannot be paired uniquely.
  Fix s(64, 64, 64, 9);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  s.cf(10, 20) += 3.0;
  s.cf(10, 30) += 3.0;
  s.cf(40, 20) += 3.0;
  s.cf(40, 30) += 3.0;
  // Rows 10/40 and cols 20/30 all show residual 6.0: ambiguous pairing.
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kUncorrectable);
}

// --- Case-4 pinning (paper Section 4) ----------------------------------------
// Multi-error patterns that defeat checksum pairing must NEVER be silently
// mis-corrected: without the ladder the kernel reports kUncorrectable, with
// the ladder it recomputes and finishes correct. Either way the fault is
// detected and the result is never silently wrong.

TEST(FtDgemm, Case4LShapePatternRefusedNotMiscorrected) {
  Fix s(64, 64, 64, 20);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  // L-shape: two faults sharing row 12 AND two sharing column 21, with
  // magnitudes chosen so no row residual equals any column residual
  // (rows see 11 and 13, columns 17 and 7): pairing must fail loudly.
  // (Equal-magnitude L-shapes alias to a legitimate two-error pattern --
  // a fundamental ABFT detectability limit, not a refusal case.)
  s.cf(12, 21) += 4.0;
  s.cf(12, 44) += 7.0;
  s.cf(33, 21) += 13.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kUncorrectable);
  // Detected, refused, and no partial "repair" was invented: the payload
  // still carries exactly the injected deltas.
  EXPECT_GE(ft.stats().errors_detected, 1u);
  EXPECT_NEAR(s.cf(12, 21) - ref(12, 21), 4.0, 1e-8);
  EXPECT_NEAR(s.cf(12, 44) - ref(12, 44), 7.0, 1e-8);
  EXPECT_NEAR(s.cf(33, 21) - ref(33, 21), 13.0, 1e-8);
}

TEST(FtDgemm, Case4GridHealedWhenLadderAttached) {
  Fix s(64, 64, 64, 21);
  Runtime rt;
  recovery::RecoveryManager rm;
  rt.set_recovery(&rm);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers(), {}, &rt);
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(10, 20) += 3.0;
  s.cf(10, 30) += 3.0;
  s.cf(40, 20) += 3.0;
  s.cf(40, 30) += 3.0;
  // verify_and_correct alone still refuses (the ladder lives in run());
  // pin that the refusal is loud, not a silent mis-correction.
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kUncorrectable);
  // A fresh ladder-driven run over the same buffers heals end to end.
  ASSERT_TRUE(ft.run() == FtStatus::kOk ||
              ft.run() == FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-6);
}

TEST(FtDgemm, ChecksumRowFaultStaysDetectedUnderLadder) {
  Fix s(64, 64, 64, 22);
  Runtime rt;
  recovery::RecoveryManager rm;
  rt.set_recovery(&rm);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers(), {}, &rt);
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  // Fault in the checksum row itself: must be detected and repaired from
  // the payload, never "corrected" into the payload.
  s.cf(64, 7) += 11.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
  EXPECT_EQ(rm.verdict(), recovery::RecoveryVerdict::kNotNeeded);
}

TEST(FtDgemm, NonSquareShapesSupported) {
  Fix s(50, 130, 70, 10);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  EXPECT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-9);
}

TEST(FtDgemm, VerifyPeriodControlsVerificationCount) {
  Fix s1(64, 64, 256, 11), s2(64, 64, 256, 11);
  FtOptions opt1;
  opt1.verify_period = 1;
  FtOptions opt4;
  opt4.verify_period = 4;
  FtDgemm f1(s1.a.view(), s1.b.view(), s1.buffers(), opt1);
  FtDgemm f4(s2.a.view(), s2.b.view(), s2.buffers(), opt4);
  ASSERT_EQ(f1.run(), FtStatus::kOk);
  ASSERT_EQ(f4.run(), FtStatus::kOk);
  EXPECT_GT(f1.stats().verifications, f4.stats().verifications);
}

TEST(FtDgemm, StatsTimersAccumulate) {
  Fix s(96, 96, 96, 12);
  FtDgemm ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  EXPECT_GT(ft.stats().encode_seconds, 0.0);
  EXPECT_GT(ft.stats().verify_seconds, 0.0);
}

}  // namespace
}  // namespace abftecc::abft
