// Tests for the live telemetry plane (src/obs/telemetry):
//   * TimeSeriesRing: fixed capacity, oldest-first reads, wraparound;
//   * TelemetrySampler: counter deltas vs gauge levels, min-interval
//     drop, timeseries-v1 JSON validity, dropped-point accounting;
//   * OpenMetrics exposition: name sanitization, label-value escaping,
//     cumulative histogram buckets with +Inf == _count, # EOF footer;
//   * determinism: a campaign sampled by a live TelemetrySampler folds
//     the byte-identical Accumulator JSON as one with telemetry off
//     (the cmp gate's in-process twin).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "campaign/accumulator.hpp"
#include "campaign/campaign.hpp"
#include "obs/jsonv.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace abftecc::obs {
namespace {

// ---------------------------------------------------------------- rings --

TEST(TimeSeriesRing, FillsThenWrapsOverOldest) {
  TimeSeriesRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);

  for (int i = 0; i < 3; ++i) ring.push(i, 10.0 * i);
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0).t, 0.0);
  EXPECT_EQ(ring.at(2).v, 20.0);

  // Push past capacity: the oldest points fall off, order is preserved.
  for (int i = 3; i < 10; ++i) ring.push(i, 10.0 * i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 10u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).t, static_cast<double>(6 + i));
    EXPECT_EQ(ring.at(i).v, 10.0 * static_cast<double>(6 + i));
  }
}

// -------------------------------------------------------------- sampler --

TEST(TelemetrySampler, CountersAreDeltasGaugesAreLevels) {
  Registry reg;
  TelemetrySampler sampler({8, 0.0});

  reg.counter("c").add(5);
  reg.gauge("g").set(1.5);
  EXPECT_TRUE(sampler.sample(reg, 0.0));
  reg.counter("c").add(2);
  reg.gauge("g").set(9.0);
  EXPECT_TRUE(sampler.sample(reg, 1.0));

  const auto* c = sampler.find("c", SeriesKind::kCounter);
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->ring.size(), 2u);
  EXPECT_EQ(c->ring.at(0).v, 5.0);  // first sample: delta from 0
  EXPECT_EQ(c->ring.at(1).v, 2.0);  // events since previous sample

  const auto* g = sampler.find("g", SeriesKind::kGauge);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->ring.at(0).v, 1.5);
  EXPECT_EQ(g->ring.at(1).v, 9.0);
}

TEST(TelemetrySampler, MinIntervalDropsHotSamples) {
  Registry reg;
  reg.counter("c").add(1);
  TelemetrySampler sampler({8, 1.0});
  EXPECT_TRUE(sampler.sample(reg, 0.0));
  EXPECT_FALSE(sampler.sample(reg, 0.5));  // too soon
  EXPECT_TRUE(sampler.sample(reg, 1.5));
  EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST(TelemetrySampler, HistogramsSampleCountAndSumDeltas) {
  Registry reg;
  auto& h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  TelemetrySampler sampler({8, 0.0});
  sampler.sample(reg, 0.0);
  h.observe(100.0);
  sampler.sample(reg, 1.0);

  const auto* count = sampler.find("h", SeriesKind::kHistogramCount);
  const auto* sum = sampler.find("h", SeriesKind::kHistogramSum);
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(count->ring.at(0).v, 2.0);
  EXPECT_EQ(count->ring.at(1).v, 1.0);
  EXPECT_EQ(sum->ring.at(0).v, 5.5);
  EXPECT_EQ(sum->ring.at(1).v, 100.0);
}

TEST(TelemetrySampler, ToJsonIsValidTimeseriesV1WithDroppedCounts) {
  Registry reg;
  reg.counter("c");
  TelemetrySampler sampler({2, 0.0});
  for (int i = 0; i < 5; ++i) {
    reg.counter("c").add(1);
    sampler.sample(reg, i);
  }

  std::string error;
  const auto parsed = json_parse(sampler.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->str("schema"), "timeseries-v1");
  EXPECT_EQ(parsed->u64("samples"), 5u);
  const auto* series = parsed->find("series");
  ASSERT_NE(series, nullptr);
  const auto& rows = series->as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].str("name"), "c");
  EXPECT_EQ(rows[0].str("kind"), "counter");
  EXPECT_EQ(rows[0].u64("dropped"), 3u);  // capacity 2, pushed 5
  const auto* points = rows[0].find("points");
  ASSERT_NE(points, nullptr);
  EXPECT_EQ(points->as_array().size(), 2u);
}

// ----------------------------------------------------- OpenMetrics text --

TEST(OpenMetrics, NameSanitization) {
  EXPECT_EQ(openmetrics_name("campaignd.jobs_running"),
            "campaignd_jobs_running");
  EXPECT_EQ(openmetrics_name("l1.miss-rate %"), "l1_miss_rate__");
  EXPECT_EQ(openmetrics_name("9lives"), "_9lives");
  EXPECT_EQ(openmetrics_name("already_fine:ok"), "already_fine:ok");
}

TEST(OpenMetrics, LabelValueEscaping) {
  EXPECT_EQ(openmetrics_escape("plain"), "plain");
  EXPECT_EQ(openmetrics_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(openmetrics_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(openmetrics_escape("a\nb"), "a\\nb");
}

TEST(OpenMetrics, WriterEmitsEscapedLabelsAndEof) {
  OpenMetricsWriter om;
  om.family("job.state", OpenMetricsWriter::Type::kGauge);
  om.sample(1.0, {{"name", "we\"ird\nname"}});
  const std::string text = om.take();
  EXPECT_NE(text.find("# TYPE job_state gauge\n"), std::string::npos) << text;
  EXPECT_NE(text.find("job_state{name=\"we\\\"ird\\nname\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6) << text;
}

TEST(OpenMetrics, SnapshotHistogramBucketsAreCumulativeWithInf) {
  Registry reg;
  reg.counter("reqs").add(3);
  auto& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(99.0);

  OpenMetricsWriter om;
  om.snapshot(reg.snapshot(), {{"experiment", "unit"}});
  const std::string text = om.take();

  // Counter family gets the _total suffix.
  EXPECT_NE(text.find("# TYPE reqs counter\n"), std::string::npos) << text;
  EXPECT_NE(text.find("reqs_total{experiment=\"unit\"} 3\n"),
            std::string::npos)
      << text;

  // Buckets are cumulative per le, the +Inf bucket equals _count, and the
  // le label rides alongside the base labels.
  EXPECT_NE(text.find("lat_bucket{experiment=\"unit\",le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_bucket{experiment=\"unit\",le=\"2\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_bucket{experiment=\"unit\",le=\"4\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_bucket{experiment=\"unit\",le=\"+Inf\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_count{experiment=\"unit\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_sum{experiment=\"unit\"} 104\n"),
            std::string::npos)
      << text;
}

// ------------------------------------------------ determinism (cmp twin) --

TEST(Telemetry, SamplingLeavesCampaignAggregatesByteIdentical) {
  campaign::CampaignOptions opt;
  opt.kernel = sim::Kernel::kDgemm;
  opt.platform.strategy = sim::Strategy::kPartialChipkillSecded;
  opt.platform.dgemm_dim = 48;
  opt.trials = 10;
  opt.threads = 2;
  opt.campaign_seed = 17;
  const campaign::GoldenRun golden = campaign::run_golden(opt);

  // Telemetry OFF.
  const campaign::CampaignResult plain = campaign::run_campaign(opt, golden);
  const std::string baseline =
      campaign::Accumulator::of(opt, plain.trials).to_json();
  std::vector<std::string> lines_off;
  for (const auto& t : plain.trials)
    lines_off.push_back(campaign::trial_jsonl_line(opt, t));

  // Telemetry ON: sample the main-thread registry from the progress
  // callback, exactly like tools/campaign --metrics-out does.
  TelemetrySampler sampler({64, 0.0});
  std::size_t last_done = 0;
  const campaign::CampaignResult sampled = campaign::run_campaign(
      opt, golden, [&](std::size_t done, std::size_t) {
        if (done >= last_done) {
          default_registry().counter("campaign.trials").add(done - last_done);
          last_done = done;
          sampler.sample(default_registry());
        }
      });
  std::vector<std::string> lines_on;
  for (const auto& t : sampled.trials)
    lines_on.push_back(campaign::trial_jsonl_line(opt, t));

  EXPECT_GT(sampler.samples_taken(), 0u);
  EXPECT_EQ(campaign::Accumulator::of(opt, sampled.trials).to_json(),
            baseline);
  EXPECT_EQ(lines_on, lines_off);
}

}  // namespace
}  // namespace abftecc::obs
