// Unit + property tests for the linalg substrate: BLAS kernels against
// naive references, factorizations against reconstruction, CG convergence.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/cg.hpp"
#include "linalg/factor.hpp"
#include "linalg/generate.hpp"

namespace abftecc::linalg {
namespace {

Matrix naive_gemm(ConstMatrixView a, ConstMatrixView b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

TEST(Blas, DotAxpyScalCopy) {
  std::vector<double> x = {1, 2, 3}, y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot<>(x, y), 32.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  scal(0.5, std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  std::vector<double> z(3);
  copy<>(y, z);
  EXPECT_EQ(z, y);
}

TEST(Blas, Nrm2MatchesDefinitionAndResistsOverflow) {
  std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2<>(x), 5.0);
  std::vector<double> big = {1e200, 1e200};
  EXPECT_NEAR(nrm2<>(big), std::sqrt(2.0) * 1e200, 1e186);
}

TEST(Blas, IamaxFindsLargestMagnitude) {
  std::vector<double> x = {1.0, -9.0, 3.0};
  EXPECT_EQ(iamax<>(x), 1u);
}

TEST(Blas, GemvAgainstNaive) {
  Rng rng(11);
  Matrix a = Matrix::random(7, 5, rng);
  std::vector<double> x(5), y(7, 1.0), y_ref(7, 1.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  gemv(2.0, a.view(), x, 0.5, y);
  for (std::size_t i = 0; i < 7; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 5; ++j) s += a(i, j) * x[j];
    y_ref[i] = 2.0 * s + 0.5 * 1.0;
  }
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(Blas, GemvTransposedAgainstNaive) {
  Rng rng(12);
  Matrix a = Matrix::random(6, 4, rng);
  std::vector<double> x(6), y(4, 0.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  gemv_t(1.0, a.view(), x, 0.0, y);
  for (std::size_t j = 0; j < 4; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < 6; ++i) s += a(i, j) * x[i];
    EXPECT_NEAR(y[j], s, 1e-12);
  }
}

TEST(Blas, GerRankOneUpdate) {
  Matrix a(3, 2);
  std::vector<double> x = {1, 2, 3}, y = {4, 5};
  ger(1.0, x, y, a.view());
  EXPECT_DOUBLE_EQ(a(2, 1), 15.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(100 + m + n * 3 + k * 7);
  Matrix a = Matrix::random(m, k, rng);
  Matrix b = Matrix::random(k, n, rng);
  Matrix c(m, n);
  gemm(1.0, a.view(), b.view(), 0.0, c.view());
  Matrix ref = naive_gemm(a.view(), b.view());
  EXPECT_LT(max_abs_diff(c.view(), ref.view()), 1e-10 * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                      std::tuple{64, 64, 64}, std::tuple{65, 63, 64},
                      std::tuple{128, 70, 129}, std::tuple{17, 130, 33}));

TEST(Gemm, AlphaBetaScaling) {
  Rng rng(5);
  Matrix a = Matrix::random(8, 8, rng), b = Matrix::random(8, 8, rng);
  Matrix c = Matrix::random(8, 8, rng);
  Matrix expect = naive_gemm(a.view(), b.view());
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 0; i < 8; ++i)
      expect(i, j) = 2.0 * expect(i, j) + 3.0 * c(i, j);
  gemm(2.0, a.view(), b.view(), 3.0, c.view());
  EXPECT_LT(max_abs_diff(c.view(), expect.view()), 1e-10);
}

TEST(Trsm, RightLowerTransSolves) {
  Rng rng(21);
  Matrix l = Matrix::random(6, 6, rng);
  for (std::size_t i = 0; i < 6; ++i) {
    l(i, i) = 3.0 + rng.uniform();
    for (std::size_t j = i + 1; j < 6; ++j) l(i, j) = 0.0;
  }
  Matrix x_true = Matrix::random(4, 6, rng);
  // B = X * L^T
  Matrix lt(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) lt(i, j) = l(j, i);
  Matrix b = naive_gemm(x_true.view(), lt.view());
  trsm_right_lower_trans(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-9);
}

TEST(Trsm, LeftLowerUnitSolves) {
  Rng rng(22);
  Matrix l = Matrix::random(5, 5, rng);
  for (std::size_t i = 0; i < 5; ++i) {
    l(i, i) = 1.0;
    for (std::size_t j = i + 1; j < 5; ++j) l(i, j) = 0.0;
  }
  Matrix x_true = Matrix::random(5, 3, rng);
  Matrix b = naive_gemm(l.view(), x_true.view());
  trsm_left_lower_unit(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x_true.view()), 1e-10);
}

TEST(Syrk, LowerSubMatchesGemm) {
  Rng rng(23);
  Matrix a = Matrix::random(7, 4, rng);
  Matrix c = Matrix::random_spd(7, rng);
  Matrix c2 = c;
  syrk_lower_sub(a.view(), c.view());
  // Reference: full C2 -= A A^T, compare lower triangles.
  Matrix at(4, 7);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 4; ++j) at(j, i) = a(i, j);
  Matrix aat = naive_gemm(a.view(), at.view());
  for (std::size_t j = 0; j < 7; ++j)
    for (std::size_t i = j; i < 7; ++i)
      EXPECT_NEAR(c(i, j), c2(i, j) - aat(i, j), 1e-10);
}

TEST(Trsv, LowerAndUpperAndLowerTrans) {
  Rng rng(24);
  Matrix l = Matrix::random(6, 6, rng);
  for (std::size_t i = 0; i < 6; ++i) l(i, i) = 4.0 + rng.uniform();
  std::vector<double> x_true(6), b(6);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  // lower: L x = b
  for (std::size_t i = 0; i < 6; ++i) {
    double s = 0.0;
    for (std::size_t k = 0; k <= i; ++k) s += l(i, k) * x_true[k];
    b[i] = s;
  }
  auto x = b;
  trsv_lower(l.view(), x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  // lower-transposed: L^T x = b
  for (std::size_t i = 0; i < 6; ++i) {
    double s = 0.0;
    for (std::size_t k = i; k < 6; ++k) s += l(k, i) * x_true[k];
    b[i] = s;
  }
  x = b;
  trsv_lower_trans(l.view(), x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

class PotrfSizes : public ::testing::TestWithParam<int> {};

TEST_P(PotrfSizes, ReconstructsInput) {
  const int n = GetParam();
  Rng rng(31 + n);
  Matrix a = Matrix::random_spd(n, rng);
  Matrix work = a;
  ASSERT_EQ(potrf(work.view(), 16), FactorStatus::kOk);
  // Reconstruct L L^T and compare lower triangle against A.
  for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
    for (std::size_t i = j; i < static_cast<std::size_t>(n); ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k <= j; ++k) s += work(i, k) * work(j, k);
      EXPECT_NEAR(s, a(i, j), 1e-8 * n) << i << "," << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, PotrfSizes, ::testing::Values(1, 4, 16, 33, 64, 97));

TEST(Potrf, RejectsNonPositiveDefinite) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  a(2, 2) = 1.0;
  EXPECT_EQ(potrf(a.view()), FactorStatus::kNotPositiveDefinite);
}

class GetrfSizes : public ::testing::TestWithParam<int> {};

TEST_P(GetrfSizes, SolvesSystem) {
  const int n = GetParam();
  Rng rng(41 + n);
  LinearSystem sys = make_general_system(n, rng);
  Matrix lu = sys.a;
  std::vector<std::size_t> piv;
  ASSERT_EQ(getrf(lu.view(), piv, 16), FactorStatus::kOk);
  auto x = sys.b;
  lu_solve(lu.view(), piv, x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], sys.x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Dims, GetrfSizes, ::testing::Values(1, 5, 16, 40, 64, 100));

TEST(Getrf, DetectsExactSingularity) {
  Matrix a(3, 3);  // all zeros
  std::vector<std::size_t> piv;
  EXPECT_EQ(getrf(a.view(), piv), FactorStatus::kSingular);
}

TEST(Getrf, PivotingHandlesZeroLeadingElement) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  std::vector<std::size_t> piv;
  ASSERT_EQ(getrf(a.view(), piv), FactorStatus::kOk);
  std::vector<double> x = {2.0, 3.0};  // solve A x = b
  lu_solve(a.view(), piv, x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

class CgSizes : public ::testing::TestWithParam<int> {};

TEST_P(CgSizes, ConvergesToTrueSolution) {
  const int n = GetParam();
  Rng rng(51 + n);
  LinearSystem sys = make_spd_system(n, rng);
  std::vector<double> x(n, 0.0);
  CgOptions opt;
  opt.max_iterations = 4 * static_cast<std::size_t>(n);
  opt.tolerance = 1e-12;
  const CgResult res = pcg_solve(sys.a.view(), sys.b, x, opt);
  EXPECT_TRUE(res.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], sys.x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Dims, CgSizes, ::testing::Values(2, 8, 32, 100));

TEST(Cg, ZeroRhsConvergesImmediately) {
  Rng rng(61);
  Matrix a = Matrix::random_spd(8, rng);
  std::vector<double> b(8, 0.0), x(8, 0.0);
  const CgResult res = pcg_solve(a.view(), b, x);
  EXPECT_TRUE(res.converged);
  for (const double v : x) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(JacobiPreconditioner, InvertsDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  JacobiPreconditioner m(a.view());
  std::vector<double> r = {2.0, 4.0}, z(2);
  m.apply(r, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
}

TEST(Generate, SpdSystemSatisfiesAxEqualsB) {
  Rng rng(71);
  LinearSystem sys = make_spd_system(20, rng);
  std::vector<double> ax(20, 0.0);
  gemv(1.0, sys.a.view(), sys.x_true, 0.0, ax);
  for (int i = 0; i < 20; ++i) EXPECT_NEAR(ax[i], sys.b[i], 1e-10);
}

}  // namespace
}  // namespace abftecc::linalg
