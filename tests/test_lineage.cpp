// Fault provenance ledger: unit tests for the ledger lifecycle and
// line-based attribution, surgical chain pins through the real
// injector/ECC/OS layers, and campaign-level reconciliation -- including
// the PR-6 keystone invariant that lineage terminal states partition 1:1
// into the outcome taxonomy, and that enabling lineage never perturbs
// trial outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "campaign/campaign.hpp"
#include "fault/injector.hpp"
#include "memsim/system.hpp"
#include "obs/lineage.hpp"
#include "os/os.hpp"
#include "sim/platform.hpp"

namespace abftecc {
namespace {

using obs::LineageLedger;
using obs::LineageStage;

// -------------------------------------------------------------- ledger --

TEST(LineageLedger, DisabledLedgerRecordsNothing) {
  LineageLedger led;
  EXPECT_FALSE(led.enabled());
  EXPECT_EQ(led.fault_injected(0x1000, 3, "bit_flip", 10), 0u);
  led.resolve_line(0x1000, LineageStage::kEccCorrected, 20);
  led.trial_event(LineageStage::kRollback, 30);
  led.seal("corrected");
  EXPECT_TRUE(led.faults().empty());
  EXPECT_TRUE(led.events().empty());
  EXPECT_FALSE(led.sealed());
}

TEST(LineageLedger, FaultLifecycleInjectResolveSeal) {
  LineageLedger led;
  led.enable();
  const std::uint32_t id = led.fault_injected(0x1008, 5, "bit_flip", 100);
  ASSERT_EQ(id, 1u);  // IDs are 1-based and dense
  ASSERT_EQ(led.faults().size(), 1u);
  EXPECT_EQ(led.orphans(), 1u);  // unresolved so far

  led.resolve_fault(id, LineageStage::kEccCorrected, 200, /*a0=*/1);
  EXPECT_EQ(led.orphans(), 0u);
  EXPECT_EQ(led.double_resolved(), 0u);
  EXPECT_EQ(led.faults()[0].resolution, LineageStage::kEccCorrected);
  EXPECT_EQ(led.faults()[0].resolution_count, 1u);

  led.seal("corrected");
  EXPECT_TRUE(led.sealed());
  EXPECT_EQ(led.terminal(), "corrected");
  EXPECT_EQ(led.faults()[0].terminal, "corrected");
  // inject + resolution + terminal events, in causal order.
  ASSERT_EQ(led.events().size(), 3u);
  EXPECT_EQ(led.events()[0].stage, LineageStage::kInject);
  EXPECT_EQ(led.events()[1].stage, LineageStage::kEccCorrected);
  EXPECT_EQ(led.events()[2].stage, LineageStage::kTerminal);
}

// Two faults injected into the same 64B cache line keep distinct lineage
// IDs, and the single line decode that clears them resolves BOTH records
// exactly once (the satellite-3 shared-line requirement).
TEST(LineageLedger, SharedCacheLineFaultsKeepDistinctIds) {
  LineageLedger led;
  led.enable();
  const std::uint32_t a = led.fault_injected(0x1000, 1, "bit_flip", 10);
  const std::uint32_t b = led.fault_injected(0x1020, 2, "bit_flip", 11);
  const std::uint32_t c = led.fault_injected(0x2000, 3, "bit_flip", 12);
  EXPECT_NE(a, b);

  // One decode of the first line resolves a AND b, not c.
  led.resolve_line(0x1010, LineageStage::kEccDetected, 50);
  EXPECT_EQ(led.faults()[a - 1].resolution_count, 1u);
  EXPECT_EQ(led.faults()[b - 1].resolution_count, 1u);
  EXPECT_EQ(led.faults()[c - 1].resolution_count, 0u);
  EXPECT_EQ(led.orphans(), 1u);

  // A second decode of the same line must NOT double-count a or b.
  led.resolve_line(0x1000, LineageStage::kEccCorrected, 60);
  EXPECT_EQ(led.faults()[a - 1].resolution_count, 1u);
  EXPECT_EQ(led.faults()[a - 1].resolution, LineageStage::kEccDetected);
  EXPECT_EQ(led.double_resolved(), 0u);
}

TEST(LineageLedger, DirectResolveTwiceIsCountedAsDoubleResolution) {
  LineageLedger led;
  led.enable();
  const std::uint32_t id = led.fault_injected(0x40, 0, "direct", 1);
  led.resolve_fault(id, LineageStage::kEccSilent, 2);
  led.resolve_fault(id, LineageStage::kWritebackCleared, 3);
  EXPECT_EQ(led.faults()[0].resolution_count, 2u);
  EXPECT_EQ(led.double_resolved(), 1u);
  EXPECT_EQ(led.orphans(), 0u);
}

TEST(LineageLedger, LineEventsSetExposureAndLocationFlags) {
  LineageLedger led;
  led.enable();
  const std::uint32_t id = led.fault_injected(0x3000, 4, "bit_flip", 1);
  led.line_event(0x3008, LineageStage::kEccInterrupt, 2);
  EXPECT_FALSE(led.faults()[0].exposed);
  led.line_event(0x3008, LineageStage::kExposed, 3);
  EXPECT_TRUE(led.faults()[0].exposed);
  led.line_event(0x3010, LineageStage::kAbftLocated, 4, /*a0=*/7, /*a1=*/42);
  EXPECT_TRUE(led.faults()[0].located);
  // Events carry the stage arguments for forensics.
  const auto& ev = led.events().back();
  EXPECT_EQ(ev.fault, id);
  EXPECT_EQ(ev.a0, 7u);
  EXPECT_EQ(ev.a1, 42u);
}

TEST(LineageLedger, ClearReopensTheLedger) {
  LineageLedger led;
  led.enable();
  led.fault_injected(0x100, 0, "bit_flip", 1);
  led.seal("corrected");
  led.clear();
  EXPECT_TRUE(led.enabled());  // clear() keeps the enable bit
  EXPECT_FALSE(led.sealed());
  EXPECT_TRUE(led.faults().empty());
  EXPECT_TRUE(led.events().empty());
  EXPECT_EQ(led.fault_injected(0x200, 0, "bit_flip", 2), 1u);  // IDs restart
}

TEST(LineageScope, OverridesAreLifoNested) {
  LineageLedger outer, inner;
  outer.enable();
  inner.enable();
  LineageLedger& base = obs::default_lineage();
  {
    obs::LineageScope so(outer);
    EXPECT_EQ(&obs::default_lineage(), &outer);
    {
      obs::LineageScope si(inner);
      EXPECT_EQ(&obs::default_lineage(), &inner);
      obs::default_lineage().fault_injected(0x40, 0, "bit_flip", 1);
    }
    EXPECT_EQ(&obs::default_lineage(), &outer);
  }
  EXPECT_EQ(&obs::default_lineage(), &base);
  EXPECT_EQ(inner.faults().size(), 1u);
  EXPECT_TRUE(outer.faults().empty());
}

// ---------------------------------------------- surgical chain pinning --

/// Minimal wired node (same rig as test_fault.cpp): MemorySystem + Os +
/// Injector, with a lineage ledger installed for the test's duration.
struct Rig {
  memsim::MemorySystem sys;
  os::Os os;
  fault::Injector inj;
  LineageLedger led;
  obs::LineageScope scope;
  explicit Rig(ecc::Scheme default_scheme)
      : sys(memsim::SystemConfig::scaled(8), default_scheme),
        os(sys),
        inj(sys, os),
        scope((led.enable(), led)) {}

  std::uint8_t* alloc(ecc::Scheme scheme) {
    auto* p =
        static_cast<std::uint8_t*>(os.malloc_ecc(4096, scheme, "data", true));
    for (int i = 0; i < 4096; ++i) p[i] = static_cast<std::uint8_t>(i * 7);
    return p;
  }

  void touch_line(const void* vaddr) {
    const auto phys = os.virt_to_phys(vaddr);
    ASSERT_TRUE(phys.has_value());
    sys.access(*phys, memsim::AccessKind::kRead);
  }
};

std::vector<LineageStage> chain_of(const LineageLedger& led,
                                   std::uint32_t fault_id) {
  std::vector<LineageStage> out;
  for (const auto& e : led.events())
    if (e.fault == fault_id) out.push_back(e.stage);
  return out;
}

// Case 1 (paper Table 2): single-bit fault under SECDED, corrected in the
// controller. Chain pins to inject -> ecc_corrected, nothing OS-visible.
TEST(LineageChain, CorrectedFaultNeverReachesTheOs) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kSecded);
  const auto phys = rig.os.virt_to_phys(p + 10);
  rig.inj.inject_bit(*phys, 3);
  rig.touch_line(p + 10);
  ASSERT_EQ(rig.led.faults().size(), 1u);
  EXPECT_EQ(rig.led.faults()[0].phys, *phys);
  EXPECT_EQ(chain_of(rig.led, 1),
            (std::vector<LineageStage>{LineageStage::kInject,
                                       LineageStage::kEccCorrected}));
  EXPECT_FALSE(rig.led.faults()[0].exposed);
  EXPECT_EQ(rig.led.orphans(), 0u);
}

// Case 4 front half: a double-bit fault under SECDED on ABFT-covered data
// is detected-uncorrectable, raises the MC interrupt, and is published to
// the exposed-error log. Both colliding flips share the line, keep
// distinct lineage IDs, and resolve exactly once each.
TEST(LineageChain, DetectedUncorrectableChainsThroughOsExposure) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kSecded);
  const auto phys = rig.os.virt_to_phys(p);
  rig.inj.inject_bit(*phys, 0);
  rig.inj.inject_bit(*phys + 1, 1);  // same word -> uncorrectable
  rig.touch_line(p);

  ASSERT_EQ(rig.led.faults().size(), 2u);
  const std::vector<LineageStage> expect{
      LineageStage::kInject, LineageStage::kEccDetected,
      LineageStage::kEccInterrupt, LineageStage::kExposed};
  EXPECT_EQ(chain_of(rig.led, 1), expect);
  EXPECT_EQ(chain_of(rig.led, 2), expect);
  for (const auto& f : rig.led.faults()) {
    EXPECT_EQ(f.resolution, LineageStage::kEccDetected);
    EXPECT_EQ(f.resolution_count, 1u);
    EXPECT_TRUE(f.exposed);
  }
  EXPECT_EQ(rig.led.orphans(), 0u);
  EXPECT_EQ(rig.led.double_resolved(), 0u);
}

// Uncorrectable OUTSIDE ABFT coverage: the chain ends in os_panic, the
// ledger's record of why a trial died.
TEST(LineageChain, UncoveredUncorrectableChainsToPanic) {
  Rig rig(ecc::Scheme::kSecded);
  auto* p = static_cast<std::uint8_t*>(rig.os.malloc_plain(4096, "os-data"));
  std::fill_n(p, 4096, 0x5A);
  const auto phys = rig.os.virt_to_phys(p);
  rig.inj.inject_bit(*phys, 0);
  rig.inj.inject_bit(*phys + 1, 1);
  rig.sys.access(*phys, memsim::AccessKind::kRead);
  ASSERT_TRUE(rig.os.panicked());
  const auto chain = chain_of(rig.led, 1);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.back(), LineageStage::kPanic);
}

// Shrinking the exposed log below its occupancy drops records; each drop
// must leave an os_log_dropped breadcrumb on the affected fault's lineage
// (satellite 1: drops are observable, not silent).
TEST(LineageChain, ExposedLogShrinkLeavesDropBreadcrumbs) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kSecded);
  // Two uncorrectable lines -> two exposed-log records.
  for (std::size_t off : {std::size_t{0}, std::size_t{128}}) {
    const auto phys = rig.os.virt_to_phys(p + off);
    rig.inj.inject_bit(*phys, 0);
    rig.inj.inject_bit(*phys + 1, 1);
    rig.touch_line(p + off);
  }
  ASSERT_TRUE(rig.os.has_exposed_errors());
  rig.os.set_exposed_log_capacity(1);  // drops the older record
  EXPECT_EQ(rig.os.exposed_dropped(), 1u);
  // The OS counter is per log RECORD; lineage breadcrumbs are per FAULT,
  // and the dropped record's line carries both colliding flips.
  std::uint64_t drop_events = 0;
  for (const auto& e : rig.led.events())
    if (e.stage == LineageStage::kLogDropped) ++drop_events;
  EXPECT_EQ(drop_events, 2u);
}

// ---------------------------------------------- campaign reconciliation --

sim::PlatformOptions tiny_platform() {
  sim::PlatformOptions p;
  p.strategy = sim::Strategy::kPartialChipkillSecded;
  p.dgemm_dim = 48;
  p.cholesky_dim = 48;
  p.cg_dim = 96;
  p.cg_iterations = 2;
  p.hpl_dim = 48;
  return p;
}

/// The test_campaign.cpp storm: SECDED everywhere + multi-fault storms +
/// the recovery ladder, so trials traverse the deepest chains (Case 4
/// escalation into checkpointed rollback).
campaign::CampaignOptions storm_options() {
  campaign::CampaignOptions opt;
  opt.kernel = sim::Kernel::kDgemm;
  opt.platform = tiny_platform();
  opt.platform.strategy = sim::Strategy::kWholeSecded;
  opt.platform.ladder = true;
  opt.fault.kind = campaign::FaultKind::kDoubleBit;
  opt.fault.count = 3;
  opt.fault.storm_all_ranges = true;
  opt.trials = 12;
  opt.campaign_seed = 7;
  opt.lineage = true;
  return opt;
}

bool has_stage(const std::vector<obs::LineageEvent>& events,
               LineageStage s) {
  return std::any_of(events.begin(), events.end(),
                     [s](const auto& e) { return e.stage == s; });
}

// The satellite-3 end-to-end pin: in a storm campaign some trial must
// traverse the full Case-4 escalation -- inject, ECC detects but cannot
// correct, OS exposes to the runtime, and the ladder rolls back -- and its
// ledger must show every stage of that causal chain.
TEST(CampaignLineage, Case4EscalationChainIsFullyRecorded) {
  const campaign::CampaignResult res =
      campaign::run_campaign(storm_options());
  ASSERT_TRUE(res.lineage.enabled);
  EXPECT_TRUE(res.lineage.ok) << (res.lineage.errors.empty()
                                      ? "no errors"
                                      : res.lineage.errors[0]);

  bool found = false;
  for (const auto& t : res.trials) {
    if (t.outcome != campaign::Outcome::kRecoveredByRollback) continue;
    found = true;
    EXPECT_EQ(t.lineage_terminal, "recovered_by_rollback");
    ASSERT_FALSE(t.lineage_faults.empty());
    ASSERT_FALSE(t.lineage_events.empty());
    // Hardware half: every fault was injected and detected-uncorrectable.
    for (const auto& f : t.lineage_faults) {
      EXPECT_EQ(f.resolution, LineageStage::kEccDetected);
      EXPECT_EQ(f.resolution_count, 1u);
    }
    // Software half: interrupt -> exposure -> ladder rollback -> seal.
    EXPECT_TRUE(has_stage(t.lineage_events, LineageStage::kInject));
    EXPECT_TRUE(has_stage(t.lineage_events, LineageStage::kEccInterrupt));
    EXPECT_TRUE(has_stage(t.lineage_events, LineageStage::kExposed));
    EXPECT_TRUE(has_stage(t.lineage_events, LineageStage::kRollback));
    EXPECT_TRUE(has_stage(t.lineage_events, LineageStage::kTerminal));
    break;
  }
  ASSERT_TRUE(found) << "storm produced no rollback trial to pin";
}

// The keystone: ledger terminal tallies partition 1:1 into the taxonomy
// counts, fault records match injection counts, and nothing is orphaned
// or double-counted -- across a storm with shared-line faults.
TEST(CampaignLineage, ReconciliationHoldsOnStormCampaign) {
  const campaign::CampaignOptions opt = storm_options();
  const campaign::CampaignResult res = campaign::run_campaign(opt);
  const auto& lin = res.lineage;
  ASSERT_TRUE(lin.enabled);
  EXPECT_TRUE(lin.ok) << (lin.errors.empty() ? "" : lin.errors[0]);
  EXPECT_TRUE(lin.errors.empty());
  EXPECT_EQ(lin.orphans, 0u);
  EXPECT_EQ(lin.double_counted, 0u);
  // 12 trials x 3 storm faults x 2 flips per double-bit fault.
  EXPECT_EQ(lin.faults, opt.trials * opt.fault.count * 2);
  // Terminal tallies are exactly the taxonomy counts.
  for (std::size_t i = 0; i < campaign::kAllOutcomes.size(); ++i)
    EXPECT_EQ(lin.terminals[i],
              res.rate(campaign::kAllOutcomes[i]).count)
        << to_string(campaign::kAllOutcomes[i]);
  // Every fault reached exactly one resolution: resolution tallies sum to
  // the fault-record count.
  std::uint64_t resolved = 0;
  for (std::size_t s = 0; s < lin.resolutions.size(); ++s)
    if (obs::is_resolution(static_cast<LineageStage>(s)))
      resolved += lin.resolutions[s];
  EXPECT_EQ(resolved, lin.faults);
}

// Tampering with the ledger must be caught: reconciliation is a real
// invariant check, not a formality.
TEST(CampaignLineage, ReconciliationDetectsFabricatedViolations) {
  campaign::CampaignResult res = campaign::run_campaign(storm_options());
  ASSERT_TRUE(res.lineage.ok);

  {  // An orphan (a fault that never reached a hardware resolution).
    campaign::CampaignResult broken = res;
    broken.trials[0].lineage_faults[0].resolution_count = 0;
    const auto lin = campaign::reconcile_lineage(broken);
    EXPECT_FALSE(lin.ok);
    EXPECT_EQ(lin.orphans, 1u);
    EXPECT_FALSE(lin.errors.empty());
  }
  {  // A double-counted resolution.
    campaign::CampaignResult broken = res;
    broken.trials[0].lineage_faults[0].resolution_count = 2;
    const auto lin = campaign::reconcile_lineage(broken);
    EXPECT_FALSE(lin.ok);
    EXPECT_EQ(lin.double_counted, 1u);
  }
  {  // A sealed terminal that contradicts the classified outcome.
    campaign::CampaignResult broken = res;
    broken.trials[0].lineage_terminal =
        broken.trials[0].outcome == campaign::Outcome::kCorrected
            ? "unrecoverable"
            : "corrected";
    const auto lin = campaign::reconcile_lineage(broken);
    EXPECT_FALSE(lin.ok);
  }
  {  // A missing fault record (ledger lost a fault).
    campaign::CampaignResult broken = res;
    ASSERT_FALSE(broken.trials[0].lineage_faults.empty());
    broken.trials[0].lineage_faults.pop_back();
    const auto lin = campaign::reconcile_lineage(broken);
    EXPECT_FALSE(lin.ok);
  }
}

// --------------------------------------------------------- determinism --

std::string jsonl_bytes(const campaign::CampaignResult& res) {
  std::FILE* f = std::tmpfile();
  for (const campaign::TrialOutcome& t : res.trials)
    campaign::write_trial_jsonl(f, res.options, t);
  std::string out(static_cast<std::size_t>(std::ftell(f)), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return out;
}

// Lineage is observability, not simulation: turning it on must not change
// a single trial outcome byte (CI re-checks this on the real binary).
TEST(CampaignLineage, EnablingLineageDoesNotPerturbTrialOutcomes) {
  campaign::CampaignOptions opt = storm_options();
  const campaign::GoldenRun golden = campaign::run_golden(opt);
  opt.lineage = false;
  const std::string off = jsonl_bytes(campaign::run_campaign(opt, golden));
  opt.lineage = true;
  const std::string on = jsonl_bytes(campaign::run_campaign(opt, golden));
  EXPECT_FALSE(off.empty());
  EXPECT_EQ(off, on);
}

// The campaign determinism contract extends to the ledger: same seed,
// different thread counts -> identical lineage records modulo the cycle
// stamps (which, like TrialOutcome::cycles, are off the surface).
TEST(CampaignLineage, LineageIsThreadCountInvariantModuloCycles) {
  campaign::CampaignOptions opt = storm_options();
  const campaign::GoldenRun golden = campaign::run_golden(opt);
  opt.threads = 1;
  const campaign::CampaignResult serial = campaign::run_campaign(opt, golden);
  opt.threads = 4;
  const campaign::CampaignResult pooled = campaign::run_campaign(opt, golden);

  ASSERT_EQ(serial.trials.size(), pooled.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    const auto& a = serial.trials[i];
    const auto& b = pooled.trials[i];
    EXPECT_EQ(a.lineage_terminal, b.lineage_terminal);
    ASSERT_EQ(a.lineage_faults.size(), b.lineage_faults.size());
    for (std::size_t j = 0; j < a.lineage_faults.size(); ++j) {
      const auto& fa = a.lineage_faults[j];
      const auto& fb = b.lineage_faults[j];
      EXPECT_EQ(fa.id, fb.id);
      EXPECT_EQ(fa.phys, fb.phys);
      EXPECT_EQ(fa.bit, fb.bit);
      EXPECT_STREQ(fa.kind, fb.kind);
      EXPECT_EQ(fa.resolution, fb.resolution);
      EXPECT_EQ(fa.resolution_count, fb.resolution_count);
      EXPECT_EQ(fa.exposed, fb.exposed);
      EXPECT_EQ(fa.located, fb.located);
    }
    ASSERT_EQ(a.lineage_events.size(), b.lineage_events.size());
    for (std::size_t j = 0; j < a.lineage_events.size(); ++j) {
      const auto& ea = a.lineage_events[j];
      const auto& eb = b.lineage_events[j];
      EXPECT_EQ(ea.fault, eb.fault);
      EXPECT_EQ(ea.stage, eb.stage);
      EXPECT_EQ(ea.addr, eb.addr);
      EXPECT_EQ(ea.a0, eb.a0);
      EXPECT_EQ(ea.a1, eb.a1);
    }
  }
}

}  // namespace
}  // namespace abftecc
