// Fused FT-DGEMM: clean-run correctness against the plain product, the
// side-vector checksum catching and repairing an element corrupted
// between verify periods, refusal of patterns beyond single-error
// capability, and the native backend's bulk instrumentation counters.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/ft_dgemm_fused.hpp"
#include "common/backend.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"

namespace abftecc::abft {
namespace {

struct Fix {
  Matrix a, b, c;
  Fix(std::size_t m, std::size_t n, std::size_t k, std::uint64_t seed)
      : a(m, k), b(k, n), c(m, n) {
    Rng rng(seed);
    a = Matrix::random(m, k, rng);
    b = Matrix::random(k, n, rng);
  }
  Matrix reference() {
    Matrix ref(a.rows(), b.cols());
    linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
    return ref;
  }
};

/// Small panels so modest dims still cross several verify groups.
FusedOptions small_groups() {
  FusedOptions o;
  o.verify_period = 2;
  o.panel = 16;
  o.jblock = 24;
  return o;
}

TEST(FtDgemmFused, CleanRunMatchesPlainGemm) {
  Fix s(96, 80, 112, 1);
  NativeBackend be;
  FtDgemmFused ft(s.a.view(), s.b.view(), s.c.view(), small_groups());
  EXPECT_EQ(ft.run(be), FtStatus::kOk);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-9);
  EXPECT_EQ(ft.stats().errors_detected, 0u);
  EXPECT_GT(ft.stats().verifications, 1u);
  // Bulk instrumentation: the kernel announced its matrices and blocks.
  EXPECT_GT(be.counters().touches, 0u);
  EXPECT_GE(be.counters().bytes_read,
            (s.a.rows() * s.a.cols() + s.b.rows() * s.b.cols()) *
                sizeof(double));
}

TEST(FtDgemmFused, ErrorInjectedBetweenVerifyPeriodsIsCorrected) {
  Fix s(64, 64, 128, 2);
  NativeBackend be;
  FtDgemmFused ft(s.a.view(), s.b.view(), s.c.view(), small_groups());
  // Corrupt one C element after the second group's panel updates land in
  // the first column block, before its fused verification runs -- i.e.
  // strictly between verify periods.
  bool fired = false;
  ft.set_fault_hook([&](std::size_t group, std::size_t j0) {
    if (fired || group != 1 || j0 != 0) return;
    fired = true;
    s.c(17, 5) += 3.0;
  });
  EXPECT_EQ(ft.run(be), FtStatus::kCorrectedErrors);
  ASSERT_TRUE(fired);
  EXPECT_EQ(ft.stats().errors_detected, 1u);
  EXPECT_EQ(ft.stats().errors_corrected, 1u);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemmFused, ErrorsInDifferentGroupsEachCorrected) {
  Fix s(48, 48, 128, 3);
  NativeBackend be;
  FtDgemmFused ft(s.a.view(), s.b.view(), s.c.view(), small_groups());
  // One corruption per verify group: each is inside its group's
  // single-error capability, so both are repaired.
  ft.set_fault_hook([&](std::size_t group, std::size_t j0) {
    if (j0 != 0) return;
    if (group == 0) s.c(3, 7) -= 2.0;
    if (group == 2) s.c(40, 30) += 5.0;
  });
  EXPECT_EQ(ft.run(be), FtStatus::kCorrectedErrors);
  EXPECT_EQ(ft.stats().errors_corrected, 2u);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemmFused, TwoErrorsSameColumnExceedCapability) {
  Fix s(48, 48, 64, 4);
  NativeBackend be;
  FtDgemmFused ft(s.a.view(), s.b.view(), s.c.view(), small_groups());
  // Two corrupted rows but one corrupted column: residual counts cannot
  // pair up, so the kernel must refuse rather than mis-correct.
  ft.set_fault_hook([&](std::size_t group, std::size_t j0) {
    if (group != 0 || j0 != 0) return;
    s.c(5, 9) += 2.0;
    s.c(31, 9) += 4.0;
  });
  EXPECT_EQ(ft.run(be), FtStatus::kUncorrectable);
  EXPECT_GE(ft.stats().errors_detected, 2u);
}

TEST(FtDgemmFused, PoisonedBitInRegisteredRegionIsCorrected) {
  Fix s(64, 64, 64, 5);
  NativeBackend be;
  const std::size_t cid = be.register_region(
      s.c.data(), s.c.rows() * s.c.cols() * sizeof(double), "C",
      /*abft_protected=*/true);
  FtDgemmFused ft(s.a.view(), s.b.view(), s.c.view(), small_groups());
  // The native fault path end to end: flip a high mantissa bit of C(2,1)
  // through the region registry, between verify periods.
  bool fired = false;
  ft.set_fault_hook([&](std::size_t group, std::size_t j0) {
    if (fired || group != 0 || j0 != 0) return;
    fired = true;
    const std::size_t off = (1 * s.c.rows() + 2) * sizeof(double);
    ASSERT_TRUE(be.poison_bit(cid, off + 6, 2));  // bit 50 of the double
  });
  EXPECT_EQ(ft.run(be), FtStatus::kCorrectedErrors);
  ASSERT_TRUE(fired);
  EXPECT_EQ(be.counters().faults_injected, 1u);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemmFused, OddShapesAndPartialPanels) {
  // Dims that are not multiples of panel, jblock, or the SIMD tile.
  for (const auto [m, n, k] : {std::tuple<std::size_t, std::size_t,
                                          std::size_t>{33, 29, 70},
                               {65, 41, 97},
                               {17, 130, 19}}) {
    Fix s(m, n, k, 100 + m);
    NativeBackend be;
    FtDgemmFused ft(s.a.view(), s.b.view(), s.c.view(), small_groups());
    ASSERT_EQ(ft.run(be), FtStatus::kOk) << m << "x" << n << "x" << k;
    Matrix ref = s.reference();
    EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-9)
        << m << "x" << n << "x" << k;
  }
}

TEST(GemmNative, DispatchReportsAKernel) {
  // Whichever path the host CPU selects, the name and availability agree.
  const bool simd = linalg::native_simd_available();
  const std::string name = linalg::native_kernel_name();
  EXPECT_EQ(simd, name == "avx2-fma");
  if (!simd) EXPECT_EQ(name, "scalar-blocked");
}

}  // namespace
}  // namespace abftecc::abft
